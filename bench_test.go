package eaao

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact, as indexed in DESIGN.md §3) and
// adds ablation benches for the design choices the reproduction calls out.
//
// Benchmarks run at Quick scale (~4× smaller fleet, 200-instance launches)
// so `go test -bench=.` completes in well under a minute; the eaao CLI runs
// the same experiments at the paper's full scale. Headline numbers are
// attached to each benchmark via ReportMetric, so `-bench` output doubles as
// a regression record of the reproduced results.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/sandbox"
)

// benchCtx is the shared benchmark configuration. Seed 42 is the same world
// the experiment test suite validates (with seed 1, all three study accounts
// happen to hash into one placement group, which flattens the Fig. 8 step
// pattern — a legitimate outcome, but not the illustrative one).
func benchCtx() ExperimentContext { return ExperimentContext{Seed: 42, Quick: true} }

// runArtifact executes one experiment b.N times and reports the named
// metrics from the final run.
func runArtifact(b *testing.B, id string, reported ...string) {
	b.Helper()
	var res *ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment(id, benchCtx())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range reported {
		if v, ok := res.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- one benchmark per paper artifact ------------------------------------

func BenchmarkFig4FingerprintAccuracy(b *testing.B) {
	runArtifact(b, "fig4", "fmi@1s", "fmi@100ms", "recall@1ms", "precision@1000s")
}

func BenchmarkFig5ExpirationCDF(b *testing.B) {
	runArtifact(b, "fig5", "cdf_at_2_days", "median_expiration_days", "min_abs_r")
}

func BenchmarkFig6IdleTermination(b *testing.B) {
	runArtifact(b, "fig6", "grace_minutes", "all_gone_minutes")
}

func BenchmarkFig7BaseHosts(b *testing.B) {
	runArtifact(b, "fig7", "first_launch_hosts", "cumulative_after_6", "growth")
}

func BenchmarkFig8AccountBaseHosts(b *testing.B) {
	runArtifact(b, "fig8", "step_launch3", "step_launch5", "cumulative_after_6")
}

func BenchmarkFig9HelperHosts(b *testing.B) {
	runArtifact(b, "fig9", "extra_hosts_10min", "extra_hosts_2min", "extra_hosts_45min")
}

func BenchmarkFig10HelperOverlap(b *testing.B) {
	runArtifact(b, "fig10", "episode1_helpers", "cumulative_after_6_episodes")
}

func BenchmarkFig11aCoverageByCount(b *testing.B) {
	runArtifact(b, "fig11a",
		"coverage_us-east1_account-2", "coverage_us-central1_account-2", "coverage_us-west1_account-2")
}

func BenchmarkFig11bCoverageBySize(b *testing.B) {
	runArtifact(b, "fig11b", "size_spread_us-east1", "size_spread_us-central1")
}

func BenchmarkFig12ClusterScale(b *testing.B) {
	runArtifact(b, "fig12",
		"found_us-east1", "found_us-central1", "found_us-west1", "attacker_share_us-east1")
}

func BenchmarkTable1Sizes(b *testing.B) {
	runArtifact(b, "table1", "sizes")
}

func BenchmarkFreqMeasurement(b *testing.B) {
	runArtifact(b, "freq", "problematic_frac", "median_std_hz")
}

func BenchmarkVerifyCost(b *testing.B) {
	runArtifact(b, "verifycost", "ours_tests", "pairwise_tests", "speedup", "ours_usd")
}

func BenchmarkGen2Fingerprint(b *testing.B) {
	runArtifact(b, "gen2", "fmi", "precision", "recall", "hosts_per_fingerprint")
}

func BenchmarkNaiveStrategy(b *testing.B) {
	runArtifact(b, "naive", "zero_pairs", "high_pairs")
}

func BenchmarkAttackCost(b *testing.B) {
	runArtifact(b, "cost", "usd_us-east1", "usd_us-central1", "usd_us-west1")
}

func BenchmarkGen2Coverage(b *testing.B) {
	runArtifact(b, "gen2cov", "coverage_us-east1_account-2", "coverage_us-west1_account-2")
}

func BenchmarkMitigations(b *testing.B) {
	runArtifact(b, "mitigation",
		"gen1_recall_mitigated", "gen2_precision_mitigated", "timer_overhead_factor")
}

func BenchmarkExtraction(b *testing.B) {
	runArtifact(b, "extraction", "colocated_accuracy", "remote_accuracy")
}

func BenchmarkReattack(b *testing.B) {
	runArtifact(b, "reattack", "focus_effort", "reattack_focused_coverage")
}

// BenchmarkScaleKernel drives the lifecycle-kernel stress experiment (at
// Quick scale, like every bench) and reports the kernel's throughput
// trajectory: scheduler events per wall second and heap allocations per
// event, plus the deterministic event and peak-live counts they normalize.
// The quiet variant is the seed-era kernel workload; loaded attaches
// background-tenant traffic (-load 0.4) so the bench gate prices the
// event-kernel overhead of a living cloud.
func BenchmarkScaleKernel(b *testing.B) {
	run := func(b *testing.B, ctx ExperimentContext) {
		b.ReportAllocs()
		var res *ExperimentResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = RunExperiment("scale", ctx)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Metrics["runtime_events_per_sec"], "events/sec")
		b.ReportMetric(res.Metrics["runtime_allocs_per_event"], "allocs/event")
		b.ReportMetric(res.Metrics["events_executed"], "events")
		b.ReportMetric(res.Metrics["peak_live_instances"], "peak-live")
	}
	b.Run("quiet", func(b *testing.B) { run(b, benchCtx()) })
	b.Run("loaded", func(b *testing.B) {
		ctx := benchCtx()
		ctx.Load = 0.4
		run(b, ctx)
	})
}

// --- ablations ------------------------------------------------------------

// benchWorld launches n instances in a small single-region world.
func benchWorld(seed uint64, n int, gen sandbox.Gen) (*Platform, []*Instance) {
	p := faas.USEast1Profile()
	p.Name = "bench"
	p.NumHosts = 150
	p.PlacementGroups = 3
	p.BasePoolSize = 40
	p.AccountHelperPool = 70
	p.ServiceHelperSize = 55
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(seed, p)
	insts, err := pl.MustRegion("bench").Account("a").
		DeployService("s", faas.ServiceConfig{Gen: gen}).Launch(n)
	if err != nil {
		panic(err)
	}
	return pl, insts
}

func gen1Items(insts []*Instance, precision time.Duration) []coloc.Item {
	items := make([]coloc.Item, len(insts))
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			panic(err)
		}
		fp := fingerprint.Gen1FromSample(s, precision)
		items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	return items
}

// BenchmarkAblationThresholdM varies the covert-channel contention threshold
// m: larger m allows bigger groups per test (2m−1) but cannot confirm hosts
// holding fewer than m of our instances.
func BenchmarkAblationThresholdM(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var tests, recallPct float64
			for i := 0; i < b.N; i++ {
				pl, insts := benchWorld(11, 150, sandbox.Gen1)
				tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
				items := gen1Items(insts, fingerprint.DefaultPrecision)
				res, err := coloc.Verify(tester, items, coloc.Options{M: m})
				if err != nil {
					b.Fatal(err)
				}
				truth := make([]faas.HostID, len(insts))
				for j, inst := range insts {
					truth[j], _ = inst.HostID()
				}
				sc := metrics.ScoreOf(res.Labels, truth)
				tests = float64(res.Tests)
				recallPct = sc.Recall * 100
			}
			b.ReportMetric(tests, "tests")
			b.ReportMetric(recallPct, "recall%")
		})
	}
}

// BenchmarkAblationVerification compares the scalable methodology against
// the pairwise and SIE baselines at equal instance counts.
func BenchmarkAblationVerification(b *testing.B) {
	const n = 80
	run := func(b *testing.B, f func(coloc.Tester, []*Instance) (*coloc.Result, error)) {
		var tests float64
		for i := 0; i < b.N; i++ {
			pl, insts := benchWorld(12, n, sandbox.Gen1)
			tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
			res, err := f(tester, insts)
			if err != nil {
				b.Fatal(err)
			}
			tests = float64(res.Tests)
		}
		b.ReportMetric(tests, "tests")
	}
	b.Run("scalable", func(b *testing.B) {
		run(b, func(t coloc.Tester, insts []*Instance) (*coloc.Result, error) {
			return coloc.Verify(t, gen1Items(insts, fingerprint.DefaultPrecision), coloc.DefaultOptions())
		})
	})
	b.Run("pairwise", func(b *testing.B) { run(b, coloc.VerifyPairwise) })
	b.Run("sie", func(b *testing.B) { run(b, coloc.VerifySIE) })
}

// BenchmarkAblationFreqMethod compares fingerprinting with the reported TSC
// frequency (method 1: drifts, but works everywhere) against the measured
// frequency (method 2: drift-free, but unusable on problematic hosts).
func BenchmarkAblationFreqMethod(b *testing.B) {
	score := func(useMeasured bool) (fmi float64) {
		// A world with many timekeeping-disturbed hosts: this is where the
		// two methods diverge (method 2's estimates scatter, so co-located
		// instances derive different boot times — false negatives).
		p := faas.USEast1Profile()
		p.Name = "bench"
		p.NumHosts = 150
		p.PlacementGroups = 3
		p.BasePoolSize = 40
		p.AccountHelperPool = 70
		p.ServiceHelperSize = 55
		p.ServiceHelperFresh = 5
		p.ProblematicHostFrac = 0.5
		pl := faas.MustPlatform(13, p)
		insts, err := pl.MustRegion("bench").Account("a").
			DeployService("s", faas.ServiceConfig{}).Launch(150)
		if err != nil {
			b.Fatal(err)
		}
		truth := make([]faas.HostID, len(insts))
		for j, inst := range insts {
			truth[j], _ = inst.HostID()
		}
		fps := make([]fingerprint.Gen1, len(insts))
		for j, inst := range insts {
			g := inst.MustGuest()
			s, err := fingerprint.CollectGen1(g)
			if err != nil {
				b.Fatal(err)
			}
			boot := s.BootTimeReported()
			if useMeasured {
				m, err := fingerprint.MeasureFrequency(g, pl.Scheduler(), 100*time.Millisecond, 10)
				if err != nil {
					b.Fatal(err)
				}
				boot = fingerprint.BootTimeMeasured(s, m)
			}
			fps[j] = fingerprint.Gen1FromBootTime(s.Model, boot, fingerprint.DefaultPrecision)
		}
		return metrics.ScoreOf(fps, truth).FMI
	}
	b.Run("reported", func(b *testing.B) {
		var fmi float64
		for i := 0; i < b.N; i++ {
			fmi = score(false)
		}
		b.ReportMetric(fmi, "fmi")
	})
	b.Run("measured", func(b *testing.B) {
		var fmi float64
		for i := 0; i < b.N; i++ {
			fmi = score(true)
		}
		b.ReportMetric(fmi, "fmi")
	})
}

// BenchmarkAblationLaunchInterval sweeps the relaunch interval of the
// optimized strategy: the demand window (30 min) gates helper placement.
func BenchmarkAblationLaunchInterval(b *testing.B) {
	for _, interval := range []time.Duration{2 * time.Minute, 10 * time.Minute, 45 * time.Minute} {
		b.Run(interval.String(), func(b *testing.B) {
			var footprint float64
			for i := 0; i < b.N; i++ {
				pl, _ := benchWorld(14, 1, sandbox.Gen1)
				dc := pl.MustRegion("bench")
				cfg := DefaultAttackConfig()
				cfg.Services = 2
				cfg.InstancesPerLaunch = 200
				cfg.Launches = 4
				cfg.Interval = interval
				res, err := RunOptimizedAttack(dc.Account("atk"), cfg, Gen1)
				if err != nil {
					b.Fatal(err)
				}
				footprint = float64(res.Footprint.Cumulative())
			}
			b.ReportMetric(footprint, "hosts")
		})
	}
}

// BenchmarkAblationServiceCount sweeps the number of attacker services:
// same-account helper sets overlap, so returns diminish.
func BenchmarkAblationServiceCount(b *testing.B) {
	for _, services := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("services=%d", services), func(b *testing.B) {
			var footprint float64
			for i := 0; i < b.N; i++ {
				pl, _ := benchWorld(15, 1, sandbox.Gen1)
				dc := pl.MustRegion("bench")
				cfg := DefaultAttackConfig()
				cfg.Services = services
				cfg.InstancesPerLaunch = 200
				cfg.Launches = 4
				res, err := RunOptimizedAttack(dc.Account("atk"), cfg, Gen1)
				if err != nil {
					b.Fatal(err)
				}
				footprint = float64(res.Footprint.Cumulative())
			}
			b.ReportMetric(footprint, "hosts")
		})
	}
}

// BenchmarkCampaign drives the full campaign engine — launch, fingerprint,
// verify, score — once per iteration for each built-in launch strategy, and
// reports the ledger headlines. The -benchmem numbers bound the engine's
// overhead over the raw strategy loops; the per-wave allocation budget is
// asserted by TestRecordWaveAllocs.
func BenchmarkCampaign(b *testing.B) {
	for _, strat := range AttackStrategies() {
		b.Run(strat.Name(), func(b *testing.B) {
			var st CampaignStats
			for i := 0; i < b.N; i++ {
				pl, vic := benchWorld(16, 60, sandbox.Gen1)
				dc := pl.MustRegion("bench")
				cfg := DefaultAttackConfig()
				cfg.Services = 2
				cfg.InstancesPerLaunch = 200
				cfg.Launches = 4
				camp, err := NewAttackCampaign(dc.Account("atk"), cfg, Gen1, strat)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := camp.Launch(); err != nil {
					b.Fatal(err)
				}
				if _, _, err := camp.Verify(vic); err != nil {
					b.Fatal(err)
				}
				st = camp.Stats()
			}
			b.ReportMetric(float64(st.ApparentHosts), "hosts")
			b.ReportMetric(st.USD, "usd")
			b.ReportMetric(st.CoverageFraction(), "coverage")
		})
	}
	// The sharded fleet path: one campaign across three unequal region
	// worlds, coordinated by the adaptive cross-region budget planner, with
	// per-region victim sets verified shard by shard.
	b.Run("multiregion", func(b *testing.B) {
		var fs FleetStats
		var cov Coverage
		for i := 0; i < b.N; i++ {
			sizes := []struct{ hosts, groups, base, acct, svc, fresh int }{
				{150, 3, 40, 70, 55, 5},
				{80, 2, 30, 40, 30, 3},
				{220, 4, 50, 100, 80, 8},
			}
			profs := make([]RegionProfile, len(sizes))
			for j, s := range sizes {
				p := faas.USEast1Profile()
				p.Name = faas.Region(fmt.Sprintf("bench-%d", j))
				p.NumHosts = s.hosts
				p.PlacementGroups = s.groups
				p.BasePoolSize = s.base
				p.AccountHelperPool = s.acct
				p.ServiceHelperSize = s.svc
				p.ServiceHelperFresh = s.fresh
				profs[j] = p
			}
			fleet, err := NewFleet(16, profs...)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultAttackConfig()
			cfg.Services = 2
			cfg.InstancesPerLaunch = 200
			cfg.Launches = 4
			fc, err := NewFleetAttackCampaign(fleet, "atk", cfg, Gen1, OptimizedStrategy{}, CrossRegionPlanner{})
			if err != nil {
				b.Fatal(err)
			}
			if err := fc.Launch(); err != nil {
				b.Fatal(err)
			}
			victims := make(map[Region][]*Instance, fleet.Size())
			for _, dc := range fleet.Shards() {
				vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(60)
				if err != nil {
					b.Fatal(err)
				}
				victims[dc.Region()] = vic
			}
			vers, err := fc.Verify(victims)
			if err != nil {
				b.Fatal(err)
			}
			covs := make([]Coverage, len(vers))
			for j, v := range vers {
				covs[j] = v.Coverage
			}
			cov = MergeCoverages(covs...)
			fs = fc.Stats()
		}
		b.ReportMetric(float64(fs.Totals().ApparentHosts), "hosts")
		b.ReportMetric(fs.Totals().USD, "usd")
		b.ReportMetric(cov.Fraction(), "coverage")
		b.ReportMetric(float64(fs.RoundsUsed), "rounds")
	})
}

// BenchmarkPlacement measures the raw placement path — deploy a fresh
// service and cold-launch 200 instances — under each placement policy.
// CloudRun pays for helper-set construction and ranked noisy selection;
// random-uniform for one fleet-wide sample; least-loaded for a load sort.
func BenchmarkPlacement(b *testing.B) {
	for _, pol := range PlacementPolicies() {
		b.Run(pol.Name(), func(b *testing.B) {
			p := faas.USEast1Profile()
			p.Name = "bench"
			p.NumHosts = 150
			p.PlacementGroups = 3
			p.BasePoolSize = 40
			p.AccountHelperPool = 70
			p.ServiceHelperSize = 55
			p.ServiceHelperFresh = 5
			p.Policy = pol
			pl := faas.MustPlatform(18, p)
			dc := pl.MustRegion("bench")
			acct := dc.Account("a")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc := acct.DeployService(fmt.Sprintf("s%d", i), faas.ServiceConfig{})
				if _, err := svc.Launch(200); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Drain the fleet so iterations don't pile up instances.
				svc.Disconnect()
				pl.Scheduler().Advance(16 * time.Minute)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationChannel compares the pluggable covert-channel primitives:
// the paper's RNG channel, the memory-bus channel of prior co-location
// studies, the fast-but-noisy LLC family, and the majority-combined tester of
// all three. Equal verification quality on a quiet world; what differs is the
// serialized channel time each family pays per verification.
func BenchmarkAblationChannel(b *testing.B) {
	for _, name := range covert.ChannelNames() {
		b.Run(name, func(b *testing.B) {
			var tests float64
			var minutes float64
			for i := 0; i < b.N; i++ {
				pl, insts := benchWorld(16, 120, sandbox.Gen1)
				runner, err := covert.RunnerFor(name, pl.Scheduler(), 0)
				if err != nil {
					b.Fatal(err)
				}
				items := gen1Items(insts, fingerprint.DefaultPrecision)
				res, err := coloc.Verify(runner, items, coloc.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				tests = float64(res.Tests)
				minutes = res.SerializedTime.Minutes()
			}
			b.ReportMetric(tests, "tests")
			b.ReportMetric(minutes, "verify-minutes")
		})
	}
}

// BenchmarkAblationSandboxGeneration quantifies the §2.3 trade-off that
// makes Gen 1 the platform default: container startup latency (Gen 1 fast,
// Gen 2 VM slow) on image-warm hosts.
func BenchmarkAblationSandboxGeneration(b *testing.B) {
	for _, gen := range []sandbox.Gen{sandbox.Gen1, sandbox.Gen2} {
		b.Run(gen.String(), func(b *testing.B) {
			var medianMs float64
			for i := 0; i < b.N; i++ {
				pl, _ := benchWorld(17, 1, gen)
				dc := pl.MustRegion("bench")
				svc := dc.Account("a").DeployService("svc", faas.ServiceConfig{Gen: gen})
				if _, err := svc.Launch(150); err != nil {
					b.Fatal(err)
				}
				svc.Disconnect()
				pl.Scheduler().Advance(45 * time.Minute)
				insts, err := svc.Launch(150)
				if err != nil {
					b.Fatal(err)
				}
				lats := make([]float64, len(insts))
				for j, inst := range insts {
					lats[j] = float64(inst.StartupLatency().Milliseconds())
				}
				sort.Float64s(lats)
				medianMs = lats[len(lats)/2]
			}
			b.ReportMetric(medianMs, "startup-ms-p50")
		})
	}
}

// BenchmarkAblationDynamicPlacement sweeps the base-pool resampling fraction
// — the mechanism behind us-central1's lower coverage: the more of a
// victim's base pool is reshuffled per cold launch, the more of its
// instances escape a fixed attacker footprint.
func BenchmarkAblationDynamicPlacement(b *testing.B) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("resample=%.2f", frac), func(b *testing.B) {
			var coverage float64
			for i := 0; i < b.N; i++ {
				// A larger fleet with a modest attacker footprint (~40%),
				// so coverage hinges on placement predictability.
				p := faas.USEast1Profile()
				p.Name = "bench"
				p.NumHosts = 300
				p.PlacementGroups = 3
				p.BasePoolSize = 90
				p.AccountHelperPool = 90
				p.ServiceHelperSize = 70
				p.ServiceHelperFresh = 5
				if frac > 0 {
					p.DynamicPlacement = true
					p.DynamicResampleFrac = frac
				}
				pl := faas.MustPlatform(20, p)
				dc := pl.MustRegion("bench")
				cfg := DefaultAttackConfig()
				cfg.Services = 2
				cfg.InstancesPerLaunch = 250
				cfg.Launches = 4
				camp, err := RunOptimizedAttack(dc.Account("attacker"), cfg, Gen1)
				if err != nil {
					b.Fatal(err)
				}
				// Victim cold-launches several times; dynamic regions shuffle
				// part of its base pool each time.
				vicSvc := dc.Account("victim").DeployService("v", faas.ServiceConfig{})
				var vic []*Instance
				for l := 0; l < 3; l++ {
					vic, err = vicSvc.Launch(60)
					if err != nil {
						b.Fatal(err)
					}
					if l < 2 {
						vicSvc.Disconnect()
						pl.Scheduler().Advance(45 * time.Minute)
					}
				}
				tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
				cov, err := MeasureCoverage(tester, camp.Live, vic, cfg.Precision)
				if err != nil {
					b.Fatal(err)
				}
				coverage = cov.Fraction()
			}
			b.ReportMetric(coverage, "coverage")
		})
	}
}
