// Quickstart: deploy a service on the simulated FaaS platform, launch
// instances, fingerprint their hosts through the sandbox, and verify
// co-location with the covert channel — the full measurement loop of the
// paper in ~80 lines.
package main

import (
	"fmt"
	"log"
	"sort"

	"eaao"
)

func main() {
	// A deterministic cloud: same seed, same world.
	pl := eaao.NewPlatform(2024, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)

	// Deploy a service and scale it out to 60 concurrently connected
	// instances (one WebSocket connection per instance, as in the paper).
	svc := dc.Account("quickstart").DeployService("probe", eaao.ServiceConfig{})
	insts, err := svc.Launch(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launched %d instances of %q\n\n", len(insts), svc.Name())

	// Fingerprint every instance's physical host: read the TSC and the wall
	// clock inside the sandbox, derive the host boot time (Eq. 4.1), round
	// to 1 s.
	items := make([]eaao.VerifyItem, len(insts))
	unique := make(map[eaao.Gen1Fingerprint]int)
	for i, inst := range insts {
		g := inst.MustGuest()
		sample, err := eaao.CollectGen1(g)
		if err != nil {
			log.Fatal(err)
		}
		fp := eaao.Gen1FromSample(sample, eaao.DefaultPrecision)
		unique[fp]++
		items[i] = eaao.VerifyItem{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	fmt.Printf("%d apparent hosts among %d instances:\n", len(unique), len(insts))
	keys := make([]string, 0, len(unique))
	byKey := make(map[string]int, len(unique))
	for fp, n := range unique {
		keys = append(keys, fp.String())
		byKey[fp.String()] = n
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(unique)-5)
			break
		}
		fmt.Printf("  %-64s ×%d\n", k, byKey[k])
	}

	// Verify the fingerprints with the scalable covert-channel methodology:
	// O(hosts) tests instead of O(instances²).
	tester := eaao.NewCovertTester(pl.Scheduler())
	res, err := eaao.VerifyColocation(tester, items, eaao.DefaultVerifyOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverified %d co-location clusters using %d covert-channel tests (%v serialized)\n",
		len(res.Clusters), res.Tests, res.SerializedTime)
	fmt.Printf("pairwise testing would have needed %d tests\n", len(insts)*(len(insts)-1)/2)
	if res.FalsePositiveSplits == 0 && res.FalseNegativeMerges == 0 {
		fmt.Println("fingerprints were perfect: no false positives, no false negatives")
	} else {
		fmt.Printf("verification fixed %d false-positive groups and %d false-negative merges\n",
			res.FalsePositiveSplits, res.FalseNegativeMerges)
	}
}
