// Fingerprint expiry: track hosts for several simulated days and watch the
// derived boot times drift (§4.4.2). Because the reported TSC frequency is
// off by a constant ε per host, T_boot drifts linearly (Eq. 4.2); fitting the
// drift predicts when each fingerprint crosses a rounding boundary and
// "expires".
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"eaao"
)

func main() {
	pl := eaao.NewPlatform(5, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)
	sched := pl.Scheduler()

	svc := dc.Account("tracker").DeployService("long-runner", eaao.ServiceConfig{})
	if _, err := svc.Launch(30); err != nil {
		log.Fatal(err)
	}

	// Collect a fingerprint history per instance, hourly for four days. The
	// platform occasionally recycles instances onto other hosts, truncating
	// histories — exactly what the paper observed over its week-long run.
	histories := make(map[string]*eaao.FingerprintHistory)
	for hour := 0; hour <= 4*24; hour++ {
		for _, inst := range svc.ActiveInstances() {
			g, err := inst.Guest()
			if err != nil {
				continue
			}
			s, err := eaao.CollectGen1(g)
			if err != nil {
				log.Fatal(err)
			}
			h := histories[inst.ID()]
			if h == nil {
				h = &eaao.FingerprintHistory{}
				histories[inst.ID()] = h
			}
			h.Add(pl.Now(), s.BootTimeReported())
		}
		sched.Advance(time.Hour)
	}

	type row struct {
		id    string
		rate  float64 // seconds of drift per day
		r     float64
		exp   time.Duration
		never bool
	}
	var rows []row
	for id, h := range histories {
		if h.Span() < 24*time.Hour {
			continue // too short to fit, as in the paper's filtering
		}
		drift, err := h.FitDrift()
		if err != nil {
			continue
		}
		exp, ok := drift.Expiration(eaao.DefaultPrecision)
		rows = append(rows, row{
			id:    id,
			rate:  drift.Rate * 86400,
			r:     drift.R,
			exp:   exp,
			never: !ok,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].exp < rows[j].exp })

	fmt.Printf("%d fingerprint histories of ≥24h (instance churn truncated the rest)\n\n", len(rows))
	fmt.Printf("%-40s %14s %8s %s\n", "instance", "drift (s/day)", "|r|", "expires in")
	for _, r := range rows {
		exp := "never"
		if !r.never {
			exp = r.exp.Round(time.Hour).String()
		}
		abs := r.r
		if abs < 0 {
			abs = -abs
		}
		fmt.Printf("%-40s %14.4f %8.5f %s\n", r.id, r.rate, abs, exp)
	}
	fmt.Println("\nevery |r| ≈ 1: the drift is linear, exactly as Eq. 4.2 predicts —")
	fmt.Println("an attacker refreshes fingerprints every day or two and tracks hosts indefinitely")
}
