// Defended platform: run the same fingerprinting attack against a fleet
// with the §6 mitigations enabled — trap-and-emulate rdtsc in Gen 1 and
// hardware TSC scaling in Gen 2 — and watch both fingerprints die, then see
// what the defense costs timer-heavy applications.
package main

import (
	"fmt"
	"log"

	"eaao"
)

func main() {
	baseline := eaao.USEast1Profile()

	hardened := eaao.USEast1Profile()
	hardened.Mitigations = eaao.Mitigations{
		TrapAndEmulateTSC: true, // Gen 1: CR4.TSD traps rdtsc into the kernel
		TSCScaling:        true, // Gen 2: hardware offsetting + scaling
	}

	for _, world := range []struct {
		name string
		prof eaao.RegionProfile
	}{
		{"baseline", baseline},
		{"hardened", hardened},
	} {
		pl := eaao.NewPlatform(33, world.prof)
		dc := pl.MustRegion(eaao.USEast1)
		insts, err := dc.Account("attacker").
			DeployService("probe", eaao.ServiceConfig{}).Launch(120)
		if err != nil {
			log.Fatal(err)
		}

		// Fingerprint every instance; count how many distinct "hosts" the
		// attacker believes it sees. On the hardened fleet the derived boot
		// time is the sandbox's own (staggered) start, so the "apparent
		// hosts" are arbitrary groupings of unrelated sandboxes — useless
		// for tracking machines.
		fps := make(map[eaao.Gen1Fingerprint]bool)
		for _, inst := range insts {
			s, err := eaao.CollectGen1(inst.MustGuest())
			if err != nil {
				log.Fatal(err)
			}
			fps[eaao.Gen1FromSample(s, eaao.DefaultPrecision)] = true
		}

		// And what does a timer-hungry tenant pay? Per-read cost through the
		// same sandbox.
		g := insts[0].MustGuest()
		fmt.Printf("%-9s %3d instances → %3d apparent hosts; timer read costs %v\n",
			world.name, len(insts), len(fps), g.TimerReadCost())
	}

	fmt.Println()
	fmt.Println("hardened: the derived boot times no longer identify machines (the")
	fmt.Println("'apparent hosts' are arbitrary groupings of sandbox start times), but")
	fmt.Println("every rdtsc now costs a kernel round trip — ~112x slower, which §6")
	fmt.Println("notes is prohibitive for databases, live media, and logging-heavy apps.")
	fmt.Println("Gen 2's hardware TSC scaling gets the same protection for free.")
}
