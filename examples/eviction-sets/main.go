// Eviction sets: the step after co-location. §4.1 notes that cpuid's CPU
// model and cache-hierarchy information — which both sandbox generations
// expose — is "essential for many cache-based side-channel attacks". This
// example reads the cache geometry through a sandbox exactly as an attacker
// would, then builds a minimal LLC eviction set with the group-testing
// reduction of Vila et al. (the paper's [61]).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eaao"
	"eaao/internal/cache"
)

func main() {
	// Land an instance and read the host's cache geometry via cpuid.
	pl := eaao.NewPlatform(12, eaao.USEast1Profile())
	insts, err := pl.MustRegion(eaao.USEast1).Account("attacker").
		DeployService("probe", eaao.ServiceConfig{}).Launch(1)
	if err != nil {
		log.Fatal(err)
	}
	info := insts[0].MustGuest().CPUID()
	fmt.Printf("cpuid: %s (%s)\n", info.Brand, info.Vendor)
	fmt.Printf("LLC: %d MiB, line %d B\n", info.L3Bytes>>20, info.CacheLineBytes)

	// Derive an LLC-slice geometry from the reported size, as an attacker
	// sizing eviction sets would (16-way slices are typical for this class
	// of parts; per-slice sets = size / (slices × ways × line)).
	const ways = 16
	const slices = 8
	sets := int(info.L3Bytes) / (slices * ways * info.CacheLineBytes)
	// Hardware set counts are powers of two; round the advertised capacity
	// down (marketing sizes include ways lost to slicing granularity).
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	fmt.Printf("assumed geometry per slice: %d sets × %d ways\n\n", sets, ways)

	llc, err := cache.New(sets, ways, info.CacheLineBytes)
	if err != nil {
		log.Fatal(err)
	}

	// The victim address we want to monitor, and a large candidate pool the
	// attacker would obtain by mapping memory.
	victim := uint64(0x7f31_2a40)
	pool := cache.CongruentAddresses(llc, victim, 3*ways)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		pool = append(pool, uint64(rng.Intn(1<<30))&^uint64(info.CacheLineBytes-1))
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	set, err := cache.FindEvictionSet(llc, victim, pool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced %d candidates to a minimal eviction set of %d lines:\n", len(pool), len(set))
	for _, a := range set {
		fmt.Printf("  %#010x (set %d)\n", a, llc.SetIndex(a))
	}
	llc.Flush()
	fmt.Printf("\nset evicts the victim: %v — prime+probe on this set now observes\n", cache.Evicts(llc, victim, set))
	fmt.Println("every victim access to that cache set (see examples/colocation-attack")
	fmt.Println("for the co-location step that makes the shared cache reachable at all)")
	accesses, misses := llc.Stats()
	fmt.Printf("(construction cost: %d cache accesses, %d misses)\n", accesses, misses)
}
