// Placement study: reverse-engineer the simulated orchestrator exactly as
// §5.1 of the paper does to Cloud Run, reproducing Observations 1-6 — base
// hosts, idle termination, per-account affinity, and the helper-host load
// balancing that the optimized attack exploits.
package main

import (
	"fmt"
	"log"
	"time"

	"eaao"
)

const launchSize = 400

func main() {
	pl := eaao.NewPlatform(7, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)
	sched := pl.Scheduler()

	fmt.Println("== Experiment 1: instance distribution (Obs. 1 & 2) ==")
	svc := dc.Account("studier").DeployService("exp1", eaao.ServiceConfig{})
	insts, err := svc.Launch(launchSize)
	if err != nil {
		log.Fatal(err)
	}
	tracker := func(list []*eaao.Instance) int {
		n, err := newTracker().Record(list)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	hosts := tracker(insts)
	fmt.Printf("%d instances spread over %d apparent hosts (~%.1f per host)\n",
		launchSize, hosts, float64(launchSize)/float64(hosts))

	terms := 0
	for _, inst := range insts {
		inst.OnSIGTERM(func(*eaao.Instance, eaao.Time) { terms++ })
	}
	svc.Disconnect()
	sched.Advance(2 * time.Minute)
	fmt.Printf("after 2 idle minutes: %d terminated (grace period)\n", terms)
	sched.Advance(10 * time.Minute)
	fmt.Printf("after 12 idle minutes: %d/%d terminated (gradual reaping)\n\n", terms, launchSize)

	fmt.Println("== Experiment 2: behavior across launches (Obs. 3) ==")
	t := newTracker()
	for launch := 1; launch <= 4; launch++ {
		sched.Advance(45 * time.Minute) // cold gap
		insts, err := svc.Launch(launchSize)
		if err != nil {
			log.Fatal(err)
		}
		ap, err := t.Record(insts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("launch %d: %3d apparent hosts, %3d cumulative\n", launch, ap, t.Cumulative())
		svc.Disconnect()
	}
	fmt.Println("→ the footprint barely grows: the account has stable base hosts")

	fmt.Println("\n== Experiment 3: different accounts (Obs. 4) ==")
	for _, acct := range []string{"studier", "other-tenant"} {
		t := newTracker()
		sched.Advance(45 * time.Minute)
		s := dc.Account(acct).DeployService("exp3", eaao.ServiceConfig{})
		insts, err := s.Launch(launchSize)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := t.Record(insts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("account %-14s occupies %d apparent hosts\n", acct, t.Cumulative())
		s.Disconnect()
	}
	fmt.Println("→ different accounts land on different base hosts")

	fmt.Println("\n== Experiment 4: short launch intervals (Obs. 5 & 6) ==")
	sched.Advance(45 * time.Minute)
	hot := dc.Account("studier").DeployService("exp4", eaao.ServiceConfig{})
	t4 := newTracker()
	for launch := 1; launch <= 5; launch++ {
		insts, err := hot.Launch(launchSize)
		if err != nil {
			log.Fatal(err)
		}
		ap, err := t4.Record(insts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("launch %d (10-min interval): %3d apparent hosts, %3d cumulative\n",
			launch, ap, t4.Cumulative())
		hot.Disconnect()
		sched.Advance(10 * time.Minute)
	}
	fmt.Println("→ repeated high demand spills instances onto helper hosts —")
	fmt.Println("  the behavior the optimized co-location attack exploits")
}

func newTracker() *eaao.FootprintTracker {
	return eaao.NewFootprintTracker(eaao.DefaultPrecision)
}
