// Co-location attack: the paper's end-to-end scenario. A victim runs a login
// service on the simulated platform; the attacker, a regular tenant with no
// placement control, first tries naive mass launching (Strategy 1) and then
// the optimized demand-priming strategy (Strategy 2), verifying co-location
// with the covert channel and pricing the whole campaign.
package main

import (
	"fmt"
	"log"
	"time"

	"eaao"
)

func main() {
	pl := eaao.NewPlatform(99, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)

	// The victim: an ordinary account running a sensitive service.
	victim := dc.Account("victim-corp")
	login := victim.DeployService("login", eaao.ServiceConfig{Size: eaao.SizeSmall})
	vicInsts, err := login.Launch(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim deployed %d instances of %q\n\n", len(vicInsts), login.Name())

	attacker := dc.Account("attacker")
	cfg := eaao.DefaultAttackConfig()
	cfg.Services = 4
	cfg.InstancesPerLaunch = 400
	tester := eaao.NewCovertTester(pl.Scheduler())

	// Strategy 1: naive cold launches. The instances land on the attacker's
	// own base hosts, which (usually) do not intersect the victim's.
	naive, err := eaao.RunNaiveAttack(attacker, cfg, eaao.Gen1)
	if err != nil {
		log.Fatal(err)
	}
	cov, err := eaao.MeasureCoverage(tester, naive.Live, vicInsts, cfg.Precision)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strategy 1 (naive): %d instances on %d apparent hosts → %s\n",
		len(naive.Live), naive.Footprint.Cumulative(), cov)

	// Tear the naive attempt down and wait for the account to go cold.
	for _, rec := range naive.Records {
		_ = rec
	}
	attackerCleanup(attacker, naive)
	pl.Scheduler().Advance(45 * 60 * 1e9)

	// Strategy 2: prime services into a high-demand state by relaunching at
	// 10-minute intervals. The load balancer spreads the attacker across
	// helper hosts — including the victim's.
	attacker.ResetBill()
	opt, err := eaao.RunOptimizedAttack(attacker, cfg, eaao.Gen1)
	if err != nil {
		log.Fatal(err)
	}
	// The victim's autoscaler may have replaced some instances while the
	// campaign ran; measure against the ones that exist now.
	vicInsts = login.ActiveInstances()
	var spies []*eaao.Instance
	cov, spies, err = eaao.MeasureCoverageDetail(tester, opt.Live, vicInsts, cfg.Precision)
	if err != nil {
		log.Fatal(err)
	}
	bill := attacker.Bill()
	cost := eaao.CloudRunRates().Cost(bill.VCPUSeconds, bill.GBSeconds)
	fmt.Printf("Strategy 2 (optimized): %d instances on %d apparent hosts → %s\n",
		len(opt.Live), opt.Footprint.Cumulative(), cov)
	fmt.Printf("campaign cost: %.2f USD (%d launches, %d instances created)\n\n",
		cost, bill.Launches, bill.Instances)

	if !cov.AtLeastOne {
		fmt.Println("no co-location achieved — try more services or launches")
		return
	}

	// Step 2 of the threat model: from a verified co-located spy, detect
	// when the victim's sensitive routine runs. The login service leaks a
	// 16-bit session secret through its execution pattern.
	fmt.Printf("co-located: %d spy instances share hosts with the victim — starting extraction\n", len(spies))
	spy := spies[0]
	spyHost, _ := spy.HostID()
	var target *eaao.Instance
	for _, v := range vicInsts {
		if id, _ := v.HostID(); id == spyHost {
			target = v
			break
		}
	}
	secret := []bool{true, false, true, true, false, false, true, false,
		true, true, true, false, false, false, true, true}
	sched := eaao.ExtractionSchedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       secret,
	}
	target.SetWorkload(sched.Activity())
	trace, err := eaao.MonitorExtraction(pl.Scheduler(), spy, sched, eaao.DefaultMonitorConfig())
	if err != nil {
		log.Fatal(err)
	}
	recovered := ""
	for _, b := range trace.Bits {
		if b {
			recovered += "1"
		} else {
			recovered += "0"
		}
	}
	fmt.Printf("victim secret bits recovered: %s (accuracy %.0f%%)\n",
		recovered, trace.BitAccuracy(secret)*100)
}

// attackerCleanup disconnects every live instance of a finished campaign.
func attackerCleanup(acct *eaao.Account, res *eaao.CampaignResult) {
	seen := map[*eaao.Service]bool{}
	for _, inst := range res.Live {
		if svc := inst.Service(); !seen[svc] {
			seen[svc] = true
			svc.Disconnect()
		}
	}
	_ = acct
}
