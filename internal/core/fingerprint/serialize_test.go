package fingerprint

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGen1TextRoundTrip(t *testing.T) {
	f := func(bucket int64, precRaw uint32, model string) bool {
		prec := int64(precRaw%1e9) + 1
		orig := Gen1{Model: model, BootBucket: bucket, PrecisionNs: prec}
		text, err := orig.MarshalText()
		if err != nil {
			return false
		}
		var back Gen1
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		return back == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGen1TextRoundTripRealModel(t *testing.T) {
	orig := Gen1FromBootTime("Intel(R) Xeon(R) CPU @ 2.00GHz", 123456.789, time.Second)
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Gen1
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: %+v != %+v", back, orig)
	}
	if back.Precision() != time.Second {
		t.Errorf("Precision() = %v", back.Precision())
	}
}

func TestGen1MarshalRejectsZeroPrecision(t *testing.T) {
	if _, err := (Gen1{Model: "M"}).MarshalText(); err == nil {
		t.Error("zero-precision fingerprint marshaled")
	}
}

func TestGen1UnmarshalErrors(t *testing.T) {
	for _, bad := range []string{
		"", "gen2|100|M", "gen1|x|5|M", "gen1|0|5|M", "gen1|100|x|M", "gen1|100|5",
	} {
		var fp Gen1
		if err := fp.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("%q unmarshaled", bad)
		}
	}
}

func TestGen2TextRoundTrip(t *testing.T) {
	f := func(khz int64, model string) bool {
		orig := Gen2{Model: model, FreqKHz: khz}
		text, err := orig.MarshalText()
		if err != nil {
			return false
		}
		var back Gen2
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		return back == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGen2UnmarshalErrors(t *testing.T) {
	for _, bad := range []string{"", "gen1|1|2|M", "gen2|x|M", "gen2|5"} {
		var fp Gen2
		if err := fp.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("%q unmarshaled", bad)
		}
	}
}
