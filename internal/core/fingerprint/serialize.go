package fingerprint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Textual serialization of fingerprints, for persisting host books across
// attack sessions (the §5.2 re-attack optimization spans days). The format
// is a single line:
//
//	gen1|<precision-ns>|<boot-bucket>|<model>
//	gen2|<freq-khz>|<model>
//
// The model comes last because brand strings contain arbitrary characters
// (including '|' in principle is excluded by x86 brand strings, but keeping
// it last makes the parse unambiguous regardless).

// MarshalText implements encoding.TextMarshaler.
func (f Gen1) MarshalText() ([]byte, error) {
	if f.PrecisionNs <= 0 {
		return nil, fmt.Errorf("fingerprint: cannot marshal Gen1 with precision %d", f.PrecisionNs)
	}
	return []byte(fmt.Sprintf("gen1|%d|%d|%s", f.PrecisionNs, f.BootBucket, f.Model)), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *Gen1) UnmarshalText(b []byte) error {
	parts := strings.SplitN(string(b), "|", 4)
	if len(parts) != 4 || parts[0] != "gen1" {
		return fmt.Errorf("fingerprint: malformed Gen1 text %q", b)
	}
	prec, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || prec <= 0 {
		return fmt.Errorf("fingerprint: bad precision in %q", b)
	}
	bucket, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return fmt.Errorf("fingerprint: bad bucket in %q", b)
	}
	*f = Gen1{Model: parts[3], BootBucket: bucket, PrecisionNs: prec}
	return nil
}

// Precision returns p_boot as a duration.
func (f Gen1) Precision() time.Duration { return time.Duration(f.PrecisionNs) }

// MarshalText implements encoding.TextMarshaler.
func (f Gen2) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("gen2|%d|%s", f.FreqKHz, f.Model)), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *Gen2) UnmarshalText(b []byte) error {
	parts := strings.SplitN(string(b), "|", 3)
	if len(parts) != 3 || parts[0] != "gen2" {
		return fmt.Errorf("fingerprint: malformed Gen2 text %q", b)
	}
	khz, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("fingerprint: bad frequency in %q", b)
	}
	*f = Gen2{Model: parts[2], FreqKHz: khz}
	return nil
}
