package fingerprint

import "fmt"

// Key is the comparable identity of a host fingerprint: a fixed-size struct
// usable directly as a map key. Grouping code (coloc.Verify, coverage
// deduplication) works on Keys so the per-instance hot paths never render or
// hash strings; String exists only for logs and reports.
//
// Keys of different fingerprint generations never compare equal (Kind
// differs), exactly as the old string renderings never collided.
type Key struct {
	// Kind discriminates the fingerprint family: 1 for Gen 1, 2 for Gen 2.
	// Synthetic keys (tests, tools) may use 0.
	Kind uint8
	// Model is the CPU brand string.
	Model string
	// A and B carry the family-specific identity: Gen 1 stores the boot
	// bucket and the precision in nanoseconds, Gen 2 the refined frequency
	// in kHz (B unused).
	A, B int64
}

// Key returns the fingerprint's comparable identity. It is injective: two
// Gen 1 fingerprints map to the same Key iff they are equal.
func (f Gen1) Key() Key {
	return Key{Kind: 1, Model: f.Model, A: f.BootBucket, B: f.PrecisionNs}
}

// Key returns the fingerprint's comparable identity (injective over Gen2).
func (f Gen2) Key() Key {
	return Key{Kind: 2, Model: f.Model, A: f.FreqKHz}
}

// String renders the key for logs, matching the underlying fingerprint's own
// rendering where one exists.
func (k Key) String() string {
	switch k.Kind {
	case 1:
		return Gen1{Model: k.Model, BootBucket: k.A, PrecisionNs: k.B}.String()
	case 2:
		return Gen2{Model: k.Model, FreqKHz: k.A}.String()
	}
	return fmt.Sprintf("key{%s, %d, %d}", k.Model, k.A, k.B)
}
