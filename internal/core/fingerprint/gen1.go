// Package fingerprint implements the paper's two physical-host
// fingerprinting techniques (§4):
//
//   - Gen 1 (gVisor containers): the host's CPU model plus its boot time,
//     derived from the raw TSC via Eq. 4.1 (T_boot = T_w − tsc/f) and rounded
//     to a precision p_boot. The TSC frequency f is either the *reported*
//     labeled base frequency (method 1: robust but drifts, so fingerprints
//     expire) or a *measured* frequency (method 2: drift-free but unusable on
//     ~10% of hosts with disturbed timekeeping).
//   - Gen 2 (VMs with TSC offsetting): the boot time is hidden, but the
//     kernel-refined actual host TSC frequency (1 kHz precision) leaks
//     through the guest kernel and identifies hosts — coarsely, but with no
//     false negatives.
//
// The package also tracks fingerprint histories over time to estimate drift
// and expiration (§4.4.2).
package fingerprint

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// DefaultPrecision is the paper's default rounding precision p_boot = 1 s,
// the upper end of the 100 ms–1 s sweet spot (it maximizes fingerprint
// lifetime at equal accuracy).
const DefaultPrecision = time.Second

// Sample is one raw Gen 1 measurement: a TSC value paired with the wall
// clock time it was taken at, plus the host identity hints read via cpuid.
type Sample struct {
	// Model is the CPU brand string.
	Model string
	// TSC is the counter value read via rdtsc.
	TSC uint64
	// Wall is the (noisy) wall-clock timestamp paired with the read.
	Wall simtime.Time
	// ReportedHz is the TSC frequency inferred from the model name.
	ReportedHz float64
}

// CollectGen1 takes one Gen 1 measurement from inside a guest. It works in
// Gen 2 as well, but the boot time it leads to is the VM's, not the host's —
// use Gen 2 fingerprints there instead.
func CollectGen1(g *sandbox.Guest) (Sample, error) {
	if g.ProbeFault() {
		return Sample{}, fmt.Errorf("fingerprint: gen1 collection: %w", sandbox.ErrProbeFault)
	}
	hz, err := g.ReportedTSCHz()
	if err != nil {
		return Sample{}, fmt.Errorf("fingerprint: no reported frequency: %w", err)
	}
	tsc, wall := g.ReadTSCAndWall()
	return Sample{
		Model:      g.CPUModelName(),
		TSC:        tsc,
		Wall:       wall,
		ReportedHz: hz,
	}, nil
}

// BootTimeSeconds derives the host boot time via Eq. 4.1 using the given TSC
// frequency, in seconds since the simulation epoch.
func (s Sample) BootTimeSeconds(freqHz float64) float64 {
	return s.Wall.Seconds() - float64(s.TSC)/freqHz
}

// BootTimeReported derives the boot time with the reported frequency
// (method 1 of §4.2).
func (s Sample) BootTimeReported() float64 { return s.BootTimeSeconds(s.ReportedHz) }

// Gen1 is a Gen 1 host fingerprint: the CPU model plus the derived boot time
// rounded to a precision bucket. Two fingerprints are comparable only when
// taken with the same precision; equality of the struct is fingerprint match.
type Gen1 struct {
	Model string
	// BootBucket is round(T_boot / p_boot): the quantized boot time.
	BootBucket int64
	// PrecisionNs is p_boot in nanoseconds, kept in the identity so that
	// fingerprints of different precisions never collide.
	PrecisionNs int64
}

// Gen1FromSample quantizes a sample into a fingerprint at the given
// precision. It panics if precision is not positive.
func Gen1FromSample(s Sample, precision time.Duration) Gen1 {
	return Gen1FromBootTime(s.Model, s.BootTimeReported(), precision)
}

// Gen1FromBootTime builds a fingerprint from an already-derived boot time in
// seconds since epoch (e.g. one computed with a measured frequency).
func Gen1FromBootTime(model string, bootSeconds float64, precision time.Duration) Gen1 {
	if precision <= 0 {
		panic("fingerprint: non-positive precision")
	}
	p := precision.Seconds()
	return Gen1{
		Model:       model,
		BootBucket:  int64(math.Round(bootSeconds / p)),
		PrecisionNs: int64(precision),
	}
}

// BootTimeSeconds returns the bucket's representative boot time.
func (f Gen1) BootTimeSeconds() float64 {
	return float64(f.BootBucket) * time.Duration(f.PrecisionNs).Seconds()
}

// String renders the fingerprint for logs and reports.
func (f Gen1) String() string {
	return fmt.Sprintf("gen1{%s, boot=%s, p=%s}",
		f.Model,
		simtime.FromSeconds(f.BootTimeSeconds()).Real().Format(time.RFC3339),
		time.Duration(f.PrecisionNs))
}
