package fingerprint

import (
	"errors"
	"testing"
	"time"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// faultTestWorld is testWorld with a fault plan installed on the region.
func faultTestWorld(t *testing.T, seed uint64, n int, plan faas.FaultPlan) (*faas.Platform, []*faas.Instance) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 150
	p.PlacementGroups = 3
	p.BasePoolSize = 40
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	p.Faults = plan
	pl := faas.MustPlatform(seed, p)
	svc := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{})
	insts, err := svc.Launch(n)
	if err != nil {
		t.Fatal(err)
	}
	return pl, insts
}

// With probe faults certain, every collection fails — and fails loudly with
// the sentinel the attack layer retries on, never with a silently wrong
// sample.
func TestCollectFailsWithProbeFaultSentinel(t *testing.T) {
	_, insts := faultTestWorld(t, 3, 3, faas.FaultPlan{ProbeFailureRate: 1})
	if _, err := CollectGen1(insts[0].MustGuest()); !errors.Is(err, sandbox.ErrProbeFault) {
		t.Errorf("CollectGen1 error = %v, want ErrProbeFault", err)
	}
	if _, err := CollectGen2(insts[1].MustGuest()); !errors.Is(err, sandbox.ErrProbeFault) {
		t.Errorf("CollectGen2 error = %v, want ErrProbeFault", err)
	}
}

// A faulted frequency-measurement repetition must never be silently
// classifiable: any measurement containing a faulted sample blows StdHz past
// the usability threshold, even when every repetition faulted (identical
// corruption would otherwise yield a deceptively small deviation).
func TestFaultedFrequencyMeasurementNeverUsable(t *testing.T) {
	pl, insts := faultTestWorld(t, 4, 2, faas.FaultPlan{ProbeFailureRate: 1})
	m, err := MeasureFrequency(insts[0].MustGuest(), pl.Scheduler(), 100*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Usable() {
		t.Errorf("fully faulted measurement classified usable (StdHz %.0f)", m.StdHz)
	}
}

// TestRobustFrequencyRecoversTransients: under a transient probe-fault rate,
// plain MeasureFrequency misclassifies some healthy hosts as problematic,
// while RobustFrequency re-samples them back to usable; hosts that stay
// unusable through the budget end quarantined rather than fingerprinted.
func TestRobustFrequencyRecoversTransients(t *testing.T) {
	pl, insts := faultTestWorld(t, 5, 40, faas.FaultPlan{ProbeFailureRate: 0.15})
	sched := pl.Scheduler()
	clean, recovered, quarantined := 0, 0, 0
	for _, inst := range insts {
		m, q, err := RobustFrequency(inst.MustGuest(), sched, 100*time.Millisecond, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case q.Quarantined:
			if m.Usable() {
				t.Fatal("quarantined measurement reports usable")
			}
			quarantined++
		case q.Resamples > 0:
			if !m.Usable() {
				t.Fatal("non-quarantined measurement reports unusable")
			}
			recovered++
		default:
			clean++
		}
	}
	if recovered == 0 {
		t.Errorf("no host recovered via re-sampling (clean %d, quarantined %d); fault rate inert?",
			clean, quarantined)
	}
	if clean == 0 {
		t.Error("every host faulted at rate 0.15; fault stream suspiciously hot")
	}
}

// On a fault-free world RobustFrequency is MeasureFrequency: no re-samples,
// no quarantine, same draw sequence.
func TestRobustFrequencyFaultFreeIdentity(t *testing.T) {
	pl, insts := testWorld(t, 6, 10)
	sched := pl.Scheduler()
	for _, inst := range insts {
		m, q, err := RobustFrequency(inst.MustGuest(), sched, 100*time.Millisecond, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		if q.Resamples != 0 || q.Quarantined {
			t.Fatalf("clean world triggered recovery: %+v", q)
		}
		if !m.Usable() {
			t.Fatal("clean measurement unusable")
		}
	}
}
