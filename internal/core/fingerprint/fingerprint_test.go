package fingerprint

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// testWorld builds a small data center and launches instances, returning
// the live instances plus the platform for time control.
func testWorld(t *testing.T, seed uint64, n int) (*faas.Platform, []*faas.Instance) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 150
	p.PlacementGroups = 3
	p.BasePoolSize = 40
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(seed, p)
	svc := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{})
	insts, err := svc.Launch(n)
	if err != nil {
		t.Fatal(err)
	}
	return pl, insts
}

func TestGen1SameHostSameFingerprint(t *testing.T) {
	_, insts := testWorld(t, 1, 200)
	byHost := make(map[faas.HostID]map[Gen1]bool)
	for _, inst := range insts {
		s, err := CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := Gen1FromSample(s, DefaultPrecision)
		id, _ := inst.HostID()
		if byHost[id] == nil {
			byHost[id] = make(map[Gen1]bool)
		}
		byHost[id][fp] = true
	}
	// A host whose derived boot time sits exactly on a rounding boundary
	// can legitimately split across two buckets (the paper's rare false
	// negatives: 14 of 15 runs perfect). More than one such host, or a
	// split wider than adjacent buckets, is a bug.
	splits := 0
	for id, fps := range byHost {
		if len(fps) == 1 {
			continue
		}
		if len(fps) > 2 {
			t.Errorf("host %d produced %d distinct fingerprints", id, len(fps))
		}
		var buckets []int64
		for fp := range fps {
			buckets = append(buckets, fp.BootBucket)
		}
		if len(buckets) == 2 {
			d := buckets[0] - buckets[1]
			if d != 1 && d != -1 {
				t.Errorf("host %d fingerprints %d buckets apart", id, d)
			}
		}
		splits++
	}
	if splits > 1 {
		t.Errorf("%d hosts split fingerprints; expected at most one boundary case", splits)
	}
}

func TestGen1DifferentHostsDiffer(t *testing.T) {
	_, insts := testWorld(t, 2, 200)
	fpToHosts := make(map[Gen1]map[faas.HostID]bool)
	for _, inst := range insts {
		s, err := CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := Gen1FromSample(s, DefaultPrecision)
		id, _ := inst.HostID()
		if fpToHosts[fp] == nil {
			fpToHosts[fp] = make(map[faas.HostID]bool)
		}
		fpToHosts[fp][id] = true
	}
	collisions := 0
	for _, hosts := range fpToHosts {
		if len(hosts) > 1 {
			collisions++
		}
	}
	if collisions > 1 {
		t.Errorf("%d fingerprints span multiple hosts at 1 s precision", collisions)
	}
}

func TestGen1PrecisionInIdentity(t *testing.T) {
	s := Sample{Model: "M", TSC: 0, Wall: simtime.FromSeconds(1000), ReportedHz: 2e9}
	a := Gen1FromSample(s, time.Second)
	b := Gen1FromSample(s, 100*time.Millisecond)
	if a == b {
		t.Error("fingerprints of different precision compare equal")
	}
}

func TestGen1BootTimeAccuracy(t *testing.T) {
	// With 1 s rounding the derived boot bucket must sit within one bucket
	// of the true host boot time (drift is tiny right after boot sampling).
	_, insts := testWorld(t, 3, 50)
	for _, inst := range insts {
		s, err := CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := Gen1FromSample(s, time.Second)
		// True boot per ground truth: compare via derived seconds.
		derived := fp.BootTimeSeconds()
		raw := s.BootTimeReported()
		if math.Abs(derived-raw) > 0.5 {
			t.Errorf("bucket representative %v too far from raw %v", derived, raw)
		}
	}
}

// Property: rounding is stable under sub-precision perturbations most of the
// time, and never moves the bucket by more than one for perturbations under
// half a bucket.
func TestGen1RoundingStabilityProperty(t *testing.T) {
	f := func(bootMs int64, jitterRaw uint16) bool {
		boot := float64(bootMs%1e9) / 1000 // seconds
		jitter := (float64(jitterRaw%1000)/1000 - 0.5) * 0.4
		a := Gen1FromBootTime("M", boot, time.Second)
		b := Gen1FromBootTime("M", boot+jitter, time.Second)
		d := a.BootBucket - b.BootBucket
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGen1NonPositivePrecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Gen1FromBootTime("M", 1, 0)
}

func TestGen2NoFalseNegatives(t *testing.T) {
	// Launch Gen 2 instances: co-located ones must always share the
	// fingerprint (refinement happens once per host boot).
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 150
	p.PlacementGroups = 3
	p.BasePoolSize = 40
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(4, p)
	svc := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{Gen: sandbox.Gen2})
	insts, err := svc.Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	byHost := make(map[faas.HostID]Gen2)
	for _, inst := range insts {
		fp, err := CollectGen2(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		id, _ := inst.HostID()
		if prev, seen := byHost[id]; seen && prev != fp {
			t.Fatalf("host %d: Gen2 fingerprints differ: %v vs %v (false negative!)", id, prev, fp)
		}
		byHost[id] = fp
	}
}

func TestGen2FailsInGen1(t *testing.T) {
	_, insts := testWorld(t, 5, 1)
	if _, err := CollectGen2(insts[0].MustGuest()); err == nil {
		t.Error("CollectGen2 succeeded in a Gen1 sandbox")
	}
}

func TestMeasureFrequencyHealthyHost(t *testing.T) {
	pl, insts := testWorld(t, 6, 40)
	sched := pl.Scheduler()
	healthy := 0
	for _, inst := range insts {
		m, err := MeasureFrequency(inst.MustGuest(), sched, 100*time.Millisecond, 10)
		if err != nil {
			t.Fatal(err)
		}
		if m.Usable() {
			healthy++
			if m.StdHz > 5_000 {
				t.Errorf("usable measurement with std %v Hz", m.StdHz)
			}
		}
	}
	if healthy < 25 {
		t.Errorf("only %d/40 hosts had usable frequency measurements; expected ~90%%", healthy)
	}
	if healthy == 40 {
		t.Log("note: no problematic host sampled in this launch (possible)")
	}
}

func TestMeasuredFrequencyCloseToActual(t *testing.T) {
	pl, insts := testWorld(t, 7, 10)
	sched := pl.Scheduler()
	for _, inst := range insts {
		g := inst.MustGuest()
		m, err := MeasureFrequency(g, sched, 100*time.Millisecond, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Usable() {
			continue
		}
		reported, _ := g.ReportedTSCHz()
		// The measured value must be within ~100 kHz of the reported one
		// (ε is clipped at 50 kHz; measurement noise adds a little).
		if math.Abs(m.MeanHz-reported) > 2e5 {
			t.Errorf("measured %v vs reported %v: gap too large", m.MeanHz, reported)
		}
	}
}

func TestMeasureFrequencyArgumentErrors(t *testing.T) {
	pl, insts := testWorld(t, 8, 1)
	g := insts[0].MustGuest()
	if _, err := MeasureFrequency(g, pl.Scheduler(), 0, 10); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := MeasureFrequency(g, pl.Scheduler(), time.Millisecond, 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestHistoryFitDrift(t *testing.T) {
	var h History
	rate := 2.5e-6 // seconds of boot drift per second
	base := 1000.0
	for i := 0; i < 24; i++ {
		at := simtime.FromSeconds(float64(i) * 3600)
		h.Add(at, base+rate*float64(i)*3600)
	}
	d, err := h.FitDrift()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Rate-rate)/rate > 1e-9 {
		t.Errorf("fitted rate %v, want %v", d.Rate, rate)
	}
	if math.Abs(d.R) < 0.9997 {
		t.Errorf("|r| = %v, want >= 0.9997 on noise-free drift", d.R)
	}
	if h.Span() != 23*time.Hour {
		t.Errorf("span = %v", h.Span())
	}
}

func TestHistoryTooShort(t *testing.T) {
	var h History
	h.Add(0, 1)
	h.Add(simtime.FromSeconds(1), 1)
	if _, err := h.FitDrift(); err == nil {
		t.Error("2-point history fitted")
	}
}

func TestExpirationPositiveDrift(t *testing.T) {
	// Boot time at bucket center, drifting up at 1e-5 s/s with p=1s:
	// distance to the +0.5 boundary is 0.5 s → 50,000 s.
	d := Drift{Rate: 1e-5, LastWhenSec: 0, LastBootSec: 100.0}
	exp, ok := d.Expiration(time.Second)
	if !ok {
		t.Fatal("no expiration for drifting fingerprint")
	}
	want := 50_000 * time.Second
	if exp < want-time.Second || exp > want+time.Second {
		t.Errorf("expiration = %v, want ~%v", exp, want)
	}
}

func TestExpirationNegativeDrift(t *testing.T) {
	d := Drift{Rate: -1e-5, LastBootSec: 100.25}
	exp, ok := d.Expiration(time.Second)
	if !ok {
		t.Fatal("no expiration")
	}
	// Distance down to 99.5 is 0.75 s → 75,000 s.
	want := 75_000 * time.Second
	if exp < want-time.Second || exp > want+time.Second {
		t.Errorf("expiration = %v, want ~%v", exp, want)
	}
}

func TestExpirationFlat(t *testing.T) {
	d := Drift{Rate: 0, LastBootSec: 100}
	if _, ok := d.Expiration(time.Second); ok {
		t.Error("flat drift expired")
	}
}

// Property: expiration is always positive and shrinks as |rate| grows.
func TestExpirationMonotoneProperty(t *testing.T) {
	f := func(rateRaw uint16, bootRaw uint32) bool {
		rate := (float64(rateRaw) + 1) * 1e-9
		boot := float64(bootRaw) / 1000
		d1 := Drift{Rate: rate, LastBootSec: boot}
		d2 := Drift{Rate: rate * 2, LastBootSec: boot}
		e1, ok1 := d1.Expiration(time.Second)
		e2, ok2 := d2.Expiration(time.Second)
		if !ok1 || !ok2 {
			return false
		}
		return e1 >= 0 && e2 >= 0 && e2 <= e1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: track a real simulated host for days; the measured drift and
// expiration must match the host's ground-truth ε.
func TestDriftMatchesGroundTruth(t *testing.T) {
	pl, insts := testWorld(t, 9, 1)
	inst := insts[0]
	g := inst.MustGuest()
	sched := pl.Scheduler()
	var h History
	for i := 0; i < 48; i++ {
		s, err := CollectGen1(g)
		if err != nil {
			t.Fatal(err)
		}
		h.Add(pl.Now(), s.BootTimeReported())
		sched.Advance(time.Hour)
	}
	d, err := h.FitDrift()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.R) < 0.999 {
		t.Errorf("|r| = %v; drift not linear", d.R)
	}
	// Rate must be nonzero (ε is never zero) and below the clip bound.
	if d.Rate == 0 {
		t.Error("zero fitted drift")
	}
	if math.Abs(d.Rate) > 5.1e4/2e9*1.5 {
		t.Errorf("fitted rate %v beyond ε clip", d.Rate)
	}
}

func TestStringRenderings(t *testing.T) {
	fp := Gen1FromBootTime("Intel(R) Xeon(R) CPU @ 2.00GHz", 1000, time.Second)
	if fp.String() == "" {
		t.Error("empty Gen1 string")
	}
	g2 := Gen2{Model: "M", FreqKHz: 2000001}
	if g2.String() == "" {
		t.Error("empty Gen2 string")
	}
}
