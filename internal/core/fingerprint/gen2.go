package fingerprint

import (
	"fmt"

	"eaao/internal/sandbox"
)

// Gen2 is a Gen 2 host fingerprint: the CPU model plus the kernel-refined
// actual host TSC frequency at 1 kHz precision (§4.5). The refinement
// happens once per host boot, so co-located instances always read the same
// value: Gen 2 fingerprints have no false negatives. Their precision is low
// (several hosts share a frequency), which the verification layer compensates
// for.
type Gen2 struct {
	Model string
	// FreqKHz is the refined host TSC frequency in kHz (the kernel's full
	// precision).
	FreqKHz int64
}

// CollectGen2 reads a Gen 2 fingerprint from inside a guest VM. It fails in
// Gen 1, where the refined host frequency is unreachable.
func CollectGen2(g *sandbox.Guest) (Gen2, error) {
	if g.ProbeFault() {
		return Gen2{}, fmt.Errorf("fingerprint: gen2 collection: %w", sandbox.ErrProbeFault)
	}
	hz, err := g.GuestKernelTSCHz()
	if err != nil {
		return Gen2{}, err
	}
	return Gen2{
		Model:   g.CPUModelName(),
		FreqKHz: int64(hz / 1000),
	}, nil
}

// String renders the fingerprint.
func (f Gen2) String() string {
	return fmt.Sprintf("gen2{%s, tsc=%d kHz}", f.Model, f.FreqKHz)
}
