package fingerprint

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/simtime"
	"eaao/internal/stats"
)

// History is a sequence of derived boot times for one tracked host, recorded
// at different wall-clock instants (the week-long hourly collection behind
// Fig. 5). Because the reported frequency is off by a constant ε, the derived
// T_boot drifts linearly (Eq. 4.2); fitting the drift predicts when the
// rounded fingerprint will change — the fingerprint's expiration.
type History struct {
	whenSec []float64 // measurement instants, seconds since epoch
	bootSec []float64 // derived boot times, seconds since epoch
}

// Add appends one observation.
func (h *History) Add(at simtime.Time, bootSeconds float64) {
	h.whenSec = append(h.whenSec, at.Seconds())
	h.bootSec = append(h.bootSec, bootSeconds)
}

// Len returns the number of observations.
func (h *History) Len() int { return len(h.whenSec) }

// Span returns the wall-clock distance between the first and last
// observation.
func (h *History) Span() time.Duration {
	if len(h.whenSec) < 2 {
		return 0
	}
	return time.Duration((h.whenSec[len(h.whenSec)-1] - h.whenSec[0]) * 1e9)
}

// Drift is a fitted linear drift of the derived boot time.
type Drift struct {
	// Rate is d(T_boot)/d(T_w) in seconds per second (ε/f_r).
	Rate float64
	// R is the Pearson correlation of the fit; the paper observed |r| ≥
	// 0.9997 on every history, confirming linear drift.
	R float64
	// LastWhenSec / LastBootSec anchor extrapolation at the newest point.
	LastWhenSec float64
	LastBootSec float64
}

// FitDrift fits the history's boot-time drift. It requires at least three
// observations to say anything about linearity.
func (h *History) FitDrift() (Drift, error) {
	if len(h.whenSec) < 3 {
		return Drift{}, fmt.Errorf("fingerprint: history of %d observations cannot be fitted", len(h.whenSec))
	}
	fit, err := stats.LinearFit(h.whenSec, h.bootSec)
	if err != nil {
		return Drift{}, err
	}
	n := len(h.whenSec)
	return Drift{
		Rate:        fit.Slope,
		R:           fit.R,
		LastWhenSec: h.whenSec[n-1],
		LastBootSec: fit.Predict(h.whenSec[n-1]),
	}, nil
}

// Expiration estimates how long after the newest observation the rounded
// fingerprint changes, for the given precision. The estimate follows the
// paper's method: linear interpolation of the fitted drift up to the nearest
// rounding boundary. ok is false when the drift is flat (the fingerprint
// effectively never expires).
func (d Drift) Expiration(precision time.Duration) (time.Duration, bool) {
	if precision <= 0 {
		panic("fingerprint: non-positive precision")
	}
	if d.Rate == 0 {
		return 0, false
	}
	p := precision.Seconds()
	// Rounding to the nearest bucket places boundaries at (k ± 0.5)·p.
	bucket := math.Round(d.LastBootSec / p)
	var boundary float64
	if d.Rate > 0 {
		boundary = (bucket + 0.5) * p
	} else {
		boundary = (bucket - 0.5) * p
	}
	dist := boundary - d.LastBootSec
	secs := dist / d.Rate // same sign as dist, so positive
	if secs < 0 {
		// The newest point already sits on the far side of the boundary
		// (fit noise); expire immediately.
		secs = 0
	}
	if secs > math.MaxInt64/1e9 {
		return 0, false
	}
	return time.Duration(secs * 1e9), true
}
