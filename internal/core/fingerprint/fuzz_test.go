package fingerprint

import "testing"

// FuzzGen1UnmarshalText checks the fingerprint parser never panics and that
// everything it accepts round-trips.
func FuzzGen1UnmarshalText(f *testing.F) {
	f.Add("gen1|1000000000|12345|Intel(R) Xeon(R) CPU @ 2.00GHz")
	f.Add("gen1|1|0|")
	f.Add("gen2|2000001|M")
	f.Add("gen1|||")
	f.Fuzz(func(t *testing.T, in string) {
		var fp Gen1
		if err := fp.UnmarshalText([]byte(in)); err != nil {
			return
		}
		text, err := fp.MarshalText()
		if err != nil {
			t.Fatalf("accepted %q but cannot re-marshal: %v", in, err)
		}
		var back Gen1
		if err := back.UnmarshalText(text); err != nil || back != fp {
			t.Errorf("round trip failed for %q: %v", in, err)
		}
	})
}

// FuzzGen2UnmarshalText does the same for frequency fingerprints.
func FuzzGen2UnmarshalText(f *testing.F) {
	f.Add("gen2|2000001|Intel(R) Xeon(R) CPU @ 2.00GHz")
	f.Add("gen2|-1|x")
	f.Fuzz(func(t *testing.T, in string) {
		var fp Gen2
		if err := fp.UnmarshalText([]byte(in)); err != nil {
			return
		}
		text, err := fp.MarshalText()
		if err != nil {
			t.Fatalf("accepted %q but cannot re-marshal: %v", in, err)
		}
		var back Gen2
		if err := back.UnmarshalText(text); err != nil || back != fp {
			t.Errorf("round trip failed for %q", in)
		}
	})
}
