package fingerprint

import (
	"fmt"
	"time"

	"eaao/internal/sandbox"
	"eaao/internal/simtime"
	"eaao/internal/stats"
)

// FreqMeasurement is the outcome of measuring the actual TSC frequency from
// inside a guest (method 2 of §4.2): read the TSC twice ΔT_w apart, where
// ΔT_w comes from wall-clock system calls, and divide.
type FreqMeasurement struct {
	// MeanHz is the mean measured frequency across repetitions.
	MeanHz float64
	// StdHz is the standard deviation across repetitions. On healthy hosts
	// it is well under 100 Hz; on "problematic" hosts it reaches 10 kHz–MHz,
	// making the method unusable there.
	StdHz float64
	// Samples are the individual per-repetition estimates.
	Samples []float64
}

// Usable reports whether the measurement is stable enough to fingerprint
// with, using the paper's implied threshold: problematic hosts show standard
// deviations of at least 10 kHz.
func (m FreqMeasurement) Usable() bool { return m.StdHz < 10e3 }

// MeasureFrequency estimates the actual TSC frequency by reading the counter
// twice with the given wall-clock interval between reads, repeated reps
// times. It advances the virtual clock by approximately reps × interval —
// exactly like the real measurement costs wall time.
//
// The interval must be positive; the paper uses ΔT_w ≈ 100 ms with about 10
// repetitions.
func MeasureFrequency(g *sandbox.Guest, sched *simtime.Scheduler, interval time.Duration, reps int) (FreqMeasurement, error) {
	if interval <= 0 {
		return FreqMeasurement{}, fmt.Errorf("fingerprint: non-positive measurement interval")
	}
	if reps <= 0 {
		return FreqMeasurement{}, fmt.Errorf("fingerprint: non-positive repetition count")
	}
	samples := make([]float64, 0, reps)
	faultScale := 1.001
	for i := 0; i < reps; i++ {
		faulted := g.ProbeFault()
		tsc1, wall1 := g.ReadTSCAndWall()
		sched.Advance(interval)
		tsc2, wall2 := g.ReadTSCAndWall()
		dw := wall2.Sub(wall1).Seconds()
		if dw <= 0 {
			// Noise collapsed the interval; skip the sample.
			continue
		}
		est := float64(tsc2-tsc1) / dw
		if faulted {
			// A faulted repetition yields a wrong estimate (the read pair
			// straddled a descheduling). The error is megahertz-scale on
			// real frequencies and grows per faulted repetition, so any
			// faulted measurement's StdHz blows past the usability
			// threshold — the fault is detectable across repetitions,
			// never silently classifiable.
			est *= faultScale
			faultScale += 0.001
		}
		samples = append(samples, est)
	}
	if len(samples) == 0 {
		return FreqMeasurement{}, fmt.Errorf("fingerprint: all frequency samples degenerate")
	}
	return FreqMeasurement{
		MeanHz:  stats.Mean(samples),
		StdHz:   stats.StdDev(samples),
		Samples: samples,
	}, nil
}

// BootTimeMeasured derives the boot time using a measured frequency instead
// of the reported one: drift-free where the measurement is usable.
func BootTimeMeasured(s Sample, m FreqMeasurement) float64 {
	return s.BootTimeSeconds(m.MeanHz)
}

// Quarantine reports the recovery bookkeeping of a RobustFrequency
// measurement: how many times the host was re-sampled, and whether it ended
// quarantined (still unusable after the budget — set aside rather than
// misclassified).
type Quarantine struct {
	// Resamples is how many extra full measurements were taken.
	Resamples int
	// Quarantined is set when the final measurement is still unusable: the
	// host's frequency disagrees with itself across samples, so the caller
	// must not fingerprint with it.
	Quarantined bool
}

// RobustFrequency is MeasureFrequency hardened against transient probe
// faults: when a measurement comes back unusable (StdHz past the
// problematic-host threshold), the host is re-measured up to budget times
// instead of being misclassified on one bad sample. Genuinely problematic
// hosts (§4.2: ~10% of the fleet) stay unusable on every attempt and end
// quarantined; hosts that merely hit a transient fault recover on a retry.
func RobustFrequency(g *sandbox.Guest, sched *simtime.Scheduler, interval time.Duration, reps, budget int) (FreqMeasurement, Quarantine, error) {
	m, err := MeasureFrequency(g, sched, interval, reps)
	if err != nil {
		return m, Quarantine{}, err
	}
	var q Quarantine
	for !m.Usable() && q.Resamples < budget {
		q.Resamples++
		m, err = MeasureFrequency(g, sched, interval, reps)
		if err != nil {
			return m, q, err
		}
	}
	q.Quarantined = !m.Usable()
	return m, q, nil
}
