package fingerprint

import (
	"testing"
	"time"
)

var keySink Key

func TestKeyRoundTrip(t *testing.T) {
	g1 := Gen1FromBootTime("Intel(R) Xeon(R) CPU @ 2.20GHz", 12345.6, time.Second)
	g2 := Gen2{Model: "AMD EPYC 7B12", FreqKHz: 2249998}

	if g1.Key() != g1.Key() || g2.Key() != g2.Key() {
		t.Error("keys of equal fingerprints differ")
	}
	if g1.Key() == g2.Key() {
		t.Error("Gen1 and Gen2 keys collide")
	}
	// The rendered key matches the fingerprint's own rendering, so reports
	// built from keys read the same as ones built from fingerprints.
	if g1.Key().String() != g1.String() {
		t.Errorf("Gen1 key renders %q, fingerprint renders %q", g1.Key().String(), g1.String())
	}
	if g2.Key().String() != g2.String() {
		t.Errorf("Gen2 key renders %q, fingerprint renders %q", g2.Key().String(), g2.String())
	}
}

func TestKeyDistinguishesPrecision(t *testing.T) {
	a := Gen1FromBootTime("m", 100, time.Second).Key()
	b := Gen1FromBootTime("m", 100, 100*time.Millisecond).Key()
	if a == b {
		t.Error("keys of different precisions collide")
	}
}

// Key construction sits in the per-instance verification loop: it replaced
// fmt.Sprintf-based string keys precisely to get the allocation off the hot
// path, so it must stay allocation-free.
func TestKeyConstructionAllocs(t *testing.T) {
	g1 := Gen1FromBootTime("Intel(R) Xeon(R) CPU @ 2.20GHz", 12345.6, time.Second)
	g2 := Gen2{Model: "AMD EPYC 7B12", FreqKHz: 2249998}
	allocs := testing.AllocsPerRun(100, func() {
		keySink = g1.Key()
		keySink = g2.Key()
	})
	if allocs > 0 {
		t.Errorf("Key construction allocates %.1f per run, budget 0", allocs)
	}
}
