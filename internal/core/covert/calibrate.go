package covert

import (
	"fmt"
	"math"

	"eaao/internal/faas"
)

// Calibrate empirically measures the background contention rate of a shared
// resource from a probe instance (ideally one known to be alone on its host,
// e.g. freshly launched in a quiet account) and derives a CTest
// configuration whose vote threshold separates background noise from true
// co-location with comfortable margin.
//
// The derivation places the threshold midway (in standard deviations)
// between the background distribution Binomial(rounds, bg) and the
// co-located distribution (essentially Binomial(rounds, ≈1)): a co-located
// instance sees its partner's pressure every round, a lone instance only the
// background rate.
func Calibrate(base Config, probe *faas.Instance, sampleRounds int) (Config, error) {
	if sampleRounds <= 0 {
		return Config{}, fmt.Errorf("covert: calibration needs sample rounds")
	}
	hits := 0
	for i := 0; i < sampleRounds; i++ {
		obs, err := faas.ContentionRoundOn(base.Resource, []*faas.Instance{probe})
		if err != nil {
			return Config{}, err
		}
		// A lone probe observes itself (1) plus background; ≥2 means a
		// background event (or an actual co-resident pressurer, which the
		// caller is responsible for excluding).
		if obs[0] >= 2 {
			hits++
		}
	}
	return deriveThreshold(base, float64(hits)/float64(sampleRounds))
}

// CalibrateChannel is Calibrate for a pluggable channel primitive: the
// background rate is sampled through the channel's own round primitive and
// the threshold derived from the channel's tuned base configuration. For the
// RNG channel this draws and derives identically to
// Calibrate(DefaultConfig(), ...).
func CalibrateChannel(ch Channel, probe *faas.Instance, sampleRounds int) (Config, error) {
	if sampleRounds <= 0 {
		return Config{}, fmt.Errorf("covert: calibration needs sample rounds")
	}
	hits := 0
	var obs []int
	single := []*faas.Instance{probe}
	for i := 0; i < sampleRounds; i++ {
		var err error
		obs, err = ch.Round(single, obs)
		if err != nil {
			return Config{}, err
		}
		if obs[0] >= 2 {
			hits++
		}
	}
	return deriveThreshold(ch.Config(), float64(hits)/float64(sampleRounds))
}

// deriveThreshold turns a measured background rate into a calibrated
// configuration (the math shared by Calibrate and CalibrateChannel).
func deriveThreshold(base Config, bg float64) (Config, error) {
	if bg >= 0.9 {
		return Config{}, fmt.Errorf("covert: background rate %.2f too high to calibrate — probe may not be alone", bg)
	}

	out := base
	n := float64(out.Rounds)
	// Background votes ~ Binomial(n, bg); true co-location votes ≈ n.
	// Threshold: background mean plus half the gap, at least 3σ above the
	// background mean.
	mean := n * bg
	sigma := math.Sqrt(n * bg * (1 - bg))
	threshold := mean + (n-mean)/2
	if min := mean + 3*sigma + 1; threshold < min {
		threshold = min
	}
	if threshold > n {
		threshold = n
	}
	out.VoteThreshold = int(math.Ceil(threshold))
	if out.VoteThreshold < 1 {
		out.VoteThreshold = 1
	}
	if err := out.Validate(); err != nil {
		return Config{}, err
	}
	return out, nil
}
