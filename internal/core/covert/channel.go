package covert

import (
	"fmt"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

// This file makes the covert channel a pluggable primitive, the third leg of
// the repo's plug-in architecture next to placement policies and launch
// strategies: a Channel bundles a contention resource with the CTest
// configuration tuned for its noise character, a Runner is the full testing
// surface verification consumes, and MultiTester majority-combines several
// channels so that corruption confined to one resource family is outvoted by
// the healthy ones.

// Channel is one pluggable covert-channel primitive: a named contention
// resource plus the CTest configuration tuned for its bandwidth and noise.
type Channel interface {
	// Name identifies the channel ("rng", "membus", "llc").
	Name() string
	// Config returns the channel's tuned CTest configuration.
	Config() Config
	// Round executes one synchronized contention round among the given
	// participants, writing observations into out (grown as needed).
	Round(parts []*faas.Instance, out []int) ([]int, error)
}

// resourceChannel is a Channel backed by one faas shared-resource family.
type resourceChannel struct {
	res faas.Resource
	cfg Config
}

func (c resourceChannel) Name() string   { return c.res.String() }
func (c resourceChannel) Config() Config { return c.cfg }
func (c resourceChannel) Round(parts []*faas.Instance, out []int) ([]int, error) {
	return faas.ContentionRoundOnInto(c.res, parts, out)
}

// RNGChannel returns the paper's hardware-RNG channel (§4.3), the low-noise
// default every historical experiment runs on.
func RNGChannel() Channel { return resourceChannel{faas.ResourceRNG, DefaultConfig()} }

// MemBusChannel returns the memory-bus channel of the earlier co-location
// studies: slow but serviceable, load-insensitive in this model.
func MemBusChannel() Channel { return resourceChannel{faas.ResourceMemBus, MemBusConfig()} }

// LLCChannel returns the last-level-cache contention channel (Zhao &
// Fletcher): 5× faster tests than the RNG, but error rates that grow with
// bystander load on the host.
func LLCChannel() Channel { return resourceChannel{faas.ResourceLLC, LLCConfig()} }

// LLCConfig returns a configuration for the LLC channel: a test costs 20 ms
// instead of the RNG's 100, but background evictions are common (4% on a
// quiet host, worse with every bystander tenant), so the vote threshold sits
// well above half to keep loaded hosts from voting their way to false
// positives.
func LLCConfig() Config {
	return Config{
		Resource:      faas.ResourceLLC,
		Rounds:        60,
		VoteThreshold: 36,
		TestDuration:  20 * time.Millisecond,
	}
}

// CombinedChannelName selects the majority-combined multi-channel tester in
// RunnerFor and the CLI's -channel flag; it is a Runner, not a Channel.
const CombinedChannelName = "combined"

// ChannelNames lists every name RunnerFor resolves (the empty string, the
// default, is the RNG channel).
func ChannelNames() []string { return []string{"rng", "llc", "membus", CombinedChannelName} }

// ValidChannel reports whether name resolves in RunnerFor.
func ValidChannel(name string) bool {
	switch name {
	case "", "rng", "llc", "membus", CombinedChannelName:
		return true
	}
	return false
}

// ChannelByName resolves a single-channel primitive from its name. The empty
// string resolves to the default RNG channel; "combined" is not a Channel —
// use RunnerFor for it.
func ChannelByName(name string) (Channel, error) {
	switch name {
	case "", "rng":
		return RNGChannel(), nil
	case "llc":
		return LLCChannel(), nil
	case "membus":
		return MemBusChannel(), nil
	}
	return nil, fmt.Errorf("covert: unknown channel %q (rng, llc, membus)", name)
}

// Runner is the pluggable covert-channel testing surface: everything
// verification (coloc.Tester) consumes plus the sink/stats hooks the attack
// campaign charges its ledger through. *Tester and *MultiTester both satisfy
// it.
type Runner interface {
	CTest(instances []*faas.Instance, m int) ([]bool, error)
	PairTest(a, b *faas.Instance) (bool, error)
	Config() Config
	Stats() Stats
	ResetStats()
	SetSink(Sink)
}

// RunnerFor resolves a channel selector to a ready Runner: "" or "rng" (the
// byte-identical historical default), "llc", "membus", or "combined" (a
// MultiTester majority-combining rng, llc and membus). voteBudget applies
// per channel.
func RunnerFor(name string, sched *simtime.Scheduler, voteBudget int) (Runner, error) {
	if name == CombinedChannelName {
		return NewMultiTester(sched, voteBudget, RNGChannel(), LLCChannel(), MemBusChannel()), nil
	}
	ch, err := ChannelByName(name)
	if err != nil {
		return nil, fmt.Errorf("covert: unknown channel %q (rng, llc, membus, combined)", name)
	}
	cfg := ch.Config()
	cfg.VoteBudget = voteBudget
	return NewChannelTester(sched, ch, cfg), nil
}

// NewChannelTester builds a Tester driving the given channel primitive with
// an explicit configuration (usually the channel's own, possibly with a
// VoteBudget applied).
func NewChannelTester(sched *simtime.Scheduler, ch Channel, cfg Config) *Tester {
	t := NewTester(sched, cfg)
	t.ch = ch
	return t
}

// CalibratedRunnerFor resolves a channel selector exactly like RunnerFor but
// re-derives every member channel's vote threshold against the live world:
// the probe instance samples each channel's background rate over sampleRounds
// solo rounds (CalibrateChannel) and the threshold comes from the measurement
// instead of the quiet-world constant. On a busy host the measured background
// includes real bystander noise, so the derived threshold is the one an
// attacker operating in a living cloud would actually use. It fails when a
// channel's background is too high to separate (CalibrateChannel's error).
func CalibratedRunnerFor(name string, sched *simtime.Scheduler, probe *faas.Instance, sampleRounds, voteBudget int) (Runner, error) {
	calibrated := func(ch Channel) (*Tester, error) {
		cfg, err := CalibrateChannel(ch, probe, sampleRounds)
		if err != nil {
			return nil, err
		}
		cfg.VoteBudget = voteBudget
		return NewChannelTester(sched, ch, cfg), nil
	}
	if name == CombinedChannelName {
		children := make([]*Tester, 0, 3)
		for _, ch := range []Channel{RNGChannel(), LLCChannel(), MemBusChannel()} {
			t, err := calibrated(ch)
			if err != nil {
				return nil, err
			}
			children = append(children, t)
		}
		return multiFromChildren(children), nil
	}
	ch, err := ChannelByName(name)
	if err != nil {
		return nil, fmt.Errorf("covert: unknown channel %q (rng, llc, membus, combined)", name)
	}
	return calibrated(ch)
}

// Rebudgeter is implemented by runners that can clone themselves at a new
// majority-vote budget while preserving their channels and (possibly
// calibrated) thresholds — the hook noise-hardened campaigns escalate
// through when a channel's margins collapse under load.
type Rebudgeter interface {
	Rebudget(voteBudget int) Runner
}

// Rebudget returns a new Tester on the same channel and configuration with
// the vote budget replaced. Accumulated stats and the sink do not carry over.
func (t *Tester) Rebudget(voteBudget int) Runner {
	cfg := t.cfg
	cfg.VoteBudget = voteBudget
	nt := NewTester(t.sched, cfg)
	nt.ch = t.ch
	return nt
}

// MultiTester is the majority-combined multi-channel tester: every CTest
// runs once per member channel and each instance's final verdict is the
// majority of the per-channel verdicts. Corruption confined to one resource
// family — a targeted misfire storm, a busy LLC — is outvoted by the healthy
// channels, at the cost of paying every channel's test duration.
type MultiTester struct {
	children []*Tester
	combined Config
	stats    Stats
	wins     []int
	pair     [2]*faas.Instance
}

// NewMultiTester builds a MultiTester over the given channels, each wrapped
// in its own Tester with the channel's tuned configuration plus voteBudget.
func NewMultiTester(sched *simtime.Scheduler, voteBudget int, chs ...Channel) *MultiTester {
	if len(chs) == 0 {
		panic("covert: MultiTester needs at least one channel")
	}
	children := make([]*Tester, 0, len(chs))
	for _, ch := range chs {
		cfg := ch.Config()
		cfg.VoteBudget = voteBudget
		children = append(children, NewChannelTester(sched, ch, cfg))
	}
	return multiFromChildren(children)
}

// multiFromChildren assembles a MultiTester around already-built member
// testers (NewMultiTester's tail, shared with the calibrated and re-budgeted
// construction paths).
func multiFromChildren(children []*Tester) *MultiTester {
	m := &MultiTester{children: children}
	// The combined Config is synthetic: verification layers read only
	// TestDuration (the wall cost of one combined test, the sum over
	// channels), so the remaining fields come from the first channel.
	m.combined = m.children[0].Config()
	m.combined.TestDuration = 0
	for _, c := range m.children {
		m.combined.TestDuration += c.Config().TestDuration
	}
	return m
}

// Children returns the per-channel member testers; their Stats split the
// combined cost by channel.
func (m *MultiTester) Children() []*Tester { return m.children }

// Config returns the synthetic combined configuration (TestDuration is the
// per-test wall cost summed over member channels).
func (m *MultiTester) Config() Config { return m.combined }

// Stats returns the combined-test counters: Tests counts combined
// invocations (each of which ran one CTest per member channel).
func (m *MultiTester) Stats() Stats { return m.stats }

// ResetStats zeroes the combined and per-channel counters.
func (m *MultiTester) ResetStats() {
	m.stats = Stats{}
	for _, c := range m.children {
		c.ResetStats()
	}
}

// SetSink installs the observer on every member tester, so the sink sees one
// channel-labeled event per member per combined test. MultiTester emits no
// synthetic event of its own — observers meter true per-channel executions.
func (m *MultiTester) SetSink(s Sink) {
	for _, c := range m.children {
		c.SetSink(s)
	}
}

// CTest runs the combined test: one CTest per member channel, each advancing
// the clock by its own TestDuration, and a per-instance majority across the
// per-channel verdicts.
func (m *MultiTester) CTest(instances []*faas.Instance, thresh int) ([]bool, error) {
	if cap(m.wins) < len(instances) {
		m.wins = make([]int, len(instances))
	}
	wins := m.wins[:len(instances)]
	for i := range wins {
		wins[i] = 0
	}
	for _, c := range m.children {
		res, err := c.CTest(instances, thresh)
		if err != nil {
			return nil, err
		}
		for i, positive := range res {
			if positive {
				wins[i]++
			}
		}
	}
	out := make([]bool, len(instances))
	for i, w := range wins {
		out[i] = 2*w > len(m.children)
	}
	m.stats.Tests++
	m.stats.PairsTested += len(instances) * (len(instances) - 1) / 2
	m.stats.InstanceTime += time.Duration(len(instances)) * m.combined.TestDuration
	return out, nil
}

// Rebudget returns a new MultiTester whose member testers share channels and
// thresholds with this one but carry the new vote budget.
func (m *MultiTester) Rebudget(voteBudget int) Runner {
	children := make([]*Tester, len(m.children))
	for i, c := range m.children {
		cfg := c.cfg
		cfg.VoteBudget = voteBudget
		nt := NewTester(c.sched, cfg)
		nt.ch = c.ch
		children[i] = nt
	}
	return multiFromChildren(children)
}

// PairTest reports whether the two instances are co-located by combined
// majority.
func (m *MultiTester) PairTest(a, b *faas.Instance) (bool, error) {
	m.pair[0], m.pair[1] = a, b
	res, err := m.CTest(m.pair[:], 2)
	if err != nil {
		return false, err
	}
	return res[0] && res[1], nil
}
