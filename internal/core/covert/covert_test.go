package covert

import (
	"testing"
	"time"

	"eaao/internal/faas"
)

func testWorld(t *testing.T, seed uint64, n int) (*faas.Platform, []*faas.Instance) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(seed, p)
	insts, err := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{}).Launch(n)
	if err != nil {
		t.Fatal(err)
	}
	return pl, insts
}

func sameHost(a, b *faas.Instance) bool {
	ha, _ := a.HostID()
	hb, _ := b.HostID()
	return ha == hb
}

// findPair returns indices of a co-located pair and of a non-co-located pair.
func findPairs(t *testing.T, insts []*faas.Instance) (coA, coB, farA, farB int) {
	t.Helper()
	coA, coB, farA, farB = -1, -1, -1, -1
	for i := 0; i < len(insts) && (coA < 0 || farA < 0); i++ {
		for j := i + 1; j < len(insts); j++ {
			if sameHost(insts[i], insts[j]) && coA < 0 {
				coA, coB = i, j
			}
			if !sameHost(insts[i], insts[j]) && farA < 0 {
				farA, farB = i, j
			}
		}
	}
	if coA < 0 || farA < 0 {
		t.Fatal("could not find both a co-located and a separated pair")
	}
	return
}

func TestPairTest(t *testing.T) {
	pl, insts := testWorld(t, 1, 100)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	coA, coB, farA, farB := findPairs(t, insts)

	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("co-located pair tested negative")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("separated pair tested positive")
	}
}

func TestCTestAdvancesClockAndCounts(t *testing.T) {
	pl, insts := testWorld(t, 2, 10)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	before := pl.Now()
	if _, err := tester.CTest(insts[:3], 2); err != nil {
		t.Fatal(err)
	}
	if got := pl.Now().Sub(before); got != 100*time.Millisecond {
		t.Errorf("clock advanced %v, want 100ms", got)
	}
	st := tester.Stats()
	if st.Tests != 1 || st.PairsTested != 3 {
		t.Errorf("stats = %+v", st)
	}
	tester.ResetStats()
	if tester.Stats().Tests != 0 {
		t.Error("ResetStats did not reset")
	}
}

func TestCTestThresholdM(t *testing.T) {
	// With m=3, a pair of co-located instances is NOT enough to test
	// positive; it takes at least 3 on one host.
	pl, insts := testWorld(t, 3, 200)
	tester := NewTester(pl.Scheduler(), DefaultConfig())

	byHost := make(map[faas.HostID][]*faas.Instance)
	for _, inst := range insts {
		id, _ := inst.HostID()
		byHost[id] = append(byHost[id], inst)
	}
	var trio []*faas.Instance
	for _, group := range byHost {
		if len(group) >= 3 {
			trio = group[:3]
			break
		}
	}
	if trio == nil {
		t.Fatal("no host with 3+ instances")
	}
	// All three together: every one sees 3 units ≥ m=3 → positive.
	res, err := tester.CTest(trio, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res {
		if !b {
			t.Errorf("instance %d of co-located trio negative at m=3", i)
		}
	}
	// Only two of them: 2 units < m=3 → negative.
	res, err = tester.CTest(trio[:2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] || res[1] {
		t.Error("co-located pair positive at m=3")
	}
}

func TestCTestSingleton(t *testing.T) {
	pl, insts := testWorld(t, 4, 5)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	res, err := tester.CTest(insts[:1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] {
		t.Error("lone instance tested positive (background noise should not reach 30/60 votes)")
	}
}

func TestCTestMixedGroup(t *testing.T) {
	// A test of {co-located pair, lone instance} must mark exactly the pair.
	pl, insts := testWorld(t, 5, 150)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	coA, coB, _, _ := findPairs(t, insts)
	var lone *faas.Instance
	ha, _ := insts[coA].HostID()
	for _, inst := range insts {
		if id, _ := inst.HostID(); id != ha {
			lone = inst
			break
		}
	}
	group := []*faas.Instance{insts[coA], insts[coB], lone}
	res, err := tester.CTest(group, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0] || !res[1] {
		t.Error("co-located pair members negative")
	}
	if res[2] {
		t.Error("lone member positive")
	}
}

func TestCTestErrors(t *testing.T) {
	pl, insts := testWorld(t, 6, 3)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	if _, err := tester.CTest(insts, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := tester.CTest(nil, 2); err == nil {
		t.Error("empty test accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rounds: 0, VoteThreshold: 1, TestDuration: time.Millisecond},
		{Rounds: 10, VoteThreshold: 0, TestDuration: time.Millisecond},
		{Rounds: 10, VoteThreshold: 11, TestDuration: time.Millisecond},
		{Rounds: 10, VoteThreshold: 5, TestDuration: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewTesterPanicsOnBadConfig(t *testing.T) {
	pl, _ := testWorld(t, 7, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewTester(pl.Scheduler(), Config{})
}

func TestMaxGroupSize(t *testing.T) {
	if MaxGroupSize(2) != 3 || MaxGroupSize(3) != 5 {
		t.Error("MaxGroupSize wrong")
	}
}

// The false-positive rate of a full CTest must be essentially zero: a lone
// instance over many tests should never accumulate 30/60 background rounds.
func TestNoFalsePositivesOverManyTests(t *testing.T) {
	pl, insts := testWorld(t, 8, 40)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	// Pick instances that are each alone on their host within this set.
	seen := make(map[faas.HostID]int)
	for _, inst := range insts {
		id, _ := inst.HostID()
		seen[id]++
	}
	var loners []*faas.Instance
	for _, inst := range insts {
		if id, _ := inst.HostID(); seen[id] == 1 {
			loners = append(loners, inst)
		}
	}
	if len(loners) == 0 {
		t.Skip("no singleton instances in this draw")
	}
	for trial := 0; trial < 20; trial++ {
		res, err := tester.CTest(loners[:1], 2)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] {
			t.Fatal("singleton tested positive")
		}
	}
}

func TestMemBusChannelNoisierButWorkable(t *testing.T) {
	pl, insts := testWorld(t, 9, 120)
	coA, coB, farA, farB := findPairs(t, insts)

	// Background traffic trips ~18% of memory-bus rounds on a quiet host —
	// over 20x the RNG channel's rate. The majority vote absorbs it, but
	// only because each test spends many rounds; the practical price of the
	// channel is its per-test duration (seconds instead of 100 ms), which is
	// exactly why pairwise membus verification was untenable at FaaS scale.
	bgRounds := 0
	for i := 0; i < 40; i++ {
		obs, err := faas.ContentionRoundOn(faas.ResourceMemBus, insts[farA:farA+1])
		if err != nil {
			t.Fatal(err)
		}
		if obs[0] > 1 {
			bgRounds++
		}
	}
	if bgRounds < 2 {
		t.Errorf("membus background hit only %d/40 rounds; expected frequent noise", bgRounds)
	}
	tester := NewTester(pl.Scheduler(), MemBusConfig())
	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("co-located pair negative on tuned membus channel")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("separated pair positive on tuned membus channel")
	}
	if MemBusConfig().TestDuration <= DefaultConfig().TestDuration*10 {
		t.Error("membus tests should be far slower than RNG tests")
	}
}

func TestResourceStrings(t *testing.T) {
	if faas.ResourceRNG.String() != "rng" || faas.ResourceMemBus.String() != "membus" {
		t.Error("resource names wrong")
	}
	if faas.ResourceLLC.String() != "llc" {
		t.Error("llc resource name wrong")
	}
	if faas.Resource(9).String() != "resource?" {
		t.Error("unknown resource name")
	}
}

// recordingSink captures every TestEvent for inspection.
type recordingSink struct{ events []TestEvent }

func (r *recordingSink) ObserveTest(ev TestEvent) { r.events = append(r.events, ev) }

func TestSinkObservesEveryCTest(t *testing.T) {
	pl, insts := testWorld(t, 7, 30)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	sink := &recordingSink{}
	tester.SetSink(sink)

	out, err := tester.CTest(insts[:5], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 1 {
		t.Fatalf("sink saw %d events after one CTest", len(sink.events))
	}
	ev := sink.events[0]
	if ev.Participants != 5 {
		t.Errorf("participants = %d", ev.Participants)
	}
	if ev.Duration != tester.Config().TestDuration {
		t.Errorf("duration = %v, want %v", ev.Duration, tester.Config().TestDuration)
	}
	positives := 0
	for _, pos := range out {
		if pos {
			positives++
		}
	}
	if ev.Positives != positives {
		t.Errorf("event positives = %d, CTest reported %d", ev.Positives, positives)
	}

	// PairTest is a two-instance CTest, so it must be observed too.
	if _, err := tester.PairTest(insts[0], insts[1]); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 2 || sink.events[1].Participants != 2 {
		t.Fatalf("PairTest not observed: %+v", sink.events)
	}
	if got, want := len(sink.events), tester.Stats().Tests; got != want {
		t.Errorf("sink events %d diverge from tester stats %d", got, want)
	}

	// Removing the sink stops observation without touching the tester.
	tester.SetSink(nil)
	if _, err := tester.CTest(insts[:3], 2); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 2 {
		t.Error("removed sink still observed a test")
	}
}
