package covert

import (
	"testing"
	"time"

	"eaao/internal/faas"
)

// The pluggable RNG channel must be indistinguishable from the historical
// direct-resource path: two same-seed worlds, one driven through a plain
// Tester and one through NewChannelTester(RNGChannel()), produce identical
// verdicts round for round.
func TestRNGChannelMatchesDirectPath(t *testing.T) {
	plA, instsA := testWorld(t, 31, 80)
	plB, instsB := testWorld(t, 31, 80)
	direct := NewTester(plA.Scheduler(), DefaultConfig())
	channel := NewChannelTester(plB.Scheduler(), RNGChannel(), DefaultConfig())
	if direct.Channel() != nil {
		t.Fatal("plain Tester carries a channel")
	}
	if channel.Channel() == nil || channel.Channel().Name() != "rng" {
		t.Fatal("channel tester misconfigured")
	}
	for trial := 0; trial < 12; trial++ {
		lo := (trial * 7) % (len(instsA) - 3)
		a, err := direct.CTest(instsA[lo:lo+3], 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := channel.CTest(instsB[lo:lo+3], 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d instance %d: direct=%v channel=%v", trial, i, a[i], b[i])
			}
		}
	}
	if plA.Now() != plB.Now() {
		t.Errorf("clocks diverged: %v vs %v", plA.Now(), plB.Now())
	}
	if direct.Stats() != channel.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", direct.Stats(), channel.Stats())
	}
}

func TestLLCChannelClassifiesPairs(t *testing.T) {
	pl, insts := testWorld(t, 32, 60)
	if err := LLCConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tester := NewChannelTester(pl.Scheduler(), LLCChannel(), LLCConfig())
	coA, coB, farA, farB := findPairs(t, insts)
	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("co-located pair negative on the LLC channel")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("separated pair positive on the LLC channel")
	}
	// The channel's selling point: a test costs a fraction of the RNG's.
	if LLCConfig().TestDuration*4 > DefaultConfig().TestDuration {
		t.Error("LLC tests should be several times faster than RNG tests")
	}
}

func TestMultiTesterMajority(t *testing.T) {
	pl, insts := testWorld(t, 33, 60)
	mt := NewMultiTester(pl.Scheduler(), 0, RNGChannel(), LLCChannel(), MemBusChannel())
	coA, coB, farA, farB := findPairs(t, insts)

	wantDur := DefaultConfig().TestDuration + LLCConfig().TestDuration + MemBusConfig().TestDuration
	if got := mt.Config().TestDuration; got != wantDur {
		t.Errorf("combined TestDuration = %v, want %v", got, wantDur)
	}

	sink := &recordingSink{}
	mt.SetSink(sink)
	before := pl.Now()
	pos, err := mt.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("co-located pair negative on the combined tester")
	}
	if got := pl.Now().Sub(before); got != wantDur {
		t.Errorf("combined test advanced the clock %v, want %v", got, wantDur)
	}
	// One combined invocation, three per-channel executions with distinct
	// labels.
	if mt.Stats().Tests != 1 {
		t.Errorf("combined Tests = %d, want 1", mt.Stats().Tests)
	}
	if len(sink.events) != 3 {
		t.Fatalf("sink saw %d events, want one per member channel", len(sink.events))
	}
	seen := map[string]bool{}
	for _, ev := range sink.events {
		seen[ev.Channel] = true
	}
	if !seen["rng"] || !seen["llc"] || !seen["membus"] {
		t.Errorf("channel labels = %v", seen)
	}
	for _, child := range mt.Children() {
		if child.Stats().Tests != 1 {
			t.Errorf("child %v ran %d tests, want 1", child.Config().Resource, child.Stats().Tests)
		}
	}

	neg, err := mt.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("separated pair positive on the combined tester")
	}

	mt.ResetStats()
	if mt.Stats().Tests != 0 || mt.Children()[0].Stats().Tests != 0 {
		t.Error("ResetStats did not clear combined and child counters")
	}
}

// A majority across channels outvotes corruption confined to one family: with
// the RNG channel under a certain false-negative storm, the single-channel
// RNG tester misses a co-located pair but the combined tester still finds it.
func TestMultiTesterOutvotesTargetedCorruption(t *testing.T) {
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	p.Faults.PerChannel[faas.ResourceRNG] = faas.ChannelFaultRates{FalseNegativeRate: 1}
	pl := faas.MustPlatform(34, p)
	insts, err := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{}).Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	coA, coB, _, _ := findPairs(t, insts)

	rng := NewTester(pl.Scheduler(), DefaultConfig())
	pos, err := rng.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if pos {
		t.Fatal("RNG tester found the pair through a certain false-negative storm")
	}

	mt := NewMultiTester(pl.Scheduler(), 0, RNGChannel(), LLCChannel(), MemBusChannel())
	pos, err = mt.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("combined tester lost the pair to single-channel corruption")
	}
}

func TestRunnerFor(t *testing.T) {
	pl, _ := testWorld(t, 35, 1)
	for _, name := range []string{"", "rng", "llc", "membus"} {
		r, err := RunnerFor(name, pl.Scheduler(), 3)
		if err != nil {
			t.Fatalf("RunnerFor(%q): %v", name, err)
		}
		tester, ok := r.(*Tester)
		if !ok {
			t.Fatalf("RunnerFor(%q) returned %T, want *Tester", name, r)
		}
		if tester.Config().VoteBudget != 3 {
			t.Errorf("RunnerFor(%q) lost the vote budget", name)
		}
		wantRes := faas.ResourceRNG
		switch name {
		case "llc":
			wantRes = faas.ResourceLLC
		case "membus":
			wantRes = faas.ResourceMemBus
		}
		if tester.Config().Resource != wantRes {
			t.Errorf("RunnerFor(%q) drives %v", name, tester.Config().Resource)
		}
	}
	r, err := RunnerFor("combined", pl.Scheduler(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mt, ok := r.(*MultiTester)
	if !ok {
		t.Fatalf("RunnerFor(combined) returned %T", r)
	}
	if len(mt.Children()) != 3 {
		t.Errorf("combined runner has %d channels", len(mt.Children()))
	}
	for _, c := range mt.Children() {
		if c.Config().VoteBudget != 2 {
			t.Errorf("combined child %v lost the vote budget", c.Config().Resource)
		}
	}
	if _, err := RunnerFor("hyperlane", pl.Scheduler(), 0); err == nil {
		t.Error("unknown channel accepted")
	}

	for _, name := range ChannelNames() {
		if !ValidChannel(name) {
			t.Errorf("listed channel %q not valid", name)
		}
	}
	if !ValidChannel("") || ValidChannel("hyperlane") {
		t.Error("ValidChannel wrong on edge cases")
	}
}

func TestChannelByName(t *testing.T) {
	for name, want := range map[string]faas.Resource{
		"":       faas.ResourceRNG,
		"rng":    faas.ResourceRNG,
		"llc":    faas.ResourceLLC,
		"membus": faas.ResourceMemBus,
	} {
		ch, err := ChannelByName(name)
		if err != nil {
			t.Fatalf("ChannelByName(%q): %v", name, err)
		}
		if ch.Config().Resource != want {
			t.Errorf("ChannelByName(%q) = %v", name, ch.Config().Resource)
		}
		if err := ch.Config().Validate(); err != nil {
			t.Errorf("channel %q config invalid: %v", name, err)
		}
	}
	// "combined" is a Runner, not a Channel.
	if _, err := ChannelByName("combined"); err == nil {
		t.Error("ChannelByName accepted the combined selector")
	}
}

func TestConfigRejectsUnknownResource(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Resource = faas.Resource(9)
	if err := cfg.Validate(); err == nil {
		t.Error("config with unregistered resource validated")
	}
}

// Per-channel TestEvent labels flow from the plain Tester too, so ledgers are
// channel-dimensional regardless of construction path.
func TestPlainTesterLabelsEvents(t *testing.T) {
	pl, insts := testWorld(t, 36, 10)
	tester := NewTester(pl.Scheduler(), MemBusConfig())
	sink := &recordingSink{}
	tester.SetSink(sink)
	if _, err := tester.CTest(insts[:2], 2); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 1 || sink.events[0].Channel != "membus" {
		t.Errorf("events = %+v, want one membus-labeled event", sink.events)
	}
	if sink.events[0].Duration != 3*time.Second {
		t.Errorf("membus event duration = %v", sink.events[0].Duration)
	}
}
