package covert

import "testing"

// CTest runs once per candidate group in every verification sweep, and each
// test spins Rounds contention rounds. The vote and observation scratch is
// reused across calls, so a steady-state CTest allocates only its returned
// result slice.
func TestCTestAllocs(t *testing.T) {
	pl, insts := testWorld(t, 5, 30)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	group := insts[:3]
	if _, err := tester.CTest(group, 2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tester.CTest(group, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("CTest allocates %.1f per run, budget 1 (the result slice)", allocs)
	}
}
