package covert

import (
	"testing"
)

// TestMinMarginReported pins the TestEvent margin signal: on a quiet world
// verdicts are decisive — a separated pair votes near zero and a co-located
// pair near Rounds, both far from the threshold — so the reported minimum
// margin is comfortably large.
func TestMinMarginReported(t *testing.T) {
	pl, insts := testWorld(t, 3, 100)
	coA, coB, farA, farB := findPairs(t, insts)
	tester := NewTester(pl.Scheduler(), DefaultConfig())
	sink := &recordingSink{}
	tester.SetSink(sink)
	for _, pair := range [][2]int{{coA, coB}, {farA, farB}} {
		if _, err := tester.PairTest(insts[pair[0]], insts[pair[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.events) != 2 {
		t.Fatalf("saw %d events", len(sink.events))
	}
	for i, ev := range sink.events {
		if ev.MinMargin < 0.3 || ev.MinMargin > 1 {
			t.Errorf("event %d: quiet-world margin = %.3f, want decisive (≥ 0.3)", i, ev.MinMargin)
		}
	}
}

// TestCalibratedRunnerFor checks the calibrated construction path: each
// resolved runner carries a live-derived threshold and the requested vote
// budget, and "combined" calibrates every member channel.
func TestCalibratedRunnerFor(t *testing.T) {
	pl, insts := testWorld(t, 5, 1)
	probe := insts[0]

	r, err := CalibratedRunnerFor("llc", pl.Scheduler(), probe, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	tester, ok := r.(*Tester)
	if !ok {
		t.Fatalf("llc runner is %T", r)
	}
	cfg := tester.Config()
	if cfg.VoteBudget != 3 {
		t.Errorf("VoteBudget = %d", cfg.VoteBudget)
	}
	if tester.Channel() == nil || tester.Channel().Name() != "llc" {
		t.Errorf("channel = %v", tester.Channel())
	}
	if cfg.VoteThreshold < 1 || cfg.VoteThreshold > cfg.Rounds {
		t.Errorf("calibrated threshold %d out of range", cfg.VoteThreshold)
	}

	m, err := CalibratedRunnerFor(CombinedChannelName, pl.Scheduler(), probe, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	mt, ok := m.(*MultiTester)
	if !ok {
		t.Fatalf("combined runner is %T", m)
	}
	if len(mt.Children()) != 3 {
		t.Fatalf("combined has %d children", len(mt.Children()))
	}

	if _, err := CalibratedRunnerFor("hyperlane", pl.Scheduler(), probe, 100, 1); err == nil {
		t.Error("unknown channel calibrated")
	}
}

// TestRebudget checks the escalation hook: the clone carries the new vote
// budget while preserving channel and thresholds, and the original is
// untouched.
func TestRebudget(t *testing.T) {
	pl, _ := testWorld(t, 6, 1)
	r, err := RunnerFor("llc", pl.Scheduler(), 1)
	if err != nil {
		t.Fatal(err)
	}
	orig := r.(*Tester)
	clone := orig.Rebudget(5).(*Tester)
	if clone.Config().VoteBudget != 5 || orig.Config().VoteBudget != 1 {
		t.Errorf("budgets = %d/%d", clone.Config().VoteBudget, orig.Config().VoteBudget)
	}
	if clone.Channel() != orig.Channel() {
		t.Error("channel not preserved")
	}
	if clone.Config().VoteThreshold != orig.Config().VoteThreshold {
		t.Error("threshold not preserved")
	}

	m, err := RunnerFor(CombinedChannelName, pl.Scheduler(), 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := m.(*MultiTester).Rebudget(3).(*MultiTester)
	if len(mc.Children()) != 3 {
		t.Fatalf("rebudgeted combined has %d children", len(mc.Children()))
	}
	for _, c := range mc.Children() {
		if c.Config().VoteBudget != 3 {
			t.Errorf("child budget = %d", c.Config().VoteBudget)
		}
	}
	if mc.Config().TestDuration != m.Config().TestDuration {
		t.Error("combined test duration changed")
	}

	// Both runner kinds satisfy the escalation interface.
	for _, run := range []Runner{orig, m} {
		if _, ok := run.(Rebudgeter); !ok {
			t.Errorf("%T is not a Rebudgeter", run)
		}
	}
}
