// Package covert implements the n-way covert-channel co-location test
// primitive CTest of §4.3, built on contention of the host's hardware random
// number generator (RNG).
//
// All n instances under test simultaneously hammer the RNG and measure the
// contention level they observe. Because the RNG is rarely used by anyone
// else (<1% background activity), an instance observing contention of at
// least m units must share its host with at least m−1 other participants.
// One test therefore classifies all n instances at once:
//
//	CTest(i1..in) → {b1..bn},  bi = "instance i observed ≥ m units
//	                            in at least half of the rounds"
//
// With m = 2 and at most 2m−1 = 3 instances per test, a positive outcome is
// unambiguous: all positive instances share one host. The coloc package
// builds the scalable verification methodology on top of this primitive.
package covert

import (
	"fmt"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

// Config parameterizes the covert-channel tests.
type Config struct {
	// Resource is the shared hardware resource pressured by the test; the
	// zero value is the paper's low-noise RNG channel.
	Resource faas.Resource
	// Rounds is the number of contention measurements per test.
	Rounds int
	// VoteThreshold is the number of rounds that must observe contention
	// for the instance to test positive (the paper requires 30 of 60).
	VoteThreshold int
	// TestDuration is the wall-clock cost of one CTest (the paper assumes
	// ~100 ms per test when costing the conventional approach).
	TestDuration time.Duration
}

// DefaultConfig returns the paper's parameters: the RNG channel, 60 rounds,
// 30 votes, 100 ms per test.
func DefaultConfig() Config {
	return Config{Rounds: 60, VoteThreshold: 30, TestDuration: 100 * time.Millisecond}
}

// MemBusConfig returns a configuration for the memory-bus channel of the
// earlier co-location studies [62, 59]: the frequent background traffic
// demands a much higher vote threshold, and a test takes seconds instead of
// 100 ms (Varadarajan et al. report several seconds per pairwise test).
func MemBusConfig() Config {
	return Config{
		Resource:      faas.ResourceMemBus,
		Rounds:        60,
		VoteThreshold: 48,
		TestDuration:  3 * time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("covert: Rounds must be positive")
	case c.VoteThreshold <= 0 || c.VoteThreshold > c.Rounds:
		return fmt.Errorf("covert: VoteThreshold must be in [1, Rounds]")
	case c.TestDuration <= 0:
		return fmt.Errorf("covert: TestDuration must be positive")
	}
	return nil
}

// Stats accumulates the cost of the covert-channel activity: how many tests
// ran and how much serialized wall-clock time they consumed. The coloc
// package uses these to reproduce the §4.3 cost comparison.
type Stats struct {
	Tests        int
	PairsTested  int
	InstanceTime time.Duration // Σ over tests of (participants × duration)
}

// TestEvent describes one completed CTest for an observer.
type TestEvent struct {
	// Participants is the number of instances under test.
	Participants int
	// Positives is how many of them tested positive.
	Positives int
	// Duration is the virtual wall-clock the test consumed.
	Duration time.Duration
}

// Sink observes every CTest a Tester runs (PairTest included, since it is a
// two-instance CTest). The attack campaign engine uses a sink to charge
// covert-channel spend to its per-stage cost ledger without wrapping the
// tester.
type Sink interface {
	ObserveTest(TestEvent)
}

// Tester executes CTest invocations against the simulated platform,
// advancing the virtual clock for each test and accounting costs.
type Tester struct {
	cfg   Config
	sched *simtime.Scheduler
	stats Stats
	sink  Sink

	// votes and obs are per-test scratch reused across CTests (a test runs
	// Rounds contention rounds; without reuse each round allocated a fresh
	// observation slice). pair backs PairTest's two-instance participant
	// list.
	votes []int
	obs   []int
	pair  [2]*faas.Instance
}

// NewTester builds a Tester. It panics on an invalid config, which is always
// a programming error at this layer.
func NewTester(sched *simtime.Scheduler, cfg Config) *Tester {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tester{cfg: cfg, sched: sched}
}

// Config returns the tester's configuration.
func (t *Tester) Config() Config { return t.cfg }

// Stats returns the accumulated cost counters.
func (t *Tester) Stats() Stats { return t.stats }

// ResetStats zeroes the cost counters.
func (t *Tester) ResetStats() { t.stats = Stats{} }

// SetSink installs (or, with nil, removes) an observer notified after every
// CTest. Observation is free of platform side effects: the sink sees an event
// after the clock already advanced and the stats already accumulated.
func (t *Tester) SetSink(s Sink) { t.sink = s }

// CTest runs one n-way covert-channel test with contention threshold m.
// Instance i tests positive when it observed at least m units of contention
// in at least VoteThreshold rounds. The virtual clock advances by
// TestDuration. m must be at least 2: an instance always observes its own
// unit, so m = 1 would make every test positive.
func (t *Tester) CTest(instances []*faas.Instance, m int) ([]bool, error) {
	if m < 2 {
		return nil, fmt.Errorf("covert: contention threshold m=%d, need m >= 2", m)
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("covert: CTest of zero instances")
	}
	if cap(t.votes) < len(instances) {
		t.votes = make([]int, len(instances))
	}
	votes := t.votes[:len(instances)]
	for i := range votes {
		votes[i] = 0
	}
	for r := 0; r < t.cfg.Rounds; r++ {
		obs, err := faas.ContentionRoundOnInto(t.cfg.Resource, instances, t.obs)
		if err != nil {
			return nil, err
		}
		t.obs = obs
		for i, units := range obs {
			if units >= m {
				votes[i]++
			}
		}
	}
	t.sched.Advance(t.cfg.TestDuration)
	t.stats.Tests++
	t.stats.PairsTested += len(instances) * (len(instances) - 1) / 2
	t.stats.InstanceTime += time.Duration(len(instances)) * t.cfg.TestDuration

	out := make([]bool, len(instances))
	positives := 0
	for i, v := range votes {
		out[i] = v >= t.cfg.VoteThreshold
		if out[i] {
			positives++
		}
	}
	if t.sink != nil {
		t.sink.ObserveTest(TestEvent{
			Participants: len(instances),
			Positives:    positives,
			Duration:     t.cfg.TestDuration,
		})
	}
	return out, nil
}

// PairTest is the conventional pairwise covert-channel test: it reports
// whether the two instances are co-located.
func (t *Tester) PairTest(a, b *faas.Instance) (bool, error) {
	t.pair[0], t.pair[1] = a, b
	res, err := t.CTest(t.pair[:], 2)
	if err != nil {
		return false, err
	}
	return res[0] && res[1], nil
}

// MaxGroupSize returns the largest group CTest can classify unambiguously at
// threshold m: with 2m−1 or fewer instances, any positive set of size ≥ m
// must share a single host (§4.3).
func MaxGroupSize(m int) int { return 2*m - 1 }
