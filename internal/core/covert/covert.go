// Package covert implements the n-way covert-channel co-location test
// primitive CTest of §4.3, built on contention of the host's hardware random
// number generator (RNG).
//
// All n instances under test simultaneously hammer the RNG and measure the
// contention level they observe. Because the RNG is rarely used by anyone
// else (<1% background activity), an instance observing contention of at
// least m units must share its host with at least m−1 other participants.
// One test therefore classifies all n instances at once:
//
//	CTest(i1..in) → {b1..bn},  bi = "instance i observed ≥ m units
//	                            in at least half of the rounds"
//
// With m = 2 and at most 2m−1 = 3 instances per test, a positive outcome is
// unambiguous: all positive instances share one host. The coloc package
// builds the scalable verification methodology on top of this primitive.
package covert

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

// Config parameterizes the covert-channel tests.
type Config struct {
	// Resource is the shared hardware resource pressured by the test; the
	// zero value is the paper's low-noise RNG channel.
	Resource faas.Resource
	// Rounds is the number of contention measurements per test.
	Rounds int
	// VoteThreshold is the number of rounds that must observe contention
	// for the instance to test positive (the paper requires 30 of 60).
	VoteThreshold int
	// TestDuration is the wall-clock cost of one CTest (the paper assumes
	// ~100 ms per test when costing the conventional approach).
	TestDuration time.Duration
	// VoteBudget is the majority-vote repetition count of each CTest: the
	// whole test is repeated up to VoteBudget times and an instance's final
	// verdict is the majority of the per-repetition verdicts. 0 or 1 runs
	// the single-shot test, byte-identical to a budget-free build. Useful
	// against time-correlated channel corruption (the fault plane's misfire
	// windows span one whole test but repetitions re-draw independently).
	VoteBudget int
}

// DefaultConfig returns the paper's parameters: the RNG channel, 60 rounds,
// 30 votes, 100 ms per test.
func DefaultConfig() Config {
	return Config{Rounds: 60, VoteThreshold: 30, TestDuration: 100 * time.Millisecond}
}

// MemBusConfig returns a configuration for the memory-bus channel of the
// earlier co-location studies [62, 59]: the frequent background traffic
// demands a much higher vote threshold, and a test takes seconds instead of
// 100 ms (Varadarajan et al. report several seconds per pairwise test).
func MemBusConfig() Config {
	return Config{
		Resource:      faas.ResourceMemBus,
		Rounds:        60,
		VoteThreshold: 48,
		TestDuration:  3 * time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case !c.Resource.Valid():
		return fmt.Errorf("covert: unknown channel resource %d", int(c.Resource))
	case c.Rounds <= 0:
		return fmt.Errorf("covert: Rounds must be positive")
	case c.VoteThreshold <= 0 || c.VoteThreshold > c.Rounds:
		return fmt.Errorf("covert: VoteThreshold must be in [1, Rounds]")
	case c.TestDuration <= 0:
		return fmt.Errorf("covert: TestDuration must be positive")
	case c.VoteBudget < 0:
		return fmt.Errorf("covert: VoteBudget must be non-negative")
	}
	return nil
}

// Verdict is the single verdict path of the covert channel: it converts the
// number of rounds in which an instance observed sufficient contention into
// the test outcome. Centralizing it pins the robustness property the test
// relies on — with VoteThreshold at half the rounds (the paper's 30 of 60),
// no single corrupted round can flip a verdict and silently merge two host
// groups; only sustained corruption can.
func (c Config) Verdict(votes int) bool { return votes >= c.VoteThreshold }

// Stats accumulates the cost of the covert-channel activity: how many tests
// ran and how much serialized wall-clock time they consumed. The coloc
// package uses these to reproduce the §4.3 cost comparison.
type Stats struct {
	Tests        int
	PairsTested  int
	InstanceTime time.Duration // Σ over tests of (participants × duration)
}

// TestEvent describes one completed CTest for an observer.
type TestEvent struct {
	// Channel names the covert channel the test ran on ("rng", "membus",
	// "llc") — the per-channel dimension of cost ledgers.
	Channel string
	// Participants is the number of instances under test.
	Participants int
	// Positives is how many of them tested positive.
	Positives int
	// Duration is the virtual wall-clock the test consumed.
	Duration time.Duration
	// Repetition is the majority-vote repetition index of this test: 0 for
	// the first (or only) run, k for the k-th re-vote under a VoteBudget.
	// Observers meter fault-recovery spend by counting nonzero repetitions.
	Repetition int
	// MinMargin is the health of the test's least decisive verdict: the
	// minimum over participants of |votes − VoteThreshold| / Rounds. A
	// margin near zero means some participant's verdict hovered at the
	// threshold — the signature of a channel degrading under noise, and what
	// noise-hardened campaigns key their escalation on.
	MinMargin float64
}

// Sink observes every CTest a Tester runs (PairTest included, since it is a
// two-instance CTest). The attack campaign engine uses a sink to charge
// covert-channel spend to its per-stage cost ledger without wrapping the
// tester.
type Sink interface {
	ObserveTest(TestEvent)
}

// Tester executes CTest invocations against the simulated platform,
// advancing the virtual clock for each test and accounting costs.
type Tester struct {
	cfg   Config
	sched *simtime.Scheduler
	stats Stats
	sink  Sink
	// ch is the pluggable channel primitive (NewChannelTester). nil keeps
	// the historical direct-resource path: rounds go straight to
	// faas.ContentionRoundOnInto on cfg.Resource, byte-identical to builds
	// that predate the channel layer.
	ch Channel

	// votes and obs are per-test scratch reused across CTests (a test runs
	// Rounds contention rounds; without reuse each round allocated a fresh
	// observation slice). pair backs PairTest's two-instance participant
	// list; wins is majority-vote scratch for VoteBudget > 1.
	votes []int
	obs   []int
	pair  [2]*faas.Instance
	wins  []int
}

// NewTester builds a Tester. It panics on an invalid config, which is always
// a programming error at this layer.
func NewTester(sched *simtime.Scheduler, cfg Config) *Tester {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tester{cfg: cfg, sched: sched}
}

// Config returns the tester's configuration.
func (t *Tester) Config() Config { return t.cfg }

// Channel returns the pluggable channel primitive the tester drives, or nil
// on the historical direct-resource path.
func (t *Tester) Channel() Channel { return t.ch }

// channelName labels the tester's channel for observers. Both paths return
// the resource name, so ledgers are channel-labeled regardless of how the
// tester was built.
func (t *Tester) channelName() string {
	if t.ch != nil {
		return t.ch.Name()
	}
	return t.cfg.Resource.String()
}

// Stats returns the accumulated cost counters.
func (t *Tester) Stats() Stats { return t.stats }

// ResetStats zeroes the cost counters.
func (t *Tester) ResetStats() { t.stats = Stats{} }

// SetSink installs (or, with nil, removes) an observer notified after every
// CTest. Observation is free of platform side effects: the sink sees an event
// after the clock already advanced and the stats already accumulated.
func (t *Tester) SetSink(s Sink) { t.sink = s }

// CTest runs one n-way covert-channel test with contention threshold m.
// Instance i tests positive when it observed at least m units of contention
// in at least VoteThreshold rounds. The virtual clock advances by
// TestDuration. m must be at least 2: an instance always observes its own
// unit, so m = 1 would make every test positive.
//
// With VoteBudget > 1 the whole test is repeated that many times, one
// TestDuration apart, and each instance's final verdict is the majority of
// its per-repetition verdicts. Repetition is what recovers from
// time-correlated channel corruption: a misfire window flips at most one
// repetition, not the majority.
func (t *Tester) CTest(instances []*faas.Instance, m int) ([]bool, error) {
	budget := t.cfg.VoteBudget
	if budget <= 1 {
		return t.singleCTest(instances, m, 0)
	}
	if cap(t.wins) < len(instances) {
		t.wins = make([]int, len(instances))
	}
	wins := t.wins[:len(instances)]
	for i := range wins {
		wins[i] = 0
	}
	for rep := 0; rep < budget; rep++ {
		res, err := t.singleCTest(instances, m, rep)
		if err != nil {
			return nil, err
		}
		for i, positive := range res {
			if positive {
				wins[i]++
			}
		}
	}
	out := make([]bool, len(instances))
	for i, w := range wins {
		out[i] = w > budget/2
	}
	return out, nil
}

// singleCTest is one un-voted CTest execution; rep labels the majority-vote
// repetition for observers.
func (t *Tester) singleCTest(instances []*faas.Instance, m, rep int) ([]bool, error) {
	if m < 2 {
		return nil, fmt.Errorf("covert: contention threshold m=%d, need m >= 2", m)
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("covert: CTest of zero instances")
	}
	if cap(t.votes) < len(instances) {
		t.votes = make([]int, len(instances))
	}
	votes := t.votes[:len(instances)]
	for i := range votes {
		votes[i] = 0
	}
	for r := 0; r < t.cfg.Rounds; r++ {
		var obs []int
		var err error
		if t.ch != nil {
			obs, err = t.ch.Round(instances, t.obs)
		} else {
			obs, err = faas.ContentionRoundOnInto(t.cfg.Resource, instances, t.obs)
		}
		if err != nil {
			return nil, err
		}
		t.obs = obs
		for i, units := range obs {
			if units >= m {
				votes[i]++
			}
		}
	}
	t.sched.Advance(t.cfg.TestDuration)
	t.stats.Tests++
	t.stats.PairsTested += len(instances) * (len(instances) - 1) / 2
	t.stats.InstanceTime += time.Duration(len(instances)) * t.cfg.TestDuration

	out := make([]bool, len(instances))
	positives := 0
	minMargin := 1.0
	for i, v := range votes {
		out[i] = t.cfg.Verdict(v)
		if out[i] {
			positives++
		}
		if m := math.Abs(float64(v)-float64(t.cfg.VoteThreshold)) / float64(t.cfg.Rounds); m < minMargin {
			minMargin = m
		}
	}
	if t.sink != nil {
		t.sink.ObserveTest(TestEvent{
			Channel:      t.channelName(),
			Participants: len(instances),
			Positives:    positives,
			Duration:     t.cfg.TestDuration,
			Repetition:   rep,
			MinMargin:    minMargin,
		})
	}
	return out, nil
}

// PairTest is the conventional pairwise covert-channel test: it reports
// whether the two instances are co-located.
func (t *Tester) PairTest(a, b *faas.Instance) (bool, error) {
	t.pair[0], t.pair[1] = a, b
	res, err := t.CTest(t.pair[:], 2)
	if err != nil {
		return false, err
	}
	return res[0] && res[1], nil
}

// MaxGroupSize returns the largest group CTest can classify unambiguously at
// threshold m: with 2m−1 or fewer instances, any positive set of size ≥ m
// must share a single host (§4.3).
func MaxGroupSize(m int) int { return 2*m - 1 }
