package covert

import (
	"testing"
	"time"

	"eaao/internal/faas"
)

// faultWorld is testWorld with a fault plan installed on the region.
func faultWorld(t *testing.T, seed uint64, n int, plan faas.FaultPlan) (*faas.Platform, []*faas.Instance) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	p.Faults = plan
	pl := faas.MustPlatform(seed, p)
	insts, err := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{}).Launch(n)
	if err != nil {
		t.Fatal(err)
	}
	return pl, insts
}

// TestVerdictSingleRoundCorruption pins the robustness property of the
// centralized verdict path: with the paper's 30-of-60 threshold, one
// corrupted contention round — a phantom unit on a separated pair, or a
// zeroed observation on a co-located one — cannot flip a verdict. Only the
// exact threshold boundary separates the outcomes.
func TestVerdictSingleRoundCorruption(t *testing.T) {
	cfg := DefaultConfig()
	// Separated pair: 0 genuine votes; one false-positive round yields 1.
	if cfg.Verdict(1) {
		t.Error("one corrupted round flipped a separated pair positive")
	}
	// Co-located pair: Rounds genuine votes; one false-negative round drops one.
	if !cfg.Verdict(cfg.Rounds - 1) {
		t.Error("one corrupted round flipped a co-located pair negative")
	}
	// The boundary is exactly VoteThreshold.
	if cfg.Verdict(cfg.VoteThreshold - 1) {
		t.Errorf("verdict positive at %d votes, below threshold %d", cfg.VoteThreshold-1, cfg.VoteThreshold)
	}
	if !cfg.Verdict(cfg.VoteThreshold) {
		t.Errorf("verdict negative at threshold %d", cfg.VoteThreshold)
	}
}

// countPairErrors runs repeated PairTests of a co-located pair on a world
// with false-negative channel corruption and returns how many came back
// wrong (negative).
func countPairErrors(t *testing.T, seed uint64, voteBudget, tests int) int {
	t.Helper()
	plan := faas.FaultPlan{ChannelFalseNegativeRate: 0.12}
	pl, insts := faultWorld(t, seed, 100, plan)
	cfg := DefaultConfig()
	cfg.VoteBudget = voteBudget
	tester := NewTester(pl.Scheduler(), cfg)
	coA, coB, _, _ := findPairs(t, insts)
	wrong := 0
	for i := 0; i < tests; i++ {
		pos, err := tester.PairTest(insts[coA], insts[coB])
		if err != nil {
			t.Fatal(err)
		}
		if !pos {
			wrong++
		}
		// Space the tests out so each sees a fresh misfire-window draw.
		pl.Scheduler().Advance(200 * time.Millisecond)
	}
	return wrong
}

// A misfire episode spans one whole test window, so a single-shot CTest is
// defenseless against it, while majority-vote repetitions (spaced one
// TestDuration apart) re-draw the window and recover. This is the fault the
// VoteBudget knob exists for; the test demonstrates it end to end through
// the platform's injected channel corruption.
func TestVoteBudgetAbsorbsChannelMisfires(t *testing.T) {
	const tests = 50
	single := countPairErrors(t, 21, 0, tests)
	voted := countPairErrors(t, 21, 3, tests)
	if single == 0 {
		t.Fatalf("no single-shot errors in %d corrupted tests; fault injection inert?", tests)
	}
	if voted >= single {
		t.Errorf("majority vote did not help: %d/%d wrong single-shot, %d/%d with budget 3",
			single, tests, voted, tests)
	}
}

// TestVoteBudgetAccounting: a budget of 3 runs (and bills) three full tests
// per CTest — clock, stats, and sink all see every repetition.
func TestVoteBudgetAccounting(t *testing.T) {
	pl, insts := testWorld(t, 2, 10)
	cfg := DefaultConfig()
	cfg.VoteBudget = 3
	tester := NewTester(pl.Scheduler(), cfg)
	sink := &recordingSink{}
	tester.SetSink(sink)

	before := pl.Now()
	if _, err := tester.CTest(insts[:3], 2); err != nil {
		t.Fatal(err)
	}
	if got, want := pl.Now().Sub(before), 3*cfg.TestDuration; got != want {
		t.Errorf("clock advanced %v, want %v", got, want)
	}
	if st := tester.Stats(); st.Tests != 3 {
		t.Errorf("stats.Tests = %d, want 3 (one per repetition)", st.Tests)
	}
	if len(sink.events) != 3 {
		t.Fatalf("sink saw %d events, want 3", len(sink.events))
	}
	for i, ev := range sink.events {
		if ev.Repetition != i {
			t.Errorf("event %d has repetition %d", i, ev.Repetition)
		}
	}
}

// On a fault-free world, voting changes nothing but the cost: every verdict
// matches the single-shot tester's.
func TestVoteBudgetFaultFreeIdentity(t *testing.T) {
	pl, insts := testWorld(t, 1, 100)
	coA, coB, farA, farB := findPairs(t, insts)
	cfg := DefaultConfig()
	cfg.VoteBudget = 3
	tester := NewTester(pl.Scheduler(), cfg)

	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("co-located pair negative under voting on a clean world")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("separated pair positive under voting on a clean world")
	}
}
