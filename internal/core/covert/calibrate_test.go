package covert

import (
	"fmt"
	"testing"

	"eaao/internal/faas"
)

// quietProbe launches single-instance services from fresh accounts until one
// lands on a host no other test-owned instance occupies. The test owns the
// whole world, so that instance is genuinely the sole resident — a clean
// calibration probe. Bulk launches rarely leave loners (placement
// concentrates), which is why this probes with fresh accounts instead of
// scanning the launched set.
func quietProbe(t *testing.T, pl *faas.Platform, others []*faas.Instance) *faas.Instance {
	t.Helper()
	occupied := make(map[faas.HostID]bool)
	note := func(insts []*faas.Instance) {
		for _, inst := range insts {
			if id, ok := inst.HostID(); ok {
				occupied[id] = true
			}
		}
	}
	note(others)
	for i := 0; i < 12; i++ {
		insts, err := pl.MustRegion("t").Account(fmt.Sprintf("loner%d", i)).DeployService("q", faas.ServiceConfig{}).Launch(1)
		if err != nil {
			t.Fatal(err)
		}
		if id, _ := insts[0].HostID(); !occupied[id] {
			return insts[0]
		}
		note(insts)
	}
	t.Skip("no quiet host found")
	return nil
}

func TestCalibrateRNG(t *testing.T) {
	pl, insts := testWorld(t, 20, 40)
	probe := quietProbe(t, pl, insts)
	cfg, err := Calibrate(DefaultConfig(), probe, 500)
	if err != nil {
		t.Fatal(err)
	}
	// RNG background is <1%, so the calibrated threshold sits comfortably
	// between noise and signal.
	if cfg.VoteThreshold < 2 || cfg.VoteThreshold > cfg.Rounds {
		t.Errorf("calibrated threshold = %d of %d rounds", cfg.VoteThreshold, cfg.Rounds)
	}
}

func TestCalibrateMemBus(t *testing.T) {
	pl, insts := testWorld(t, 21, 120)
	probe := quietProbe(t, pl, insts)
	base := MemBusConfig()
	base.VoteThreshold = 1 // calibration must fix this up
	cfg, err := Calibrate(base, probe, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Background ~18%: threshold must clear the noise band (mean ≈ 11 of
	// 60 rounds) decisively but stay reachable by a true pair (≈ 60).
	if cfg.VoteThreshold <= 15 {
		t.Errorf("threshold %d too low for membus noise", cfg.VoteThreshold)
	}
	if cfg.VoteThreshold > cfg.Rounds {
		t.Errorf("threshold %d unreachable", cfg.VoteThreshold)
	}

	// The calibrated config must classify correctly.
	tester := NewTester(pl.Scheduler(), cfg)
	coA, coB, farA, farB := findPairs(t, insts)
	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("calibrated membus config missed a co-located pair")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("calibrated membus config false-positived")
	}
}

func TestCalibrateErrors(t *testing.T) {
	_, insts := testWorld(t, 22, 5)
	if _, err := Calibrate(DefaultConfig(), insts[0], 0); err == nil {
		t.Error("zero sample rounds accepted")
	}
}

// Per-channel calibration must converge for every registered primitive: the
// derived threshold clears each channel's own noise band yet stays reachable,
// and the calibrated config classifies pairs correctly on its channel.
func TestCalibrateChannelConverges(t *testing.T) {
	for _, tc := range []struct {
		name         string
		ch           Channel
		minThreshold int
	}{
		{"llc", LLCChannel(), 2},
		{"membus", MemBusChannel(), 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, insts := testWorld(t, 24, 120)
			probe := quietProbe(t, pl, insts)
			cfg, err := CalibrateChannel(tc.ch, probe, 800)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Resource != tc.ch.Config().Resource {
				t.Errorf("calibrated config drives %v, want the channel's resource", cfg.Resource)
			}
			if cfg.VoteThreshold <= tc.minThreshold {
				t.Errorf("threshold %d too low for %s noise", cfg.VoteThreshold, tc.name)
			}
			if cfg.VoteThreshold > cfg.Rounds {
				t.Errorf("threshold %d of %d rounds unreachable", cfg.VoteThreshold, cfg.Rounds)
			}
			tester := NewChannelTester(pl.Scheduler(), tc.ch, cfg)
			coA, coB, farA, farB := findPairs(t, insts)
			pos, err := tester.PairTest(insts[coA], insts[coB])
			if err != nil {
				t.Fatal(err)
			}
			if !pos {
				t.Errorf("calibrated %s config missed a co-located pair", tc.name)
			}
			neg, err := tester.PairTest(insts[farA], insts[farB])
			if err != nil {
				t.Fatal(err)
			}
			if neg {
				t.Errorf("calibrated %s config false-positived", tc.name)
			}
		})
	}
}

// Calibrating through the pluggable RNG channel must reproduce the historical
// Calibrate(DefaultConfig(), ...) result exactly — same draws, same threshold
// — so existing calibrations are unchanged by the channel layer.
func TestCalibrateChannelRNGIdentity(t *testing.T) {
	plA, instsA := testWorld(t, 25, 40)
	plB, instsB := testWorld(t, 25, 40)
	// quietProbe is deterministic, so the twin world yields the twin probe.
	probeA := quietProbe(t, plA, instsA)
	probeB := quietProbe(t, plB, instsB)
	legacy, err := Calibrate(DefaultConfig(), probeA, 500)
	if err != nil {
		t.Fatal(err)
	}
	pluggable, err := CalibrateChannel(RNGChannel(), probeB, 500)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != pluggable {
		t.Errorf("RNG calibration changed under the channel layer:\n  legacy    %+v\n  pluggable %+v", legacy, pluggable)
	}
}

func TestCalibrateChannelErrors(t *testing.T) {
	_, insts := testWorld(t, 26, 5)
	if _, err := CalibrateChannel(RNGChannel(), insts[0], 0); err == nil {
		t.Error("zero sample rounds accepted")
	}
}

func TestCalibrateRejectsBusyProbe(t *testing.T) {
	// A probe co-located with a constantly-pressuring neighbor would read a
	// ~100% "background" rate; calibration must refuse rather than emit an
	// unusable config... we emulate by probing with a co-located pair and
	// feeding the partner as pressure via the round itself — not possible
	// through the public primitive, so instead verify the guard directly on
	// the membus with an absurdly small rounds count that cannot separate.
	pl, insts := testWorld(t, 23, 40)
	probe := quietProbe(t, pl, insts)
	base := DefaultConfig()
	base.Rounds = 1
	base.VoteThreshold = 1
	cfg, err := Calibrate(base, probe, 100)
	if err != nil {
		t.Fatalf("calibration with 1 round failed: %v", err)
	}
	if cfg.VoteThreshold != 1 {
		t.Errorf("1-round config threshold = %d", cfg.VoteThreshold)
	}
}
