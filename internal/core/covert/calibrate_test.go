package covert

import (
	"testing"

	"eaao/internal/faas"
)

// lonerInstance returns an instance that shares its host with no other
// instance in the launched set.
func lonerInstance(t *testing.T, insts []*faas.Instance) *faas.Instance {
	t.Helper()
	counts := make(map[faas.HostID]int)
	for _, inst := range insts {
		id, _ := inst.HostID()
		counts[id]++
	}
	for _, inst := range insts {
		if id, _ := inst.HostID(); counts[id] == 1 {
			return inst
		}
	}
	t.Skip("no loner in this draw")
	return nil
}

func TestCalibrateRNG(t *testing.T) {
	pl, insts := testWorld(t, 20, 40)
	_ = pl
	probe := lonerInstance(t, insts)
	cfg, err := Calibrate(DefaultConfig(), probe, 500)
	if err != nil {
		t.Fatal(err)
	}
	// RNG background is <1%, so the calibrated threshold sits comfortably
	// between noise and signal.
	if cfg.VoteThreshold < 2 || cfg.VoteThreshold > cfg.Rounds {
		t.Errorf("calibrated threshold = %d of %d rounds", cfg.VoteThreshold, cfg.Rounds)
	}
}

func TestCalibrateMemBus(t *testing.T) {
	pl, insts := testWorld(t, 21, 120)
	probe := lonerInstance(t, insts)
	base := MemBusConfig()
	base.VoteThreshold = 1 // calibration must fix this up
	cfg, err := Calibrate(base, probe, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Background ~18%: threshold must clear the noise band (mean ≈ 11 of
	// 60 rounds) decisively but stay reachable by a true pair (≈ 60).
	if cfg.VoteThreshold <= 15 {
		t.Errorf("threshold %d too low for membus noise", cfg.VoteThreshold)
	}
	if cfg.VoteThreshold > cfg.Rounds {
		t.Errorf("threshold %d unreachable", cfg.VoteThreshold)
	}

	// The calibrated config must classify correctly.
	tester := NewTester(pl.Scheduler(), cfg)
	coA, coB, farA, farB := findPairs(t, insts)
	pos, err := tester.PairTest(insts[coA], insts[coB])
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Error("calibrated membus config missed a co-located pair")
	}
	neg, err := tester.PairTest(insts[farA], insts[farB])
	if err != nil {
		t.Fatal(err)
	}
	if neg {
		t.Error("calibrated membus config false-positived")
	}
}

func TestCalibrateErrors(t *testing.T) {
	_, insts := testWorld(t, 22, 5)
	if _, err := Calibrate(DefaultConfig(), insts[0], 0); err == nil {
		t.Error("zero sample rounds accepted")
	}
}

func TestCalibrateRejectsBusyProbe(t *testing.T) {
	// A probe co-located with a constantly-pressuring neighbor would read a
	// ~100% "background" rate; calibration must refuse rather than emit an
	// unusable config... we emulate by probing with a co-located pair and
	// feeding the partner as pressure via the round itself — not possible
	// through the public primitive, so instead verify the guard directly on
	// the membus with an absurdly small rounds count that cannot separate.
	_, insts := testWorld(t, 23, 40)
	probe := lonerInstance(t, insts)
	base := DefaultConfig()
	base.Rounds = 1
	base.VoteThreshold = 1
	cfg, err := Calibrate(base, probe, 100)
	if err != nil {
		t.Fatalf("calibration with 1 round failed: %v", err)
	}
	if cfg.VoteThreshold != 1 {
		t.Errorf("1-round config threshold = %d", cfg.VoteThreshold)
	}
}
