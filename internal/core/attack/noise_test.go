package attack

import (
	"testing"
	"time"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// hardenNoise applies the standard noise-hardening budget set used by the
// noisesweep experiment: live-world calibration, the escalation ladder with
// an RNG fallback, surgical quarantine, and congestion backoff.
func hardenNoise(cfg Config) Config {
	cfg.CalibrationRounds = 240
	cfg.MarginFloor = 0.08
	cfg.MaxVoteBudget = 5
	cfg.FallbackChannel = "rng"
	cfg.QuarantineAfter = 2
	cfg.NoisyHostBar = 0.4
	cfg.CongestionBackoff = 30 * time.Second
	return cfg
}

// loadedWorld is smallWorld with background traffic at the given utilization
// target.
func loadedWorld(t *testing.T, seed uint64, util float64) *faas.DataCenter {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 200
	p.PlacementGroups = 4
	p.BasePoolSize = 40
	p.AccountHelperPool = 90
	p.ServiceHelperSize = 70
	p.ServiceHelperFresh = 8
	p.Traffic = faas.DefaultTrafficModel(120, util)
	dc := faas.MustPlatform(seed, p).MustRegion("t")
	dc.Platform().Scheduler().Advance(2 * time.Hour) // warm the bystanders up
	return dc
}

// runNoiseCampaign launches a small campaign on the given world and verifies
// it against a fresh victim set.
func runNoiseCampaign(t *testing.T, dc *faas.DataCenter, cfg Config) (Coverage, CampaignStats) {
	t.Helper()
	c, err := NewCampaign(dc.Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	cov, _, err := c.Verify(vic)
	if err != nil {
		t.Fatal(err)
	}
	return cov, c.Stats()
}

func TestNoiseConfigValidate(t *testing.T) {
	if DefaultConfig().NoiseHardened() {
		t.Error("default config claims noise hardening")
	}
	if !hardenNoise(DefaultConfig()).NoiseHardened() {
		t.Error("hardened config denies noise hardening")
	}
	if err := hardenNoise(DefaultConfig()).Validate(); err != nil {
		t.Errorf("hardened config invalid: %v", err)
	}
	for _, mod := range []func(*Config){
		func(c *Config) { c.MarginFloor = 1.5 },
		func(c *Config) { c.NoisyHostBar = -0.1 },
		func(c *Config) { c.FallbackChannel = "hyperlane" },
		func(c *Config) { c.CalibrationRounds = -1 },
		func(c *Config) { c.CongestionBackoff = -time.Second },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad noise config validated: %+v", cfg)
		}
	}
}

// TestHardenedQuietWorldStaysAccurate pins the baseline: on a quiet world
// the hardened campaign calibrates once, never needs the ladder, and covers
// exactly what the unhardened campaign covers.
func TestHardenedQuietWorldStaysAccurate(t *testing.T) {
	cfg := smallCfg()
	cfg.Channel = "llc"
	covBase, _ := runNoiseCampaign(t, smallWorld(t, 61), cfg)
	covHard, st := runNoiseCampaign(t, smallWorld(t, 61), hardenNoiseChannel(cfg))
	if covHard.VictimCovered != covBase.VictimCovered || covHard.VictimTotal != covBase.VictimTotal {
		t.Errorf("quiet-world coverage: hardened %d/%d vs unhardened %d/%d",
			covHard.VictimCovered, covHard.VictimTotal, covBase.VictimCovered, covBase.VictimTotal)
	}
	if st.Calibrations != 1 {
		t.Errorf("Calibrations = %d, want 1", st.Calibrations)
	}
	if st.NoiseEscalations != 0 || st.ChannelFallbacks != 0 || st.Quarantined != 0 {
		t.Errorf("quiet world climbed the ladder: %+v", st)
	}
	if !st.NoiseHardening() {
		t.Error("hardened run metered no noise activity (calibration should count)")
	}
}

// hardenNoiseChannel is hardenNoise minus congestion backoff, so quiet-world
// launch paths stay comparable.
func hardenNoiseChannel(cfg Config) Config {
	out := hardenNoise(cfg)
	out.CongestionBackoff = 0
	return out
}

// TestHardenedBeatsUnhardenedUnderLoad is the tentpole's attack-side claim:
// on a saturated world the LLC channel degrades, and the hardened campaign —
// calibrating, escalating the vote budget, falling back to the RNG — retains
// coverage the unhardened campaign loses, pricing the adaptation into the
// noise ledger.
func TestHardenedBeatsUnhardenedUnderLoad(t *testing.T) {
	// Both variants carry fault-retry budgets — congestion sheds launches on
	// a saturated world — so the comparison isolates the noise ladder.
	cfg := smallCfg()
	cfg.Channel = "llc"
	cfg.LaunchRetries = 6
	cfg.RetryBackoff = 30 * time.Second
	covBase, stBase := runNoiseCampaign(t, loadedWorld(t, 63, 0.95), cfg)
	covHard, stHard := runNoiseCampaign(t, loadedWorld(t, 63, 0.95), hardenNoiseChannel(cfg))
	t.Logf("unhardened: %d/%d covered, %d low-margin", covBase.VictimCovered, covBase.VictimTotal, stBase.LowMarginTests)
	t.Logf("hardened:   %d/%d covered, %d calibrations, %d escalations, %d fallbacks, %d quarantined, $%.2f noise",
		covHard.VictimCovered, covHard.VictimTotal, stHard.Calibrations,
		stHard.NoiseEscalations, stHard.ChannelFallbacks, stHard.Quarantined, stHard.NoiseUSD)
	if covHard.VictimCovered < covBase.VictimCovered {
		t.Errorf("hardened covered %d/%d, unhardened %d/%d",
			covHard.VictimCovered, covHard.VictimTotal, covBase.VictimCovered, covBase.VictimTotal)
	}
	if !stHard.NoiseHardening() {
		t.Error("hardened campaign metered no noise activity under saturation")
	}
	if stHard.Calibrations == 0 {
		t.Error("hardened campaign never calibrated")
	}
	if stBase.NoiseHardening() {
		t.Errorf("unhardened campaign metered noise activity: %+v", stBase)
	}
	// Margin health is observable either way — only the hardened config
	// scores it.
	if stBase.LowMarginTests != 0 {
		t.Errorf("unhardened campaign scored %d low-margin tests with MarginFloor 0", stBase.LowMarginTests)
	}
}

// TestCongestionBackoffMetered drives launches into a deliberately
// oversubscribed region: rejected waves retry with the extra congestion hold
// and the holds land in the noise ledger, not the fault ledger.
func TestCongestionBackoffMetered(t *testing.T) {
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	p.Traffic = faas.DefaultTrafficModel(80, 1.1)
	p.Traffic.CongestionKnee = 0.5
	p.Traffic.CongestionRejectRate = 0.5
	dc := faas.MustPlatform(67, p).MustRegion("t")
	dc.Platform().Scheduler().Advance(3 * time.Hour)

	cfg := smallCfg()
	cfg.LaunchRetries = 6
	cfg.RetryBackoff = 10 * time.Second
	cfg.CongestionBackoff = time.Minute
	c, err := NewCampaign(dc.Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.LaunchRetries == 0 {
		t.Skip("no launch wave was rejected at this seed — congestion path unexercised")
	}
	if st.CongestionBackoffs != st.LaunchRetries {
		t.Errorf("CongestionBackoffs = %d, LaunchRetries = %d", st.CongestionBackoffs, st.LaunchRetries)
	}
	if st.NoiseWall < time.Duration(st.CongestionBackoffs)*time.Minute {
		t.Errorf("NoiseWall = %v for %d backoffs", st.NoiseWall, st.CongestionBackoffs)
	}
}

// TestQuarantineExcludesNoisyInstances forces the ladder to its quarantine
// rung with an aggressive bar: persistently unreliable footprint instances
// are struck off and verification proceeds without them. The world sits at
// moderate load — the margin-hover regime quarantine exists for. (Deeper
// saturation collapses the channel globally; those passes are flagged by
// the fingerprint prior and deliberately skip the quarantine rung.)
func TestQuarantineExcludesNoisyInstances(t *testing.T) {
	cfg := smallCfg()
	cfg.Channel = "llc"
	cfg.LaunchRetries = 6
	cfg.RetryBackoff = 30 * time.Second
	cfg = hardenNoiseChannel(cfg)
	cfg.NoisyHostBar = 0.05 // nearly every loaded host trips
	cfg.QuarantineAfter = 1
	cfg.MaxVoteBudget = 0 // skip budget rungs so unhealthy passes hit quarantine fast
	_, st := runNoiseCampaign(t, loadedWorld(t, 69, 0.55), cfg)
	if st.LowMarginTests == 0 {
		t.Skip("no low-margin tests at this seed — ladder unexercised")
	}
	if st.Quarantined == 0 {
		t.Error("aggressive bar quarantined nothing on a saturated world")
	}
}
