package attack

import (
	"errors"
	"fmt"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/faas"
	"eaao/internal/pricing"
	"eaao/internal/randx"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// Campaign is the staged attack pipeline of §5.2:
//
//	launch → fingerprint → verify → score
//
// A LaunchStrategy drives the launch stage through a CampaignSink; the
// engine fingerprints every wave into the campaign footprint as it lands
// (the fingerprint stage rides inside LaunchWave, exactly as the paper's
// tooling measures each batch while it is connected); Verify runs the §4.3
// covert-channel verification of the resident footprint against a victim
// set; and the CampaignStats ledger prices every stage as it happens.
//
// The engine adds no platform interactions beyond the ones the strategy
// emits — no RNG draws, no clock advances — so driving NaiveStrategy or
// OptimizedStrategy through a Campaign reproduces the historical
// RunNaive/RunOptimized byte for byte.
type Campaign struct {
	acct     *faas.Account
	cfg      Config
	gen      sandbox.Gen
	strategy LaunchStrategy
	sched    *simtime.Scheduler

	res    *CampaignResult
	stats  CampaignStats
	tester covert.Runner
	// services are the attacker services deployed through the sink, tracked
	// so retry backoff can attribute the resident footprint's holding cost
	// to the fault ledger.
	services []*faas.Service

	// Noise-hardening state (noise.go). calibrated latches the one-shot
	// live-world calibration; onFallback marks the ladder's channel swap as
	// spent; strikes and quarantined implement the noisy-host ladder; and
	// passTests/passLow are the margin-health window of the verification
	// pass currently running.
	calibrated  bool
	onFallback  bool
	strikes     map[*faas.Instance]int
	quarantined map[*faas.Instance]bool
	passTests   int
	passLow     int
}

// NewCampaign validates the configuration and binds a strategy to an
// attacker account. The campaign's services run in the given sandbox
// generation.
func NewCampaign(acct *faas.Account, cfg Config, gen sandbox.Gen, strategy LaunchStrategy) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("attack: campaign needs a strategy")
	}
	c := &Campaign{
		acct:     acct,
		cfg:      cfg,
		gen:      gen,
		strategy: strategy,
		sched:    acct.DataCenter().Scheduler(),
	}
	c.stats.Region = acct.DataCenter().Region()
	return c, nil
}

// Launch runs the launch+fingerprint stages: the strategy emits waves
// through the engine's sink until it decides the footprint is built. It can
// run at most once per campaign.
func (c *Campaign) Launch() (*CampaignResult, error) {
	if c.res != nil {
		return nil, fmt.Errorf("attack: campaign already launched")
	}
	c.res = &CampaignResult{Footprint: NewFootprintTracker(c.cfg.Precision)}
	c.res.Footprint.SetProbeRetryBudget(c.cfg.ProbeRetryBudget)
	c.stats.Strategy = c.strategy.Name()
	billStart := c.acct.Bill()
	startedAt := c.sched.Now()
	// The strategy RNG derives from the world seed plus the campaign
	// identity: deterministic per seed, independent across accounts and
	// strategies, and — crucially — disjoint from every platform stream, so
	// strategies that draw from it cannot disturb placement randomness.
	rng := randx.New(c.acct.DataCenter().Platform().Seed()).
		Derive("attack-campaign", c.acct.ID(), c.strategy.Name())
	if err := c.strategy.Launch(campaignSink{c}, c.acct, c.cfg, rng); err != nil {
		return nil, err
	}
	c.stats.LiveInstances = len(c.res.Live)
	c.stats.ApparentHosts = c.res.Footprint.Cumulative()
	c.stats.LaunchWall = c.sched.Now().Sub(startedAt)
	c.stats.ProbeRetries += c.res.Footprint.ProbeRetries()
	c.stats.ProbeSkips += c.res.Footprint.ProbeSkips()
	bill := c.acct.Bill()
	c.stats.VCPUSeconds = bill.VCPUSeconds - billStart.VCPUSeconds
	c.stats.GBSeconds = bill.GBSeconds - billStart.GBSeconds
	c.stats.USD = pricing.CloudRunRates().Cost(c.stats.VCPUSeconds, c.stats.GBSeconds)
	return c.res, nil
}

// Result returns the launch-stage outcome, or nil before Launch.
func (c *Campaign) Result() *CampaignResult { return c.res }

// Stats returns a snapshot of the per-stage cost/coverage ledger.
func (c *Campaign) Stats() CampaignStats {
	st := c.stats
	st.PerChannel = append([]ChannelCost(nil), st.PerChannel...)
	return st
}

// Tester returns the campaign's covert-channel runner, creating it from
// cfg.Channel on first use (the paper's single-channel RNG tester by
// default, byte-identical to builds that predate pluggable channels). The
// runner is instrumented with the stats ledger: every CTest run through it —
// by Verify or by the caller directly — is charged to the campaign's verify
// stage with its channel label. Creating a tester consumes no randomness and
// advances no clocks, so lazy creation cannot perturb determinism.
func (c *Campaign) Tester() covert.Runner {
	if c.tester == nil {
		r, err := covert.RunnerFor(c.cfg.Channel, c.sched, c.cfg.VoteBudget)
		if err != nil {
			// cfg.Channel was validated at NewCampaign; reaching this is a
			// programming error.
			panic(err)
		}
		c.SetTester(r)
	}
	return c.tester
}

// SetTester replaces the campaign's covert runner (e.g. with a calibrated,
// memory-bus, or majority-combined tester). The campaign takes over cost
// accounting: the runner's sink is pointed at the campaign, which forwards
// every event to the stats ledger (and tracks margin health for the noise
// ladder).
func (c *Campaign) SetTester(t covert.Runner) {
	c.tester = t
	t.SetSink(c)
}

// ObserveTest implements covert.Sink: every CTest the campaign's tester runs
// is forwarded to the stats ledger, and its verdict margin is scored against
// the noise-hardening health bar.
func (c *Campaign) ObserveTest(ev covert.TestEvent) {
	c.stats.ObserveTest(ev)
	c.passTests++
	if c.cfg.MarginFloor > 0 && ev.MinMargin < c.cfg.MarginFloor {
		c.passLow++
		c.stats.LowMarginTests++
	}
}

// Verify runs the verify+score stages against a victim instance set: the
// §4.3 scalable methodology verifies the campaign's live footprint against
// the victims, and the outcome is folded into the stats ledger. It returns
// the coverage plus the verified co-located attacker instances (the spies
// for extraction and re-attack targeting). Verify may run repeatedly, e.g.
// once per victim configuration, sharing one tester across calls exactly as
// the paper's per-day measurement sessions do.
func (c *Campaign) Verify(victims []*faas.Instance) (Coverage, []*faas.Instance, error) {
	if c.res == nil {
		return Coverage{}, nil, fmt.Errorf("attack: Verify before Launch")
	}
	if c.cfg.NoiseHardened() {
		return c.verifyHardened(victims)
	}
	cov, spies, err := c.measure(victims)
	if err != nil {
		return Coverage{}, nil, err
	}
	c.scorePass(cov)
	return cov, spies, nil
}

// measure runs one verification pass over the (non-quarantined) live
// footprint and meters its probe-fault recovery; folding the coverage into
// the score ledger is the caller's job, so the hardened path can re-pass
// without double-counting victims.
func (c *Campaign) measure(victims []*faas.Instance) (Coverage, []*faas.Instance, error) {
	cov, spies, err := MeasureCoverageDetailOpts(c.Tester(), c.liveForVerify(), victims, CoverageOpts{
		Precision:        c.cfg.Precision,
		ProbeRetryBudget: c.cfg.ProbeRetryBudget,
	})
	if err != nil {
		return Coverage{}, nil, err
	}
	c.stats.ProbeRetries += cov.Faults.ProbeRetries
	c.stats.ProbeSkips += cov.Faults.AttackersSkipped + cov.Faults.VictimsSkipped
	return cov, spies, nil
}

// scorePass folds one accepted verification pass into the score ledger.
func (c *Campaign) scorePass(cov Coverage) {
	c.stats.Verifications++
	c.stats.VictimInstances += cov.VictimTotal
	c.stats.VictimsCovered += cov.VictimCovered
}

// retryHold advances the clock for one launch-retry backoff and attributes
// the resident footprint's holding cost during the wait to the fault ledger.
// The real dollars flow through the launch-stage bill automatically (the
// platform's lazy accrual charges connected instances for the extra wall
// time); FaultVCPUSeconds/FaultUSD single out the share a fault-free run
// would not have paid.
func (c *Campaign) retryHold(wait time.Duration) {
	v, g := c.residentUsage(wait)
	c.sched.Advance(wait)
	c.stats.RetryBackoffWall += wait
	c.stats.FaultVCPUSeconds += v
	c.stats.FaultGBSeconds += g
	c.stats.FaultUSD += pricing.CloudRunRates().Cost(v, g)
}

// residentUsage returns the billable usage the resident footprint accrues
// over a wall-time span (the attribution quantum both the fault and noise
// ledgers price holds with).
func (c *Campaign) residentUsage(wait time.Duration) (vcpuSecs, gbSecs float64) {
	secs := wait.Seconds()
	for _, svc := range c.services {
		n := float64(len(svc.ActiveInstances()))
		size := svc.Size()
		vcpuSecs += n * size.VCPU * secs
		gbSecs += n * size.MemoryGB * secs
	}
	return vcpuSecs, gbSecs
}

// campaignSink is the engine's CampaignSink implementation, bound to one
// running campaign.
type campaignSink struct{ c *Campaign }

// Deploy implements CampaignSink.
func (s campaignSink) Deploy(name string) *faas.Service {
	svc := s.c.acct.DeployService(name, faas.ServiceConfig{Gen: s.c.gen})
	s.c.services = append(s.c.services, svc)
	return svc
}

// LaunchWave implements CampaignSink: launch, fingerprint, record. Waves
// rejected with a transient faas.ErrLaunchFault are re-issued up to
// Config.LaunchRetries times with exponential backoff; any other error (and
// fault exhaustion) propagates to the strategy.
func (s campaignSink) LaunchWave(svc *faas.Service, launchID int) (Wave, error) {
	c := s.c
	insts, err := svc.Launch(c.cfg.InstancesPerLaunch)
	for attempt := 0; err != nil && errors.Is(err, faas.ErrLaunchFault) && attempt < c.cfg.LaunchRetries; attempt++ {
		c.stats.LaunchRetries++
		if cb := c.cfg.CongestionBackoff; cb > 0 {
			// Noise-hardened campaigns interpret a rejection as the platform
			// shedding load and back off extra before the retry cadence.
			c.stats.CongestionBackoffs++
			c.noiseHold(cb)
		}
		if wait := c.cfg.RetryBackoff << attempt; wait > 0 {
			c.retryHold(wait)
		}
		insts, err = svc.Launch(c.cfg.InstancesPerLaunch)
	}
	if err != nil {
		return Wave{}, err
	}
	apparent, err := c.res.Footprint.Record(insts)
	if err != nil {
		return Wave{}, err
	}
	w := Wave{
		Service:    svc.Name(),
		LaunchID:   launchID,
		Instances:  insts,
		Apparent:   apparent,
		Cumulative: c.res.Footprint.Cumulative(),
	}
	c.res.Records = append(c.res.Records, LaunchRecord{
		Service:    w.Service,
		LaunchID:   w.LaunchID,
		At:         c.sched.Now(),
		Apparent:   w.Apparent,
		Cumulative: w.Cumulative,
	})
	c.stats.Waves++
	c.stats.InstancesLaunched += len(insts)
	c.stats.FingerprintSamples += len(insts)
	return w, nil
}

// Keep implements CampaignSink.
func (s campaignSink) Keep(insts []*faas.Instance) {
	s.c.res.Live = append(s.c.res.Live, insts...)
}

// Hold implements CampaignSink.
func (s campaignSink) Hold(d time.Duration) {
	s.c.sched.Advance(d)
}

// Footprint implements CampaignSink.
func (s campaignSink) Footprint() *FootprintTracker { return s.c.res.Footprint }
