// Package attack implements the paper's instance-launching strategies and
// their evaluation metrics (§5.2):
//
//   - Strategy 1 (naive): launch many instances from cold services. The
//     instances land on the attacker account's base hosts only, so
//     co-location with a victim succeeds only when base pools accidentally
//     overlap.
//   - Strategy 2 (optimized): prime each attacker service into a
//     high-demand state by repeatedly launching a large instance count at a
//     short interval (e.g. 800 instances every 10 minutes, six times). The
//     load balancer spills the replacement instances onto helper hosts,
//     spreading the attacker across a large fraction of the data center at
//     negligible cost (instances idle between launches bill nothing).
//
// Both strategies are plugins of the campaign engine: a LaunchStrategy
// emits launch waves through a CampaignSink, and the staged Campaign
// pipeline (launch → fingerprint → verify → score) owns footprint tracking,
// covert verification, and the per-stage CampaignStats cost ledger. New
// launching behaviors (e.g. AdaptiveStrategy, which stops when marginal
// host yield dries up) are small strategy implementations, not forks of the
// launch loop.
//
// The package also provides fingerprint-based host-footprint tracking (the
// "apparent hosts" of §5.1) and victim-coverage measurement via verified
// co-location.
package attack

import (
	"errors"
	"fmt"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// Config parameterizes a launching campaign.
type Config struct {
	// Services is how many attacker services participate (paper: 6).
	Services int
	// InstancesPerLaunch is the scale-out target per launch (paper: 800).
	InstancesPerLaunch int
	// Launches is how many times each service is launched (paper: 6).
	Launches int
	// Interval is the pause between consecutive launches (paper: 10 min for
	// the optimized strategy; ≥ 45 min degenerates to naive/cold behavior).
	Interval time.Duration
	// HoldActive is how long each launch's instances stay connected for
	// measurements before being disconnected; this is what the attack pays
	// for (paper's overall cost ≈ $23–27 per data center).
	HoldActive time.Duration
	// Precision is the Gen 1 fingerprint rounding precision.
	Precision time.Duration

	// Fault-recovery budgets. All default to zero, which reproduces the
	// unhardened campaign: the first injected fault aborts or degrades the
	// run. Campaigns on a platform with a faas.FaultPlan set these to
	// self-heal (see the faultsweep experiment).

	// LaunchRetries is how many times a launch wave rejected with
	// faas.ErrLaunchFault is re-issued before the campaign gives up.
	LaunchRetries int
	// RetryBackoff is the wait before the first launch retry; it doubles on
	// every subsequent attempt of the same wave. The resident footprint
	// stays connected (and billing) through the wait — the fault ledger
	// attributes that spend.
	RetryBackoff time.Duration
	// VoteBudget is the covert.Config majority-vote repetition count used by
	// the campaign's default tester; 0 or 1 is the single-shot test.
	VoteBudget int
	// ProbeRetryBudget is how many times a fingerprint collection that hit a
	// probe fault is retried before the instance is skipped for the batch.
	// At 0 a probe fault propagates as an error instead.
	ProbeRetryBudget int

	// Channel selects the covert-channel primitive of the campaign's default
	// tester: "" or "rng" (the paper's RNG channel, byte-identical to builds
	// without the channel layer), "llc", "membus", or "combined" (majority
	// across all three). An explicit SetTester overrides it.
	Channel string

	// Noise-hardening budgets. All default to zero, which reproduces the
	// quiet-world campaign byte for byte. A campaign attacking a region with
	// background traffic (faas.TrafficModel) sets these to keep verification
	// reliable as bystander load corrupts the covert channels (see the
	// noisesweep experiment); everything they spend is metered to the
	// CampaignStats noise ledger.

	// CalibrationRounds, when positive, re-derives the tester's vote
	// thresholds against the live world before the first verification: a
	// footprint probe samples each channel's background rate over this many
	// solo rounds (covert.CalibrateChannel) instead of trusting quiet-world
	// constants.
	CalibrationRounds int
	// MarginFloor is the CTest health bar: a test whose minimum verdict
	// margin (covert.TestEvent.MinMargin) falls below this fraction counts
	// as low-margin, and a verification pass with more than 25% low-margin
	// tests triggers the escalation ladder.
	MarginFloor float64
	// MaxVoteBudget caps the escalation ladder's majority-vote budget; 0
	// disables vote-budget escalation (the ladder goes straight to the
	// fallback channel).
	MaxVoteBudget int
	// FallbackChannel, when set, is the channel the campaign swaps to when
	// vote-budget escalation alone cannot restore margins — typically the
	// slow but load-robust "rng" after starting on the fast "llc".
	FallbackChannel string
	// QuarantineAfter and NoisyHostBar quarantine persistently unreliable
	// footprint instances: one whose solo background (or dead-read) rate is
	// at least NoisyHostBar on QuarantineAfter consecutive unhealthy passes
	// is excluded from verification. 0 disables quarantine.
	QuarantineAfter int
	NoisyHostBar    float64
	// CongestionBackoff, when positive, adds a noise-ledger hold before each
	// launch retry — the campaign backs off while the congested platform
	// sheds load instead of hammering it at the bare fault cadence.
	CongestionBackoff time.Duration
}

// DefaultConfig returns the paper's optimized-strategy parameters.
func DefaultConfig() Config {
	return Config{
		Services:           6,
		InstancesPerLaunch: 800,
		Launches:           6,
		Interval:           10 * time.Minute,
		HoldActive:         40 * time.Second,
		Precision:          fingerprint.DefaultPrecision,
	}
}

// Validate checks the campaign parameters.
func (c Config) Validate() error {
	switch {
	case c.Services <= 0:
		return fmt.Errorf("attack: Services must be positive")
	case c.InstancesPerLaunch <= 0:
		return fmt.Errorf("attack: InstancesPerLaunch must be positive")
	case c.Launches <= 0:
		return fmt.Errorf("attack: Launches must be positive")
	case c.Interval < 0 || c.HoldActive < 0 || c.RetryBackoff < 0 || c.CongestionBackoff < 0:
		return fmt.Errorf("attack: negative durations")
	case c.Precision <= 0:
		return fmt.Errorf("attack: Precision must be positive")
	case c.LaunchRetries < 0 || c.VoteBudget < 0 || c.ProbeRetryBudget < 0:
		return fmt.Errorf("attack: negative fault-recovery budgets")
	case !covert.ValidChannel(c.Channel):
		return fmt.Errorf("attack: unknown channel %q (rng, llc, membus, combined)", c.Channel)
	case c.CalibrationRounds < 0 || c.MaxVoteBudget < 0 || c.QuarantineAfter < 0:
		return fmt.Errorf("attack: negative noise-hardening budgets")
	case c.MarginFloor < 0 || c.MarginFloor >= 1:
		return fmt.Errorf("attack: MarginFloor must be in [0, 1)")
	case c.NoisyHostBar < 0 || c.NoisyHostBar > 1:
		return fmt.Errorf("attack: NoisyHostBar must be in [0, 1]")
	case c.FallbackChannel != "" && !covert.ValidChannel(c.FallbackChannel):
		return fmt.Errorf("attack: unknown FallbackChannel %q (rng, llc, membus, combined)", c.FallbackChannel)
	}
	return nil
}

// NoiseHardened reports whether any noise-hardening budget is set. A false
// result guarantees Verify takes the historical single-pass path,
// byte-identical to builds that predate noise hardening.
func (c Config) NoiseHardened() bool {
	return c.CalibrationRounds > 0 || c.MarginFloor > 0 || c.MaxVoteBudget > 0 ||
		c.FallbackChannel != "" || c.QuarantineAfter > 0 || c.CongestionBackoff > 0
}

// FootprintTracker accumulates the set of apparent hosts (distinct Gen 1
// fingerprints) seen across launches.
type FootprintTracker struct {
	precision time.Duration
	seen      map[fingerprint.Gen1]bool
	// batch is per-Record scratch, reused so the per-wave hot path settles
	// to zero steady-state allocations (see TestRecordWaveAllocs).
	batch map[fingerprint.Gen1]bool
	// retryBudget is how many times a probe-faulted collection is retried
	// per instance before the sample is skipped; retries and skips meter
	// that recovery. At budget 0 a probe fault propagates as an error.
	retryBudget int
	retries     int
	skips       int
}

// NewFootprintTracker builds a tracker at the given precision.
func NewFootprintTracker(precision time.Duration) *FootprintTracker {
	return &FootprintTracker{
		precision: precision,
		seen:      make(map[fingerprint.Gen1]bool),
	}
}

// SetProbeRetryBudget configures probe-fault recovery: a collection that
// fails with sandbox.ErrProbeFault is retried up to budget times, then the
// instance is skipped for the batch. With budget 0 (the default) the first
// probe fault propagates as a Record error — the unhardened behavior.
func (ft *FootprintTracker) SetProbeRetryBudget(budget int) { ft.retryBudget = budget }

// ProbeRetries returns how many faulted collections were re-issued.
func (ft *FootprintTracker) ProbeRetries() int { return ft.retries }

// ProbeSkips returns how many instances were left unfingerprinted after the
// retry budget ran out.
func (ft *FootprintTracker) ProbeSkips() int { return ft.skips }

// Record fingerprints the instances and returns the number of apparent hosts
// in this batch; the tracker's cumulative set grows accordingly.
func (ft *FootprintTracker) Record(insts []*faas.Instance) (apparent int, err error) {
	if ft.batch == nil {
		ft.batch = make(map[fingerprint.Gen1]bool, len(insts))
	}
	clear(ft.batch)
	for _, inst := range insts {
		g, err := inst.Guest()
		if err != nil {
			return 0, err
		}
		s, err := fingerprint.CollectGen1(g)
		for r := 0; err != nil && errors.Is(err, sandbox.ErrProbeFault) && r < ft.retryBudget; r++ {
			ft.retries++
			s, err = fingerprint.CollectGen1(g)
		}
		if err != nil {
			if errors.Is(err, sandbox.ErrProbeFault) && ft.retryBudget > 0 {
				ft.skips++
				continue
			}
			return 0, err
		}
		fp := fingerprint.Gen1FromSample(s, ft.precision)
		ft.batch[fp] = true
		ft.seen[fp] = true
	}
	return len(ft.batch), nil
}

// Cumulative returns the size of the cumulative apparent-host footprint.
func (ft *FootprintTracker) Cumulative() int { return len(ft.seen) }

// Fingerprints returns a copy of the cumulative fingerprint set.
func (ft *FootprintTracker) Fingerprints() map[fingerprint.Gen1]bool {
	out := make(map[fingerprint.Gen1]bool, len(ft.seen))
	for fp := range ft.seen {
		out[fp] = true
	}
	return out
}

// LaunchRecord describes one launch of a campaign.
type LaunchRecord struct {
	Service    string
	LaunchID   int // 1-based, within the service
	At         simtime.Time
	Apparent   int // apparent hosts in this launch
	Cumulative int // cumulative apparent hosts so far (tracker-wide)
}

// CampaignResult is the outcome of a launching campaign.
type CampaignResult struct {
	Records []LaunchRecord
	// Live are the instances still connected when the campaign ended (the
	// last launch of each service is kept).
	Live []*faas.Instance
	// Footprint is the campaign's cumulative apparent-host tracker.
	Footprint *FootprintTracker
}

// serviceNames returns deterministic service names for a campaign.
func serviceNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%02d", prefix, i)
	}
	return out
}
