package attack

import (
	"fmt"
	"strings"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/faas"
)

// CampaignStats is the per-stage cost/coverage ledger of one campaign run.
// The launch stage prices what the attacker pays (instances, active
// vCPU-seconds, dollars); the fingerprint stage counts what the attacker
// learned (samples, apparent hosts); the verify stage meters the
// covert-channel budget; the score stage tallies victim coverage. A
// snapshot is available at any point via Campaign.Stats.
type CampaignStats struct {
	// Strategy is the name of the LaunchStrategy that ran the campaign.
	Strategy string
	// Region is the data center the campaign attacked; it labels the
	// ledger so per-shard ledgers of a fleet campaign stay apart. Empty in
	// merged fleet totals.
	Region faas.Region

	// Launch stage.

	// Waves is the number of launch waves the strategy emitted.
	Waves int
	// InstancesLaunched is the total instance count across all waves.
	InstancesLaunched int
	// LiveInstances is the resident footprint size after the launch stage.
	LiveInstances int
	// LaunchWall is the virtual time the launch stage spanned.
	LaunchWall time.Duration
	// VCPUSeconds and GBSeconds are the billable active usage the campaign
	// accrued during its launch stage (idle time between launches is free).
	VCPUSeconds float64
	GBSeconds   float64
	// USD prices that usage at the published Cloud Run rates.
	USD float64

	// Fingerprint stage.

	// FingerprintSamples is how many instances were fingerprinted.
	FingerprintSamples int
	// ApparentHosts is the cumulative apparent-host footprint (distinct
	// Gen 1 fingerprints; the §5.1 metric).
	ApparentHosts int

	// Verify stage.

	// Verifications counts Campaign.Verify calls.
	Verifications int
	// CTests counts covert-channel tests run through the campaign's tester.
	CTests int
	// CovertTime is the serialized wall-clock those tests consumed.
	CovertTime time.Duration
	// CovertInstanceTime is Σ over tests of participants × duration — the
	// per-instance channel occupancy the attacker also pays for.
	CovertInstanceTime time.Duration
	// PerChannel splits the verify-stage spend by covert channel, in
	// first-test order. A single-channel campaign carries one entry; the
	// majority-combined tester one per member channel.
	PerChannel []ChannelCost

	// Score stage.

	// VictimInstances and VictimsCovered accumulate over Verify calls.
	VictimInstances int
	VictimsCovered  int

	// Fault-recovery ledger. All-zero on a fault-free platform; a campaign
	// hardened against a faas.FaultPlan meters every recovery action and its
	// attributable cost here.

	// LaunchRetries counts launch waves re-issued after a transient
	// faas.ErrLaunchFault rejection.
	LaunchRetries int
	// RetryBackoffWall is the virtual time spent waiting out launch-retry
	// backoff (the resident footprint stays connected — and billing —
	// through it).
	RetryBackoffWall time.Duration
	// ReVotes counts majority-vote CTest repetitions beyond each test's
	// first run (covert.TestEvent.Repetition > 0).
	ReVotes int
	// ProbeRetries counts fingerprint collections re-issued after a probe
	// fault; ProbeSkips counts instances still faulting after the retry
	// budget, left out of their batch instead of misclassified.
	ProbeRetries int
	ProbeSkips   int
	// FaultVCPUSeconds, FaultGBSeconds and FaultUSD attribute the resident
	// footprint's usage during retry backoff: the share of the bill a
	// fault-free run would not have paid. The dollars themselves already
	// flow through the launch-stage VCPUSeconds/USD via lazy accrual; this
	// is attribution, not an extra charge.
	FaultVCPUSeconds float64
	FaultGBSeconds   float64
	FaultUSD         float64

	// Noise-hardening ledger. All-zero without Config noise budgets; a
	// campaign hardened against background-tenant load (faas.TrafficModel)
	// meters every adaptation and its attributable cost here.

	// Calibrations counts live-world threshold derivations (the starting
	// channel's one-shot calibration plus any ladder channel swap).
	Calibrations int
	// LowMarginTests counts CTests whose minimum verdict margin fell below
	// Config.MarginFloor — the raw signal the escalation ladder keys on.
	LowMarginTests int
	// NoiseEscalations counts vote-budget raises; ChannelFallbacks counts
	// swaps to the fallback channel.
	NoiseEscalations int
	ChannelFallbacks int
	// Quarantined counts footprint instances excluded from verification as
	// persistently noisy.
	Quarantined int
	// CongestionBackoffs counts the extra pre-retry holds taken when the
	// congested platform rejected a launch wave.
	CongestionBackoffs int
	// NoiseWall is the virtual time noise hardening consumed: calibration
	// sampling, congestion backoff, escalated re-verification passes.
	NoiseWall time.Duration
	// NoiseVCPUSeconds, NoiseGBSeconds and NoiseUSD attribute the resident
	// footprint's usage during that time — what surviving the living cloud
	// cost on top of the quiet-world campaign. Attribution, not an extra
	// charge, by the same convention as the fault ledger.
	NoiseVCPUSeconds float64
	NoiseGBSeconds   float64
	NoiseUSD         float64
}

// ChannelCost is the verify-stage covert spend attributed to one channel.
type ChannelCost struct {
	// Channel names the covert channel ("rng", "llc", "membus").
	Channel string
	// CTests, CovertTime and ReVotes mirror the aggregate verify-stage
	// counters, restricted to this channel's tests.
	CTests     int
	CovertTime time.Duration
	ReVotes    int
}

// FaultRecovery reports whether any fault-recovery activity was metered.
func (s CampaignStats) FaultRecovery() bool {
	return s.LaunchRetries > 0 || s.ReVotes > 0 || s.ProbeRetries > 0 ||
		s.ProbeSkips > 0 || s.RetryBackoffWall > 0
}

// NoiseHardening reports whether any noise-hardening activity was metered.
func (s CampaignStats) NoiseHardening() bool {
	return s.Calibrations > 0 || s.LowMarginTests > 0 || s.NoiseEscalations > 0 ||
		s.ChannelFallbacks > 0 || s.Quarantined > 0 || s.CongestionBackoffs > 0 ||
		s.NoiseWall > 0
}

// ObserveTest implements covert.Sink: the campaign's tester reports every
// CTest here, which is how the verify stage is metered even when the caller
// drives the tester directly.
func (s *CampaignStats) ObserveTest(ev covert.TestEvent) {
	s.CTests++
	s.CovertTime += ev.Duration
	s.CovertInstanceTime += time.Duration(ev.Participants) * ev.Duration
	if ev.Repetition > 0 {
		s.ReVotes++
	}
	for i := range s.PerChannel {
		if s.PerChannel[i].Channel == ev.Channel {
			s.PerChannel[i].observe(ev)
			return
		}
	}
	s.PerChannel = append(s.PerChannel, ChannelCost{Channel: ev.Channel})
	s.PerChannel[len(s.PerChannel)-1].observe(ev)
}

func (c *ChannelCost) observe(ev covert.TestEvent) {
	c.CTests++
	c.CovertTime += ev.Duration
	if ev.Repetition > 0 {
		c.ReVotes++
	}
}

// CoverageFraction returns covered/measured victims across all Verify
// calls, or 0 before any verification.
func (s CampaignStats) CoverageFraction() float64 {
	if s.VictimInstances == 0 {
		return 0
	}
	return float64(s.VictimsCovered) / float64(s.VictimInstances)
}

// CostPerVictim returns the launch-stage dollars paid per covered victim,
// or 0 before any victim was covered.
func (s CampaignStats) CostPerVictim() float64 {
	if s.VictimsCovered == 0 {
		return 0
	}
	return s.USD / float64(s.VictimsCovered)
}

// String renders the ledger, one line per pipeline stage.
func (s CampaignStats) String() string {
	var b strings.Builder
	if s.Region != "" {
		fmt.Fprintf(&b, "campaign ledger (%s @ %s):\n", s.Strategy, s.Region)
	} else {
		fmt.Fprintf(&b, "campaign ledger (%s):\n", s.Strategy)
	}
	fmt.Fprintf(&b, "  launch:      %d waves, %d instances (%d live), %v wall, %.0f vCPU-s ($%.2f)\n",
		s.Waves, s.InstancesLaunched, s.LiveInstances, s.LaunchWall, s.VCPUSeconds, s.USD)
	fmt.Fprintf(&b, "  fingerprint: %d samples, %d apparent hosts\n",
		s.FingerprintSamples, s.ApparentHosts)
	fmt.Fprintf(&b, "  verify:      %d verifications, %d CTests, %v channel time\n",
		s.Verifications, s.CTests, s.CovertTime)
	// The per-channel split only earns a line when there is a split; the
	// single-channel ledger renders exactly as it always has.
	if len(s.PerChannel) > 1 {
		for _, cc := range s.PerChannel {
			fmt.Fprintf(&b, "    %-9s %d CTests, %v channel time, %d re-votes\n",
				cc.Channel+":", cc.CTests, cc.CovertTime, cc.ReVotes)
		}
	}
	fmt.Fprintf(&b, "  score:       %d/%d victims covered (%.1f%%)",
		s.VictimsCovered, s.VictimInstances, 100*s.CoverageFraction())
	if s.FaultRecovery() {
		fmt.Fprintf(&b, "\n  faults:      %d launch retries (%v backoff, $%.2f held), %d re-votes, %d probe retries, %d skips",
			s.LaunchRetries, s.RetryBackoffWall, s.FaultUSD, s.ReVotes, s.ProbeRetries, s.ProbeSkips)
	}
	if s.NoiseHardening() {
		fmt.Fprintf(&b, "\n  noise:       %d calibrations, %d low-margin tests, %d escalations, %d fallbacks, %d quarantined, %d backoffs, %v held ($%.2f)",
			s.Calibrations, s.LowMarginTests, s.NoiseEscalations, s.ChannelFallbacks,
			s.Quarantined, s.CongestionBackoffs, s.NoiseWall, s.NoiseUSD)
	}
	return b.String()
}

// FleetStats is the merged ledger of a FleetCampaign: the per-region shard
// ledgers plus the round-budget accounting of the planner that allocated
// across them.
type FleetStats struct {
	// Planner and Strategy name the budget policy and launch strategy.
	Planner  string
	Strategy string
	// Budget is the fleet's total launch-round budget (regions × Launches);
	// RoundsUsed is how many rounds the planner actually granted, implicit
	// first rounds included. Both are zero for unpaced strategies.
	Budget     int
	RoundsUsed int
	// Shards are the per-region campaign ledgers, in fleet order.
	Shards []CampaignStats
}

// Totals merges the shard ledgers into one fleet-wide CampaignStats. Counts
// and costs add; LaunchWall is the maximum across shards, because shards
// run their virtual clocks concurrently — the fleet's launch stage is as
// long as its slowest region's.
func (f FleetStats) Totals() CampaignStats {
	var t CampaignStats
	t.Strategy = f.Strategy
	for _, s := range f.Shards {
		t.Waves += s.Waves
		t.InstancesLaunched += s.InstancesLaunched
		t.LiveInstances += s.LiveInstances
		if s.LaunchWall > t.LaunchWall {
			t.LaunchWall = s.LaunchWall
		}
		t.VCPUSeconds += s.VCPUSeconds
		t.GBSeconds += s.GBSeconds
		t.USD += s.USD
		t.FingerprintSamples += s.FingerprintSamples
		t.ApparentHosts += s.ApparentHosts
		t.Verifications += s.Verifications
		t.CTests += s.CTests
		t.CovertTime += s.CovertTime
		t.CovertInstanceTime += s.CovertInstanceTime
		t.VictimInstances += s.VictimInstances
		t.VictimsCovered += s.VictimsCovered
		t.LaunchRetries += s.LaunchRetries
		t.RetryBackoffWall += s.RetryBackoffWall
		t.ReVotes += s.ReVotes
		t.ProbeRetries += s.ProbeRetries
		t.ProbeSkips += s.ProbeSkips
		t.FaultVCPUSeconds += s.FaultVCPUSeconds
		t.FaultGBSeconds += s.FaultGBSeconds
		t.FaultUSD += s.FaultUSD
		t.Calibrations += s.Calibrations
		t.LowMarginTests += s.LowMarginTests
		t.NoiseEscalations += s.NoiseEscalations
		t.ChannelFallbacks += s.ChannelFallbacks
		t.Quarantined += s.Quarantined
		t.CongestionBackoffs += s.CongestionBackoffs
		t.NoiseWall += s.NoiseWall
		t.NoiseVCPUSeconds += s.NoiseVCPUSeconds
		t.NoiseGBSeconds += s.NoiseGBSeconds
		t.NoiseUSD += s.NoiseUSD
		for _, cc := range s.PerChannel {
			t.mergeChannel(cc)
		}
	}
	return t
}

// mergeChannel folds one shard's per-channel entry into the fleet total,
// matching by channel name.
func (t *CampaignStats) mergeChannel(cc ChannelCost) {
	for i := range t.PerChannel {
		if t.PerChannel[i].Channel == cc.Channel {
			t.PerChannel[i].CTests += cc.CTests
			t.PerChannel[i].CovertTime += cc.CovertTime
			t.PerChannel[i].ReVotes += cc.ReVotes
			return
		}
	}
	t.PerChannel = append(t.PerChannel, cc)
}

// CostPerVictim returns the fleet-wide dollars per covered victim.
func (f FleetStats) CostPerVictim() float64 { return f.Totals().CostPerVictim() }

// String renders the fleet ledger: one cost/coverage line per region shard
// and the fleet-wide roll-up.
func (f FleetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet ledger (%s planner, %s strategy): %d regions",
		f.Planner, f.Strategy, len(f.Shards))
	if f.Budget > 0 {
		fmt.Fprintf(&b, ", %d/%d rounds", f.RoundsUsed, f.Budget)
	}
	b.WriteByte('\n')
	for _, s := range f.Shards {
		fmt.Fprintf(&b, "  %-12s %2d waves, %4d apparent hosts, $%6.2f, %d/%d victims (%.1f%%), $%.2f/victim\n",
			s.Region+":", s.Waves, s.ApparentHosts, s.USD,
			s.VictimsCovered, s.VictimInstances, 100*s.CoverageFraction(), s.CostPerVictim())
	}
	t := f.Totals()
	fmt.Fprintf(&b, "  %-12s %2d waves, %4d apparent hosts, $%6.2f, %d/%d victims (%.1f%%), $%.2f/victim",
		"fleet:", t.Waves, t.ApparentHosts, t.USD,
		t.VictimsCovered, t.VictimInstances, 100*t.CoverageFraction(), t.CostPerVictim())
	return b.String()
}
