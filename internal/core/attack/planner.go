package attack

import (
	"fmt"

	"eaao/internal/faas"
)

// ShardStatus is one region shard's observable state at a planning barrier:
// everything a Planner may base budget decisions on. It contains only
// attacker-visible quantities (fingerprint-derived footprint, the shard's
// own bill) — no platform ground truth.
type ShardStatus struct {
	// Region names the shard.
	Region faas.Region
	// Rounds is how many launch rounds the shard has completed.
	Rounds int
	// Before is the shard's cumulative apparent-host footprint entering its
	// latest round; Grown is what that round added; Cumulative is the
	// footprint after it. Grown/Before is AdaptiveStrategy's marginal-yield
	// signal, generalized here to a cross-region allocation input.
	Before     int
	Grown      int
	Cumulative int
	// FirstRound is the apparent-host yield of the shard's first round — a
	// region-size proxy available to every planner after one round.
	FirstRound int
	// USD is the shard's launch-stage spend so far.
	USD float64
	// Finished marks shards that will run no further rounds (released, or
	// failed); planners must not grant them budget.
	Finished bool
}

// Planner decides, at each cross-region barrier, which shards' campaigns
// get another launch round. The fleet's round budget is R × Launches total
// rounds (what R independent optimized campaigns would spend); every
// shard's first round is granted implicitly, each further grant consumes
// one round, and remaining is what is left. Plan returns one grant per
// status entry; the coordinator clamps grants to the remaining budget in
// shard order. Planners must be stateless functions of their inputs — the
// same statuses and remaining budget must always produce the same grants —
// which is what keeps a fleet campaign byte-identical for any worker count.
type Planner interface {
	// Name is the planner's stable identity ("static-even", ...), used by
	// the CLI -planner flag and the fleet ledger.
	Name() string
	// Plan returns, for each shard, whether it gets another round.
	Plan(status []ShardStatus, remaining int) []bool
}

// roundBudget reconstructs the fleet's total round budget from a barrier
// snapshot: every completed round consumed one budget unit, so the total is
// what is left plus what was spent. Keeping planners stateless this way
// means a Plan call can always be replayed from its arguments alone.
func roundBudget(status []ShardStatus, remaining int) int {
	total := remaining
	for _, s := range status {
		total += s.Rounds
	}
	return total
}

// StaticEvenPlanner splits the round budget evenly: every shard runs
// exactly Launches rounds, none reacts to observed yield. It is the
// baseline budget-split policy — R independent OptimizedStrategy campaigns
// — and with one shard it reproduces OptimizedStrategy byte for byte.
type StaticEvenPlanner struct{}

// Name implements Planner.
func (StaticEvenPlanner) Name() string { return "static-even" }

// Plan implements Planner.
func (StaticEvenPlanner) Plan(status []ShardStatus, remaining int) []bool {
	// Even largest-remainder split of the total budget; earlier shards
	// absorb any indivisible remainder. With the coordinator's R × Launches
	// budget this is exactly Launches rounds per shard.
	total := roundBudget(status, remaining)
	share := total / len(status)
	extra := total % len(status)
	grants := make([]bool, len(status))
	for i, s := range status {
		target := share
		if i < extra {
			target++
		}
		grants[i] = !s.Finished && s.Rounds < target
	}
	return grants
}

// ProportionalPlanner splits the round budget proportionally to each
// shard's first-round apparent-host yield: bigger regions (more hosts
// reachable per wave) get more rounds. The split is decided from round-1
// information only and never revisited — a cheap middle ground between
// static-even and the adaptive planner.
type ProportionalPlanner struct{}

// Name implements Planner.
func (ProportionalPlanner) Name() string { return "proportional" }

// Plan implements Planner.
func (ProportionalPlanner) Plan(status []ShardStatus, remaining int) []bool {
	targets := proportionalTargets(status, roundBudget(status, remaining))
	grants := make([]bool, len(status))
	for i, s := range status {
		grants[i] = !s.Finished && s.Rounds < targets[i]
	}
	return grants
}

// proportionalTargets allocates total rounds across shards proportionally
// to FirstRound yield by largest remainder: one guaranteed round each (the
// implicit first round), the rest split by weight, fractional leftovers
// going to the largest remainders (ties to the lower shard index). A
// zero-yield shard keeps only its first round.
func proportionalTargets(status []ShardStatus, total int) []int {
	n := len(status)
	targets := make([]int, n)
	var weight float64
	for _, s := range status {
		weight += float64(s.FirstRound)
	}
	spare := total - n // beyond the guaranteed first rounds
	if spare < 0 {
		spare = 0
	}
	rem := make([]float64, n)
	allocated := 0
	for i, s := range status {
		targets[i] = 1
		if weight <= 0 {
			continue
		}
		exact := float64(spare) * float64(s.FirstRound) / weight
		whole := int(exact)
		targets[i] += whole
		rem[i] = exact - float64(whole)
		allocated += whole
	}
	if weight <= 0 {
		// No signal to split on: fall back to an even spread.
		for i := range targets {
			targets[i] += spare / n
			if i < spare%n {
				targets[i]++
			}
		}
		return targets
	}
	for spare > allocated {
		best := -1
		for i := range rem {
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		targets[best]++
		rem[best] = -1
		allocated++
	}
	return targets
}

// CrossRegionPlanner generalizes AdaptiveStrategy's early-stop rule into a
// budget reallocator: a shard whose latest round grew its footprint by less
// than MinYield of what it already had is dry — its remaining budget is
// released and flows to the shards still yielding, in order of observed
// marginal yield. A yielding shard can therefore run more than Launches
// rounds when a sibling dries up early; a shard that never yields is
// drained to zero extra rounds. With one shard the release rule reduces
// exactly to AdaptiveStrategy.
type CrossRegionPlanner struct {
	// MinYield is the minimum fractional footprint growth a round must
	// deliver for its shard to stay funded; 0 means
	// DefaultAdaptiveMinYield.
	MinYield float64
}

// Name implements Planner.
func (CrossRegionPlanner) Name() string { return "adaptive" }

// Plan implements Planner.
func (p CrossRegionPlanner) Plan(status []ShardStatus, remaining int) []bool {
	minYield := p.MinYield
	if minYield <= 0 {
		minYield = DefaultAdaptiveMinYield
	}
	grants := make([]bool, len(status))
	if remaining <= 0 {
		return grants
	}
	// Fund yielding shards in priority order — highest latest-round yield
	// first, shard index breaking ties — until the budget runs out.
	order := make([]int, 0, len(status))
	for i, s := range status {
		if s.Finished {
			continue
		}
		// AdaptiveStrategy's stop rule, per shard: after the first round, a
		// round must grow the footprint by MinYield of its prior size.
		if s.Rounds > 1 && float64(s.Grown) < minYield*float64(s.Before) {
			continue
		}
		order = append(order, i)
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0; b-- {
			i, j := order[b-1], order[b]
			if status[j].Grown > status[i].Grown {
				order[b-1], order[b] = j, i
			}
		}
	}
	for n, i := range order {
		if n >= remaining {
			break
		}
		grants[i] = true
	}
	return grants
}

// Planners returns one instance of every built-in budget planner, in
// presentation order.
func Planners() []Planner {
	return []Planner{StaticEvenPlanner{}, ProportionalPlanner{}, CrossRegionPlanner{}}
}

// PlannerByName resolves a built-in planner from its CLI name.
func PlannerByName(name string) (Planner, error) {
	switch name {
	case "static-even", "static", "even":
		return StaticEvenPlanner{}, nil
	case "proportional", "prop":
		return ProportionalPlanner{}, nil
	case "adaptive", "cross-region":
		return CrossRegionPlanner{}, nil
	}
	return nil, fmt.Errorf("attack: unknown planner %q (static-even, proportional, adaptive)", name)
}
