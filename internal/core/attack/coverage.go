package attack

import (
	"errors"
	"fmt"
	"time"

	"eaao/internal/core/coloc"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// Coverage is the outcome of a co-location measurement between an attacker
// footprint and a set of victim instances.
type Coverage struct {
	// VictimTotal is the number of victim instances measured.
	VictimTotal int
	// VictimCovered is how many of them share a verified host with at
	// least one attacker instance.
	VictimCovered int
	// AtLeastOne reports whether the attacker co-located with any victim
	// instance at all (the paper's headline "100% probability" metric).
	AtLeastOne bool
	// AttackerHosts is the number of verified distinct hosts holding
	// attacker instances.
	AttackerHosts int
	// SharedHosts is the number of verified hosts holding both attacker
	// and victim instances.
	SharedHosts int
	// Tests is the covert-channel test count the verification consumed.
	Tests int
	// FingerprintPredicted is how many probed victims the boot-time identity
	// prior places on an attacker host (a Gen 1 fingerprint shared with some
	// attacker representative) before any covert confirmation. Boot-time
	// identity is load-immune, so VictimCovered falling far below this
	// number is the signature of the covert channel — not the co-location —
	// failing; noise-hardened campaigns treat the gap as a ladder trigger.
	// Zero for Gen 2 measurements, whose coarse fingerprints over-predict.
	FingerprintPredicted int
	// Faults is the probe-fault recovery bookkeeping of this measurement;
	// all-zero on a fault-free platform.
	Faults CoverageFaults
}

// CoverageFaults meters probe-fault recovery during one coverage
// measurement. Skipped victims stay in Coverage.VictimTotal (they exist —
// the attacker merely failed to measure them) and count as uncovered, which
// is what makes an unrecovered fault a coverage loss rather than a silent
// misclassification.
type CoverageFaults struct {
	// ProbeRetries counts fingerprint collections re-issued after a fault.
	ProbeRetries int
	// AttackersSkipped and VictimsSkipped count instances still faulting
	// after the retry budget, left out of the verification.
	AttackersSkipped int
	VictimsSkipped   int
}

// CoverageOpts parameterizes MeasureCoverageDetailOpts.
type CoverageOpts struct {
	// Precision is the Gen 1 fingerprint rounding precision.
	Precision time.Duration
	// ProbeRetryBudget is how many times a probe-faulted fingerprint
	// collection is retried before the instance is skipped. At 0 (the
	// unhardened default) the first probe fault propagates as an error.
	ProbeRetryBudget int
}

// Fraction returns covered/total, or 0 when no victims were measured.
func (c Coverage) Fraction() float64 {
	if c.VictimTotal == 0 {
		return 0
	}
	return float64(c.VictimCovered) / float64(c.VictimTotal)
}

// String renders the coverage for reports.
func (c Coverage) String() string {
	return fmt.Sprintf("coverage %.1f%% (%d/%d victims, %d shared hosts)",
		100*c.Fraction(), c.VictimCovered, c.VictimTotal, c.SharedHosts)
}

// MeasureCoverage verifies attacker-victim co-location using the scalable
// methodology of §4.3: both sides are fingerprinted, grouped, and verified
// with the covert channel; a victim instance counts as covered when its
// verified cluster also contains an attacker instance.
//
// The attacker set may be large (thousands of instances); to keep the
// covert-channel budget proportional to hosts rather than instances, only
// one attacker instance per apparent host joins the verification, exactly as
// an attacker would do in practice.
func MeasureCoverage(tester coloc.Tester, attacker, victims []*faas.Instance, precision time.Duration) (Coverage, error) {
	cov, _, err := MeasureCoverageDetail(tester, attacker, victims, precision)
	return cov, err
}

// MeasureCoverageDetail is MeasureCoverage, additionally returning the
// attacker instances verified to share a host with at least one victim —
// the spies for the extraction step, and the input to a re-attack
// TargetBook.
func MeasureCoverageDetail(tester coloc.Tester, attacker, victims []*faas.Instance, precision time.Duration) (Coverage, []*faas.Instance, error) {
	return MeasureCoverageDetailOpts(tester, attacker, victims, CoverageOpts{Precision: precision})
}

// MeasureCoverageDetailOpts is MeasureCoverageDetail with fault-recovery
// options. With a zero ProbeRetryBudget it is the exact historical
// measurement; with a positive budget, probe-faulted fingerprint collections
// are retried and persistently faulting instances are skipped instead of
// failing the whole verification.
func MeasureCoverageDetailOpts(tester coloc.Tester, attacker, victims []*faas.Instance, opts CoverageOpts) (Coverage, []*faas.Instance, error) {
	precision := opts.Precision
	gen2 := false
	for _, inst := range attacker {
		g, err := inst.Guest()
		if err != nil {
			continue // terminated; skipped below anyway
		}
		if _, err := g.GuestKernelTSCHz(); err == nil {
			gen2 = true
		}
		break
	}

	// In Gen 1, fingerprints are near-perfect host identifiers, so one
	// attacker representative per apparent host suffices and keeps the
	// covert-channel budget proportional to hosts. Gen 2 fingerprints are
	// coarse (several hosts share one), so deduping would silently drop
	// attacker hosts; there the full attacker set joins the verification
	// and the verifier's internal splitting does the work.
	// Instances recycled away by the platform since the campaign ended are
	// dropped up front: their connection is gone and they can neither be
	// fingerprinted nor pressure the covert channel.
	live := make([]*faas.Instance, 0, len(attacker))
	for _, inst := range attacker {
		if inst.State() != faas.StateTerminated {
			live = append(live, inst)
		}
	}
	var faults CoverageFaults
	reps := live
	if !gen2 {
		var err error
		reps, err = dedupeByFingerprint(live, opts, &faults)
		if err != nil {
			return Coverage{}, nil, err
		}
	}

	// Victims recycled since they were launched are likewise excluded: the
	// attacker can only co-locate with instances that still exist.
	liveVictims := make([]*faas.Instance, 0, len(victims))
	for _, inst := range victims {
		if inst.State() != faas.StateTerminated {
			liveVictims = append(liveVictims, inst)
		}
	}
	victims = liveVictims

	// Skipped instances drop out of the verification here, so the labels
	// stay parallel to the probed slices: items[0:attackerCount] belong to
	// probedReps, the rest to probedVictims.
	items := make([]coloc.Item, 0, len(reps)+len(victims))
	probedReps := make([]*faas.Instance, 0, len(reps))
	for _, inst := range reps {
		it, ok, err := collectItem(inst, precision, gen2, opts.ProbeRetryBudget, &faults)
		if err != nil {
			return Coverage{}, nil, err
		}
		if !ok {
			faults.AttackersSkipped++
			continue
		}
		probedReps = append(probedReps, inst)
		items = append(items, it)
	}
	attackerCount := len(probedReps)
	probedVictims := make([]*faas.Instance, 0, len(victims))
	for _, inst := range victims {
		it, ok, err := collectItem(inst, precision, gen2, opts.ProbeRetryBudget, &faults)
		if err != nil {
			return Coverage{}, nil, err
		}
		if !ok {
			faults.VictimsSkipped++
			continue
		}
		probedVictims = append(probedVictims, inst)
		items = append(items, it)
	}

	cov := Coverage{VictimTotal: len(victims), Faults: faults}
	if len(items) == 0 {
		// Every instance faulted out: nothing to verify, nothing covered.
		return cov, nil, nil
	}

	// The identity prior, recorded before covert confirmation: Gen 1
	// fingerprints are (near-)exact host identifiers, so a victim sharing a
	// key with an attacker representative is predicted co-located. Gen 2
	// keys are coarse, so the prior is not meaningful there.
	if !gen2 {
		attackerKeys := make(map[fingerprint.Key]bool, attackerCount)
		for i := 0; i < attackerCount; i++ {
			attackerKeys[items[i].Fingerprint] = true
		}
		for v := attackerCount; v < len(items); v++ {
			if attackerKeys[items[v].Fingerprint] {
				cov.FingerprintPredicted++
			}
		}
	}

	opt := coloc.DefaultOptions()
	opt.AssumeNoFalseNegatives = gen2
	res, err := coloc.Verify(tester, items, opt)
	if err != nil {
		return Coverage{}, nil, err
	}

	cov.Tests = res.Tests
	attackerHosts := make(map[int]bool)
	for i := 0; i < attackerCount; i++ {
		attackerHosts[res.Labels[i]] = true
	}
	cov.AttackerHosts = len(attackerHosts)
	shared := make(map[int]bool)
	for v := 0; v < len(probedVictims); v++ {
		label := res.Labels[attackerCount+v]
		if attackerHosts[label] {
			cov.VictimCovered++
			shared[label] = true
		}
	}
	cov.SharedHosts = len(shared)
	cov.AtLeastOne = cov.VictimCovered > 0

	// Collect the attacker instances whose verified cluster holds a victim.
	victimLabels := make(map[int]bool)
	for v := 0; v < len(probedVictims); v++ {
		victimLabels[res.Labels[attackerCount+v]] = true
	}
	var spies []*faas.Instance
	for i := 0; i < attackerCount; i++ {
		if victimLabels[res.Labels[i]] {
			spies = append(spies, probedReps[i])
		}
	}
	return cov, spies, nil
}

// collectItem fingerprints one instance into a verification item, retrying
// probe faults up to budget times. ok=false (with nil error) means the
// instance kept faulting and is quarantined from this measurement; with
// budget 0 the first probe fault is returned as an error instead.
func collectItem(inst *faas.Instance, precision time.Duration, gen2 bool, budget int, faults *CoverageFaults) (coloc.Item, bool, error) {
	it, err := makeItem(inst, precision, gen2)
	for r := 0; err != nil && errors.Is(err, sandbox.ErrProbeFault) && r < budget; r++ {
		faults.ProbeRetries++
		it, err = makeItem(inst, precision, gen2)
	}
	if err == nil {
		return it, true, nil
	}
	if errors.Is(err, sandbox.ErrProbeFault) && budget > 0 {
		return coloc.Item{}, false, nil
	}
	return coloc.Item{}, false, err
}

// makeItem fingerprints one instance into a verification item.
func makeItem(inst *faas.Instance, precision time.Duration, gen2 bool) (coloc.Item, error) {
	g, err := inst.Guest()
	if err != nil {
		return coloc.Item{}, err
	}
	if gen2 {
		fp, err := fingerprint.CollectGen2(g)
		if err != nil {
			return coloc.Item{}, err
		}
		return coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}, nil
	}
	s, err := fingerprint.CollectGen1(g)
	if err != nil {
		return coloc.Item{}, err
	}
	fp := fingerprint.Gen1FromSample(s, precision)
	return coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}, nil
}

// dedupeByFingerprint keeps the first instance per apparent host (Gen 1
// fingerprints only). Instances that keep probe-faulting past the retry
// budget are dropped — they cannot represent a host they cannot identify.
func dedupeByFingerprint(insts []*faas.Instance, opts CoverageOpts, faults *CoverageFaults) ([]*faas.Instance, error) {
	seen := make(map[fingerprint.Key]bool, len(insts))
	var out []*faas.Instance
	for _, inst := range insts {
		it, ok, err := collectItem(inst, opts.Precision, false, opts.ProbeRetryBudget, faults)
		if err != nil {
			return nil, err
		}
		if !ok {
			faults.AttackersSkipped++
			continue
		}
		if !seen[it.Fingerprint] {
			seen[it.Fingerprint] = true
			out = append(out, inst)
		}
	}
	return out, nil
}

// ScaleEstimate is the result of the data-center scale exploration (Fig. 12).
type ScaleEstimate struct {
	// CumulativeByLaunch is the cumulative number of unique apparent hosts
	// after each launch, in launch order.
	CumulativeByLaunch []int
	// UniqueHosts is the number of distinct apparent hosts ever observed —
	// the paper's estimate, a lower bound on the true fleet size.
	UniqueHosts int
	// ChapmanEstimate is a capture-recapture point estimate of the
	// reachable fleet size, treating the first and second halves of the
	// exploration as two capture occasions. Zero when the recapture overlap
	// is empty. It refines the lower bound the way ecologists size animal
	// populations — and tends to sit between UniqueHosts and the truth.
	ChapmanEstimate float64
}

// chapman computes the Chapman estimator N̂ = (n1+1)(n2+1)/(m+1) − 1 for two
// capture occasions with n1 and n2 captures and m recaptures.
func chapman(n1, n2, m int) float64 {
	return float64(n1+1)*float64(n2+1)/float64(m+1) - 1
}

// EstimateScale explores a data center's size with services from several
// accounts, all launched with the optimized strategy; the union of apparent
// hosts across launches estimates the fleet size (a lower bound on truth).
func EstimateScale(dc *faas.DataCenter, accounts []string, servicesPerAccount int, cfg Config) (*ScaleEstimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if servicesPerAccount <= 0 || len(accounts) == 0 {
		return nil, fmt.Errorf("attack: scale exploration needs accounts and services")
	}
	tracker := NewFootprintTracker(cfg.Precision)
	firstHalf := NewFootprintTracker(cfg.Precision)
	secondHalf := NewFootprintTracker(cfg.Precision)
	est := &ScaleEstimate{}
	sched := dc.Scheduler()

	type deployed struct {
		svc *faas.Service
	}
	var svcs []deployed
	for _, acct := range accounts {
		a := dc.Account(acct)
		for s := 0; s < servicesPerAccount; s++ {
			svcs = append(svcs, deployed{
				svc: a.DeployService(fmt.Sprintf("explore-%02d", s), faas.ServiceConfig{}),
			})
		}
	}
	for launch := 0; launch < cfg.Launches; launch++ {
		half := firstHalf
		if launch >= cfg.Launches/2 {
			half = secondHalf
		}
		for _, d := range svcs {
			insts, err := d.svc.Launch(cfg.InstancesPerLaunch)
			if err != nil {
				return nil, err
			}
			if _, err := tracker.Record(insts); err != nil {
				return nil, err
			}
			if _, err := half.Record(insts); err != nil {
				return nil, err
			}
			est.CumulativeByLaunch = append(est.CumulativeByLaunch, tracker.Cumulative())
			d.svc.Disconnect()
		}
		sched.Advance(cfg.Interval)
	}
	est.UniqueHosts = tracker.Cumulative()

	// Capture-recapture across the two halves of the exploration.
	f1 := firstHalf.Fingerprints()
	recaptured := 0
	for fp := range secondHalf.Fingerprints() {
		if f1[fp] {
			recaptured++
		}
	}
	if recaptured > 0 {
		est.ChapmanEstimate = chapman(firstHalf.Cumulative(), secondHalf.Cumulative(), recaptured)
	}
	return est, nil
}
