package attack

import (
	"testing"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// smallWorld builds a reduced three-group region for attack tests.
func smallWorld(t *testing.T, seed uint64) *faas.DataCenter {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 200
	p.PlacementGroups = 4
	p.BasePoolSize = 40
	p.AccountHelperPool = 90
	p.ServiceHelperSize = 70
	p.ServiceHelperFresh = 8
	return faas.MustPlatform(seed, p).MustRegion("t")
}

// smallCfg scales the paper's campaign down for test speed.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Services = 3
	cfg.InstancesPerLaunch = 250
	cfg.Launches = 4
	cfg.HoldActive = 10 * time.Second
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.Services = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero services validated")
	}
	bad = DefaultConfig()
	bad.Precision = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero precision validated")
	}
}

func TestNaiveStaysOnBaseHosts(t *testing.T) {
	dc := smallWorld(t, 1)
	res, err := RunNaive(dc.Account("attacker"), smallCfg(), sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3*250 {
		t.Fatalf("live = %d", len(res.Live))
	}
	// The naive footprint must stay within the base pool's size.
	if res.Footprint.Cumulative() > dc.Profile().BasePoolSize+3 {
		t.Errorf("naive footprint %d exceeds base pool %d",
			res.Footprint.Cumulative(), dc.Profile().BasePoolSize)
	}
}

func TestOptimizedExpandsFootprint(t *testing.T) {
	dc := smallWorld(t, 2)
	cfg := smallCfg()
	naive, err := RunNaive(dc.Account("naive-acct"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunOptimized(dc.Account("opt-acct"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Footprint.Cumulative() <= naive.Footprint.Cumulative()*3/2 {
		t.Errorf("optimized footprint %d not clearly larger than naive %d",
			opt.Footprint.Cumulative(), naive.Footprint.Cumulative())
	}
	// Live set is the final launch of each service.
	if len(opt.Live) != cfg.Services*cfg.InstancesPerLaunch {
		t.Errorf("optimized live = %d", len(opt.Live))
	}
	// Records: Services × Launches entries, cumulative monotone.
	if len(opt.Records) != cfg.Services*cfg.Launches {
		t.Fatalf("records = %d", len(opt.Records))
	}
	for i := 1; i < len(opt.Records); i++ {
		if opt.Records[i].Cumulative < opt.Records[i-1].Cumulative {
			t.Error("cumulative footprint decreased")
		}
	}
}

func TestOptimizedCoverageBeatsNaive(t *testing.T) {
	dc := smallWorld(t, 3)
	cfg := smallCfg()

	victim := dc.Account("victim")
	attacker := dc.Account("attacker")
	// Distinct placement groups make the naive strategy miss; skip the
	// test premise if the hash happened to collide.
	opt, err := RunOptimized(attacker, cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := victim.DeployService("login", faas.ServiceConfig{}).Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	cov, err := MeasureCoverage(tester, opt.Live, vic, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.AtLeastOne {
		t.Error("optimized strategy co-located with no victim instance")
	}
	if cov.Fraction() < 0.3 {
		t.Errorf("optimized coverage %.2f suspiciously low", cov.Fraction())
	}
	if cov.VictimTotal != 60 {
		t.Errorf("victim total = %d", cov.VictimTotal)
	}
}

func TestCoverageGroundTruthAgreement(t *testing.T) {
	// The covert-verified coverage must agree with simulator ground truth.
	dc := smallWorld(t, 4)
	cfg := smallCfg()
	opt, err := RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("login", faas.ServiceConfig{}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	cov, err := MeasureCoverage(tester, opt.Live, vic, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	attackerHosts := make(map[faas.HostID]bool)
	for _, inst := range opt.Live {
		id, _ := inst.HostID()
		attackerHosts[id] = true
	}
	truth := 0
	for _, inst := range vic {
		id, _ := inst.HostID()
		if attackerHosts[id] {
			truth++
		}
	}
	if cov.VictimCovered != truth {
		t.Errorf("measured coverage %d, ground truth %d", cov.VictimCovered, truth)
	}
}

func TestGen2Coverage(t *testing.T) {
	dc := smallWorld(t, 5)
	cfg := smallCfg()
	opt, err := RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen2)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("login",
		faas.ServiceConfig{Gen: sandbox.Gen2}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	cov, err := MeasureCoverage(tester, opt.Live, vic, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	// Gen2 fingerprints are coarse, but verification must still produce
	// sound coverage: compare with ground truth.
	attackerHosts := make(map[faas.HostID]bool)
	for _, inst := range opt.Live {
		id, _ := inst.HostID()
		attackerHosts[id] = true
	}
	truth := 0
	for _, inst := range vic {
		id, _ := inst.HostID()
		if attackerHosts[id] {
			truth++
		}
	}
	if cov.VictimCovered != truth {
		t.Errorf("gen2 measured %d, truth %d", cov.VictimCovered, truth)
	}
}

func TestFootprintTracker(t *testing.T) {
	dc := smallWorld(t, 6)
	svc := dc.Account("a").DeployService("s", faas.ServiceConfig{})
	insts, err := svc.Launch(100)
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFootprintTracker(DefaultConfig().Precision)
	ap1, err := ft.Record(insts)
	if err != nil {
		t.Fatal(err)
	}
	if ap1 == 0 || ap1 > 100 {
		t.Fatalf("apparent = %d", ap1)
	}
	if ft.Cumulative() != ap1 {
		t.Errorf("cumulative %d != first apparent %d", ft.Cumulative(), ap1)
	}
	// Recording the same instances again adds nothing.
	ap2, err := ft.Record(insts)
	if err != nil {
		t.Fatal(err)
	}
	if ap2 != ap1 || ft.Cumulative() != ap1 {
		t.Errorf("re-record changed footprint: %d %d", ap2, ft.Cumulative())
	}
	if got := len(ft.Fingerprints()); got != ap1 {
		t.Errorf("Fingerprints() = %d entries", got)
	}
}

func TestEstimateScale(t *testing.T) {
	dc := smallWorld(t, 7)
	cfg := smallCfg()
	cfg.Launches = 3
	est, err := EstimateScale(dc, []string{"acct1", "acct2", "acct3"}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.UniqueHosts <= 0 || est.UniqueHosts > dc.TrueHostCount() {
		t.Fatalf("estimate %d vs true %d", est.UniqueHosts, dc.TrueHostCount())
	}
	// Cumulative curve must be monotone and end at the estimate.
	for i := 1; i < len(est.CumulativeByLaunch); i++ {
		if est.CumulativeByLaunch[i] < est.CumulativeByLaunch[i-1] {
			t.Error("cumulative decreased")
		}
	}
	if est.CumulativeByLaunch[len(est.CumulativeByLaunch)-1] != est.UniqueHosts {
		t.Error("estimate != last cumulative")
	}
	// Multiple accounts must explore more than one account's base+helpers:
	// the estimate should reach a sizable share of the fleet.
	if est.UniqueHosts < dc.TrueHostCount()/2 {
		t.Errorf("exploration found only %d of %d hosts", est.UniqueHosts, dc.TrueHostCount())
	}
}

func TestEstimateScaleErrors(t *testing.T) {
	dc := smallWorld(t, 8)
	if _, err := EstimateScale(dc, nil, 2, smallCfg()); err == nil {
		t.Error("no accounts accepted")
	}
	if _, err := EstimateScale(dc, []string{"a"}, 0, smallCfg()); err == nil {
		t.Error("zero services accepted")
	}
}

func TestCoverageString(t *testing.T) {
	c := Coverage{VictimTotal: 10, VictimCovered: 5, SharedHosts: 3}
	if c.Fraction() != 0.5 {
		t.Errorf("fraction = %v", c.Fraction())
	}
	if c.String() == "" {
		t.Error("empty string")
	}
	var zero Coverage
	if zero.Fraction() != 0 {
		t.Error("zero coverage fraction")
	}
}

func TestChapmanEstimator(t *testing.T) {
	// Textbook example: 30 tagged, 40 in the recapture sample, 12 tagged
	// among them → N̂ = 31·41/13 − 1 ≈ 96.8.
	got := chapman(30, 40, 12)
	if got < 96 || got > 98 {
		t.Errorf("chapman(30,40,12) = %v, want ~96.8", got)
	}
}

func TestEstimateScaleChapman(t *testing.T) {
	dc := smallWorld(t, 9)
	cfg := smallCfg()
	est, err := EstimateScale(dc, []string{"a1", "a2", "a3"}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.ChapmanEstimate == 0 {
		t.Fatal("no recapture overlap; Chapman estimate missing")
	}
	// The point estimate must be at least the observed lower bound and at
	// most a modest multiple of the true fleet (it only sees the reachable
	// portion).
	if est.ChapmanEstimate < float64(est.UniqueHosts)*0.95 {
		t.Errorf("Chapman %v below the observed count %d", est.ChapmanEstimate, est.UniqueHosts)
	}
	if est.ChapmanEstimate > float64(dc.TrueHostCount())*1.5 {
		t.Errorf("Chapman %v wildly above the true fleet %d", est.ChapmanEstimate, dc.TrueHostCount())
	}
}
