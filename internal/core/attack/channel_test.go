package attack

import (
	"reflect"
	"strings"
	"testing"

	"eaao/internal/core/covert"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

func TestConfigValidatesChannel(t *testing.T) {
	for _, name := range []string{"", "rng", "llc", "membus", "combined"} {
		cfg := DefaultConfig()
		cfg.Channel = name
		if err := cfg.Validate(); err != nil {
			t.Errorf("channel %q rejected: %v", name, err)
		}
	}
	cfg := DefaultConfig()
	cfg.Channel = "hyperlane"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown channel validated")
	}
	if _, err := NewCampaign(smallWorld(t, 50).Account("a"), cfg, sandbox.Gen1, NaiveStrategy{}); err == nil {
		t.Error("campaign accepted an unknown channel")
	}
}

// runChannelCampaign launches a small campaign on the named channel and
// verifies it against a victim set, returning the final ledger.
func runChannelCampaign(t *testing.T, seed uint64, channel string) CampaignStats {
	t.Helper()
	dc := smallWorld(t, seed)
	cfg := smallCfg()
	cfg.Channel = channel
	c, err := NewCampaign(dc.Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Verify(vic); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

func TestCampaignChannelLedger(t *testing.T) {
	// A single-channel campaign carries exactly one per-channel entry whose
	// counters equal the aggregates, and its ledger renders without a split.
	st := runChannelCampaign(t, 51, "llc")
	if len(st.PerChannel) != 1 {
		t.Fatalf("PerChannel = %+v, want one llc entry", st.PerChannel)
	}
	cc := st.PerChannel[0]
	if cc.Channel != "llc" {
		t.Errorf("channel label = %q", cc.Channel)
	}
	if cc.CTests != st.CTests || cc.CovertTime != st.CovertTime || cc.ReVotes != st.ReVotes {
		t.Errorf("single-channel entry %+v diverges from aggregates %d/%v/%d",
			cc, st.CTests, st.CovertTime, st.ReVotes)
	}
	if strings.Contains(st.String(), "llc:") {
		t.Error("single-channel ledger rendered a per-channel split")
	}

	// The combined campaign splits across all three members, the split sums
	// to the aggregate, and the rendering shows it.
	st = runChannelCampaign(t, 51, "combined")
	if len(st.PerChannel) != 3 {
		t.Fatalf("combined PerChannel = %+v, want three entries", st.PerChannel)
	}
	sumTests, sumTime := 0, st.CovertTime-st.CovertTime
	seen := map[string]bool{}
	for _, cc := range st.PerChannel {
		seen[cc.Channel] = true
		sumTests += cc.CTests
		sumTime += cc.CovertTime
	}
	if !seen["rng"] || !seen["llc"] || !seen["membus"] {
		t.Errorf("channel labels = %v", seen)
	}
	// The combined tester reports each member execution to the sink, so the
	// split partitions the aggregate exactly.
	if sumTests != st.CTests {
		t.Errorf("split CTests %d, aggregate %d", sumTests, st.CTests)
	}
	if st.CTests%3 != 0 {
		t.Errorf("combined CTests %d not a multiple of its three members", st.CTests)
	}
	if sumTime != st.CovertTime {
		t.Errorf("split time %v, aggregate %v", sumTime, st.CovertTime)
	}
	for _, label := range []string{"rng:", "llc:", "membus:"} {
		if !strings.Contains(st.String(), label) {
			t.Errorf("combined ledger missing %q:\n%s", label, st.String())
		}
	}

	// Stats() hands out an independent copy of the split.
	dc := smallWorld(t, 52)
	c, err := NewCampaign(dc.Account("attacker"), smallCfg(), sandbox.Gen1, NaiveStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Verify(vic); err != nil {
		t.Fatal(err)
	}
	snap := c.Stats()
	if len(snap.PerChannel) != 1 || snap.PerChannel[0].Channel != "rng" {
		t.Fatalf("default campaign PerChannel = %+v", snap.PerChannel)
	}
	before := snap.PerChannel[0].CTests
	snap.PerChannel[0].CTests = -1
	if got := c.Stats().PerChannel[0].CTests; got != before {
		t.Error("Stats() shares its PerChannel slice with the ledger")
	}
}

// The default-channel campaign must be byte-identical to one driven by an
// explicitly installed RNG tester — the pre-channel construction path.
func TestCampaignDefaultChannelIdentity(t *testing.T) {
	run := func(install bool) (Coverage, CampaignStats) {
		dc := smallWorld(t, 53)
		c, err := NewCampaign(dc.Account("attacker"), smallCfg(), sandbox.Gen1, OptimizedStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		if install {
			c.SetTester(covert.NewTester(dc.Scheduler(), covert.DefaultConfig()))
		}
		if _, err := c.Launch(); err != nil {
			t.Fatal(err)
		}
		vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(40)
		if err != nil {
			t.Fatal(err)
		}
		cov, _, err := c.Verify(vic)
		if err != nil {
			t.Fatal(err)
		}
		return cov, c.Stats()
	}
	covA, stA := run(false)
	covB, stB := run(true)
	if covA != covB {
		t.Errorf("coverage diverged: %+v vs %+v", covA, covB)
	}
	stA.PerChannel, stB.PerChannel = nil, nil
	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("ledgers diverged:\n  default  %+v\n  explicit %+v", stA, stB)
	}
}

func TestFleetTotalsMergeChannels(t *testing.T) {
	f := FleetStats{
		Strategy: "optimized",
		Shards: []CampaignStats{
			{CTests: 4, PerChannel: []ChannelCost{{Channel: "rng", CTests: 3}, {Channel: "llc", CTests: 1}}},
			{CTests: 5, PerChannel: []ChannelCost{{Channel: "llc", CTests: 2, ReVotes: 1}, {Channel: "membus", CTests: 3}}},
		},
	}
	tot := f.Totals()
	if tot.CTests != 9 {
		t.Errorf("total CTests = %d", tot.CTests)
	}
	want := map[string]int{"rng": 3, "llc": 3, "membus": 3}
	if len(tot.PerChannel) != len(want) {
		t.Fatalf("merged PerChannel = %+v", tot.PerChannel)
	}
	for _, cc := range tot.PerChannel {
		if cc.CTests != want[cc.Channel] {
			t.Errorf("merged %s = %d CTests, want %d", cc.Channel, cc.CTests, want[cc.Channel])
		}
		if cc.Channel == "llc" && cc.ReVotes != 1 {
			t.Errorf("merged llc re-votes = %d", cc.ReVotes)
		}
	}
}
