package attack

import (
	"reflect"
	"testing"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// fleetWorld builds n small distinct-size regions, each its own world, all
// from one seed — the shape FleetCampaign coordinates across.
func fleetWorld(t *testing.T, seed uint64, n int) *faas.Fleet {
	t.Helper()
	sizes := []struct {
		hosts, groups, base, acctPool, svcPool, fresh int
	}{
		{200, 4, 40, 90, 70, 8},
		{80, 2, 30, 40, 30, 3},
		{320, 4, 60, 150, 110, 12},
	}
	var profs []faas.RegionProfile
	for i := 0; i < n; i++ {
		s := sizes[i%len(sizes)]
		p := faas.USEast1Profile()
		p.Name = faas.Region([]string{"r-east", "r-west", "r-central"}[i%3])
		p.NumHosts = s.hosts
		p.PlacementGroups = s.groups
		p.BasePoolSize = s.base
		p.AccountHelperPool = s.acctPool
		p.ServiceHelperSize = s.svcPool
		p.ServiceHelperFresh = s.fresh
		profs = append(profs, p)
	}
	f, err := faas.NewFleet(seed, profs...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetOneShardMatchesLegacyCampaign is the refactor's core identity:
// for every built-in strategy, a one-shard fleet campaign (paced rounds,
// planner-driven stop rule) reproduces the legacy single-region Campaign
// byte for byte — launch records with timestamps, live-instance identities,
// footprint, and the entire stats ledger.
func TestFleetOneShardMatchesLegacyCampaign(t *testing.T) {
	for _, strat := range Strategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			cfg := smallCfg()

			legacyC, err := NewCampaign(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1, strat)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := legacyC.Launch()
			if err != nil {
				t.Fatal(err)
			}

			fleet, err := faas.FleetOf(smallWorld(t, 42))
			if err != nil {
				t.Fatal(err)
			}
			fc, err := NewFleetCampaign(fleet, "attacker", cfg, sandbox.Gen1, strat, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := fc.Launch(); err != nil {
				t.Fatal(err)
			}
			shard := fc.Shard("t")
			if shard == nil {
				t.Fatal("fleet lost its shard campaign")
			}

			assertSameCampaign(t, legacy, shard.Result())
			if got, want := shard.Stats(), legacyC.Stats(); !reflect.DeepEqual(got, want) {
				t.Errorf("stats ledgers diverge:\nfleet:  %+v\nlegacy: %+v", got, want)
			}
		})
	}
}

// TestFleetJobsByteIdentical: the worker bound changes wall-clock only. A
// three-region campaign under every strategy produces identical records and
// ledgers for one worker and for more workers than shards.
func TestFleetJobsByteIdentical(t *testing.T) {
	for _, strat := range Strategies() {
		run := func(jobs int) *FleetCampaign {
			fc, err := NewFleetCampaign(fleetWorld(t, 42, 3), "attacker", smallCfg(), sandbox.Gen1, strat, nil)
			if err != nil {
				t.Fatal(err)
			}
			fc.SetJobs(jobs)
			if err := fc.Launch(); err != nil {
				t.Fatal(err)
			}
			return fc
		}
		seq, par := run(1), run(8)
		if !reflect.DeepEqual(seq.Stats(), par.Stats()) {
			t.Errorf("%s: fleet stats diverge across jobs:\njobs=1: %+v\njobs=8: %+v",
				strat.Name(), seq.Stats(), par.Stats())
		}
		for i, sc := range seq.Shards() {
			pc := par.Shards()[i]
			assertSameCampaign(t, sc.Result(), pc.Result())
		}
	}
}

// TestCrossRegionPlannerDrainsZeroYield: a shard whose rounds stop growing
// the footprint loses all further budget, and the freed rounds flow to the
// shards still yielding (which may then exceed their even share).
func TestCrossRegionPlannerDrainsZeroYield(t *testing.T) {
	p := CrossRegionPlanner{}
	launches := 4
	status := []ShardStatus{
		{Region: "grow", Rounds: 1, Before: 0, Grown: 50, Cumulative: 50, FirstRound: 50},
		{Region: "dry", Rounds: 1, Before: 0, Grown: 40, Cumulative: 40, FirstRound: 40},
	}
	budget := len(status) * launches
	remaining := budget - len(status)
	rounds := []int{1, 1}
	for remaining > 0 {
		grants := p.Plan(status, remaining)
		any := false
		for i, g := range grants {
			if !g || remaining <= 0 {
				continue
			}
			remaining--
			rounds[i]++
			any = true
			status[i].Rounds = rounds[i]
			status[i].Before = status[i].Cumulative
			if i == 0 {
				status[i].Grown = 30 // keeps yielding
			} else {
				status[i].Grown = 0 // saturated after round 2
			}
			status[i].Cumulative += status[i].Grown
		}
		if !any {
			break
		}
	}
	if rounds[1] != 2 {
		t.Errorf("dry shard ran %d rounds, want 2 (round 1 + the round that revealed saturation)", rounds[1])
	}
	if rounds[0] <= launches {
		t.Errorf("yielding shard ran %d rounds, want > %d (the dry shard's released budget)", rounds[0], launches)
	}
	if got := rounds[0] + rounds[1]; got > budget {
		t.Errorf("planner overspent: %d rounds of %d budget", got, budget)
	}
}

// TestStaticEvenPlanner pins the baseline: every shard gets exactly its even
// share regardless of yield, and a finished shard gets nothing.
func TestStaticEvenPlanner(t *testing.T) {
	p := StaticEvenPlanner{}
	status := []ShardStatus{
		{Region: "a", Rounds: 2, Grown: 100},
		{Region: "b", Rounds: 2, Grown: 0},
		{Region: "c", Rounds: 3, Finished: true},
	}
	// 12-round budget, 7 rounds spent, 5 remaining → targets 4/4/4.
	grants := p.Plan(status, 5)
	if !grants[0] || !grants[1] || grants[2] {
		t.Errorf("static-even grants = %v, want [true true false]", grants)
	}
	// 11 of the 12 rounds now spent: both unfinished shards sit at their
	// even share of 4, so the last round stays unspent.
	status[0].Rounds, status[1].Rounds = 4, 4
	grants = p.Plan(status, 1)
	if grants[0] || grants[1] {
		t.Errorf("shards past their even share still granted: %v", grants)
	}
}

// TestProportionalPlanner: the budget splits by first-round yield with every
// shard keeping at least its first round.
func TestProportionalPlanner(t *testing.T) {
	p := ProportionalPlanner{}
	status := []ShardStatus{
		{Region: "big", Rounds: 1, FirstRound: 60, Grown: 60},
		{Region: "small", Rounds: 1, FirstRound: 20, Grown: 20},
		{Region: "zero", Rounds: 1, FirstRound: 0, Grown: 0},
	}
	// Budget 9: 1 each guaranteed + 6 spare split 60:20:0 → targets 5/3/1...
	// spare×(60/80)=4.5→4 rem .5, spare×(20/80)=1.5→1 rem .5, leftover 1 to
	// the lower index. Targets: 6/2/1.
	budget := 9
	rounds := []int{1, 1, 1}
	remaining := budget - 3
	for remaining > 0 {
		grants := p.Plan(status, remaining)
		any := false
		for i, g := range grants {
			if g && remaining > 0 {
				remaining--
				rounds[i]++
				status[i].Rounds = rounds[i]
				any = true
			}
		}
		if !any {
			break
		}
	}
	if want := []int{6, 2, 1}; !reflect.DeepEqual(rounds, want) {
		t.Errorf("proportional rounds = %v, want %v", rounds, want)
	}
}

// TestFleetAdaptiveDrainsSaturatedRegion runs the drain end to end: in a
// two-region fleet where the small region saturates immediately, the
// adaptive planner cuts it off after the round that revealed saturation
// while static-even keeps paying for all of its rounds — so adaptive
// finishes strictly cheaper at an equal-or-better footprint-per-dollar.
func TestFleetAdaptiveDrainsSaturatedRegion(t *testing.T) {
	cfg := smallCfg()
	cfg.Launches = 6
	run := func(planner Planner) FleetStats {
		fc, err := NewFleetCampaign(fleetWorld(t, 42, 2), "attacker", cfg, sandbox.Gen1, OptimizedStrategy{}, planner)
		if err != nil {
			t.Fatal(err)
		}
		fc.SetJobs(1)
		if err := fc.Launch(); err != nil {
			t.Fatal(err)
		}
		return fc.Stats()
	}
	// At this scale the small region's round-4 marginal yield (~17%) falls
	// under a 20% floor while the large region (~27%) stays funded one more
	// round — the asymmetry the planner exists to exploit.
	static := run(StaticEvenPlanner{})
	adaptive := run(CrossRegionPlanner{MinYield: 0.2})

	if static.RoundsUsed != static.Budget {
		t.Errorf("static-even used %d of %d rounds, want the whole budget", static.RoundsUsed, static.Budget)
	}
	if adaptive.RoundsUsed >= static.RoundsUsed {
		t.Errorf("adaptive used %d rounds, static %d — no budget was reclaimed", adaptive.RoundsUsed, static.RoundsUsed)
	}
	small := adaptive.Shards[1]
	if got, max := small.Waves/cfg.Services, cfg.Launches; got >= max {
		t.Errorf("saturated region ran %d rounds, want fewer than %d", got, max)
	}
	if au, su := adaptive.Totals().USD, static.Totals().USD; au >= su {
		t.Errorf("adaptive cost $%.2f, static $%.2f — draining saved nothing", au, su)
	}
}

func TestFleetCampaignMisuse(t *testing.T) {
	fleet := fleetWorld(t, 7, 2)
	if _, err := NewFleetCampaign(nil, "a", smallCfg(), sandbox.Gen1, OptimizedStrategy{}, nil); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := NewFleetCampaign(fleet, "a", smallCfg(), sandbox.Gen1, nil, nil); err == nil {
		t.Error("nil strategy accepted")
	}
	bad := smallCfg()
	bad.Services = 0
	if _, err := NewFleetCampaign(fleet, "a", bad, sandbox.Gen1, OptimizedStrategy{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	fc, err := NewFleetCampaign(fleet, "a", smallCfg(), sandbox.Gen1, OptimizedStrategy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Verify(nil); err == nil {
		t.Error("Verify before Launch accepted")
	}
	if err := fc.Launch(); err != nil {
		t.Fatal(err)
	}
	if err := fc.Launch(); err == nil {
		t.Error("double Launch accepted")
	}
}

func TestPlannerByName(t *testing.T) {
	for _, p := range Planners() {
		got, err := PlannerByName(p.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != p.Name() {
			t.Errorf("PlannerByName(%q).Name() = %q", p.Name(), got.Name())
		}
	}
	if _, err := PlannerByName("nope"); err == nil {
		t.Error("unknown planner resolved")
	}
}
