package attack

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// faultySmallWorld is smallWorld with a fault plan installed on the region.
func faultySmallWorld(t *testing.T, seed uint64, plan faas.FaultPlan) *faas.DataCenter {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 200
	p.PlacementGroups = 4
	p.BasePoolSize = 40
	p.AccountHelperPool = 90
	p.ServiceHelperSize = 70
	p.ServiceHelperFresh = 8
	p.Faults = plan
	return faas.MustPlatform(seed, p).MustRegion("t")
}

// A campaign with a retry budget survives a heavily fault-injected launch
// plane; the same campaign without one dies on the first rejected wave. The
// recovery is fully metered: retry count, backoff wall-clock, and held-
// footprint dollars all land in the fault ledger (and its String section).
func TestCampaignRetriesLaunchFaults(t *testing.T) {
	plan := faas.FaultPlan{LaunchFailureRate: 0.5}
	cfg := smallCfg()
	cfg.LaunchRetries = 8
	cfg.RetryBackoff = 30 * time.Second

	c, err := NewCampaign(faultySmallWorld(t, 12, plan).Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Launch()
	if err != nil {
		t.Fatalf("hardened campaign died: %v", err)
	}
	if len(res.Live) != cfg.Services*cfg.InstancesPerLaunch {
		t.Errorf("live footprint %d, want %d", len(res.Live), cfg.Services*cfg.InstancesPerLaunch)
	}
	st := c.Stats()
	if st.LaunchRetries == 0 {
		t.Fatal("rate-0.5 launch plane triggered no retries")
	}
	if st.RetryBackoffWall == 0 {
		t.Error("retries recorded but no backoff wall-clock")
	}
	if st.FaultUSD <= 0 {
		t.Error("backoff held a resident footprint but attributed no cost")
	}
	if !st.FaultRecovery() {
		t.Error("FaultRecovery false despite retries")
	}
	if !strings.Contains(st.String(), "faults:") {
		t.Error("ledger string omits the fault section")
	}
	// Only successful waves count as launched instances: every wave appears
	// exactly once no matter how many times it was re-issued.
	if st.InstancesLaunched != st.Waves*cfg.InstancesPerLaunch {
		t.Errorf("instances %d != %d waves x %d", st.InstancesLaunched, st.Waves, cfg.InstancesPerLaunch)
	}
}

func TestUnhardenedCampaignDiesOnLaunchFault(t *testing.T) {
	plan := faas.FaultPlan{LaunchFailureRate: 0.5}
	c, err := NewCampaign(faultySmallWorld(t, 12, plan).Account("attacker"), smallCfg(), sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); !errors.Is(err, faas.ErrLaunchFault) {
		t.Fatalf("unhardened launch error = %v, want ErrLaunchFault", err)
	}
}

// A probe-retry budget carries Verify through transient probe faults —
// retried where possible, skipped (and counted) where the budget runs out —
// while the budget-free campaign fails outright.
func TestVerifyProbeRetryBudget(t *testing.T) {
	plan := faas.FaultPlan{ProbeFailureRate: 0.2}
	run := func(budget int) (CampaignStats, error) {
		dc := faultySmallWorld(t, 19, plan)
		vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(40)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallCfg()
		cfg.ProbeRetryBudget = budget
		c, err := NewCampaign(dc.Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		// The launch stage fingerprints every wave, so an unbudgeted campaign
		// can die right here — that is the failure under test, not a setup
		// error.
		if _, err := c.Launch(); err != nil {
			return CampaignStats{}, err
		}
		if _, _, err := c.Verify(vic); err != nil {
			return CampaignStats{}, err
		}
		return c.Stats(), nil
	}

	if _, err := run(0); !errors.Is(err, sandbox.ErrProbeFault) {
		t.Fatalf("budget-0 campaign error = %v, want ErrProbeFault", err)
	}
	st, err := run(3)
	if err != nil {
		t.Fatalf("budget-3 verify died: %v", err)
	}
	if st.ProbeRetries == 0 {
		t.Error("rate-0.2 probe plane triggered no retries")
	}
	if st.VictimInstances == 0 {
		t.Error("verify scored no victims")
	}
}

// Hardening knobs engaged on a fault-free platform must not change a
// campaign's operation sequence: twin worlds, one campaign with every budget
// set and one without, produce identical results and identical bills.
func TestHardeningIsFreeWithoutFaults(t *testing.T) {
	run := func(hardened bool) (*CampaignResult, faas.Bill) {
		dc := smallWorld(t, 23)
		cfg := smallCfg()
		if hardened {
			cfg.LaunchRetries = 8
			cfg.RetryBackoff = 30 * time.Second
			cfg.ProbeRetryBudget = 3
		}
		acct := dc.Account("attacker")
		c, err := NewCampaign(acct, cfg, sandbox.Gen1, OptimizedStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Launch()
		if err != nil {
			t.Fatal(err)
		}
		if c.Stats().FaultRecovery() {
			t.Fatal("fault ledger nonzero on a clean platform")
		}
		return res, acct.Bill()
	}
	plain, plainBill := run(false)
	hard, hardBill := run(true)
	assertSameCampaign(t, plain, hard)
	if plainBill != hardBill {
		t.Errorf("bills diverge:\n  plain    %+v\n  hardened %+v", plainBill, hardBill)
	}
}
