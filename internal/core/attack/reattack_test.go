package attack

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

func TestTargetBookFocusReducesEffort(t *testing.T) {
	dc := smallWorld(t, 30)
	cfg := smallCfg()

	// First attack: campaign, coverage, record hosts shared with the victim.
	camp, err := RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("login", faas.ServiceConfig{}).Launch(50)
	if err != nil {
		t.Fatal(err)
	}

	// Identify co-located attacker instances via ground truth (the covert
	// verification path is exercised by the coverage tests; here we focus
	// on the book's mechanics).
	vicHosts := make(map[faas.HostID]bool)
	for _, inst := range vic {
		id, _ := inst.HostID()
		vicHosts[id] = true
	}
	var colocated []*faas.Instance
	for _, inst := range camp.Live {
		if id, _ := inst.HostID(); vicHosts[id] {
			colocated = append(colocated, inst)
		}
	}
	if len(colocated) == 0 {
		t.Fatal("no co-location in this world; cannot test re-attack")
	}

	book := NewTargetBook(cfg.Precision)
	if err := book.RecordVictimHosts(colocated); err != nil {
		t.Fatal(err)
	}
	if book.Size() == 0 {
		t.Fatal("book recorded nothing")
	}

	// Re-attack the next day: the focused instance set must (a) be a small
	// fraction of the full footprint and (b) still cover the victim's base
	// hosts that persist.
	dc.Scheduler().Advance(24 * time.Hour)
	camp2, err := RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	focused, effort, err := book.Focus(camp2.Live)
	if err != nil {
		t.Fatal(err)
	}
	if effort <= 0 || effort >= 0.5 {
		t.Errorf("focus effort = %.3f, want a small but nonzero fraction", effort)
	}
	// Every focused instance must really sit on a recorded victim host.
	misses := 0
	for _, inst := range focused {
		if id, _ := inst.HostID(); !vicHosts[id] {
			misses++
		}
	}
	if frac := float64(misses) / float64(len(focused)); frac > 0.2 {
		t.Errorf("%.0f%% of focused instances are on non-victim hosts", frac*100)
	}
}

func TestTargetBookDriftTolerantMatch(t *testing.T) {
	book := NewTargetBook(time.Second)
	fp := fingerprint.Gen1{Model: "M", BootBucket: 1000, PrecisionNs: int64(time.Second)}
	book.hosts[fp] = true

	adj := fp
	adj.BootBucket = 1001
	if !book.Matches(adj) {
		t.Error("adjacent bucket (drift across one boundary) did not match")
	}
	far := fp
	far.BootBucket = 1002
	if book.Matches(far) {
		t.Error("two-bucket drift matched; too permissive")
	}
	other := fp
	other.Model = "other"
	if book.Matches(other) {
		t.Error("different CPU model matched")
	}
}

func TestTargetBookEmptyFocus(t *testing.T) {
	dc := smallWorld(t, 31)
	insts, err := dc.Account("a").DeployService("s", faas.ServiceConfig{}).Launch(20)
	if err != nil {
		t.Fatal(err)
	}
	book := NewTargetBook(time.Second)
	focused, effort, err := book.Focus(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(focused) != 0 || effort != 0 {
		t.Errorf("empty book focused %d instances (effort %v)", len(focused), effort)
	}
	// Fully terminated attacker set.
	dc.Account("a").DeployService("s", faas.ServiceConfig{}).TerminateAll()
	if _, effort, err := book.Focus(insts); err != nil || effort != 0 {
		t.Errorf("terminated set: effort=%v err=%v", effort, err)
	}
}

// The focused set must still suffice for extraction-grade coverage of
// recurring victims: re-verify co-location of focused instances only.
func TestFocusedSetStillCoversVictim(t *testing.T) {
	dc := smallWorld(t, 32)
	cfg := smallCfg()
	camp, err := RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := dc.Account("victim").DeployService("login", faas.ServiceConfig{}).Launch(50)
	if err != nil {
		t.Fatal(err)
	}
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	cov, err := MeasureCoverage(tester, camp.Live, vic, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.AtLeastOne {
		t.Skip("no co-location in this world")
	}
	vicHosts := make(map[faas.HostID]bool)
	for _, inst := range vic {
		id, _ := inst.HostID()
		vicHosts[id] = true
	}
	var colocated []*faas.Instance
	for _, inst := range camp.Live {
		if id, _ := inst.HostID(); vicHosts[id] {
			colocated = append(colocated, inst)
		}
	}
	book := NewTargetBook(cfg.Precision)
	if err := book.RecordVictimHosts(colocated); err != nil {
		t.Fatal(err)
	}
	// Victim relaunches (same base hosts); focused attacker instances alone
	// must still reach most of the victim.
	vic2 := dc.Account("victim").DeployService("login", faas.ServiceConfig{}).ActiveInstances()
	focused, _, err := book.Focus(camp.Live)
	if err != nil {
		t.Fatal(err)
	}
	cov2, err := MeasureCoverage(tester, focused, vic2, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	if float64(cov2.VictimCovered) < float64(cov.VictimCovered)*0.8 {
		t.Errorf("focused set covers %d victims, full set covered %d",
			cov2.VictimCovered, cov.VictimCovered)
	}
}

func TestTargetBookSaveLoad(t *testing.T) {
	book := NewTargetBook(time.Second)
	fps := []fingerprint.Gen1{
		{Model: "Intel(R) Xeon(R) CPU @ 2.00GHz", BootBucket: 1000, PrecisionNs: int64(time.Second)},
		{Model: "AMD EPYC 7B12 @ 2.25GHz", BootBucket: -5, PrecisionNs: int64(time.Second)},
	}
	for _, fp := range fps {
		book.hosts[fp] = true
	}
	var buf bytes.Buffer
	if err := book.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTargetBook(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 2 {
		t.Fatalf("loaded %d entries", loaded.Size())
	}
	for _, fp := range fps {
		if !loaded.Matches(fp) {
			t.Errorf("loaded book does not match %v", fp)
		}
	}
	if loaded.precision != time.Second {
		t.Errorf("precision = %v", loaded.precision)
	}
}

func TestLoadTargetBookErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "not a header\n",
		"bad line":        "# eaao target book, precision 1000000000 ns\ngarbage\n",
		"mixed precision": "# eaao target book, precision 1000000000 ns\ngen1|500|7|M\n",
	}
	for name, in := range cases {
		if _, err := LoadTargetBook(strings.NewReader(in)); err == nil {
			t.Errorf("%s: loaded", name)
		}
	}
}

func TestTargetBookSaveDeterministic(t *testing.T) {
	book := NewTargetBook(time.Second)
	for i := int64(0); i < 20; i++ {
		book.hosts[fingerprint.Gen1{Model: "M", BootBucket: i, PrecisionNs: int64(time.Second)}] = true
	}
	var a, b bytes.Buffer
	if err := book.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := book.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output not deterministic")
	}
}

func TestTargetBookPrune(t *testing.T) {
	book := NewTargetBook(time.Second)
	mk := func(model string, bucket int64) fingerprint.Gen1 {
		return fingerprint.Gen1{Model: model, BootBucket: bucket, PrecisionNs: int64(time.Second)}
	}
	exact := mk("M", 1000)   // present in the current footprint
	drifted := mk("M", 2000) // footprint saw the adjacent bucket 2001
	stale := mk("M", 3000)   // nowhere near the current footprint
	wrongModel := mk("gone", 1000)
	for _, fp := range []fingerprint.Gen1{exact, drifted, stale, wrongModel} {
		book.hosts[fp] = true
	}

	current := NewFootprintTracker(time.Second)
	current.seen[exact] = true
	current.seen[mk("M", 2001)] = true

	if pruned := book.Prune(current); pruned != 2 {
		t.Errorf("pruned %d entries, want 2 (stale bucket + retired model)", pruned)
	}
	if book.Size() != 2 {
		t.Fatalf("book size = %d after prune, want 2", book.Size())
	}
	if !book.Matches(exact) || !book.Matches(drifted) {
		t.Error("prune dropped entries the footprint still corroborates")
	}
	if book.Matches(stale) || book.Matches(wrongModel) {
		t.Error("stale entries survived the prune")
	}
	// Pruning against an empty footprint empties the book.
	if pruned := book.Prune(NewFootprintTracker(time.Second)); pruned != 2 {
		t.Errorf("second prune removed %d, want 2", pruned)
	}
	if book.Size() != 0 {
		t.Errorf("book size = %d after pruning against nothing", book.Size())
	}
}
