package attack

import (
	"fmt"

	"eaao/internal/faas"
	"eaao/internal/randx"
	"eaao/internal/sandbox"
)

// FleetCampaign runs one coordinated attack across every region of a
// faas.Fleet: one Campaign shard per region world, stepped in lockstep
// rounds, with a Planner reallocating the fleet's launch-round budget
// across shards at every round barrier. Shards execute on a bounded worker
// pool (SetJobs) — each shard's world is stepped only by its own goroutine,
// so the simulator stays single-threaded per world — and all coordination
// is synchronous and index-ordered, which makes the outcome byte-identical
// for any worker count.
//
// The built-in strategies map onto the sharded pipeline exactly:
// OptimizedStrategy and AdaptiveStrategy become paced round loops whose
// continue/stop decision moves from the strategy into the planner (the
// default planner for each reproduces the strategy's own rule, so a
// one-shard fleet is byte-identical to the legacy single-region campaign);
// NaiveStrategy and custom strategies run unpaced to completion, one shard
// per region, with no budget coordination.
type FleetCampaign struct {
	fleet    *faas.Fleet
	account  string
	cfg      Config
	gen      sandbox.Gen
	strategy LaunchStrategy
	planner  Planner
	jobs     int

	shards   []*fleetShard
	launched bool
	budget   int
	rounds   int
}

// shardReport is what a paced shard tells the coordinator after each round.
type shardReport struct {
	round      int
	before     int
	cumulative int
}

// fleetShard is one region's campaign plus its coordination endpoints.
type fleetShard struct {
	index  int
	dc     *faas.DataCenter
	camp   *Campaign
	status ShardStatus

	// reports carries one shardReport per completed round and is closed
	// when the shard's Launch returns; grants answers each report; done
	// carries Launch's error after reports closes. All are buffered so a
	// shard never blocks on the coordinator mid-round.
	reports chan shardReport
	grants  chan bool
	done    chan error
	err     error
	cov     Coverage
}

// NewFleetCampaign binds a strategy, an account identity (instantiated per
// region), and a budget planner to a fleet. A nil planner selects the
// strategy's native rule: StaticEvenPlanner for OptimizedStrategy,
// CrossRegionPlanner (with the strategy's MinYield) for AdaptiveStrategy.
// NaiveStrategy and custom strategies pace themselves; the planner is not
// consulted for them.
func NewFleetCampaign(fleet *faas.Fleet, account string, cfg Config, gen sandbox.Gen,
	strategy LaunchStrategy, planner Planner) (*FleetCampaign, error) {
	if fleet == nil || fleet.Size() == 0 {
		return nil, fmt.Errorf("attack: fleet campaign needs a fleet")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("attack: fleet campaign needs a strategy")
	}
	if planner == nil {
		planner = plannerFor(strategy)
	}
	return &FleetCampaign{
		fleet:    fleet,
		account:  account,
		cfg:      cfg,
		gen:      gen,
		strategy: strategy,
		planner:  planner,
	}, nil
}

// plannerFor returns the planner that reproduces a built-in strategy's own
// continue/stop rule, so that strategy semantics are preserved when the
// caller does not pick a planner explicitly.
func plannerFor(strategy LaunchStrategy) Planner {
	if s, ok := strategy.(AdaptiveStrategy); ok {
		return CrossRegionPlanner{MinYield: s.MinYield}
	}
	return StaticEvenPlanner{}
}

// pacedPrefix maps a built-in round-looping strategy to its service-name
// prefix; ok is false for strategies that run unpaced (naive, custom).
func pacedPrefix(strategy LaunchStrategy) (prefix string, ok bool) {
	switch strategy.(type) {
	case OptimizedStrategy:
		return "opt", true
	case AdaptiveStrategy:
		return "adaptive", true
	}
	return "", false
}

// SetJobs bounds how many shards may step their worlds concurrently; 0 (the
// default) lets every shard run at once. The bound never changes the
// outcome, only wall-clock: coordination is index-ordered either way.
func (fc *FleetCampaign) SetJobs(n int) { fc.jobs = n }

// Planner returns the campaign's budget planner.
func (fc *FleetCampaign) Planner() Planner { return fc.planner }

// Budget returns the fleet's total launch-round budget (regions × Launches)
// and RoundsUsed how many rounds were actually granted; both are zero until
// Launch and RoundsUsed stays zero for unpaced strategies.
func (fc *FleetCampaign) Budget() int { return fc.budget }

// RoundsUsed returns how many launch rounds ran across all shards.
func (fc *FleetCampaign) RoundsUsed() int { return fc.rounds }

// Shard returns the per-region campaign for one fleet region, or nil before
// Launch / for an unknown region. The shard campaign owns its region's
// footprint, ledger, and covert tester exactly as a single-region Campaign
// does.
func (fc *FleetCampaign) Shard(r faas.Region) *Campaign {
	for _, sh := range fc.shards {
		if sh.dc.Region() == r {
			return sh.camp
		}
	}
	return nil
}

// Shards returns the per-region campaigns in fleet order (empty before
// Launch).
func (fc *FleetCampaign) Shards() []*Campaign {
	out := make([]*Campaign, len(fc.shards))
	for i, sh := range fc.shards {
		out[i] = sh.camp
	}
	return out
}

// Launch runs every shard's launch stage to completion. Paced strategies
// synchronize at a barrier after every round, where the planner decides
// which shards keep launching; unpaced strategies run straight through. It
// can run at most once; the first error of the lowest-indexed failing shard
// is returned, after all shards have shut down cleanly.
func (fc *FleetCampaign) Launch() error {
	if fc.launched {
		return fmt.Errorf("attack: fleet campaign already launched")
	}
	fc.launched = true

	prefix, paced := pacedPrefix(fc.strategy)
	workers := fc.jobs
	if workers <= 0 || workers > fc.fleet.Size() {
		workers = fc.fleet.Size()
	}
	sem := make(chan struct{}, workers)

	for i, dc := range fc.fleet.Shards() {
		sh := &fleetShard{
			index:   i,
			dc:      dc,
			reports: make(chan shardReport, 1),
			grants:  make(chan bool, 1),
			done:    make(chan error, 1),
		}
		sh.status.Region = dc.Region()
		strat := fc.strategy
		if paced {
			strat = &pacedStrategy{name: fc.strategy.Name(), prefix: prefix, sh: sh, sem: sem}
		}
		camp, err := NewCampaign(dc.Account(fc.account), fc.cfg, fc.gen, strat)
		if err != nil {
			return err
		}
		sh.camp = camp
		fc.shards = append(fc.shards, sh)
	}
	if paced {
		fc.budget = fc.fleet.Size() * fc.cfg.Launches
		fc.rounds = fc.fleet.Size() // every shard's first round is implicit
	}

	for _, sh := range fc.shards {
		go func(sh *fleetShard) {
			sem <- struct{}{}
			_, err := sh.camp.Launch()
			<-sem
			close(sh.reports)
			sh.done <- err
		}(sh)
	}

	fc.coordinate()

	for _, sh := range fc.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// coordinate is the planner loop: collect one report per active shard in
// index order, snapshot statuses, ask the planner for grants, answer the
// shards, and drain the ones that stop. Unpaced shards never report, so
// their first "report" is the channel close and the loop degenerates to a
// deterministic join.
func (fc *FleetCampaign) coordinate() {
	remaining := fc.budget - fc.rounds
	active := append([]*fleetShard(nil), fc.shards...)
	for len(active) > 0 {
		reporting := active[:0]
		for _, sh := range active {
			rep, ok := <-sh.reports
			if !ok {
				fc.release(sh)
				continue
			}
			sh.status.Rounds = rep.round
			sh.status.Before = rep.before
			sh.status.Grown = rep.cumulative - rep.before
			sh.status.Cumulative = rep.cumulative
			if rep.round == 1 {
				sh.status.FirstRound = sh.status.Grown
			}
			sh.status.USD = sh.camp.Stats().USD
			reporting = append(reporting, sh)
		}
		if len(reporting) == 0 {
			return
		}
		// A failed shard shuts the whole fleet down: remaining shards are
		// denied at their next barrier so every world stops at a clean
		// round boundary before the error propagates.
		failed := false
		for _, sh := range fc.shards {
			if sh.err != nil {
				failed = true
			}
		}
		var grants []bool
		if !failed {
			statuses := make([]ShardStatus, len(fc.shards))
			for i, sh := range fc.shards {
				statuses[i] = sh.status
			}
			grants = fc.planner.Plan(statuses, remaining)
		}
		var denied []*fleetShard
		next := 0
		for _, sh := range reporting {
			g := !failed && sh.index < len(grants) && grants[sh.index] && remaining > 0
			if g {
				remaining--
				fc.rounds++
			}
			sh.grants <- g
			if g {
				reporting[next] = sh
				next++
			} else {
				denied = append(denied, sh)
			}
		}
		for _, sh := range denied {
			<-sh.reports // closed once the shard's final keep/hold finishes
			fc.release(sh)
		}
		active = reporting[:next]
	}
}

// release joins a finished shard: records its error and marks it done for
// the planner.
func (fc *FleetCampaign) release(sh *fleetShard) {
	sh.err = <-sh.done
	sh.status.Finished = true
	sh.status.USD = sh.camp.Stats().USD
}

// ShardVerification is one region's verify-stage outcome.
type ShardVerification struct {
	// Region names the shard.
	Region faas.Region
	// Coverage is the shard's attacker-vs-victim measurement.
	Coverage Coverage
	// Spies are the shard's verified co-located attacker instances.
	Spies []*faas.Instance
}

// Verify runs every shard's verify stage against that region's victim
// instances (regions absent from the map are skipped, reported with a zero
// coverage). Shards verify concurrently on the same bounded pool as Launch
// and results merge in fleet order, so output is byte-identical for any
// worker count. The error of the lowest-indexed failing shard is returned.
func (fc *FleetCampaign) Verify(victims map[faas.Region][]*faas.Instance) ([]ShardVerification, error) {
	if !fc.launched {
		return nil, fmt.Errorf("attack: fleet Verify before Launch")
	}
	workers := fc.jobs
	if workers <= 0 || workers > len(fc.shards) {
		workers = len(fc.shards)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(fc.shards))
	out := make([]ShardVerification, len(fc.shards))
	spies := make([][]*faas.Instance, len(fc.shards))
	wait := make(chan int, len(fc.shards))
	for i, sh := range fc.shards {
		out[i].Region = sh.dc.Region()
		vic := victims[sh.dc.Region()]
		if len(vic) == 0 {
			wait <- i
			continue
		}
		go func(i int, sh *fleetShard, vic []*faas.Instance) {
			sem <- struct{}{}
			cov, sp, err := sh.camp.Verify(vic)
			<-sem
			sh.cov = cov
			spies[i] = sp
			errs[i] = err
			wait <- i
		}(i, sh, vic)
	}
	for range fc.shards {
		<-wait
	}
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		out[i].Coverage = fc.shards[i].cov
		out[i].Spies = spies[i]
	}
	return out, nil
}

// MergeCoverages folds per-shard coverages into one fleet-wide measurement:
// counts add, AtLeastOne is the disjunction.
func MergeCoverages(covs ...Coverage) Coverage {
	var m Coverage
	for _, c := range covs {
		m.VictimTotal += c.VictimTotal
		m.VictimCovered += c.VictimCovered
		m.AtLeastOne = m.AtLeastOne || c.AtLeastOne
		m.AttackerHosts += c.AttackerHosts
		m.SharedHosts += c.SharedHosts
		m.Tests += c.Tests
		m.Faults.ProbeRetries += c.Faults.ProbeRetries
		m.Faults.AttackersSkipped += c.Faults.AttackersSkipped
		m.Faults.VictimsSkipped += c.Faults.VictimsSkipped
	}
	return m
}

// Stats merges the per-shard ledgers into the fleet ledger.
func (fc *FleetCampaign) Stats() FleetStats {
	fs := FleetStats{
		Planner:    fc.planner.Name(),
		Strategy:   fc.strategy.Name(),
		Budget:     fc.budget,
		RoundsUsed: fc.rounds,
	}
	for _, sh := range fc.shards {
		fs.Shards = append(fs.Shards, sh.camp.Stats())
	}
	return fs
}

// pacedStrategy is the round loop OptimizedStrategy and AdaptiveStrategy
// share, with the continue/stop decision externalized to the fleet
// coordinator: after launching every service once (one round), the shard
// reports its footprint growth and blocks until the planner grants or
// denies the next round. A denied shard keeps its last waves resident and
// holds them active, exactly like the final round of the legacy strategies;
// a granted shard holds, disconnects, and waits out the launch interval.
// The platform-visible operation sequence is identical to the legacy
// strategies for the same grant pattern, which is what the R=1 identity
// tests pin down.
type pacedStrategy struct {
	name   string
	prefix string
	sh     *fleetShard
	sem    chan struct{}
}

// Name implements LaunchStrategy. The paced wrapper answers with the base
// strategy's name so the campaign RNG derivation and the stats ledger are
// indistinguishable from a legacy run.
func (ps *pacedStrategy) Name() string { return ps.name }

// Launch implements LaunchStrategy.
func (ps *pacedStrategy) Launch(sink CampaignSink, acct *faas.Account, cfg Config, rng *randx.Source) error {
	services := make([]*faas.Service, cfg.Services)
	for i, name := range serviceNames(ps.prefix, cfg.Services) {
		services[i] = sink.Deploy(name)
	}
	waves := make([][]*faas.Instance, 0, cfg.Services)
	for round := 1; ; round++ {
		before := sink.Footprint().Cumulative()
		waves = waves[:0]
		for _, svc := range services {
			w, err := sink.LaunchWave(svc, round)
			if err != nil {
				return err
			}
			waves = append(waves, w.Instances)
		}
		if !ps.barrier(round, before, sink.Footprint().Cumulative()) {
			for _, insts := range waves {
				sink.Keep(insts)
			}
			sink.Hold(cfg.HoldActive)
			return nil
		}
		sink.Hold(cfg.HoldActive)
		for _, svc := range services {
			svc.Disconnect()
		}
		if rest := cfg.Interval - cfg.HoldActive; rest > 0 {
			sink.Hold(rest)
		}
	}
}

// barrier reports one completed round and blocks for the planner's verdict.
// The worker slot is released while blocked so other shards can step their
// worlds; both channels are buffered, so neither side can wedge the other
// mid-round.
func (ps *pacedStrategy) barrier(round, before, cumulative int) bool {
	<-ps.sem
	ps.sh.reports <- shardReport{round: round, before: before, cumulative: cumulative}
	cont := <-ps.sh.grants
	ps.sem <- struct{}{}
	return cont
}
