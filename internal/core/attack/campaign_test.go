package attack

import (
	"reflect"
	"strings"
	"testing"

	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// legacyNaive is a frozen copy of the pre-engine RunNaive loop. The engine
// refactor promises byte-identical behavior; this copy pins the old operation
// sequence so the equivalence tests below keep meaning something even as the
// engine evolves.
func legacyNaive(acct *faas.Account, cfg Config, gen sandbox.Gen) (*CampaignResult, error) {
	sched := acct.DataCenter().Scheduler()
	res := &CampaignResult{Footprint: NewFootprintTracker(cfg.Precision)}
	for _, name := range serviceNames("naive", cfg.Services) {
		svc := acct.DeployService(name, faas.ServiceConfig{Gen: gen})
		insts, err := svc.Launch(cfg.InstancesPerLaunch)
		if err != nil {
			return nil, err
		}
		apparent, err := res.Footprint.Record(insts)
		if err != nil {
			return nil, err
		}
		res.Records = append(res.Records, LaunchRecord{
			Service:    name,
			LaunchID:   1,
			At:         sched.Now(),
			Apparent:   apparent,
			Cumulative: res.Footprint.Cumulative(),
		})
		res.Live = append(res.Live, insts...)
	}
	return res, nil
}

// legacyOptimized is the frozen pre-engine RunOptimized loop.
func legacyOptimized(acct *faas.Account, cfg Config, gen sandbox.Gen) (*CampaignResult, error) {
	sched := acct.DataCenter().Scheduler()
	res := &CampaignResult{Footprint: NewFootprintTracker(cfg.Precision)}
	names := serviceNames("opt", cfg.Services)
	services := make([]*faas.Service, len(names))
	for i, name := range names {
		services[i] = acct.DeployService(name, faas.ServiceConfig{Gen: gen})
	}
	for launch := 1; launch <= cfg.Launches; launch++ {
		last := launch == cfg.Launches
		for i, svc := range services {
			insts, err := svc.Launch(cfg.InstancesPerLaunch)
			if err != nil {
				return nil, err
			}
			apparent, err := res.Footprint.Record(insts)
			if err != nil {
				return nil, err
			}
			res.Records = append(res.Records, LaunchRecord{
				Service:    names[i],
				LaunchID:   launch,
				At:         sched.Now(),
				Apparent:   apparent,
				Cumulative: res.Footprint.Cumulative(),
			})
			if last {
				res.Live = append(res.Live, insts...)
			}
		}
		sched.Advance(cfg.HoldActive)
		if !last {
			for _, svc := range services {
				svc.Disconnect()
			}
			rest := cfg.Interval - cfg.HoldActive
			if rest > 0 {
				sched.Advance(rest)
			}
		}
	}
	return res, nil
}

// instanceIDs projects a live set onto stable identifiers for comparison.
func instanceIDs(insts []*faas.Instance) []string {
	out := make([]string, len(insts))
	for i, inst := range insts {
		out[i] = inst.ID()
	}
	return out
}

// assertSameCampaign compares two campaign results field by field: identical
// launch records (timestamps included), identical live-instance identities,
// identical footprints.
func assertSameCampaign(t *testing.T, legacy, engine *CampaignResult) {
	t.Helper()
	if !reflect.DeepEqual(legacy.Records, engine.Records) {
		t.Errorf("launch records diverge:\nlegacy: %+v\nengine: %+v", legacy.Records, engine.Records)
	}
	if got, want := instanceIDs(engine.Live), instanceIDs(legacy.Live); !reflect.DeepEqual(got, want) {
		t.Errorf("live sets diverge: engine %d instances, legacy %d", len(got), len(want))
	}
	if legacy.Footprint.Cumulative() != engine.Footprint.Cumulative() {
		t.Errorf("footprints diverge: legacy %d, engine %d",
			legacy.Footprint.Cumulative(), engine.Footprint.Cumulative())
	}
}

func TestEngineMatchesLegacyNaive(t *testing.T) {
	// Twin worlds from the same seed: one runs the frozen legacy loop, the
	// other drives NaiveStrategy through the engine.
	cfg := smallCfg()
	legacy, err := legacyNaive(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := RunNaive(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, legacy, engine)
}

func TestEngineMatchesLegacyOptimized(t *testing.T) {
	cfg := smallCfg()
	legacy, err := legacyOptimized(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := RunOptimized(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, legacy, engine)
}

func TestAdaptiveStopsWhenYieldSaturates(t *testing.T) {
	// In a world where helper unlocking saturates before the configured
	// launch budget, the adaptive strategy must spend fewer waves than the
	// optimized one while keeping (nearly) the same footprint.
	cfg := smallCfg()
	cfg.Services = 2
	cfg.Launches = 8
	optC, err := NewCampaign(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := optC.Launch(); err != nil {
		t.Fatal(err)
	}
	adC, err := NewCampaign(smallWorld(t, 42).Account("attacker"), cfg, sandbox.Gen1, AdaptiveStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adC.Launch(); err != nil {
		t.Fatal(err)
	}
	opt, ad := optC.Stats(), adC.Stats()
	if ad.Waves >= opt.Waves {
		t.Errorf("adaptive did not stop early: %d waves vs optimized %d", ad.Waves, opt.Waves)
	}
	if ad.USD >= opt.USD {
		t.Errorf("adaptive cost $%.2f not below optimized $%.2f", ad.USD, opt.USD)
	}
	if ad.LiveInstances != cfg.Services*cfg.InstancesPerLaunch {
		t.Errorf("adaptive live = %d", ad.LiveInstances)
	}
	// Stopping must cost at most the yield floor per skipped round.
	if float64(ad.ApparentHosts) < 0.8*float64(opt.ApparentHosts) {
		t.Errorf("adaptive footprint %d lost too much vs optimized %d",
			ad.ApparentHosts, opt.ApparentHosts)
	}
}

func TestAdaptiveYieldFloorConfigurable(t *testing.T) {
	// A near-impossible yield floor (every round must double the footprint)
	// must cut the campaign well short of the configured budget, and always
	// at a round boundary.
	cfg := smallCfg()
	cfg.Launches = 8
	c, err := NewCampaign(smallWorld(t, 43).Account("attacker"), cfg, sandbox.Gen1,
		AdaptiveStrategy{MinYield: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	got := c.Stats().Waves
	if got >= cfg.Launches*cfg.Services {
		t.Errorf("waves = %d, MinYield 1.0 did not stop early", got)
	}
	if got%cfg.Services != 0 {
		t.Errorf("waves = %d, not a whole round of %d services", got, cfg.Services)
	}
}

func TestStrategyByName(t *testing.T) {
	for name, want := range map[string]string{
		"naive": "naive", "optimized": "optimized", "opt": "optimized", "adaptive": "adaptive",
	} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("StrategyByName(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Error("unknown strategy resolved")
	}
	if len(Strategies()) != 3 {
		t.Errorf("Strategies() = %d entries", len(Strategies()))
	}
}

func TestCampaignMisuse(t *testing.T) {
	dc := smallWorld(t, 44)
	bad := smallCfg()
	bad.Services = 0
	if _, err := NewCampaign(dc.Account("a"), bad, sandbox.Gen1, NaiveStrategy{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewCampaign(dc.Account("a"), smallCfg(), sandbox.Gen1, nil); err == nil {
		t.Error("nil strategy accepted")
	}
	c, err := NewCampaign(dc.Account("a"), smallCfg(), sandbox.Gen1, NaiveStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Verify(nil); err == nil {
		t.Error("Verify before Launch accepted")
	}
	if c.Result() != nil {
		t.Error("Result non-nil before Launch")
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err == nil {
		t.Error("second Launch accepted")
	}
}

func TestCampaignLedger(t *testing.T) {
	dc := smallWorld(t, 45)
	cfg := smallCfg()
	c, err := NewCampaign(dc.Account("attacker"), cfg, sandbox.Gen1, OptimizedStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Strategy != "optimized" {
		t.Errorf("strategy = %q", st.Strategy)
	}
	if want := cfg.Services * cfg.Launches; st.Waves != want {
		t.Errorf("waves = %d, want %d", st.Waves, want)
	}
	if want := cfg.Services * cfg.Launches * cfg.InstancesPerLaunch; st.InstancesLaunched != want {
		t.Errorf("instances = %d, want %d", st.InstancesLaunched, want)
	}
	if st.FingerprintSamples != st.InstancesLaunched {
		t.Errorf("samples %d != instances %d", st.FingerprintSamples, st.InstancesLaunched)
	}
	if st.LiveInstances != cfg.Services*cfg.InstancesPerLaunch {
		t.Errorf("live = %d", st.LiveInstances)
	}
	if st.ApparentHosts == 0 || st.VCPUSeconds <= 0 || st.USD <= 0 || st.LaunchWall <= 0 {
		t.Errorf("launch accounting incomplete: %+v", st)
	}
	if st.CTests != 0 || st.Verifications != 0 {
		t.Errorf("verify stage charged before any verification: %+v", st)
	}

	vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	cov, _, err := c.Verify(vic)
	if err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Verifications != 1 {
		t.Errorf("verifications = %d", st.Verifications)
	}
	if st.CTests == 0 || st.CovertTime <= 0 {
		t.Errorf("CTests not metered: %+v", st)
	}
	if st.CovertInstanceTime < st.CovertTime {
		t.Error("per-instance channel time below serialized time")
	}
	if st.VictimInstances != cov.VictimTotal || st.VictimsCovered != cov.VictimCovered {
		t.Errorf("score stage %d/%d, coverage %d/%d",
			st.VictimsCovered, st.VictimInstances, cov.VictimCovered, cov.VictimTotal)
	}
	if got := st.CoverageFraction(); got != cov.Fraction() {
		t.Errorf("CoverageFraction = %v, coverage says %v", got, cov.Fraction())
	}
	for _, stage := range []string{"launch:", "fingerprint:", "verify:", "score:", "optimized"} {
		if !strings.Contains(st.String(), stage) {
			t.Errorf("ledger rendering missing %q:\n%s", stage, st.String())
		}
	}
}

func TestRecordWaveAllocs(t *testing.T) {
	// The per-wave fingerprint path re-records mostly-known hosts; after the
	// first wave seeds the scratch map, steady-state re-recording must not
	// allocate.
	dc := smallWorld(t, 46)
	insts, err := dc.Account("a").DeployService("s", faas.ServiceConfig{}).Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFootprintTracker(DefaultConfig().Precision)
	if _, err := ft.Record(insts); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := ft.Record(insts); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Errorf("steady-state Record allocates %.1f times per wave", avg)
	}
}
