package attack

import (
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/faas"
	"eaao/internal/pricing"
)

// This file is the campaign's noise-hardening engine: the contention-aware
// verification ladder a campaign climbs when background-tenant load
// (faas.TrafficModel) corrupts its covert channels. The quiet-world pipeline
// is untouched — Config.NoiseHardened() false never reaches this code — and
// everything the ladder spends is metered to the CampaignStats noise ledger,
// so the noisesweep experiment can price "surviving the living cloud"
// separately from the attack itself.
//
// The ladder, per Verify call:
//
//  1. Calibrate once: a footprint probe samples each channel's background
//     rate in the live world and re-derives the vote thresholds
//     (covert.CalibratedRunnerFor).
//  2. Measure, watching margin health: a pass where too many CTest verdicts
//     hover near the threshold (TestEvent.MinMargin < MarginFloor) is
//     unhealthy.
//  3. Escalate on unhealthy passes: quarantine persistently noisy footprint
//     instances, then raise the majority-vote budget, then swap to the
//     load-robust fallback channel; accept when the pass is healthy or the
//     ladder is spent.

// lowMarginTrip is the fraction of low-margin tests in one verification pass
// that marks the pass unhealthy and triggers the escalation ladder.
const lowMarginTrip = 0.25

// priorDisagreeTrip is the fraction of the fingerprint-predicted co-located
// victims a pass must covert-confirm to count as healthy. Margins alone miss
// total channel collapse: a dead channel votes every pair decisively
// negative, which looks exactly like decisive separation. Boot-time identity
// is load-immune, so confirming under half of what the fingerprints predict
// means the channel — not the co-location — failed, and the ladder climbs.
const priorDisagreeTrip = 0.5

// quarantineSampleRounds is the solo-round sample size of the noisy-host
// probe: enough to tell a host pinned at the LLC noise cap from a typically
// busy one, small enough to stay a negligible fraction of verification cost.
const quarantineSampleRounds = 24

// verifyHardened is Verify's noise-hardened path: measure, and re-measure up
// the escalation ladder while margins are collapsing. Only the accepted
// (final) pass is folded into the score ledger; the extra passes' wall time
// is attributed to the noise ledger.
func (c *Campaign) verifyHardened(victims []*faas.Instance) (Coverage, []*faas.Instance, error) {
	c.ensureCalibrated()
	var cov Coverage
	var spies []*faas.Instance
	for attempt := 0; ; attempt++ {
		c.passTests, c.passLow = 0, 0
		start := c.sched.Now()
		var err error
		cov, spies, err = c.measure(victims)
		if err != nil {
			return Coverage{}, nil, err
		}
		if attempt > 0 {
			c.noiseAttribute(c.sched.Now().Sub(start))
		}
		if (c.passHealthy() && priorAgrees(cov)) || !c.escalate() {
			break
		}
	}
	c.scorePass(cov)
	return cov, spies, nil
}

// priorAgrees reports whether the pass's covert confirmations kept up with
// the load-immune fingerprint prior (see priorDisagreeTrip).
func priorAgrees(cov Coverage) bool {
	if cov.FingerprintPredicted == 0 {
		return true
	}
	return float64(cov.VictimCovered) >= priorDisagreeTrip*float64(cov.FingerprintPredicted)
}

// passHealthy reports whether the verification pass that just ran cleared
// the margin health bar.
func (c *Campaign) passHealthy() bool {
	if c.cfg.MarginFloor <= 0 || c.passTests == 0 {
		return true
	}
	return float64(c.passLow) <= lowMarginTrip*float64(c.passTests)
}

// escalate climbs one rung of the ladder and reports whether a re-pass is
// worth running. Quarantine runs on passes the margin signal flagged — it
// targets localized noise, a few hosts whose channel disagrees with an
// otherwise-working world, and strikes need consecutive confirmation. A pass
// flagged only by the fingerprint prior is a global channel collapse;
// striking residents there would just delete the footprint the fallback
// channel is about to need. The rungs themselves are vote-budget raises up
// to MaxVoteBudget, then the one-shot fallback-channel swap.
func (c *Campaign) escalate() bool {
	if c.cfg.QuarantineAfter > 0 && !c.passHealthy() {
		c.quarantineNoisy()
	}
	cur := c.Tester().Config().VoteBudget
	next := cur + 2
	if next < 3 {
		next = 3
	}
	if rb, ok := c.tester.(covert.Rebudgeter); ok && next <= c.cfg.MaxVoteBudget {
		c.SetTester(rb.Rebudget(next))
		c.stats.NoiseEscalations++
		return true
	}
	if fb := c.cfg.FallbackChannel; fb != "" && !c.onFallback {
		c.onFallback = true
		c.stats.ChannelFallbacks++
		c.SetTester(c.noiseRunner(fb))
		return true
	}
	return false
}

// ensureCalibrated performs the one-shot live-world calibration of the
// campaign's starting channel. A world too noisy to calibrate (every
// channel's background at separation-killing levels) keeps the quiet-world
// constants — the ladder above still gets its chance.
func (c *Campaign) ensureCalibrated() {
	if c.calibrated {
		return
	}
	c.calibrated = true
	if c.cfg.CalibrationRounds <= 0 || len(c.res.Live) == 0 {
		return
	}
	if r, wall, ok := c.tryCalibrate(c.cfg.Channel); ok {
		c.SetTester(r)
		c.stats.Calibrations++
		c.noiseHold(wall)
	}
}

// noiseRunner builds the runner for a ladder channel swap: calibrated
// against the live world when calibration is configured and possible,
// otherwise the channel's stock configuration.
func (c *Campaign) noiseRunner(name string) covert.Runner {
	if c.cfg.CalibrationRounds > 0 && len(c.res.Live) > 0 {
		if r, wall, ok := c.tryCalibrate(name); ok {
			c.stats.Calibrations++
			c.noiseHold(wall)
			return r
		}
	}
	r, err := covert.RunnerFor(name, c.sched, c.cfg.VoteBudget)
	if err != nil {
		// The name was validated at NewCampaign; reaching this is a
		// programming error.
		panic(err)
	}
	return r
}

// tryCalibrate runs covert.CalibratedRunnerFor on the campaign's probe (the
// first live footprint instance) and returns the runner plus the virtual
// wall the sampling is worth — sampleRounds at the channel's per-round pace.
func (c *Campaign) tryCalibrate(name string) (covert.Runner, time.Duration, bool) {
	probe := c.res.Live[0]
	r, err := covert.CalibratedRunnerFor(name, c.sched, probe, c.cfg.CalibrationRounds, c.cfg.VoteBudget)
	if err != nil {
		return nil, 0, false
	}
	cfg := r.Config()
	wall := time.Duration(float64(cfg.TestDuration) * float64(c.cfg.CalibrationRounds) / float64(cfg.Rounds))
	return r, wall, true
}

// quarantineNoisy solo-samples every live footprint instance through the
// current channel and strikes the ones whose background (another tenant
// pressuring every round) or dead-read (the channel dropping the instance's
// own unit) rate clears NoisyHostBar. QuarantineAfter consecutive strikes
// exclude the instance from verification: its host's channel is unreliable
// enough that its verdicts are spending budget to produce noise.
func (c *Campaign) quarantineNoisy() {
	cg, ok := c.tester.(interface{ Channel() covert.Channel })
	if !ok {
		return
	}
	ch := cg.Channel()
	if ch == nil {
		return
	}
	if c.strikes == nil {
		c.strikes = make(map[*faas.Instance]int)
		c.quarantined = make(map[*faas.Instance]bool)
	}
	single := make([]*faas.Instance, 1)
	var obs []int
	bar := c.cfg.NoisyHostBar * quarantineSampleRounds
	for _, inst := range c.res.Live {
		if c.quarantined[inst] {
			continue
		}
		noisy, dead := 0, 0
		sampled := true
		for r := 0; r < quarantineSampleRounds; r++ {
			single[0] = inst
			var err error
			obs, err = ch.Round(single, obs)
			if err != nil {
				sampled = false
				break
			}
			switch {
			case obs[0] >= 2:
				noisy++
			case obs[0] == 0:
				dead++
			}
		}
		if !sampled {
			continue
		}
		if float64(noisy) >= bar || float64(dead) >= bar {
			c.strikes[inst]++
			if c.strikes[inst] >= c.cfg.QuarantineAfter {
				c.quarantined[inst] = true
				c.stats.Quarantined++
			}
		} else {
			delete(c.strikes, inst)
		}
	}
}

// liveForVerify returns the live footprint minus quarantined instances. With
// nothing quarantined it returns the result slice untouched — the
// quiet-world path never pays a copy.
func (c *Campaign) liveForVerify() []*faas.Instance {
	if len(c.quarantined) == 0 {
		return c.res.Live
	}
	out := make([]*faas.Instance, 0, len(c.res.Live))
	for _, inst := range c.res.Live {
		if !c.quarantined[inst] {
			out = append(out, inst)
		}
	}
	return out
}

// noiseHold advances the clock for noise-hardening activity that takes wall
// time of its own (calibration sampling, congestion backoff) and attributes
// the resident footprint's holding cost to the noise ledger.
func (c *Campaign) noiseHold(wait time.Duration) {
	if wait <= 0 {
		return
	}
	v, g := c.residentUsage(wait)
	c.sched.Advance(wait)
	c.stats.NoiseWall += wait
	c.stats.NoiseVCPUSeconds += v
	c.stats.NoiseGBSeconds += g
	c.stats.NoiseUSD += pricing.CloudRunRates().Cost(v, g)
}

// noiseAttribute prices wall time that already elapsed on the clock (an
// escalated re-verification pass) without advancing it again. Same
// convention as the fault ledger: the dollars flow through the ordinary bill
// via lazy accrual, this singles out the share a quiet world would not have
// paid.
func (c *Campaign) noiseAttribute(wall time.Duration) {
	if wall <= 0 {
		return
	}
	v, g := c.residentUsage(wall)
	c.stats.NoiseWall += wall
	c.stats.NoiseVCPUSeconds += v
	c.stats.NoiseGBSeconds += g
	c.stats.NoiseUSD += pricing.CloudRunRates().Cost(v, g)
}
