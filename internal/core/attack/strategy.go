package attack

import (
	"fmt"
	"time"

	"eaao/internal/faas"
	"eaao/internal/randx"
	"eaao/internal/sandbox"
)

// Wave is one launch of one service as seen by a strategy: the instances it
// produced and the footprint bookkeeping the engine derived from them.
type Wave struct {
	// Service is the launched service's name.
	Service string
	// LaunchID is the 1-based launch counter within the service.
	LaunchID int
	// Instances are the connected instances this launch produced.
	Instances []*faas.Instance
	// Apparent is the number of apparent hosts in this wave alone.
	Apparent int
	// Cumulative is the campaign-wide apparent-host count after this wave.
	Cumulative int
}

// CampaignSink is the engine-side surface a LaunchStrategy drives its launch
// stage through. Every platform interaction a strategy needs flows through
// the sink (or the *faas.Service handles it hands out), which is how the
// engine keeps the launch records, footprint tracker, and stats ledger
// consistent no matter which strategy runs.
type CampaignSink interface {
	// Deploy creates (or re-uses) an attacker service under the campaign's
	// account and sandbox generation.
	Deploy(name string) *faas.Service
	// LaunchWave scales the service to the campaign's per-launch instance
	// count, fingerprints the batch into the campaign footprint, and appends
	// a LaunchRecord.
	LaunchWave(svc *faas.Service, launchID int) (Wave, error)
	// Keep marks instances as part of the campaign's resident footprint
	// (CampaignResult.Live). Keeping is separate from launching so a
	// strategy can decide what to retain after observing a wave's yield.
	Keep(insts []*faas.Instance)
	// Hold advances virtual time while launched instances stay connected —
	// the active time the attacker pays for.
	Hold(d time.Duration)
	// Footprint exposes the campaign's cumulative apparent-host tracker
	// (fingerprint-derived; no ground truth).
	Footprint() *FootprintTracker
}

// LaunchStrategy is a pluggable §5.2 launching behavior. A strategy receives
// the attacker account, the campaign configuration, and an RNG derived from
// the world seed and the strategy's identity (so randomized strategies stay
// deterministic per seed), and emits launch waves through the sink. The
// built-in NaiveStrategy and OptimizedStrategy never draw from the RNG,
// which keeps them byte-identical to the historical RunNaive/RunOptimized.
type LaunchStrategy interface {
	// Name is the strategy's stable identity ("naive", "optimized", ...)
	// used by the CLI -strategy flag and the stats ledger.
	Name() string
	// Launch drives the campaign's launch stage.
	Launch(sink CampaignSink, acct *faas.Account, cfg Config, rng *randx.Source) error
}

// NaiveStrategy is Strategy 1: each service is launched once from a cold
// state and kept connected. The instances land on the account's base hosts
// only, so co-location succeeds only when base pools accidentally overlap.
type NaiveStrategy struct{}

// Name implements LaunchStrategy.
func (NaiveStrategy) Name() string { return "naive" }

// Launch implements LaunchStrategy.
func (NaiveStrategy) Launch(sink CampaignSink, acct *faas.Account, cfg Config, rng *randx.Source) error {
	for _, name := range serviceNames("naive", cfg.Services) {
		svc := sink.Deploy(name)
		w, err := sink.LaunchWave(svc, 1)
		if err != nil {
			return err
		}
		sink.Keep(w.Instances)
	}
	return nil
}

// OptimizedStrategy is Strategy 2: every service is launched Launches times
// at Interval spacing; after each launch the instances are held active for
// HoldActive (for measurement) and disconnected — except after the final
// launch, whose instances stay connected as the attack's resident footprint.
// The repeated launches keep each service in a high-demand state, so the
// load balancer spills replacement instances onto helper hosts.
type OptimizedStrategy struct{}

// Name implements LaunchStrategy.
func (OptimizedStrategy) Name() string { return "optimized" }

// Launch implements LaunchStrategy.
func (OptimizedStrategy) Launch(sink CampaignSink, acct *faas.Account, cfg Config, rng *randx.Source) error {
	services := make([]*faas.Service, cfg.Services)
	for i, name := range serviceNames("opt", cfg.Services) {
		services[i] = sink.Deploy(name)
	}
	for launch := 1; launch <= cfg.Launches; launch++ {
		last := launch == cfg.Launches
		for _, svc := range services {
			w, err := sink.LaunchWave(svc, launch)
			if err != nil {
				return err
			}
			if last {
				sink.Keep(w.Instances)
			}
		}
		sink.Hold(cfg.HoldActive)
		if !last {
			for _, svc := range services {
				svc.Disconnect()
			}
			rest := cfg.Interval - cfg.HoldActive
			if rest > 0 {
				sink.Hold(rest)
			}
		}
	}
	return nil
}

// DefaultAdaptiveMinYield is the marginal-yield floor AdaptiveStrategy stops
// at: a launch round must grow the apparent-host footprint by at least this
// fraction for the campaign to keep paying for further rounds.
const DefaultAdaptiveMinYield = 0.10

// AdaptiveStrategy launches like OptimizedStrategy but watches apparent-host
// growth per round (fingerprint footprint only — no ground truth) and stops
// as soon as a full round's marginal new-host yield falls below MinYield.
// Helper-host unlocking saturates after a few consecutive hot launches, so
// late rounds mostly re-walk hosts the footprint already contains; cutting
// them trades a sliver of coverage for their entire hold cost.
type AdaptiveStrategy struct {
	// MinYield is the minimum fractional footprint growth a round must
	// deliver for the campaign to continue; 0 means DefaultAdaptiveMinYield.
	MinYield float64
}

// Name implements LaunchStrategy.
func (AdaptiveStrategy) Name() string { return "adaptive" }

// Launch implements LaunchStrategy.
func (s AdaptiveStrategy) Launch(sink CampaignSink, acct *faas.Account, cfg Config, rng *randx.Source) error {
	minYield := s.MinYield
	if minYield <= 0 {
		minYield = DefaultAdaptiveMinYield
	}
	services := make([]*faas.Service, cfg.Services)
	for i, name := range serviceNames("adaptive", cfg.Services) {
		services[i] = sink.Deploy(name)
	}
	waves := make([][]*faas.Instance, 0, cfg.Services)
	for launch := 1; launch <= cfg.Launches; launch++ {
		before := sink.Footprint().Cumulative()
		waves = waves[:0]
		for _, svc := range services {
			w, err := sink.LaunchWave(svc, launch)
			if err != nil {
				return err
			}
			waves = append(waves, w.Instances)
		}
		grown := sink.Footprint().Cumulative() - before
		last := launch == cfg.Launches ||
			(launch > 1 && float64(grown) < minYield*float64(before))
		if last {
			for _, insts := range waves {
				sink.Keep(insts)
			}
			sink.Hold(cfg.HoldActive)
			return nil
		}
		sink.Hold(cfg.HoldActive)
		for _, svc := range services {
			svc.Disconnect()
		}
		rest := cfg.Interval - cfg.HoldActive
		if rest > 0 {
			sink.Hold(rest)
		}
	}
	return nil
}

// Strategies returns one instance of every built-in launch strategy, in
// presentation order.
func Strategies() []LaunchStrategy {
	return []LaunchStrategy{NaiveStrategy{}, OptimizedStrategy{}, AdaptiveStrategy{}}
}

// StrategyByName resolves a built-in strategy from its CLI name.
func StrategyByName(name string) (LaunchStrategy, error) {
	switch name {
	case "naive":
		return NaiveStrategy{}, nil
	case "optimized", "opt":
		return OptimizedStrategy{}, nil
	case "adaptive":
		return AdaptiveStrategy{}, nil
	}
	return nil, fmt.Errorf("attack: unknown strategy %q (naive, optimized, adaptive)", name)
}

// RunNaive executes Strategy 1 through the campaign engine. With the default
// config this deploys Services × InstancesPerLaunch instances (the paper's
// 4800 from six services).
func RunNaive(acct *faas.Account, cfg Config, gen sandbox.Gen) (*CampaignResult, error) {
	return runStrategy(acct, cfg, gen, NaiveStrategy{})
}

// RunOptimized executes Strategy 2 through the campaign engine.
func RunOptimized(acct *faas.Account, cfg Config, gen sandbox.Gen) (*CampaignResult, error) {
	return runStrategy(acct, cfg, gen, OptimizedStrategy{})
}

// runStrategy is the shared one-shot entry: build a campaign, run its launch
// stage, return the result.
func runStrategy(acct *faas.Account, cfg Config, gen sandbox.Gen, s LaunchStrategy) (*CampaignResult, error) {
	c, err := NewCampaign(acct, cfg, gen, s)
	if err != nil {
		return nil, err
	}
	return c.Launch()
}
