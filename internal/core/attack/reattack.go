package attack

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
)

// TargetBook records the fingerprints of hosts observed to run a victim's
// instances — the paper's re-attack optimization (§5.2): "record the
// fingerprints of hosts used by the victim during the first attack ... in
// subsequent attacks targeting the same victim, the attacker can focus
// side-channel attack efforts on hosts with fingerprints that match."
type TargetBook struct {
	precision time.Duration
	hosts     map[fingerprint.Gen1]bool
}

// NewTargetBook creates an empty book at the given fingerprint precision.
func NewTargetBook(precision time.Duration) *TargetBook {
	return &TargetBook{
		precision: precision,
		hosts:     make(map[fingerprint.Gen1]bool),
	}
}

// RecordVictimHosts fingerprints the hosts under the given attacker
// instances that were verified to share a host with a victim (e.g. the
// spies selected from a Coverage measurement) and adds them to the book.
func (tb *TargetBook) RecordVictimHosts(colocated []*faas.Instance) error {
	for _, inst := range colocated {
		g, err := inst.Guest()
		if err != nil {
			continue // recycled since verification; nothing to record
		}
		s, err := fingerprint.CollectGen1(g)
		if err != nil {
			return err
		}
		tb.hosts[fingerprint.Gen1FromSample(s, tb.precision)] = true
	}
	return nil
}

// Size returns the number of recorded victim hosts.
func (tb *TargetBook) Size() int { return len(tb.hosts) }

// Matches reports whether a fingerprint matches a recorded victim host.
// Matching is drift-tolerant: fingerprints recorded days earlier may have
// drifted across one rounding boundary (§4.4.2), so adjacent buckets of the
// same CPU model also match.
func (tb *TargetBook) Matches(fp fingerprint.Gen1) bool {
	if tb.hosts[fp] {
		return true
	}
	for _, d := range []int64{-1, 1} {
		adj := fp
		adj.BootBucket += d
		if tb.hosts[adj] {
			return true
		}
	}
	return false
}

// Prune drops recorded victim hosts no longer present in a current campaign
// footprint, returning how many entries were removed. A book accumulated over
// days otherwise grows stale — hosts retire, fingerprints expire (§4.4.2) —
// and every stale entry widens Focus's drift-tolerant matching for nothing.
// Matching against the footprint uses the same ±1-bucket drift tolerance as
// Matches, in the opposite direction: a recorded fingerprint survives when the
// footprint saw the same CPU model within one rounding boundary.
func (tb *TargetBook) Prune(current *FootprintTracker) int {
	pruned := 0
	for fp := range tb.hosts {
		alive := current.seen[fp]
		for _, d := range []int64{-1, 1} {
			if alive {
				break
			}
			adj := fp
			adj.BootBucket += d
			alive = current.seen[adj]
		}
		if !alive {
			delete(tb.hosts, fp)
			pruned++
		}
	}
	return pruned
}

// Focus filters the attacker's live instances down to those residing on
// recorded victim hosts: the only instances that need to run the expensive
// side-channel extraction in a repeat attack. The returned effort fraction
// is len(focused)/len(live attacker instances).
func (tb *TargetBook) Focus(attacker []*faas.Instance) (focused []*faas.Instance, effort float64, err error) {
	live := 0
	for _, inst := range attacker {
		g, gerr := inst.Guest()
		if gerr != nil {
			continue // terminated
		}
		live++
		s, cerr := fingerprint.CollectGen1(g)
		if cerr != nil {
			return nil, 0, cerr
		}
		if tb.Matches(fingerprint.Gen1FromSample(s, tb.precision)) {
			focused = append(focused, inst)
		}
	}
	if live == 0 {
		return nil, 0, nil
	}
	return focused, float64(len(focused)) / float64(live), nil
}

// Save writes the book's recorded fingerprints, one per line, in a stable
// order. A re-attacking tool persists the book between sessions (the paper's
// optimization spans days).
func (tb *TargetBook) Save(w io.Writer) error {
	lines := make([]string, 0, len(tb.hosts))
	for fp := range tb.hosts {
		text, err := fp.MarshalText()
		if err != nil {
			return err
		}
		lines = append(lines, string(text))
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# eaao target book, precision %d ns\n", tb.precision)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// LoadTargetBook reads a book previously written by Save. Fingerprints whose
// precision differs from the book header are rejected: mixing precisions
// would produce silent never-matches.
func LoadTargetBook(r io.Reader) (*TargetBook, error) {
	sc := bufio.NewScanner(r)
	var book *TargetBook
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if book == nil {
			var precNs int64
			if _, err := fmt.Sscanf(line, "# eaao target book, precision %d ns", &precNs); err != nil || precNs <= 0 {
				return nil, fmt.Errorf("attack: malformed target book header %q", line)
			}
			book = NewTargetBook(time.Duration(precNs))
			continue
		}
		var fp fingerprint.Gen1
		if err := fp.UnmarshalText([]byte(line)); err != nil {
			return nil, err
		}
		if fp.PrecisionNs != int64(book.precision) {
			return nil, fmt.Errorf("attack: fingerprint precision %d ns does not match book %v",
				fp.PrecisionNs, book.precision)
		}
		book.hosts[fp] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if book == nil {
		return nil, fmt.Errorf("attack: empty target book")
	}
	return book, nil
}
