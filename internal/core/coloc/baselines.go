package coloc

import (
	"time"

	"eaao/internal/faas"
)

// VerifyPairwise is the conventional O(N²) baseline [41, 54, 59]: every pair
// of instances is covert-channel tested, serialized to avoid interference.
func VerifyPairwise(tester Tester, instances []*faas.Instance) (*Result, error) {
	before := tester.Stats().Tests
	uf := newUnionFind(len(instances))
	for i := 0; i < len(instances); i++ {
		for j := i + 1; j < len(instances); j++ {
			pos, err := tester.PairTest(instances[i], instances[j])
			if err != nil {
				return nil, err
			}
			if pos {
				uf.union(i, j)
			}
		}
	}
	return baselineResult(tester, instances, uf, before), nil
}

// VerifySIE is pairwise testing with the Single Instance Elimination
// pre-filter of İnci et al. [41]: first test all instances simultaneously
// and drop the negatives (instances co-located with nobody), then pair-test
// the survivors. In FaaS environments the orchestrator stacks ~10 instances
// per host, so virtually everything survives the filter and SIE saves almost
// nothing (§4.3).
func VerifySIE(tester Tester, instances []*faas.Instance) (*Result, error) {
	before := tester.Stats().Tests
	uf := newUnionFind(len(instances))
	survivors := make([]int, 0, len(instances))
	if len(instances) > 1 {
		pos, err := tester.CTest(instances, 2)
		if err != nil {
			return nil, err
		}
		for i, p := range pos {
			if p {
				survivors = append(survivors, i)
			}
		}
	}
	for a := 0; a < len(survivors); a++ {
		for b := a + 1; b < len(survivors); b++ {
			i, j := survivors[a], survivors[b]
			pos, err := tester.PairTest(instances[i], instances[j])
			if err != nil {
				return nil, err
			}
			if pos {
				uf.union(i, j)
			}
		}
	}
	return baselineResult(tester, instances, uf, before), nil
}

// baselineResult assembles a Result for the serialized baselines.
func baselineResult(tester Tester, instances []*faas.Instance, uf *unionFind, testsBefore int) *Result {
	ids := make([]int, len(instances))
	for i := range ids {
		ids[i] = i
	}
	res := &Result{Labels: make([]int, len(instances))}
	for ci, c := range uf.clusters(ids) {
		insts := make([]*faas.Instance, 0, len(c))
		for _, idx := range c {
			insts = append(insts, instances[idx])
			res.Labels[idx] = ci
		}
		res.Clusters = append(res.Clusters, insts)
	}
	res.Tests = tester.Stats().Tests - testsBefore
	res.SerializedTime = time.Duration(res.Tests) * tester.Config().TestDuration
	res.WallTime = res.SerializedTime // baselines are fully serialized
	return res
}

// PairwiseTestCount returns the number of tests pairwise verification of n
// instances requires (the paper's 319,600 for n = 800).
func PairwiseTestCount(n int) int { return n * (n - 1) / 2 }
