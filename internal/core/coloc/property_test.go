package coloc

import (
	"testing"
	"testing/quick"

	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
)

// Property: across random worlds and launch sizes, the scalable methodology
// always reproduces the ground-truth clustering (FMI ≈ 1) while consuming
// far fewer tests than pairwise verification would.
func TestVerifyCorrectnessProperty(t *testing.T) {
	f := func(seedRaw uint16, nRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		n := int(nRaw%120) + 30

		p := faas.USEast1Profile()
		p.Name = "prop"
		p.NumHosts = 130
		p.PlacementGroups = 3
		p.BasePoolSize = 35
		p.AccountHelperPool = 60
		p.ServiceHelperSize = 45
		p.ServiceHelperFresh = 5
		pl := faas.MustPlatform(seed, p)
		insts, err := pl.MustRegion("prop").Account("a").
			DeployService("s", faas.ServiceConfig{}).Launch(n)
		if err != nil {
			return false
		}
		tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
		items := make([]Item, len(insts))
		for i, inst := range insts {
			s, err := fingerprint.CollectGen1(inst.MustGuest())
			if err != nil {
				return false
			}
			fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
			items[i] = Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
		}
		res, err := Verify(tester, items, DefaultOptions())
		if err != nil {
			return false
		}
		truth := make([]faas.HostID, len(insts))
		for i, inst := range insts {
			truth[i], _ = inst.HostID()
		}
		sc := metrics.ScoreOf(res.Labels, truth)
		if sc.FMI < 0.999 {
			t.Logf("seed %d n %d: FMI %v", seed, n, sc.FMI)
			return false
		}
		return res.Tests < PairwiseTestCount(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: labels and clusters are mutually consistent for arbitrary
// (possibly adversarial) fingerprint assignments.
func TestVerifyLabelClusterConsistencyProperty(t *testing.T) {
	p := faas.USEast1Profile()
	p.Name = "prop"
	p.NumHosts = 130
	p.PlacementGroups = 3
	p.BasePoolSize = 35
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(99, p)
	insts, err := pl.MustRegion("prop").Account("a").
		DeployService("s", faas.ServiceConfig{}).Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())

	f := func(assignRaw []uint8) bool {
		// Arbitrary fingerprint assignment: group instances by bytes of the
		// random input (simulating wildly wrong fingerprints).
		items := make([]Item, len(insts))
		for i, inst := range insts {
			key := 0
			if len(assignRaw) > 0 {
				key = int(assignRaw[i%len(assignRaw)]) % 6
			}
			items[i] = Item{Inst: inst, Fingerprint: fingerprint.Key{Model: "g", A: int64(key)}}
		}
		res, err := Verify(tester, items, DefaultOptions())
		if err != nil {
			return false
		}
		if len(res.Labels) != len(items) {
			return false
		}
		// Every label indexes a cluster containing that instance.
		for i, label := range res.Labels {
			if label < 0 || label >= len(res.Clusters) {
				return false
			}
			found := false
			for _, inst := range res.Clusters[label] {
				if inst == items[i].Inst {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Clusters partition the input.
		total := 0
		for _, c := range res.Clusters {
			total += len(c)
		}
		return total == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: an unreliable covert channel (vote threshold too low
// relative to background noise) must not corrupt the clustering structure —
// clusters still partition the instances even if accuracy degrades.
func TestVerifyWithNoisyChannelStructure(t *testing.T) {
	p := faas.USEast1Profile()
	p.Name = "noisy"
	p.NumHosts = 130
	p.PlacementGroups = 3
	p.BasePoolSize = 35
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(7, p)
	insts, err := pl.MustRegion("noisy").Account("a").
		DeployService("s", faas.ServiceConfig{}).Launch(80)
	if err != nil {
		t.Fatal(err)
	}
	// A single-round, single-vote test is at the mercy of background noise.
	cfg := covert.DefaultConfig()
	cfg.Rounds = 1
	cfg.VoteThreshold = 1
	tester := covert.NewTester(pl.Scheduler(), cfg)
	items := make([]Item, len(insts))
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
		items[i] = Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := make(map[*faas.Instance]bool)
	for _, c := range res.Clusters {
		for _, inst := range c {
			if seen[inst] {
				t.Fatal("instance appears in two clusters")
			}
			seen[inst] = true
			total++
		}
	}
	if total != len(insts) {
		t.Errorf("clusters cover %d of %d instances", total, len(insts))
	}
}
