// Package coloc implements the paper's scalable instance co-location
// verification methodology (§4.3), plus the two conventional baselines it is
// compared against (pairwise covert-channel testing and Single Instance
// Elimination).
//
// The scalable method verifies N instances in O(M) covert-channel tests,
// where M is the number of occupied hosts, instead of the O(N²) of pairwise
// testing:
//
//  1. Group instances by host fingerprint. Accurate fingerprints make each
//     group a candidate host.
//  2. Verify each group internally with n-way CTests at contention threshold
//     m, in sub-groups of at most 2m−1 so results are unambiguous. Groups
//     that contained false positives split into verified clusters.
//  3. Pick one representative per verified cluster and test them all at
//     once; any positives are false negatives (co-located instances whose
//     fingerprints differ), which are then refined pairwise and their
//     clusters merged. Gen 2 fingerprints cannot produce false negatives, so
//     this step is skipped and step 2 runs fully in parallel.
package coloc

import (
	"fmt"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
)

// Item is one instance under verification, tagged with its fingerprint.
type Item struct {
	// Inst is the live instance.
	Inst *faas.Instance
	// Fingerprint is the comparable grouping key (fingerprint.Key is a
	// fixed-size struct, so grouping never allocates or hashes strings).
	Fingerprint fingerprint.Key
	// ConflictKey marks tests that would interfere if run concurrently:
	// groups with *different* conflict keys are guaranteed to sit on
	// different hosts (e.g. different CPU models) and may verify in
	// parallel. An empty key conflicts with everything.
	ConflictKey string
}

// Tester is the covert-channel capability verification needs: n-way and
// pairwise testing plus the cost counters. *covert.Tester satisfies it; the
// indirection lets callers hand in instrumented testers (e.g. the attack
// campaign engine's ledger-metered tester) without this package knowing.
type Tester interface {
	CTest(instances []*faas.Instance, m int) ([]bool, error)
	PairTest(a, b *faas.Instance) (bool, error)
	Config() covert.Config
	Stats() covert.Stats
}

// Options tunes the verification.
type Options struct {
	// M is the contention threshold (≥ 2). Sub-groups of up to 2M−1
	// instances are verified in a single test. The paper uses M = 2.
	M int
	// AssumeNoFalseNegatives skips the cross-cluster false-negative sweep
	// and allows all group verifications to proceed concurrently. Sound
	// for Gen 2 fingerprints (§4.5).
	AssumeNoFalseNegatives bool
}

// DefaultOptions returns the paper's configuration (m = 2).
func DefaultOptions() Options { return Options{M: 2} }

// Result is the outcome of a verification run.
type Result struct {
	// Clusters are the verified co-location classes, in first-seen order;
	// every input instance appears in exactly one cluster.
	Clusters [][]*faas.Instance
	// Labels assigns each input item its cluster index.
	Labels []int
	// Tests is the number of covert-channel tests consumed.
	Tests int
	// SerializedTime is the virtual wall-clock the tests would take fully
	// serialized (tests × test duration).
	SerializedTime time.Duration
	// WallTime accounts for permitted parallelism: tests whose groups
	// cannot share a host (different conflict keys, or the no-false-
	// negative regime) overlap.
	WallTime time.Duration
	// FalsePositiveSplits counts fingerprint groups that step 2 split.
	FalsePositiveSplits int
	// FalseNegativeMerges counts cluster pairs merged by step 3.
	FalseNegativeMerges int
	// PairwiseFallbacks counts groups that fell back to pairwise testing.
	PairwiseFallbacks int
}

// verifier carries the run state.
type verifier struct {
	tester Tester
	opt    Options
	res    *Result
	// instBuf is the scratch instance slice handed to CTest; reused across
	// every small-group test of the run (CTest never retains it).
	instBuf []*faas.Instance
}

// Verify runs the scalable methodology over the items.
func Verify(tester Tester, items []Item, opt Options) (*Result, error) {
	if opt.M < 2 {
		return nil, fmt.Errorf("coloc: threshold M=%d, need at least 2", opt.M)
	}
	v := &verifier{tester: tester, opt: opt, res: &Result{}}

	// Step 1: group by fingerprint, preserving first-seen order.
	groupOf := make(map[fingerprint.Key][]int)
	var order []fingerprint.Key
	for i, it := range items {
		if _, seen := groupOf[it.Fingerprint]; !seen {
			order = append(order, it.Fingerprint)
		}
		groupOf[it.Fingerprint] = append(groupOf[it.Fingerprint], i)
	}

	// Step 2: verify each group internally. Track per-conflict-key serial
	// cost for the wall-time model.
	testsByKey := make(map[string]int)
	var clusters [][]int
	for _, fp := range order {
		group := groupOf[fp]
		before := v.tester.Stats().Tests
		parts, err := v.verifyGroup(items, group)
		if err != nil {
			return nil, err
		}
		spent := v.tester.Stats().Tests - before
		key := items[group[0]].ConflictKey
		if v.opt.AssumeNoFalseNegatives {
			// Fully parallel: each group is its own lane.
			if spent > testsByKey["@max"] {
				testsByKey["@max"] = spent
			}
		} else {
			testsByKey[key] += spent
		}
		if len(parts) > 1 {
			v.res.FalsePositiveSplits++
		}
		clusters = append(clusters, parts...)
	}
	// An empty ConflictKey means "conflicts with everything" (see Item), so
	// its tests serialize against every lane: wall time is the empty lane
	// plus the widest keyed lane, not the maximum over lanes with "" treated
	// as one more independent lane.
	step2Wall := testsByKey[""]
	maxKeyed := 0
	for key, n := range testsByKey {
		if key != "" && n > maxKeyed {
			maxKeyed = n
		}
	}
	step2Wall += maxKeyed

	// Step 3: find false negatives across clusters.
	step3Tests := 0
	if !v.opt.AssumeNoFalseNegatives && len(clusters) > 1 {
		before := v.tester.Stats().Tests
		var err error
		clusters, err = v.mergeFalseNegatives(items, clusters)
		if err != nil {
			return nil, err
		}
		step3Tests = v.tester.Stats().Tests - before
	}

	v.finish(items, clusters, step2Wall+step3Tests)
	return v.res, nil
}

// verifyGroup verifies one fingerprint group (indices into items), returning
// verified clusters.
func (v *verifier) verifyGroup(items []Item, group []int) ([][]int, error) {
	limit := covert.MaxGroupSize(v.opt.M)
	if len(group) <= limit {
		return v.testSmallGroup(items, group)
	}

	// Split into sub-groups of at most 2m−1 and test each.
	var chunks [][]int
	for start := 0; start < len(group); start += limit {
		end := start + limit
		if end > len(group) {
			end = len(group)
		}
		chunks = append(chunks, group[start:end])
	}
	allCohesive := true
	chunkClusters := make([][][]int, len(chunks))
	for ci, chunk := range chunks {
		parts, err := v.testSmallGroup(items, chunk)
		if err != nil {
			return nil, err
		}
		chunkClusters[ci] = parts
		if len(parts) != 1 {
			allCohesive = false
		}
	}

	if !allCohesive {
		// The paper's simplification: mixed results inside a large group
		// fall back to pairwise testing of the whole group.
		v.res.PairwiseFallbacks++
		return v.pairwiseGroup(items, group)
	}

	// Every chunk is internally co-located; hierarchically verify one
	// representative per chunk to merge chunks sharing a host.
	reps := make([]int, len(chunks))
	for ci, chunk := range chunks {
		reps[ci] = chunk[0]
	}
	repClusters, err := v.verifyGroup(items, reps)
	if err != nil {
		return nil, err
	}
	var out [][]int
	for _, rc := range repClusters {
		var merged []int
		for _, rep := range rc {
			for ci, chunk := range chunks {
				if reps[ci] == rep {
					merged = append(merged, chunk...)
				}
			}
		}
		out = append(out, merged)
	}
	return out, nil
}

// testSmallGroup runs one CTest over a group of at most 2m−1 instances and
// decodes the unambiguous outcome.
func (v *verifier) testSmallGroup(items []Item, group []int) ([][]int, error) {
	if len(group) == 1 {
		return [][]int{{group[0]}}, nil
	}
	insts := v.instBuf[:0]
	for _, idx := range group {
		insts = append(insts, items[idx].Inst)
	}
	v.instBuf = insts[:0]
	pos, err := v.tester.CTest(insts, v.opt.M)
	if err != nil {
		return nil, err
	}
	var positives, negatives []int
	for i, p := range pos {
		if p {
			positives = append(positives, group[i])
		} else {
			negatives = append(negatives, group[i])
		}
	}
	var out [][]int
	if len(positives) >= v.opt.M {
		// ≤ 2m−1 participants: all positives share one host.
		out = append(out, positives)
	} else {
		// Fewer positives than the threshold can ever produce: noise.
		// Treat them as singletons.
		for _, idx := range positives {
			out = append(out, []int{idx})
		}
	}
	for _, idx := range negatives {
		out = append(out, []int{idx})
	}
	return out, nil
}

// pairwiseGroup exhaustively pair-tests a group and unions positives.
func (v *verifier) pairwiseGroup(items []Item, group []int) ([][]int, error) {
	uf := newUnionFind(len(group))
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			pos, err := v.tester.PairTest(items[group[i]].Inst, items[group[j]].Inst)
			if err != nil {
				return nil, err
			}
			if pos {
				uf.union(i, j)
			}
		}
	}
	return uf.clusters(group), nil
}

// mergeFalseNegatives implements step 3: one representative per cluster, all
// tested at once; positive representatives are refined pairwise and their
// clusters merged.
func (v *verifier) mergeFalseNegatives(items []Item, clusters [][]int) ([][]int, error) {
	reps := make([]*faas.Instance, len(clusters))
	for i, c := range clusters {
		reps[i] = items[c[0]].Inst
	}
	pos, err := v.tester.CTest(reps, 2)
	if err != nil {
		return nil, err
	}
	var hot []int // cluster indices whose representative tested positive
	for i, p := range pos {
		if p {
			hot = append(hot, i)
		}
	}
	if len(hot) < 2 {
		return clusters, nil
	}
	// Refine: pairwise among the positive representatives only.
	uf := newUnionFind(len(clusters))
	for a := 0; a < len(hot); a++ {
		for b := a + 1; b < len(hot); b++ {
			p, err := v.tester.PairTest(reps[hot[a]], reps[hot[b]])
			if err != nil {
				return nil, err
			}
			if p {
				uf.union(hot[a], hot[b])
				v.res.FalseNegativeMerges++
			}
		}
	}
	// Rebuild clusters by union-find root.
	byRoot := make(map[int][]int)
	var roots []int
	for i, c := range clusters {
		r := uf.find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], c...)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out, nil
}

// finish materializes the Result from index clusters.
func (v *verifier) finish(items []Item, clusters [][]int, wallTests int) {
	v.res.Labels = make([]int, len(items))
	v.res.Clusters = make([][]*faas.Instance, 0, len(clusters))
	for ci, c := range clusters {
		insts := make([]*faas.Instance, 0, len(c))
		for _, idx := range c {
			insts = append(insts, items[idx].Inst)
			v.res.Labels[idx] = ci
		}
		v.res.Clusters = append(v.res.Clusters, insts)
	}
	dur := v.tester.Config().TestDuration
	v.res.Tests = v.tester.Stats().Tests
	v.res.SerializedTime = time.Duration(v.res.Tests) * dur
	v.res.WallTime = time.Duration(wallTests) * dur
}

// unionFind is a plain disjoint-set structure over [0, n).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// clusters groups the external ids by union-find class, in first-seen order.
func (u *unionFind) clusters(ids []int) [][]int {
	byRoot := make(map[int][]int)
	var roots []int
	for i, id := range ids {
		r := u.find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], id)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
