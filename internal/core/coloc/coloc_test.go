package coloc

import (
	"testing"
	"time"

	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/sandbox"
)

func testWorld(t *testing.T, seed uint64, n int, gen sandbox.Gen) (*faas.Platform, []*faas.Instance) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(seed, p)
	insts, err := pl.MustRegion("t").Account("a").DeployService("s", faas.ServiceConfig{Gen: gen}).Launch(n)
	if err != nil {
		t.Fatal(err)
	}
	return pl, insts
}

// itemsGen1 fingerprints instances with the Gen 1 technique.
func itemsGen1(t *testing.T, insts []*faas.Instance, precision time.Duration) []Item {
	t.Helper()
	items := make([]Item, len(insts))
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint.Gen1FromSample(s, precision)
		items[i] = Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	return items
}

// truthLabels returns ground-truth host ids.
func truthLabels(insts []*faas.Instance) []faas.HostID {
	out := make([]faas.HostID, len(insts))
	for i, inst := range insts {
		id, _ := inst.HostID()
		out[i] = id
	}
	return out
}

func TestVerifyMatchesGroundTruth(t *testing.T) {
	pl, insts := testWorld(t, 1, 200, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := itemsGen1(t, insts, fingerprint.DefaultPrecision)
	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.FMI < 0.999 {
		t.Errorf("verified clustering FMI = %.6f, want ~1 (verification must fix fingerprint errors)", score.FMI)
	}
	// Every instance in exactly one cluster.
	total := 0
	for _, c := range res.Clusters {
		total += len(c)
	}
	if total != len(insts) {
		t.Errorf("clusters cover %d of %d instances", total, len(insts))
	}
}

func TestVerifyIsCheapWithGoodFingerprints(t *testing.T) {
	pl, insts := testWorld(t, 2, 200, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := itemsGen1(t, insts, fingerprint.DefaultPrecision)
	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hosts := make(map[faas.HostID]bool)
	for _, id := range truthLabels(insts) {
		hosts[id] = true
	}
	// 200 instances at ~11/host → ~19 hosts. Groups of ~11 need ~4 chunk
	// tests + ~1 rep test each, plus the step-3 sweep. Budget: well under
	// pairwise (19,900) and within a small multiple of the host count.
	budget := len(hosts) * 8
	if res.Tests > budget {
		t.Errorf("verification used %d tests for %d hosts (budget %d)", res.Tests, len(hosts), budget)
	}
	if res.Tests >= PairwiseTestCount(len(insts))/100 {
		t.Errorf("verification used %d tests; pairwise would use %d", res.Tests, PairwiseTestCount(len(insts)))
	}
}

func TestVerifyDetectsInjectedFalsePositive(t *testing.T) {
	// Force two different hosts into one fingerprint group: step 2 must
	// split them.
	pl, insts := testWorld(t, 3, 60, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := make([]Item, len(insts))
	for i, inst := range insts {
		items[i] = Item{Inst: inst, Fingerprint: fingerprint.Key{Model: "same-for-everyone"}}
	}
	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.Precision < 0.999 {
		t.Errorf("precision %.4f after verification of a degenerate grouping", score.Precision)
	}
	if score.Recall < 0.999 {
		t.Errorf("recall %.4f after verification of a degenerate grouping", score.Recall)
	}
}

func TestVerifyDetectsInjectedFalseNegative(t *testing.T) {
	// Give every instance a unique fingerprint: step 3 must merge the truly
	// co-located ones back together.
	pl, insts := testWorld(t, 4, 40, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := make([]Item, len(insts))
	for i, inst := range insts {
		items[i] = Item{Inst: inst, Fingerprint: fingerprint.Key{Model: "unique", A: int64(i)}}
	}
	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.Recall < 0.999 {
		t.Errorf("recall %.4f; step 3 failed to merge false negatives", score.Recall)
	}
	if res.FalseNegativeMerges == 0 {
		t.Error("no false-negative merges recorded despite unique fingerprints")
	}
}

func TestGen2ModeSkipsStep3AndParallelizes(t *testing.T) {
	pl, insts := testWorld(t, 5, 150, sandbox.Gen2)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := make([]Item, len(insts))
	for i, inst := range insts {
		fp, err := fingerprint.CollectGen2(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		items[i] = Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	opt := DefaultOptions()
	opt.AssumeNoFalseNegatives = true
	res, err := Verify(tester, items, opt)
	if err != nil {
		t.Fatal(err)
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.FMI < 0.999 {
		t.Errorf("Gen2 verified clustering FMI = %.4f", score.FMI)
	}
	if res.WallTime >= res.SerializedTime && res.Tests > 1 {
		t.Errorf("no parallelism benefit: wall %v vs serialized %v", res.WallTime, res.SerializedTime)
	}
}

// An empty ConflictKey conflicts with everything, so its tests serialize
// against every lane: wall time must be (empty lane) + (widest keyed lane),
// not the maximum over lanes with "" treated as one more independent lane.
func TestWallTimeEmptyConflictKeySerializes(t *testing.T) {
	pl, insts := testWorld(t, 11, 120, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())

	// Three co-located pairs on three distinct hosts, one fingerprint group
	// each, with conflict keys "x", "y", and "" (conflicts with everything).
	byHost := make(map[faas.HostID][]*faas.Instance)
	for _, inst := range insts {
		id, _ := inst.HostID()
		byHost[id] = append(byHost[id], inst)
	}
	var pairs [][]*faas.Instance
	for _, group := range byHost {
		if len(group) >= 2 {
			pairs = append(pairs, group[:2])
			if len(pairs) == 3 {
				break
			}
		}
	}
	if len(pairs) < 3 {
		t.Fatal("world has fewer than three multi-instance hosts")
	}
	var items []Item
	for gi, key := range []string{"x", "y", ""} {
		for _, inst := range pairs[gi] {
			items = append(items, Item{
				Inst:        inst,
				Fingerprint: fingerprint.Key{Model: "g", A: int64(gi)},
				ConflictKey: key,
			})
		}
	}

	res, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Step 2: one test per pair (3 total, lanes x=1, y=1, ""=1). Step 3: one
	// representative test across the three clusters, all on different hosts,
	// so no pairwise refinement follows.
	if res.Tests != 4 {
		t.Fatalf("used %d tests, expected 4 (scenario drifted; wall model unpinned)", res.Tests)
	}
	dur := tester.Config().TestDuration
	if res.SerializedTime != 4*dur {
		t.Errorf("SerializedTime = %v, want %v", res.SerializedTime, 4*dur)
	}
	// Wall: the "" lane (1) serializes against the widest keyed lane (1),
	// while x and y overlap each other; plus the serial step-3 test.
	if want := 3 * dur; res.WallTime != want {
		t.Errorf("WallTime = %v, want %v (empty conflict key must not form its own parallel lane)",
			res.WallTime, want)
	}
}

func TestVerifyRejectsBadThreshold(t *testing.T) {
	pl, insts := testWorld(t, 6, 3, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := itemsGen1(t, insts, fingerprint.DefaultPrecision)
	if _, err := Verify(tester, items, Options{M: 1}); err == nil {
		t.Error("M=1 accepted")
	}
}

func TestVerifyHigherThreshold(t *testing.T) {
	// m=3 allows groups of 5 per test; correctness must hold.
	pl, insts := testWorld(t, 7, 150, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := itemsGen1(t, insts, fingerprint.DefaultPrecision)
	res, err := Verify(tester, items, Options{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With m=3, hosts holding only 1–2 of our instances cannot be confirmed
	// (their instances all test negative), so recall may drop — but
	// precision must stay perfect.
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.Precision < 0.999 {
		t.Errorf("m=3 precision %.4f", score.Precision)
	}
}

func TestPairwiseBaseline(t *testing.T) {
	pl, insts := testWorld(t, 8, 40, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	res, err := VerifyPairwise(tester, insts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests != PairwiseTestCount(40) {
		t.Errorf("pairwise used %d tests, want %d", res.Tests, PairwiseTestCount(40))
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.FMI < 0.999 {
		t.Errorf("pairwise FMI = %.4f", score.FMI)
	}
}

func TestSIEDoesNotHelpInFaaS(t *testing.T) {
	// The orchestrator stacks instances, so SIE eliminates (almost) nobody
	// and the follow-up pairwise work stays quadratic.
	pl, insts := testWorld(t, 9, 60, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	res, err := VerifySIE(tester, insts)
	if err != nil {
		t.Fatal(err)
	}
	score := metrics.ScoreOf(res.Labels, truthLabels(insts))
	if score.FMI < 0.99 {
		t.Errorf("SIE FMI = %.4f", score.FMI)
	}
	if res.Tests < PairwiseTestCount(60)/2 {
		t.Errorf("SIE used only %d tests; in FaaS it should stay near the pairwise %d",
			res.Tests, PairwiseTestCount(60))
	}
}

func TestScalableBeatsBaselinesOnCost(t *testing.T) {
	pl, insts := testWorld(t, 10, 120, sandbox.Gen1)
	tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
	items := itemsGen1(t, insts, fingerprint.DefaultPrecision)
	ours, err := Verify(tester, items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tester.ResetStats()
	pair, err := VerifyPairwise(tester, insts)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Tests*20 > pair.Tests {
		t.Errorf("scalable method used %d tests vs pairwise %d; expected ≥20x advantage",
			ours.Tests, pair.Tests)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Error("transitive union broken")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) == uf.find(5) {
		t.Error("spurious union")
	}
	cs := uf.clusters([]int{10, 11, 12, 13, 14, 15})
	if len(cs) != 3 {
		t.Errorf("clusters = %v", cs)
	}
}
