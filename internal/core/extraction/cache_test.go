package extraction

import (
	"testing"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

func TestScanFootprintFindsVictimGroups(t *testing.T) {
	pl, dc := testWorld(t, 10)
	victim, spy, remote := colocatedPair(t, dc)

	groups := []int{3, 17, 42}
	if err := victim.SetCacheFootprint(groups); err != nil {
		t.Fatal(err)
	}
	// Victim continuously executing during the scan.
	victim.SetWorkload(func(simtime.Time) bool { return true })

	found, err := ScanFootprint(pl.Scheduler(), spy, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != len(groups) {
		t.Fatalf("found groups %v, want %v", found, groups)
	}
	for i := range groups {
		if found[i] != groups[i] {
			t.Fatalf("found groups %v, want %v", found, groups)
		}
	}

	// A remote spy sees only background noise — no group clears half the
	// rounds.
	foundRemote, err := ScanFootprint(pl.Scheduler(), remote, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(foundRemote) != 0 {
		t.Errorf("remote spy 'found' groups %v", foundRemote)
	}
}

func TestMonitorCacheRecoversSecret(t *testing.T) {
	pl, dc := testWorld(t, 11)
	victim, spy, _ := colocatedPair(t, dc)
	if err := victim.SetCacheFootprint([]int{9}); err != nil {
		t.Fatal(err)
	}

	bits := secretBits()
	sched := Schedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       bits,
	}
	victim.SetWorkload(sched.Activity())

	trace, err := MonitorCache(pl.Scheduler(), spy, 9, sched, CacheMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := trace.BitAccuracy(bits); acc < 0.95 {
		t.Errorf("cache-channel recovery accuracy = %v", acc)
	}
}

func TestMonitorCacheWrongGroupReadsNoise(t *testing.T) {
	pl, dc := testWorld(t, 12)
	victim, spy, _ := colocatedPair(t, dc)
	if err := victim.SetCacheFootprint([]int{9}); err != nil {
		t.Fatal(err)
	}
	bits := secretBits()
	sched := Schedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       bits,
	}
	victim.SetWorkload(sched.Activity())
	// Monitoring a group outside the victim's footprint: every slot should
	// vote below threshold.
	trace, err := MonitorCache(pl.Scheduler(), spy, 10, sched, CacheMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range trace.Bits {
		if b {
			t.Errorf("slot %d read 1 on an untouched group", i)
		}
	}
}

func TestCachePrimitiveValidation(t *testing.T) {
	pl, dc := testWorld(t, 13)
	_, spy, _ := colocatedPair(t, dc)
	if _, err := faas.ProbeCacheGroup(spy, -1); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := faas.ProbeCacheGroup(spy, faas.CacheSetGroups); err == nil {
		t.Error("out-of-range group accepted")
	}
	if err := spy.SetCacheFootprint([]int{faas.CacheSetGroups}); err == nil {
		t.Error("out-of-range footprint accepted")
	}
	if _, err := ScanFootprint(pl.Scheduler(), spy, 0); err == nil {
		t.Error("zero-round scan accepted")
	}
	s := Schedule{Start: pl.Now().Add(time.Second), SlotLength: time.Second, Bits: []bool{true}}
	if _, err := MonitorCache(pl.Scheduler(), spy, 0, s, MonitorConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}
