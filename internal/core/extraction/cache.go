package extraction

import (
	"fmt"
	"sort"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

// Cache-based extraction: the prime+probe variant of the monitor, built on
// LLC set-group contention instead of the RNG. Caches carry far more
// background noise (~5% per probe vs <1%), so slot classification uses the
// same voting discipline, and the attacker must first *locate* the victim's
// cache footprint by scanning set groups while the victim runs.

// ScanFootprint locates the LLC set groups a co-resident victim touches: it
// probes every group `rounds` times while the victim is (presumed) executing
// and returns the groups whose eviction rate clears the background by a wide
// margin. The scan advances the virtual clock by rounds × CacheSetGroups
// probe slots of 1 ms each.
func ScanFootprint(sched *simtime.Scheduler, spy *faas.Instance, rounds int) ([]int, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("extraction: scan needs rounds")
	}
	hits := make([]int, faas.CacheSetGroups)
	for r := 0; r < rounds; r++ {
		for g := 0; g < faas.CacheSetGroups; g++ {
			evicted, err := faas.ProbeCacheGroup(spy, g)
			if err != nil {
				return nil, err
			}
			if evicted {
				hits[g]++
			}
			sched.Advance(time.Millisecond)
		}
	}
	// Background sits near 5%; a touched group evicts every probe. Half the
	// rounds is an unambiguous separator.
	var out []int
	for g, h := range hits {
		if h*2 > rounds {
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out, nil
}

// MonitorCache is the cache-channel counterpart of Monitor: it watches one
// of the victim's set groups (found by ScanFootprint) across the schedule's
// slots and reconstructs the activity bits. The higher background rate is
// handled by a stricter per-slot vote than the RNG monitor needs.
func MonitorCache(sched *simtime.Scheduler, spy *faas.Instance, group int, s Schedule, cfg MonitorConfig) (Trace, error) {
	if cfg.SamplesPerSlot <= 0 || cfg.VoteThreshold <= 0 || cfg.VoteThreshold > cfg.SamplesPerSlot {
		return Trace{}, fmt.Errorf("extraction: invalid monitor config %+v", cfg)
	}
	if len(s.Bits) == 0 {
		return Trace{}, fmt.Errorf("extraction: empty schedule")
	}
	if sched.Now().After(s.Start) {
		return Trace{}, fmt.Errorf("extraction: schedule started in the past")
	}
	sched.RunUntil(s.Start)

	step := s.SlotLength / time.Duration(cfg.SamplesPerSlot+1)
	trace := Trace{Bits: make([]bool, len(s.Bits))}
	for slot := range s.Bits {
		votes := 0
		for probe := 0; probe < cfg.SamplesPerSlot; probe++ {
			sched.Advance(step)
			evicted, err := faas.ProbeCacheGroup(spy, group)
			if err != nil {
				return Trace{}, err
			}
			if evicted {
				votes++
			}
			trace.Samples++
		}
		trace.Bits[slot] = votes >= cfg.VoteThreshold
		next := s.Start.Add(time.Duration(slot+1) * s.SlotLength)
		if next.After(sched.Now()) {
			sched.RunUntil(next)
		}
	}
	return trace, nil
}

// CacheMonitorConfig returns voting parameters suited to the cache channel's
// ~5% background: 8 probes per slot, 5 positives to call a 1.
func CacheMonitorConfig() MonitorConfig {
	return MonitorConfig{SamplesPerSlot: 8, VoteThreshold: 5}
}
