package extraction

import (
	"testing"
	"testing/quick"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

func testWorld(t *testing.T, seed uint64) (*faas.Platform, *faas.DataCenter) {
	t.Helper()
	p := faas.USEast1Profile()
	p.Name = "t"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	pl := faas.MustPlatform(seed, p)
	return pl, pl.MustRegion("t")
}

// colocatedPair finds a victim instance and an attacker instance that truly
// share a host, plus an attacker instance on a different host.
func colocatedPair(t *testing.T, dc *faas.DataCenter) (victim, spy, remote *faas.Instance) {
	t.Helper()
	vic, err := dc.Account("victim").DeployService("v", faas.ServiceConfig{}).Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	// Same account → same base hosts → guaranteed overlap.
	atk, err := dc.Account("victim").DeployService("spyware", faas.ServiceConfig{}).Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	vicHosts := make(map[faas.HostID]*faas.Instance)
	for _, inst := range vic {
		id, _ := inst.HostID()
		if _, ok := vicHosts[id]; !ok {
			vicHosts[id] = inst
		}
	}
	for _, inst := range atk {
		id, _ := inst.HostID()
		if v, ok := vicHosts[id]; ok && spy == nil {
			victim, spy = v, inst
		}
	}
	for _, inst := range atk {
		id, _ := inst.HostID()
		vid, _ := victim.HostID()
		if id != vid {
			remote = inst
			break
		}
	}
	if victim == nil || spy == nil || remote == nil {
		t.Fatal("could not build co-located/remote triple")
	}
	return victim, spy, remote
}

func secretBits() []bool {
	// 16-bit secret: 1011001110001011.
	pattern := "1011001110001011"
	bits := make([]bool, len(pattern))
	for i, c := range pattern {
		bits[i] = c == '1'
	}
	return bits
}

func TestScheduleActivity(t *testing.T) {
	s := Schedule{Start: simtime.FromSeconds(10), SlotLength: time.Second, Bits: []bool{true, false, true}}
	active := s.Activity()
	cases := []struct {
		at   float64
		want bool
	}{
		{9.5, false}, {10.1, true}, {11.5, false}, {12.5, true}, {13.5, false},
	}
	for _, c := range cases {
		if got := active(simtime.FromSeconds(c.at)); got != c.want {
			t.Errorf("Activity at %vs = %v, want %v", c.at, got, c.want)
		}
	}
	if s.End() != simtime.FromSeconds(13) {
		t.Errorf("End = %v", s.End())
	}
}

func TestColocatedSpyRecoversSecret(t *testing.T) {
	pl, dc := testWorld(t, 1)
	victim, spy, _ := colocatedPair(t, dc)

	bits := secretBits()
	sched := Schedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       bits,
	}
	victim.SetWorkload(sched.Activity())

	trace, err := Monitor(pl.Scheduler(), spy, sched, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := trace.BitAccuracy(bits); acc < 0.99 {
		t.Errorf("co-located spy recovered only %.0f%% of the secret", acc*100)
	}
	if trace.Samples != len(bits)*DefaultMonitorConfig().SamplesPerSlot {
		t.Errorf("samples = %d", trace.Samples)
	}
}

func TestRemoteSpyLearnsNothing(t *testing.T) {
	pl, dc := testWorld(t, 2)
	victim, _, remote := colocatedPair(t, dc)

	bits := secretBits()
	sched := Schedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       bits,
	}
	victim.SetWorkload(sched.Activity())

	trace, err := Monitor(pl.Scheduler(), remote, sched, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A non-co-located monitor reads only background noise: it should
	// recover all-zeros, matching the secret only on its zero bits.
	for i, b := range trace.Bits {
		if b {
			t.Errorf("remote spy read a 1 in slot %d (no shared host!)", i)
		}
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	pl, dc := testWorld(t, 3)
	_, spy, _ := colocatedPair(t, dc)
	s := Schedule{Start: pl.Now().Add(time.Second), SlotLength: time.Second, Bits: []bool{true}}
	bad := []MonitorConfig{
		{SamplesPerSlot: 0, VoteThreshold: 1},
		{SamplesPerSlot: 4, VoteThreshold: 0},
		{SamplesPerSlot: 4, VoteThreshold: 5},
	}
	for i, cfg := range bad {
		if _, err := Monitor(pl.Scheduler(), spy, s, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Monitor(pl.Scheduler(), spy, Schedule{Start: pl.Now(), SlotLength: time.Second}, DefaultMonitorConfig()); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestBitAccuracy(t *testing.T) {
	tr := Trace{Bits: []bool{true, false, true, true}}
	if a := tr.BitAccuracy([]bool{true, false, false, true}); a != 0.75 {
		t.Errorf("accuracy = %v", a)
	}
	if a := tr.BitAccuracy(nil); a != 0 {
		t.Errorf("empty truth accuracy = %v", a)
	}
	short := Trace{Bits: []bool{true}}
	if a := short.BitAccuracy([]bool{true, true}); a != 0.5 {
		t.Errorf("short trace accuracy = %v", a)
	}
}

// Property: a co-located spy recovers arbitrary secrets of any length.
func TestExtractionProperty(t *testing.T) {
	pl, dc := testWorld(t, 4)
	victim, spy, _ := colocatedPair(t, dc)
	f := func(raw uint16, lenRaw uint8) bool {
		n := int(lenRaw%12) + 4
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = raw&(1<<uint(i%16)) != 0
		}
		sched := Schedule{
			Start:      pl.Now().Add(100 * time.Millisecond),
			SlotLength: 50 * time.Millisecond,
			Bits:       bits,
		}
		victim.SetWorkload(sched.Activity())
		trace, err := Monitor(pl.Scheduler(), spy, sched, DefaultMonitorConfig())
		if err != nil {
			return false
		}
		return trace.BitAccuracy(bits) >= 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpySelect(t *testing.T) {
	_, dc := testWorld(t, 5)
	insts, err := dc.Account("a").DeployService("s", faas.ServiceConfig{}).Launch(4)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 2, 1}
	victimLabels := map[int]bool{1: true}
	spies := SpySelect(insts, labels, len(insts), victimLabels)
	if len(spies) != 2 || spies[0] != insts[1] || spies[1] != insts[3] {
		t.Errorf("SpySelect returned %d spies", len(spies))
	}
}
