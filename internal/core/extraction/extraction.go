// Package extraction demonstrates step 2 of the threat model (§3): once the
// attacker is co-located with a victim instance, it can detect when the
// victim's program executes by monitoring contention on a shared hardware
// resource, and recover secret-dependent execution patterns.
//
// The demonstrator follows the structure of prior extraction work the paper
// builds on [25, 41, 54, 59, 68]: the victim's sensitive routine encodes a
// secret in its execution timing (here, literally: one bit per time slot —
// run or don't run, the simplest secret-dependent control flow). The
// co-located attacker samples host contention each slot and reconstructs the
// bit string. Against a non-co-located attacker the same monitor reads only
// background noise, which is the point: co-location is the step that makes
// extraction possible at all.
package extraction

import (
	"fmt"
	"time"

	"eaao/internal/faas"
	"eaao/internal/simtime"
)

// Schedule describes a victim that executes secret-dependent work: during
// slot i (each SlotLength long, starting at Start), the victim's routine
// runs if and only if Bits[i] is set.
type Schedule struct {
	Start      simtime.Time
	SlotLength time.Duration
	Bits       []bool
}

// Activity returns the workload predicate implementing the schedule, for
// Instance.SetWorkload.
func (s Schedule) Activity() func(simtime.Time) bool {
	return func(now simtime.Time) bool {
		if now.Before(s.Start) {
			return false
		}
		slot := int(now.Sub(s.Start) / s.SlotLength)
		return slot < len(s.Bits) && s.Bits[slot]
	}
}

// End returns the instant the schedule finishes.
func (s Schedule) End() simtime.Time {
	return s.Start.Add(time.Duration(len(s.Bits)) * s.SlotLength)
}

// MonitorConfig tunes the attacker's contention monitor.
type MonitorConfig struct {
	// SamplesPerSlot is how many contention probes are taken per slot.
	SamplesPerSlot int
	// VoteThreshold is how many positive probes make a slot read as 1.
	// With background activity under 1% per probe, a majority vote over a
	// handful of samples suppresses noise completely.
	VoteThreshold int
}

// DefaultMonitorConfig samples 8 times per slot and requires 4 positives.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{SamplesPerSlot: 8, VoteThreshold: 4}
}

// Trace is the attacker's reconstruction of the victim's activity.
type Trace struct {
	// Bits is the recovered bit string, one per slot.
	Bits []bool
	// Samples is the total number of contention probes taken.
	Samples int
}

// BitAccuracy compares a trace against the true secret, returning the
// fraction of matching bits.
func (t Trace) BitAccuracy(truth []bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := len(truth)
	if len(t.Bits) < n {
		n = len(t.Bits)
	}
	match := 0
	for i := 0; i < n; i++ {
		if t.Bits[i] == truth[i] {
			match++
		}
	}
	return float64(match) / float64(len(truth))
}

// Monitor runs the attacker's spy loop: from the given instance, it probes
// host contention throughout the schedule's span and reconstructs one bit
// per slot. It advances the virtual clock to the schedule's end. The monitor
// works purely from guest-observable state — it has no idea whether the spy
// instance actually shares the victim's host; that is what the recovered
// trace reveals.
func Monitor(sched *simtime.Scheduler, spy *faas.Instance, s Schedule, cfg MonitorConfig) (Trace, error) {
	if cfg.SamplesPerSlot <= 0 || cfg.VoteThreshold <= 0 || cfg.VoteThreshold > cfg.SamplesPerSlot {
		return Trace{}, fmt.Errorf("extraction: invalid monitor config %+v", cfg)
	}
	if len(s.Bits) == 0 {
		return Trace{}, fmt.Errorf("extraction: empty schedule")
	}
	if sched.Now().After(s.Start) {
		return Trace{}, fmt.Errorf("extraction: schedule started in the past")
	}
	sched.RunUntil(s.Start)

	step := s.SlotLength / time.Duration(cfg.SamplesPerSlot+1)
	trace := Trace{Bits: make([]bool, len(s.Bits))}
	for slot := range s.Bits {
		votes := 0
		for probe := 0; probe < cfg.SamplesPerSlot; probe++ {
			sched.Advance(step)
			units, err := faas.ProbeContention(spy)
			if err != nil {
				return Trace{}, err
			}
			if units > 0 {
				votes++
			}
			trace.Samples++
		}
		trace.Bits[slot] = votes >= cfg.VoteThreshold
		// Align to the start of the next slot.
		next := s.Start.Add(time.Duration(slot+1) * s.SlotLength)
		if next.After(sched.Now()) {
			sched.RunUntil(next)
		}
	}
	return trace, nil
}

// SpySelect picks, from the attacker's live instances, those co-located with
// any of the given victim instances according to verified cluster labels
// (produced by the coloc package): the instances worth spying from.
func SpySelect(attacker []*faas.Instance, labels []int, attackerCount int, victimLabels map[int]bool) []*faas.Instance {
	var out []*faas.Instance
	for i := 0; i < attackerCount && i < len(attacker); i++ {
		if victimLabels[labels[i]] {
			out = append(out, attacker[i])
		}
	}
	return out
}
