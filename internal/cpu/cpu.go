// Package cpu models the processor information a FaaS guest can observe
// through the unprivileged cpuid instruction: the brand (model-name) string,
// the labeled base frequency embedded in it, and the cache hierarchy.
//
// On Cloud Run, cpuid does not report the TSC frequency directly; the paper's
// method 1 (§4.2) therefore parses the labeled base frequency out of the
// model-name string (e.g. "Intel(R) Xeon(R) CPU @ 2.00GHz" → 2.00 GHz) and
// uses it as the reported TSC frequency. ParseBaseFrequency implements that
// parsing and the catalog lists the fleet mix the simulator draws hosts from.
package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Model describes one CPU SKU as visible to a guest.
type Model struct {
	// Name is the brand string returned by cpuid leaves 0x80000002-4,
	// including the labeled base frequency suffix.
	Name string
	// BaseHz is the labeled base frequency in Hz, as parsed from Name. The
	// nominal TSC frequency equals the base frequency on every model the
	// paper observed in Cloud Run.
	BaseHz float64
	// Cores is the number of physical cores per socket.
	Cores int
	// Sockets is the number of sockets on the host.
	Sockets int
	// L1DBytes is the per-core L1 data cache size.
	L1DBytes int64
	// L2Bytes is the per-core L2 cache size.
	L2Bytes int64
	// L3Bytes is the size of the last-level cache per socket.
	L3Bytes int64
	// CacheLineBytes is the cache line size (64 on every x86 server part).
	CacheLineBytes int
}

// Vendor returns "GenuineIntel" or "AuthenticAMD" as cpuid leaf 0 would.
func (m Model) Vendor() string {
	if strings.Contains(m.Name, "AMD") {
		return "AuthenticAMD"
	}
	return "GenuineIntel"
}

// TotalCores returns physical cores across all sockets.
func (m Model) TotalCores() int { return m.Cores * m.Sockets }

// ReportedTSCHz returns the TSC frequency the guest infers for this model:
// cpuid does not expose it, so the labeled base frequency is used (method 1
// of §4.2).
func (m Model) ReportedTSCHz() float64 { return m.BaseHz }

// String returns the model name.
func (m Model) String() string { return m.Name }

// ParseBaseFrequency extracts the labeled frequency (in Hz) from a CPU brand
// string such as "Intel(R) Xeon(R) CPU @ 2.00GHz". It returns an error when
// no frequency suffix is present.
func ParseBaseFrequency(name string) (float64, error) {
	at := strings.LastIndex(name, "@")
	if at < 0 {
		return 0, fmt.Errorf("cpu: no frequency label in %q", name)
	}
	label := strings.TrimSpace(name[at+1:])
	var mult float64
	switch {
	case strings.HasSuffix(label, "GHz"):
		mult = 1e9
		label = strings.TrimSuffix(label, "GHz")
	case strings.HasSuffix(label, "MHz"):
		mult = 1e6
		label = strings.TrimSuffix(label, "MHz")
	default:
		return 0, fmt.Errorf("cpu: unrecognized frequency unit in %q", name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(label), 64)
	if err != nil {
		return 0, fmt.Errorf("cpu: bad frequency value in %q: %w", name, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("cpu: non-positive frequency in %q", name)
	}
	return v * mult, nil
}

// mustModel builds a Model, panicking if the name does not carry a parseable
// frequency label; the catalog below is static so a panic is a compile-time
// style invariant.
func mustModel(name string, cores, sockets int, l1d, l2, l3 int64) Model {
	hz, err := ParseBaseFrequency(name)
	if err != nil {
		panic(err)
	}
	return Model{
		Name: name, BaseHz: hz,
		Cores: cores, Sockets: sockets,
		L1DBytes: l1d, L2Bytes: l2, L3Bytes: l3,
		CacheLineBytes: 64,
	}
}

// Catalog is the fleet mix the simulator draws physical hosts from. Cloud Run
// machines advertise anonymized brand strings of exactly this shape ("Intel
// Xeon CPU @ 2.00GHz" etc.); frequencies and cache sizes correspond to the
// Skylake/Cascade Lake/Milan parts common in Google's fleet.
var Catalog = []Model{
	// Intel parts: 32 KiB L1D, 1 MiB L2 (Skylake+) / 256 KiB (Broadwell).
	mustModel("Intel(R) Xeon(R) CPU @ 2.00GHz", 28, 2, 32<<10, 1<<20, 38_5*1024*1024/10), // Skylake-SP class
	mustModel("Intel(R) Xeon(R) CPU @ 2.20GHz", 24, 2, 32<<10, 256<<10, 33*1024*1024),    // Broadwell class
	mustModel("Intel(R) Xeon(R) CPU @ 2.80GHz", 26, 2, 32<<10, 1<<20, 39*1024*1024),      // Cascade Lake class
	// AMD EPYC: 32 KiB L1D, 512 KiB L2, 16 MiB L3 per CCX (256 MiB total).
	mustModel("AMD EPYC 7B12 @ 2.25GHz", 32, 2, 32<<10, 512<<10, 256*1024*1024), // Rome class
	mustModel("AMD EPYC 7B13 @ 2.45GHz", 32, 2, 32<<10, 512<<10, 256*1024*1024), // Milan class
}

// DefaultFleetWeights gives the probability weight of each Catalog entry when
// sampling hosts. Intel parts dominate the observed Cloud Run fleet.
var DefaultFleetWeights = []float64{0.35, 0.15, 0.25, 0.15, 0.10}

// ByName returns the catalog model with the given name.
func ByName(name string) (Model, bool) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
