package cpu

import (
	"math"
	"testing"
)

func TestParseBaseFrequency(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"Intel(R) Xeon(R) CPU @ 2.00GHz", 2.00e9},
		{"Intel(R) Xeon(R) CPU @ 2.20GHz", 2.20e9},
		{"AMD EPYC 7B12 @ 2.25GHz", 2.25e9},
		{"Some CPU @ 800MHz", 800e6},
		{"Weird @ spacing @  3.5GHz", 3.5e9},
	}
	for _, c := range cases {
		got, err := ParseBaseFrequency(c.name)
		if err != nil {
			t.Errorf("%q: %v", c.name, err)
			continue
		}
		if math.Abs(got-c.want) > 1 {
			t.Errorf("%q: got %v Hz, want %v", c.name, got, c.want)
		}
	}
}

func TestParseBaseFrequencyErrors(t *testing.T) {
	for _, name := range []string{
		"Intel Xeon without frequency",
		"CPU @ 2.00THz",
		"CPU @ fastGHz",
		"CPU @ -2.0GHz",
		"CPU @ 0GHz",
	} {
		if _, err := ParseBaseFrequency(name); err == nil {
			t.Errorf("%q: expected error", name)
		}
	}
}

func TestCatalogConsistent(t *testing.T) {
	if len(Catalog) == 0 {
		t.Fatal("empty catalog")
	}
	if len(DefaultFleetWeights) != len(Catalog) {
		t.Fatalf("weights (%d) and catalog (%d) length mismatch",
			len(DefaultFleetWeights), len(Catalog))
	}
	seen := make(map[string]bool)
	for i, m := range Catalog {
		if seen[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if m.BaseHz <= 0 {
			t.Errorf("%q: non-positive BaseHz", m.Name)
		}
		if m.ReportedTSCHz() != m.BaseHz {
			t.Errorf("%q: reported TSC %v != base %v", m.Name, m.ReportedTSCHz(), m.BaseHz)
		}
		if m.Cores <= 0 || m.Sockets <= 0 || m.L3Bytes <= 0 {
			t.Errorf("%q: invalid topology %+v", m.Name, m)
		}
		if DefaultFleetWeights[i] <= 0 {
			t.Errorf("%q: non-positive fleet weight", m.Name)
		}
		// The parsed frequency must round-trip from the name.
		hz, err := ParseBaseFrequency(m.Name)
		if err != nil || hz != m.BaseHz {
			t.Errorf("%q: frequency does not round-trip: %v %v", m.Name, hz, err)
		}
	}
}

func TestByName(t *testing.T) {
	m, ok := ByName(Catalog[0].Name)
	if !ok || m.Name != Catalog[0].Name {
		t.Errorf("ByName(%q) failed", Catalog[0].Name)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName of unknown model succeeded")
	}
}

func TestVendor(t *testing.T) {
	for _, m := range Catalog {
		v := m.Vendor()
		if v != "GenuineIntel" && v != "AuthenticAMD" {
			t.Errorf("%q: vendor %q", m.Name, v)
		}
	}
	intel, _ := ByName("Intel(R) Xeon(R) CPU @ 2.00GHz")
	if intel.Vendor() != "GenuineIntel" {
		t.Error("Intel part misvendored")
	}
	amd, _ := ByName("AMD EPYC 7B12 @ 2.25GHz")
	if amd.Vendor() != "AuthenticAMD" {
		t.Error("AMD part misvendored")
	}
}

func TestCacheHierarchy(t *testing.T) {
	for _, m := range Catalog {
		if m.L1DBytes <= 0 || m.L2Bytes <= 0 || m.L3Bytes <= 0 {
			t.Errorf("%q: missing cache sizes", m.Name)
		}
		if !(m.L1DBytes < m.L2Bytes && m.L2Bytes < m.L3Bytes) {
			t.Errorf("%q: cache sizes not ascending: %d %d %d",
				m.Name, m.L1DBytes, m.L2Bytes, m.L3Bytes)
		}
		if m.CacheLineBytes != 64 {
			t.Errorf("%q: cache line %d", m.Name, m.CacheLineBytes)
		}
		if m.TotalCores() != m.Cores*m.Sockets {
			t.Errorf("%q: TotalCores wrong", m.Name)
		}
	}
}
