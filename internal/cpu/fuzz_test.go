package cpu

import "testing"

// FuzzParseBaseFrequency checks the brand-string parser never panics and
// only accepts positive frequencies.
func FuzzParseBaseFrequency(f *testing.F) {
	for _, m := range Catalog {
		f.Add(m.Name)
	}
	f.Add("CPU @ GHz")
	f.Add("@")
	f.Add("")
	f.Add("CPU @ 1e309GHz")
	f.Add("CPU @ -0GHz")
	f.Fuzz(func(t *testing.T, name string) {
		hz, err := ParseBaseFrequency(name)
		if err == nil && hz <= 0 {
			t.Errorf("accepted non-positive frequency %v from %q", hz, name)
		}
	})
}
