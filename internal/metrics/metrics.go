// Package metrics implements pair-counting clustering metrics used to score
// host fingerprints against ground-truth co-location (§4.4.1 of the paper):
// precision, recall, and the Fowlkes–Mallows index (FMI).
//
// A "positive" is a pair of instances with matching fingerprints; it is true
// if the pair is really co-located on the same host. Counting is done through
// a contingency table, which is O(N + K²) in the worst case rather than the
// O(N²) of explicit pair enumeration, so scoring 800-instance launches is
// cheap.
package metrics

import "math"

// PairCounts holds the four pair-classification counters over all unordered
// instance pairs.
type PairCounts struct {
	TP int64 // matching fingerprints, truly co-located
	FP int64 // matching fingerprints, different hosts
	TN int64 // different fingerprints, different hosts
	FN int64 // different fingerprints, truly co-located
}

// choose2 returns C(n, 2).
func choose2(n int64) int64 { return n * (n - 1) / 2 }

// CountPairs classifies every unordered pair of elements given a predicted
// labeling and a true labeling. The two slices must have equal length; the
// label values themselves carry no meaning beyond equality. It panics on a
// length mismatch because the inputs come from the same instance list and a
// mismatch is always a caller bug.
func CountPairs[L1, L2 comparable](predicted []L1, truth []L2) PairCounts {
	if len(predicted) != len(truth) {
		panic("metrics: CountPairs length mismatch")
	}
	n := int64(len(predicted))

	// Contingency table: cell[(p,t)] = #elements with predicted label p and
	// true label t.
	type key struct {
		p L1
		t L2
	}
	cells := make(map[key]int64)
	predSizes := make(map[L1]int64)
	truthSizes := make(map[L2]int64)
	for i := range predicted {
		cells[key{predicted[i], truth[i]}]++
		predSizes[predicted[i]]++
		truthSizes[truth[i]]++
	}

	var tp int64
	for _, c := range cells {
		tp += choose2(c)
	}
	var predPos int64 // pairs with matching predicted label
	for _, c := range predSizes {
		predPos += choose2(c)
	}
	var truthPos int64 // pairs truly co-located
	for _, c := range truthSizes {
		truthPos += choose2(c)
	}

	fp := predPos - tp
	fn := truthPos - tp
	tn := choose2(n) - tp - fp - fn
	return PairCounts{TP: tp, FP: fp, TN: tn, FN: fn}
}

// Total returns the number of classified pairs.
func (c PairCounts) Total() int64 { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP). With no positive predictions it returns 1:
// a labeling that predicts no co-location makes no false claims.
func (c PairCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN). With no truly co-located pairs it returns 1.
func (c PairCounts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FMI returns the Fowlkes–Mallows index, the geometric mean of precision and
// recall. It ranges over [0, 1]; 1 means the predicted clustering matches the
// ground truth perfectly.
func (c PairCounts) FMI() float64 {
	return math.Sqrt(c.Precision() * c.Recall())
}

// Perfect reports whether the clustering has no false positives and no false
// negatives.
func (c PairCounts) Perfect() bool { return c.FP == 0 && c.FN == 0 }

// Score bundles the three headline numbers for reporting.
type Score struct {
	Precision float64
	Recall    float64
	FMI       float64
}

// ScoreOf computes the Score for a predicted labeling against ground truth.
func ScoreOf[L1, L2 comparable](predicted []L1, truth []L2) Score {
	c := CountPairs(predicted, truth)
	return Score{Precision: c.Precision(), Recall: c.Recall(), FMI: c.FMI()}
}
