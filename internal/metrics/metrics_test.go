package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveCounts is the O(N²) reference implementation.
func naiveCounts(predicted, truth []int) PairCounts {
	var c PairCounts
	for i := 0; i < len(predicted); i++ {
		for j := i + 1; j < len(predicted); j++ {
			samePred := predicted[i] == predicted[j]
			sameTruth := truth[i] == truth[j]
			switch {
			case samePred && sameTruth:
				c.TP++
			case samePred && !sameTruth:
				c.FP++
			case !samePred && sameTruth:
				c.FN++
			default:
				c.TN++
			}
		}
	}
	return c
}

func TestPerfectClustering(t *testing.T) {
	pred := []string{"a", "a", "b", "b", "c"}
	truth := []int{1, 1, 2, 2, 3}
	c := CountPairs(pred, truth)
	if !c.Perfect() {
		t.Fatalf("perfect clustering misclassified: %+v", c)
	}
	if c.TP != 2 || c.TN != 8 {
		t.Errorf("counts = %+v, want TP=2 TN=8", c)
	}
	if c.FMI() != 1 {
		t.Errorf("FMI = %v, want 1", c.FMI())
	}
}

func TestAllMergedPrediction(t *testing.T) {
	// Fingerprint collapses everything into one cluster: recall perfect,
	// precision poor.
	pred := []int{0, 0, 0, 0}
	truth := []int{1, 1, 2, 2}
	c := CountPairs(pred, truth)
	if c.Recall() != 1 {
		t.Errorf("recall = %v, want 1", c.Recall())
	}
	if want := 2.0 / 6.0; c.Precision() != want {
		t.Errorf("precision = %v, want %v", c.Precision(), want)
	}
}

func TestAllSplitPrediction(t *testing.T) {
	// Every instance gets a unique fingerprint: precision is vacuously 1,
	// recall is 0.
	pred := []int{0, 1, 2, 3}
	truth := []int{1, 1, 1, 1}
	c := CountPairs(pred, truth)
	if c.Precision() != 1 {
		t.Errorf("precision = %v, want 1 (no positive predictions)", c.Precision())
	}
	if c.Recall() != 0 {
		t.Errorf("recall = %v, want 0", c.Recall())
	}
	if c.FMI() != 0 {
		t.Errorf("FMI = %v, want 0", c.FMI())
	}
}

func TestKnownFMI(t *testing.T) {
	// Hand-computed example: 6 elements.
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 0}
	c := CountPairs(pred, truth)
	// pred pairs: 3+3=6 positives. truth clusters {0,0,x(5)}: sizes 3,3 → 6.
	// TP: cells (0,0)=2,(0,1)=1,(1,1)=2,(1,0)=1 → C(2,2)*2 = 2.
	if c.TP != 2 || c.FP != 4 || c.FN != 4 {
		t.Fatalf("counts = %+v", c)
	}
	wantFMI := math.Sqrt((2.0 / 6.0) * (2.0 / 6.0))
	if math.Abs(c.FMI()-wantFMI) > 1e-12 {
		t.Errorf("FMI = %v, want %v", c.FMI(), wantFMI)
	}
}

func TestTotalPairs(t *testing.T) {
	pred := make([]int, 100)
	truth := make([]int, 100)
	for i := range pred {
		pred[i] = i % 7
		truth[i] = i % 13
	}
	c := CountPairs(pred, truth)
	if c.Total() != 100*99/2 {
		t.Errorf("Total = %d, want %d", c.Total(), 100*99/2)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	CountPairs([]int{1, 2}, []int{1})
}

// Property: the contingency-table implementation agrees with the naive O(N²)
// pair enumeration on random labelings.
func TestAgainstNaiveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		rng := rand.New(rand.NewSource(seed))
		pred := make([]int, n)
		truth := make([]int, n)
		for i := 0; i < n; i++ {
			pred[i] = rng.Intn(5)
			truth[i] = rng.Intn(5)
		}
		return CountPairs(pred, truth) == naiveCounts(pred, truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: metrics are always within [0, 1] and FMI is the geometric mean of
// precision and recall.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		pred := make([]int, n)
		truth := make([]int, n)
		for i := 0; i < n; i++ {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(4)
		}
		c := CountPairs(pred, truth)
		p, r, f1 := c.Precision(), c.Recall(), c.FMI()
		if p < 0 || p > 1 || r < 0 || r > 1 || f1 < 0 || f1 > 1 {
			return false
		}
		return math.Abs(f1-math.Sqrt(p*r)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreOf(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	truth := []int{0, 0, 1, 1}
	s := ScoreOf(pred, truth)
	if s.Precision != 1 || s.Recall != 1 || s.FMI != 1 {
		t.Errorf("ScoreOf perfect clustering = %+v", s)
	}
}
