package experiments

import (
	"strings"

	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// runPolicyAblation reruns the optimized attack of §5.2 under each built-in
// placement policy in an otherwise identical world: the calibrated CloudRun
// extraction, the §6 random-uniform scheduling defense, and a least-loaded
// bin-packer. It reports the attacker's apparent footprint, verified victim
// coverage, the covert-channel verification budget that coverage consumed,
// and the victim's cold-host fraction (the image-locality price a policy
// makes ordinary tenants pay). A bounded placement trace is installed on
// each world to audit the decision stream the policy produced.
func runPolicyAblation(ctx Context) (*Result, error) {
	d, _ := ByID("policyablation")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}

	policies := faas.Policies()
	type row struct {
		footprint   int
		cov         attack.Coverage
		coldFrac    float64
		traceBatch  int
		traceHosts  float64
		traceDrop   uint64
		traceEvents int
	}
	// All rows share one world seed so the comparison is controlled: the
	// policy is the only difference (the trial sub-seed is deliberately
	// unused).
	rows, err := runTrials(ctx, len(policies), func(t Trial) (row, error) {
		p := ablationProfile()
		p.Policy = policies[t.Index]
		pl := forkPlatform(ctx.Seed+21, p)
		dc := pl.MustRegion("ablation")
		ring := faas.NewTraceRing(4096)
		dc.SetPlacementTracer(ring)

		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		camp, err := launchCampaign(dc, "attacker", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return row{}, err
		}

		vicSvc, vic, err := coldVictim(dc, "victim", "v", faas.ServiceConfig{}, 60, 3)
		if err != nil {
			return row{}, err
		}

		cov, _, err := camp.Verify(vic)
		if err != nil {
			return row{}, err
		}

		batches, hostSum := 0, 0
		for _, ev := range ring.Events() {
			if ev.Kind == faas.TracePlace {
				batches++
				hostSum += ev.Hosts
			}
		}
		meanHosts := 0.0
		if batches > 0 {
			meanHosts = float64(hostSum) / float64(batches)
		}
		return row{
			footprint:   camp.Stats().ApparentHosts,
			cov:         cov,
			coldFrac:    vicSvc.ColdHostFraction(),
			traceBatch:  batches,
			traceHosts:  meanHosts,
			traceDrop:   ring.Dropped(),
			traceEvents: ring.Len(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Placement-policy ablation: optimized attack per policy",
		"policy", "attacker footprint", "victim coverage", "verify tests", "victim cold-host frac")
	trc := report.NewTable("Placement trace (bounded ring, capacity 4096)",
		"policy", "events retained", "events dropped", "place batches", "mean hosts/batch")
	for i, pol := range policies {
		r := rows[i]
		key := strings.ReplaceAll(pol.Name(), "-", "_")
		tbl.AddRow(pol.Name(), r.footprint, r.cov.Fraction(), r.cov.Tests, r.coldFrac)
		trc.AddRow(pol.Name(), r.traceEvents, r.traceDrop, r.traceBatch, r.traceHosts)
		res.Metrics["coverage_"+key] = r.cov.Fraction()
		res.Metrics["footprint_"+key] = float64(r.footprint)
		res.Metrics["verify_tests_"+key] = float64(r.cov.Tests)
		res.Metrics["coldfrac_"+key] = r.coldFrac
	}
	res.Tables = append(res.Tables, tbl, trc)

	res.note("same world seed per row; the placement policy is the only variable")
	res.note("random-uniform removes the base/helper structure the optimized attack exploits (§6): coverage collapses while the victim's cold-host fraction — every launch mostly image-cold — is the defense's operational price")
	res.note("least-loaded has no per-account affinity to learn, and an attacker holding instances actively repels later launches: the victim lands on the hosts the attacker left emptiest — co-location would require launching alongside the victim, not ahead of it")
	return res, nil
}
