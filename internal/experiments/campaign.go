package experiments

import (
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/sandbox"
)

// launchCampaign builds a campaign for the named account on the region and
// runs its launch stage. The returned campaign carries the footprint, the
// cost ledger, and an instrumented covert tester for verification — the
// attacker/tester wiring every coverage experiment used to assemble by hand.
//
// Since the fleet refactor this rides the sharded code path: the region is
// wrapped into a one-shard fleet and driven by the planner that reproduces
// the strategy's own continue/stop rule, which the golden-digest test pins
// as byte-identical to the legacy single-region campaign. Trial jobs run
// inside the experiments' own worker pool, so the shard pool stays at one.
func launchCampaign(dc *faas.DataCenter, account string, cfg attack.Config,
	strategy attack.LaunchStrategy, gen sandbox.Gen) (*attack.Campaign, error) {
	fleet, err := faas.FleetOf(dc)
	if err != nil {
		return nil, err
	}
	fc, err := attack.NewFleetCampaign(fleet, account, cfg, gen, strategy, nil)
	if err != nil {
		return nil, err
	}
	fc.SetJobs(1)
	if err := fc.Launch(); err != nil {
		return nil, err
	}
	return fc.Shard(dc.Region()), nil
}

// attackerCampaign is launchCampaign at this context's standard campaign
// scale (attackCfg), the setup shared by fig11, fig12, and the extension
// experiments.
func (c Context) attackerCampaign(dc *faas.DataCenter, account string,
	strategy attack.LaunchStrategy, gen sandbox.Gen) (*attack.Campaign, error) {
	return launchCampaign(dc, account, c.attackCfg(), strategy, gen)
}

// coldVictim deploys a victim service and launches it launches times with
// 45-minute disconnected gaps in between, so the final set — the one
// returned — is measured in placement steady state rather than dominated by
// the unavoidable first cold launch.
func coldVictim(dc *faas.DataCenter, account, service string, cfg faas.ServiceConfig,
	n, launches int) (*faas.Service, []*faas.Instance, error) {
	svc := dc.Account(account).DeployService(service, cfg)
	var vic []*faas.Instance
	var err error
	for l := 0; l < launches; l++ {
		vic, err = svc.Launch(n)
		if err != nil {
			return nil, nil, err
		}
		if l < launches-1 {
			svc.Disconnect()
			dc.Scheduler().Advance(45 * time.Minute)
		}
	}
	return svc, vic, nil
}
