package experiments

import (
	"errors"
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// faultVariant is one curve of the fault sweep: a launch strategy plus a
// hardening level.
type faultVariant struct {
	name     string
	strategy attack.LaunchStrategy
	hardened bool
}

// faultVariants returns the sweep's curves: every built-in strategy with the
// full fault-recovery budget, plus the optimized strategy with every budget
// zeroed — the before/after pair the hardening is judged by.
func faultVariants() []faultVariant {
	return []faultVariant{
		{name: "naive", strategy: attack.NaiveStrategy{}, hardened: true},
		{name: "optimized", strategy: attack.OptimizedStrategy{}, hardened: true},
		{name: "adaptive", strategy: attack.AdaptiveStrategy{}, hardened: true},
		{name: "optimized-raw", strategy: attack.OptimizedStrategy{}, hardened: false},
	}
}

// hardenedBudgets is the fault-recovery configuration the sweep's hardened
// curves run with.
func hardenedBudgets(cfg *attack.Config) {
	cfg.LaunchRetries = 4
	cfg.RetryBackoff = 30 * time.Second
	cfg.VoteBudget = 3
	cfg.ProbeRetryBudget = 3
}

// faultLevels is the injected uniform fault-level sweep. Level 0.05 is the
// acceptance point: 5% launch faults, 2% channel misfire, 2.5% probe faults
// (see faas.UniformFaultPlan).
func (c Context) faultLevels() []float64 {
	if c.Quick {
		return []float64{0, 0.05}
	}
	return []float64{0, 0.02, 0.05, 0.10, 0.20}
}

// runFaultSweep measures victim coverage and attack cost as a function of
// the injected fault level, for each launch strategy with the fault-recovery
// budgets on, and for the optimized strategy with them off. A campaign that
// dies to an unrecovered fault scores zero coverage — the run is lost, which
// is exactly what an unhardened pipeline buys on a flaky cloud — while the
// hardened curves show what the recovery spend (retries, re-votes, backoff
// dollars) bought back.
func runFaultSweep(ctx Context) (*Result, error) {
	d, _ := ByID("faultsweep")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}
	levels := ctx.faultLevels()
	variants := faultVariants()

	type unit struct {
		level   float64
		variant faultVariant
	}
	var units []unit
	for _, level := range levels {
		for _, v := range variants {
			units = append(units, unit{level, v})
		}
	}

	type point struct {
		st     attack.CampaignStats
		cov    attack.Coverage
		failed bool // campaign died to an unrecovered injected fault
	}
	// All units share one world seed: like the strategy ablation, the fault
	// level and the hardening are the only variables (the trial sub-seed is
	// deliberately unused).
	rows, err := runTrials(ctx, len(units), func(t Trial) (point, error) {
		u := units[t.Index]
		prof := ablationProfile()
		prof.Faults = faas.UniformFaultPlan(u.level)
		pl := forkPlatform(ctx.Seed+31, prof)
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 6
		cfg.Channel = ctx.Channel
		if u.variant.hardened {
			hardenedBudgets(&cfg)
		}
		camp, err := launchCampaign(dc, "attacker", cfg, u.variant.strategy, sandbox.Gen1)
		if err != nil {
			if injectedFault(err) {
				return point{failed: true}, nil
			}
			return point{}, err
		}
		_, vic, err := faultTolerantVictim(dc, "victim", "v", 60, 3)
		if err != nil {
			return point{}, err
		}
		cov, _, err := camp.Verify(vic)
		if err != nil {
			if injectedFault(err) {
				return point{st: camp.Stats(), failed: true}, nil
			}
			return point{}, err
		}
		return point{st: camp.Stats(), cov: cov}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Fault sweep: coverage and cost vs injected fault level",
		"fault level", "variant", "coverage", "USD", "launch retries", "re-votes",
		"probe retries+skips", "fault USD")
	fig := &report.Figure{
		ID:     "faultsweep",
		Title:  "Victim coverage vs injected fault level",
		XLabel: "uniform fault level",
		YLabel: "victim coverage",
	}
	zeroCov := make(map[string]float64)
	for i, u := range units {
		p := rows[i]
		cov := p.cov.Fraction()
		status := ""
		if p.failed {
			cov = 0
			status = " (died)"
		}
		if u.level == 0 {
			zeroCov[u.variant.name] = cov
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%%s", 100*u.level, status), u.variant.name, cov,
			p.st.USD, p.st.LaunchRetries, p.st.ReVotes,
			p.st.ProbeRetries+p.st.ProbeSkips, p.st.FaultUSD)
		key := fmt.Sprintf("%s_f%.0f", u.variant.name, 100*u.level)
		res.Metrics["cov_"+key] = cov
		res.Metrics["usd_"+key] = p.st.USD
		res.Metrics["faultusd_"+key] = p.st.FaultUSD
		if base := zeroCov[u.variant.name]; base > 0 && u.level > 0 {
			res.Metrics["retention_"+key] = cov / base
		}
	}
	for _, v := range variants {
		var xs, ys []float64
		for i, u := range units {
			if u.variant.name != v.name {
				continue
			}
			cov := rows[i].cov.Fraction()
			if rows[i].failed {
				cov = 0
			}
			xs = append(xs, u.level)
			ys = append(ys, cov)
		}
		fig.AddSeries(v.name, xs, ys)
	}
	res.Tables = append(res.Tables, tbl)
	res.Figures = append(res.Figures, fig)

	res.note("same world seed per cell; fault level and hardening are the only variables")
	res.note("hardened budgets: %d launch retries (30s backoff), vote budget 3, probe retry budget 3; optimized-raw zeroes all of them, so its first unrecovered fault kills the campaign", 4)
	return res, nil
}

// injectedFault reports whether an error chain bottoms out in one of the
// fault plane's injected failures (as opposed to a programming error, which
// must fail the experiment).
func injectedFault(err error) bool {
	return errors.Is(err, faas.ErrLaunchFault) || errors.Is(err, sandbox.ErrProbeFault)
}

// faultTolerantVictim is coldVictim for a faulted world: the victim tenant's
// deploy tooling retries transient launch rejections like any production
// pipeline, so victim existence is part of the environment rather than a
// casualty of the sweep. Retries advance the clock by the same backoff a
// real control plane would impose.
func faultTolerantVictim(dc *faas.DataCenter, account, service string,
	n, launches int) (*faas.Service, []*faas.Instance, error) {
	svc := dc.Account(account).DeployService(service, faas.ServiceConfig{})
	var vic []*faas.Instance
	for l := 0; l < launches; l++ {
		var err error
		vic, err = svc.Launch(n)
		for tries := 0; err != nil && errors.Is(err, faas.ErrLaunchFault) && tries < 8; tries++ {
			dc.Scheduler().Advance(15 * time.Second)
			vic, err = svc.Launch(n)
		}
		if err != nil {
			return nil, nil, err
		}
		if l < launches-1 {
			svc.Disconnect()
			dc.Scheduler().Advance(45 * time.Minute)
		}
	}
	return svc, vic, nil
}
