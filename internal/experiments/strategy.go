package experiments

import (
	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// runStrategyAblation reruns the §5.2 campaign under every built-in launch
// strategy in an otherwise identical world, reporting coverage next to what
// the campaign ledger says each strategy paid for it: launch waves, billable
// vCPU-seconds and dollars, and the covert-channel verification budget. It is
// the attack-side twin of the placement-policy ablation: there the platform
// varies under a fixed attack, here the attack varies under a fixed platform.
func runStrategyAblation(ctx Context) (*Result, error) {
	d, _ := ByID("strategyablation")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}

	strategies := attack.Strategies()
	type row struct {
		st  attack.CampaignStats
		cov attack.Coverage
	}
	// All rows share one world seed so the comparison is controlled: the
	// launch strategy is the only difference (the trial sub-seed is
	// deliberately unused).
	rows, err := runTrials(ctx, len(strategies), func(t Trial) (row, error) {
		pl := forkPlatform(ctx.Seed+31, ablationProfile())
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 6
		camp, err := launchCampaign(dc, "attacker", cfg, strategies[t.Index], sandbox.Gen1)
		if err != nil {
			return row{}, err
		}
		_, vic, err := coldVictim(dc, "victim", "v", faas.ServiceConfig{}, 60, 3)
		if err != nil {
			return row{}, err
		}
		cov, _, err := camp.Verify(vic)
		if err != nil {
			return row{}, err
		}
		return row{camp.Stats(), cov}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Launch-strategy ablation: coverage vs cost per strategy",
		"strategy", "waves", "instances", "apparent hosts", "victim coverage", "USD", "CTests")
	for i, s := range strategies {
		r := rows[i]
		name := s.Name()
		tbl.AddRow(name, r.st.Waves, r.st.InstancesLaunched, r.st.ApparentHosts,
			r.cov.Fraction(), r.st.USD, r.st.CTests)
		res.Metrics["coverage_"+name] = r.cov.Fraction()
		res.Metrics["usd_"+name] = r.st.USD
		res.Metrics["waves_"+name] = float64(r.st.Waves)
		res.Metrics["footprint_"+name] = float64(r.st.ApparentHosts)
		res.Metrics["ctests_"+name] = float64(r.st.CTests)
	}
	res.Tables = append(res.Tables, tbl)

	res.note("same world seed per row; the launch strategy is the only variable")
	res.note("naive pays the least but reaches only accidental base-pool overlap; optimized pays for every priming round; adaptive stops paying once a round's marginal apparent-host yield drops below %.0f%% — the helper-unlock curve saturates, so the skipped rounds mostly re-walk known hosts", 100*attack.DefaultAdaptiveMinYield)
	return res, nil
}
