package experiments

import (
	"sync"
)

// This file is the deterministic trial-execution engine. Experiments express
// each independent unit of work — one (repetition × sweep point), building
// its own simulated world — as a closure; the engine fans the closures out
// over a bounded worker pool and merges results by job index, so the output
// is byte-identical to a strictly sequential run regardless of the worker
// count. The simulator itself stays single-threaded: parallelism exists only
// *between* worlds, never inside one.

// Trial identifies one unit of work in a trial set.
type Trial struct {
	// Index is the job's position in the set; results are merged in Index
	// order.
	Index int
	// Seed is a statistically independent sub-seed derived from the root
	// seed and Index via splitmix. Jobs that need a fresh world per trial
	// build it from this seed; jobs that sweep a parameter over a fixed
	// world (controlled comparisons) may ignore it and seed explicitly.
	Seed uint64
}

// splitmix derives the i-th sub-seed from a root seed using the SplitMix64
// finalizer. Consecutive indices land on Weyl-sequence increments of the
// root, so sub-seeds are statistically independent of each other and of the
// root while remaining a pure function of (root, i).
func splitmix(root uint64, i int) uint64 {
	z := root + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// runTrials executes fn for every index in [0, n) on at most ctx.jobs()
// workers and returns the results ordered by index. Each invocation receives
// the trial's index and sub-seed and must be self-contained (build its own
// platform, share no mutable state); under that contract the merged result
// is identical for any worker count. If any trial fails, the error of the
// lowest-indexed failing trial is returned — the same error a sequential run
// would surface first.
func runTrials[T any](ctx Context, n int, fn func(t Trial) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := ctx.jobs()
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := range out {
			v, err := fn(Trial{Index: i, Seed: splitmix(ctx.Seed, i)})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := fn(Trial{Index: i, Seed: splitmix(ctx.Seed, i)})
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Outcome pairs one experiment's result with its error.
type Outcome struct {
	ID  string
	Res *Result
	Err error
}

// RunAll executes the named experiments concurrently on the bounded trial
// pool and returns their outcomes in input order. Parallelism is spent
// *across* experiments here, so each experiment runs its own trials
// sequentially (Jobs = 1) and the total worker count stays bounded by
// ctx.jobs(). Failures are reported per experiment, never short-circuited.
func RunAll(ids []string, ctx Context) []Outcome {
	inner := ctx
	inner.Jobs = 1
	out, _ := runTrials(ctx, len(ids), func(t Trial) (Outcome, error) {
		res, err := Run(ids[t.Index], inner)
		return Outcome{ID: ids[t.Index], Res: res, Err: err}, nil
	})
	return out
}
