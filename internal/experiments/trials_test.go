package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRunTrialsPreservesOrder(t *testing.T) {
	for _, jobs := range []int{1, 4, 16} {
		ctx := Context{Jobs: jobs}
		got, err := runTrials(ctx, 37, func(tr Trial) (int, error) {
			return tr.Index * tr.Index, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != 37 {
			t.Fatalf("jobs=%d: got %d results, want 37", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunTrialsReturnsLowestIndexError(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		ctx := Context{Jobs: jobs}
		_, err := runTrials(ctx, 10, func(tr Trial) (int, error) {
			if tr.Index == 3 || tr.Index == 7 {
				return 0, fmt.Errorf("trial %d failed", tr.Index)
			}
			return tr.Index, nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: expected an error", jobs)
		}
		if got := err.Error(); got != "trial 3 failed" {
			t.Fatalf("jobs=%d: got error %q, want the lowest-index failure", jobs, got)
		}
	}
}

func TestSplitmixSubSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for _, root := range []uint64{0, 9, 42} {
		for i := 0; i < 1000; i++ {
			s := splitmix(root, i)
			if j, dup := seen[s]; dup {
				t.Fatalf("seed collision: (root=%d,i=%d) and earlier entry %d", root, i, j)
			}
			seen[s] = i
		}
	}
}

func TestRunAllReportsEveryOutcome(t *testing.T) {
	ids := []string{"verifycost", "no-such-experiment", "freq"}
	out := RunAll(ids, Context{Seed: 42, Quick: true, Jobs: 4})
	if len(out) != len(ids) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(ids))
	}
	for i, oc := range out {
		if oc.ID != ids[i] {
			t.Fatalf("outcome %d: id %q, want %q", i, oc.ID, ids[i])
		}
	}
	if out[0].Err != nil || out[0].Res == nil {
		t.Fatalf("verifycost should succeed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Fatal("unknown experiment should fail, not be dropped")
	}
	if out[2].Err != nil || out[2].Res == nil {
		t.Fatalf("freq should still run after an earlier failure: %v", out[2].Err)
	}
}

// stripTiming removes the wall-clock metric lines — the only output that
// legitimately differs between runs of the same seed.
func stripTiming(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "runtime_") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestParallelOutputByteIdentical is the engine's core guarantee: worker
// count must not influence any experiment output. Every trial derives its
// world from splitmix(root, index) and results merge by index, so jobs=8
// must reproduce jobs=1 byte for byte (timing metrics excluded).
func TestParallelOutputByteIdentical(t *testing.T) {
	for _, id := range []string{"fig4", "fig11a", "verifycost", "ablations", "faultsweep", "multiregion", "noisesweep"} {
		t.Run(id, func(t *testing.T) {
			seq, err := Run(id, Context{Seed: 42, Quick: true, Jobs: 1})
			if err != nil {
				t.Fatalf("jobs=1: %v", err)
			}
			par, err := Run(id, Context{Seed: 42, Quick: true, Jobs: 8})
			if err != nil {
				t.Fatalf("jobs=8: %v", err)
			}
			a, b := stripTiming(seq.String()), stripTiming(par.String())
			if a != b {
				t.Errorf("output differs between jobs=1 and jobs=8\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
			}
		})
	}
}

var errSentinel = errors.New("sentinel")

func TestRunTrialsSequentialStopsEarly(t *testing.T) {
	calls := 0
	_, err := runTrials(Context{Jobs: 1}, 10, func(tr Trial) (int, error) {
		calls++
		if tr.Index == 2 {
			return 0, errSentinel
		}
		return 0, nil
	})
	if !errors.Is(err, errSentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("sequential mode ran %d trials after the failure, want stop at 3", calls)
	}
}
