// Package experiments reproduces every table and figure of the paper's
// evaluation (§4.4, §4.5, §5.1, §5.2) against the simulated platform. Each
// experiment is registered under the paper artifact it regenerates ("fig4",
// "fig11a", "verifycost", ...) and returns structured figures, tables, and
// headline metrics; the eaao CLI prints them and the benchmark harness
// re-runs them per table/figure.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"eaao/internal/faas"
	"eaao/internal/report"
)

// Context carries the run configuration shared by all experiments.
type Context struct {
	// Seed is the root of all randomness; equal seeds reproduce runs
	// exactly.
	Seed uint64
	// Quick scales the study down (~4× smaller fleet, 200-instance
	// launches, single repetition) for tests and fast iteration. The full
	// scale matches the paper: 800-instance launches, 3 repetitions.
	Quick bool
	// Jobs bounds the worker count of the trial engine: independent
	// (repetition × sweep point) units run on at most Jobs workers, each
	// inside its own simulated world. 0 means runtime.NumCPU(); 1 runs
	// strictly sequentially. Results are merged by trial index, so every
	// value of Jobs produces byte-identical output (timing metrics aside).
	Jobs int
	// Policy, when non-nil, overrides the placement policy of every region
	// profile the experiments build (the CLI's -policy flag). nil keeps
	// each profile's own setting — the calibrated CloudRun behavior.
	Policy faas.PlacementPolicy
	// Faults, when enabled, is applied to every region profile the
	// experiments build (the CLI's -faults flag). The zero value leaves the
	// profiles fault-free — byte-identical to a build without the fault
	// plane. The faultsweep experiment ignores this and sweeps its own
	// plans.
	Faults faas.FaultPlan
	// LegacySweeps runs every region on the frozen pre-event-kernel
	// lifecycle implementation (hourly churn/preemption scans, launch-time
	// demand-decay detection). Only the legacy golden-digest test sets it:
	// it proves the historical behavior is still reachable byte for byte.
	LegacySweeps bool
	// Big upsizes the scale experiment to the million-instance headroom
	// configuration (80k-host region, 640 tenants; the CLI's -big flag).
	// Only scale reads it; every other experiment is unaffected.
	Big bool
	// Channel selects the covert channel campaigns verify with (the CLI's
	// -channel flag): "rng" (or empty — the paper's channel and the
	// byte-identical default), "llc", "membus", or "combined". Only
	// faultsweep reads it; channelablation sweeps every channel itself.
	Channel string
	// Load, when > 0, attaches background-tenant traffic at that target
	// utilization (one bystander tenant per host, faas.DefaultTrafficModel)
	// to every region profile the experiments build — the CLI's -load flag.
	// Zero keeps every region quiet, byte-identical to the seed era. The
	// noisesweep experiment ignores this and sweeps its own tiers.
	Load float64
}

// jobs resolves the effective worker count.
func (c Context) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.NumCPU()
}

// Result is the outcome of one experiment.
type Result struct {
	ID       string
	Title    string
	PaperRef string
	Figures  []*report.Figure
	Tables   []*report.Table
	// Metrics are named headline numbers (coverage fractions, FMI values,
	// test counts, dollar costs) used by EXPERIMENTS.md and the benches.
	Metrics map[string]float64
	Notes   []string
}

// newResult initializes a Result for a descriptor.
func newResult(d Descriptor) *Result {
	return &Result{
		ID:       d.ID,
		Title:    d.Title,
		PaperRef: d.PaperRef,
		Metrics:  make(map[string]float64),
	}
}

// note appends a formatted note line.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the whole result for the CLI.
func (r *Result) String() string {
	out := fmt.Sprintf("=== %s — %s (%s) ===\n", r.ID, r.Title, r.PaperRef)
	for _, f := range r.Figures {
		out += f.String() + "\n"
	}
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out += "metrics:\n"
		for _, k := range keys {
			out += fmt.Sprintf("  %-40s %.6g\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Descriptor names one runnable experiment.
type Descriptor struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(Context) (*Result, error)
}

// registry holds all experiments in presentation order. It is populated in
// init to avoid a static initialization cycle (experiment bodies call ByID).
var registry []Descriptor

func init() {
	registry = []Descriptor{
		{ID: "fig4", Title: "Gen 1 fingerprint accuracy vs rounding precision", PaperRef: "Fig. 4, §4.4.1", Run: runFig4},
		{ID: "fig5", Title: "Fingerprint expiration time CDF", PaperRef: "Fig. 5, §4.4.2", Run: runFig5},
		{ID: "fig6", Title: "Idle instance termination timeline", PaperRef: "Fig. 6, §5.1 Exp. 1", Run: runFig6},
		{ID: "fig7", Title: "Base hosts across cold launches", PaperRef: "Fig. 7, §5.1 Exp. 2", Run: runFig7},
		{ID: "fig8", Title: "Base hosts across accounts", PaperRef: "Fig. 8, §5.1 Exp. 3", Run: runFig8},
		{ID: "fig9", Title: "Helper hosts under short launch intervals", PaperRef: "Fig. 9, §5.1 Exp. 4", Run: runFig9},
		{ID: "fig10", Title: "Helper-host overlap across services", PaperRef: "Fig. 10, §5.1 Exp. 4", Run: runFig10},
		{ID: "fig11a", Title: "Victim coverage vs victim instance count", PaperRef: "Fig. 11a, §5.2", Run: runFig11a},
		{ID: "fig11b", Title: "Victim coverage vs victim instance size", PaperRef: "Fig. 11b, §5.2 + Table 1", Run: runFig11b},
		{ID: "fig12", Title: "Data-center scale estimation", PaperRef: "Fig. 12, §5.2", Run: runFig12},
		{ID: "table1", Title: "Container size catalog", PaperRef: "Table 1, §5.2", Run: runTable1},
		{ID: "freq", Title: "Measured TSC frequency stability", PaperRef: "§4.2 method 2", Run: runFreq},
		{ID: "verifycost", Title: "Verification cost: scalable vs pairwise vs SIE", PaperRef: "§4.3", Run: runVerifyCost},
		{ID: "gen2", Title: "Gen 2 fingerprint accuracy", PaperRef: "§4.5", Run: runGen2Accuracy},
		{ID: "naive", Title: "Naive launching strategy coverage", PaperRef: "§5.2 Strategy 1", Run: runNaive},
		{ID: "cost", Title: "Optimized attack financial cost", PaperRef: "§5.2", Run: runAttackCost},
		{ID: "gen2cov", Title: "Victim coverage in the Gen 2 environment", PaperRef: "§5.2", Run: runGen2Coverage},
		{ID: "mitigation", Title: "TSC mitigations: attack impact and timer overhead", PaperRef: "§6", Run: runMitigation},
		{ID: "extraction", Title: "Post-co-location secret extraction demonstrator", PaperRef: "§3 threat model, step 2", Run: runExtraction},
		{ID: "reattack", Title: "Fingerprint-guided re-attack optimization", PaperRef: "§5.2 optimizations", Run: runReattack},
		{ID: "ablations", Title: "Design-choice ablation sweeps", PaperRef: "DESIGN.md §4", Run: runAblations},
		// policyablation is appended after every seed-era artifact so the
		// frozen golden-digest id list keeps matching the registry prefix.
		{ID: "policyablation", Title: "Attack outcome under swappable placement policies", PaperRef: "§5.2 + §6, DESIGN.md §2", Run: runPolicyAblation},
		{ID: "strategyablation", Title: "Coverage vs cost under swappable launch strategies", PaperRef: "§5.2, DESIGN.md attack layer", Run: runStrategyAblation},
		{ID: "faultsweep", Title: "Coverage and cost vs injected fault rate", PaperRef: "§4.1 measurement conditions, DESIGN.md fault plane", Run: runFaultSweep},
		{ID: "scale", Title: "Event-kernel throughput at fleet scale", PaperRef: "DESIGN.md event kernel; §5.2 scale context", Run: runScale},
		{ID: "multiregion", Title: "Multi-region fleet campaigns under budget planners", PaperRef: "§5.2 scale-out; DESIGN.md fleet and planner", Run: runMultiRegion},
		{ID: "channelablation", Title: "Covert-channel ablation: verification cost and fault resilience per channel", PaperRef: "§4.3 verification; DESIGN.md channel primitives", Run: runChannelAblation},
		{ID: "noisesweep", Title: "Attack robustness vs background-tenant utilization", PaperRef: "§4.1 measurement conditions; DESIGN.md background traffic", Run: runNoiseSweep},
	}
}

// All returns every experiment descriptor in presentation order.
func All() []Descriptor { return append([]Descriptor(nil), registry...) }

// ByID looks an experiment up.
func ByID(id string) (Descriptor, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Run executes the experiment with the given id. The wall clock spent and
// the worker count used are recorded as "runtime_*" metrics; they are the
// only nondeterministic part of a result, and consumers comparing output
// across runs (or across -jobs values) should exclude them.
func Run(id string, ctx Context) (*Result, error) {
	d, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	start := time.Now()
	res, err := d.Run(ctx)
	if err != nil {
		return nil, err
	}
	res.Metrics["runtime_wall_s"] = time.Since(start).Seconds()
	res.Metrics["runtime_jobs"] = float64(ctx.jobs())
	return res, nil
}

// --- scale helpers -------------------------------------------------------

// profiles returns the region set for this context, scaled down in Quick
// mode while preserving every ratio that matters (instances per host, base
// pool vs group size, helper pool vs fleet).
func (c Context) profiles() []faas.RegionProfile {
	profs := c.baseProfiles()
	if c.Policy != nil {
		for i := range profs {
			profs[i].Policy = c.Policy
		}
	}
	if c.Faults.Enabled() {
		for i := range profs {
			profs[i].Faults = c.Faults
		}
	}
	if c.LegacySweeps {
		for i := range profs {
			profs[i].LegacySweeps = true
		}
	}
	if c.Load > 0 {
		for i := range profs {
			profs[i].Traffic = faas.DefaultTrafficModel(profs[i].NumHosts, c.Load)
		}
	}
	return profs
}

// baseProfiles returns the region set before any policy override.
func (c Context) baseProfiles() []faas.RegionProfile {
	if !c.Quick {
		return faas.DefaultProfiles()
	}
	east := faas.USEast1Profile()
	east.NumHosts = 125
	east.PlacementGroups = 5
	east.BasePoolSize = 24
	east.AccountHelperPool = 65
	east.ServiceHelperSize = 48
	east.ServiceHelperFresh = 4

	central := faas.USCentral1Profile()
	central.NumHosts = 450
	central.PlacementGroups = 15
	central.BasePoolSize = 28
	central.AccountHelperPool = 188
	central.ServiceHelperSize = 105
	central.ServiceHelperFresh = 18

	west := faas.USWest1Profile()
	west.NumHosts = 52
	west.PlacementGroups = 2
	west.BasePoolSize = 23
	west.AccountHelperPool = 32
	west.ServiceHelperSize = 26
	west.ServiceHelperFresh = 2

	return []faas.RegionProfile{east, central, west}
}

// platform returns a fresh simulated cloud for this context — forked from
// the forge's pristine snapshot after the first build, so the many
// experiments sharing the context's default world don't replay its
// construction.
func (c Context) platform() *faas.Platform {
	return forkPlatform(c.Seed, c.profiles()...)
}

// regions lists the region names of this context's profile set without
// building a platform (trial jobs build their own single-region worlds).
func (c Context) regions() []faas.Region {
	profs := c.profiles()
	out := make([]faas.Region, len(profs))
	for i, p := range profs {
		out[i] = p.Name
	}
	return out
}

// regionProfile returns the profile of one region of this context's set.
func (c Context) regionProfile(r faas.Region) faas.RegionProfile {
	for _, p := range c.profiles() {
		if p.Name == r {
			return p
		}
	}
	panic(fmt.Sprintf("experiments: region %s not in profile set", r))
}

// launchSize is the per-launch instance count (paper: 800).
func (c Context) launchSize() int {
	if c.Quick {
		return 200
	}
	return 800
}

// reps is the number of repetitions per measurement (paper: 5 for accuracy,
// 3 for coverage; we use one knob).
func (c Context) reps() int {
	if c.Quick {
		return 2
	}
	return 3
}

// victimCounts returns the victim instance-count sweep of Fig. 11a.
func (c Context) victimCounts() []int {
	if c.Quick {
		return []int{10, 25, 50}
	}
	return []int{20, 50, 100, 200}
}

// defaultVictims is the default victim instance count (paper: 100).
func (c Context) defaultVictims() int {
	if c.Quick {
		return 50
	}
	return 100
}

// trackedInstances is the long-running instance count of the Fig. 5 study.
func (c Context) trackedInstances() int {
	if c.Quick {
		return 20
	}
	return 50
}

// trackingDuration is the Fig. 5 observation window (paper: one week).
func (c Context) trackingDuration() time.Duration {
	if c.Quick {
		return 72 * time.Hour
	}
	return 7 * 24 * time.Hour
}

// regionAccounts returns the three account identities of the study.
func accounts() (attacker string, victims []string) {
	return "account-1", []string{"account-2", "account-3"}
}
