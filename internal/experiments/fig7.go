package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/report"
)

// launchSeries runs a sequence of launches and records per-launch apparent
// hosts plus the cumulative footprint. Services are selected per launch by
// the svc callback; the interval separates consecutive launches.
func launchSeries(dc *faas.DataCenter, launches, size int, interval time.Duration,
	svc func(launch int) *faas.Service) (apparent, cumulative []int, err error) {

	tracker := attack.NewFootprintTracker(fingerprint.DefaultPrecision)
	for l := 0; l < launches; l++ {
		s := svc(l)
		insts, err := s.Launch(size)
		if err != nil {
			return nil, nil, err
		}
		ap, err := tracker.Record(insts)
		if err != nil {
			return nil, nil, err
		}
		apparent = append(apparent, ap)
		cumulative = append(cumulative, tracker.Cumulative())
		s.Disconnect()
		dc.Scheduler().Advance(interval)
	}
	return apparent, cumulative, nil
}

// footprintFigure renders launch-indexed apparent/cumulative series.
func footprintFigure(id, title string, apparent, cumulative []int) *report.Figure {
	fig := &report.Figure{ID: id, Title: title, XLabel: "launch", YLabel: "apparent hosts"}
	xs := make([]float64, len(apparent))
	ap := make([]float64, len(apparent))
	cum := make([]float64, len(cumulative))
	for i := range apparent {
		xs[i] = float64(i + 1)
		ap[i] = float64(apparent[i])
		cum[i] = float64(cumulative[i])
	}
	fig.AddSeries("apparent hosts", xs, ap)
	fig.AddSeries("cumulative apparent hosts", xs, cum)
	return fig
}

func runFig7(ctx Context) (*Result, error) {
	d, _ := ByID("fig7")
	res := newResult(d)
	east := ctx.regionProfile(faas.USEast1)

	// Two trials: the main experiment (the same service relaunched from
	// cold — 45-minute gaps ensure every old instance is gone and demand
	// history is empty) and the fresh-service variant the paper uses to
	// rule out container-image data locality as the cause. Each launch
	// series is inherently sequential, so the trial is the variant.
	type series struct{ apparent, cumulative []int }
	variants, err := runTrials(ctx, 2, func(t Trial) (series, error) {
		pl := faas.MustPlatform(t.Seed, east)
		dc := pl.MustRegion(faas.USEast1)
		acct := dc.Account("account-1")
		svc := func(l int) *faas.Service {
			return acct.DeployService(fmt.Sprintf("exp2-fresh-%d", l), faas.ServiceConfig{})
		}
		if t.Index == 0 {
			main := acct.DeployService("exp2", faas.ServiceConfig{})
			svc = func(int) *faas.Service { return main }
		}
		ap, cum, err := launchSeries(dc, 6, ctx.launchSize(), 45*time.Minute, svc)
		return series{ap, cum}, err
	})
	if err != nil {
		return nil, err
	}
	apparent, cumulative := variants[0].apparent, variants[0].cumulative
	apVar, cumVar := variants[1].apparent, variants[1].cumulative
	res.Figures = append(res.Figures,
		footprintFigure("fig7", "Apparent hosts across cold launches (same service)", apparent, cumulative),
		footprintFigure("fig7-fresh", "Same account, different service per launch", apVar, cumVar))

	res.Metrics["first_launch_hosts"] = float64(apparent[0])
	res.Metrics["cumulative_after_6"] = float64(cumulative[5])
	res.Metrics["growth"] = float64(cumulative[5] - apparent[0])
	res.Metrics["fresh_service_cumulative"] = float64(cumVar[5])
	res.Metrics["base_pool_size"] = float64(east.BasePoolSize)
	res.note("paper: per-launch footprint stays ~constant and cumulative growth is minimal — the account's base hosts; the pattern persists with fresh services")
	return res, nil
}

func runFig8(ctx Context) (*Result, error) {
	d, _ := ByID("fig8")
	res := newResult(d)

	// One interleaved timeline (all three accounts share the world), so
	// this is a single trial on the shared engine path; the trial sub-seed
	// is deliberately unused.
	type series struct{ apparent, cumulative []int }
	runs, err := runTrials(ctx, 1, func(Trial) (series, error) {
		pl := ctx.platform()
		dc := pl.MustRegion(faas.USEast1)

		// Launch order: accounts 1, 1, 2, 2, 3, 3 — fresh service each time.
		owners := []string{"account-1", "account-1", "account-2", "account-2", "account-3", "account-3"}
		ap, cum, err := launchSeries(dc, 6, ctx.launchSize(), 45*time.Minute,
			func(l int) *faas.Service {
				return dc.Account(owners[l]).DeployService(fmt.Sprintf("exp3-%d", l), faas.ServiceConfig{})
			})
		return series{ap, cum}, err
	})
	if err != nil {
		return nil, err
	}
	apparent, cumulative := runs[0].apparent, runs[0].cumulative
	res.Figures = append(res.Figures,
		footprintFigure("fig8", "Apparent hosts across three accounts (1,1,2,2,3,3)", apparent, cumulative))

	// The step pattern: large cumulative growth exactly when the account
	// changes (launches 3 and 5), minimal otherwise.
	res.Metrics["step_launch2"] = float64(cumulative[1] - cumulative[0])
	res.Metrics["step_launch3"] = float64(cumulative[2] - cumulative[1])
	res.Metrics["step_launch4"] = float64(cumulative[3] - cumulative[2])
	res.Metrics["step_launch5"] = float64(cumulative[4] - cumulative[3])
	res.Metrics["step_launch6"] = float64(cumulative[5] - cumulative[4])
	res.Metrics["cumulative_after_6"] = float64(cumulative[5])
	res.note("paper: cumulative apparent hosts form a step pattern — each new account brings its own base hosts")
	return res, nil
}
