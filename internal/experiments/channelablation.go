package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/pricing"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// channelRegime is one fault environment of the ablation's resilience sweep.
type channelRegime struct {
	name string // table label
	key  string // metric-name suffix
	plan faas.FaultPlan
}

// channelRegimes returns the fault environments: a clean platform, the
// faultsweep's 5% acceptance point, and a misfire storm confined to the RNG
// family — the regime that separates channels, because only testers with a
// non-RNG member can still see through it.
func (c Context) channelRegimes() []channelRegime {
	var storm faas.FaultPlan
	storm.PerChannel[faas.ResourceRNG] = faas.ChannelFaultRates{
		FalsePositiveRate: 0.3,
		FalseNegativeRate: 0.3,
	}
	regimes := []channelRegime{
		{name: "fault-free", key: "clean", plan: faas.FaultPlan{}},
		{name: "uniform 5%", key: "uniform5", plan: faas.UniformFaultPlan(0.05)},
		{name: "rng misfire storm", key: "rngstorm", plan: storm},
	}
	if c.Quick {
		// The uniform regime is the faultsweep's territory; quick mode keeps
		// only the cells this ablation uniquely covers.
		return []channelRegime{regimes[0], regimes[2]}
	}
	return regimes
}

// runChannelAblation measures what each covert-channel primitive buys and
// costs, alone and majority-combined. Part 1 verifies one launched world's
// co-location with each channel's runner and prices the verification (the
// §4.3 cost methodology, per channel). Part 2 runs full campaigns per
// (channel × fault regime) and scores victim coverage — the resilience
// question: which channels survive which fault environments, and at what
// verify-stage spend.
func runChannelAblation(ctx Context) (*Result, error) {
	d, _ := ByID("channelablation")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}
	channels := covert.ChannelNames()

	// Part 1: verification cost and accuracy per channel, on forks of one
	// shared launched world (ctx.Seed+41) so the channel is the only
	// variable. The trial sub-seed is deliberately unused.
	type vRow struct {
		tests      int
		serialized time.Duration
		usd        float64
		score      metrics.Score
	}
	vRows, err := runTrials(ctx, len(channels), func(t Trial) (vRow, error) {
		pl, insts, err := ablationWorld(ctx.Seed+41, n, sandbox.Gen1)
		if err != nil {
			return vRow{}, err
		}
		runner, err := covert.RunnerFor(channels[t.Index], pl.Scheduler(), 0)
		if err != nil {
			return vRow{}, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return vRow{}, err
		}
		ver, err := coloc.Verify(runner, items, coloc.DefaultOptions())
		if err != nil {
			return vRow{}, err
		}
		truth := make([]faas.HostID, len(insts))
		for i, inst := range insts {
			truth[i], _ = inst.HostID()
		}
		usd := pricing.CloudRunRates().CampaignCost(len(insts),
			ver.SerializedTime.Seconds(), faas.SizeSmall.VCPU, faas.SizeSmall.MemoryGB)
		return vRow{ver.Tests, ver.SerializedTime, usd,
			metrics.ScoreOf(ver.Labels, truth)}, nil
	})
	if err != nil {
		return nil, err
	}
	vTbl := report.NewTable(fmt.Sprintf("Channel ablation: verifying %d instances per channel", n),
		"channel", "tests", "serialized time", "USD", "precision", "recall", "FMI")
	for ci, ch := range channels {
		r := vRows[ci]
		vTbl.AddRow(ch, r.tests, r.serialized.String(), r.usd,
			r.score.Precision, r.score.Recall, r.score.FMI)
		res.Metrics["verify_tests_"+ch] = float64(r.tests)
		res.Metrics["verify_minutes_"+ch] = r.serialized.Minutes()
		res.Metrics["verify_usd_"+ch] = r.usd
		res.Metrics["verify_fmi_"+ch] = r.score.FMI
	}
	res.Tables = append(res.Tables, vTbl)

	// Part 2: campaign resilience per (channel × fault regime), on forks of
	// one shared world seed (ctx.Seed+43). Faulted regimes run with the
	// faultsweep's hardened budgets, so the channels — not the recovery
	// machinery — are what the cells compare.
	regimes := ctx.channelRegimes()
	type cell struct {
		channel string
		regime  channelRegime
	}
	var units []cell
	for _, reg := range regimes {
		for _, ch := range channels {
			units = append(units, cell{ch, reg})
		}
	}
	type cRow struct {
		st     attack.CampaignStats
		cov    attack.Coverage
		failed bool
	}
	cRows, err := runTrials(ctx, len(units), func(t Trial) (cRow, error) {
		u := units[t.Index]
		prof := ablationProfile()
		prof.Faults = u.regime.plan
		pl := forkPlatform(ctx.Seed+43, prof)
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		cfg.Channel = u.channel
		if u.regime.plan.Enabled() {
			hardenedBudgets(&cfg)
		}
		camp, err := launchCampaign(dc, "attacker", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			if injectedFault(err) {
				return cRow{failed: true}, nil
			}
			return cRow{}, err
		}
		_, vic, err := faultTolerantVictim(dc, "victim", "v", 60, 3)
		if err != nil {
			return cRow{}, err
		}
		cov, _, err := camp.Verify(vic)
		if err != nil {
			if injectedFault(err) {
				return cRow{st: camp.Stats(), failed: true}, nil
			}
			return cRow{}, err
		}
		return cRow{st: camp.Stats(), cov: cov}, nil
	})
	if err != nil {
		return nil, err
	}
	cTbl := report.NewTable("Channel ablation: campaign coverage per channel and fault regime",
		"regime", "channel", "coverage", "CTests", "channel time", "re-votes", "USD")
	for i, u := range units {
		r := cRows[i]
		cov := r.cov.Fraction()
		status := ""
		if r.failed {
			cov = 0
			status = " (died)"
		}
		cTbl.AddRow(u.regime.name+status, u.channel, cov, r.st.CTests,
			r.st.CovertTime.String(), r.st.ReVotes, r.st.USD)
		key := fmt.Sprintf("%s_%s", u.channel, u.regime.key)
		res.Metrics["cov_"+key] = cov
		res.Metrics["ctests_"+key] = float64(r.st.CTests)
		res.Metrics["covertmin_"+key] = r.st.CovertTime.Minutes()
	}
	res.Tables = append(res.Tables, cTbl)

	res.note("part 1: one launched world (seed+41) verified by each channel's runner; channel is the only variable")
	res.note("part 2: one campaign world (seed+43) per cell; faulted regimes run hardened (4 launch retries, vote budget 3, probe retry budget 3)")
	res.note("the rng misfire storm corrupts only the RNG family: single-channel rng campaigns survive on re-votes at a multiple of the clean CTest spend, llc/membus are untouched, and the combined tester outvotes its poisoned member")
	return res, nil
}
