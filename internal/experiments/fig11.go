package experiments

import (
	"fmt"

	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
	"eaao/internal/stats"
)

// coverageKey identifies one bar of Fig. 11.
type coverageKey struct {
	region  faas.Region
	account string
	config  string // e.g. "n=100" or "size=Small"
}

// attackCfg returns the optimized-strategy campaign configuration for this
// context.
func (c Context) attackCfg() attack.Config {
	cfg := attack.DefaultConfig()
	cfg.InstancesPerLaunch = c.launchSize()
	if c.Quick {
		cfg.Services = 3
		cfg.Launches = 4
	}
	return cfg
}

// runCoverageStudy executes the Fig. 11 protocol: per region and repetition,
// one optimized attacker campaign, then cold victim launches for every
// (victim account, victim configuration) pair, each verified for co-location
// against the attacker's live footprint. configs maps a config label to the
// victim service settings and instance count.
type victimConfig struct {
	label string
	size  faas.InstanceSize
	count int
}

// defaultLabel marks the configuration whose trials feed the headline
// "co-located with at least one victim instance" metric (tiny victim sets
// occupy only one or two hosts, so the headline is defined at the default
// victim count, as in the paper).
func runCoverageStudy(ctx Context, gen sandbox.Gen, configs []victimConfig, defaultLabel string) (map[coverageKey][]float64, map[faas.Region]bool, error) {
	_, victims := accounts()
	profiles := ctx.profiles()
	reps := ctx.reps()

	// One trial per (repetition × region). A fresh world per trial models
	// "different days": the paper's repeated measurements each began from a
	// cold attacker state, so each trial builds its own single-region world
	// from its sub-seed and runs one full campaign against it.
	type covTrial struct {
		fracs     [][]float64 // [victim account][config]
		defaultOK bool        // cov.AtLeastOne held for every victim at defaultLabel
	}
	runs, err := runTrials(ctx, reps*len(profiles), func(t Trial) (covTrial, error) {
		prof := profiles[t.Index%len(profiles)]
		rep := t.Index / len(profiles)
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		camp, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, gen)
		if err != nil {
			return covTrial{}, err
		}
		out := covTrial{defaultOK: true}
		for _, vicAcct := range victims {
			fr := make([]float64, len(configs))
			for ci, vc := range configs {
				svc := dc.Account(vicAcct).DeployService(
					fmt.Sprintf("victim-%d-%d", rep, ci),
					faas.ServiceConfig{Size: vc.size, Gen: gen})
				vicInsts, err := svc.Launch(vc.count)
				if err != nil {
					return covTrial{}, err
				}
				cov, _, err := camp.Verify(vicInsts)
				if err != nil {
					return covTrial{}, err
				}
				fr[ci] = cov.Fraction()
				if vc.label == defaultLabel && !cov.AtLeastOne {
					out.defaultOK = false
				}
				svc.Disconnect()
			}
			out.fracs = append(out.fracs, fr)
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Merge by trial index: per-key repetition values keep repetition order.
	out := make(map[coverageKey][]float64)
	atLeastOne := make(map[faas.Region]bool)
	for ti, run := range runs {
		region := profiles[ti%len(profiles)].Name
		if _, ok := atLeastOne[region]; !ok {
			atLeastOne[region] = true
		}
		if !run.defaultOK {
			atLeastOne[region] = false
		}
		for vi, vicAcct := range victims {
			for ci, vc := range configs {
				key := coverageKey{region: region, account: vicAcct, config: vc.label}
				out[key] = append(out[key], run.fracs[vi][ci])
			}
		}
	}
	return out, atLeastOne, nil
}

// coverageResult assembles the Fig. 11-style table and figure.
func coverageResult(res *Result, figID, title string, regions []faas.Region,
	victims []string, configs []victimConfig, data map[coverageKey][]float64) {

	tbl := report.NewTable(title, "region", "victim", "config", "coverage", "stddev")
	fig := &report.Figure{ID: figID, Title: title, XLabel: "region/account index", YLabel: "victim coverage"}
	for _, vc := range configs {
		var ys, xs []float64
		i := 0.0
		for _, region := range regions {
			for _, acct := range victims {
				vals := data[coverageKey{region: region, account: acct, config: vc.label}]
				mean := stats.Mean(vals)
				tbl.AddRow(string(region), acct, vc.label, mean, stats.StdDev(vals))
				xs = append(xs, i)
				ys = append(ys, mean)
				i++
			}
		}
		fig.AddSeries(vc.label, xs, ys)
	}
	res.Tables = append(res.Tables, tbl)
	res.Figures = append(res.Figures, fig)
}

func runFig11a(ctx Context) (*Result, error) {
	d, _ := ByID("fig11a")
	res := newResult(d)

	var configs []victimConfig
	for _, n := range ctx.victimCounts() {
		configs = append(configs, victimConfig{
			label: fmt.Sprintf("n=%d", n),
			size:  faas.SizeSmall,
			count: n,
		})
	}
	defLabel := fmt.Sprintf("n=%d", ctx.defaultVictims())
	data, atLeastOne, err := runCoverageStudy(ctx, sandbox.Gen1, configs, defLabel)
	if err != nil {
		return nil, err
	}
	regions := ctx.regions()
	_, victims := accounts()
	coverageResult(res, "fig11a", "Victim coverage, varying victim instance count (Small)",
		regions, victims, configs, data)

	for _, region := range regions {
		for _, acct := range victims {
			vals := data[coverageKey{region: region, account: acct, config: defLabel}]
			res.Metrics[fmt.Sprintf("coverage_%s_%s", region, acct)] = stats.Mean(vals)
		}
		if atLeastOne[region] {
			res.Metrics["at_least_one_"+string(region)] = 1
		} else {
			res.Metrics["at_least_one_"+string(region)] = 0
		}
	}
	res.note("paper (default n=100): us-east1 97.7%%/99.7%%, us-central1 61.3%%/90.0%%, us-west1 100%%/100%%; at least one victim instance co-located in every trial")
	return res, nil
}

func runFig11b(ctx Context) (*Result, error) {
	d, _ := ByID("fig11b")
	res := newResult(d)

	var configs []victimConfig
	for _, size := range faas.SizeCatalog {
		configs = append(configs, victimConfig{
			label: "size=" + size.Name,
			size:  size,
			count: ctx.defaultVictims(),
		})
	}
	data, _, err := runCoverageStudy(ctx, sandbox.Gen1, configs, "size=Small")
	if err != nil {
		return nil, err
	}
	regions := ctx.regions()
	_, victims := accounts()
	coverageResult(res, "fig11b", "Victim coverage, varying victim size (count fixed)",
		regions, victims, configs, data)

	// Size must not matter much: record the spread across sizes per region.
	for _, region := range regions {
		var means []float64
		for _, vc := range configs {
			var all []float64
			for _, acct := range victims {
				all = append(all, data[coverageKey{region: region, account: acct, config: vc.label}]...)
			}
			means = append(means, stats.Mean(all))
		}
		res.Metrics["size_spread_"+string(region)] = stats.Max(means) - stats.Min(means)
	}
	res.note("paper: victim size has no significant influence on coverage — instances of different sizes share the same base hosts")
	return res, nil
}

func runGen2Coverage(ctx Context) (*Result, error) {
	d, _ := ByID("gen2cov")
	res := newResult(d)

	configs := []victimConfig{{
		label: fmt.Sprintf("n=%d", ctx.defaultVictims()),
		size:  faas.SizeSmall,
		count: ctx.defaultVictims(),
	}}
	data, _, err := runCoverageStudy(ctx, sandbox.Gen2, configs, configs[0].label)
	if err != nil {
		return nil, err
	}
	regions := ctx.regions()
	_, victims := accounts()
	coverageResult(res, "gen2cov", "Victim coverage in the Gen 2 environment",
		regions, victims, configs, data)
	for _, region := range regions {
		for _, acct := range victims {
			vals := data[coverageKey{region: region, account: acct, config: configs[0].label}]
			res.Metrics[fmt.Sprintf("coverage_%s_%s", region, acct)] = stats.Mean(vals)
		}
	}
	res.note("paper: Gen 2 coverage 87.3%%/88.7%% (us-east1), 40.7%%/75.3%% (us-central1), 96.0%%/97.3%% (us-west1)")
	return res, nil
}

// runAttackCost measures the financial cost of the optimized campaign.
func runAttackCost(ctx Context) (*Result, error) {
	d, _ := ByID("cost")
	res := newResult(d)
	profiles := ctx.profiles()

	// One trial per region: each campaign is billed against its own world.
	// The campaign's ledger meters the launch stage (billing deltas priced at
	// the published rates), so the trial just reads it back.
	type bill struct{ vcpuS, gbS, usd float64 }
	bills, err := runTrials(ctx, len(profiles), func(t Trial) (bill, error) {
		prof := profiles[t.Index]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		camp, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return bill{}, err
		}
		st := camp.Stats()
		return bill{st.VCPUSeconds, st.GBSeconds, st.USD}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Optimized campaign cost", "region", "vCPU-s", "GB-s", "USD")
	for ri, b := range bills {
		region := profiles[ri].Name
		tbl.AddRow(string(region), b.vcpuS, b.gbS, b.usd)
		res.Metrics["usd_"+string(region)] = b.usd
	}
	res.Tables = append(res.Tables, tbl)
	res.note("paper: campaign costs ≈ $24 (us-east1), $23 (us-central1), $27 (us-west1); idle time between launches is free")
	return res, nil
}
