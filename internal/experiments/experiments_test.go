package experiments

import (
	"strings"
	"testing"

	"eaao/internal/faas"
)

func quickCtx() Context { return Context{Seed: 42, Quick: true} }

func run(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quickCtx())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id = %q", res.ID)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11a", "fig11b", "fig12", "table1", "freq", "verifycost", "gen2",
		"naive", "cost", "gen2cov", "mitigation", "extraction", "reattack", "ablations",
		"policyablation", "strategyablation", "faultsweep", "scale", "multiregion",
		"channelablation", "noisesweep"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) failed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
	if _, err := Run("nope", quickCtx()); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestFig4Shape(t *testing.T) {
	res := run(t, "fig4")
	// Sweet spot: near-perfect at 100ms–1s.
	if res.Metrics["fmi@1s"] < 0.99 {
		t.Errorf("fmi@1s = %v, want ≈ 1", res.Metrics["fmi@1s"])
	}
	if res.Metrics["fmi@100ms"] < 0.98 {
		t.Errorf("fmi@100ms = %v", res.Metrics["fmi@100ms"])
	}
	// Degradation at the extremes: recall falls at fine precision,
	// precision falls at coarse precision.
	if res.Metrics["recall@1ms"] > res.Metrics["recall@1s"]-0.01 {
		t.Errorf("recall@1ms = %v not below recall@1s = %v",
			res.Metrics["recall@1ms"], res.Metrics["recall@1s"])
	}
	if res.Metrics["precision@1000s"] > res.Metrics["precision@1s"]-0.005 {
		t.Errorf("precision@1000s = %v not below precision@1s = %v",
			res.Metrics["precision@1000s"], res.Metrics["precision@1s"])
	}
}

func TestFig5Shape(t *testing.T) {
	res := run(t, "fig5")
	if res.Metrics["min_abs_r"] < 0.999 {
		t.Errorf("min |r| = %v; drift must be linear", res.Metrics["min_abs_r"])
	}
	// Only a minority of fingerprints expire within 2 days.
	if got := res.Metrics["cdf_at_2_days"]; got > 0.45 {
		t.Errorf("CDF at 2 days = %v, want a minority", got)
	}
	if len(res.Figures) != 1 || len(res.Figures[0].Series) != 3 {
		t.Error("fig5 must have one figure with three region series")
	}
}

func TestFig6Shape(t *testing.T) {
	res := run(t, "fig6")
	if res.Metrics["terminated"] != res.Metrics["total"] {
		t.Errorf("only %v/%v terminated", res.Metrics["terminated"], res.Metrics["total"])
	}
	if g := res.Metrics["grace_minutes"]; g < 1.9 {
		t.Errorf("grace = %v min, want ≥ ~2", g)
	}
	if a := res.Metrics["all_gone_minutes"]; a > 12.5 {
		t.Errorf("all gone at %v min, want ≤ ~12", a)
	}
}

func TestFig7Shape(t *testing.T) {
	res := run(t, "fig7")
	// Cumulative growth stays small relative to the per-launch footprint
	// and within the base pool.
	// Allow a small margin: fingerprint drift over the experiment's hours
	// can split a host's bucket once or twice.
	if res.Metrics["cumulative_after_6"] > res.Metrics["base_pool_size"]*1.15+2 {
		t.Errorf("cumulative %v exceeded base pool %v",
			res.Metrics["cumulative_after_6"], res.Metrics["base_pool_size"])
	}
	if res.Metrics["growth"] > res.Metrics["first_launch_hosts"]*0.5 {
		t.Errorf("growth %v too large vs first launch %v",
			res.Metrics["growth"], res.Metrics["first_launch_hosts"])
	}
	// The fresh-service variant shows the same account-level behavior.
	if res.Metrics["fresh_service_cumulative"] > res.Metrics["base_pool_size"]*1.15+2 {
		t.Error("fresh services escaped the base pool")
	}
}

func TestFig8StepPattern(t *testing.T) {
	res := run(t, "fig8")
	// Account switches at launches 3 and 5 produce big steps; repeats
	// produce small ones.
	bigA, bigB := res.Metrics["step_launch3"], res.Metrics["step_launch5"]
	smallMax := res.Metrics["step_launch2"]
	if res.Metrics["step_launch4"] > smallMax {
		smallMax = res.Metrics["step_launch4"]
	}
	if res.Metrics["step_launch6"] > smallMax {
		smallMax = res.Metrics["step_launch6"]
	}
	if bigA < 3*smallMax || bigB < 3*smallMax {
		t.Errorf("no clear step pattern: steps3/5 = %v/%v vs same-account max %v",
			bigA, bigB, smallMax)
	}
}

func TestFig9HelperGrowth(t *testing.T) {
	res := run(t, "fig9")
	ten := res.Metrics["extra_hosts_10min"]
	two := res.Metrics["extra_hosts_2min"]
	cold := res.Metrics["extra_hosts_45min"]
	if ten < 3*two {
		t.Errorf("10-min interval extra hosts (%v) not ≫ 2-min (%v)", ten, two)
	}
	if cold > ten/4 {
		t.Errorf("45-min interval shows helper behavior: %v extra hosts (10min: %v)", cold, ten)
	}
}

func TestFig10OverlapGrowth(t *testing.T) {
	res := run(t, "fig10")
	if res.Metrics["growth_last_episode"] <= 0 {
		t.Error("cumulative helper footprint stopped growing")
	}
	// Growth per episode must be smaller than the episode's own helper
	// count (sets overlap).
	if res.Metrics["growth_last_episode"] >= res.Metrics["episode6_helpers"] {
		t.Errorf("episode 6 added %v new of %v helpers; no overlap",
			res.Metrics["growth_last_episode"], res.Metrics["episode6_helpers"])
	}
}

func TestFig11aCoverage(t *testing.T) {
	res := run(t, "fig11a")
	// Every region co-locates with at least one victim instance.
	for _, region := range []faas.Region{faas.USEast1, faas.USCentral1, faas.USWest1} {
		if res.Metrics["at_least_one_"+string(region)] != 1 {
			t.Errorf("%s: attacker failed to co-locate with any victim instance", region)
		}
	}
	// Coverage ordering: west ≥ east > central (paper's shape).
	east := res.Metrics["coverage_us-east1_account-2"]
	central := res.Metrics["coverage_us-central1_account-2"]
	west := res.Metrics["coverage_us-west1_account-2"]
	if east < 0.7 {
		t.Errorf("us-east1 coverage = %v, want high", east)
	}
	if west < 0.8 {
		t.Errorf("us-west1 coverage = %v, want ~1", west)
	}
	if central > east+0.05 {
		t.Errorf("us-central1 (%v) should not beat us-east1 (%v)", central, east)
	}
}

func TestFig11bSizeInsensitive(t *testing.T) {
	res := run(t, "fig11b")
	for _, region := range []string{"us-east1", "us-west1"} {
		// Coverage per victim host is binary, so a quick-mode config with
		// ~5 victim hosts quantizes in steps of 0.2; allow that.
		if spread := res.Metrics["size_spread_"+region]; spread > 0.3 {
			t.Errorf("%s: coverage spread across sizes = %v, want small", region, spread)
		}
	}
}

func TestFig12Scale(t *testing.T) {
	res := run(t, "fig12")
	for _, region := range []string{"us-east1", "us-central1", "us-west1"} {
		found := res.Metrics["found_"+region]
		truth := res.Metrics["true_"+region]
		if found <= 0 || found > truth {
			t.Errorf("%s: found %v of %v", region, found, truth)
		}
		// The estimate is a lower bound on the true fleet (the paper itself
		// says "at least 1702 hosts"); exploration must still reach a large
		// share of the reachable serving pool.
		if found < truth*0.45 {
			t.Errorf("%s: exploration found only %v of %v hosts", region, found, truth)
		}
		share := res.Metrics["attacker_share_"+region]
		if share <= 0.2 || share > 1 {
			t.Errorf("%s: attacker share %v out of plausible range", region, share)
		}
		// The capture-recapture point estimate must refine the lower bound
		// without exceeding the truth by much.
		chap := res.Metrics["chapman_"+region]
		if chap < found*0.95 || chap > truth*1.3 {
			t.Errorf("%s: Chapman estimate %v outside [found %v, 1.3×true %v]", region, chap, found, truth)
		}
	}
}

func TestTable1(t *testing.T) {
	res := run(t, "table1")
	if res.Metrics["sizes"] != 4 {
		t.Errorf("sizes = %v", res.Metrics["sizes"])
	}
	if len(res.Tables) != 1 || res.Tables[0].Rows() != 4 {
		t.Error("table1 must render 4 rows")
	}
}

func TestFreqStudy(t *testing.T) {
	res := run(t, "freq")
	frac := res.Metrics["problematic_frac"]
	if frac < 0.02 || frac > 0.25 {
		t.Errorf("problematic fraction = %v, paper says ~10%%", frac)
	}
	if res.Metrics["median_std_hz"] > 10_000 {
		t.Errorf("median std = %v Hz; most hosts should be stable", res.Metrics["median_std_hz"])
	}
}

func TestVerifyCost(t *testing.T) {
	res := run(t, "verifycost")
	if res.Metrics["speedup"] < 20 {
		t.Errorf("speedup over pairwise = %v, want large", res.Metrics["speedup"])
	}
	if res.Metrics["ours_usd"] >= res.Metrics["pairwise_usd"]/10 {
		t.Errorf("cost advantage too small: ours %v vs pairwise %v",
			res.Metrics["ours_usd"], res.Metrics["pairwise_usd"])
	}
	// SIE saves almost nothing relative to plain pairwise: the orchestrator
	// stacks instances, so the elimination round removes (nearly) nobody.
	if res.Metrics["sie_tests"] < res.Metrics["pairwise_tests"]*0.5 {
		t.Errorf("SIE eliminated too much: %v tests vs %v pairwise",
			res.Metrics["sie_tests"], res.Metrics["pairwise_tests"])
	}
}

func TestGen2Accuracy(t *testing.T) {
	res := run(t, "gen2")
	if r := res.Metrics["recall"]; r < 0.9999 {
		t.Errorf("Gen2 recall = %v; must have no false negatives", r)
	}
	if p := res.Metrics["precision"]; p > 0.95 {
		t.Errorf("Gen2 precision = %v; expected coarse (paper: ≈0.48)", p)
	}
	if h := res.Metrics["hosts_per_fingerprint"]; h < 1.02 {
		t.Errorf("hosts per fingerprint = %v; expected > 1", h)
	}
	if f := res.Metrics["fmi"]; f < 0.3 || f > 0.95 {
		t.Errorf("Gen2 FMI = %v, out of plausible band", f)
	}
}

func TestNaiveMostlyFails(t *testing.T) {
	res := run(t, "naive")
	if res.Metrics["zero_pairs"] < 2 {
		t.Errorf("naive strategy succeeded too often: only %v zero-coverage pairs",
			res.Metrics["zero_pairs"])
	}
}

func TestAttackCost(t *testing.T) {
	res := run(t, "cost")
	for _, region := range []string{"us-east1", "us-central1", "us-west1"} {
		usd := res.Metrics["usd_"+region]
		if usd <= 0 {
			t.Errorf("%s: zero cost", region)
		}
		// Quick mode scales instances 4× down and launches 2/3: the paper's
		// $23–27 becomes a few dollars; allow a broad but bounded band.
		if usd > 30 {
			t.Errorf("%s: cost %v implausibly high", region, usd)
		}
	}
}

func TestGen2CoverageExperiment(t *testing.T) {
	res := run(t, "gen2cov")
	east := res.Metrics["coverage_us-east1_account-2"]
	if east < 0.5 {
		t.Errorf("gen2 us-east1 coverage = %v, want high", east)
	}
}

func TestResultRendering(t *testing.T) {
	res := run(t, "table1")
	out := res.String()
	for _, want := range []string{"table1", "Pico", "metrics:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q", want)
		}
	}
}

func TestMitigationExperiment(t *testing.T) {
	res := run(t, "mitigation")
	if res.Metrics["gen1_fmi_baseline"] < 0.99 {
		t.Errorf("baseline gen1 FMI = %v", res.Metrics["gen1_fmi_baseline"])
	}
	if res.Metrics["gen1_recall_mitigated"] > 0.3 {
		t.Errorf("mitigated gen1 recall = %v; trap-and-emulate should break boot-time fingerprints",
			res.Metrics["gen1_recall_mitigated"])
	}
	if res.Metrics["gen2_precision_mitigated"] >= res.Metrics["gen2_precision_baseline"] {
		t.Error("TSC scaling did not degrade Gen2 fingerprint precision")
	}
	if res.Metrics["verify_tests_mitigated"] < res.Metrics["verify_tests_baseline"]*3 {
		t.Errorf("verification under mitigations (%v tests) not clearly costlier than baseline (%v)",
			res.Metrics["verify_tests_mitigated"], res.Metrics["verify_tests_baseline"])
	}
	if res.Metrics["timer_overhead_factor"] < 50 {
		t.Errorf("timer overhead factor = %v", res.Metrics["timer_overhead_factor"])
	}
	// Random placement must not *help* the attacker, and must cost the
	// victim its image locality (the defense's operational price).
	if res.Metrics["sched_coverage_randomized"] > res.Metrics["sched_coverage_baseline"]+0.05 {
		t.Errorf("random placement increased coverage: %v vs %v",
			res.Metrics["sched_coverage_randomized"], res.Metrics["sched_coverage_baseline"])
	}
	if res.Metrics["sched_coldhosts_randomized"] < res.Metrics["sched_coldhosts_baseline"]+0.2 {
		t.Errorf("random placement did not cost locality: cold %v vs baseline %v",
			res.Metrics["sched_coldhosts_randomized"], res.Metrics["sched_coldhosts_baseline"])
	}
}

func TestExtractionExperiment(t *testing.T) {
	res := run(t, "extraction")
	if res.Metrics["spies"] == 0 {
		t.Fatal("no spies; co-location failed in the extraction world")
	}
	if res.Metrics["colocated_accuracy"] < 0.99 {
		t.Errorf("co-located secret recovery = %v, want ~1", res.Metrics["colocated_accuracy"])
	}
	// A remote observer reads all-zero: it matches the secret only on its
	// zero bits (the 32-bit constant has 24 ones → accuracy 0.25).
	if res.Metrics["remote_accuracy"] > 0.6 {
		t.Errorf("remote observer accuracy = %v; it should learn nothing", res.Metrics["remote_accuracy"])
	}
}

func TestReattackExperiment(t *testing.T) {
	res := run(t, "reattack")
	if res.Metrics["recorded_hosts"] == 0 {
		t.Fatal("no victim hosts recorded")
	}
	if e := res.Metrics["focus_effort"]; e <= 0 || e > 0.6 {
		t.Errorf("focus effort = %v, want a small nonzero fraction", e)
	}
	full := res.Metrics["reattack_full_coverage"]
	focused := res.Metrics["reattack_focused_coverage"]
	if focused < full*0.6 {
		t.Errorf("focused coverage %v lost too much vs full %v", focused, full)
	}
}

func TestAblationsExperiment(t *testing.T) {
	res := run(t, "ablations")
	// m=2 must be cheaper than m=4 on this workload (large m explodes the
	// cross-cluster refinement) while keeping recall high.
	if res.Metrics["m2_tests"] >= res.Metrics["m4_tests"] {
		t.Errorf("m=2 used %v tests, m=4 used %v; expected m=2 cheaper",
			res.Metrics["m2_tests"], res.Metrics["m4_tests"])
	}
	if res.Metrics["m2_recall"] < 0.99 {
		t.Errorf("m=2 recall %v", res.Metrics["m2_recall"])
	}
	// Scalable verification beats both baselines by a wide margin.
	if res.Metrics["verify_scalable_tests"]*10 > res.Metrics["verify_pairwise_tests"] {
		t.Error("scalable verification lost its advantage")
	}
	if res.Metrics["verify_sie_tests"] < res.Metrics["verify_pairwise_tests"]*0.5 {
		t.Error("SIE eliminated instances; it should not in FaaS")
	}
	// Membus costs far more wall-clock than RNG at equal quality.
	if res.Metrics["channel_membus_minutes"] < res.Metrics["channel_rng_minutes"]*10 {
		t.Error("membus channel not clearly slower")
	}
	// Launch interval sweet spot: 10 min beats both 2 min and 45 min.
	if res.Metrics["interval_10m0s"] <= res.Metrics["interval_2m0s"] ||
		res.Metrics["interval_10m0s"] <= res.Metrics["interval_45m0s"] {
		t.Errorf("no 10-minute sweet spot: %v / %v / %v",
			res.Metrics["interval_2m0s"], res.Metrics["interval_10m0s"], res.Metrics["interval_45m0s"])
	}
	// More services, more footprint (with diminishing returns).
	if res.Metrics["services_6"] <= res.Metrics["services_1"] {
		t.Error("service count did not grow footprint")
	}
	// Frequency-source trade-off: method 1 loses fingerprints to drift over
	// five days; method 2 keeps (nearly) all it can measure, but cannot
	// measure every host.
	if res.Metrics["freq_reported_survival"] >= 0.95 {
		t.Errorf("reported-frequency fingerprints did not expire: survival %v",
			res.Metrics["freq_reported_survival"])
	}
	if res.Metrics["freq_measured_survival"] < 0.9 {
		t.Errorf("measured-frequency fingerprints decayed: survival %v",
			res.Metrics["freq_measured_survival"])
	}
	if f := res.Metrics["freq_measured_usable_frac"]; f > 0.99 || f < 0.7 {
		t.Errorf("measured-method usable fraction = %v, want ~0.9", f)
	}
	// Dynamic placement monotonically erodes coverage.
	if res.Metrics["dynamic_0.75"] >= res.Metrics["dynamic_0.00"] {
		t.Errorf("dynamic placement did not erode coverage: %v vs %v",
			res.Metrics["dynamic_0.75"], res.Metrics["dynamic_0.00"])
	}
}

func TestPolicyAblationExperiment(t *testing.T) {
	res := run(t, "policyablation")
	cr := res.Metrics["coverage_cloudrun"]
	ru := res.Metrics["coverage_random_uniform"]
	ll := res.Metrics["coverage_least_loaded"]
	// The optimized attack exploits CloudRun-style placement affinity; a
	// uniform-random scheduler is the §6 mitigation that breaks it.
	if cr < 0.5 {
		t.Errorf("coverage under cloudrun policy = %v, want high", cr)
	}
	if ru >= cr {
		t.Errorf("random-uniform did not break the attack: coverage %v vs cloudrun %v", ru, cr)
	}
	if ll >= cr {
		t.Errorf("least-loaded did not reduce coverage: %v vs cloudrun %v", ll, cr)
	}
	// Each policy variant records a footprint and a verification cost.
	for _, key := range []string{"cloudrun", "random_uniform", "least_loaded"} {
		if res.Metrics["footprint_"+key] <= 0 {
			t.Errorf("footprint_%s missing", key)
		}
		if res.Metrics["verify_tests_"+key] <= 0 {
			t.Errorf("verify_tests_%s missing", key)
		}
	}
}

func TestStrategyAblationExperiment(t *testing.T) {
	res := run(t, "strategyablation")
	for _, name := range []string{"naive", "optimized", "adaptive"} {
		for _, key := range []string{"coverage_", "usd_", "waves_", "footprint_", "ctests_"} {
			if _, ok := res.Metrics[key+name]; !ok {
				t.Errorf("metric %s%s missing", key, name)
			}
		}
	}
	// The acceptance property of the ablation: adaptive spends no more than
	// optimized while covering strictly more victims than naive.
	if ad, opt := res.Metrics["usd_adaptive"], res.Metrics["usd_optimized"]; ad > opt {
		t.Errorf("adaptive cost $%v above optimized $%v", ad, opt)
	}
	if ad, nv := res.Metrics["coverage_adaptive"], res.Metrics["coverage_naive"]; ad <= nv {
		t.Errorf("adaptive coverage %v not above naive %v", ad, nv)
	}
	if res.Metrics["waves_adaptive"] >= res.Metrics["waves_optimized"] {
		t.Errorf("adaptive did not save launch waves: %v vs %v",
			res.Metrics["waves_adaptive"], res.Metrics["waves_optimized"])
	}
	if res.Metrics["usd_naive"] >= res.Metrics["usd_optimized"] {
		t.Error("naive cost not below optimized")
	}
}

func TestChannelAblationExperiment(t *testing.T) {
	res := run(t, "channelablation")
	for _, ch := range []string{"rng", "llc", "membus", "combined"} {
		for _, key := range []string{"verify_tests_", "verify_minutes_", "verify_usd_", "verify_fmi_"} {
			if _, ok := res.Metrics[key+ch]; !ok {
				t.Errorf("metric %s%s missing", key, ch)
			}
		}
		for _, reg := range []string{"clean", "rngstorm"} {
			for _, key := range []string{"cov_", "ctests_", "covertmin_"} {
				if _, ok := res.Metrics[key+ch+"_"+reg]; !ok {
					t.Errorf("metric %s%s_%s missing", key, ch, reg)
				}
			}
		}
	}
	// The channel physics: every channel runs the same test count on the
	// shared world, so serialized time orders by round time — LLC cheapest,
	// membus dearest, combined the sum of its members.
	llc, rng, bus := res.Metrics["verify_minutes_llc"], res.Metrics["verify_minutes_rng"], res.Metrics["verify_minutes_membus"]
	if !(llc < rng && rng < bus) {
		t.Errorf("verify minutes not ordered llc < rng < membus: %v, %v, %v", llc, rng, bus)
	}
	if comb := res.Metrics["verify_minutes_combined"]; comb <= bus {
		t.Errorf("combined verify minutes %v not above membus %v", comb, bus)
	}
	// A combined test runs all three members, so its clean campaign pays
	// exactly 3x the single-channel CTest count.
	if c3, c1 := res.Metrics["ctests_combined_clean"], res.Metrics["ctests_rng_clean"]; c3 != 3*c1 {
		t.Errorf("combined clean CTests %v, want 3x rng's %v", c3, c1)
	}
	// The rng misfire storm hits only the RNG family: the single-channel rng
	// campaign re-votes its way through at a multiple of the llc campaign's
	// spend, and the combined tester stays at its flat 3x.
	if sr, sl := res.Metrics["ctests_rng_rngstorm"], res.Metrics["ctests_llc_rngstorm"]; sr <= sl {
		t.Errorf("rng storm CTests %v not above llc's %v", sr, sl)
	}
	if sc, sl := res.Metrics["ctests_combined_rngstorm"], res.Metrics["ctests_llc_rngstorm"]; sc != 3*sl {
		t.Errorf("combined storm CTests %v, want 3x llc's %v", sc, sl)
	}
	// Resilience: every channel still covers victims under the storm.
	for _, ch := range []string{"rng", "llc", "membus", "combined"} {
		if cov := res.Metrics["cov_"+ch+"_rngstorm"]; cov < 0.9 {
			t.Errorf("%s storm coverage = %v, want near-total", ch, cov)
		}
	}
}

func TestNoiseSweepExperiment(t *testing.T) {
	res := run(t, "noisesweep")
	// Quick mode keeps the idle and saturated tiers, rng+llc in the primitive
	// sweep, and llc-only stock-vs-hardened campaigns.
	for _, tier := range []string{"idle", "sat"} {
		for _, ch := range []string{"rng", "llc"} {
			for _, key := range []string{"ctest_fn_", "ctest_fp_", "margin_"} {
				if _, ok := res.Metrics[key+ch+"_"+tier]; !ok {
					t.Errorf("metric %s%s_%s missing", key, ch, tier)
				}
			}
		}
		for _, key := range []string{"fprint_fn_", "fprint_fp_", "util_"} {
			if _, ok := res.Metrics[key+tier]; !ok {
				t.Errorf("metric %s%s missing", key, tier)
			}
		}
		for _, variant := range []string{"stock", "hard"} {
			for _, key := range []string{"cov_", "truecov_", "usd_", "noiseusd_", "lowmargin_"} {
				if _, ok := res.Metrics[key+"llc_"+tier+"_"+variant]; !ok {
					t.Errorf("metric %sllc_%s_%s missing", key, tier, variant)
				}
			}
		}
	}
	// The physics the sweep exists to show: serving bystanders push the
	// stock LLC verdict underwater at saturation (false negatives dominate),
	// while the RNG (nobody else's workload touches it) and the boot-time
	// fingerprints stay exact.
	if fn := res.Metrics["ctest_fn_llc_sat"]; fn < 0.5 {
		t.Errorf("saturated llc CTest FN rate = %v, want collapse (≥ 0.5)", fn)
	}
	if fn := res.Metrics["ctest_fn_llc_idle"]; fn != 0 {
		t.Errorf("idle llc CTest FN rate = %v, want 0", fn)
	}
	if fn := res.Metrics["ctest_fn_rng_sat"]; fn != 0 {
		t.Errorf("saturated rng CTest FN rate = %v, want load-insensitive 0", fn)
	}
	for _, tier := range []string{"idle", "sat"} {
		if v := res.Metrics["fprint_fn_"+tier] + res.Metrics["fprint_fp_"+tier]; v != 0 {
			t.Errorf("%s fingerprint error = %v, want exactly 0", tier, v)
		}
	}
	// Utilization must actually differ between the tiers the campaign sees.
	if ui, us := res.Metrics["util_idle"], res.Metrics["util_sat"]; us < ui+0.5 {
		t.Errorf("tier utilization did not separate: idle %v vs saturated %v", ui, us)
	}
	// Campaign side — the tentpole's acceptance shape: the stock campaign
	// loses most of its coverage at saturation, the hardened campaign
	// retains ≥95% of its quiet-world coverage through the ladder, claims
	// stay honest (truecov tracks cov: every claimed spy is host-verified),
	// and only the hardened variant meters noise-adaptation spend.
	if ci, cs := res.Metrics["cov_llc_idle_stock"], res.Metrics["cov_llc_sat_stock"]; cs > ci-0.3 {
		t.Errorf("stock campaign did not degrade under saturation: idle %v vs saturated %v", ci, cs)
	}
	if ci, cs := res.Metrics["cov_llc_idle_hard"], res.Metrics["cov_llc_sat_hard"]; cs < 0.95*ci {
		t.Errorf("hardened campaign lost saturated coverage: idle %v vs saturated %v", ci, cs)
	}
	for _, tier := range []string{"idle", "sat"} {
		if ch, cs := res.Metrics["cov_llc_"+tier+"_hard"], res.Metrics["cov_llc_"+tier+"_stock"]; ch < cs {
			t.Errorf("%s: hardened coverage %v below stock %v", tier, ch, cs)
		}
		for _, variant := range []string{"stock", "hard"} {
			cell := "llc_" + tier + "_" + variant
			if tc, cv := res.Metrics["truecov_"+cell], res.Metrics["cov_"+cell]; tc < cv-1e-9 {
				t.Errorf("%s: claimed coverage %v exceeds ground truth %v", cell, cv, tc)
			}
		}
		if nu := res.Metrics["noiseusd_llc_"+tier+"_stock"]; nu != 0 {
			t.Errorf("%s: stock campaign metered noise spend $%v", tier, nu)
		}
	}
	if nu := res.Metrics["noiseusd_llc_sat_hard"]; nu <= 0 {
		t.Errorf("saturated hardened campaign metered no noise spend: $%v", nu)
	}
	if lm := res.Metrics["lowmargin_llc_sat_hard"]; lm <= 0 {
		t.Errorf("saturated hardened campaign saw no low-margin tests: %v", lm)
	}
}

func TestMultiRegionExperiment(t *testing.T) {
	res := run(t, "multiregion")
	for _, planner := range []string{"static-even", "proportional", "adaptive"} {
		for _, r := range []string{"r1", "r3"} {
			for _, key := range []string{"coverage_", "usd_", "cpv_", "rounds_", "footprint_"} {
				if _, ok := res.Metrics[key+planner+"_"+r]; !ok {
					t.Errorf("metric %s%s_%s missing", key, planner, r)
				}
			}
		}
	}
	// Attacking more regions reaches more hosts at proportionally more spend.
	if f3, f1 := res.Metrics["footprint_static-even_r3"], res.Metrics["footprint_static-even_r1"]; f3 <= f1 {
		t.Errorf("three-region footprint %v not above one-region %v", f3, f1)
	}
	if u3, u1 := res.Metrics["usd_static-even_r3"], res.Metrics["usd_static-even_r1"]; u3 <= u1 {
		t.Errorf("three-region cost $%v not above one-region $%v", u3, u1)
	}
	// The budget is conserved: no planner can outspend the static split, and
	// the adaptive planner never uses more rounds than it.
	for _, planner := range []string{"proportional", "adaptive"} {
		if u, s := res.Metrics["usd_"+planner+"_r3"], res.Metrics["usd_static-even_r3"]; u > s+1e-9 {
			t.Errorf("%s overspent the budget: $%v vs static-even $%v", planner, u, s)
		}
	}
	if ra, rs := res.Metrics["rounds_adaptive_r3"], res.Metrics["rounds_static-even_r3"]; ra > rs {
		t.Errorf("adaptive used %v rounds, static-even %v", ra, rs)
	}
	// Reallocation must not break the attack: the fleet still covers victims.
	if cov := res.Metrics["coverage_adaptive_r3"]; cov < 0.9 {
		t.Errorf("adaptive three-region coverage = %v, want near-total", cov)
	}
	// Cost per covered victim — the experiment's headline — never favors
	// static-even over adaptive.
	if ca, cs := res.Metrics["cpv_adaptive_r3"], res.Metrics["cpv_static-even_r3"]; ca > cs+1e-9 {
		t.Errorf("adaptive $%v per victim above static-even $%v", ca, cs)
	}
}
