package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/report"
)

func runFig9(ctx Context) (*Result, error) {
	d, _ := ByID("fig9")
	res := newResult(d)

	// Main run: 10-minute interval. Separate platforms per variant keep
	// demand state independent while the shared root seed keeps the world
	// (hosts, base pools) identical — a controlled sweep, so the trial
	// sub-seed is deliberately ignored.
	type variant struct {
		name     string
		interval time.Duration
	}
	variants := []variant{
		{"10min", 10 * time.Minute},
		{"2min", 2 * time.Minute},
		{"45min", 45 * time.Minute},
	}
	type series struct{ apparent, cumulative []int }
	runs, err := runTrials(ctx, len(variants), func(t Trial) (series, error) {
		pl := ctx.platform()
		dc := pl.MustRegion(faas.USEast1)
		svc := dc.Account("account-1").DeployService("exp4", faas.ServiceConfig{})
		ap, cum, err := launchSeries(dc, 6, ctx.launchSize(), variants[t.Index].interval,
			func(int) *faas.Service { return svc })
		return series{ap, cum}, err
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		apparent, cumulative := runs[vi].apparent, runs[vi].cumulative
		if v.name == "10min" {
			res.Figures = append(res.Figures,
				footprintFigure("fig9", "Apparent hosts with 10-minute launch intervals", apparent, cumulative))
		}
		extra := cumulative[5] - apparent[0]
		res.Metrics["extra_hosts_"+v.name] = float64(extra)
		res.Metrics["cumulative_after_6_"+v.name] = float64(cumulative[5])
	}

	res.note("paper: with a 10-minute interval the footprint grows drastically (+177 hosts by launch 6, 264 cumulative); with 2 minutes only +12; at ≥30 minutes the behavior disappears")
	return res, nil
}

func runFig10(ctx Context) (*Result, error) {
	d, _ := ByID("fig10")
	res := newResult(d)

	// The six episodes accumulate helper hosts on one timeline, so this is
	// a single trial on the shared engine path; the trial sub-seed is
	// deliberately unused.
	type series struct{ perEpisode, cumulative []float64 }
	runs, err := runTrials(ctx, 1, func(Trial) (series, error) {
		pl := ctx.platform()
		dc := pl.MustRegion(faas.USEast1)
		acct := dc.Account("account-1")

		cumulativeHelpers := make(map[fingerprint.Gen1]bool)
		var out series
		for ep := 0; ep < 6; ep++ {
			svc := acct.DeployService(fmt.Sprintf("exp4-ep%d", ep), faas.ServiceConfig{})

			// First launch: record the base footprint of this episode.
			first := attack.NewFootprintTracker(fingerprint.DefaultPrecision)
			insts, err := svc.Launch(ctx.launchSize())
			if err != nil {
				return series{}, err
			}
			if _, err := first.Record(insts); err != nil {
				return series{}, err
			}
			svc.Disconnect()
			dc.Scheduler().Advance(10 * time.Minute)

			// Five more hot launches at the 10-minute interval.
			all := attack.NewFootprintTracker(fingerprint.DefaultPrecision)
			for l := 0; l < 5; l++ {
				insts, err := svc.Launch(ctx.launchSize())
				if err != nil {
					return series{}, err
				}
				if _, err := all.Record(insts); err != nil {
					return series{}, err
				}
				svc.Disconnect()
				dc.Scheduler().Advance(10 * time.Minute)
			}

			// Helper footprint: hosts seen in later launches but not in the
			// first (base) launch.
			baseSet := first.Fingerprints()
			helpers := 0
			for fp := range all.Fingerprints() {
				if !baseSet[fp] {
					helpers++
					cumulativeHelpers[fp] = true
				}
			}
			out.perEpisode = append(out.perEpisode, float64(helpers))
			out.cumulative = append(out.cumulative, float64(len(cumulativeHelpers)))

			// Cool down between episodes so each starts cold.
			dc.Scheduler().Advance(45 * time.Minute)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	perEpisode, cumulative := runs[0].perEpisode, runs[0].cumulative

	fig := &report.Figure{
		ID:     "fig10",
		Title:  "Helper hosts across six episodes (different service per episode)",
		XLabel: "episode",
		YLabel: "helper hosts",
	}
	xs := make([]float64, len(perEpisode))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	fig.AddSeries("apparent helper hosts", xs, perEpisode)
	fig.AddSeries("cumulative apparent helper hosts", xs, cumulative)
	res.Figures = append(res.Figures, fig)

	res.Metrics["episode1_helpers"] = perEpisode[0]
	res.Metrics["episode6_helpers"] = perEpisode[5]
	res.Metrics["cumulative_after_6_episodes"] = cumulative[5]
	res.Metrics["growth_last_episode"] = cumulative[5] - cumulative[4]
	res.note("paper: cumulative helper footprint expands each episode, but by less than the per-episode helper count — helper sets are different yet overlapping")
	return res, nil
}
