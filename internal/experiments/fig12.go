package experiments

import (
	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

func runFig12(ctx Context) (*Result, error) {
	d, _ := ByID("fig12")
	res := newResult(d)
	profiles := ctx.profiles()
	attacker, victims := accounts()
	allAccounts := append([]string{attacker}, victims...)

	// Four launches per service: helper-host unlocking saturates after three
	// consecutive hot launches, so the fourth explores at full width.
	servicesPerAccount := 8
	launches := 4
	if ctx.Quick {
		servicesPerAccount = 4
	}

	// One trial per region, each exploring its own single-region world.
	type scaleRun struct {
		attackerHosts int
		trueHosts     int
		est           *attack.ScaleEstimate
	}
	runs, err := runTrials(ctx, len(profiles), func(t Trial) (scaleRun, error) {
		prof := profiles[t.Index]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)

		// First, the attacker's own footprint with the standard optimized
		// campaign (six services): the paper reports the share of the
		// discovered fleet the attacker occupies.
		camp, err := ctx.attackerCampaign(dc, attacker, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return scaleRun{}, err
		}

		// Then the scale exploration with 8 services from each of the three
		// accounts.
		cfg := ctx.attackCfg()
		cfg.Launches = launches
		est, err := attack.EstimateScale(dc, allAccounts, servicesPerAccount, cfg)
		if err != nil {
			return scaleRun{}, err
		}
		return scaleRun{camp.Result().Footprint.Cumulative(), dc.TrueHostCount(), est}, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &report.Figure{
		ID:     "fig12",
		Title:  "Cumulative unique apparent hosts across exploration launches",
		XLabel: "launch",
		YLabel: "cumulative unique apparent hosts",
	}
	tbl := report.NewTable("Data-center scale estimation",
		"region", "found hosts", "capture-recapture estimate", "true hosts", "attacker hosts", "attacker share")

	for ri, run := range runs {
		region := profiles[ri].Name
		est := run.est

		xs := make([]float64, len(est.CumulativeByLaunch))
		ys := make([]float64, len(est.CumulativeByLaunch))
		for i, v := range est.CumulativeByLaunch {
			xs[i] = float64(i + 1)
			ys[i] = float64(v)
		}
		fig.AddSeries(string(region), xs, ys)

		share := float64(run.attackerHosts) / float64(est.UniqueHosts)
		tbl.AddRow(string(region), est.UniqueHosts, est.ChapmanEstimate, run.trueHosts, run.attackerHosts, share)
		res.Metrics["found_"+string(region)] = float64(est.UniqueHosts)
		res.Metrics["chapman_"+string(region)] = est.ChapmanEstimate
		res.Metrics["true_"+string(region)] = float64(run.trueHosts)
		res.Metrics["attacker_share_"+string(region)] = share
	}
	res.Figures = append(res.Figures, fig)
	res.Tables = append(res.Tables, tbl)
	res.note("paper: 474 apparent hosts in us-east1, 1702 in us-central1, 199 in us-west1; the attacker occupied 59%%, 53%%, and 82%% of them (904 hosts at once in us-central1)")
	res.note("extension: the capture-recapture (Chapman) column is a point estimate of the reachable fleet from the overlap between exploration halves — the paper reports only the lower bound")
	return res, nil
}
