package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/report"
	"eaao/internal/stats"
)

// precisionSweep is the p_boot sweep of Fig. 4: 10^-4 s to 10^3 s.
var precisionSweep = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	100 * time.Second,
	1000 * time.Second,
}

// verifiedTruth establishes ground-truth co-location labels for live
// instances using the scalable covert-channel methodology (§4.3), exactly as
// the paper does. The samples are collected first so that truth verification
// (which advances virtual time) cannot perturb them.
func verifiedTruth(dc *faas.DataCenter, insts []*faas.Instance, precision time.Duration) ([]int, *coloc.Result, error) {
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	items := make([]coloc.Item, len(insts))
	for i, inst := range insts {
		g, err := inst.Guest()
		if err != nil {
			return nil, nil, err
		}
		s, err := fingerprint.CollectGen1(g)
		if err != nil {
			return nil, nil, err
		}
		fp := fingerprint.Gen1FromSample(s, precision)
		items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	res, err := coloc.Verify(tester, items, coloc.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return res.Labels, res, nil
}

// collectSamples takes one Gen 1 measurement from every instance.
func collectSamples(insts []*faas.Instance) ([]fingerprint.Sample, error) {
	out := make([]fingerprint.Sample, len(insts))
	for i, inst := range insts {
		g, err := inst.Guest()
		if err != nil {
			return nil, err
		}
		s, err := fingerprint.CollectGen1(g)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// fig4Run is the outcome of one (region × repetition) measurement: one
// score per sweep precision, plus the perfect-run flag at the default
// precision.
type fig4Run struct {
	fmi, prec, rec []float64 // indexed like precisionSweep
	perfect        bool
}

func runFig4(ctx Context) (*Result, error) {
	d, _ := ByID("fig4")
	res := newResult(d)
	profiles := ctx.profiles()
	reps := ctx.reps()

	// One trial per (region × repetition). Each builds its own
	// single-region world from the trial sub-seed — repetitions model
	// "different days and different times of day", i.e. independent
	// measurement conditions.
	runs, err := runTrials(ctx, len(profiles)*reps, func(t Trial) (fig4Run, error) {
		prof := profiles[t.Index/reps]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		svc := dc.Account("account-1").DeployService("fp-study", faas.ServiceConfig{})
		insts, err := svc.Launch(ctx.launchSize())
		if err != nil {
			return fig4Run{}, err
		}
		samples, err := collectSamples(insts)
		if err != nil {
			return fig4Run{}, err
		}
		truth, _, err := verifiedTruth(dc, insts, fingerprint.DefaultPrecision)
		if err != nil {
			return fig4Run{}, err
		}
		var r fig4Run
		for _, p := range precisionSweep {
			labels := make([]fingerprint.Gen1, len(samples))
			for i, s := range samples {
				labels[i] = fingerprint.Gen1FromSample(s, p)
			}
			sc := metrics.ScoreOf(labels, truth)
			r.fmi = append(r.fmi, sc.FMI)
			r.prec = append(r.prec, sc.Precision)
			r.rec = append(r.rec, sc.Recall)
			if p == fingerprint.DefaultPrecision {
				r.perfect = metrics.CountPairs(labels, truth).Perfect()
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	// score[pi] accumulates per-run metric values for precision index pi,
	// merged in trial order.
	type acc struct{ fmi, prec, rec []float64 }
	scores := make([]acc, len(precisionSweep))
	perfectRuns, totalRuns := 0, 0
	for _, r := range runs {
		for pi := range precisionSweep {
			scores[pi].fmi = append(scores[pi].fmi, r.fmi[pi])
			scores[pi].prec = append(scores[pi].prec, r.prec[pi])
			scores[pi].rec = append(scores[pi].rec, r.rec[pi])
		}
		totalRuns++
		if r.perfect {
			perfectRuns++
		}
	}

	xs := make([]float64, len(precisionSweep))
	fmiY := make([]float64, len(precisionSweep))
	precY := make([]float64, len(precisionSweep))
	recY := make([]float64, len(precisionSweep))
	fmiStd := make([]float64, len(precisionSweep))
	for pi, p := range precisionSweep {
		xs[pi] = p.Seconds()
		fmiY[pi] = stats.Mean(scores[pi].fmi)
		precY[pi] = stats.Mean(scores[pi].prec)
		recY[pi] = stats.Mean(scores[pi].rec)
		fmiStd[pi] = stats.StdDev(scores[pi].fmi)
	}

	fig := &report.Figure{
		ID:     "fig4",
		Title:  "Average fingerprint accuracy vs p_boot",
		XLabel: "p_boot (s)",
		YLabel: "score",
	}
	fig.AddSeries("FMI", xs, fmiY)
	fig.AddSeries("Recall", xs, recY)
	fig.AddSeries("Precision", xs, precY)
	res.Figures = append(res.Figures, fig)

	tbl := report.NewTable("Fingerprint accuracy by rounding precision",
		"p_boot (s)", "FMI", "precision", "recall", "FMI stddev")
	for pi := range precisionSweep {
		tbl.AddRow(xs[pi], fmiY[pi], precY[pi], recY[pi], fmiStd[pi])
	}
	res.Tables = append(res.Tables, tbl)

	// Headline metrics at the sweet spot.
	for pi, p := range precisionSweep {
		switch p {
		case 100 * time.Millisecond:
			res.Metrics["fmi@100ms"] = fmiY[pi]
		case time.Second:
			res.Metrics["fmi@1s"] = fmiY[pi]
			res.Metrics["precision@1s"] = precY[pi]
			res.Metrics["recall@1s"] = recY[pi]
		case 1000 * time.Second:
			res.Metrics["precision@1000s"] = precY[pi]
		case time.Millisecond:
			res.Metrics["recall@1ms"] = recY[pi]
		}
	}
	res.Metrics["perfect_runs"] = float64(perfectRuns)
	res.Metrics["total_runs"] = float64(totalRuns)
	res.note("paper: sweet spot 100 ms ≤ p_boot ≤ 1 s with FMI ≈ 0.9999; 14 of 15 runs perfect at 1 s")
	res.note(fmt.Sprintf("measured: %d of %d runs perfect at p_boot = 1 s", perfectRuns, totalRuns))
	return res, nil
}
