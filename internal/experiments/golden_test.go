package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"runtime"
	"strings"
	"testing"
)

// goldenSeed is the CLI's documented default seed (chosen so the study
// accounts' base-pool geometry resembles the paper's; see CLAUDE.md).
const goldenSeed = 9

// goldenQuickDigest is the SHA-256 over the rendered seed-9 Quick-mode
// output of every seed-era experiment (runtime metrics excluded), under the
// default per-instance lifecycle kernel.
//
// RE-PIN HISTORY: the original hash (b1f376cc01…, recorded immediately before
// the placement-policy extraction in PR 2) is preserved below as
// legacyQuickDigest. PR 6 deliberately re-pinned this constant when the
// hourly churn/preemption sweep and launch-time demand-decay detection were
// replaced by per-instance scheduled events: the kernel draws per-instance
// exponential delays (same per-hour survival probability as the sweep's
// Bernoulli, different RNG stream), gives new instances one interval of
// churn/preemption immunity, and fires demand decay at window expiry instead
// of at the next cold launch — distributionally equivalent dynamics, not
// byte-identical draws. TestLegacySweepDigestFrozen proves the pre-kernel
// behavior is still reachable unchanged, so the delta between the two hashes
// is exactly the kernel change and nothing else.
//
// New experiments may be appended to the registry freely — the digest
// covers exactly the ids in goldenIDs, not "whatever run all prints".
const goldenQuickDigest = "22d68b225e0becd1cd208db36b23127acb83d1f0c22cc064163ca03c823d9de7"

// legacyQuickDigest is the seed-era golden hash, now produced by running the
// same experiments with Context.LegacySweeps (the frozen hourly-sweep
// implementation). It must never change: the legacy path exists precisely so
// this hash stays reachable.
const legacyQuickDigest = "b1f376cc018b112b7d323bd8c86ccce8e78a5fe59009d0ca73cebf49e8bf1f2e"

// goldenIDs is the frozen experiment set the golden digest covers (the
// registry as of the growth seed, in presentation order).
var goldenIDs = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11a", "fig11b", "fig12", "table1", "freq", "verifycost",
	"gen2", "naive", "cost", "gen2cov", "mitigation", "extraction",
	"reattack", "ablations",
}

// quickDigest renders every experiment in ids at Quick scale under ctx's
// options and hashes the concatenated output. The runtime_* metrics (wall
// clock, worker count, throughput rates) are the only nondeterministic part
// of a Result, so they are dropped before rendering.
func quickDigest(t *testing.T, ctx Context, ids []string) string {
	t.Helper()
	h := sha256.New()
	for _, id := range ids {
		res, err := Run(id, ctx)
		if err != nil {
			t.Fatalf("%s (jobs=%d): %v", id, ctx.Jobs, err)
		}
		for k := range res.Metrics {
			if strings.HasPrefix(k, "runtime_") {
				delete(res.Metrics, k)
			}
		}
		if _, err := io.WriteString(h, res.String()); err != nil {
			t.Fatal(err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenDigestStableAcrossJobs is the determinism guard: the Quick-mode
// seed-9 digest must be byte-stable for any trial-engine worker count, and —
// on the reference architecture — must match the recorded golden hash, so
// any behavioral drift in the placement engine (or anywhere upstream of it)
// fails loudly instead of silently recalibrating every experiment.
func TestGoldenDigestStableAcrossJobs(t *testing.T) {
	seq := quickDigest(t, Context{Seed: goldenSeed, Quick: true, Jobs: 1}, goldenIDs)
	par := quickDigest(t, Context{Seed: goldenSeed, Quick: true, Jobs: 8}, goldenIDs)
	if seq != par {
		t.Fatalf("digest differs across -jobs values:\n  jobs=1: %s\n  jobs=8: %s", seq, par)
	}
	// Floating-point instruction selection can differ across architectures
	// (e.g. fused multiply-add on arm64), so the exact golden hash is only
	// pinned on the architecture it was recorded on.
	if runtime.GOARCH != "amd64" {
		t.Logf("digest %s (golden comparison skipped on %s)", seq, runtime.GOARCH)
		return
	}
	if seq != goldenQuickDigest {
		t.Fatalf("seed-%d Quick digest drifted:\n  got    %s\n  golden %s\n"+
			"If this change is an intentional recalibration, re-record the golden "+
			"hash and refresh EXPERIMENTS.md; otherwise the placement refactor "+
			"changed behavior.", goldenSeed, seq, goldenQuickDigest)
	}
}

// TestScaleDigestStableAcrossJobs extends the determinism guard to the scale
// experiment (which postdates the frozen goldenIDs set, so the golden digest
// does not cover it): its deterministic outputs — instance counts, events
// executed, hosts materialized — must be byte-identical for any -jobs value,
// with only the runtime_* throughput metrics allowed to differ.
func TestScaleDigestStableAcrossJobs(t *testing.T) {
	ids := []string{"scale"}
	seq := quickDigest(t, Context{Seed: goldenSeed, Quick: true, Jobs: 1}, ids)
	par := quickDigest(t, Context{Seed: goldenSeed, Quick: true, Jobs: 8}, ids)
	if seq != par {
		t.Fatalf("scale digest differs across -jobs values:\n  jobs=1: %s\n  jobs=8: %s", seq, par)
	}
}

// TestLegacySweepDigestFrozen is the kernel-vs-sweep equivalence anchor: the
// frozen legacy lifecycle implementation (hourly sweeps, launch-time decay)
// must still reproduce the seed-era golden hash byte for byte. Together with
// TestGoldenDigestStableAcrossJobs this isolates the re-pin: the only
// difference between the two hashes is the event-kernel change itself —
// placement, lazy host materialization, autoscaling, billing, and every
// attack layer above them are proven untouched.
func TestLegacySweepDigestFrozen(t *testing.T) {
	got := quickDigest(t, Context{Seed: goldenSeed, Quick: true, Jobs: 1, LegacySweeps: true}, goldenIDs)
	if runtime.GOARCH != "amd64" {
		t.Logf("legacy digest %s (comparison skipped on %s)", got, runtime.GOARCH)
		return
	}
	if got != legacyQuickDigest {
		t.Fatalf("frozen legacy-sweep digest drifted:\n  got    %s\n  frozen %s\n"+
			"The LegacySweeps path must stay byte-identical to the seed era; "+
			"something outside the event kernel changed behavior.", got, legacyQuickDigest)
	}
}
