package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"runtime"
	"testing"
)

// goldenSeed is the CLI's documented default seed (chosen so the study
// accounts' base-pool geometry resembles the paper's; see CLAUDE.md).
const goldenSeed = 9

// goldenQuickDigest is the SHA-256 over the rendered seed-9 Quick-mode
// output of every seed-era experiment (runtime metrics excluded). It was
// recorded immediately before the placement-policy extraction (PR 2) and
// must never change without an intentional, documented calibration change:
// it is the proof that CloudRunPolicy reproduces the previously wired-in
// placement behavior byte for byte.
//
// New experiments may be appended to the registry freely — the digest
// covers exactly the ids in goldenIDs, not "whatever run all prints".
const goldenQuickDigest = "b1f376cc018b112b7d323bd8c86ccce8e78a5fe59009d0ca73cebf49e8bf1f2e"

// goldenIDs is the frozen experiment set the golden digest covers (the
// registry as of the growth seed, in presentation order).
var goldenIDs = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11a", "fig11b", "fig12", "table1", "freq", "verifycost",
	"gen2", "naive", "cost", "gen2cov", "mitigation", "extraction",
	"reattack", "ablations",
}

// quickDigest renders every experiment in ids at Quick scale and hashes the
// concatenated output. The runtime_* metrics are the only nondeterministic
// part of a Result, so they are dropped before rendering.
func quickDigest(t *testing.T, ids []string, jobs int) string {
	t.Helper()
	h := sha256.New()
	ctx := Context{Seed: goldenSeed, Quick: true, Jobs: jobs}
	for _, id := range ids {
		res, err := Run(id, ctx)
		if err != nil {
			t.Fatalf("%s (jobs=%d): %v", id, jobs, err)
		}
		delete(res.Metrics, "runtime_wall_s")
		delete(res.Metrics, "runtime_jobs")
		if _, err := io.WriteString(h, res.String()); err != nil {
			t.Fatal(err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenDigestStableAcrossJobs is the determinism guard: the Quick-mode
// seed-9 digest must be byte-stable for any trial-engine worker count, and —
// on the reference architecture — must match the recorded golden hash, so
// any behavioral drift in the placement engine (or anywhere upstream of it)
// fails loudly instead of silently recalibrating every experiment.
func TestGoldenDigestStableAcrossJobs(t *testing.T) {
	seq := quickDigest(t, goldenIDs, 1)
	par := quickDigest(t, goldenIDs, 8)
	if seq != par {
		t.Fatalf("digest differs across -jobs values:\n  jobs=1: %s\n  jobs=8: %s", seq, par)
	}
	// Floating-point instruction selection can differ across architectures
	// (e.g. fused multiply-add on arm64), so the exact golden hash is only
	// pinned on the architecture it was recorded on.
	if runtime.GOARCH != "amd64" {
		t.Logf("digest %s (golden comparison skipped on %s)", seq, runtime.GOARCH)
		return
	}
	if seq != goldenQuickDigest {
		t.Fatalf("seed-%d Quick digest drifted:\n  got    %s\n  golden %s\n"+
			"If this change is an intentional recalibration, re-record the golden "+
			"hash and refresh EXPERIMENTS.md; otherwise the placement refactor "+
			"changed behavior.", goldenSeed, seq, goldenQuickDigest)
	}
}
