package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"eaao/internal/faas"
	"eaao/internal/report"
)

// The scale experiment is the event kernel's stress artifact: one oversized
// region, a hundred-plus tenants autoscaling through demand phases, and a
// live-instance peak in the 10⁵ range — two orders of magnitude past the
// paper-scale worlds every other experiment builds. Under the legacy hourly
// sweep this world costs O(fleet) per simulated hour no matter what happens;
// under the kernel, cost tracks the number of lifecycle transitions that
// actually occur, and the lazy fleet never materializes hosts no instance
// ever touches.
//
// The deterministic outputs (instances created, peak live, preemptions,
// events executed, hosts materialized) are digest-stable per seed; the
// throughput numbers (events/sec, allocs/event) are wall-clock facts and
// carry the runtime_ prefix so digest consumers drop them (see golden_test).

// scaleProfile is the self-contained region of the experiment. Like
// faultsweep, scale ignores ctx.Policy and ctx.Faults — its point is the
// default orchestrator under load — but honors LegacySweeps so the frozen
// sweep implementation can be driven through the identical workload.
func (c Context) scaleProfile() faas.RegionProfile {
	p := faas.USEast1Profile()
	p.Name = "scale-region"
	switch {
	case c.Big:
		p.NumHosts = 80000
		p.PlacementGroups = 80
	case c.Quick:
		p.NumHosts = 4000
		p.PlacementGroups = 8
	default:
		p.NumHosts = 40000
		p.PlacementGroups = 40
	}
	// Roomy per-service quota: each tenant's demand phases stay well below it.
	p.MaxInstancesPerService = 2000
	// Preemption competes with the default 2%/h churn so both kernel branches
	// fire at scale.
	p.Faults.PreemptionRatePerHour = 0.01
	p.LegacySweeps = c.LegacySweeps
	// -load layers background-tenant traffic on top of the workload: the
	// kernel has to absorb the bystander churn (bursts, diurnal redraws,
	// congestion) alongside the tenants' own demand phases.
	if c.Load > 0 {
		p.Traffic = faas.DefaultTrafficModel(p.NumHosts, c.Load)
	}
	return p
}

// scaleWorkload returns the tenant count and per-tenant demand phases.
func (c Context) scaleWorkload() (tenants int, phases []int, phaseDur time.Duration) {
	if c.Big {
		// Headroom configuration (-big): 640 tenants stepping through the
		// full-scale phase shape creates 640×(800+300+400) = 960k instances
		// from demand steps alone; churn and preemption replacements over
		// the 6 simulated hours push the total past one million. Peak live
		// is 640×1100 = 704k instances on the 80k-host region.
		return 640, []int{800, 1100, 300, 700}, 90 * time.Minute
	}
	if c.Quick {
		return 12, []int{150, 220, 60, 140}, 45 * time.Minute
	}
	// Peak: 128 tenants × 1100 concurrent = 140,800 live instances.
	return 128, []int{800, 1100, 300, 700}, 90 * time.Minute
}

func runScale(ctx Context) (*Result, error) {
	d, _ := ByID("scale")
	res := newResult(d)
	prof := ctx.scaleProfile()
	tenants, phases, phaseDur := ctx.scaleWorkload()

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()

	pl := faas.MustPlatform(ctx.Seed, prof)
	dc := pl.MustRegion(prof.Name)
	accts := make([]*faas.Account, tenants)
	svcs := make([]*faas.Service, tenants)
	for i := range svcs {
		accts[i] = dc.Account(fmt.Sprintf("tenant-%03d", i))
		// MaxConcurrency 1 makes demand equal the instance target, so the
		// phase numbers below are per-tenant fleet sizes.
		svcs[i] = accts[i].DeployService("app", faas.ServiceConfig{MaxConcurrency: 1})
	}

	table := report.NewTable("Demand phases (all tenants step together)",
		"phase", "demand/tenant", "live instances", "created so far", "events so far", "hosts touched")
	live := func() int {
		n := 0
		for _, svc := range svcs {
			n += svc.ActiveCount() + svc.IdleCount()
		}
		return n
	}
	created := func() int {
		n := 0
		for _, a := range accts {
			n += a.Bill().Instances
		}
		return n
	}
	peak := 0
	for pi, demand := range phases {
		for _, svc := range svcs {
			err := svc.SetDemand(demand)
			// On a loaded region the congestion plane can shed a scale-up
			// like any real control plane; retry with backoff. A quiet
			// region never rejects, so the loop is inert for the recorded
			// digests.
			for tries := 0; err != nil && errors.Is(err, faas.ErrLaunchFault) && tries < 10; tries++ {
				pl.Scheduler().Advance(15 * time.Second)
				err = svc.SetDemand(demand)
			}
			if err != nil {
				return nil, err
			}
		}
		pl.Scheduler().Advance(phaseDur)
		l := live()
		if l > peak {
			peak = l
		}
		table.AddRow(fmt.Sprintf("phase-%d", pi+1), demand, l, created(),
			pl.Scheduler().Executed(), dc.MaterializedHosts())
	}

	wall := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	events := pl.Scheduler().Executed()

	res.Tables = append(res.Tables, table)
	res.Metrics["instances_created"] = float64(created())
	res.Metrics["peak_live_instances"] = float64(peak)
	res.Metrics["preemptions"] = float64(dc.FaultCounters().Preemptions)
	res.Metrics["events_executed"] = float64(events)
	res.Metrics["hosts_materialized"] = float64(dc.MaterializedHosts())
	res.Metrics["hosts_total"] = float64(dc.TrueHostCount())
	res.Metrics["sim_hours"] = (time.Duration(len(phases)) * phaseDur).Hours()
	res.Metrics["runtime_events_per_sec"] = float64(events) / wall.Seconds()
	res.Metrics["runtime_allocs_per_event"] = float64(m1.Mallocs-m0.Mallocs) / float64(events)
	res.note("%d tenants over %d demand phases peaked at %d live instances on %d of %d hosts (%.0f%% of the fleet never materialized)",
		tenants, len(phases), peak, dc.MaterializedHosts(), dc.TrueHostCount(),
		100*(1-float64(dc.MaterializedHosts())/float64(dc.TrueHostCount())))
	// Wall-clock facts live only in the runtime_ metrics above: Result notes
	// and tables are part of the determinism digest.
	res.note("%d scheduler events over %.0f simulated hours (lifecycle kernel: cost follows transitions, not fleet size)",
		events, (time.Duration(len(phases)) * phaseDur).Hours())
	return res, nil
}
