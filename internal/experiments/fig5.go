package experiments

import (
	"math"
	"time"

	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/stats"
)

// fig5Region is one region's week-long tracking study.
type fig5Region struct {
	kept    int
	minAbsR float64
	expDays []float64
	xs, ys  []float64
}

func runFig5(ctx Context) (*Result, error) {
	d, _ := ByID("fig5")
	res := newResult(d)
	profiles := ctx.profiles()

	// One trial per region, each tracking its own single-region world from
	// the trial sub-seed.
	regions, err := runTrials(ctx, len(profiles), func(t Trial) (fig5Region, error) {
		prof := profiles[t.Index]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		svc := dc.Account("account-1").DeployService("tracker", faas.ServiceConfig{})
		if _, err := svc.Launch(ctx.trackedInstances()); err != nil {
			return fig5Region{}, err
		}

		// Hourly fingerprint collection; instance churn breaks histories,
		// so track per instance identity.
		histories := make(map[string]*fingerprint.History)
		order := []string{} // deterministic iteration over histories
		hours := int(ctx.trackingDuration() / time.Hour)
		for h := 0; h <= hours; h++ {
			for _, inst := range svc.ActiveInstances() {
				g, err := inst.Guest()
				if err != nil {
					continue
				}
				s, err := fingerprint.CollectGen1(g)
				if err != nil {
					return fig5Region{}, err
				}
				hist := histories[inst.ID()]
				if hist == nil {
					hist = &fingerprint.History{}
					histories[inst.ID()] = hist
					order = append(order, inst.ID())
				}
				hist.Add(dc.Now(), s.BootTimeReported())
			}
			dc.Scheduler().Advance(time.Hour)
		}

		// Filter to histories spanning at least 24 hours, fit drift, and
		// interpolate expiration.
		out := fig5Region{minAbsR: 1.0}
		for _, id := range order {
			hist := histories[id]
			if hist.Span() < 24*time.Hour {
				continue
			}
			drift, err := hist.FitDrift()
			if err != nil {
				continue
			}
			out.kept++
			if r := math.Abs(drift.R); r < out.minAbsR {
				out.minAbsR = r
			}
			if exp, ok := drift.Expiration(fingerprint.DefaultPrecision); ok {
				out.expDays = append(out.expDays, exp.Hours()/24)
			}
		}

		cdf := stats.NewCDF(out.expDays)
		for day := 0.0; day <= 7.0; day += 0.25 {
			out.xs = append(out.xs, day)
			out.ys = append(out.ys, cdf.At(day))
		}
		svc.Disconnect()
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &report.Figure{
		ID:     "fig5",
		Title:  "CDF of estimated fingerprint expiration time",
		XLabel: "expiration (days)",
		YLabel: "CDF",
	}
	minAbsR := 1.0
	var allExpDays []float64
	for ri, r := range regions {
		region := profiles[ri].Name
		res.Metrics["histories_"+string(region)] = float64(r.kept)
		allExpDays = append(allExpDays, r.expDays...)
		if r.minAbsR < minAbsR {
			minAbsR = r.minAbsR
		}
		fig.AddSeries(string(region), r.xs, r.ys)
	}
	res.Figures = append(res.Figures, fig)

	all := stats.NewCDF(allExpDays)
	res.Metrics["min_abs_r"] = minAbsR
	res.Metrics["cdf_at_2_days"] = all.At(2)
	res.Metrics["cdf_at_7_days"] = all.At(7)
	if len(allExpDays) > 0 {
		res.Metrics["median_expiration_days"] = stats.Median(allExpDays)
	}
	res.note("paper: T_boot drifts linearly (min |r| = 0.9997); ~10%% of fingerprints expire within ~2 days; most last several days")
	return res, nil
}
