package experiments

import (
	"math"
	"time"

	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/stats"
)

func runFig5(ctx Context) (*Result, error) {
	d, _ := ByID("fig5")
	res := newResult(d)
	pl := ctx.platform()

	fig := &report.Figure{
		ID:     "fig5",
		Title:  "CDF of estimated fingerprint expiration time",
		XLabel: "expiration (days)",
		YLabel: "CDF",
	}

	minAbsR := 1.0
	var allExpDays []float64
	for _, region := range pl.Regions() {
		dc := pl.MustRegion(region)
		svc := dc.Account("account-1").DeployService("tracker", faas.ServiceConfig{})
		if _, err := svc.Launch(ctx.trackedInstances()); err != nil {
			return nil, err
		}

		// Hourly fingerprint collection; instance churn breaks histories,
		// so track per instance identity.
		histories := make(map[string]*fingerprint.History)
		hours := int(ctx.trackingDuration() / time.Hour)
		for h := 0; h <= hours; h++ {
			for _, inst := range svc.ActiveInstances() {
				g, err := inst.Guest()
				if err != nil {
					continue
				}
				s, err := fingerprint.CollectGen1(g)
				if err != nil {
					return nil, err
				}
				hist := histories[inst.ID()]
				if hist == nil {
					hist = &fingerprint.History{}
					histories[inst.ID()] = hist
				}
				hist.Add(dc.Now(), s.BootTimeReported())
			}
			dc.Scheduler().Advance(time.Hour)
		}

		// Filter to histories spanning at least 24 hours, fit drift, and
		// interpolate expiration.
		var expDays []float64
		kept := 0
		for _, hist := range histories {
			if hist.Span() < 24*time.Hour {
				continue
			}
			drift, err := hist.FitDrift()
			if err != nil {
				continue
			}
			kept++
			if r := math.Abs(drift.R); r < minAbsR {
				minAbsR = r
			}
			if exp, ok := drift.Expiration(fingerprint.DefaultPrecision); ok {
				expDays = append(expDays, exp.Hours()/24)
			}
		}
		res.Metrics["histories_"+string(region)] = float64(kept)
		allExpDays = append(allExpDays, expDays...)

		cdf := stats.NewCDF(expDays)
		xs := make([]float64, 0, 29)
		ys := make([]float64, 0, 29)
		for day := 0.0; day <= 7.0; day += 0.25 {
			xs = append(xs, day)
			ys = append(ys, cdf.At(day))
		}
		fig.AddSeries(string(region), xs, ys)
		svc.Disconnect()
	}
	res.Figures = append(res.Figures, fig)

	all := stats.NewCDF(allExpDays)
	res.Metrics["min_abs_r"] = minAbsR
	res.Metrics["cdf_at_2_days"] = all.At(2)
	res.Metrics["cdf_at_7_days"] = all.At(7)
	if len(allExpDays) > 0 {
		res.Metrics["median_expiration_days"] = stats.Median(allExpDays)
	}
	res.note("paper: T_boot drifts linearly (min |r| = 0.9997); ~10%% of fingerprints expire within ~2 days; most last several days")
	return res, nil
}
