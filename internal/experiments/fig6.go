package experiments

import (
	"sort"
	"time"

	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/simtime"
)

func runFig6(ctx Context) (*Result, error) {
	d, _ := ByID("fig6")
	res := newResult(d)

	// One timeline, one trial: the engine is used for its shared execution
	// path, not parallelism, so the trial sub-seed is deliberately unused
	// and the world comes from the root seed as before.
	type timeline struct {
		total     int
		start     simtime.Time
		termTimes []simtime.Time
	}
	runs, err := runTrials(ctx, 1, func(Trial) (timeline, error) {
		pl := ctx.platform()
		dc := pl.MustRegion(faas.USEast1)

		svc := dc.Account("account-1").DeployService("idle-study", faas.ServiceConfig{})
		insts, err := svc.Launch(ctx.launchSize())
		if err != nil {
			return timeline{}, err
		}
		tl := timeline{total: len(insts)}

		// Trap SIGTERM: the container reports the termination time, as in
		// the paper's setup.
		for _, inst := range insts {
			inst.OnSIGTERM(func(_ *faas.Instance, at simtime.Time) {
				tl.termTimes = append(tl.termTimes, at)
			})
		}
		dc.Scheduler().Advance(30 * time.Second)
		svc.Disconnect()
		tl.start = dc.Now()
		dc.Scheduler().Advance(16 * time.Minute)

		sort.Slice(tl.termTimes, func(i, j int) bool { return tl.termTimes[i] < tl.termTimes[j] })
		return tl, nil
	})
	if err != nil {
		return nil, err
	}
	total, start, termTimes := runs[0].total, runs[0].start, runs[0].termTimes

	// Sample the idle-instance count every 30 s from disconnect to 16 min.
	var xs, ys []float64
	for tick := 0; tick <= 32; tick++ {
		at := start.Add(time.Duration(tick) * 30 * time.Second)
		terminated := sort.Search(len(termTimes), func(i int) bool { return termTimes[i] > at })
		xs = append(xs, float64(tick)*0.5)
		ys = append(ys, float64(total-terminated))
	}
	fig := &report.Figure{
		ID:     "fig6",
		Title:  "Idle instances after disconnecting",
		XLabel: "minutes since disconnect",
		YLabel: "idle instances",
	}
	fig.AddSeries(string(faas.USEast1), xs, ys)
	res.Figures = append(res.Figures, fig)

	// Headline numbers: quiet grace period, then gradual termination; all
	// gone within ~12 minutes.
	firstTerm := time.Duration(0)
	lastTerm := time.Duration(0)
	if len(termTimes) > 0 {
		firstTerm = termTimes[0].Sub(start)
		lastTerm = termTimes[len(termTimes)-1].Sub(start)
	}
	res.Metrics["terminated"] = float64(len(termTimes))
	res.Metrics["total"] = float64(total)
	res.Metrics["grace_minutes"] = firstTerm.Minutes()
	res.Metrics["all_gone_minutes"] = lastTerm.Minutes()
	res.note("paper: instances preserved ~2 minutes, then terminated gradually; practically all gone within 12 minutes")
	return res, nil
}
