package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/pricing"
	"eaao/internal/report"
	"eaao/internal/sandbox"
	"eaao/internal/stats"
)

func runTable1(ctx Context) (*Result, error) {
	d, _ := ByID("table1")
	res := newResult(d)
	rates := pricing.CloudRunRates()
	tbl := report.NewTable("Container sizes (Table 1)", "size", "vCPUs", "memory (GB)", "$/instance-hour")
	for _, s := range faas.SizeCatalog {
		tbl.AddRow(s.Name, s.VCPU, s.MemoryGB, rates.InstanceSecondCost(s.VCPU, s.MemoryGB)*3600)
	}
	res.Tables = append(res.Tables, tbl)
	res.Metrics["sizes"] = float64(len(faas.SizeCatalog))
	res.note("Pico 0.25 vCPU/256MB, Small 1/512MB (default), Medium 2/1GB, Large 4/4GB")
	return res, nil
}

func runFreq(ctx Context) (*Result, error) {
	d, _ := ByID("freq")
	res := newResult(d)
	// Single-region study: build only us-east1 (identical world, less setup).
	pl := forkPlatform(ctx.Seed, ctx.regionProfile(faas.USEast1))
	dc := pl.MustRegion(faas.USEast1)

	svc := dc.Account("account-1").DeployService("freq-study", faas.ServiceConfig{})
	insts, err := svc.Launch(ctx.launchSize())
	if err != nil {
		return nil, err
	}

	// One representative per apparent host, then measure the TSC frequency
	// on each with the paper's Δt ≈ 100 ms and 10 repetitions.
	seen := make(map[fingerprint.Gen1]bool)
	var stds []float64
	problematic, healthy := 0, 0
	for _, inst := range insts {
		g, err := inst.Guest()
		if err != nil {
			return nil, err
		}
		s, err := fingerprint.CollectGen1(g)
		if err != nil {
			return nil, err
		}
		fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		m, err := fingerprint.MeasureFrequency(g, dc.Scheduler(), 100*time.Millisecond, 10)
		if err != nil {
			return nil, err
		}
		stds = append(stds, m.StdHz)
		if m.Usable() {
			healthy++
		} else {
			problematic++
		}
	}
	total := healthy + problematic

	tbl := report.NewTable("Measured TSC frequency stability (Δt=100ms, 10 reps)",
		"hosts", "usable (<10kHz std)", "problematic", "median std (Hz)", "p90 std (Hz)")
	tbl.AddRow(total, healthy, problematic, stats.Median(stds), stats.Percentile(stds, 90))
	res.Tables = append(res.Tables, tbl)

	res.Metrics["hosts"] = float64(total)
	res.Metrics["problematic"] = float64(problematic)
	res.Metrics["problematic_frac"] = float64(problematic) / float64(total)
	res.Metrics["median_std_hz"] = stats.Median(stds)
	res.note("paper: most hosts show stddev < 100 Hz; 58 of 586 hosts (~10%%) show 10 kHz–MHz and defeat the measured-frequency method")
	return res, nil
}

func runVerifyCost(ctx Context) (*Result, error) {
	d, _ := ByID("verifycost")
	res := newResult(d)
	// Single-region study: build only us-east1 (identical world, less setup).
	pl := forkPlatform(ctx.Seed, ctx.regionProfile(faas.USEast1))
	dc := pl.MustRegion(faas.USEast1)
	rates := pricing.CloudRunRates()

	svc := dc.Account("account-1").DeployService("verify-study", faas.ServiceConfig{})
	insts, err := svc.Launch(ctx.launchSize())
	if err != nil {
		return nil, err
	}
	n := len(insts)

	// Our scalable methodology, actually executed.
	tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	items := make([]coloc.Item, n)
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			return nil, err
		}
		fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
		items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	ours, err := coloc.Verify(tester, items, coloc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	oursCost := rates.CampaignCost(n, ours.SerializedTime.Seconds(), faas.SizeSmall.VCPU, faas.SizeSmall.MemoryGB)

	// Pairwise baseline, costed analytically exactly as the paper does
	// (100 ms per serialized test, the full fleet kept alive throughout).
	pairTests := coloc.PairwiseTestCount(n)
	pairTime := time.Duration(pairTests) * tester.Config().TestDuration
	pairCost := rates.CampaignCost(n, pairTime.Seconds(), faas.SizeSmall.VCPU, faas.SizeSmall.MemoryGB)

	// SIE, actually executed on the full instance set, to demonstrate that
	// the filter removes (nearly) nothing in a FaaS environment: the
	// orchestrator stacks ~10 instances per host, so every instance is
	// co-located with someone and survives the elimination round.
	sieTester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
	sie, err := coloc.VerifySIE(sieTester, insts)
	if err != nil {
		return nil, err
	}
	sieCost := rates.CampaignCost(n, sie.SerializedTime.Seconds(), faas.SizeSmall.VCPU, faas.SizeSmall.MemoryGB)

	tbl := report.NewTable(fmt.Sprintf("Verifying co-location of %d instances", n),
		"method", "tests", "serialized time", "USD")
	tbl.AddRow("scalable (ours)", ours.Tests, ours.SerializedTime.String(), oursCost)
	tbl.AddRow("pairwise", pairTests, pairTime.String(), pairCost)
	tbl.AddRow("SIE+pairwise", sie.Tests, sie.SerializedTime.String(), sieCost)
	res.Tables = append(res.Tables, tbl)

	res.Metrics["ours_tests"] = float64(ours.Tests)
	res.Metrics["ours_minutes"] = ours.SerializedTime.Minutes()
	res.Metrics["ours_usd"] = oursCost
	res.Metrics["pairwise_tests"] = float64(pairTests)
	res.Metrics["pairwise_hours"] = pairTime.Hours()
	res.Metrics["pairwise_usd"] = pairCost
	res.Metrics["speedup"] = float64(pairTests) / float64(ours.Tests)
	res.Metrics["sie_tests"] = float64(sie.Tests)
	res.note("paper (n=800): pairwise needs 319,600 tests ≈ 8.9 h ≈ $645; ours takes ~1–2 min ≈ $1–3; SIE fails to eliminate instances because every instance shares its host")
	return res, nil
}

func runGen2Accuracy(ctx Context) (*Result, error) {
	d, _ := ByID("gen2")
	res := newResult(d)
	profiles := ctx.profiles()
	reps := ctx.reps()

	// One trial per (region × repetition); each measurement runs against
	// its own single-region world built from the trial sub-seed.
	type gen2Run struct{ fmi, prec, recall, hostsPerFp float64 }
	runs, err := runTrials(ctx, len(profiles)*reps, func(t Trial) (gen2Run, error) {
		prof := profiles[t.Index/reps]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		svc := dc.Account("account-1").DeployService("gen2-study",
			faas.ServiceConfig{Gen: sandbox.Gen2})
		insts, err := svc.Launch(ctx.launchSize())
		if err != nil {
			return gen2Run{}, err
		}
		// Fingerprint everything.
		fps := make([]fingerprint.Gen2, len(insts))
		items := make([]coloc.Item, len(insts))
		for i, inst := range insts {
			fp, err := fingerprint.CollectGen2(inst.MustGuest())
			if err != nil {
				return gen2Run{}, err
			}
			fps[i] = fp
			items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
		}
		// Ground truth via the covert methodology in its Gen 2 regime.
		tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
		opt := coloc.DefaultOptions()
		opt.AssumeNoFalseNegatives = true
		truth, err := coloc.Verify(tester, items, opt)
		if err != nil {
			return gen2Run{}, err
		}
		counts := metrics.CountPairs(fps, truth.Labels)

		// Hosts per fingerprint.
		hostsOf := make(map[fingerprint.Gen2]map[int]bool)
		for i, fp := range fps {
			if hostsOf[fp] == nil {
				hostsOf[fp] = make(map[int]bool)
			}
			hostsOf[fp][truth.Labels[i]] = true
		}
		sum := 0
		for _, hs := range hostsOf {
			sum += len(hs)
		}
		svc.Disconnect()
		return gen2Run{
			fmi:        counts.FMI(),
			prec:       counts.Precision(),
			recall:     counts.Recall(),
			hostsPerFp: float64(sum) / float64(len(hostsOf)),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	var fmis, precs, recalls, hostsPerFp []float64
	for _, r := range runs {
		fmis = append(fmis, r.fmi)
		precs = append(precs, r.prec)
		recalls = append(recalls, r.recall)
		hostsPerFp = append(hostsPerFp, r.hostsPerFp)
	}

	tbl := report.NewTable("Gen 2 fingerprint accuracy", "FMI", "precision", "recall", "hosts/fingerprint")
	tbl.AddRow(stats.Mean(fmis), stats.Mean(precs), stats.Mean(recalls), stats.Mean(hostsPerFp))
	res.Tables = append(res.Tables, tbl)
	res.Metrics["fmi"] = stats.Mean(fmis)
	res.Metrics["precision"] = stats.Mean(precs)
	res.Metrics["recall"] = stats.Mean(recalls)
	res.Metrics["hosts_per_fingerprint"] = stats.Mean(hostsPerFp)
	res.note("paper: FMI ≈ 0.66, precision ≈ 0.48, recall = 1 (no false negatives possible), ~2.0 hosts per fingerprint")
	return res, nil
}

func runNaive(ctx Context) (*Result, error) {
	d, _ := ByID("naive")
	res := newResult(d)
	profiles := ctx.profiles()
	attacker, victims := accounts()

	// One trial per region: each naive campaign runs against its own world.
	type naiveRun struct {
		footprint int
		coverage  []float64 // per victim account
	}
	runs, err := runTrials(ctx, len(profiles), func(t Trial) (naiveRun, error) {
		prof := profiles[t.Index]
		pl := faas.MustPlatform(t.Seed, prof)
		dc := pl.MustRegion(prof.Name)
		camp, err := ctx.attackerCampaign(dc, attacker, attack.NaiveStrategy{}, sandbox.Gen1)
		if err != nil {
			return naiveRun{}, err
		}
		run := naiveRun{footprint: camp.Stats().ApparentHosts}
		for _, vicAcct := range victims {
			svc := dc.Account(vicAcct).DeployService("victim", faas.ServiceConfig{})
			vicInsts, err := svc.Launch(ctx.defaultVictims())
			if err != nil {
				return naiveRun{}, err
			}
			cov, _, err := camp.Verify(vicInsts)
			if err != nil {
				return naiveRun{}, err
			}
			run.coverage = append(run.coverage, cov.Fraction())
			svc.Disconnect()
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Naive strategy victim coverage", "region", "victim", "coverage", "attacker hosts")
	zeroPairs, highPairs := 0, 0
	for ri, run := range runs {
		region := profiles[ri].Name
		for vi, vicAcct := range victims {
			frac := run.coverage[vi]
			tbl.AddRow(string(region), vicAcct, frac, run.footprint)
			res.Metrics[fmt.Sprintf("coverage_%s_%s", region, vicAcct)] = frac
			switch {
			case frac == 0:
				zeroPairs++
			case frac > 0.5:
				highPairs++
			}
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Metrics["zero_pairs"] = float64(zeroPairs)
	res.Metrics["high_pairs"] = float64(highPairs)
	res.note("paper: naive launching yields zero co-location in 4 of 6 account/region pairs; only accidental base-host overlap (Acc2/us-west1 at 100%%, Acc3/us-central1 at 81%%) succeeds")
	return res, nil
}
