package experiments

import (
	"fmt"
	"sync"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// The noisesweep experiment is the robustness story of the background-traffic
// layer: how the attack stack degrades as platform utilization rises from an
// idle data center (every seed-era experiment's environment) to a saturated
// one, and what the campaign's noise-hardening ladder buys back at what
// price. Part 1 measures the raw primitives against ground truth — CTest
// false-positive/negative rates and margin health per channel, plus Gen 1
// fingerprint agreement, on host-verified instance pairs. Part 2 runs full
// campaigns per (utilization tier x channel x hardened/unhardened) and scores
// claimed coverage against HostID ground truth, with the adaptation spend
// itemized in the NoiseUSD ledger.

// noiseTier is one utilization point of the sweep.
type noiseTier struct {
	name string  // table label
	key  string  // metric-name component
	util float64 // TrafficModel target utilization (0 = no traffic)
}

// noiseTiers returns the utilization sweep: the quiet seed-era world, a busy
// region at 70% of serving capacity, and a saturated one past the congestion
// knee. Quick mode keeps the endpoints — the tiers that bound the story.
func (c Context) noiseTiers() []noiseTier {
	tiers := []noiseTier{
		{name: "idle", key: "idle", util: 0},
		{name: "busy", key: "busy", util: 0.70},
		{name: "saturated", key: "sat", util: 1.05},
	}
	if c.Quick {
		return []noiseTier{tiers[0], tiers[2]}
	}
	return tiers
}

// noiseWarmup is the simulated time a loaded world runs before anything is
// measured, so bystander populations have ramped to target and burst/diurnal
// modulation is live.
const noiseWarmup = 2 * time.Hour

// noiseProfile is the ablation region with background traffic at the given
// utilization target: one bystander tenant per host, Zipf-weighted.
func noiseProfile(util float64) faas.RegionProfile {
	p := ablationProfile()
	if util > 0 {
		p.Traffic = faas.DefaultTrafficModel(p.NumHosts, util)
	}
	return p
}

// noiseCampaignWorld returns a fork of the warmed loaded world (no launches):
// the first request per (seed, util) builds and warms once, every trial forks
// that instant.
func noiseCampaignWorld(seed uint64, util float64) (*faas.Platform, error) {
	v, _ := noiseWorlds.LoadOrStore(fmt.Sprintf("camp|%d|%g", seed, util), &launchedWorld{})
	w := v.(*launchedWorld)
	w.once.Do(func() {
		pl := forkPlatform(seed, noiseProfile(util))
		pl.Scheduler().Advance(noiseWarmup)
		w.snap, w.err = pl.Snapshot()
	})
	if w.err != nil {
		return nil, w.err
	}
	return w.snap.MustRestore(), nil
}

// noiseProbeWorld is noiseCampaignWorld plus an n-instance probe launch from
// one account, used by the ground-truth pair study. The launch retries
// through congestion rejections like any production deploy pipeline.
func noiseProbeWorld(seed uint64, n int, util float64) (*faas.Platform, []*faas.Instance, error) {
	v, _ := noiseWorlds.LoadOrStore(fmt.Sprintf("probe|%d|%d|%g", seed, n, util), &launchedWorld{})
	w := v.(*launchedWorld)
	w.once.Do(func() {
		pl := forkPlatform(seed, noiseProfile(util))
		pl.Scheduler().Advance(noiseWarmup)
		if _, _, err := faultTolerantVictim(pl.MustRegion("ablation"), "a", "s", n, 1); err != nil {
			w.err = err
			return
		}
		w.snap, w.err = pl.Snapshot()
	})
	if w.err != nil {
		return nil, nil, w.err
	}
	pl := w.snap.MustRestore()
	insts := pl.MustRegion("ablation").Account("a").
		DeployService("s", faas.ServiceConfig{}).Instances()
	return pl, insts, nil
}

var noiseWorlds sync.Map // "kind|seed|..." → *launchedWorld

// applyNoiseHardening arms the campaign's contention-aware ladder with the
// sweep's standard budgets: live-world threshold calibration, margin-health
// watching with vote-budget escalation and an RNG fallback, surgical
// quarantine of unreliable footprint instances, and congestion backoff.
func applyNoiseHardening(cfg *attack.Config) {
	cfg.CalibrationRounds = 240
	cfg.MarginFloor = 0.08
	cfg.MaxVoteBudget = 5
	cfg.FallbackChannel = "rng"
	cfg.QuarantineAfter = 2
	cfg.NoisyHostBar = 0.4
	cfg.CongestionBackoff = 30 * time.Second
}

// groundTruthPairs splits the probe launch into disjoint host-verified
// co-located and separated index pairs (at most limit of each), using
// Instance.HostID ground truth — permitted for experiment scoring only.
func groundTruthPairs(insts []*faas.Instance, limit int) (co, far [][2]int) {
	byHost := make(map[faas.HostID][]int)
	var order []faas.HostID
	for i, inst := range insts {
		h, ok := inst.HostID()
		if !ok {
			continue
		}
		if _, seen := byHost[h]; !seen {
			order = append(order, h)
		}
		byHost[h] = append(byHost[h], i)
	}
	for _, h := range order {
		members := byHost[h]
		for j := 0; j+1 < len(members) && len(co) < limit; j += 2 {
			co = append(co, [2]int{members[j], members[j+1]})
		}
		if len(co) >= limit {
			break
		}
	}
	for j := 0; j+1 < len(order) && len(far) < limit; j += 2 {
		far = append(far, [2]int{byHost[order[j]][0], byHost[order[j+1]][0]})
	}
	return co, far
}

// marginSink accumulates the margin signal of every observed CTest.
type marginSink struct {
	sum float64
	n   int
}

func (s *marginSink) ObserveTest(ev covert.TestEvent) {
	s.sum += ev.MinMargin
	s.n++
}

func (s *marginSink) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// groundTruthCoverage scores a Verify result against HostID ground truth: the
// fraction of victims that actually share a host with a claimed spy. The gap
// to the claimed coverage fraction is the verification's false-coverage.
func groundTruthCoverage(victims, spies []*faas.Instance) float64 {
	if len(victims) == 0 {
		return 0
	}
	hosts := make(map[faas.HostID]bool, len(spies))
	for _, s := range spies {
		if h, ok := s.HostID(); ok {
			hosts[h] = true
		}
	}
	covered := 0
	for _, v := range victims {
		if h, ok := v.HostID(); ok && hosts[h] {
			covered++
		}
	}
	return float64(covered) / float64(len(victims))
}

// noiseChannels returns the single channels of the part-1 primitive study.
// Only the LLC family carries load-sensitive physics; rng and membus are the
// control group that should stay flat across tiers.
func (c Context) noiseChannels() []string {
	if c.Quick {
		return []string{"rng", "llc"}
	}
	return []string{"rng", "llc", "membus"}
}

// noiseCampaignChannels returns the channels part 2 campaigns run on.
func (c Context) noiseCampaignChannels() []string {
	if c.Quick {
		return []string{"llc"}
	}
	return []string{"llc", "rng"}
}

func runNoiseSweep(ctx Context) (*Result, error) {
	d, _ := ByID("noisesweep")
	res := newResult(d)
	n := 150
	pairLimit := 30
	if !ctx.Quick {
		n = 400
		pairLimit = 40
	}
	tiers := ctx.noiseTiers()
	channels := ctx.noiseChannels()

	// Part 1: primitive health on ground-truth pairs, per (tier x channel) on
	// forks of one warmed probe world per tier (ctx.Seed+45). The trial
	// sub-seed is deliberately unused; the world seed is the only randomness.
	type pCell struct {
		tier noiseTier
		ch   string
	}
	var pUnits []pCell
	for _, tier := range tiers {
		for _, ch := range channels {
			pUnits = append(pUnits, pCell{tier, ch})
		}
	}
	type pRow struct {
		util    float64 // measured at test time
		co, far int
		fn, fp  int // CTest errors against ground truth
		margin  float64
		fpFN    int // fingerprint disagreements on co-located pairs
		fpFP    int // fingerprint collisions on separated pairs
	}
	pRows, err := runTrials(ctx, len(pUnits), func(t Trial) (pRow, error) {
		u := pUnits[t.Index]
		pl, insts, err := noiseProbeWorld(ctx.Seed+45, n, u.tier.util)
		if err != nil {
			return pRow{}, err
		}
		dc := pl.MustRegion("ablation")
		co, far := groundTruthPairs(insts, pairLimit)
		row := pRow{util: dc.Utilization(), co: len(co), far: len(far)}

		// Fingerprint agreement on the same pairs (load-independent by
		// design — boot-time identity does not see cache pressure).
		keys := make(map[int]string, 2*len(co))
		key := func(i int) (string, error) {
			if k, ok := keys[i]; ok {
				return k, nil
			}
			s, err := fingerprint.CollectGen1(insts[i].MustGuest())
			if err != nil {
				return "", err
			}
			k := fmt.Sprint(fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision).Key())
			keys[i] = k
			return k, nil
		}
		for _, pr := range co {
			a, err := key(pr[0])
			if err != nil {
				return pRow{}, err
			}
			b, err := key(pr[1])
			if err != nil {
				return pRow{}, err
			}
			if a != b {
				row.fpFN++
			}
		}
		for _, pr := range far {
			a, err := key(pr[0])
			if err != nil {
				return pRow{}, err
			}
			b, err := key(pr[1])
			if err != nil {
				return pRow{}, err
			}
			if a == b {
				row.fpFP++
			}
		}

		// CTest error rates with the channel's stock (quiet-world) config —
		// the configuration an unhardened campaign trusts.
		runner, err := covert.RunnerFor(u.ch, pl.Scheduler(), 0)
		if err != nil {
			return pRow{}, err
		}
		sink := &marginSink{}
		runner.SetSink(sink)
		for _, pr := range co {
			pos, err := runner.PairTest(insts[pr[0]], insts[pr[1]])
			if err != nil {
				return pRow{}, err
			}
			if !pos {
				row.fn++
			}
		}
		row.margin = sink.mean() // margin health of the decisive (co-located) tests
		for _, pr := range far {
			pos, err := runner.PairTest(insts[pr[0]], insts[pr[1]])
			if err != nil {
				return pRow{}, err
			}
			if pos {
				row.fp++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	pTbl := report.NewTable(fmt.Sprintf("Noise sweep: primitive health on %d ground-truth pairs per class", pairLimit),
		"tier", "utilization", "channel", "CTest FN", "CTest FP", "co-pair margin", "fingerprint FN", "fingerprint FP")
	for i, u := range pUnits {
		r := pRows[i]
		fnRate := rate(r.fn, r.co)
		fpRate := rate(r.fp, r.far)
		pTbl.AddRow(u.tier.name, fmt.Sprintf("%.2f", r.util), u.ch,
			fmt.Sprintf("%.3f", fnRate), fmt.Sprintf("%.3f", fpRate),
			fmt.Sprintf("%.3f", r.margin),
			fmt.Sprintf("%.3f", rate(r.fpFN, r.co)), fmt.Sprintf("%.3f", rate(r.fpFP, r.far)))
		key := fmt.Sprintf("%s_%s", u.ch, u.tier.key)
		res.Metrics["ctest_fn_"+key] = fnRate
		res.Metrics["ctest_fp_"+key] = fpRate
		res.Metrics["margin_"+key] = r.margin
		if u.ch == channels[0] {
			// Fingerprint agreement is channel-independent; record per tier.
			res.Metrics["fprint_fn_"+u.tier.key] = rate(r.fpFN, r.co)
			res.Metrics["fprint_fp_"+u.tier.key] = rate(r.fpFP, r.far)
			res.Metrics["util_"+u.tier.key] = r.util
		}
	}
	res.Tables = append(res.Tables, pTbl)

	// Part 2: full campaigns per (tier x channel x hardened/unhardened), on
	// forks of one warmed campaign world per tier (ctx.Seed+47). Both
	// variants carry the faultsweep's launch/probe retry budgets — congestion
	// sheds launch waves on a saturated region — so the noise ladder itself
	// is the only difference between the paired cells.
	campChannels := ctx.noiseCampaignChannels()
	type cCell struct {
		tier     noiseTier
		ch       string
		hardened bool
	}
	var cUnits []cCell
	for _, tier := range tiers {
		for _, ch := range campChannels {
			cUnits = append(cUnits, cCell{tier, ch, false}, cCell{tier, ch, true})
		}
	}
	type cRow struct {
		st      attack.CampaignStats
		cov     attack.Coverage
		trueCov float64
		failed  bool
	}
	cRows, err := runTrials(ctx, len(cUnits), func(t Trial) (cRow, error) {
		u := cUnits[t.Index]
		pl, err := noiseCampaignWorld(ctx.Seed+47, u.tier.util)
		if err != nil {
			return cRow{}, err
		}
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		cfg.Channel = u.ch
		hardenedBudgets(&cfg)
		cfg.LaunchRetries = 6
		if u.hardened {
			applyNoiseHardening(&cfg)
		}
		camp, err := launchCampaign(dc, "attacker", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			if injectedFault(err) {
				return cRow{failed: true}, nil
			}
			return cRow{}, err
		}
		_, vic, err := faultTolerantVictim(dc, "victim", "v", 60, 3)
		if err != nil {
			return cRow{}, err
		}
		cov, spies, err := camp.Verify(vic)
		if err != nil {
			if injectedFault(err) {
				return cRow{st: camp.Stats(), failed: true}, nil
			}
			return cRow{}, err
		}
		return cRow{st: camp.Stats(), cov: cov,
			trueCov: groundTruthCoverage(vic, spies)}, nil
	})
	if err != nil {
		return nil, err
	}
	cTbl := report.NewTable("Noise sweep: campaign coverage and adaptation spend",
		"tier", "channel", "config", "coverage", "true coverage", "low-margin", "ladder", "USD", "noise USD", "$/victim")
	for i, u := range cUnits {
		r := cRows[i]
		variant := "stock"
		if u.hardened {
			variant = "hard"
		}
		covFrac := r.cov.Fraction()
		status := ""
		if r.failed {
			covFrac, r.trueCov = 0, 0
			status = " (died)"
		}
		ladder := fmt.Sprintf("%dc/%de/%df/%dq", r.st.Calibrations,
			r.st.NoiseEscalations, r.st.ChannelFallbacks, r.st.Quarantined)
		cTbl.AddRow(u.tier.name+status, u.ch, variant, covFrac, r.trueCov,
			r.st.LowMarginTests, ladder, r.st.USD, r.st.NoiseUSD, r.st.CostPerVictim())
		key := fmt.Sprintf("%s_%s_%s", u.ch, u.tier.key, variant)
		res.Metrics["cov_"+key] = covFrac
		res.Metrics["truecov_"+key] = r.trueCov
		res.Metrics["usd_"+key] = r.st.USD
		res.Metrics["cpv_"+key] = r.st.CostPerVictim()
		res.Metrics["noiseusd_"+key] = r.st.NoiseUSD
		res.Metrics["lowmargin_"+key] = float64(r.st.LowMarginTests)
	}
	res.Tables = append(res.Tables, cTbl)

	res.note("part 1: one warmed probe world per tier (seed+45, %s warm-up, %d bystander tenants); stock channel configs on host-verified pairs", noiseWarmup, ablationProfile().NumHosts)
	res.note("part 2: one warmed campaign world per tier (seed+47); both variants carry fault budgets (6 launch retries, vote budget 3, probe retry budget 3), hardened adds calibration, margin-watched escalation to an rng fallback, quarantine, and congestion backoff")
	res.note("ladder column: calibrations/escalations/fallbacks/quarantined; noise USD is the attribution share of the bill a quiet world would not have paid")
	res.note("fingerprints are boot-time identity and stay exact under load; the covert channel is the load-sensitive primitive, and only the LLC family carries bystander physics")
	return res, nil
}

// rate is a safe ratio for small-count error tables.
func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
