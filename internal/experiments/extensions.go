package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/extraction"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// mitigatedProfiles enables the §6 defenses fleet-wide.
func (c Context) mitigatedProfiles() []faas.RegionProfile {
	profs := c.profiles()
	for i := range profs {
		profs[i].Mitigations = sandbox.Mitigations{
			TrapAndEmulateTSC: true,
			TSCScaling:        true,
		}
	}
	return profs
}

// fingerprintScore launches instances in a region and scores raw Gen 1 or
// Gen 2 fingerprints against ground truth.
func fingerprintScore(dc *faas.DataCenter, gen sandbox.Gen, n int) (metrics.Score, error) {
	svc := dc.Account("account-1").DeployService("mit-study-"+gen.String(),
		faas.ServiceConfig{Gen: gen})
	insts, err := svc.Launch(n)
	if err != nil {
		return metrics.Score{}, err
	}
	defer svc.Disconnect()
	labels := make([]string, len(insts))
	truth := make([]faas.HostID, len(insts))
	for i, inst := range insts {
		g := inst.MustGuest()
		if gen == sandbox.Gen1 {
			s, err := fingerprint.CollectGen1(g)
			if err != nil {
				return metrics.Score{}, err
			}
			labels[i] = fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision).String()
		} else {
			fp, err := fingerprint.CollectGen2(g)
			if err != nil {
				return metrics.Score{}, err
			}
			labels[i] = fp.String()
		}
		truth[i], _ = inst.HostID()
	}
	return metrics.ScoreOf(labels, truth), nil
}

func runMitigation(ctx Context) (*Result, error) {
	d, _ := ByID("mitigation")
	res := newResult(d)

	// Baseline vs mitigated worlds as two trials. Both worlds share the
	// root seed (a controlled comparison: identical fleet, defenses on or
	// off), so the trial sub-seed is deliberately ignored.
	type worldRow struct {
		name   string
		g1, g2 metrics.Score
		tests  int
	}
	worlds := []struct {
		name     string
		profiles []faas.RegionProfile
	}{
		{"baseline", ctx.profiles()},
		{"mitigated", ctx.mitigatedProfiles()},
	}
	rows, err := runTrials(ctx, len(worlds), func(t Trial) (worldRow, error) {
		w := worlds[t.Index]
		pl := forkPlatform(ctx.Seed, w.profiles...)
		dc := pl.MustRegion(faas.USEast1)
		g1, err := fingerprintScore(dc, sandbox.Gen1, ctx.launchSize())
		if err != nil {
			return worldRow{}, err
		}
		g2, err := fingerprintScore(dc, sandbox.Gen2, ctx.launchSize())
		if err != nil {
			return worldRow{}, err
		}

		// Verification cost under broken fingerprints: the attacker falls
		// back to covert-channel work proportional to instances, not hosts.
		svc := dc.Account("account-1").DeployService("mit-verify", faas.ServiceConfig{})
		insts, err := svc.Launch(ctx.launchSize() / 4)
		if err != nil {
			return worldRow{}, err
		}
		items := make([]coloc.Item, len(insts))
		for i, inst := range insts {
			s, err := fingerprint.CollectGen1(inst.MustGuest())
			if err != nil {
				return worldRow{}, err
			}
			fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
			items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
		}
		tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
		ver, err := coloc.Verify(tester, items, coloc.DefaultOptions())
		if err != nil {
			return worldRow{}, err
		}
		svc.Disconnect()
		return worldRow{name: w.name, g1: g1, g2: g2, tests: ver.Tests}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Fingerprint accuracy with and without §6 mitigations",
		"world", "gen1 FMI", "gen1 recall", "gen2 FMI", "gen2 precision", "verify tests")
	for _, r := range rows {
		tbl.AddRow(r.name, r.g1.FMI, r.g1.Recall, r.g2.FMI, r.g2.Precision, r.tests)
		res.Metrics["gen1_fmi_"+r.name] = r.g1.FMI
		res.Metrics["gen1_recall_"+r.name] = r.g1.Recall
		res.Metrics["gen2_precision_"+r.name] = r.g2.Precision
		res.Metrics["verify_tests_"+r.name] = float64(r.tests)
	}
	res.Tables = append(res.Tables, tbl)

	// The scheduling defense §6 also cites: co-location-resistant (random)
	// placement. It dismantles the attack at the placement layer — and its
	// cost is visible as image-cold hosts on every launch.
	// Affinity vs random placement as two trials on the same fixed seed —
	// another controlled comparison, so the trial sub-seed is ignored.
	type schedRow struct{ coverage, coldFrac float64 }
	schedRows, err := runTrials(ctx, 2, func(t Trial) (schedRow, error) {
		defended := t.Index == 1
		profs := ctx.profiles()
		if defended {
			for i := range profs {
				profs[i].Policy = faas.RandomUniformPolicy{}
			}
		}
		pl := forkPlatform(ctx.Seed+77, profs...)
		dc := pl.MustRegion(faas.USEast1)
		camp, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return schedRow{}, err
		}
		vicSvc, vic, err := coldVictim(dc, "account-2", "victim", faas.ServiceConfig{},
			ctx.defaultVictims(), 3)
		if err != nil {
			return schedRow{}, err
		}
		cov, _, err := camp.Verify(vic)
		if err != nil {
			return schedRow{}, err
		}
		return schedRow{cov.Fraction(), vicSvc.ColdHostFraction()}, nil
	})
	if err != nil {
		return nil, err
	}

	schedTbl := report.NewTable("Co-location-resistant scheduling",
		"world", "optimized-attack coverage", "cold-host fraction")
	for i, r := range schedRows {
		name, key := "affinity (baseline)", "baseline"
		if i == 1 {
			name, key = "random placement", "randomized"
		}
		schedTbl.AddRow(name, r.coverage, r.coldFrac)
		res.Metrics["sched_coverage_"+key] = r.coverage
		res.Metrics["sched_coldhosts_"+key] = r.coldFrac
	}
	res.Tables = append(res.Tables, schedTbl)

	// Timer-access overhead (§6): trapping rdtsc turns nanosecond reads into
	// ~microsecond kernel round trips; cost scales with an application's
	// timer-read rate. The four application classes are the ones §6 names.
	native := sandbox.NativeTimerReadCost.Seconds()
	emulated := sandbox.EmulatedTimerReadCost.Seconds()
	apps := []struct {
		name string
		rate float64 // timer reads per second per core
	}{
		{"real-time media/financial feed", 2e6},
		{"database concurrency control", 8e5},
		{"distributed synchronization", 2e5},
		{"intensive logging/journaling", 5e4},
	}
	otbl := report.NewTable("Timer-access overhead of trap-and-emulate (Gen 1)",
		"application class", "timer reads/s", "native CPU %", "emulated CPU %")
	for _, app := range apps {
		natPct := app.rate * native * 100
		emuPct := app.rate * emulated * 100
		otbl.AddRow(app.name, app.rate, natPct, emuPct)
	}
	res.Tables = append(res.Tables, otbl)
	res.Metrics["timer_overhead_factor"] = emulated / native

	res.note("mitigations break both fingerprints (Gen 1 recall → 0: every sandbox derives its own start time; Gen 2 precision → ~0: every host reports the nominal frequency) and force verification back toward pairwise cost")
	res.note("co-location-resistant random placement barely dents a high-volume FaaS attacker — thousands of cheap instances blanket the fleet no matter how they are scattered — while destroying every tenant's image locality (cold hosts on each launch) and the defender pays that cost fleet-wide; it does break placement *predictability* (base hosts, re-attack targeting)")
	res.note("trap-and-emulate multiplies timer-access cost by ~%.0fx; hardware TSC scaling (Gen 2) is free", emulated/native)
	return res, nil
}

func runExtraction(ctx Context) (*Result, error) {
	d, _ := ByID("extraction")
	res := newResult(d)
	pl := ctx.platform()
	dc := pl.MustRegion(faas.USEast1)

	camp, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, sandbox.Gen1)
	if err != nil {
		return nil, err
	}
	vic, err := dc.Account("account-2").DeployService("login", faas.ServiceConfig{}).Launch(ctx.defaultVictims())
	if err != nil {
		return nil, err
	}
	cov, spies, err := camp.Verify(vic)
	if err != nil {
		return nil, err
	}
	res.Metrics["coverage"] = cov.Fraction()
	res.Metrics["spies"] = float64(len(spies))
	if len(spies) == 0 {
		res.note("no co-location achieved; extraction impossible (as expected without co-location)")
		return res, nil
	}

	// The victim's login routine leaks a 32-bit secret through its
	// execution pattern; a verified co-located spy recovers it, a
	// non-co-located attacker instance reads only noise.
	secret := make([]bool, 32)
	for i := range secret {
		secret[i] = (0xDEADBEEF>>uint(i))&1 == 1
	}
	schedule := extraction.Schedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       secret,
	}

	// Find a victim instance on the spy's host (ground truth only selects
	// the demonstration pair; the spy itself was found via the covert
	// methodology above).
	spy := spies[0]
	spyHost, _ := spy.HostID()
	var target *faas.Instance
	var remote *faas.Instance
	for _, v := range vic {
		if id, _ := v.HostID(); id == spyHost {
			target = v
			break
		}
	}
	for _, a := range camp.Result().Live {
		if id, _ := a.HostID(); id != spyHost {
			remote = a
			break
		}
	}
	if target == nil || remote == nil {
		return nil, fmt.Errorf("extraction: could not stage demonstration pair")
	}
	target.SetWorkload(schedule.Activity())

	spyTrace, err := extraction.Monitor(pl.Scheduler(), spy, schedule, extraction.DefaultMonitorConfig())
	if err != nil {
		return nil, err
	}
	// Rerun the same secret for the remote observer.
	schedule2 := schedule
	schedule2.Start = pl.Now().Add(time.Second)
	target.SetWorkload(schedule2.Activity())
	remoteTrace, err := extraction.Monitor(pl.Scheduler(), remote, schedule2, extraction.DefaultMonitorConfig())
	if err != nil {
		return nil, err
	}

	coAcc := spyTrace.BitAccuracy(secret)
	remAcc := remoteTrace.BitAccuracy(secret)
	tbl := report.NewTable("Secret recovery through RNG contention (32-bit secret)",
		"observer", "bit accuracy", "samples")
	tbl.AddRow("co-located spy", coAcc, spyTrace.Samples)
	tbl.AddRow("non-co-located instance", remAcc, remoteTrace.Samples)
	res.Tables = append(res.Tables, tbl)
	res.Metrics["colocated_accuracy"] = coAcc
	res.Metrics["remote_accuracy"] = remAcc
	res.note("co-location is the enabling step: the verified co-located spy recovers the victim's secret-dependent execution pattern; a non-co-located instance learns nothing")
	return res, nil
}

func runReattack(ctx Context) (*Result, error) {
	d, _ := ByID("reattack")
	res := newResult(d)
	pl := ctx.platform()
	dc := pl.MustRegion(faas.USEast1)

	// First attack: full campaign, coverage, record victim hosts.
	camp, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, sandbox.Gen1)
	if err != nil {
		return nil, err
	}
	vicSvc := dc.Account("account-2").DeployService("login", faas.ServiceConfig{})
	vic, err := vicSvc.Launch(ctx.defaultVictims())
	if err != nil {
		return nil, err
	}
	cov1, spies, err := camp.Verify(vic)
	if err != nil {
		return nil, err
	}
	book := attack.NewTargetBook(fingerprint.DefaultPrecision)
	if err := book.RecordVictimHosts(spies); err != nil {
		return nil, err
	}

	// A day later: everything is gone; the attacker re-runs the campaign
	// against the same victim and focuses monitoring on recorded hosts.
	vicSvc.Disconnect()
	dc.Scheduler().Advance(24 * time.Hour)
	camp2, err := ctx.attackerCampaign(dc, "account-1", attack.OptimizedStrategy{}, sandbox.Gen1)
	if err != nil {
		return nil, err
	}
	vic2, err := vicSvc.Launch(ctx.defaultVictims())
	if err != nil {
		return nil, err
	}
	focused, effort, err := book.Focus(camp2.Result().Live)
	if err != nil {
		return nil, err
	}
	covFull, _, err := camp2.Verify(vic2)
	if err != nil {
		return nil, err
	}
	covFocused := attack.Coverage{}
	if len(focused) > 0 {
		covFocused, err = attack.MeasureCoverage(camp2.Tester(), focused, vic2, fingerprint.DefaultPrecision)
		if err != nil {
			return nil, err
		}
	}

	tbl := report.NewTable("Re-attack with fingerprint-guided targeting",
		"phase", "attacker instances", "victim coverage")
	tbl.AddRow("first attack (full footprint)", len(camp.Result().Live), cov1.Fraction())
	tbl.AddRow("re-attack, full footprint", len(camp2.Result().Live), covFull.Fraction())
	tbl.AddRow("re-attack, focused on recorded hosts", len(focused), covFocused.Fraction())
	res.Tables = append(res.Tables, tbl)
	res.Metrics["first_coverage"] = cov1.Fraction()
	res.Metrics["reattack_full_coverage"] = covFull.Fraction()
	res.Metrics["reattack_focused_coverage"] = covFocused.Fraction()
	res.Metrics["focus_effort"] = effort
	res.Metrics["recorded_hosts"] = float64(book.Size())
	res.note("recording victim host fingerprints in the first attack lets subsequent attacks monitor only a small fraction of instances (focus effort) while retaining most coverage — the §5.2 optimization")
	return res, nil
}
