package experiments

import (
	"fmt"

	"eaao/internal/core/attack"
	"eaao/internal/faas"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// runMultiRegion evaluates the fleet campaign of §5.2 run "everywhere at
// once": one attacker account sharded across R region worlds, with the
// cross-region budget planner deciding at every round barrier which regions
// keep launching. The sweep crosses the fleet size (how many of the study's
// regions are attacked) with the budget-split policy (static-even,
// proportional, adaptive), holding the world seed, the launch strategy, and
// the per-region victim deployment fixed — so within a region count the
// planner is the only variable, and within a planner the region count is.
//
// The headline comparison is fleet-wide cost per covered victim: static-even
// pays R × Launches rounds no matter what each region returns, while the
// adaptive planner drains budget out of regions whose marginal apparent-host
// yield has saturated and (where the budget still helps) re-funds the ones
// still growing.
func runMultiRegion(ctx Context) (*Result, error) {
	d, _ := ByID("multiregion")
	res := newResult(d)

	regionCounts := []int{1, 2, 3}
	if ctx.Quick {
		regionCounts = []int{1, 3}
	}
	planners := attack.Planners()
	attacker, victimAccts := accounts()

	type cell struct {
		stats attack.FleetStats
		cov   attack.Coverage
	}
	type job struct {
		planner attack.Planner
		regions int
	}
	var jobs []job
	for _, p := range planners {
		for _, r := range regionCounts {
			jobs = append(jobs, job{planner: p, regions: r})
		}
	}

	// Every cell builds its fleet from the same world seed: cells of equal
	// region count attack byte-identical worlds, so outcome differences are
	// attributable to the planner alone (the trial sub-seed is deliberately
	// unused).
	cells, err := runTrials(ctx, len(jobs), func(t Trial) (cell, error) {
		jb := jobs[t.Index]
		profs := ctx.profiles()[:jb.regions]
		fleet, err := forkFleet(ctx.Seed, profs...)
		if err != nil {
			return cell{}, err
		}
		fc, err := attack.NewFleetCampaign(fleet, attacker, ctx.attackCfg(),
			sandbox.Gen1, attack.OptimizedStrategy{}, jb.planner)
		if err != nil {
			return cell{}, err
		}
		// Trial jobs parallelize across cells; the shards inside one cell run
		// sequentially so total workers stay bounded by ctx.jobs().
		fc.SetJobs(1)
		if err := fc.Launch(); err != nil {
			return cell{}, err
		}
		victims := make(map[faas.Region][]*faas.Instance, fleet.Size())
		for _, dc := range fleet.Shards() {
			_, vic, err := coldVictim(dc, victimAccts[0], "victim",
				faas.ServiceConfig{}, ctx.defaultVictims(), 3)
			if err != nil {
				return cell{}, err
			}
			victims[dc.Region()] = vic
		}
		vers, err := fc.Verify(victims)
		if err != nil {
			return cell{}, err
		}
		covs := make([]attack.Coverage, len(vers))
		for i, v := range vers {
			covs[i] = v.Coverage
		}
		return cell{stats: fc.Stats(), cov: attack.MergeCoverages(covs...)}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Multi-region fleet campaigns: budget planner × region count",
		"planner", "regions", "rounds", "apparent hosts", "victims covered", "coverage", "USD", "USD/victim")
	fig := &report.Figure{
		ID:     "multiregion",
		Title:  "Fleet cost per covered victim vs region count, per budget planner",
		XLabel: "regions attacked",
		YLabel: "USD per covered victim",
	}
	for pi, p := range planners {
		xs := make([]float64, 0, len(regionCounts))
		ys := make([]float64, 0, len(regionCounts))
		for ri, r := range regionCounts {
			c := cells[pi*len(regionCounts)+ri]
			tot := c.stats.Totals()
			tbl.AddRow(p.Name(), r, fmt.Sprintf("%d/%d", c.stats.RoundsUsed, c.stats.Budget),
				tot.ApparentHosts, fmt.Sprintf("%d/%d", c.cov.VictimCovered, c.cov.VictimTotal),
				c.cov.Fraction(), tot.USD, c.stats.CostPerVictim())
			key := fmt.Sprintf("%s_r%d", p.Name(), r)
			res.Metrics["coverage_"+key] = c.cov.Fraction()
			res.Metrics["usd_"+key] = tot.USD
			res.Metrics["cpv_"+key] = c.stats.CostPerVictim()
			res.Metrics["rounds_"+key] = float64(c.stats.RoundsUsed)
			res.Metrics["footprint_"+key] = float64(tot.ApparentHosts)
			xs = append(xs, float64(r))
			ys = append(ys, c.stats.CostPerVictim())
		}
		fig.AddSeries(p.Name(), xs, ys)
	}
	res.Figures = append(res.Figures, fig)
	res.Tables = append(res.Tables, tbl)

	res.note("same world seed per cell; within a region count the budget planner is the only variable")
	res.note("static-even spends its full R×Launches round budget; adaptive releases a region's budget once a round grows its footprint by under %.0f%% — at full scale that undercuts static-even on cost per covered victim", 100*attack.DefaultAdaptiveMinYield)
	return res, nil
}
