package experiments

import (
	"fmt"
	"sync"

	"eaao/internal/faas"
)

// The world forge is the experiments' copy-on-write world supply: every
// fixed-seed trial site asks it for a platform instead of calling
// faas.MustPlatform directly. The first request for a (seed, profiles)
// configuration builds the world once and cuts a faas.Snapshot of the
// pristine state; every later request — the other trials of a sweep, the
// other shards of a fleet, the next benchmark iteration — forks the snapshot
// instead of replaying construction. A fork is byte-identical to a fresh
// build (pinned by TestSnapshotRestoreByteIdentical and the golden digest
// suite), so the forge is invisible to every experiment result; it only
// moves wall time.
//
// Per-trial sites that derive their world from the trial sub-seed (fig4,
// fig5, fig7, fig11, fig12, the drift and reattack studies) keep building
// directly: each of their seeds is used exactly once per run, so a snapshot
// would be pure overhead. The scale experiment also builds directly — it is
// the kernel benchmark, and its world construction is part of what it
// measures.
//
// The map is guarded by a mutex because runTrials fans trials out across
// goroutines. That sync lives here, in the experiments layer that already
// coordinates between worlds; each simulated world itself stays
// single-threaded.
type worldForge struct {
	mu     sync.Mutex
	worlds map[string]*forgedWorld
}

type forgedWorld struct {
	once  sync.Once
	mu    sync.Mutex
	first *faas.Platform // the build the snapshot was cut from; handed to the first caller
	snap  *faas.Snapshot // nil when the world cannot be snapshotted (LegacySweeps)
	seed  uint64
	profs []faas.RegionProfile
}

var forge = worldForge{worlds: make(map[string]*forgedWorld)}

// worldKey fingerprints a world configuration. RegionProfile is a plain
// value struct (no maps, no funcs; Policy is a stateless value behind an
// interface), so %#v renders every placement knob, fault rate, and the
// concrete policy type deterministically.
func worldKey(seed uint64, profiles []faas.RegionProfile) string {
	return fmt.Sprintf("%d|%#v", seed, profiles)
}

func (f *worldForge) entry(seed uint64, profiles []faas.RegionProfile) *forgedWorld {
	key := worldKey(seed, profiles)
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.worlds[key]
	if !ok {
		w = &forgedWorld{seed: seed, profs: profiles}
		f.worlds[key] = w
	}
	return w
}

func (w *forgedWorld) fork() *faas.Platform {
	w.once.Do(func() {
		p := faas.MustPlatform(w.seed, w.profs...)
		w.first = p
		if snap, err := p.Snapshot(); err == nil {
			w.snap = snap
		}
		// A world that cannot be snapshotted (LegacySweeps arms its sweep
		// chain as closure events at construction) leaves snap nil: the
		// first build is still handed out, and later calls fall back to
		// per-call construction — the historical behavior, byte for byte.
	})
	w.mu.Lock()
	p := w.first
	w.first = nil
	w.mu.Unlock()
	if p != nil {
		return p
	}
	if w.snap != nil {
		return w.snap.MustRestore()
	}
	return faas.MustPlatform(w.seed, w.profs...)
}

// forkPlatform returns an independent world for (seed, profiles): built from
// scratch on the configuration's first use, forked from its pristine
// snapshot afterwards. Interchangeable with faas.MustPlatform at every
// fixed-seed trial site.
func forkPlatform(seed uint64, profiles ...faas.RegionProfile) *faas.Platform {
	return forge.entry(seed, profiles).fork()
}

// forkFleet is forkPlatform for sharded campaigns: one forked single-region
// platform per profile, assembled with faas.FleetOf. Byte-identical to
// faas.NewFleet(seed, profiles...) — NewFleet also builds one platform per
// region from the root seed — but cells of a sweep share each region's
// construction instead of replaying it.
func forkFleet(seed uint64, profiles ...faas.RegionProfile) (*faas.Fleet, error) {
	dcs := make([]*faas.DataCenter, len(profiles))
	for i, prof := range profiles {
		dcs[i] = forkPlatform(seed, prof).MustRegion(prof.Name)
	}
	return faas.FleetOf(dcs...)
}
