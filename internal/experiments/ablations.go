package experiments

import (
	"fmt"
	"sync"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// ablationProfile is a single mid-sized region used by every ablation, so
// rows within one table are directly comparable.
func ablationProfile() faas.RegionProfile {
	p := faas.USEast1Profile()
	p.Name = "ablation"
	p.NumHosts = 300
	p.PlacementGroups = 3
	p.BasePoolSize = 90
	p.AccountHelperPool = 90
	p.ServiceHelperSize = 70
	p.ServiceHelperFresh = 5
	return p
}

// ablationWorld launches n instances in a fresh ablation region. The
// launched world — not just the empty region — rides the snapshot path: the
// first (seed, n, gen) request builds and launches once, and every other
// trial of the sweep forks that instant instead of replaying placement. No
// simulated time passes between the launch and the snapshot, so the fork's
// instance list is exactly the launch batch, in launch order.
func ablationWorld(seed uint64, n int, gen sandbox.Gen) (*faas.Platform, []*faas.Instance, error) {
	v, _ := ablationWorlds.LoadOrStore(fmt.Sprintf("%d|%d|%v", seed, n, gen), &launchedWorld{})
	w := v.(*launchedWorld)
	w.once.Do(func() {
		pl := forkPlatform(seed, ablationProfile())
		if _, err := pl.MustRegion("ablation").Account("a").
			DeployService("s", faas.ServiceConfig{Gen: gen}).Launch(n); err != nil {
			w.err = err
			return
		}
		w.snap, w.err = pl.Snapshot()
	})
	if w.err != nil {
		return nil, nil, w.err
	}
	pl := w.snap.MustRestore()
	insts := pl.MustRegion("ablation").Account("a").
		DeployService("s", faas.ServiceConfig{Gen: gen}).Instances()
	return pl, insts, nil
}

// launchedWorld is a snapshot cut after a scripted launch, plus the error
// that aborted the script (sticky: a failed script fails every trial of the
// sweep identically, like the per-trial builds it replaced would have).
type launchedWorld struct {
	once sync.Once
	snap *faas.Snapshot
	err  error
}

var ablationWorlds sync.Map // "seed|n|gen" → *launchedWorld

func ablationItems(insts []*faas.Instance) ([]coloc.Item, error) {
	items := make([]coloc.Item, len(insts))
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			return nil, err
		}
		fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
		items[i] = coloc.Item{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	return items, nil
}

func runAblations(ctx Context) (*Result, error) {
	d, _ := ByID("ablations")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}

	// Every sweep below pins its world seed (ctx.Seed+k, identical across
	// the sweep's values) so rows within one table stay directly
	// comparable; the trial engine parallelizes the sweep values, each in
	// its own world, and the trial sub-seed is deliberately unused.

	// 1. Contention threshold m: group size per test vs tests consumed.
	type mRow struct {
		tests             int
		recall, precision float64
	}
	ms := []int{2, 3, 4}
	mRows, err := runTrials(ctx, len(ms), func(t Trial) (mRow, error) {
		m := ms[t.Index]
		pl, insts, err := ablationWorld(ctx.Seed+1, n, sandbox.Gen1)
		if err != nil {
			return mRow{}, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return mRow{}, err
		}
		tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
		ver, err := coloc.Verify(tester, items, coloc.Options{M: m})
		if err != nil {
			return mRow{}, err
		}
		truth := make([]faas.HostID, len(insts))
		for i, inst := range insts {
			truth[i], _ = inst.HostID()
		}
		sc := metrics.ScoreOf(ver.Labels, truth)
		return mRow{ver.Tests, sc.Recall, sc.Precision}, nil
	})
	if err != nil {
		return nil, err
	}
	mTbl := report.NewTable("Ablation: CTest contention threshold m",
		"m", "max group per test", "tests", "recall", "precision")
	for mi, m := range ms {
		r := mRows[mi]
		mTbl.AddRow(m, covert.MaxGroupSize(m), r.tests, r.recall, r.precision)
		res.Metrics[fmt.Sprintf("m%d_tests", m)] = float64(r.tests)
		res.Metrics[fmt.Sprintf("m%d_recall", m)] = r.recall
	}
	res.Tables = append(res.Tables, mTbl)

	// 2. Verification method: scalable vs pairwise vs SIE, each executed
	// against its own copy of the same world.
	type vRow struct {
		tests      int
		serialized time.Duration
	}
	methods := []string{"scalable (ours)", "pairwise", "SIE+pairwise"}
	vRows, err := runTrials(ctx, len(methods), func(t Trial) (vRow, error) {
		pl, insts, err := ablationWorld(ctx.Seed+2, n/2, sandbox.Gen1)
		if err != nil {
			return vRow{}, err
		}
		tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
		var ver *coloc.Result
		switch t.Index {
		case 0:
			items, err := ablationItems(insts)
			if err != nil {
				return vRow{}, err
			}
			ver, err = coloc.Verify(tester, items, coloc.DefaultOptions())
			if err != nil {
				return vRow{}, err
			}
		case 1:
			ver, err = coloc.VerifyPairwise(tester, insts)
			if err != nil {
				return vRow{}, err
			}
		default:
			ver, err = coloc.VerifySIE(tester, insts)
			if err != nil {
				return vRow{}, err
			}
		}
		return vRow{ver.Tests, ver.SerializedTime}, nil
	})
	if err != nil {
		return nil, err
	}
	vTbl := report.NewTable("Ablation: verification method", "method", "tests", "serialized time")
	for vi, method := range methods {
		vTbl.AddRow(method, vRows[vi].tests, vRows[vi].serialized.String())
	}
	res.Metrics["verify_scalable_tests"] = float64(vRows[0].tests)
	res.Metrics["verify_pairwise_tests"] = float64(vRows[1].tests)
	res.Metrics["verify_sie_tests"] = float64(vRows[2].tests)
	res.Tables = append(res.Tables, vTbl)

	// 3. Covert channel: RNG vs memory bus at equal verification quality.
	channels := []struct {
		name string
		cfg  covert.Config
	}{{"rng", covert.DefaultConfig()}, {"membus", covert.MemBusConfig()}}
	chRows, err := runTrials(ctx, len(channels), func(t Trial) (vRow, error) {
		pl, insts, err := ablationWorld(ctx.Seed+3, n/2, sandbox.Gen1)
		if err != nil {
			return vRow{}, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return vRow{}, err
		}
		tester := covert.NewTester(pl.Scheduler(), channels[t.Index].cfg)
		ver, err := coloc.Verify(tester, items, coloc.DefaultOptions())
		if err != nil {
			return vRow{}, err
		}
		return vRow{ver.Tests, ver.SerializedTime}, nil
	})
	if err != nil {
		return nil, err
	}
	cTbl := report.NewTable("Ablation: covert channel", "channel", "tests", "serialized time")
	for ci, c := range channels {
		cTbl.AddRow(c.name, chRows[ci].tests, chRows[ci].serialized.String())
		res.Metrics["channel_"+c.name+"_minutes"] = chRows[ci].serialized.Minutes()
	}
	res.Tables = append(res.Tables, cTbl)

	// 4. Launch interval: the demand-window sweet spot.
	intervals := []time.Duration{2 * time.Minute, 10 * time.Minute, 45 * time.Minute}
	iRows, err := runTrials(ctx, len(intervals), func(t Trial) (int, error) {
		pl := forkPlatform(ctx.Seed+4, ablationProfile())
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		cfg.Interval = intervals[t.Index]
		camp, err := launchCampaign(dc, "atk", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return 0, err
		}
		return camp.Stats().ApparentHosts, nil
	})
	if err != nil {
		return nil, err
	}
	iTbl := report.NewTable("Ablation: optimized-strategy launch interval",
		"interval", "attacker footprint (apparent hosts)")
	for ii, interval := range intervals {
		iTbl.AddRow(interval.String(), iRows[ii])
		res.Metrics["interval_"+interval.String()] = float64(iRows[ii])
	}
	res.Tables = append(res.Tables, iTbl)

	// 5. Service count: diminishing returns from overlapping helper sets.
	serviceCounts := []int{1, 3, 6}
	sRows, err := runTrials(ctx, len(serviceCounts), func(t Trial) (int, error) {
		pl := forkPlatform(ctx.Seed+5, ablationProfile())
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = serviceCounts[t.Index]
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		camp, err := launchCampaign(dc, "atk", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return 0, err
		}
		return camp.Stats().ApparentHosts, nil
	})
	if err != nil {
		return nil, err
	}
	sTbl := report.NewTable("Ablation: attacker service count",
		"services", "attacker footprint (apparent hosts)")
	for si, services := range serviceCounts {
		sTbl.AddRow(services, sRows[si])
		res.Metrics[fmt.Sprintf("services_%d", services)] = float64(sRows[si])
	}
	res.Tables = append(res.Tables, sTbl)

	// 6. Dynamic placement: coverage vs base-pool resampling fraction.
	fracs := []float64{0, 0.25, 0.5, 0.75}
	dRows, err := runTrials(ctx, len(fracs), func(t Trial) (float64, error) {
		frac := fracs[t.Index]
		p := ablationProfile()
		if frac > 0 {
			p.DynamicPlacement = true
			p.DynamicResampleFrac = frac
		}
		pl := forkPlatform(ctx.Seed+11, p)
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		camp, err := launchCampaign(dc, "attacker", cfg, attack.OptimizedStrategy{}, sandbox.Gen1)
		if err != nil {
			return 0, err
		}
		_, vic, err := coldVictim(dc, "victim", "v", faas.ServiceConfig{}, 60, 3)
		if err != nil {
			return 0, err
		}
		cov, _, err := camp.Verify(vic)
		if err != nil {
			return 0, err
		}
		return cov.Fraction(), nil
	})
	if err != nil {
		return nil, err
	}
	dTbl := report.NewTable("Ablation: dynamic placement (us-central1 mechanism)",
		"resample fraction", "victim coverage")
	for di, frac := range fracs {
		dTbl.AddRow(frac, dRows[di])
		res.Metrics[fmt.Sprintf("dynamic_%.2f", frac)] = dRows[di]
	}
	res.Tables = append(res.Tables, dTbl)

	// 7. Frequency source (§4.2, method 1 vs method 2): the reported
	// frequency works on every host but drifts, so fingerprints recorded
	// today stop matching after days; the measured frequency is drift-free
	// but useless on timekeeping-disturbed hosts. Survival = fraction of
	// tracked hosts whose day-0 fingerprint still matches at day 5.
	fTbl := report.NewTable("Ablation: TSC frequency source (method 1 vs 2)",
		"method", "hosts usable", "5-day fingerprint survival")
	{
		p := ablationProfile()
		p.InstanceChurnPerHour = 0 // hold the same instances for 5 days
		pl := forkPlatform(ctx.Seed+6, p)
		dc := pl.MustRegion("ablation")
		insts, err := dc.Account("a").DeployService("s", faas.ServiceConfig{}).Launch(n)
		if err != nil {
			return nil, err
		}
		// One representative per host (ground truth just picks the reps;
		// measurement is guest-only).
		seen := make(map[faas.HostID]bool)
		var reps []*faas.Instance
		for _, inst := range insts {
			if id, _ := inst.HostID(); !seen[id] {
				seen[id] = true
				reps = append(reps, inst)
			}
		}
		type snap struct {
			reported fingerprint.Gen1
			measured fingerprint.Gen1
			usable   bool
		}
		record := func() ([]snap, error) {
			out := make([]snap, len(reps))
			for i, inst := range reps {
				g := inst.MustGuest()
				sm, err := fingerprint.CollectGen1(g)
				if err != nil {
					return nil, err
				}
				out[i].reported = fingerprint.Gen1FromSample(sm, fingerprint.DefaultPrecision)
				m, err := fingerprint.MeasureFrequency(g, dc.Scheduler(), 100*time.Millisecond, 10)
				if err != nil {
					return nil, err
				}
				out[i].usable = m.Usable()
				out[i].measured = fingerprint.Gen1FromBootTime(
					sm.Model, fingerprint.BootTimeMeasured(sm, m), fingerprint.DefaultPrecision)
			}
			return out, nil
		}
		day0, err := record()
		if err != nil {
			return nil, err
		}
		dc.Scheduler().Advance(5 * 24 * time.Hour)
		day5, err := record()
		if err != nil {
			return nil, err
		}
		var repSurvived, repTotal, measSurvived, measTotal int
		for i := range reps {
			repTotal++
			if day0[i].reported == day5[i].reported {
				repSurvived++
			}
			if day0[i].usable && day5[i].usable {
				measTotal++
				// Drift-free matching still tolerates the rounding
				// boundary: adjacent buckets count as a match.
				d := day0[i].measured.BootBucket - day5[i].measured.BootBucket
				if day0[i].measured.Model == day5[i].measured.Model && d >= -1 && d <= 1 {
					measSurvived++
				}
			}
		}
		repRate := float64(repSurvived) / float64(repTotal)
		measRate := float64(measSurvived) / float64(measTotal)
		fTbl.AddRow("reported frequency (method 1)", fmt.Sprintf("%d/%d", repTotal, repTotal), repRate)
		fTbl.AddRow("measured frequency (method 2)", fmt.Sprintf("%d/%d", measTotal, repTotal), measRate)
		res.Metrics["freq_reported_survival"] = repRate
		res.Metrics["freq_measured_survival"] = measRate
		res.Metrics["freq_measured_usable_frac"] = float64(measTotal) / float64(repTotal)
	}
	res.Tables = append(res.Tables, fTbl)

	res.note("design-choice sweeps behind the headline results; the same ablations run as benchmarks (go test -bench Ablation)")
	res.note("frequency-source ablation: method 1 covers every host but its fingerprints expire over days; method 2 survives indefinitely on the ~90%% of hosts where it works at all — the paper chooses method 1 and simply refreshes (§4.2)")
	return res, nil
}
