package experiments

import (
	"fmt"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/fingerprint"
	"eaao/internal/faas"
	"eaao/internal/metrics"
	"eaao/internal/report"
	"eaao/internal/sandbox"
)

// ablationProfile is a single mid-sized region used by every ablation, so
// rows within one table are directly comparable.
func ablationProfile() faas.RegionProfile {
	p := faas.USEast1Profile()
	p.Name = "ablation"
	p.NumHosts = 300
	p.PlacementGroups = 3
	p.BasePoolSize = 90
	p.AccountHelperPool = 90
	p.ServiceHelperSize = 70
	p.ServiceHelperFresh = 5
	return p
}

// ablationWorld launches n instances in a fresh ablation region.
func ablationWorld(seed uint64, n int, gen sandbox.Gen) (*faas.Platform, []*faas.Instance, error) {
	pl := faas.MustPlatform(seed, ablationProfile())
	insts, err := pl.MustRegion("ablation").Account("a").
		DeployService("s", faas.ServiceConfig{Gen: gen}).Launch(n)
	return pl, insts, err
}

func ablationItems(insts []*faas.Instance) ([]coloc.Item, error) {
	items := make([]coloc.Item, len(insts))
	for i, inst := range insts {
		s, err := fingerprint.CollectGen1(inst.MustGuest())
		if err != nil {
			return nil, err
		}
		fp := fingerprint.Gen1FromSample(s, fingerprint.DefaultPrecision)
		items[i] = coloc.Item{Inst: inst, Fingerprint: fp.String(), ConflictKey: fp.Model}
	}
	return items, nil
}

func runAblations(ctx Context) (*Result, error) {
	d, _ := ByID("ablations")
	res := newResult(d)
	n := 150
	if !ctx.Quick {
		n = 400
	}

	// 1. Contention threshold m: group size per test vs tests consumed.
	mTbl := report.NewTable("Ablation: CTest contention threshold m",
		"m", "max group per test", "tests", "recall", "precision")
	for _, m := range []int{2, 3, 4} {
		pl, insts, err := ablationWorld(ctx.Seed+1, n, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return nil, err
		}
		tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
		ver, err := coloc.Verify(tester, items, coloc.Options{M: m})
		if err != nil {
			return nil, err
		}
		truth := make([]faas.HostID, len(insts))
		for i, inst := range insts {
			truth[i], _ = inst.HostID()
		}
		sc := metrics.ScoreOf(ver.Labels, truth)
		mTbl.AddRow(m, covert.MaxGroupSize(m), ver.Tests, sc.Recall, sc.Precision)
		res.Metrics[fmt.Sprintf("m%d_tests", m)] = float64(ver.Tests)
		res.Metrics[fmt.Sprintf("m%d_recall", m)] = sc.Recall
	}
	res.Tables = append(res.Tables, mTbl)

	// 2. Verification method: scalable vs pairwise vs SIE.
	vTbl := report.NewTable("Ablation: verification method", "method", "tests", "serialized time")
	{
		pl, insts, err := ablationWorld(ctx.Seed+2, n/2, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return nil, err
		}
		tester := covert.NewTester(pl.Scheduler(), covert.DefaultConfig())
		ours, err := coloc.Verify(tester, items, coloc.DefaultOptions())
		if err != nil {
			return nil, err
		}
		pair, err := coloc.VerifyPairwise(tester, insts)
		if err != nil {
			return nil, err
		}
		sie, err := coloc.VerifySIE(tester, insts)
		if err != nil {
			return nil, err
		}
		vTbl.AddRow("scalable (ours)", ours.Tests, ours.SerializedTime.String())
		vTbl.AddRow("pairwise", pair.Tests, pair.SerializedTime.String())
		vTbl.AddRow("SIE+pairwise", sie.Tests, sie.SerializedTime.String())
		res.Metrics["verify_scalable_tests"] = float64(ours.Tests)
		res.Metrics["verify_pairwise_tests"] = float64(pair.Tests)
		res.Metrics["verify_sie_tests"] = float64(sie.Tests)
	}
	res.Tables = append(res.Tables, vTbl)

	// 3. Covert channel: RNG vs memory bus at equal verification quality.
	cTbl := report.NewTable("Ablation: covert channel", "channel", "tests", "serialized time")
	for _, c := range []struct {
		name string
		cfg  covert.Config
	}{{"rng", covert.DefaultConfig()}, {"membus", covert.MemBusConfig()}} {
		pl, insts, err := ablationWorld(ctx.Seed+3, n/2, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		items, err := ablationItems(insts)
		if err != nil {
			return nil, err
		}
		tester := covert.NewTester(pl.Scheduler(), c.cfg)
		ver, err := coloc.Verify(tester, items, coloc.DefaultOptions())
		if err != nil {
			return nil, err
		}
		cTbl.AddRow(c.name, ver.Tests, ver.SerializedTime.String())
		res.Metrics["channel_"+c.name+"_minutes"] = ver.SerializedTime.Minutes()
	}
	res.Tables = append(res.Tables, cTbl)

	// 4. Launch interval: the demand-window sweet spot.
	iTbl := report.NewTable("Ablation: optimized-strategy launch interval",
		"interval", "attacker footprint (apparent hosts)")
	for _, interval := range []time.Duration{2 * time.Minute, 10 * time.Minute, 45 * time.Minute} {
		pl := faas.MustPlatform(ctx.Seed+4, ablationProfile())
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		cfg.Interval = interval
		camp, err := attack.RunOptimized(dc.Account("atk"), cfg, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		iTbl.AddRow(interval.String(), camp.Footprint.Cumulative())
		res.Metrics["interval_"+interval.String()] = float64(camp.Footprint.Cumulative())
	}
	res.Tables = append(res.Tables, iTbl)

	// 5. Service count: diminishing returns from overlapping helper sets.
	sTbl := report.NewTable("Ablation: attacker service count",
		"services", "attacker footprint (apparent hosts)")
	for _, services := range []int{1, 3, 6} {
		pl := faas.MustPlatform(ctx.Seed+5, ablationProfile())
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = services
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		camp, err := attack.RunOptimized(dc.Account("atk"), cfg, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		sTbl.AddRow(services, camp.Footprint.Cumulative())
		res.Metrics[fmt.Sprintf("services_%d", services)] = float64(camp.Footprint.Cumulative())
	}
	res.Tables = append(res.Tables, sTbl)

	// 6. Dynamic placement: coverage vs base-pool resampling fraction.
	dTbl := report.NewTable("Ablation: dynamic placement (us-central1 mechanism)",
		"resample fraction", "victim coverage")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		p := ablationProfile()
		if frac > 0 {
			p.DynamicPlacement = true
			p.DynamicResampleFrac = frac
		}
		pl := faas.MustPlatform(ctx.Seed+11, p)
		dc := pl.MustRegion("ablation")
		cfg := attack.DefaultConfig()
		cfg.Services = 2
		cfg.InstancesPerLaunch = n
		cfg.Launches = 4
		camp, err := attack.RunOptimized(dc.Account("attacker"), cfg, sandbox.Gen1)
		if err != nil {
			return nil, err
		}
		vicSvc := dc.Account("victim").DeployService("v", faas.ServiceConfig{})
		var vic []*faas.Instance
		for l := 0; l < 3; l++ {
			vic, err = vicSvc.Launch(60)
			if err != nil {
				return nil, err
			}
			if l < 2 {
				vicSvc.Disconnect()
				dc.Scheduler().Advance(45 * time.Minute)
			}
		}
		tester := covert.NewTester(dc.Scheduler(), covert.DefaultConfig())
		cov, err := attack.MeasureCoverage(tester, camp.Live, vic, cfg.Precision)
		if err != nil {
			return nil, err
		}
		dTbl.AddRow(frac, cov.Fraction())
		res.Metrics[fmt.Sprintf("dynamic_%.2f", frac)] = cov.Fraction()
	}
	res.Tables = append(res.Tables, dTbl)

	// 7. Frequency source (§4.2, method 1 vs method 2): the reported
	// frequency works on every host but drifts, so fingerprints recorded
	// today stop matching after days; the measured frequency is drift-free
	// but useless on timekeeping-disturbed hosts. Survival = fraction of
	// tracked hosts whose day-0 fingerprint still matches at day 5.
	fTbl := report.NewTable("Ablation: TSC frequency source (method 1 vs 2)",
		"method", "hosts usable", "5-day fingerprint survival")
	{
		p := ablationProfile()
		p.InstanceChurnPerHour = 0 // hold the same instances for 5 days
		pl := faas.MustPlatform(ctx.Seed+6, p)
		dc := pl.MustRegion("ablation")
		insts, err := dc.Account("a").DeployService("s", faas.ServiceConfig{}).Launch(n)
		if err != nil {
			return nil, err
		}
		// One representative per host (ground truth just picks the reps;
		// measurement is guest-only).
		seen := make(map[faas.HostID]bool)
		var reps []*faas.Instance
		for _, inst := range insts {
			if id, _ := inst.HostID(); !seen[id] {
				seen[id] = true
				reps = append(reps, inst)
			}
		}
		type snap struct {
			reported fingerprint.Gen1
			measured fingerprint.Gen1
			usable   bool
		}
		record := func() ([]snap, error) {
			out := make([]snap, len(reps))
			for i, inst := range reps {
				g := inst.MustGuest()
				sm, err := fingerprint.CollectGen1(g)
				if err != nil {
					return nil, err
				}
				out[i].reported = fingerprint.Gen1FromSample(sm, fingerprint.DefaultPrecision)
				m, err := fingerprint.MeasureFrequency(g, dc.Scheduler(), 100*time.Millisecond, 10)
				if err != nil {
					return nil, err
				}
				out[i].usable = m.Usable()
				out[i].measured = fingerprint.Gen1FromBootTime(
					sm.Model, fingerprint.BootTimeMeasured(sm, m), fingerprint.DefaultPrecision)
			}
			return out, nil
		}
		day0, err := record()
		if err != nil {
			return nil, err
		}
		dc.Scheduler().Advance(5 * 24 * time.Hour)
		day5, err := record()
		if err != nil {
			return nil, err
		}
		var repSurvived, repTotal, measSurvived, measTotal int
		for i := range reps {
			repTotal++
			if day0[i].reported == day5[i].reported {
				repSurvived++
			}
			if day0[i].usable && day5[i].usable {
				measTotal++
				// Drift-free matching still tolerates the rounding
				// boundary: adjacent buckets count as a match.
				d := day0[i].measured.BootBucket - day5[i].measured.BootBucket
				if day0[i].measured.Model == day5[i].measured.Model && d >= -1 && d <= 1 {
					measSurvived++
				}
			}
		}
		repRate := float64(repSurvived) / float64(repTotal)
		measRate := float64(measSurvived) / float64(measTotal)
		fTbl.AddRow("reported frequency (method 1)", fmt.Sprintf("%d/%d", repTotal, repTotal), repRate)
		fTbl.AddRow("measured frequency (method 2)", fmt.Sprintf("%d/%d", measTotal, repTotal), measRate)
		res.Metrics["freq_reported_survival"] = repRate
		res.Metrics["freq_measured_survival"] = measRate
		res.Metrics["freq_measured_usable_frac"] = float64(measTotal) / float64(repTotal)
	}
	res.Tables = append(res.Tables, fTbl)

	res.note("design-choice sweeps behind the headline results; the same ablations run as benchmarks (go test -bench Ablation)")
	res.note("frequency-source ablation: method 1 covers every host but its fingerprints expire over days; method 2 survives indefinitely on the ~90%% of hosts where it works at all — the paper chooses method 1 and simply refreshes (§4.2)")
	return res, nil
}
