package faas

import (
	"fmt"

	"eaao/internal/simtime"
)

// World snapshots: copy-on-write forking of a fully built platform.
//
// Trial fan-out (runTrials, campaign sweeps, fleet shards) historically
// rebuilt the world from the root seed for every trial — at fleet scale,
// world construction dominates the experiment wall clock. A Snapshot freezes
// one deep copy of the platform; each Restore forks an independent, fully
// independent world from it in O(live state) — no RNG replay, no
// re-derivation, no host re-materialization. Forks are byte-identical
// continuations of the snapshot instant: every RNG stream resumes at its
// exact position, the event queue keeps its deadlines and tie-break
// sequence numbers, and lazily-materialized hosts stay unmaterialized (a
// fork pays only for the hosts the original had touched).
//
// What cannot be snapshotted — all three capture state that lives outside
// the world, which a deep copy cannot follow:
//
//   - pending closure events (Scheduler.At/After/Schedule): the legacy
//     sweep path and experiment-scheduled callbacks. The event kernel and
//     every platform timer use intrusive Handler events, which remap
//     cleanly; LegacySweeps worlds and mid-callback snapshots error.
//   - instances carrying OnSIGTERM or SetWorkload callbacks.
//   - an installed PlacementTracer.
//
// Snapshot while any of these exist returns an error rather than a
// silently-diverging fork.

// Snapshot is a frozen deep copy of a Platform at one instant. It is
// immutable: Restore forks fresh platforms from it any number of times, and
// neither the original platform nor any fork can reach back into it.
type Snapshot struct {
	world *Platform
}

// Snapshot deep-copies the platform — RNG stream positions, the kernel event
// heap, accounts, services, live instances, and materialized host state —
// into an immutable Snapshot that Restore can fork independent worlds from.
func (p *Platform) Snapshot() (*Snapshot, error) {
	w, err := clonePlatform(p)
	if err != nil {
		return nil, err
	}
	return &Snapshot{world: w}, nil
}

// Restore forks a new Platform from the snapshot. The fork is a
// byte-identical continuation of the snapshotted world: driving it through
// any sequence of operations produces exactly the states and draws the
// original platform would have produced from the snapshot instant. Each call
// returns a fully independent world.
func (s *Snapshot) Restore() (*Platform, error) {
	return clonePlatform(s.world)
}

// MustRestore is Restore, panicking on error. A snapshot that was taken
// successfully always restores — Restore errors only indicate corruption —
// so fan-out loops use this form.
func (s *Snapshot) MustRestore() *Platform {
	p, err := s.Restore()
	if err != nil {
		panic(err)
	}
	return p
}

// worldClone carries the old-to-new identity maps of one platform clone;
// remapEvent consults them to rebind the scheduler's pending events to
// their cloned owners.
type worldClone struct {
	dcs   map[*DataCenter]*DataCenter
	hosts map[*Host]*Host
	insts map[*Instance]*Instance
	svcs  map[*Service]*Service
	err   error
}

func clonePlatform(src *Platform) (*Platform, error) {
	np := &Platform{
		rng:     src.rng.Clone(),
		regions: make(map[Region]*DataCenter, len(src.regions)),
		order:   append([]Region(nil), src.order...),
		markSeq: src.markSeq,
	}
	cl := &worldClone{
		dcs:   make(map[*DataCenter]*DataCenter, len(src.regions)),
		hosts: make(map[*Host]*Host),
		insts: make(map[*Instance]*Instance),
		svcs:  make(map[*Service]*Service),
	}
	for _, r := range src.order {
		ndc, err := cloneDataCenter(np, src.regions[r], cl)
		if err != nil {
			return nil, err
		}
		np.regions[r] = ndc
	}
	sched, err := src.sched.Clone(cl.remapEvent)
	if cl.err != nil {
		return nil, cl.err
	}
	if err != nil {
		return nil, fmt.Errorf("faas: snapshot: %w (LegacySweeps worlds and experiment-scheduled closures cannot be snapshotted)", err)
	}
	np.sched = sched
	return np, nil
}

func cloneDataCenter(np *Platform, odc *DataCenter, cl *worldClone) (*DataCenter, error) {
	if odc.tracer != nil {
		return nil, fmt.Errorf("faas: snapshot: region %s has a placement tracer installed; tracers capture state outside the world", odc.profile.Name)
	}
	ndc := &DataCenter{
		platform: np,
		profile:  odc.profile,
		rng:      odc.rng.Clone(),
		// bootTimes is immutable after construction and identical across
		// forks; sharing it saves the largest remaining per-fork slice.
		bootTimes:         odc.bootTimes,
		liveHosts:         odc.liveHosts,
		accounts:          make(map[string]*Account, len(odc.accounts)),
		nextInst:          odc.nextInst,
		churnHazard:       odc.churnHazard,
		preemptHazard:     odc.preemptHazard,
		lifeSeed:          odc.lifeSeed,
		lifeMix1:          odc.lifeMix1,
		nurseryAt:         odc.nurseryAt,
		policy:            odc.policy,
		traceSeq:          odc.traceSeq,
		deprecationWarned: odc.deprecationWarned,
		channelShimWarned: odc.channelShimWarned,
		faults:            odc.faults,
		faultCounters:     odc.faultCounters,
		liveInstances:     odc.liveInstances,
	}
	// Selection and derivation scratch is dead between operations by
	// contract, so the fork starts with fresh (empty) scratch. The lifecycle
	// event pool is likewise rebuilt: pool slot identity is invisible to the
	// simulation, and remapEvent leases fresh slots for pending timers.
	cl.dcs[odc] = ndc
	ndc.launchFaultRNG = odc.launchFaultRNG.Clone()
	ndc.preemptRNG = odc.preemptRNG.Clone()
	ndc.channelFaultRNG = odc.channelFaultRNG.Clone()
	ndc.probeFaultRNG = odc.probeFaultRNG.Clone()

	// Hosts: one contiguous store, like construction. Value-copy preserves
	// materialized state (model, counter, refined frequency, misfire window)
	// and identity fields alike; unmaterialized shells stay shells, so the
	// fork keeps the lazy fleet's cost profile. The resident-instance lists
	// are re-pointed slot for slot as instances clone below.
	store := make([]Host, len(odc.hosts))
	ndc.hosts = make([]*Host, len(odc.hosts))
	for i, oh := range odc.hosts {
		nh := &store[i]
		*nh = *oh
		nh.dc = ndc
		if oh.noiseRNG != nil {
			nh.noiseRNG = oh.noiseRNG.Clone()
		}
		nh.instances = nil
		if n := len(oh.instances); n > 0 {
			nh.instances = make([]*Instance, n)
		}
		ndc.hosts[i] = nh
		cl.hosts[oh] = nh
	}

	for _, oa := range odc.acctSeq {
		na, err := cloneAccount(ndc, oa, cl)
		if err != nil {
			return nil, err
		}
		ndc.accounts[oa.id] = na
		ndc.acctSeq = append(ndc.acctSeq, na)
	}

	// Background traffic is data plus intrusive events, so it deep-copies:
	// tenants are value structs whose service pointers remap through the
	// account clones above, the stateless draw streams travel as (mixBase,
	// draws) counters, and each tenant's pending re-draw timer rebinds in
	// remapEvent by rank. This is what keeps loaded worlds fork-compatible
	// where closure-backed workloads (SetWorkload) cannot be.
	if ot := odc.traffic; ot != nil {
		nt := &trafficState{
			dc:        ndc,
			model:     ot.model,
			mix1:      ot.mix1,
			rejectRNG: ot.rejectRNG.Clone(),
			capacity:  ot.capacity,
			redraws:   ot.redraws,
			rejects:   ot.rejects,
			tenants:   make([]trafficTenant, len(ot.tenants)),
		}
		for i := range ot.tenants {
			o := &ot.tenants[i]
			n := &nt.tenants[i]
			n.state = nt
			n.rank = o.rank
			n.mixBase = o.mixBase
			n.base = o.base
			n.phase = o.phase
			n.draws = o.draws
			n.svc = cl.svcs[o.svc]
			if n.svc == nil {
				return nil, fmt.Errorf("faas: snapshot: traffic tenant %d's service missing from the clone", i)
			}
		}
		ndc.traffic = nt
	}

	// Every slot of every host's resident list must have been claimed by a
	// cloned instance (live instances are exactly the service-reachable
	// ones); a hole means the identity maps are inconsistent.
	for i, nh := range ndc.hosts {
		for slot, inst := range nh.instances {
			if inst == nil {
				return nil, fmt.Errorf("faas: snapshot: host %d resident slot %d not reclaimed by any live instance", i, slot)
			}
		}
	}
	return ndc, nil
}

func cloneAccount(ndc *DataCenter, oa *Account, cl *worldClone) (*Account, error) {
	na := &Account{
		dc:       ndc,
		id:       oa.id,
		rng:      oa.rng.Clone(),
		group:    oa.group,
		basePool: remapHosts(oa.basePool, cl),
		helpers:  remapHosts(oa.helpers, cl),
		services: make(map[string]*Service, len(oa.services)),
		quota:    oa.quota,
		bill:     oa.bill,
	}
	for _, os := range oa.svcSeq {
		ns, err := cloneService(na, os, cl)
		if err != nil {
			return nil, err
		}
		na.services[os.name] = ns
		na.svcSeq = append(na.svcSeq, ns)
	}
	return na, nil
}

func cloneService(na *Account, os *Service, cl *worldClone) (*Service, error) {
	ns := &Service{
		account:         na,
		name:            os.name,
		size:            os.size,
		gen:             os.gen,
		rng:             os.rng.Clone(),
		deadInsts:       os.deadInsts,
		hasLaunched:     os.hasLaunched,
		lastLaunch:      os.lastLaunch,
		hotStreak:       os.hotStreak,
		maxConcurrency:  os.maxConcurrency,
		demand:          os.demand,
		autoscaling:     os.autoscaling,
		activeCount:     os.activeCount,
		seenHosts:       append(hostBitset(nil), os.seenHosts...),
		coldLaunchHosts: os.coldLaunchHosts,
		usedLaunchHosts: os.usedLaunchHosts,
	}
	cl.svcs[os] = ns
	switch st := os.policyState.(type) {
	case nil:
	case *cloudRunState:
		ns.policyState = &cloudRunState{helpers: remapHosts(st.helpers, cl)}
	default:
		return nil, fmt.Errorf("faas: snapshot: service %s/%s has unsupported policy state %T", na.id, os.name, st)
	}
	// Instance list layout — including nil tombstones — is preserved exactly:
	// iteration order over insts drives order-sensitive draws (churn,
	// scale-in) and the compaction trigger counts tombstones.
	if len(os.insts) > 0 {
		ns.insts = make([]*Instance, len(os.insts))
		for i, oi := range os.insts {
			if oi == nil {
				continue
			}
			ni, err := cloneInstance(ns, oi, cl)
			if err != nil {
				return nil, err
			}
			ns.insts[i] = ni
		}
	}
	return ns, nil
}

func cloneInstance(ns *Service, oi *Instance, cl *worldClone) (*Instance, error) {
	if oi.sigterm != nil {
		return nil, fmt.Errorf("faas: snapshot: instance %s has an OnSIGTERM callback; callbacks capture state outside the world", oi.ID())
	}
	if oi.workload != nil {
		return nil, fmt.Errorf("faas: snapshot: instance %s has a workload model installed; callbacks capture state outside the world", oi.ID())
	}
	ndc := ns.account.dc
	ni := ndc.allocInstance()
	*ni = *oi
	ni.service = ns
	nh := cl.hosts[oi.host]
	if nh == nil {
		return nil, fmt.Errorf("faas: snapshot: instance %s resides on an unknown host", oi.ID())
	}
	ni.host = nh
	nh.instances[oi.hostSlot] = ni
	// The guest's host-environment handle must point at the cloned host; all
	// other guest state (offsets, epochs, read counts) is value-copied.
	oi.guestStore.CloneInto(&ni.guestStore, nh)
	ni.guest = &ni.guestStore
	// Timers start detached; remapEvent rebinds pending ones with their
	// original deadlines and tie-break sequence (and leases a fresh pooled
	// slot for a pending lifecycle timer).
	ni.termEvent = simtime.Event{}
	ni.lifeEvent = nil
	if len(oi.cacheFootprint) > 0 {
		ni.cacheFootprint = append([]int(nil), oi.cacheFootprint...)
	}
	cl.insts[oi] = ni
	return ni, nil
}

func remapHosts(hosts []*Host, cl *worldClone) []*Host {
	if hosts == nil {
		return nil
	}
	out := make([]*Host, len(hosts))
	for i, h := range hosts {
		out[i] = cl.hosts[h]
	}
	return out
}

// remapEvent rebinds one pending scheduler event to its cloned owner. The
// handler identifies the owner; the event address distinguishes which of the
// owner's timers is pending.
func (cl *worldClone) remapEvent(old *simtime.Event, h simtime.Handler) (*simtime.Event, simtime.Handler) {
	switch o := h.(type) {
	case *Instance:
		ni := cl.insts[o]
		if ni == nil {
			return cl.fail("pending timer of an instance missing from the clone")
		}
		if old == &o.termEvent {
			return &ni.termEvent, ni
		}
		if old == o.lifeEvent {
			ni.lifeEvent = ni.service.account.dc.allocLifeEvent()
			return ni.lifeEvent, ni
		}
		return cl.fail("pending instance event matches neither the idle reaper nor the lifecycle timer")
	case *Service:
		ns := cl.svcs[o]
		if ns == nil {
			return cl.fail("pending timer of a service missing from the clone")
		}
		if old == &o.decayEvent {
			return &ns.decayEvent, ns
		}
		if old == &o.tickEvent {
			return &ns.tickEvent, ns
		}
		return cl.fail("pending service event matches neither the decay nor the autoscale timer")
	case *trafficTenant:
		ndc := cl.dcs[o.state.dc]
		if ndc == nil || ndc.traffic == nil || o.rank >= len(ndc.traffic.tenants) {
			return cl.fail("pending re-draw timer of a traffic tenant missing from the clone")
		}
		nt := &ndc.traffic.tenants[o.rank]
		return &nt.ev, nt
	case *lifeCohort:
		ndc := cl.dcs[o.dc]
		if ndc == nil {
			return cl.fail("pending nursery cohort of a region missing from the clone")
		}
		nc := &lifeCohort{dc: ndc, insts: make([]*Instance, 0, len(o.insts))}
		for _, oi := range o.insts {
			// A cohort may still reference members that terminated young;
			// the boundary handler skips them, so the clone drops them.
			if oi.state == StateTerminated {
				continue
			}
			ni := cl.insts[oi]
			if ni == nil {
				return cl.fail("nursery cohort member missing from the clone")
			}
			nc.insts = append(nc.insts, ni)
		}
		// Only the region's current nursery keeps collecting newcomers;
		// older cohorts are reachable solely through their pending event.
		if o == o.dc.nursery {
			ndc.nursery = nc
		}
		return &nc.ev, nc
	default:
		cl.err = fmt.Errorf("faas: snapshot: pending event with unknown handler type %T (experiment-owned timers cannot be snapshotted)", h)
		return nil, nil
	}
}

func (cl *worldClone) fail(msg string) (*simtime.Event, simtime.Handler) {
	if cl.err == nil {
		cl.err = fmt.Errorf("faas: snapshot: %s", msg)
	}
	return nil, nil
}
