package faas

import (
	"errors"
	"testing"
	"time"
)

// launchOn builds a world with the given policy and runs one hot launch
// series, returning the per-launch host sets.
func launchOn(t *testing.T, seed uint64, set func(*RegionProfile), launches, n int) []map[HostID]int {
	t.Helper()
	p := testProfile()
	if set != nil {
		set(&p)
	}
	pl, err := NewPlatform(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	dc := pl.MustRegion(p.Name)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	out := make([]map[HostID]int, launches)
	for l := 0; l < launches; l++ {
		insts, err := svc.Launch(n)
		if err != nil {
			t.Fatal(err)
		}
		out[l] = hostSet(insts)
		svc.Disconnect()
		dc.Scheduler().Advance(10 * time.Minute)
	}
	return out
}

func sameHostSets(a, b []map[HostID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for id, n := range a[i] {
			if b[i][id] != n {
				return false
			}
		}
	}
	return true
}

// The nil-policy default must be exactly CloudRunPolicy: the extraction is a
// refactor, not a behavior change.
func TestNilPolicyIsCloudRun(t *testing.T) {
	base := launchOn(t, 7, nil, 4, 120)
	explicit := launchOn(t, 7, func(p *RegionProfile) { p.Policy = CloudRunPolicy{} }, 4, 120)
	if !sameHostSets(base, explicit) {
		t.Error("explicit CloudRunPolicy placed differently from the nil default")
	}
}

// normalize is the single place the deprecated RandomPlacement bool is read:
// it folds the flag into Policy, after which Policy is authoritative.
func TestNormalizeFoldsRandomPlacement(t *testing.T) {
	p := testProfile()
	p.RandomPlacement = true
	p.normalize()
	if _, ok := p.Policy.(RandomUniformPolicy); !ok {
		t.Errorf("normalize left Policy = %T, want RandomUniformPolicy", p.Policy)
	}

	// An explicit Policy wins; the bool is ignored.
	p = testProfile()
	p.RandomPlacement = true
	p.Policy = CloudRunPolicy{}
	p.normalize()
	if _, ok := p.Policy.(CloudRunPolicy); !ok {
		t.Errorf("normalize overrode an explicit Policy with %T", p.Policy)
	}

	// Without the bool, nil stays nil (the CloudRun default resolves later).
	p = testProfile()
	p.normalize()
	if p.Policy != nil {
		t.Errorf("normalize invented a policy: %T", p.Policy)
	}
}

// The deprecated RandomPlacement bool must keep working, mapped to
// RandomUniformPolicy, draw for draw.
func TestRandomPlacementBoolMapsToRandomUniform(t *testing.T) {
	legacy := launchOn(t, 7, func(p *RegionProfile) { p.RandomPlacement = true }, 4, 120)
	policy := launchOn(t, 7, func(p *RegionProfile) { p.Policy = RandomUniformPolicy{} }, 4, 120)
	if !sameHostSets(legacy, policy) {
		t.Error("RandomUniformPolicy placed differently from the RandomPlacement bool")
	}
	// And an explicit Policy wins over the bool.
	both := launchOn(t, 7, func(p *RegionProfile) {
		p.RandomPlacement = true
		p.Policy = CloudRunPolicy{}
	}, 4, 120)
	cloud := launchOn(t, 7, nil, 4, 120)
	if !sameHostSets(both, cloud) {
		t.Error("explicit Policy did not win over the RandomPlacement bool")
	}
}

// LeastLoadedPolicy must balance: after placement, resident counts across
// used hosts differ by at most the packing cap, and a fresh tenant's batch
// goes to the emptiest hosts.
func TestLeastLoadedBalances(t *testing.T) {
	p := testProfile()
	p.Policy = LeastLoadedPolicy{}
	pl := MustPlatform(13, p)
	dc := pl.MustRegion(p.Name)
	if _, err := dc.Account("a1").DeployService("s1", ServiceConfig{}).Launch(240); err != nil {
		t.Fatal(err)
	}
	// 240 instances at cap 11 → 22 hosts ≈ 11 each; the rest of the fleet
	// is empty, so a second tenant must land entirely on empty hosts.
	insts, err := dc.Account("a2").DeployService("s2", ServiceConfig{}).Launch(110)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		h := inst.host
		for _, other := range h.instances {
			if other.service.account.id != "a2" {
				t.Fatalf("second tenant shares host %d with %s despite empty hosts remaining",
					h.id, other.service.account.id)
			}
		}
	}
	// Load stays near-uniform across used hosts.
	min, max := 1<<30, 0
	used := 0
	for _, h := range dc.hosts {
		n := len(h.instances)
		if n == 0 {
			continue
		}
		used++
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > p.BasePerHostCap {
		t.Errorf("least-loaded imbalance: min %d max %d across %d used hosts", min, max, used)
	}
}

// placeNew edge case: a base pool too small for the batch is clamped — every
// instance still lands, packed beyond the nominal per-host cap.
func TestPlaceNewOverflowsTinyBasePool(t *testing.T) {
	p := testProfile()
	p.PlacementGroups = 12 // group size 10 → base pool clamps to 10 hosts
	p.BasePoolSize = 10
	pl := MustPlatform(3, p)
	dc := pl.MustRegion(p.Name)
	insts, err := dc.Account("a1").DeployService("s", ServiceConfig{}).Launch(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 500 {
		t.Fatalf("placed %d of 500 with a clamped pool", len(insts))
	}
	hs := hostSet(insts)
	if len(hs) != p.BasePoolSize {
		t.Errorf("cold launch used %d hosts, want the full clamped pool of %d", len(hs), p.BasePoolSize)
	}
	for id, n := range hs {
		if n <= p.BasePerHostCap {
			t.Errorf("host %d holds %d ≤ cap %d; expected overflow packing", id, n, p.BasePerHostCap)
		}
	}
}

// placeNew edge case: quota is enforced before any instance materializes, so
// an oversized launch is all-or-nothing, and maturing the account unblocks
// the same request.
func TestQuotaExhaustionLeavesNoPartialBatch(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 50
	pl := MustPlatform(5, p)
	dc := pl.MustRegion(p.Name)
	acct := dc.Account("fresh")
	svc := acct.DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(51); err == nil {
		t.Fatal("launch beyond the new-account quota succeeded")
	}
	if got := len(svc.Instances()); got != 0 {
		t.Fatalf("failed launch left %d instances behind", got)
	}
	if acct.Bill().Instances != 0 {
		t.Error("failed launch was billed")
	}
	acct.Mature()
	insts, err := svc.Launch(51)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 51 {
		t.Fatalf("matured launch placed %d of 51", len(insts))
	}
}

// Like quota exhaustion, an injected launch fault — whether an up-front
// rejection or a mid-batch abort after some instances were already placed —
// must be all-or-nothing: no instances left behind, no idle warm capacity
// created, and not a cent billed. The high failure rate makes both fault
// flavors fire within the loop.
func TestLaunchFaultLeavesNoPartialState(t *testing.T) {
	p := testProfile()
	p.Faults = FaultPlan{LaunchFailureRate: 0.5}
	pl := MustPlatform(7, p)
	dc := pl.MustRegion(p.Name)
	acct := dc.Account("a1")
	acct.Mature()
	svc := acct.DeployService("s", ServiceConfig{})
	failures := 0
	for round := 0; round < 40; round++ {
		before := acct.Bill()
		beforeInsts := len(svc.Instances())
		beforeIdle := svc.IdleCount()
		insts, err := svc.Launch(30)
		if err != nil {
			if !errors.Is(err, ErrLaunchFault) {
				t.Fatalf("round %d: unexpected launch error: %v", round, err)
			}
			failures++
			after := acct.Bill()
			if after != before {
				t.Fatalf("round %d: failed launch changed the bill:\n  before %+v\n  after  %+v", round, before, after)
			}
			if got := len(svc.Instances()); got != beforeInsts {
				t.Fatalf("round %d: failed launch left %d instances behind", round, got-beforeInsts)
			}
			if got := svc.IdleCount(); got != beforeIdle {
				t.Fatalf("round %d: failed launch changed idle capacity: %d -> %d", round, beforeIdle, got)
			}
		} else {
			if len(insts) != 30 {
				t.Fatalf("round %d: successful launch placed %d of 30", round, len(insts))
			}
			svc.Disconnect()
		}
		dc.Scheduler().Advance(5 * time.Minute)
	}
	fc := dc.FaultCounters()
	if failures == 0 || fc.LaunchRejections == 0 || fc.LaunchAborts == 0 {
		t.Fatalf("rate-0.5 run exercised too little: %d failures, counters %+v", failures, fc)
	}
	if fc.InstancesRolledBack == 0 {
		t.Error("mid-batch aborts fired but rolled no instances back")
	}
}

// placeNew edge case: when the demand streak asks for more helper slots than
// the unlocked window holds, the surplus spills to base hosts instead of
// overpacking helpers.
func TestHelperWindowExhaustionSpillsToBase(t *testing.T) {
	p := testProfile()
	p.ServiceHelperSize = 6 // tiny helper set: 6 account + 5 fresh
	p.ServiceHelperFresh = 5
	pl := MustPlatform(11, p)
	dc := pl.MustRegion(p.Name)
	acct := dc.Account("a1")
	svc := acct.DeployService("s", ServiceConfig{})

	// Build a saturated streak with small launches, then demand far more
	// than the helper window can hold.
	for i := 0; i < 4; i++ {
		if _, err := svc.Launch(30); err != nil {
			t.Fatal(err)
		}
		svc.Disconnect()
		dc.Scheduler().Advance(5 * time.Minute)
	}
	// Warm-reused instances from the streak launches are not new
	// placements; track which instances already existed.
	existing := make(map[*Instance]bool)
	for _, inst := range svc.Instances() {
		existing[inst] = true
	}
	insts, err := svc.Launch(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 300 {
		t.Fatalf("placed %d of 300", len(insts))
	}
	// The account-pool helper draw can coincide with base-pool hosts (only
	// the fresh draw excludes them), so judge the helper path on
	// helper-exclusive hosts: base placement never touches those.
	helpers := svc.policyState.(*cloudRunState).helpers
	helperOnly := make(map[*Host]bool, len(helpers))
	for _, h := range helpers {
		helperOnly[h] = true
	}
	for _, h := range acct.basePool {
		delete(helperOnly, h)
	}
	onHelpers, spill := 0, 0
	for _, inst := range insts {
		if existing[inst] {
			continue
		}
		if helperOnly[inst.host] {
			onHelpers++
		} else {
			spill++
		}
	}
	// The unlocked window holds at most len(helpers)*HelperPerHostCap new
	// instances per batch; the rest must spill to base.
	if limit := len(helpers) * p.HelperPerHostCap; onHelpers > limit {
		t.Errorf("helper-only hosts hold %d new instances, beyond the window capacity %d", onHelpers, limit)
	}
	if spill == 0 {
		t.Error("no spill to base hosts despite an exhausted helper window")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, want := range []string{"cloudrun", "random-uniform", "least-loaded"} {
		pol, err := PolicyByName(want)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Name() != want {
			t.Errorf("PolicyByName(%q).Name() = %q", want, pol.Name())
		}
	}
	if pol, err := PolicyByName("random"); err != nil || pol.Name() != "random-uniform" {
		t.Errorf("alias random → %v, %v", pol, err)
	}
	if pol, err := PolicyByName("leastloaded"); err != nil || pol.Name() != "least-loaded" {
		t.Errorf("alias leastloaded → %v, %v", pol, err)
	}
	if _, err := PolicyByName("spread-random"); err == nil {
		t.Error("unknown policy name resolved")
	}
}

// The trace ring records placement decisions in order, stays bounded, and
// carries no host identities.
func TestTraceRing(t *testing.T) {
	p := testProfile()
	pl := MustPlatform(17, p)
	dc := pl.MustRegion(p.Name)
	ring := NewTraceRing(8)
	dc.SetPlacementTracer(ring)

	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	for i := 0; i < 6; i++ {
		if _, err := svc.Launch(40); err != nil {
			t.Fatal(err)
		}
		svc.Disconnect()
		dc.Scheduler().Advance(45 * time.Minute) // cold gap → decay events too
	}
	// The reaper's idle-term events flooded the ring; a final launch ends
	// the stream with a decay and a place event.
	if _, err := svc.Launch(40); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 8 {
		t.Fatalf("ring holds %d events, want capacity 8", ring.Len())
	}
	if ring.Dropped() == 0 {
		t.Error("ring dropped nothing despite overflow")
	}
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	sawPlace := false
	for _, ev := range evs {
		if ev.Policy != "cloudrun" || ev.Region != p.Name {
			t.Fatalf("event misattributed: %+v", ev)
		}
		if ev.Kind == TracePlace {
			sawPlace = true
			if ev.Count <= 0 || ev.Hosts <= 0 {
				t.Errorf("place event without counts: %+v", ev)
			}
		}
	}
	if !sawPlace {
		t.Error("no place events retained")
	}

	// Removing the tracer stops recording.
	dc.SetPlacementTracer(nil)
	before := ring.Dropped()
	if _, err := svc.Launch(40); err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() != before {
		t.Error("ring still recording after tracer removal")
	}
}

// Installing a tracer must not change placement: tracing is observation
// only.
func TestTracerDoesNotPerturbPlacement(t *testing.T) {
	quiet := launchOn(t, 23, nil, 3, 120)
	traced := func() []map[HostID]int {
		p := testProfile()
		pl := MustPlatform(23, p)
		dc := pl.MustRegion(p.Name)
		dc.SetPlacementTracer(NewTraceRing(64))
		svc := dc.Account("a1").DeployService("s", ServiceConfig{})
		out := make([]map[HostID]int, 3)
		for l := 0; l < 3; l++ {
			insts, err := svc.Launch(120)
			if err != nil {
				t.Fatal(err)
			}
			out[l] = hostSet(insts)
			svc.Disconnect()
			dc.Scheduler().Advance(10 * time.Minute)
		}
		return out
	}()
	if !sameHostSets(quiet, traced) {
		t.Error("installing a tracer changed placement")
	}
}

// A region configured through the deprecated RandomPlacement bool emits one
// TraceDeprecated event to the first tracer installed — once per region, not
// once per tracer, and never for regions configured through Policy.
func TestDeprecatedRandomPlacementWarnsOnce(t *testing.T) {
	countDeprecated := func(ring *TraceRing) int {
		n := 0
		for _, ev := range ring.Events() {
			if ev.Kind == TraceDeprecated {
				n++
			}
		}
		return n
	}

	p := testProfile()
	p.RandomPlacement = true
	dc := MustPlatform(1, p).MustRegion(p.Name)
	ring := NewTraceRing(8)
	dc.SetPlacementTracer(ring)
	if got := countDeprecated(ring); got != 1 {
		t.Fatalf("first tracer saw %d deprecation events, want 1", got)
	}

	// Swapping tracers must not repeat the warning.
	ring2 := NewTraceRing(8)
	dc.SetPlacementTracer(ring2)
	if got := countDeprecated(ring2); got != 0 {
		t.Errorf("second tracer saw %d deprecation events, want 0", got)
	}
	dc.SetPlacementTracer(nil)

	// A region using the replacement Policy field stays silent.
	clean := testProfile()
	clean.Policy = RandomUniformPolicy{}
	dc2 := MustPlatform(1, clean).MustRegion(clean.Name)
	ring3 := NewTraceRing(8)
	dc2.SetPlacementTracer(ring3)
	if got := countDeprecated(ring3); got != 0 {
		t.Errorf("Policy-configured region warned %d times", got)
	}
}
