package faas

import (
	"fmt"
	"testing"
	"time"

	"eaao/internal/simtime"
)

// snapProfile is testProfile with every stochastic subsystem switched on —
// churn, fault plane, covert-channel misfires — so a snapshot has to carry
// every RNG stream's position and every kind of pending timer.
func snapProfile() RegionProfile {
	p := testProfile()
	p.InstanceChurnPerHour = 0.08
	p.Faults.PreemptionRatePerHour = 0.04
	p.Faults.LaunchFailureRate = 0.05
	p.Faults.ProbeFailureRate = 0.02
	p.Faults.ChannelFalsePositiveRate = 0.01
	return p
}

// snapPrologue drives a fresh world into a deliberately messy mid-campaign
// state: armed idle reapers, pending nursery cohorts and lifecycle timers, a
// running autoscaler, instance-list tombstones from hours of churn, and
// nonzero fault counters.
func snapPrologue(t *testing.T, p *Platform) {
	t.Helper()
	dc := p.MustRegion("test-region")
	a1 := dc.Account("a1")
	a1.Mature()
	s1 := a1.DeployService("s1", ServiceConfig{})
	s2 := a1.DeployService("s2", ServiceConfig{MaxConcurrency: 1})
	a2 := dc.Account("a2")
	s3 := a2.DeployService("s3", ServiceConfig{})

	mustLaunch := func(s *Service, n int) {
		t.Helper()
		if _, err := s.Launch(n); err != nil && n <= s.account.Quota() {
			// Fault-plane rejections are part of the scripted world; retry
			// once at a later instant so the prologue still populates state.
			p.Scheduler().Advance(time.Minute)
			if _, err := s.Launch(n); err != nil {
				t.Fatalf("launch: %v", err)
			}
		}
	}
	mustLaunch(s1, 40)
	p.Scheduler().Advance(30 * time.Minute)
	mustLaunch(s3, 12)
	// Hours of churn + preemption: terminations tombstone s1.insts and fire
	// lifecycle timers, leaving the event pool warm and counters nonzero.
	p.Scheduler().Advance(5 * time.Hour)
	mustLaunch(s1, 40) // top back up; mix of warm reuse and fresh placement
	if err := s2.SetDemand(6); err != nil {
		t.Fatal(err)
	}
	p.Scheduler().Advance(2 * time.Minute)
	s3.Disconnect() // idle reapers armed across the termination span
	// Fresh launch minutes before the snapshot: its nursery cohort is still
	// pending, so the fork must re-arm immunity-boundary state.
	p.Scheduler().Advance(10 * time.Minute)
	mustLaunch(s1, 44)
}

// driveWorld runs a fixed post-snapshot script against a platform and
// returns every observable it produces: instance identities and ground-truth
// hosts, guest reads, contention rounds, probe faults, billing, fault
// counters, and scheduler statistics. Two worlds are byte-identical iff
// these logs match.
func driveWorld(t *testing.T, p *Platform) []string {
	t.Helper()
	var log []string
	rec := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	dc := p.MustRegion("test-region")
	a1 := dc.Account("a1")
	s1 := a1.DeployService("s1", ServiceConfig{})
	s2 := a1.DeployService("s2", ServiceConfig{MaxConcurrency: 1})
	s3 := dc.Account("a2").DeployService("s3", ServiceConfig{})

	snapshotState := func(tag string) {
		rec("%s now=%v executed=%d pending=%d mat=%d", tag, p.Now(), p.Scheduler().Executed(), p.Scheduler().Pending(), dc.MaterializedHosts())
		for _, s := range []*Service{s1, s2, s3} {
			rec("%s svc=%s active=%d idle=%d hot=%d cold=%.4f", tag, s.Name(), s.ActiveCount(), s.IdleCount(), s.hotStreak, s.ColdHostFraction())
			for _, inst := range s.Instances() {
				hid, _ := inst.HostID()
				rec("%s inst=%s host=%d state=%v ready=%v", tag, inst.ID(), hid, inst.State(), inst.ReadyAt())
			}
		}
		rec("%s bill=%+v faults=%+v", tag, a1.Bill(), dc.faultCounters)
	}

	snapshotState("t0")
	if insts, err := s1.Launch(52); err != nil {
		rec("launch err=%v", err)
	} else {
		for _, inst := range insts[:8] {
			g := inst.MustGuest()
			rec("guest inst=%s tsc=%d wall=%v model=%q", inst.ID(), g.ReadTSC(), g.ReadWall(), g.CPUModelName())
		}
	}
	p.Scheduler().Advance(90 * time.Minute) // cross the immunity boundary
	if out, err := ContentionRoundOn(ResourceRNG, s1.Instances()); err != nil {
		rec("round err=%v", err)
	} else {
		rec("round %v", out)
	}
	for _, inst := range s1.Instances() {
		if inst.State() != StateTerminated {
			if units, err := ProbeContention(inst); err != nil {
				rec("probe inst=%s err", inst.ID())
			} else {
				rec("probe inst=%s units=%d", inst.ID(), units)
			}
			break
		}
	}
	if err := s2.SetDemand(0); err != nil {
		t.Fatal(err)
	}
	s1.Disconnect()
	p.Scheduler().Advance(4 * time.Hour) // reapers + churn + autoscale wind-down
	if _, err := s3.Launch(18); err != nil {
		rec("launch3 err=%v", err)
	}
	p.Scheduler().Advance(2 * time.Hour)
	snapshotState("t1")
	return log
}

func diffLogs(t *testing.T, name string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: log length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: line %d diverges:\n  want %s\n  got  %s", name, i, want[i], got[i])
		}
	}
}

// TestSnapshotRestoreByteIdentical pins the tentpole contract: a fork is a
// byte-identical continuation of the snapshotted world. The original
// platform (which must be unperturbed by having been snapshotted), two
// independent forks, and a from-scratch rebuild of the same world all
// produce identical observable traces for the same future script.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	build := func() *Platform {
		p := MustPlatform(11, snapProfile())
		snapPrologue(t, p)
		return p
	}
	orig := build()
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork1 := snap.MustRestore()
	fork2 := snap.MustRestore()

	logOrig := driveWorld(t, orig)
	logFork1 := driveWorld(t, fork1)
	diffLogs(t, "fork1 vs original", logOrig, logFork1)
	logFork2 := driveWorld(t, fork2)
	diffLogs(t, "fork2 vs original", logOrig, logFork2)

	// fork ≡ rebuild: a world rebuilt from the root seed and driven through
	// the identical history reaches exactly the forks' trajectory.
	logFresh := driveWorld(t, build())
	diffLogs(t, "rebuild vs fork", logFork1, logFresh)
}

// TestSnapshotRestoreThenDiverge pins fork independence: forks of one
// snapshot driven through different futures diverge freely, and each future
// is itself reproducible from another restore.
func TestSnapshotRestoreThenDiverge(t *testing.T) {
	p := MustPlatform(23, snapProfile())
	snapPrologue(t, p)
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	scriptA := func(w *Platform) []string { return driveWorld(t, w) }
	scriptB := func(w *Platform) []string {
		dc := w.MustRegion("test-region")
		s1 := dc.Account("a1").DeployService("s1", ServiceConfig{})
		w.Scheduler().Advance(7 * time.Hour)
		var log []string
		log = append(log, fmt.Sprintf("b now=%v executed=%d active=%d", w.Now(), w.Scheduler().Executed(), s1.ActiveCount()))
		return log
	}
	logA1 := scriptA(snap.MustRestore())
	logB1 := scriptB(snap.MustRestore())
	logA2 := scriptA(snap.MustRestore())
	logB2 := scriptB(snap.MustRestore())
	diffLogs(t, "script A reproducible", logA1, logA2)
	diffLogs(t, "script B reproducible", logB1, logB2)
	if len(logA1) == len(logB1) && logA1[0] == logB1[0] {
		t.Fatal("different scripts produced identical logs — forks are not independent")
	}
	// The frozen snapshot survives its forks' divergence.
	logA3 := scriptA(snap.MustRestore())
	diffLogs(t, "snapshot immutable under forking", logA1, logA3)
}

// TestSnapshotFleetShardMatchesSolo pins snapshot transparency across the
// fleet construction: forking a fleet shard's platform behaves identically
// to forking the same region built as its own solo platform.
func TestSnapshotFleetShardMatchesSolo(t *testing.T) {
	prof := snapProfile()
	fleet := MustFleet(31, prof, func() RegionProfile {
		p2 := snapProfile()
		p2.Name = "other-region"
		return p2
	}())
	shard := fleet.MustRegion("test-region").Platform()
	solo := MustPlatform(31, prof)
	snapPrologue(t, shard)
	snapPrologue(t, solo)

	shardSnap, err := shard.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	soloSnap, err := solo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	diffLogs(t, "fleet shard fork vs solo fork",
		driveWorld(t, soloSnap.MustRestore()), driveWorld(t, shardSnap.MustRestore()))
}

// TestSnapshotRejectsOutsideState pins every documented snapshot error:
// state living outside the world cannot be deep-copied, and Snapshot must
// say so instead of forking a silently-diverging world.
func TestSnapshotRejectsOutsideState(t *testing.T) {
	newWorld := func() (*Platform, *Service) {
		p := MustPlatform(7, testProfile())
		svc := p.MustRegion("test-region").Account("a").DeployService("s", ServiceConfig{})
		if _, err := svc.Launch(5); err != nil {
			t.Fatal(err)
		}
		return p, svc
	}

	t.Run("sigterm callback", func(t *testing.T) {
		p, svc := newWorld()
		svc.Instances()[0].OnSIGTERM(func(*Instance, simtime.Time) {})
		if _, err := p.Snapshot(); err == nil {
			t.Fatal("snapshot accepted an OnSIGTERM callback")
		}
	})
	t.Run("workload model", func(t *testing.T) {
		p, svc := newWorld()
		svc.Instances()[0].SetWorkload(func(simtime.Time) bool { return true })
		if _, err := p.Snapshot(); err == nil {
			t.Fatal("snapshot accepted a workload model")
		}
	})
	t.Run("placement tracer", func(t *testing.T) {
		p, _ := newWorld()
		p.MustRegion("test-region").SetPlacementTracer(NewTraceRing(8))
		if _, err := p.Snapshot(); err == nil {
			t.Fatal("snapshot accepted an installed tracer")
		}
	})
	t.Run("experiment closure event", func(t *testing.T) {
		p, _ := newWorld()
		p.Scheduler().After(time.Hour, func(simtime.Time) {})
		if _, err := p.Snapshot(); err == nil {
			t.Fatal("snapshot accepted a pending closure event")
		}
	})
	t.Run("legacy sweeps", func(t *testing.T) {
		prof := testProfile()
		prof.LegacySweeps = true
		prof.InstanceChurnPerHour = 0.05
		p := MustPlatform(7, prof)
		if _, err := p.Snapshot(); err == nil {
			t.Fatal("snapshot accepted a LegacySweeps world (pending sweep closure)")
		}
	})
}
