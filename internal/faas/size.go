package faas

import "fmt"

// InstanceSize is a container resource specification (Table 1 of the paper).
type InstanceSize struct {
	Name     string
	VCPU     float64
	MemoryGB float64
}

// The four container sizes used throughout the paper's evaluation (Table 1).
// Users may define other sizes; these are the study's reference points.
var (
	SizePico   = InstanceSize{Name: "Pico", VCPU: 0.25, MemoryGB: 0.25}
	SizeSmall  = InstanceSize{Name: "Small", VCPU: 1, MemoryGB: 0.5}
	SizeMedium = InstanceSize{Name: "Medium", VCPU: 2, MemoryGB: 1}
	SizeLarge  = InstanceSize{Name: "Large", VCPU: 4, MemoryGB: 4}
)

// SizeCatalog lists the Table 1 sizes in ascending order. SizeSmall is the
// Cloud Run default and the paper's default victim/attacker configuration.
var SizeCatalog = []InstanceSize{SizePico, SizeSmall, SizeMedium, SizeLarge}

// SizeByName returns the Table 1 size with the given name.
func SizeByName(name string) (InstanceSize, error) {
	for _, s := range SizeCatalog {
		if s.Name == name {
			return s, nil
		}
	}
	return InstanceSize{}, fmt.Errorf("faas: unknown instance size %q", name)
}

// Validate checks that the size requests positive resources.
func (s InstanceSize) Validate() error {
	if s.VCPU <= 0 || s.MemoryGB <= 0 {
		return fmt.Errorf("faas: instance size %q must request positive CPU and memory", s.Name)
	}
	return nil
}

// String renders the size as "Small (1 vCPU, 0.5 GB)".
func (s InstanceSize) String() string {
	return fmt.Sprintf("%s (%g vCPU, %g GB)", s.Name, s.VCPU, s.MemoryGB)
}
