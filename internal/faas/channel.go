package faas

import (
	"fmt"
	"time"
)

// This file is the platform's channel-model registry: one ChannelModel per
// shared-resource family usable as a covert channel. The registry replaces
// the historical per-Resource switch in the contention-round primitive, and
// is where a channel's physics live — how long a round takes, how much
// bandwidth the resource carries, and how its error rates respond to
// unrelated tenants on the host. The covert package layers CTest
// configurations and pluggable Channel primitives on top.

// NumResources is the number of registered shared-resource families.
// Per-channel state (host misfire windows, FaultPlan.PerChannel) is indexed
// by Resource in fixed-size arrays of this length, so plans and hosts stay
// comparable and snapshot-trivial.
const NumResources = 3

// ChannelModel describes the physics of one covert-channel resource family:
// the per-test virtual cost, the nominal bandwidth, and the background-noise
// character — including how the channel degrades under bystander load.
type ChannelModel struct {
	// Resource is the registry index of the family.
	Resource Resource
	// Name is the family's CLI/ledger name ("rng", "membus", "llc").
	Name string
	// TestTime is the virtual wall-clock one standard 60-round CTest costs
	// on this channel (covert configs use it as TestDuration).
	TestTime time.Duration
	// BitsPerSecond is the channel's nominal covert bandwidth, for the cost
	// comparisons of §4.3 and the related-work channels.
	BitsPerSecond float64
	// BaseNoise is the per-host, per-round probability of background
	// contention from unrelated tenants on a quiet host.
	BaseNoise float64
	// LoadNoise raises the per-round false-positive probability by this much
	// for every bystander instance resident on the host but not
	// participating in the round; LoadNoiseCap bounds the total. Zero means
	// the channel is load-insensitive (the RNG: nobody else touches it).
	LoadNoise    float64
	LoadNoiseCap float64
	// LoadDrop is the per-bystander probability that the whole round reads
	// dead on the host — a false negative, the cache-eviction failure mode
	// of contention channels on a busy LLC; LoadDropCap bounds it.
	LoadDrop    float64
	LoadDropCap float64
	// ServingDrop adds to the round-drop probability for every resident that
	// is actively serving request demand (an autoscaled instance with
	// demand > 0, i.e. a background tenant's workload). A warm sandbox that
	// merely holds a connection occupies cache lines once; one streaming
	// requests re-walks its working set continuously and evicts the probe's
	// lines every round, so serving bystanders degrade the channel far
	// harder than resident-but-idle ones. Zero in every world without
	// demand-driven neighbors, which keeps quiet-world draw outcomes
	// byte-identical. ServingDropCap bounds the serving term on its own;
	// the residency term's LoadDropCap still applies separately.
	ServingDrop    float64
	ServingDropCap float64
}

// channelModels is the registry, indexed by Resource.
//
// The RNG and memory-bus rows reproduce the historical hardcoded behavior
// exactly (0.8% and 18% background, no load sensitivity), so worlds that only
// ever drive those channels draw byte-identically to builds before the
// registry existed. The LLC row models the Zhao & Fletcher channel: an order
// of magnitude more bandwidth than the RNG and 5× shorter tests, but the
// cache is shared with every co-resident workload, so both error rates grow
// with host occupancy.
var channelModels = [NumResources]ChannelModel{
	ResourceRNG: {
		Resource:      ResourceRNG,
		Name:          "rng",
		TestTime:      100 * time.Millisecond,
		BitsPerSecond: 600,
		BaseNoise:     0.008,
	},
	ResourceMemBus: {
		Resource:      ResourceMemBus,
		Name:          "membus",
		TestTime:      3 * time.Second,
		BitsPerSecond: 20,
		BaseNoise:     0.18,
	},
	ResourceLLC: {
		Resource:      ResourceLLC,
		Name:          "llc",
		TestTime:      20 * time.Millisecond,
		BitsPerSecond: 4000,
		BaseNoise:     0.04,
		LoadNoise:     0.03,
		LoadNoiseCap:  0.45,
		LoadDrop:      0.015,
		LoadDropCap:   0.30,
		// Serving bystanders are ~3× the pressure of resident ones: a host
		// mostly full of request-serving tenants pushes the stock 36-of-60
		// verdict underwater, which is the measured degrade-under-load
		// behavior of cache channels on shared hosts.
		ServingDrop:    0.005,
		ServingDropCap: 0.30,
	},
}

// Valid reports whether the resource is a registered family.
func (r Resource) Valid() bool { return r >= 0 && int(r) < NumResources }

// ChannelModelOf returns the registered model of a resource family.
func ChannelModelOf(res Resource) (ChannelModel, error) {
	if !res.Valid() {
		return ChannelModel{}, fmt.Errorf("faas: unknown channel resource %d", int(res))
	}
	return channelModels[res], nil
}

// Channels lists every registered channel model in Resource order.
func Channels() []ChannelModel { return append([]ChannelModel(nil), channelModels[:]...) }

// ChannelByName resolves a channel model from its name.
func ChannelByName(name string) (ChannelModel, error) {
	for _, m := range channelModels {
		if m.Name == name {
			return m, nil
		}
	}
	return ChannelModel{}, fmt.Errorf("faas: unknown channel %q (rng, membus, llc)", name)
}

// roundNoise is the false-positive probability of one contention round on
// host h: base background plus load sensitivity from bystander tenants
// (residents not participating in the round). Pointer receiver: the round
// loop calls this once per host per round, so the model must not be copied.
func (m *ChannelModel) roundNoise(h *Host) float64 {
	p := m.BaseNoise
	if m.LoadNoise > 0 {
		if by := h.ResidentCount() - h.roundCount; by > 0 {
			p += m.LoadNoise * float64(by)
		}
		if m.LoadNoiseCap > 0 && p > m.LoadNoiseCap {
			p = m.LoadNoiseCap
		}
	}
	return p
}

// roundDrop is the probability that this round reads dead on host h (a
// load-induced false negative): a residency term from bystander instances
// plus a steeper term from bystanders actively serving request demand, each
// capped on its own. Zero on load-insensitive channels — callers gate on
// LoadDrop > 0 before drawing, which is what keeps the quiet channels' draw
// sequences frozen; and the serving term is zero wherever no neighbor runs
// demand-driven load, so quiet-world outcomes are frozen too.
func (m *ChannelModel) roundDrop(h *Host) float64 {
	if m.LoadDrop <= 0 {
		return 0
	}
	p := 0.0
	if by := h.ResidentCount() - h.roundCount; by > 0 {
		p = m.LoadDrop * float64(by)
		if m.LoadDropCap > 0 && p > m.LoadDropCap {
			p = m.LoadDropCap
		}
	}
	if m.ServingDrop > 0 {
		if sv := h.servingResidents(); sv > 0 {
			q := m.ServingDrop * float64(sv)
			if m.ServingDropCap > 0 && q > m.ServingDropCap {
				q = m.ServingDropCap
			}
			p += q
		}
	}
	return p
}
