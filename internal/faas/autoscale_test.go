package faas

import (
	"testing"
	"time"
)

func TestAutoscaleScaleOut(t *testing.T) {
	dc := newTestDC(t, 50)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 80})
	if err := svc.SetDemand(400); err != nil {
		t.Fatal(err)
	}
	// ceil(400/80) = 5 instances, created on the first (immediate) tick.
	if got := len(svc.ActiveInstances()); got != 5 {
		t.Fatalf("active = %d, want 5", got)
	}
	// Demand rises: next tick scales out.
	if err := svc.SetDemand(2000); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 25 {
		t.Errorf("after surge: active = %d, want 25", got)
	}
}

func TestAutoscaleScaleInGradually(t *testing.T) {
	dc := newTestDC(t, 51)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 10})
	if err := svc.SetDemand(500); err != nil { // 50 instances
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 50 {
		t.Fatalf("active = %d", got)
	}
	if err := svc.SetDemand(100); err != nil { // target 10
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 10 {
		t.Errorf("after scale-in: active = %d, want 10", got)
	}
	// The surplus idles out through the normal grace+span reaping.
	if idle := svc.IdleCount(); idle == 0 {
		t.Error("no idle instances right after scale-in")
	}
	dc.Scheduler().Advance(15 * time.Minute)
	if got := len(svc.Instances()); got != 10 {
		t.Errorf("after reaping: %d instances, want 10", got)
	}
}

func TestAutoscaleToZero(t *testing.T) {
	dc := newTestDC(t, 52)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(100); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(time.Minute)
	if err := svc.SetDemand(0); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Minute)
	if got := len(svc.Instances()); got != 0 {
		t.Errorf("%d instances survive zero demand", got)
	}
	// The autoscaler has stopped; re-setting demand restarts it.
	if err := svc.SetDemand(160); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.ActiveInstances()); got != 2 {
		t.Errorf("restart: active = %d, want 2", got)
	}
}

func TestAutoscaleDefaultConcurrency(t *testing.T) {
	dc := newTestDC(t, 53)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(DefaultMaxConcurrency + 1); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.ActiveInstances()); got != 2 {
		t.Errorf("active = %d, want 2 (default concurrency 80)", got)
	}
	if svc.Demand() != DefaultMaxConcurrency+1 {
		t.Errorf("Demand() = %d", svc.Demand())
	}
}

func TestAutoscaleRejectsNegative(t *testing.T) {
	dc := newTestDC(t, 54)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(-1); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestAutoscaleQuotaCapped(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 8
	pl := MustPlatform(55, p)
	dc := pl.MustRegion("test-region")
	svc := dc.Account("fresh").DeployService("api", ServiceConfig{MaxConcurrency: 1})
	if err := svc.SetDemand(100); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(time.Minute)
	if got := len(svc.ActiveInstances()); got != 8 {
		t.Errorf("active = %d, want the quota cap of 8", got)
	}
}

// Demand surges at short intervals trigger the same helper-host behavior as
// repeated Launches — the autoscaler is the production face of the attack
// surface.
func TestAutoscaleSurgesUseHelperHosts(t *testing.T) {
	dc := newTestDC(t, 56)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 1})
	footprint := make(map[HostID]bool)
	record := func() {
		for _, inst := range svc.ActiveInstances() {
			id, _ := inst.HostID()
			footprint[id] = true
		}
	}
	for cycle := 0; cycle < 4; cycle++ {
		if err := svc.SetDemand(300); err != nil {
			t.Fatal(err)
		}
		dc.Scheduler().Advance(time.Minute)
		record()
		if err := svc.SetDemand(20); err != nil {
			t.Fatal(err)
		}
		dc.Scheduler().Advance(10 * time.Minute)
	}
	base := dc.Profile().BasePoolSize
	if len(footprint) <= base {
		t.Errorf("surging demand stayed on %d hosts (base pool %d); helper behavior missing",
			len(footprint), base)
	}
}
