package faas

import (
	"strings"
	"testing"
	"time"
)

func TestAutoscaleScaleOut(t *testing.T) {
	dc := newTestDC(t, 50)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 80})
	if err := svc.SetDemand(400); err != nil {
		t.Fatal(err)
	}
	// ceil(400/80) = 5 instances, created on the first (immediate) tick.
	if got := len(svc.ActiveInstances()); got != 5 {
		t.Fatalf("active = %d, want 5", got)
	}
	// Demand rises: next tick scales out.
	if err := svc.SetDemand(2000); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 25 {
		t.Errorf("after surge: active = %d, want 25", got)
	}
}

func TestAutoscaleScaleInGradually(t *testing.T) {
	dc := newTestDC(t, 51)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 10})
	if err := svc.SetDemand(500); err != nil { // 50 instances
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 50 {
		t.Fatalf("active = %d", got)
	}
	if err := svc.SetDemand(100); err != nil { // target 10
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Second)
	if got := len(svc.ActiveInstances()); got != 10 {
		t.Errorf("after scale-in: active = %d, want 10", got)
	}
	// The surplus idles out through the normal grace+span reaping.
	if idle := svc.IdleCount(); idle == 0 {
		t.Error("no idle instances right after scale-in")
	}
	dc.Scheduler().Advance(15 * time.Minute)
	if got := len(svc.Instances()); got != 10 {
		t.Errorf("after reaping: %d instances, want 10", got)
	}
}

func TestAutoscaleToZero(t *testing.T) {
	dc := newTestDC(t, 52)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(100); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(time.Minute)
	if err := svc.SetDemand(0); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(20 * time.Minute)
	if got := len(svc.Instances()); got != 0 {
		t.Errorf("%d instances survive zero demand", got)
	}
	// The autoscaler has stopped; re-setting demand restarts it.
	if err := svc.SetDemand(160); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.ActiveInstances()); got != 2 {
		t.Errorf("restart: active = %d, want 2", got)
	}
}

func TestAutoscaleDefaultConcurrency(t *testing.T) {
	dc := newTestDC(t, 53)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(DefaultMaxConcurrency + 1); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.ActiveInstances()); got != 2 {
		t.Errorf("active = %d, want 2 (default concurrency 80)", got)
	}
	if svc.Demand() != DefaultMaxConcurrency+1 {
		t.Errorf("Demand() = %d", svc.Demand())
	}
}

func TestAutoscaleRejectsNegative(t *testing.T) {
	dc := newTestDC(t, 54)
	svc := dc.Account("a").DeployService("api", ServiceConfig{})
	if err := svc.SetDemand(-1); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestAutoscaleQuotaCapped(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 8
	pl := MustPlatform(55, p)
	dc := pl.MustRegion("test-region")
	svc := dc.Account("fresh").DeployService("api", ServiceConfig{MaxConcurrency: 1})
	if err := svc.SetDemand(100); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(time.Minute)
	if got := len(svc.ActiveInstances()); got != 8 {
		t.Errorf("active = %d, want the quota cap of 8", got)
	}
}

// Demand surges at short intervals trigger the same helper-host behavior as
// repeated Launches — the autoscaler is the production face of the attack
// surface.
func TestAutoscaleSurgesUseHelperHosts(t *testing.T) {
	dc := newTestDC(t, 56)
	svc := dc.Account("a").DeployService("api", ServiceConfig{MaxConcurrency: 1})
	footprint := make(map[HostID]bool)
	record := func() {
		for _, inst := range svc.ActiveInstances() {
			id, _ := inst.HostID()
			footprint[id] = true
		}
	}
	for cycle := 0; cycle < 4; cycle++ {
		if err := svc.SetDemand(300); err != nil {
			t.Fatal(err)
		}
		dc.Scheduler().Advance(time.Minute)
		record()
		if err := svc.SetDemand(20); err != nil {
			t.Fatal(err)
		}
		dc.Scheduler().Advance(10 * time.Minute)
	}
	base := dc.Profile().BasePoolSize
	if len(footprint) <= base {
		t.Errorf("surging demand stayed on %d hosts (base pool %d); helper behavior missing",
			len(footprint), base)
	}
}

// TestAutoscaleLaunchesShortfallOnly is the overshoot regression test: a
// demand step from 4 to 5 with 4 instances already connected must create
// exactly one new instance. Launch(target) is scale-to-target — active
// instances count toward the target as-is — so the autoscaler never launches
// the full target on top of the existing pool.
func TestAutoscaleLaunchesShortfallOnly(t *testing.T) {
	dc := newTestDC(t, 57)
	acct := dc.Account("a")
	svc := acct.DeployService("api", ServiceConfig{MaxConcurrency: 1})
	if err := svc.SetDemand(4); err != nil {
		t.Fatal(err)
	}
	if got := svc.ActiveCount(); got != 4 {
		t.Fatalf("active = %d, want 4", got)
	}
	created := acct.Bill().Instances
	if created != 4 {
		t.Fatalf("created = %d, want 4", created)
	}
	if err := svc.SetDemand(5); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(16 * time.Second) // one tick
	if got := svc.ActiveCount(); got != 5 {
		t.Fatalf("active = %d after demand step, want 5", got)
	}
	if delta := acct.Bill().Instances - created; delta != 1 {
		t.Fatalf("demand step 4→5 created %d instances, want exactly 1", delta)
	}
}

// TestAutoscaleQuotaFallbackCreatesNothingAtCap: once the quota fallback has
// scaled a fresh account's service to its cap, later ticks with demand still
// above quota must not create (or re-create) anything — the fallback's
// effective batch is min(quota, target) - active, which is zero at the cap.
func TestAutoscaleQuotaFallbackCreatesNothingAtCap(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 8
	pl := MustPlatform(58, p)
	dc := pl.MustRegion("test-region")
	acct := dc.Account("fresh")
	svc := acct.DeployService("api", ServiceConfig{MaxConcurrency: 1})
	if err := svc.SetDemand(100); err != nil {
		t.Fatal(err)
	}
	dc.Scheduler().Advance(time.Minute)
	if got := svc.ActiveCount(); got != 8 {
		t.Fatalf("active = %d, want the quota cap of 8", got)
	}
	created := acct.Bill().Instances
	launches := acct.Bill().Launches
	dc.Scheduler().Advance(5 * time.Minute) // 20 more ticks at the cap
	if delta := acct.Bill().Instances - created; delta != 0 {
		t.Errorf("ticks at the quota cap created %d instances", delta)
	}
	if delta := acct.Bill().Launches - launches; delta != 0 {
		t.Errorf("ticks at the quota cap issued %d pointless launches", delta)
	}
}

// TestLaunchTotalsNeverExceedQuota pins the quota semantics satellite:
// because Launch(n) is scale-to-n, bounding n bounds the live footprint —
// no sequence of launches, disconnects and partial reaps can push the
// service's live (active + idle) instance total past the per-service quota.
func TestLaunchTotalsNeverExceedQuota(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 8
	pl := MustPlatform(59, p)
	dc := pl.MustRegion("test-region")
	svc := dc.Account("fresh").DeployService("api", ServiceConfig{})

	if _, err := svc.Launch(9); err == nil {
		t.Fatal("Launch(9) above the quota of 8 succeeded")
	} else if want := "per-service quota of 8"; !strings.Contains(err.Error(), want) {
		t.Fatalf("quota error %q does not state the quota (%q)", err, want)
	}

	checkTotal := func(stage string) {
		t.Helper()
		if live := len(svc.Instances()); live > 8 {
			t.Fatalf("%s: %d live instances exceed the quota of 8", stage, live)
		}
	}
	for cycle := 0; cycle < 4; cycle++ {
		if _, err := svc.Launch(6); err != nil {
			t.Fatal(err)
		}
		checkTotal("launch 6")
		svc.Disconnect()
		checkTotal("disconnect")
		dc.Scheduler().Advance(4 * time.Minute) // partial reap: some idles linger
		if _, err := svc.Launch(8); err != nil {
			t.Fatal(err)
		}
		checkTotal("relaunch 8 over idles")
		dc.Scheduler().Advance(7 * time.Minute)
		checkTotal("settle")
	}
}
