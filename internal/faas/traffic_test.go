package faas

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"eaao/internal/simtime"
)

// loadedProfile is testProfile with background traffic on: a modest tenant
// population targeting half the region's base capacity.
func loadedProfile() RegionProfile {
	p := testProfile()
	p.Traffic = DefaultTrafficModel(60, 0.5)
	return p
}

// trafficDigest summarizes every traffic-visible observable of a region;
// two worlds in the same state produce equal digests.
func trafficDigest(dc *DataCenter) string {
	st := dc.TrafficStats()
	return fmt.Sprintf("live=%d util=%.9f tenants=%d redraws=%d rejects=%d exec=%d pending=%d mat=%d",
		st.LiveInstances, st.Utilization, st.Tenants, st.DemandRedraws, st.CongestionRejects,
		dc.platform.sched.Executed(), dc.platform.sched.Pending(), dc.MaterializedHosts())
}

func TestTrafficValidate(t *testing.T) {
	if err := (TrafficModel{}).Validate(); err != nil {
		t.Errorf("zero model invalid: %v", err)
	}
	if (TrafficModel{}).Enabled() {
		t.Error("zero model enabled")
	}
	if !DefaultTrafficModel(10, 0.5).Enabled() {
		t.Error("default model not enabled")
	}
	bad := DefaultTrafficModel(10, 0.5)
	bad.DiurnalAmplitude = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("DiurnalAmplitude 1.5 accepted")
	}
	p := loadedProfile()
	p.LegacySweeps = true
	if _, err := NewPlatform(1, p); err == nil {
		t.Error("traffic + LegacySweeps accepted")
	}
}

// TestTrafficReachesTargetUtilization pins the model's macroscopic behavior:
// after warm-up the region hovers near the configured utilization target,
// and demand keeps re-drawing (the cloud stays alive).
func TestTrafficReachesTargetUtilization(t *testing.T) {
	pl := MustPlatform(7, loadedProfile())
	dc := pl.MustRegion("test-region")
	if dc.Utilization() != 0 {
		t.Fatalf("world born with live instances: %v", dc.Utilization())
	}
	pl.Scheduler().Advance(2 * time.Hour)
	st := dc.TrafficStats()
	if st.Utilization < 0.3 || st.Utilization > 0.8 {
		t.Errorf("utilization %.2f far from 0.5 target", st.Utilization)
	}
	if st.DemandRedraws < 60 {
		t.Errorf("only %d demand re-draws in 2h across 60 tenants", st.DemandRedraws)
	}
	before := st.DemandRedraws
	pl.Scheduler().Advance(time.Hour)
	if after := dc.TrafficStats().DemandRedraws; after <= before {
		t.Error("demand re-draws stopped")
	}
}

// TestTrafficDeterministic pins seed-determinism of a loaded world: two
// builds from the same seed march through identical states.
func TestTrafficDeterministic(t *testing.T) {
	run := func() []string {
		pl := MustPlatform(11, loadedProfile())
		dc := pl.MustRegion("test-region")
		var log []string
		for i := 0; i < 4; i++ {
			pl.Scheduler().Advance(45 * time.Minute)
			log = append(log, trafficDigest(dc))
		}
		return log
	}
	diffLogs(t, "loaded determinism", run(), run())
}

// TestTrafficSnapshotForkIdentical is the satellite-2 contract: data-backed
// traffic state deep-copies, so a loaded world snapshots mid-flight and its
// forks continue byte-identically — including the load-sensitive LLC noise
// the bystanders feed.
func TestTrafficSnapshotForkIdentical(t *testing.T) {
	pl := MustPlatform(23, loadedProfile())
	dc := pl.MustRegion("test-region")
	pl.Scheduler().Advance(90 * time.Minute) // mid-flight: pending re-draw timers, live bystanders
	svc := dc.Account("attacker").DeployService("probe", ServiceConfig{})
	if _, err := svc.Launch(12); err != nil {
		t.Fatal(err)
	}

	snap, err := pl.Snapshot()
	if err != nil {
		t.Fatalf("loaded world refused to snapshot: %v", err)
	}
	drive := func(p *Platform) []string {
		d := p.MustRegion("test-region")
		s := d.Account("attacker").DeployService("probe", ServiceConfig{})
		var log []string
		for i := 0; i < 3; i++ {
			p.Scheduler().Advance(40 * time.Minute)
			out, err := ContentionRoundOn(ResourceLLC, s.Instances())
			log = append(log, fmt.Sprintf("%s round=%v err=%v", trafficDigest(d), out, err))
		}
		return log
	}
	want := drive(pl)
	diffLogs(t, "fork 1", want, drive(snap.MustRestore()))
	diffLogs(t, "fork 2", want, drive(snap.MustRestore()))
}

// TestTrafficSnapshotStillRefusesWorkloadClosures scopes the snapshot
// refusal: the data-backed traffic layer forks fine (above), but a legacy
// SetWorkload closure on any instance — loaded world or not — still refuses,
// because a function value captures state outside the world.
func TestTrafficSnapshotStillRefusesWorkloadClosures(t *testing.T) {
	pl := MustPlatform(29, loadedProfile())
	dc := pl.MustRegion("test-region")
	pl.Scheduler().Advance(time.Hour)
	svc := dc.Account("victim").DeployService("v", ServiceConfig{})
	insts, err := svc.Launch(2)
	if err != nil {
		t.Fatal(err)
	}
	insts[0].SetWorkload(func(simtime.Time) bool { return true })
	if _, err := pl.Snapshot(); err == nil {
		t.Fatal("snapshot accepted a SetWorkload closure on a loaded world")
	}
	insts[0].SetWorkload(nil)
	if _, err := pl.Snapshot(); err != nil {
		t.Fatalf("snapshot still refused after clearing the closure: %v", err)
	}
}

// TestTrafficCongestionShedsLaunches drives a deliberately oversubscribed
// region and checks the congestion plane sheds launches — and that shed
// launches surface as the transient ErrLaunchFault the retry machinery keys
// on.
func TestTrafficCongestionShedsLaunches(t *testing.T) {
	p := testProfile()
	p.Traffic = DefaultTrafficModel(60, 1.2)
	p.Traffic.CongestionKnee = 0.5
	p.Traffic.CongestionRejectRate = 0.6
	pl := MustPlatform(31, p)
	dc := pl.MustRegion("test-region")
	pl.Scheduler().Advance(3 * time.Hour)
	if got := dc.TrafficStats().CongestionRejects; got == 0 {
		t.Fatal("no launches shed at 120% target utilization")
	}
	// An attacker launch in the saturated region eventually sees the
	// transient fault.
	svc := dc.Account("attacker").DeployService("a", ServiceConfig{})
	sawFault := false
	for i := 0; i < 40 && !sawFault; i++ {
		if _, err := svc.Launch(10); err != nil {
			if !errors.Is(err, ErrLaunchFault) {
				t.Fatalf("unexpected launch error: %v", err)
			}
			sawFault = true
		}
		pl.Scheduler().Advance(time.Minute)
	}
	if !sawFault {
		t.Error("attacker never saw a congestion rejection in a saturated region")
	}
}

// TestTrafficQuietWorldHasNoEngine pins the zero-cost claim: a profile
// without a TrafficModel builds no engine, counts no tenants, and (per the
// golden-digest tests elsewhere) draws nothing.
func TestTrafficQuietWorldHasNoEngine(t *testing.T) {
	dc := newTestDC(t, 3)
	if dc.traffic != nil {
		t.Fatal("quiet world built a traffic engine")
	}
	st := dc.TrafficStats()
	if st.Tenants != 0 || st.DemandRedraws != 0 || st.CongestionRejects != 0 {
		t.Errorf("quiet world has traffic counters: %+v", st)
	}
}
