package faas

import (
	"testing"
	"time"

	"eaao/internal/simtime"
)

// kernelDC builds a test region with the given churn and preemption rates on
// the event kernel (the default lifecycle implementation).
func kernelDC(t *testing.T, seed uint64, churn, preempt float64, mutate ...func(*RegionProfile)) *DataCenter {
	t.Helper()
	p := testProfile()
	p.InstanceChurnPerHour = churn
	p.Faults.PreemptionRatePerHour = preempt
	for _, m := range mutate {
		m(&p)
	}
	pl, err := NewPlatform(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl.MustRegion("test-region")
}

// countSIGTERMs hooks every live instance of the service.
func countSIGTERMs(svc *Service, terms *int) {
	for _, inst := range svc.Instances() {
		inst.OnSIGTERM(func(*Instance, simtime.Time) { *terms++ })
	}
}

// TestKernelImmunityInterval pins the satellite-3 fix: a freshly created
// instance is not eligible for churn or preemption until one full
// lifecycleInterval has elapsed. Churn rate 1.0/hour makes the hazard
// deterministic (λ = ∞ ⇒ the exponential delay is exactly zero), so every
// instance is recycled exactly at creation + lifecycleInterval and its
// replacement survives until its own immunity expires — under the legacy
// sweep, a rate this high could kill a replacement in the sweep that bore it.
func TestKernelImmunityInterval(t *testing.T) {
	dc := kernelDC(t, 7, 1.0, 0)
	sched := dc.platform.sched
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	terms := 0
	countSIGTERMs(svc, &terms)

	sched.Advance(lifecycleInterval - time.Minute)
	if terms != 0 {
		t.Fatalf("%d instances churned before the immunity interval elapsed", terms)
	}
	sched.Advance(2 * time.Minute) // cross creation + lifecycleInterval
	if terms != 10 {
		t.Fatalf("churn at rate 1.0 recycled %d of 10 at the interval boundary", terms)
	}
	if got := svc.ActiveCount(); got != 10 {
		t.Fatalf("recycling must keep the connection count: active = %d", got)
	}
	// The replacements were born at +1h and must survive until +2h.
	sched.Advance(58 * time.Minute) // now at 1h59m
	if terms != 10 {
		t.Fatalf("replacement churned inside its own immunity interval (terms=%d)", terms)
	}
}

// TestKernelIdleCarriesNoHazard: the sweep only ever drew for connected
// instances; the kernel must match. A timer that fires while the instance is
// idle dies, and warm reactivation resumes the hazard memorylessly — at rate
// 1.0/hour the resumed delay is exactly zero, so the reuse is recycled on the
// next scheduler step while the idle period itself stays untouched.
func TestKernelIdleCarriesNoHazard(t *testing.T) {
	dc := kernelDC(t, 8, 1.0, 0, func(p *RegionProfile) {
		p.IdleGrace = 6 * time.Hour // keep idles alive across several intervals
	})
	sched := dc.platform.sched
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	terms := 0
	countSIGTERMs(svc, &terms)
	svc.Disconnect()

	sched.Advance(3 * time.Hour)
	if terms != 0 {
		t.Fatalf("%d idle instances were churned; idle instances carry no hazard", terms)
	}
	if got := svc.IdleCount(); got != 10 {
		t.Fatalf("idle = %d, want 10", got)
	}

	// Warm reuse resumes the hazard; at rate 1.0 it fires immediately.
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	countSIGTERMs(svc, &terms) // hook the recycled replacements too
	sched.Advance(time.Second)
	if terms != 10 {
		t.Fatalf("resumed hazard at rate 1.0 recycled %d of 10", terms)
	}
	if got := svc.ActiveCount(); got != 10 {
		t.Fatalf("active = %d after resume-recycle, want 10", got)
	}
}

// TestKernelFaultCountersConsistent runs churn and preemption as competing
// risks and cross-checks every ledger the kernel touches: SIGTERMs equal
// preemptions plus recycles, preemptions (terminate-without-replace) are the
// exact connection loss, and recycles (terminate-and-replace) are the exact
// billing growth.
func TestKernelFaultCountersConsistent(t *testing.T) {
	dc := kernelDC(t, 9, 0.10, 0.08)
	sched := dc.platform.sched
	acct := dc.Account("a")
	svc := acct.DeployService("s", ServiceConfig{})
	const n = 60
	if _, err := svc.Launch(n); err != nil {
		t.Fatal(err)
	}
	terms := 0
	// Hook at creation time, including every replacement the kernel creates:
	// re-hook after each advance below (replacements created in between are
	// only terminated by later events, which happen after the re-hook).
	for h := 0; h < 36; h++ {
		countSIGTERMs(svc, &terms)
		sched.Advance(time.Hour)
	}

	preempts := dc.FaultCounters().Preemptions
	created := acct.Bill().Instances
	recycles := created - n
	if preempts == 0 || recycles == 0 {
		t.Fatalf("competing risks did not both fire: preempts=%d recycles=%d", preempts, recycles)
	}
	if got := svc.ActiveCount(); got != n-preempts {
		t.Errorf("active = %d, want %d (preemption is the only connection loss)", got, n-preempts)
	}
	if terms != preempts+recycles {
		t.Errorf("SIGTERMs = %d, want preempts+recycles = %d+%d", terms, preempts, recycles)
	}
	if got := len(svc.ActiveInstances()); got != svc.ActiveCount() {
		t.Errorf("ActiveCount()=%d diverged from scan=%d", svc.ActiveCount(), got)
	}
}

// TestLazyHostMaterializationInvariant is the property test of the lazy
// fleet: force-materializing every host up front must not change a single
// placement decision, because each host's heavy state comes from its own
// derived stream. The workload deliberately crosses launches, idle reaping,
// churn recycling, warm reuse, and autoscaling.
func TestLazyHostMaterializationInvariant(t *testing.T) {
	run := func(eager bool) ([]string, []HostID, int) {
		pl := MustPlatform(33, testProfile())
		dc := pl.MustRegion("test-region")
		if eager {
			for _, h := range dc.hosts {
				h.materialize()
			}
		}
		svc := dc.Account("a").DeployService("s", ServiceConfig{MaxConcurrency: 1})
		if _, err := svc.Launch(40); err != nil {
			t.Fatal(err)
		}
		pl.Scheduler().Advance(2 * time.Hour) // churn + idle dynamics
		svc.Disconnect()
		pl.Scheduler().Advance(5 * time.Minute) // partial reap
		if err := svc.SetDemand(25); err != nil {
			t.Fatal(err)
		}
		pl.Scheduler().Advance(30 * time.Minute)
		var ids []string
		var hostIDs []HostID
		for _, inst := range svc.Instances() {
			ids = append(ids, inst.ID())
			hid, _ := inst.HostID()
			hostIDs = append(hostIDs, hid)
		}
		return ids, hostIDs, dc.MaterializedHosts()
	}

	lazyIDs, lazyHosts, lazyMat := run(false)
	eagerIDs, eagerHosts, eagerMat := run(true)
	if len(lazyIDs) != len(eagerIDs) {
		t.Fatalf("instance counts diverged: lazy %d, eager %d", len(lazyIDs), len(eagerIDs))
	}
	for i := range lazyIDs {
		if lazyIDs[i] != eagerIDs[i] || lazyHosts[i] != eagerHosts[i] {
			t.Fatalf("placement diverged at %d: lazy %s@%d, eager %s@%d",
				i, lazyIDs[i], lazyHosts[i], eagerIDs[i], eagerHosts[i])
		}
	}
	if eagerMat != len(MustPlatform(33, testProfile()).MustRegion("test-region").hosts) {
		t.Fatalf("eager world materialized %d hosts", eagerMat)
	}
	if lazyMat >= eagerMat {
		t.Fatalf("lazy world materialized the whole fleet (%d of %d)", lazyMat, eagerMat)
	}
	t.Logf("lazy world materialized %d of %d hosts", lazyMat, eagerMat)
}

// TestActiveCountMatchesScan drives every transition that touches the
// incremental counter (create, warm reuse, idle, terminate, recycle, preempt)
// and checks it against the O(n) scan at each step.
func TestActiveCountMatchesScan(t *testing.T) {
	dc := kernelDC(t, 11, 0.15, 0.10)
	sched := dc.platform.sched
	svc := dc.Account("a").DeployService("s", ServiceConfig{MaxConcurrency: 1})
	check := func(stage string) {
		t.Helper()
		if got, want := svc.ActiveCount(), len(svc.ActiveInstances()); got != want {
			t.Fatalf("%s: ActiveCount()=%d, scan=%d", stage, got, want)
		}
	}
	if _, err := svc.Launch(30); err != nil {
		t.Fatal(err)
	}
	check("launch")
	sched.Advance(3 * time.Hour)
	check("churn+preempt")
	svc.Disconnect()
	check("disconnect")
	sched.Advance(5 * time.Minute)
	check("partial reap")
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	check("warm reuse")
	if err := svc.SetDemand(4); err != nil {
		t.Fatal(err)
	}
	sched.Advance(20 * time.Minute)
	check("autoscale + full reap")
	svc.TerminateAll()
	check("terminate all")
	if svc.ActiveCount() != 0 {
		t.Fatalf("ActiveCount=%d after TerminateAll", svc.ActiveCount())
	}
}
