package faas

import (
	"fmt"
	"sort"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// PlacementPolicy is the pluggable placement engine of a data center. The
// platform mechanism (fleet state, instance lifecycle, autoscaler, quotas,
// billing) is policy-agnostic: every decision about *where* an instance
// lands — and every reaction to demand decay, recycling, and idle
// termination — goes through this interface.
//
// Implementations must be deterministic: all randomness must come from the
// randx sources handed to them (the service's placement stream and derived
// sub-streams), never from global state. Policies run on the single
// simulator thread and may freely read fleet state (hosts, resident counts,
// account pools); they must not mutate anything except through the
// PlacementBatch handle and the account-pool helpers.
type PlacementPolicy interface {
	// Name identifies the policy in traces, experiment output, and the
	// CLI's -policy flag.
	Name() string

	// NewService is called once when a service is deployed and returns the
	// policy's opaque per-service state (nil when the policy keeps none).
	// rng is the service's dedicated placement-preference sub-stream; it is
	// deployment-time scratch, valid only for the duration of the call —
	// policies must not retain it in their state.
	NewService(svc *Service, rng *randx.Source) any

	// Place assigns hosts to req.Count new instances by spawning them
	// through the batch handle. Placement decisions and instance
	// materialization interleave deliberately: startup-latency draws come
	// from the same per-service stream as placement noise, so batching all
	// decisions up front would reorder the stream and change the world.
	Place(req PlacementRequest, b *PlacementBatch)

	// Recycle picks the replacement host when the platform migrates a
	// long-running instance (the hourly churn sweep). oldID is the
	// recycled instance's identity, usable as a derivation label.
	Recycle(svc *Service, oldID string, now simtime.Time) *Host

	// OnDemandDecay fires when a launch arrives outside the demand window:
	// the service has gone cold and its hot streak resets. Policies with
	// dynamic pool behavior (us-central1) reshuffle here.
	OnDemandDecay(svc *Service, now simtime.Time)

	// OnIdleTermination fires when the idle reaper terminates an instance,
	// for policies that track per-host load externally instead of reading
	// live resident counts.
	OnIdleTermination(inst *Instance, now simtime.Time)
}

// PlacementRequest carries the context of one batch-placement decision: the
// account/service being scaled out, the demand-window state, and the
// deterministic per-service stream all placement noise must come from.
type PlacementRequest struct {
	// Service is the service being scaled out (account and region are
	// reachable through it).
	Service *Service
	// Count is the number of new instances to place.
	Count int
	// Now is the virtual time of the launch.
	Now simtime.Time
	// HotStreak is the number of consecutive launches that arrived inside
	// the demand window (0 on a cold launch) — the load-balancer signal
	// behind helper-host unlocking (Obs. 5).
	HotStreak int
	// RNG is the service's placement stream. Draws from it interleave with
	// the startup-latency draws of spawned instances, which is what makes
	// the whole world a pure function of the root seed.
	RNG *randx.Source
}

// PlacementBatch is the narrow mechanism handle a policy materializes its
// decisions through. It creates instances, keeps them in placement order,
// and records the decision for the (optional) placement trace.
type PlacementBatch struct {
	svc *Service
	now simtime.Time
	out []*Instance
}

// Spawn creates one new instance on the chosen host and returns it.
func (b *PlacementBatch) Spawn(h *Host) *Instance {
	inst := b.svc.createInstance(h, b.now)
	b.out = append(b.out, inst)
	return inst
}

// Spread spawns count instances round-robin across hosts (the orchestrator's
// near-uniform packing, Obs. 1). It panics if hosts is empty and count > 0 —
// a policy bug, not a recoverable condition.
func (b *PlacementBatch) Spread(hosts []*Host, count int) {
	for i := 0; i < count; i++ {
		b.Spawn(hosts[i%len(hosts)])
	}
}

// Placed returns how many instances the batch has spawned so far.
func (b *PlacementBatch) Placed() int { return len(b.out) }

// policyDefaults provides no-op lifecycle callbacks for policies that do
// not need them; embed it and override selectively.
type policyDefaults struct{}

func (policyDefaults) NewService(*Service, *randx.Source) any    { return nil }
func (policyDefaults) OnDemandDecay(*Service, simtime.Time)      {}
func (policyDefaults) OnIdleTermination(*Instance, simtime.Time) {}

// dynamicDecay is the demand-decay behavior shared by the policies that
// honor the DynamicPlacement profile knob (us-central1): part of the
// account's base pool is resampled on every cold launch.
func dynamicDecay(svc *Service) {
	p := svc.account.dc.profile
	if p.DynamicPlacement {
		svc.account.resampleBasePool(p.DynamicResampleFrac)
	}
}

// policyFor resolves a normalized profile's placement engine: an explicit
// Policy wins, and the default is the calibrated Cloud Run extraction. The
// deprecated RandomPlacement bool has already been folded into Policy by
// RegionProfile.normalize before this runs.
func policyFor(p RegionProfile) PlacementPolicy {
	if p.Policy != nil {
		return p.Policy
	}
	return CloudRunPolicy{}
}

// Policies returns one instance of every built-in placement policy, in
// presentation order.
func Policies() []PlacementPolicy {
	return []PlacementPolicy{CloudRunPolicy{}, RandomUniformPolicy{}, LeastLoadedPolicy{}}
}

// PolicyByName resolves a built-in policy from its Name (plus the short
// aliases "random" and "leastloaded").
func PolicyByName(name string) (PlacementPolicy, error) {
	switch name {
	case "random":
		return RandomUniformPolicy{}, nil
	case "leastloaded":
		return LeastLoadedPolicy{}, nil
	}
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("faas: unknown placement policy %q (have cloudrun, random-uniform, least-loaded)", name)
}

// hostsByLoad returns the fleet ordered by resident-instance count, ties
// broken by host id so the order is deterministic.
func hostsByLoad(hosts []*Host) []*Host {
	out := append([]*Host(nil), hosts...)
	sort.Slice(out, func(i, j int) bool {
		if li, lj := len(out[i].instances), len(out[j].instances); li != lj {
			return li < lj
		}
		return out[i].id < out[j].id
	})
	return out
}
