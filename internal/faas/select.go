package faas

// hostScore pairs a host with a selection score. It is the working element of
// every noisy top-K scheduler decision (base pools, helper sets, ranked base
// selection); the scored buffers live on the Account so the per-launch hot
// path does not allocate.
type hostScore struct {
	h     *Host
	score float64
}

// ordering is the comparator for hostScore selection. Implementations are
// zero-size structs rather than func values so the generic topK/sortScores
// instantiations get direct, inlinable compare calls — comparator dispatch is
// the bulk of selection cost at fleet scale, and an indirect call per compare
// roughly doubles it.
type ordering interface {
	less(a, b *hostScore) bool
}

// byScore orders by score alone (rank noise makes exact ties have probability
// zero, so this matches the historical unstable full sort draw for draw).
type byScore struct{}

func (byScore) less(a, b *hostScore) bool { return a.score < b.score }

// byScoreThenID orders by score with host-id tie-breaking — the strict total
// order of every desirability-based noisy sample.
type byScoreThenID struct{}

func (byScoreThenID) less(a, b *hostScore) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.h.id < b.h.id
}

// topK partially orders s so that the k entries smallest under less occupy
// s[:k] in ascending order. It is the quickselect-then-sort-K replacement for
// fully sorting s: O(len(s) + k log k) instead of O(len(s) log len(s)).
//
// less must be a strict weak ordering; when it is a total order (or ties have
// probability zero, as with continuous score noise), the selected set and its
// order are exactly what a full sort would produce, so swapping topK for
// sort.Slice is output-identical.
func topK[L ordering](s []hostScore, k int, less L) {
	if k <= 0 {
		return
	}
	if k*8 <= len(s) {
		// Small k relative to the pool (dynamic resamples draw a handful of
		// hosts from the whole fleet): heap-select. A max-heap of the k best
		// lives in s[:k]; each remaining candidate costs one comparison
		// against the heap root (almost all fail) and only improvements pay
		// the O(log k) sift. Quickselect instead rewrites the whole buffer
		// several times over. Nearer k ≈ len(s) the ~k·ln(len/k) improvement
		// sifts erase the win, hence the threshold. The selected set and its
		// sorted order are identical either way — less is a total order.
		heapSelect(s, k, less)
		s = s[:k]
	} else if k < len(s) {
		quickselect(s, k, less)
		s = s[:k]
	}
	sortScores(s, less)
}

// heapSelect moves the k smallest entries under less into s[:k] (arbitrary
// order). s[:k] is kept as a max-heap; a candidate smaller than the root
// replaces it. Deterministic, no RNG, no allocation.
func heapSelect[L ordering](s []hostScore, k int, less L) {
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(s[:k], i, less)
	}
	for j := k; j < len(s); j++ {
		if less.less(&s[j], &s[0]) {
			s[0], s[j] = s[j], s[0]
			siftDown(s[:k], 0, less)
		}
	}
}

// siftDown restores the max-heap property of h rooted at i (children of i at
// 2i+1, 2i+2; parent greater than both under less).
func siftDown[L ordering](h []hostScore, i int, less L) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && less.less(&h[c], &h[c+1]) {
			c++
		}
		if !less.less(&h[i], &h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// sortScores sorts s ascending under less without allocating (sort.Slice
// costs several allocations per call via reflection, which matters on the
// per-launch hot path). less is a total order here — scores either carry
// continuous noise (ties have probability zero) or break ties by host id —
// so the result is the unique sorted order regardless of algorithm.
func sortScores[L ordering](s []hostScore, less L) {
	if len(s) <= 12 {
		// Insertion sort for small runs and recursion leaves.
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && less.less(&s[j], &s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	p := partition(s, 0, len(s)-1, less)
	sortScores(s[:p], less)
	sortScores(s[p+1:], less)
}

// quickselect partitions s so that the k smallest entries under less occupy
// s[:k] in arbitrary order. Deterministic (median-of-three pivots, no
// randomness): it must never consume simulation RNG draws.
func quickselect[L ordering](s []hostScore, k int, less L) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := partition(s, lo, hi, less)
		switch {
		case p == k-1:
			return
		case p > k-1:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partition is a Lomuto partition of s[lo:hi+1] around a median-of-three
// pivot; it returns the pivot's final index.
func partition[L ordering](s []hostScore, lo, hi int, less L) int {
	mid := lo + (hi-lo)/2
	if less.less(&s[mid], &s[lo]) {
		s[mid], s[lo] = s[lo], s[mid]
	}
	if less.less(&s[hi], &s[mid]) {
		s[hi], s[mid] = s[mid], s[hi]
		if less.less(&s[mid], &s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
	}
	// Median now at mid; use it as the pivot from the hi slot. The pivot is
	// compared in place (s[hi] is untouched until the final swap) — copying
	// it to a local would make it escape through the less callback and cost
	// one heap allocation per partition call.
	s[mid], s[hi] = s[hi], s[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if less.less(&s[j], &s[hi]) {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi] = s[hi], s[i]
	return i
}

// selectRank returns the entry of rank k (0-indexed, ascending under less)
// without ordering anything else: a single quickselect pass, O(len(s)).
func selectRank[L ordering](s []hostScore, k int, less L) *Host {
	quickselect(s, k+1, less)
	best := 0
	for i := 1; i <= k; i++ {
		if less.less(&s[best], &s[i]) {
			best = i
		}
	}
	return s[best].h
}
