package faas

import "fmt"

// Last-level-cache contention modeling, the substrate for prime+probe style
// extraction (§2.1 lists caches as the most commonly exploited shared
// resource; the cpuid cache-hierarchy information of §4.1 is what attackers
// size their eviction sets with).
//
// The model is deliberately coarse: the LLC is divided into CacheSetGroups
// monitorable groups of sets (a real attack builds per-set eviction sets;
// grouping models the resolution an attacker practically monitors). An
// executing workload occupies the set groups of its cache footprint; a probe
// of a group reports whether any co-resident workload is hitting it.

// CacheSetGroups is the number of monitorable LLC set groups per host.
const CacheSetGroups = 64

// SetCacheFootprint declares which LLC set groups the instance's program
// touches while executing (its code/data layout). The footprint matters only
// while the instance's workload predicate reports it executing. Out-of-range
// groups are rejected.
func (i *Instance) SetCacheFootprint(groups []int) error {
	for _, g := range groups {
		if g < 0 || g >= CacheSetGroups {
			return fmt.Errorf("faas: cache set group %d out of [0,%d)", g, CacheSetGroups)
		}
	}
	i.cacheFootprint = append([]int(nil), groups...)
	return nil
}

// ProbeCacheGroup is the prime+probe primitive: the probing instance primes
// LLC set group g, yields briefly, and re-probes; it reports whether its
// lines were evicted. Evictions happen when a co-resident instance's
// executing workload touches the group, and occasionally from unrelated
// cache traffic (caches are far noisier than the RNG: ~5% background per
// probe).
func ProbeCacheGroup(prober *Instance, g int) (bool, error) {
	if prober.state == StateTerminated {
		return false, fmt.Errorf("faas: probe from terminated instance %s", prober.ID())
	}
	if g < 0 || g >= CacheSetGroups {
		return false, fmt.Errorf("faas: cache set group %d out of [0,%d)", g, CacheSetGroups)
	}
	h := prober.host
	now := h.dc.platform.sched.Now()
	for _, inst := range h.instances {
		if inst == prober || inst.workload == nil || !inst.workload(now) {
			continue
		}
		for _, fg := range inst.cacheFootprint {
			if fg == g {
				return true, nil
			}
		}
	}
	// Background traffic from unrelated tenants and the host itself.
	return h.noiseRNG.Bool(0.05), nil
}
