package faas

import (
	"testing"
	"time"

	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// testProfile returns a small, fast region for unit tests.
func testProfile() RegionProfile {
	p := USEast1Profile()
	p.Name = "test-region"
	p.NumHosts = 120
	p.PlacementGroups = 3
	p.BasePoolSize = 30
	p.AccountHelperPool = 60
	p.ServiceHelperSize = 45
	p.ServiceHelperFresh = 5
	return p
}

func newTestDC(t *testing.T, seed uint64) *DataCenter {
	t.Helper()
	pl, err := NewPlatform(seed, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	return pl.MustRegion("test-region")
}

func hostSet(insts []*Instance) map[HostID]int {
	out := make(map[HostID]int)
	for _, inst := range insts {
		id, ok := inst.HostID()
		if ok {
			out[id]++
		}
	}
	return out
}

func TestProfileValidation(t *testing.T) {
	for _, p := range DefaultProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := USEast1Profile()
	bad.BasePoolSize = 10_000
	if err := bad.Validate(); err == nil {
		t.Error("oversized base pool validated")
	}
	bad2 := USEast1Profile()
	bad2.Name = ""
	if err := bad2.Validate(); err == nil {
		t.Error("unnamed profile validated")
	}
}

func TestPlatformDeterminism(t *testing.T) {
	collect := func() []HostID {
		dc := newTestDC(t, 77)
		svc := dc.Account("acct").DeployService("svc", ServiceConfig{})
		insts, err := svc.Launch(50)
		if err != nil {
			t.Fatal(err)
		}
		var ids []HostID
		for _, inst := range insts {
			id, _ := inst.HostID()
			ids = append(ids, id)
		}
		return ids
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at instance %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHostsBootInThePast(t *testing.T) {
	dc := newTestDC(t, 1)
	for _, h := range dc.hosts {
		if !h.BootTime().Before(0) {
			t.Fatalf("host %d booted at %v, not before simulation start", h.ID(), h.BootTime())
		}
		age := simtime.Time(0).Sub(h.BootTime())
		if age > dc.profile.MaxBootAge+24*time.Hour {
			t.Errorf("host %d age %v exceeds MaxBootAge", h.ID(), age)
		}
	}
}

func TestProblematicHostFraction(t *testing.T) {
	dc := newTestDC(t, 2)
	n := 0
	for _, h := range dc.hosts {
		if h.Noise().Problematic {
			n++
		}
	}
	frac := float64(n) / float64(len(dc.hosts))
	if frac < 0.03 || frac > 0.20 {
		t.Errorf("problematic fraction = %.3f, want ~0.10", frac)
	}
}

func TestRefinedFreqIs1kHzPrecision(t *testing.T) {
	dc := newTestDC(t, 3)
	for _, h := range dc.hosts {
		if r := h.RefinedTSCHz(); r != float64(int64(r/1000))*1000 {
			t.Fatalf("host %d refined freq %v not 1 kHz aligned", h.ID(), r)
		}
	}
}

// Observation 1: instances of one service share hosts, near-uniformly.
func TestObs1UniformSharedPlacement(t *testing.T) {
	dc := newTestDC(t, 4)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 300 {
		t.Fatalf("launched %d", len(insts))
	}
	perHost := hostSet(insts)
	// 300 instances at cap 11 → ~28 hosts.
	if len(perHost) < 20 || len(perHost) > 35 {
		t.Errorf("host footprint = %d, want ~28", len(perHost))
	}
	for id, n := range perHost {
		if n > dc.profile.BasePerHostCap+1 {
			t.Errorf("host %d packs %d instances, cap %d", id, n, dc.profile.BasePerHostCap)
		}
	}
}

// Observation 2: idle instances terminate gradually, all gone by
// grace+span; none terminate during the grace period.
func TestObs2GradualIdleTermination(t *testing.T) {
	dc := newTestDC(t, 5)
	sched := dc.platform.sched
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	var termTimes []simtime.Time
	for _, inst := range insts {
		inst.OnSIGTERM(func(_ *Instance, at simtime.Time) { termTimes = append(termTimes, at) })
	}
	sched.Advance(time.Minute)
	svc.Disconnect()
	start := sched.Now()

	sched.Advance(dc.profile.IdleGrace)
	if len(termTimes) != 0 {
		t.Errorf("%d instances terminated during grace period", len(termTimes))
	}
	mid := start.Add(dc.profile.IdleGrace + dc.profile.IdleTerminationSpan/2)
	sched.RunUntil(mid)
	midCount := len(termTimes)
	if midCount < 60 || midCount > 140 {
		t.Errorf("terminations at half-span = %d, want ~100 (gradual)", midCount)
	}
	sched.Advance(dc.profile.IdleTerminationSpan)
	if len(termTimes) != 200 {
		t.Errorf("only %d/200 terminated after grace+span", len(termTimes))
	}
	for _, at := range termTimes {
		if at.Sub(start) < dc.profile.IdleGrace {
			t.Errorf("termination at %v inside grace", at.Sub(start))
		}
		if at.Sub(start) > dc.profile.IdleGrace+dc.profile.IdleTerminationSpan {
			t.Errorf("termination at %v beyond span", at.Sub(start))
		}
	}
}

// Observation 3: repeated cold launches of the same account land on a
// stable base-host set, even across different services.
func TestObs3StableBaseHosts(t *testing.T) {
	dc := newTestDC(t, 6)
	sched := dc.platform.sched
	acct := dc.Account("a1")

	cumulative := make(map[HostID]bool)
	var perLaunch []int
	var cumCounts []int
	for i := 0; i < 4; i++ {
		svc := acct.DeployService("svc"+string(rune('a'+i)), ServiceConfig{})
		insts, err := svc.Launch(300)
		if err != nil {
			t.Fatal(err)
		}
		hs := hostSet(insts)
		perLaunch = append(perLaunch, len(hs))
		for id := range hs {
			cumulative[id] = true
		}
		cumCounts = append(cumCounts, len(cumulative))
		svc.Disconnect()
		sched.Advance(45 * time.Minute) // cold gap
	}
	if cumCounts[3] > dc.profile.BasePoolSize {
		t.Errorf("cumulative hosts %d exceeded base pool %d", cumCounts[3], dc.profile.BasePoolSize)
	}
	growth := cumCounts[3] - perLaunch[0]
	if growth > perLaunch[0]/2 {
		t.Errorf("cumulative growth %d too large for base-host behavior (first launch %d)",
			growth, perLaunch[0])
	}
}

// Observation 4: different accounts that hash to different placement groups
// have disjoint base hosts.
func TestObs4AccountsSeparated(t *testing.T) {
	dc := newTestDC(t, 7)
	// Find two accounts in different groups.
	a := dc.Account("alpha")
	var b *Account
	for _, name := range []string{"beta", "gamma", "delta", "epsilon"} {
		cand := dc.Account(name)
		if cand.group != a.group {
			b = cand
			break
		}
	}
	if b == nil {
		t.Fatal("could not find account in a different group")
	}
	ia, err := a.DeployService("s", ServiceConfig{}).Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.DeployService("s", ServiceConfig{}).Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := hostSet(ia), hostSet(ib)
	for id := range ha {
		if _, shared := hb[id]; shared {
			t.Errorf("accounts in different groups share host %d", id)
		}
	}
}

// Observation 5: launches inside the demand window spill onto helper hosts;
// cold launches never do.
func TestObs5HelperHostsOnHotRelaunch(t *testing.T) {
	dc := newTestDC(t, 8)
	sched := dc.platform.sched
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})

	first, err := svc.Launch(300)
	if err != nil {
		t.Fatal(err)
	}
	firstHosts := hostSet(first)
	svc.Disconnect()
	sched.Advance(10 * time.Minute)

	cumulative := make(map[HostID]bool)
	for id := range firstHosts {
		cumulative[id] = true
	}
	prevCum := len(cumulative)
	growths := []int{}
	for i := 0; i < 4; i++ {
		insts, err := svc.Launch(300)
		if err != nil {
			t.Fatal(err)
		}
		for id := range hostSet(insts) {
			cumulative[id] = true
		}
		growths = append(growths, len(cumulative)-prevCum)
		prevCum = len(cumulative)
		svc.Disconnect()
		sched.Advance(10 * time.Minute)
	}
	if growths[0] == 0 {
		t.Error("no helper expansion on first hot relaunch")
	}
	total := prevCum
	if total <= len(firstHosts)+10 {
		t.Errorf("cumulative %d barely exceeds base footprint %d; helper behavior missing",
			total, len(firstHosts))
	}
	// Saturation: the last relaunch should add far fewer hosts than the
	// first hot one.
	if growths[len(growths)-1] > growths[0] {
		t.Errorf("no saturation: growths %v", growths)
	}
}

func TestColdLaunchesDoNotUseHelpers(t *testing.T) {
	dc := newTestDC(t, 9)
	sched := dc.platform.sched
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	cumulative := make(map[HostID]bool)
	for i := 0; i < 5; i++ {
		insts, err := svc.Launch(300)
		if err != nil {
			t.Fatal(err)
		}
		for id := range hostSet(insts) {
			cumulative[id] = true
		}
		svc.Disconnect()
		sched.Advance(45 * time.Minute)
	}
	if len(cumulative) > dc.profile.BasePoolSize {
		t.Errorf("cold launches reached %d hosts, beyond the base pool of %d",
			len(cumulative), dc.profile.BasePoolSize)
	}
}

// Observation 6: two services of one account have different but overlapping
// helper sets.
func TestObs6HelperSetsOverlapAcrossServices(t *testing.T) {
	dc := newTestDC(t, 10)
	acct := dc.Account("a1")
	s1 := acct.DeployService("s1", ServiceConfig{})
	s2 := acct.DeployService("s2", ServiceConfig{})
	set1 := make(map[*Host]bool)
	for _, h := range s1.policyState.(*cloudRunState).helpers {
		set1[h] = true
	}
	overlap, fresh := 0, 0
	for _, h := range s2.policyState.(*cloudRunState).helpers {
		if set1[h] {
			overlap++
		} else {
			fresh++
		}
	}
	if overlap == 0 {
		t.Error("helper sets do not overlap")
	}
	if fresh == 0 {
		t.Error("helper sets are identical; expected some fresh hosts")
	}
}

func TestWarmReuse(t *testing.T) {
	dc := newTestDC(t, 11)
	sched := dc.platform.sched
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	first, err := svc.Launch(100)
	if err != nil {
		t.Fatal(err)
	}
	firstIDs := make(map[string]bool, len(first))
	for _, inst := range first {
		firstIDs[inst.ID()] = true
	}
	svc.Disconnect()
	sched.Advance(time.Minute) // within grace: everyone still idle
	second, err := svc.Launch(100)
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, inst := range second {
		if firstIDs[inst.ID()] {
			reused++
		}
	}
	if reused != 100 {
		t.Errorf("reused %d/100 warm instances within grace period", reused)
	}
}

func TestQuotaEnforced(t *testing.T) {
	dc := newTestDC(t, 12)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(dc.profile.MaxInstancesPerService + 1); err == nil {
		t.Error("quota not enforced")
	}
	if _, err := svc.Launch(0); err == nil {
		t.Error("zero-instance launch accepted")
	}
}

func TestBillingActiveTimeOnly(t *testing.T) {
	dc := newTestDC(t, 13)
	sched := dc.platform.sched
	acct := dc.Account("a1")
	svc := acct.DeployService("s", ServiceConfig{Size: SizeSmall})
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	sched.Advance(60 * time.Second)
	svc.Disconnect()
	sched.Advance(30 * time.Minute) // idle + terminated time must not bill
	bill := acct.Bill()
	wantCPU := 10 * 60 * SizeSmall.VCPU
	if bill.VCPUSeconds < wantCPU*0.99 || bill.VCPUSeconds > wantCPU*1.01 {
		t.Errorf("vCPU-seconds = %v, want ~%v", bill.VCPUSeconds, wantCPU)
	}
	wantMem := 10 * 60 * SizeSmall.MemoryGB
	if bill.GBSeconds < wantMem*0.99 || bill.GBSeconds > wantMem*1.01 {
		t.Errorf("GB-seconds = %v, want ~%v", bill.GBSeconds, wantMem)
	}
}

func TestSizesShareBaseHosts(t *testing.T) {
	// The paper: "container instances with different resource specifications
	// share the same base hosts".
	dc := newTestDC(t, 14)
	acct := dc.Account("a1")
	small, err := acct.DeployService("small", ServiceConfig{Size: SizeSmall}).Launch(150)
	if err != nil {
		t.Fatal(err)
	}
	large, err := acct.DeployService("large", ServiceConfig{Size: SizeLarge}).Launch(150)
	if err != nil {
		t.Fatal(err)
	}
	hs, hl := hostSet(small), hostSet(large)
	shared := 0
	for id := range hs {
		if _, ok := hl[id]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Error("different sizes share no base hosts")
	}
}

func TestGen2SharesHostsWithGen1(t *testing.T) {
	dc := newTestDC(t, 15)
	acct := dc.Account("a1")
	g1, err := acct.DeployService("g1", ServiceConfig{Gen: sandbox.Gen1}).Launch(150)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := acct.DeployService("g2", ServiceConfig{Gen: sandbox.Gen2}).Launch(150)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := hostSet(g1), hostSet(g2)
	shared := 0
	for id := range h1 {
		if _, ok := h2[id]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Error("Gen2 instances share no hosts with Gen1")
	}
	// And the Gen2 guests must actually be Gen2.
	if g2[0].MustGuest().Gen() != sandbox.Gen2 {
		t.Error("Gen2 service produced a non-Gen2 guest")
	}
}

func TestContentionRoundSemantics(t *testing.T) {
	dc := newTestDC(t, 16)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(60)
	if err != nil {
		t.Fatal(err)
	}
	// Group truth by host.
	byHost := make(map[HostID][]*Instance)
	for _, inst := range insts {
		id, _ := inst.HostID()
		byHost[id] = append(byHost[id], inst)
	}
	obs, err := ContentionRoundOn(ResourceRNG, insts)
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range insts {
		id, _ := inst.HostID()
		want := len(byHost[id])
		// Background can add at most 1.
		if obs[i] != want && obs[i] != want+1 {
			t.Errorf("instance %d observed %d, want %d or %d", i, obs[i], want, want+1)
		}
	}
}

func TestContentionBackgroundRate(t *testing.T) {
	dc := newTestDC(t, 17)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(5)
	if err != nil {
		t.Fatal(err)
	}
	solo := insts[:1]
	trips := 0
	const rounds = 5000
	for r := 0; r < rounds; r++ {
		obs, err := ContentionRoundOn(ResourceRNG, solo)
		if err != nil {
			t.Fatal(err)
		}
		if obs[0] > 1 {
			trips++
		}
	}
	rate := float64(trips) / rounds
	if rate > 0.015 {
		t.Errorf("background contention rate %.4f, want < 0.01ish", rate)
	}
}

func TestContentionTerminatedObserveNothing(t *testing.T) {
	dc := newTestDC(t, 18)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(12)
	if err != nil {
		t.Fatal(err)
	}
	svc.TerminateAll()
	obs, err := ContentionRoundOn(ResourceRNG, insts)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		if o != 0 {
			t.Errorf("terminated instance %d observed %d units", i, o)
		}
	}
	// A mixed round: live instances must not count dead participants.
	insts2, err := svc.Launch(12)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(append([]*Instance(nil), insts...), insts2...)
	obs, err = ContentionRoundOn(ResourceRNG, mixed)
	if err != nil {
		t.Fatal(err)
	}
	byHost := make(map[HostID]int)
	for _, inst := range insts2 {
		id, _ := inst.HostID()
		byHost[id]++
	}
	for i, inst := range mixed {
		if inst.State() == StateTerminated {
			if obs[i] != 0 {
				t.Errorf("dead instance observed %d", obs[i])
			}
			continue
		}
		id, _ := inst.HostID()
		want := byHost[id]
		if obs[i] != want && obs[i] != want+1 {
			t.Errorf("live instance observed %d, want %d(+1)", obs[i], want)
		}
	}
}

func TestGuestErrorAfterTermination(t *testing.T) {
	dc := newTestDC(t, 19)
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(1)
	if err != nil {
		t.Fatal(err)
	}
	svc.TerminateAll()
	if _, err := insts[0].Guest(); err == nil {
		t.Error("Guest() succeeded on terminated instance")
	}
	if insts[0].State() != StateTerminated {
		t.Error("instance not terminated")
	}
}

func TestChurnRecyclesInstances(t *testing.T) {
	dc := newTestDC(t, 20)
	sched := dc.platform.sched
	svc := dc.Account("a1").DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(50); err != nil {
		t.Fatal(err)
	}
	terms := 0
	for _, inst := range svc.Instances() {
		inst.OnSIGTERM(func(*Instance, simtime.Time) { terms++ })
	}
	sched.Advance(48 * time.Hour)
	if terms == 0 {
		t.Error("no churn over 48 hours at 2%/hour")
	}
	if got := len(svc.ActiveInstances()); got != 50 {
		t.Errorf("connection count dropped to %d after churn; recycling must replace", got)
	}
}

func TestDynamicRegionResamplesBasePool(t *testing.T) {
	p := testProfile()
	p.DynamicPlacement = true
	p.DynamicResampleFrac = 0.35
	pl := MustPlatform(21, p)
	dc := pl.MustRegion("test-region")
	acct := dc.Account("a1")
	before := append([]*Host(nil), acct.basePool...)
	svc := acct.DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(10); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range before {
		if before[i] != acct.basePool[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("dynamic region did not resample base pool on cold launch")
	}
}

func TestLaunchStateString(t *testing.T) {
	if StateActive.String() != "active" || StateIdle.String() != "idle" ||
		StateTerminated.String() != "terminated" || InstanceState(99).String() != "unknown" {
		t.Error("InstanceState strings wrong")
	}
}

func TestRegionLookup(t *testing.T) {
	pl := MustPlatform(22, testProfile())
	if _, err := pl.Region("nope"); err == nil {
		t.Error("unknown region lookup succeeded")
	}
	if got := pl.Regions(); len(got) != 1 || got[0] != "test-region" {
		t.Errorf("Regions() = %v", got)
	}
	if _, err := NewPlatform(1); err == nil {
		t.Error("platform with no regions accepted")
	}
	if _, err := NewPlatform(1, testProfile(), testProfile()); err == nil {
		t.Error("duplicate regions accepted")
	}
}
