package faas

import "eaao/internal/simtime"

// RandomUniformPolicy is the co-location-resistant scheduling defense §6
// cites [6, 37]: the orchestrator ignores base-host affinity and helper
// preferences and scatters every launch uniformly across the fleet. It
// removes the placement structure the attack exploits — at the price of
// image locality (every launch lands mostly on hosts that have never run
// the service, i.e. cold starts).
//
// It is the policy the deprecated RegionProfile.RandomPlacement bool maps
// to, and reproduces that code path draw for draw.
type RandomUniformPolicy struct {
	policyDefaults
}

// Name returns "random-uniform".
func (RandomUniformPolicy) Name() string { return "random-uniform" }

// Place scatters the batch over a uniform fleet-wide host sample sized for
// the usual per-host packing density.
func (RandomUniformPolicy) Place(req PlacementRequest, b *PlacementBatch) {
	s := req.Service
	p := s.account.dc.profile
	hostCount := (req.Count + p.BasePerHostCap - 1) / p.BasePerHostCap
	if hostCount > len(s.account.dc.hosts) {
		hostCount = len(s.account.dc.hosts)
	}
	idx := req.RNG.Sample(len(s.account.dc.hosts), hostCount)
	hosts := make([]*Host, hostCount)
	for i, j := range idx {
		hosts[i] = s.account.dc.hosts[j]
	}
	b.Spread(hosts, req.Count)
}

// Recycle keeps the historical base-pool replacement draw: the deployed
// defense only randomized launch placement, not the migration sweep, and the
// RandomPlacement compatibility mapping must stay draw-identical to it.
func (RandomUniformPolicy) Recycle(svc *Service, oldID string, now simtime.Time) *Host {
	return recycleBaseDraw(svc, oldID)
}

// OnDemandDecay keeps the dynamic-region base-pool resample. The pool no
// longer steers placement under this policy, but it still feeds the recycle
// draw — and the historical defense left the bookkeeping running.
func (RandomUniformPolicy) OnDemandDecay(svc *Service, now simtime.Time) {
	dynamicDecay(svc)
}
