package faas

import (
	"math"
	"time"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// The per-instance lifecycle kernel.
//
// The legacy implementation (platform.go, scheduleChurnSweep) walked every
// instance of the region once per simulated hour and flipped a Bernoulli coin
// per instance for churn recycling and fault-plane preemption. That is O(fleet)
// per hour regardless of how much actually happens — fine at paper scale
// (thousands of instances), prohibitive at the 10⁵–10⁶ instances the scale
// experiment runs. The kernel replaces the scan with one scheduled event per
// instance: work is proportional to the number of lifecycle transitions that
// occur, not to the number of instances that exist.
//
// Equivalence with the sweep is distributional, not byte-for-byte (the golden
// quick-digest was deliberately re-pinned; see golden_test.go). The sweep
// gives a connected instance an independent probability p per hour of being
// hit; the kernel draws exponential inter-event delays with rate
// λ = -ln(1-p) per hour, which has exactly the same per-hour survival
// probability e^{-λ} = 1-p. Churn and preemption compete as summed hazards,
// and a single draw picks which one fired — the standard competing-risks
// construction, half the events of two independent timers.
//
// Determinism: per-instance delays come from stateless hash draws
// randx.Mix3(dc.lifeSeed, instance seq, draw#) — no per-instance generator
// state, no draw-order coupling between instances, and the "lifecycle" seed
// label is disjoint from every legacy stream, so a LegacySweeps world is
// untouched. Event-heap ordering is deterministic (time, then insertion seq).
//
// Two deliberate semantic refinements over the sweep:
//
//   - Immunity: a freshly created instance is not eligible for churn or
//     preemption until one full lifecycleInterval has elapsed. The sweep's
//     preemption pass could kill a replacement instance in the same sweep
//     that created it (it re-iterated svc.insts after the recycle pass
//     appended replacements); the kernel makes that impossible by
//     construction. Immunity also pays for the kernel's cheapest trick: all
//     instances born at one instant share a single nursery-cohort event at
//     birth + lifecycleInterval (lifeCohort), so a 200-instance launch burst
//     costs one heap insertion, each survivor draws its exponential delay at
//     the boundary, and an instance that dies young never touches the
//     scheduler at all.
//
//   - Idle instances carry no hazard (the sweep only ever drew for
//     StateActive instances): a timer that finds its instance idle dies, and
//     warm reactivation re-arms it with a fresh exponential delay —
//     memorylessness makes the fresh draw distributionally identical to
//     suspending the hazard. (An idle blip shorter than the pending delay
//     never surfaces at all: the old timer stays armed across it, just as a
//     between-sweeps blip was invisible to the hourly scan.)

// lifecycleInterval is the legacy sweep period, reused by the kernel as the
// new-instance immunity span: the first churn/preemption draw of an instance
// happens at creation + lifecycleInterval + Exp(λ).
const lifecycleInterval = time.Hour

// hazardPerHour converts a per-hour event probability into the exponential
// rate with the same per-hour survival: λ = -ln(1-p).
func hazardPerHour(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -math.Log1p(-p)
}

// initLifecycleKernel resolves the region's lifecycle hazards and the seed of
// the per-instance draw streams. Derivation consumes no parent randomness, so
// regions with zero churn and zero preemption remain byte-identical to a
// build without the kernel.
func (dc *DataCenter) initLifecycleKernel() {
	dc.churnHazard = hazardPerHour(dc.profile.InstanceChurnPerHour)
	dc.preemptHazard = hazardPerHour(dc.faults.PreemptionRatePerHour)
	dc.lifeSeed = dc.rng.DeriveSeed("lifecycle")
	dc.lifeMix1 = randx.MixInit(dc.lifeSeed)
}

// lifeU returns the instance's next uniform draw in [0,1) from its stateless
// lifecycle stream: bit-identical to randx.Mix3(lifeSeed, seq, draw#), with
// the first two mixer rounds pre-folded into lifeBase at creation.
func (i *Instance) lifeU() float64 {
	u := randx.Unit(randx.MixStep(i.lifeBase, uint64(i.lifeDraws)))
	i.lifeDraws++
	return u
}

// lifecycleDelay draws the next exponential inter-event delay at the combined
// hazard rate (per hour).
func (i *Instance) lifecycleDelay(rate float64) time.Duration {
	u := i.lifeU()
	return time.Duration(-math.Log(1-u) / rate * float64(time.Hour))
}

// lifeCohort is the nursery batch of one creation instant: every instance
// born at the same virtual time shares a single boundary event at
// birth + lifecycleInterval, since none of them can suffer churn or
// preemption before then (immunity). Launching a burst of N instances
// therefore costs one heap insertion instead of N — instance creation is the
// simulator's hottest path — and an instance that dies young never touches
// the scheduler at all. At the boundary the cohort draws each survivor's
// exponential delay and arms its individual pooled timer.
type lifeCohort struct {
	dc    *DataCenter
	insts []*Instance
	ev    simtime.Event
}

// HandleEvent fires the cohort's immunity boundary (the cohort is its own
// event's simtime.Handler).
func (c *lifeCohort) HandleEvent(_ *simtime.Event, now simtime.Time) {
	dc := c.dc
	rate := dc.churnHazard + dc.preemptHazard
	for _, inst := range c.insts {
		// Terminated instances are gone for good; idle ones carry no hazard
		// (activate resumes them now that the immunity interval has passed).
		if inst.state != StateActive {
			continue
		}
		// A warm reactivation at exactly the boundary instant, ordered just
		// before this event, may have armed the timer already.
		if inst.lifeEvent != nil && inst.lifeEvent.Pending() {
			continue
		}
		dc.armLifecycle(inst, inst.lifecycleDelay(rate))
	}
	clear(c.insts) // drop the instance pointers so the GC can reclaim them
	c.insts = c.insts[:0]
	dc.cohortFree = append(dc.cohortFree, c)
}

// allocCohort leases a cohort from the pool, or allocates a fresh one.
func (dc *DataCenter) allocCohort() *lifeCohort {
	if n := len(dc.cohortFree); n > 0 {
		c := dc.cohortFree[n-1]
		dc.cohortFree[n-1] = nil
		dc.cohortFree = dc.cohortFree[:n-1]
		return c
	}
	return &lifeCohort{dc: dc}
}

// scheduleLifecycle enrolls a new instance in the current nursery cohort,
// opening one (and arming its boundary event) when this is the first
// creation of the instant. No-op when both hazards are zero or the region
// runs the legacy sweep.
func (dc *DataCenter) scheduleLifecycle(inst *Instance, now simtime.Time) {
	rate := dc.churnHazard + dc.preemptHazard
	if rate <= 0 || dc.profile.LegacySweeps {
		return
	}
	if dc.nursery == nil || dc.nurseryAt != now {
		dc.nursery = dc.allocCohort()
		dc.nurseryAt = now
		dc.platform.sched.ArmHandlerAfter(&dc.nursery.ev, lifecycleInterval, dc.nursery)
	}
	dc.nursery.insts = append(dc.nursery.insts, inst)
}

// resumeLifecycle re-arms the hazard of a warm-reused instance whose timer
// died while it was idle. No immunity: the instance is not new, and the
// memoryless resume is exactly the suspended-hazard semantics. An instance
// reactivated before its immunity boundary is still covered by its nursery
// cohort, which arms it at the boundary.
func (dc *DataCenter) resumeLifecycle(inst *Instance, now simtime.Time) {
	rate := dc.churnHazard + dc.preemptHazard
	if rate <= 0 || dc.profile.LegacySweeps || (inst.lifeEvent != nil && inst.lifeEvent.Pending()) {
		return
	}
	if now.Sub(inst.createdAt) < lifecycleInterval {
		return
	}
	dc.armLifecycle(inst, inst.lifecycleDelay(rate))
}

// lifeSlabSize is the chunk size of the data center's lifecycle-event pool.
const lifeSlabSize = 512

// allocLifeEvent leases a timer slot from the pool: the free list first,
// then the current slab chunk. Slots recycle through terminate, so the
// steady-state allocation cost of the kernel's timers is zero no matter how
// many instances churn through the region.
func (dc *DataCenter) allocLifeEvent() *simtime.Event {
	if n := len(dc.lifeFree); n > 0 {
		e := dc.lifeFree[n-1]
		dc.lifeFree[n-1] = nil
		dc.lifeFree = dc.lifeFree[:n-1]
		return e
	}
	if len(dc.lifeSlab) == 0 {
		dc.lifeSlab = make([]simtime.Event, lifeSlabSize)
	}
	e := &dc.lifeSlab[0]
	dc.lifeSlab = dc.lifeSlab[1:]
	return e
}

// armLifecycle schedules the instance's next lifecycle firing on the
// instance's pooled intrusive event — zero steady-state allocations per arm,
// the instance itself is the simtime.Handler — so terminate can cancel it: a
// dead instance must not leave a stale entry degrading every later heap
// operation.
func (dc *DataCenter) armLifecycle(inst *Instance, delay time.Duration) {
	if inst.lifeEvent == nil {
		inst.lifeEvent = dc.allocLifeEvent()
	}
	dc.platform.sched.ArmHandlerAfter(inst.lifeEvent, delay, inst)
}

// cancelLifecycle removes the instance's pending timer, if any, and returns
// the slot to the pool. Only terminate may call it: the slot is reused by
// the next arm, so no stale pointer to it may survive.
func (dc *DataCenter) cancelLifecycle(inst *Instance) {
	e := inst.lifeEvent
	if e == nil {
		return
	}
	dc.platform.sched.Cancel(e)
	inst.lifeEvent = nil
	dc.lifeFree = append(dc.lifeFree, e)
}

// HandleEvent dispatches the instance's intrusive timers (the Instance is
// the simtime.Handler for both its idle reaper and its lifecycle timer).
//
// The idle reaper (termEvent) terminates the instance if it is still idle
// and still due — a warm reactivation after the arm leaves the event in
// place, and this check is what makes the stale firing a no-op.
//
// The churn/preemption timer (lifeEvent): idleness lets the timer die (no
// hazard while disconnected; activate re-arms), and an active instance
// suffers whichever competing risk the type draw picks — churn recycles it
// onto a policy-directed host, preemption terminates it without replacement.
func (i *Instance) HandleEvent(e *simtime.Event, now simtime.Time) {
	if e == &i.termEvent {
		if i.state == StateIdle && i.termAt == now {
			i.terminate(now)
		}
		return
	}
	if i.state != StateActive {
		return
	}
	dc := i.service.account.dc
	rate := dc.churnHazard + dc.preemptHazard
	churn := dc.churnHazard > 0
	if churn && dc.preemptHazard > 0 {
		// Competing risks: the event is a churn with probability λc/(λc+λp).
		churn = i.lifeU()*rate < dc.churnHazard
	}
	if churn {
		// recycle creates the replacement through createInstance, which arms
		// a fresh timer with full immunity — a replacement can never be hit
		// in the interval it was born, unlike under the legacy sweep.
		i.service.recycle(i, now)
		return
	}
	i.terminate(now)
	dc.faultCounters.Preemptions++
}
