package faas

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// TestPlatformInvariantsUnderRandomOps drives the platform through random
// operation sequences (launch, disconnect, advance, terminate across several
// services) and checks structural invariants after every step:
//
//   - every live instance is attached to exactly the host it reports;
//   - no terminated instance remains attached to any host;
//   - the per-service instance list contains no terminated entries;
//   - billing counters never decrease.
func TestPlatformInvariantsUnderRandomOps(t *testing.T) {
	check := func(dc *DataCenter, acct *Account) error {
		for _, svc := range acct.svcSeq {
			for _, inst := range svc.insts {
				if inst == nil {
					continue
				}
				if inst.state == StateTerminated {
					t.Fatalf("terminated instance %s still listed in service", inst.ID())
				}
				if inst.hostSlot >= len(inst.host.instances) || inst.host.instances[inst.hostSlot] != inst {
					t.Fatalf("instance %s not attached to its host", inst.ID())
				}
			}
		}
		for _, h := range dc.hosts {
			for _, inst := range h.instances {
				if inst.state == StateTerminated {
					t.Fatalf("host %d retains terminated instance %s", h.id, inst.ID())
				}
			}
		}
		return nil
	}

	f := func(seed uint16, rawOps []uint16) bool {
		pl := MustPlatform(uint64(seed)+500, testProfile())
		dc := pl.MustRegion("test-region")
		acct := dc.Account("stress")
		names := []string{"s0", "s1", "s2"}
		for _, n := range names {
			acct.DeployService(n, ServiceConfig{})
		}
		var lastCPU float64
		for _, raw := range rawOps {
			svc := acct.services[names[int(raw>>8)%len(names)]]
			switch raw % 4 {
			case 0:
				n := int(raw%97) + 1
				if _, err := svc.Launch(n); err != nil {
					return false
				}
			case 1:
				svc.Disconnect()
			case 2:
				pl.Scheduler().Advance(time.Duration(raw%600) * time.Second)
			case 3:
				svc.TerminateAll()
			}
			check(dc, acct)
			bill := acct.Bill()
			if bill.VCPUSeconds < lastCPU {
				t.Fatalf("billing decreased: %v -> %v", lastCPU, bill.VCPUSeconds)
			}
			lastCPU = bill.VCPUSeconds
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Launching while already connected keeps existing active instances.
func TestRelaunchKeepsActiveInstances(t *testing.T) {
	dc := newTestDC(t, 40)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	first, err := svc.Launch(30)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Launch(50)
	if err != nil {
		t.Fatal(err)
	}
	// All 30 active instances must be reused within the 50.
	set := make(map[string]bool)
	for _, inst := range second {
		set[inst.ID()] = true
	}
	for _, inst := range first {
		if !set[inst.ID()] {
			t.Errorf("active instance %s dropped on scale-out", inst.ID())
		}
	}
	if got := len(svc.ActiveInstances()); got != 50 {
		t.Errorf("active = %d, want 50", got)
	}
}

// Scale-in: launching fewer connections than are active leaves the rest
// active (connections are what the caller holds; Launch(n) ensures at least
// n). The extra instances idle out only when the caller disconnects.
func TestDisconnectIdempotent(t *testing.T) {
	dc := newTestDC(t, 41)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(20); err != nil {
		t.Fatal(err)
	}
	svc.Disconnect()
	idleBefore := svc.IdleCount()
	svc.Disconnect() // second disconnect must be a no-op
	if svc.IdleCount() != idleBefore {
		t.Error("double disconnect changed idle count")
	}
	dc.Scheduler().Advance(20 * time.Minute)
	if len(svc.Instances()) != 0 {
		t.Errorf("%d instances survived the idle reaper", len(svc.Instances()))
	}
}

func TestNewAccountQuota(t *testing.T) {
	p := testProfile()
	p.NewAccountQuota = 10
	pl := MustPlatform(42, p)
	dc := pl.MustRegion("test-region")
	acct := dc.Account("fresh")
	svc := acct.DeployService("s", ServiceConfig{})
	if _, err := svc.Launch(11); err == nil {
		t.Error("fresh account exceeded its quota")
	}
	if _, err := svc.Launch(10); err != nil {
		t.Errorf("launch at quota failed: %v", err)
	}
	acct.Mature()
	if _, err := svc.Launch(500); err != nil {
		t.Errorf("mature account still capped: %v", err)
	}
	if acct.Quota() != p.MaxInstancesPerService {
		t.Errorf("mature quota = %d", acct.Quota())
	}
}

func TestProbeContention(t *testing.T) {
	dc := newTestDC(t, 43)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	insts, err := svc.Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	// Find two co-located instances.
	byHost := make(map[HostID][]*Instance)
	for _, inst := range insts {
		id, _ := inst.HostID()
		byHost[id] = append(byHost[id], inst)
	}
	var a, b *Instance
	for _, group := range byHost {
		if len(group) >= 2 {
			a, b = group[0], group[1]
			break
		}
	}
	if a == nil {
		t.Fatal("no co-located pair")
	}
	// With no workload set, probes mostly read zero.
	zeros := 0
	for i := 0; i < 100; i++ {
		u, err := ProbeContention(a)
		if err != nil {
			t.Fatal(err)
		}
		if u == 0 {
			zeros++
		}
	}
	if zeros < 90 {
		t.Errorf("only %d/100 quiet probes with no workload", zeros)
	}
	// With the neighbor executing, every probe reads its pressure.
	b.SetWorkload(func(simtime.Time) bool { return true })
	for i := 0; i < 20; i++ {
		u, err := ProbeContention(a)
		if err != nil {
			t.Fatal(err)
		}
		if u < 1 {
			t.Fatal("probe missed an executing co-resident workload")
		}
	}
	// The prober never observes itself.
	a.SetWorkload(func(simtime.Time) bool { return true })
	b.SetWorkload(nil)
	selfHits := 0
	for i := 0; i < 100; i++ {
		u, err := ProbeContention(a)
		if err != nil {
			t.Fatal(err)
		}
		if u > 0 {
			selfHits++
		}
	}
	if selfHits > 10 {
		t.Errorf("prober observed its own workload %d/100 times", selfHits)
	}
	// Terminated probers fail.
	svc.TerminateAll()
	if _, err := ProbeContention(a); err == nil {
		t.Error("probe from terminated instance succeeded")
	}
}

func TestRandomPlacementDefense(t *testing.T) {
	p := testProfile()
	p.Policy = RandomUniformPolicy{}
	pl := MustPlatform(60, p)
	dc := pl.MustRegion("test-region")

	// Two accounts' launches under random placement are no longer confined
	// to disjoint base pools: footprints scatter across the whole fleet.
	ia, err := dc.Account("a").DeployService("s", ServiceConfig{}).Launch(300)
	if err != nil {
		t.Fatal(err)
	}
	ha := hostSet(ia)
	if len(ha) < p.NumHosts/6 {
		t.Errorf("random placement used only %d hosts", len(ha))
	}
	// Repeat launches explore new hosts: cumulative footprint grows fast,
	// unlike the flat base-host behavior.
	svc := dc.Account("a").DeployService("s2", ServiceConfig{})
	cumulative := make(map[HostID]bool)
	var first int
	for l := 0; l < 3; l++ {
		insts, err := svc.Launch(300)
		if err != nil {
			t.Fatal(err)
		}
		for id := range hostSet(insts) {
			cumulative[id] = true
		}
		if l == 0 {
			first = len(cumulative)
		}
		svc.Disconnect()
		dc.Scheduler().Advance(45 * time.Minute)
	}
	if len(cumulative) < first*3/2 {
		t.Errorf("random placement cumulative %d barely grew from %d", len(cumulative), first)
	}
	// And the defense's cost: almost every placement is image-cold.
	if f := svc.ColdHostFraction(); f < 0.5 {
		t.Errorf("cold host fraction = %v; random placement should destroy locality", f)
	}
}

func TestBasePlacementPreservesLocality(t *testing.T) {
	dc := newTestDC(t, 61)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	for l := 0; l < 4; l++ {
		if _, err := svc.Launch(300); err != nil {
			t.Fatal(err)
		}
		svc.Disconnect()
		dc.Scheduler().Advance(45 * time.Minute)
	}
	// With base-host affinity, later launches mostly reuse image-warm
	// hosts: the cold fraction decays toward (hosts used)/(instances).
	if f := svc.ColdHostFraction(); f > 0.4 {
		t.Errorf("cold host fraction = %v under affinity placement", f)
	}
}

func TestStartupLatencyGen1FasterThanGen2(t *testing.T) {
	dc := newTestDC(t, 70)
	acct := dc.Account("a")
	measure := func(gen sandbox.Gen, name string) (median, max time.Duration) {
		svc := acct.DeployService(name, ServiceConfig{Gen: gen})
		// Warm the image caches first so the comparison isolates the
		// sandbox startup (the §2.3 difference), not the image pull.
		if _, err := svc.Launch(200); err != nil {
			t.Fatal(err)
		}
		svc.Disconnect()
		dc.Scheduler().Advance(45 * time.Minute)
		insts, err := svc.Launch(200)
		if err != nil {
			t.Fatal(err)
		}
		var lats []time.Duration
		for _, inst := range insts {
			l := inst.StartupLatency()
			if l <= 0 {
				t.Fatalf("non-positive startup latency %v", l)
			}
			lats = append(lats, l)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2], lats[len(lats)-1]
	}
	g1med, _ := measure(sandbox.Gen1, "g1")
	g2med, _ := measure(sandbox.Gen2, "g2")
	if g2med < g1med*3 {
		t.Errorf("Gen2 median startup %v not clearly slower than Gen1 %v", g2med, g1med)
	}
}

func TestWarmHostsStartFaster(t *testing.T) {
	dc := newTestDC(t, 71)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	first, err := svc.Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	med := func(insts []*Instance) time.Duration {
		var lats []time.Duration
		for _, inst := range insts {
			lats = append(lats, inst.StartupLatency())
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2]
	}
	coldMed := med(first)
	svc.Disconnect()
	dc.Scheduler().Advance(45 * time.Minute)
	second, err := svc.Launch(200)
	if err != nil {
		t.Fatal(err)
	}
	warmMed := med(second)
	// The second launch reuses image-warm hosts: no pull, ~20x faster.
	if warmMed*5 > coldMed {
		t.Errorf("warm-launch median %v not clearly faster than cold %v", warmMed, coldMed)
	}
	// Warm REUSE (idle instances reconnected) has zero extra startup.
	svc.Disconnect()
	dc.Scheduler().Advance(30 * time.Second)
	third, err := svc.Launch(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range third {
		if inst.ReadyAt().After(dc.Now()) {
			t.Fatal("warm-reused instance not ready")
		}
	}
}
