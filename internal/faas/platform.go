package faas

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// Platform is the top-level simulated cloud: a shared virtual clock plus one
// or more data centers. All mutation happens on the single simulator thread;
// Platform is not safe for concurrent use (by design, for determinism).
type Platform struct {
	sched   *simtime.Scheduler
	rng     *randx.Source
	regions map[Region]*DataCenter
	order   []Region

	// markSeq mints host-epoch tags (see Host.mark). Not an RNG stream and
	// never observable in simulation output; it only has to be unique per
	// operation within this platform.
	markSeq uint64
}

// nextMark returns a fresh host-epoch tag, distinct from every mark
// previously written to this platform's hosts.
func (p *Platform) nextMark() uint64 {
	p.markSeq++
	return p.markSeq
}

// NewPlatform builds a platform with the given root seed and region profiles.
// The same seed and profiles always produce an identical virtual world.
func NewPlatform(seed uint64, profiles ...RegionProfile) (*Platform, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("faas: platform needs at least one region profile")
	}
	p := &Platform{
		sched:   simtime.NewScheduler(0),
		rng:     randx.New(seed),
		regions: make(map[Region]*DataCenter, len(profiles)),
	}
	for _, prof := range profiles {
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		prof.normalize()
		if _, dup := p.regions[prof.Name]; dup {
			return nil, fmt.Errorf("faas: duplicate region %s", prof.Name)
		}
		dc := newDataCenter(p, prof)
		p.regions[prof.Name] = dc
		p.order = append(p.order, prof.Name)
	}
	return p, nil
}

// MustPlatform is NewPlatform, panicking on error; for tests and examples
// with static, known-good configurations.
func MustPlatform(seed uint64, profiles ...RegionProfile) *Platform {
	p, err := NewPlatform(seed, profiles...)
	if err != nil {
		panic(err)
	}
	return p
}

// Scheduler returns the platform's virtual clock. Callers advance time
// through it (e.g. to wait out launch intervals).
func (p *Platform) Scheduler() *simtime.Scheduler { return p.sched }

// Now returns the current virtual time.
func (p *Platform) Now() simtime.Time { return p.sched.Now() }

// Region returns the data center with the given name.
func (p *Platform) Region(r Region) (*DataCenter, error) {
	dc, ok := p.regions[r]
	if !ok {
		return nil, fmt.Errorf("faas: unknown region %s", r)
	}
	return dc, nil
}

// MustRegion is Region, panicking on an unknown name.
func (p *Platform) MustRegion(r Region) *DataCenter {
	dc, err := p.Region(r)
	if err != nil {
		panic(err)
	}
	return dc
}

// Regions lists the configured regions in creation order.
func (p *Platform) Regions() []Region { return append([]Region(nil), p.order...) }

// Seed returns the world seed the platform was built from. Observers use it
// to derive their own randomness streams (via randx.Derive labels disjoint
// from the platform's) without touching platform state.
func (p *Platform) Seed() uint64 { return p.rng.Seed() }

// DataCenter is one simulated region.
type DataCenter struct {
	platform *Platform
	profile  RegionProfile
	rng      *randx.Source
	hosts    []*Host
	// bootTimes holds every host's boot instant, sampled eagerly at
	// construction: boots come from one shared sequential stream (maintenance
	// batches correlate hosts), so they cannot be deferred per host without
	// changing draw order. They are cheap — everything else about a host
	// materializes lazily (see Host).
	bootTimes []simtime.Time
	// liveHosts counts materialized hosts (scale instrumentation).
	liveHosts int
	accounts  map[string]*Account
	acctSeq   []*Account // creation order, for deterministic iteration
	nextInst  int

	// instSlab bump-allocates Instance structs in chunks (allocInstance):
	// one heap allocation per instSlabSize creations. Slots are never reused
	// — experiment code may hold pointers to terminated instances — so every
	// *Instance stays valid forever.
	instSlab []Instance

	// Selection scratch shared by every noisy top-K decision in the region
	// (pool sampling, helper builds, ranked base selection). Region-level
	// rather than per-account: an account only samples a handful of times,
	// so per-account scratch never amortized — at fleet scale the scratch
	// itself was the dominant selection allocation. Safe because the
	// simulator is single-threaded and no selection nests inside another.
	scoreBuf []hostScore
	hostBuf  []*Host

	// matScratch and deriveScratch are reseed-in-place Sources for derived
	// streams that are drained and discarded within one call (host
	// materialization draws, account/service pool sampling, recycle draws).
	// Two separate scratches because materialization can trigger inside a
	// placement that is still consuming deriveScratch. Each is dead outside
	// the call that reseeds it.
	matScratch    randx.Source
	deriveScratch randx.Source

	// Per-instance lifecycle kernel (the default; profile.LegacySweeps
	// restores the historical hourly scan): churnHazard and preemptHazard are
	// the exponential rates per hour matching the sweep's per-hour Bernoulli
	// probabilities, and lifeSeed addresses the stateless per-instance draw
	// streams (randx.Mix3(lifeSeed, instance seq, draw#)); lifeMix1 is the
	// precomputed first mixer round of that hash (randx.MixInit(lifeSeed)).
	churnHazard   float64
	preemptHazard float64
	lifeSeed      uint64
	lifeMix1      uint64
	// lifeSlab/lifeFree pool the kernel's per-instance timer slots (see
	// allocLifeEvent): slabs amortize allocation, the free list recycles
	// slots of terminated instances. nursery is the cohort collecting the
	// instances created at nurseryAt (one boundary event per creation
	// instant), and cohortFree recycles fired cohorts.
	lifeSlab   []simtime.Event
	lifeFree   []*simtime.Event
	nursery    *lifeCohort
	nurseryAt  simtime.Time
	cohortFree []*lifeCohort

	// policy is the region's placement engine, resolved once from the
	// profile at construction; all placement decisions flow through it.
	policy PlacementPolicy
	// tracer, when installed, receives every placement decision; traceSeq
	// numbers the events. deprecationWarned latches the one-shot
	// TraceDeprecated event for profiles built from deprecated knobs.
	tracer            PlacementTracer
	traceSeq          uint64
	deprecationWarned bool
	// channelShimWarned latches the one-shot TraceDeprecated event of the
	// legacy ContentionRound shim.
	channelShimWarned bool

	// faults is the region's injected-failure plan; the dedicated fault
	// streams below are derived unconditionally (derivation consumes no
	// parent randomness) but drawn from only while the matching rate is
	// positive, which is what keeps a zero plan byte-identical.
	faults          FaultPlan
	launchFaultRNG  *randx.Source
	preemptRNG      *randx.Source
	channelFaultRNG *randx.Source
	probeFaultRNG   *randx.Source
	faultCounters   FaultCounters

	// traffic is the region's background-tenant engine (nil when the
	// profile's TrafficModel is disabled); liveInstances counts live
	// (active + idle resident) instances region-wide — the numerator of the
	// Utilization observable the congestion plane and experiments read.
	traffic       *trafficState
	liveInstances int
}

func newDataCenter(p *Platform, prof RegionProfile) *DataCenter {
	dc := &DataCenter{
		platform: p,
		profile:  prof,
		rng:      p.rng.Derive("dc", string(prof.Name)),
		accounts: make(map[string]*Account),
		policy:   policyFor(prof),
		faults:   prof.Faults,
	}
	dc.launchFaultRNG = dc.rng.Derive("faults", "launch")
	dc.preemptRNG = dc.rng.Derive("faults", "preempt")
	dc.channelFaultRNG = dc.rng.Derive("faults", "channel")
	dc.probeFaultRNG = dc.rng.Derive("faults", "probe")
	dc.bootTimes = sampleBootTimes(dc.rng.Derive("boots"), prof, p.sched.Now())
	// One contiguous backing array of host shells: identity fields only, no
	// RNG state, no maps. A 10⁵-host region costs two allocations here; the
	// expensive parts of a host are drawn on first contact (Host.materialize).
	store := make([]Host, prof.NumHosts)
	dc.hosts = make([]*Host, prof.NumHosts)
	for i := range store {
		initHostShell(&store[i], dc, i)
		dc.hosts[i] = &store[i]
	}
	if prof.LegacySweeps {
		dc.scheduleChurnSweep()
	} else {
		dc.initLifecycleKernel()
	}
	if prof.Traffic.Enabled() {
		dc.initTraffic()
	}
	return dc
}

// MaterializedHosts reports how many hosts have drawn their heavy state —
// ground-truth instrumentation for the lazy-fleet claim (an idle region costs
// nothing; a lightly used one pays only for the hosts it touched).
func (dc *DataCenter) MaterializedHosts() int { return dc.liveHosts }

// Profile returns the region profile the data center was built from.
func (dc *DataCenter) Profile() RegionProfile { return dc.profile }

// Policy returns the region's resolved placement policy.
func (dc *DataCenter) Policy() PlacementPolicy { return dc.policy }

// Platform returns the platform the data center belongs to.
func (dc *DataCenter) Platform() *Platform { return dc.platform }

// Scheduler returns the platform's virtual clock.
func (dc *DataCenter) Scheduler() *simtime.Scheduler { return dc.platform.sched }

// Now returns the current virtual time.
func (dc *DataCenter) Now() simtime.Time { return dc.platform.sched.Now() }

// Region returns the data center's name.
func (dc *DataCenter) Region() Region { return dc.profile.Name }

// TrueHostCount returns the real fleet size (ground truth; the paper can
// only ever estimate a lower bound for it).
func (dc *DataCenter) TrueHostCount() int { return len(dc.hosts) }

// Account returns the account with the given identity, creating it on first
// use. Account identity determines base-host assignment deterministically.
func (dc *DataCenter) Account(id string) *Account {
	if a, ok := dc.accounts[id]; ok {
		return a
	}
	a := newAccount(dc, id)
	dc.accounts[id] = a
	dc.acctSeq = append(dc.acctSeq, a)
	return a
}

// instSlabSize is the chunk size of the data center's instance slab.
const instSlabSize = 512

// allocInstance returns a zeroed Instance slot from the slab. Creation is
// the simulator's hottest path; the slab amortizes it to one heap
// allocation per instSlabSize instances, and because slots are never
// recycled, pointers held by experiment code outlive termination safely.
func (dc *DataCenter) allocInstance() *Instance {
	if len(dc.instSlab) == 0 {
		dc.instSlab = make([]Instance, instSlabSize)
	}
	inst := &dc.instSlab[0]
	dc.instSlab = dc.instSlab[1:]
	return inst
}

// formatInstanceID renders the platform-assigned instance identity,
// "<account>/<service>-<seq %06d>". It runs lazily — Instance.ID caches the
// result on first call — because most instances in a fleet-scale world are
// never asked for their ID; hand-formatting keeps the forced path cheap.
func formatInstanceID(svc *Service, seq uint32) string {
	var b strings.Builder
	b.Grow(len(svc.account.id) + len(svc.name) + 8)
	b.WriteString(svc.account.id)
	b.WriteByte('/')
	b.WriteString(svc.name)
	b.WriteByte('-')
	var tmp [20]byte
	digits := strconv.AppendInt(tmp[:0], int64(seq), 10)
	for i := len(digits); i < 6; i++ {
		b.WriteByte('0')
	}
	b.Write(digits)
	return b.String()
}

// scheduleChurnSweep installs the hourly instance-recycling sweep that
// models the platform occasionally moving long-running instances (it is what
// truncates fingerprint histories in the week-long Fig. 5 measurement). The
// same sweep carries the fault plane's preemption pass: preempted instances
// are terminated without replacement — the tenant's connection is simply
// gone.
//
// FROZEN LEGACY PATH (profile.LegacySweeps): the per-instance event kernel in
// kernel.go replaced this scan. It is kept byte-for-byte so the golden-digest
// test can prove the historical behavior is still reachable unchanged; do not
// edit it. Known (historical) quirk, preserved deliberately: the preemption
// pass re-iterates svc.insts after the recycle pass appended replacement
// instances, so a replacement can be preempted in the same sweep it was born.
// The kernel fixes this with a one-interval immunity.
func (dc *DataCenter) scheduleChurnSweep() {
	churn := dc.profile.InstanceChurnPerHour
	preempt := dc.faults.PreemptionRatePerHour
	if churn <= 0 && preempt <= 0 {
		return
	}
	churnRNG := dc.rng.Derive("churn")
	// victims is collect-first scratch shared across sweeps (recycling
	// mutates the instance list mid-iteration otherwise).
	var victims []*Instance
	var sweep func(simtime.Time)
	sweep = func(now simtime.Time) {
		for _, acct := range dc.acctSeq {
			for _, svc := range acct.svcSeq {
				if churn > 0 {
					victims = victims[:0]
					for _, inst := range svc.insts {
						if inst != nil && inst.state == StateActive && churnRNG.Bool(churn) {
							victims = append(victims, inst)
						}
					}
					for _, inst := range victims {
						svc.recycle(inst, now)
					}
				}
				if preempt > 0 {
					victims = victims[:0]
					for _, inst := range svc.insts {
						if inst != nil && inst.state == StateActive && dc.preemptRNG.Bool(preempt) {
							victims = append(victims, inst)
						}
					}
					for _, inst := range victims {
						inst.terminate(now)
						dc.faultCounters.Preemptions++
					}
				}
			}
		}
		dc.platform.sched.After(time.Hour, sweep)
	}
	dc.platform.sched.After(time.Hour, sweep)
}

// ProbeContention is the extraction-step primitive: the probing instance
// measures the instantaneous contention on its host's shared resource. The
// result counts co-resident instances whose workload is executing right now,
// plus occasional background activity — the signal a co-located attacker
// uses to detect when a victim program runs (threat model step 2).
func ProbeContention(prober *Instance) (int, error) {
	if prober.state == StateTerminated {
		return 0, fmt.Errorf("faas: probe from terminated instance %s", prober.ID())
	}
	h := prober.host
	if h.ProbeFault() {
		return 0, fmt.Errorf("faas: contention probe from %s: %w", prober.ID(), ErrProbeFault)
	}
	now := h.dc.platform.sched.Now()
	units := 0
	for _, inst := range h.instances {
		if inst == prober {
			continue
		}
		if inst.workload != nil && inst.workload(now) {
			units++
		}
	}
	if h.noiseRNG.Bool(0.008) {
		units++
	}
	return units, nil
}

// Resource identifies a shared hardware resource usable as a covert
// channel.
type Resource int

const (
	// ResourceRNG is the hardware random number generator [27]: rarely used
	// by anyone else, so background contention appears in well under 1% of
	// rounds — the paper's low-noise channel of choice.
	ResourceRNG Resource = iota
	// ResourceMemBus is the memory bus [62], the channel earlier co-location
	// studies used: strong signal, but ordinary tenant memory traffic makes
	// background contention common, so tests need more rounds and higher
	// vote thresholds (Varadarajan et al. report several seconds per
	// pairwise test on it).
	ResourceMemBus
	// ResourceLLC is the last-level cache (Zhao & Fletcher): an order of
	// magnitude more bandwidth and much shorter rounds than the RNG, but the
	// cache is shared with every co-resident workload, so its error rates
	// grow with host occupancy — see the channel-model registry in channel.go.
	ResourceLLC
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case ResourceRNG:
		return "rng"
	case ResourceMemBus:
		return "membus"
	case ResourceLLC:
		return "llc"
	default:
		return "resource?"
	}
}

// ContentionRound executes one synchronized pressure round on the hardware
// RNG among the given instances — the paper's default channel.
//
// Deprecated: name the channel explicitly with ContentionRoundOn (or drive a
// covert.Channel). The shim stays for historical callers and emits a one-shot
// TraceDeprecated placement event per region, mirroring the RandomPlacement
// retirement.
func ContentionRound(parts []*Instance) ([]int, error) {
	for _, inst := range parts {
		if inst.host == nil {
			continue
		}
		dc := inst.host.dc
		if !dc.channelShimWarned {
			dc.channelShimWarned = true
			dc.trace(PlacementEvent{Kind: TraceDeprecated})
		}
		break
	}
	return ContentionRoundOn(ResourceRNG, parts)
}

// ContentionRoundOn executes one synchronized pressure round on the given
// shared resource: every live participant hammers it, then measures the
// contention level it observes. The value returned for each participant is
// the number of live participants resident on its host (including itself)
// plus possible background activity from unrelated tenants (frequent on the
// memory bus, <1% of rounds on the RNG, §4.4.1). Terminated instances
// generate no pressure and observe nothing — from the attacker tooling's
// perspective their connection is simply gone, so they always test negative.
//
// This is the primitive the covert channel builds CTest from. It is the only
// cross-instance observable the platform exposes, mirroring the real
// attacker's position.
func ContentionRoundOn(res Resource, parts []*Instance) ([]int, error) {
	if len(parts) == 0 {
		return nil, nil
	}
	return ContentionRoundOnInto(res, parts, make([]int, len(parts)))
}

// ContentionRoundOnInto is ContentionRoundOn writing its observations into
// out (grown if needed), so round-per-round callers like covert.Tester can
// run the channel without allocating. Per-host bookkeeping rides on host
// epoch marks instead of per-round maps; all participants must live on one
// Platform (true for any real instance set — instances never migrate across
// platforms).
func ContentionRoundOnInto(res Resource, parts []*Instance, out []int) ([]int, error) {
	if len(parts) == 0 {
		return out[:0], nil
	}
	if cap(out) < len(parts) {
		out = make([]int, len(parts))
	}
	out = out[:len(parts)]
	if !res.Valid() {
		return nil, fmt.Errorf("faas: unknown channel resource %d", int(res))
	}
	// Pointer into the registry: the round loop reads the model once per
	// host per round, and a by-value ChannelModel copy per call is measurable
	// on the pairwise-verification path.
	model := &channelModels[res]
	var mark uint64
	for _, inst := range parts {
		if inst.state == StateTerminated {
			continue
		}
		h := inst.host
		if mark == 0 {
			mark = h.dc.platform.nextMark()
		}
		if h.mark != mark {
			h.mark = mark
			h.roundCount = 0
			h.roundBG = -1
			h.roundDrop = 0
			h.updateMisfire(res)
		}
		h.roundCount++
	}
	// Background usage by unrelated tenants, decided once per host per
	// round. Each host draws from its own noise stream, so per-host draw
	// counts — not cross-host ordering — are what determinism depends on:
	// load-insensitive channels (RNG, memory bus) draw exactly one Bool per
	// host per round, keeping their historical draw sequences frozen, while
	// load-sensitive channels (the LLC) scale the false-positive odds with
	// bystander occupancy and add one drop draw per host per round.
	for i, inst := range parts {
		if inst.state == StateTerminated {
			out[i] = 0
			continue
		}
		h := inst.host
		if h.roundBG < 0 {
			h.roundBG = 0
			if h.noiseRNG.Bool(model.roundNoise(h)) {
				h.roundBG = 1
			}
			if model.LoadDrop > 0 && h.noiseRNG.Bool(model.roundDrop(h)) {
				h.roundDrop = 1
			}
		}
		units := h.roundCount + int(h.roundBG)
		// An active misfire episode corrupts the observation: a phantom
		// contention unit (false positive) or a dead read (false negative).
		// A load-induced drop reads dead the same way.
		if h.misfireBias[res] > 0 {
			units++
		} else if h.misfireBias[res] < 0 || h.roundDrop > 0 {
			units = 0
		}
		out[i] = units
	}
	return out, nil
}
