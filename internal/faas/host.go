package faas

import (
	"math"
	"time"

	"eaao/internal/cpu"
	"eaao/internal/randx"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
	"eaao/internal/tsc"
)

// HostID identifies a physical host within one data center. Host identities
// are simulator-internal ground truth: attack code never sees them and must
// infer co-residency through fingerprints and covert channels.
type HostID int

// Host is one physical machine in a data center.
//
// Hosts are materialized lazily: construction fills only the identity fields
// placement ranking reads (id, desirability, group), and the heavy state —
// CPU model, TSC counter, noise character, per-host RNG streams, the
// instance map — is drawn on first contact (an instance attaching, or a
// HostEnv accessor). Because every heavy field comes from the host's own
// derived stream ("host", i), the moment of materialization cannot change
// what the host becomes, so a fleet where only 5% of hosts ever serve an
// instance pays 5% of the construction cost with identical outcomes.
type Host struct {
	id HostID
	dc *DataCenter
	// ready flags that the heavy state below has been drawn (materialize).
	ready   bool
	model   cpu.Model
	counter tsc.Counter
	noise   tsc.NoiseProfile
	// refinedHz is the host kernel's boot-time TSC frequency refinement,
	// rounded to 1 kHz (what KVM exports to Gen 2 guests).
	refinedHz float64
	// desirability in [0,1): scheduler-facing score rank; lower-indexed
	// (more desirable) hosts are preferred by both base-pool assignment and
	// helper expansion, which is what correlates attacker and victim
	// footprints.
	desirability float64
	// group is the placement group for base-host assignment.
	group int
	// noiseRNG drives guest measurement noise and covert-channel background
	// activity on this host.
	noiseRNG *randx.Source

	// instances currently resident (active or idle, not terminated), in
	// arrival order with swap-removal (Instance.hostSlot tracks the index).
	// A slice instead of a set: every consumer either counts or filters the
	// whole collection — none depends on order — and attach/detach on the
	// instance-creation hot path stay allocation-free.
	instances []*Instance

	// mark is an epoch tag (Platform.nextMark) letting hot paths answer
	// "have I touched this host during the current operation?" without a
	// per-call map allocation. A mark value is meaningful only inside the
	// single operation that minted it.
	mark uint64
	// roundCount, roundBG and roundDrop are contention-round scratch, valid
	// only while mark holds the current round's epoch: the number of live
	// participants resident here, the once-per-round background draw (-1 =
	// not drawn), and whether a load-sensitive channel dropped the whole
	// round dead on this host.
	roundCount int
	roundBG    int8
	roundDrop  int8

	// Covert-channel misfire state (fault plane), per resource family:
	// misfireBias is the bias of the current misfire window (+1 phantom
	// contention, -1 dead reads, 0 healthy) and misfireCheckAt is the instant
	// the window expires and a new episode may be drawn. Entries stay zero
	// while the matching channel's fault rates are zero — no draws, no
	// behavior change.
	misfireBias    [NumResources]int8
	misfireCheckAt [NumResources]simtime.Time
}

// initHostShell fills host i's identity fields — everything placement ranking
// and base-pool assignment read. Shells draw no randomness; heavy state waits
// for materialize.
func initHostShell(h *Host, dc *DataCenter, i int) {
	h.id = HostID(i)
	h.dc = dc
	h.desirability = float64(i%dc.profile.NumHosts) / float64(dc.profile.NumHosts)
	h.group = i % dc.profile.PlacementGroups
}

// materialize draws the host's heavy state from its own deterministic
// sub-stream ("host", i): CPU model, boot-anchored TSC, noise character, the
// kernel's frequency refinement, the per-host noise RNG, and the resident-
// instance map. The draw order inside the stream is frozen (it predates lazy
// materialization), and the stream is independent of every other host's, so
// materializing hosts in any order — or never — yields identical worlds.
func (h *Host) materialize() {
	if h.ready {
		return
	}
	h.ready = true
	dc := h.dc
	dc.liveHosts++
	i := int(h.id)
	// The indexed stream is drained within this call (noiseRNG below is its
	// own derived heap Source); reseeding the region scratch in place avoids
	// one 5 KiB state allocation per materialized host.
	rng := dc.rng.DeriveIndexedInto(&dc.matScratch, "host", i)
	h.model = cpu.Catalog[rng.WeightedIndex(cpu.DefaultFleetWeights)]
	h.counter = tsc.NewCounter(rng, dc.bootTimes[i], h.model.ReportedTSCHz())

	h.noise = tsc.DefaultNoise()
	if rng.Bool(dc.profile.ProblematicHostFrac) {
		h.noise = tsc.ProblematicNoise(rng.Derive("problematic"))
	}

	// Linux refines the TSC frequency once at boot to 1 kHz precision; the
	// refinement lands within a few hundred Hz of the true rate.
	refineErr := rng.Normal(0, 150)
	h.refinedHz = math.Round((float64(h.counter.ActualHz)+refineErr)/1000) * 1000

	h.noiseRNG = rng.Derive("noise")
}

// sampleBootTimes draws boot instants for n hosts: a mix of independent
// reboots spread over the past MaxBootAge and clustered maintenance batches
// in which many hosts reboot within the same hour. All boots are strictly in
// the virtual past.
func sampleBootTimes(rng *randx.Source, p RegionProfile, start simtime.Time) []simtime.Time {
	n := p.NumHosts
	out := make([]simtime.Time, n)
	age := float64(p.MaxBootAge)

	// A handful of maintenance windows, uniformly over the age span.
	nBatches := n/40 + 1
	batches := make([]float64, nBatches)
	for i := range batches {
		batches[i] = rng.Range(0.02, 1) * age
	}

	for i := 0; i < n; i++ {
		var back float64 // how long ago the host booted, in ns
		if rng.Bool(p.MaintenanceBatchFrac) {
			// Rolling maintenance reboots a batch within a few minutes of
			// each other — the near-identical boot times that cause false
			// positives at coarse rounding precisions (Fig. 4, right end).
			b := batches[rng.Intn(nBatches)]
			back = b + rng.Normal(0, float64(8*time.Minute))
			if back < float64(time.Hour) {
				back = float64(time.Hour) + rng.Range(0, float64(time.Hour))
			}
		} else {
			back = rng.Range(float64(time.Hour), age)
		}
		out[i] = start.Add(-time.Duration(back))
	}
	return out
}

// ID returns the host's simulator-internal identity (ground truth for
// experiment scoring only).
func (h *Host) ID() HostID { return h.id }

// Model returns the host CPU model. It also satisfies sandbox.HostEnv.
func (h *Host) Model() cpu.Model { h.materialize(); return h.model }

// Counter returns the host TSC (sandbox.HostEnv).
func (h *Host) Counter() tsc.Counter { h.materialize(); return h.counter }

// Noise returns the host's measurement-noise profile (sandbox.HostEnv).
func (h *Host) Noise() tsc.NoiseProfile { h.materialize(); return h.noise }

// RefinedTSCHz returns the kernel-refined TSC frequency (sandbox.HostEnv).
func (h *Host) RefinedTSCHz() float64 { h.materialize(); return h.refinedHz }

// NoiseRNG returns the host's noise stream (sandbox.HostEnv).
func (h *Host) NoiseRNG() *randx.Source { h.materialize(); return h.noiseRNG }

// Mitigations returns the region's TSC defenses (sandbox.HostEnv).
func (h *Host) Mitigations() sandbox.Mitigations { return h.dc.profile.Mitigations }

// Now returns the current virtual time (sandbox.HostEnv).
func (h *Host) Now() simtime.Time { return h.dc.platform.sched.Now() }

// ProbeFault reports whether a fingerprint or contention probe on this host
// fails at this instant (sandbox.HostEnv). It draws from the region's
// dedicated probe-fault stream only while the configured rate is positive,
// so a zero-valued fault plan never perturbs the simulation.
func (h *Host) ProbeFault() bool {
	r := h.dc.faults.ProbeFailureRate
	if r <= 0 || !h.dc.probeFaultRNG.Bool(r) {
		return false
	}
	h.dc.faultCounters.ProbeFaults++
	return true
}

// updateMisfire refreshes the host's misfire state for one covert-channel
// resource family at the start of a contention round: while a window is open
// its bias stands; once it expires, a fresh episode is drawn from the channel
// fault stream. With both of the channel's rates zero this is a no-op (and
// draws nothing), so untargeted channels are never perturbed.
func (h *Host) updateMisfire(res Resource) {
	// Resolve the rates without copying the FaultPlan (ChannelRates takes a
	// value receiver): this runs once per host per contention round.
	f := &h.dc.faults
	r := f.PerChannel[res]
	if r.zero() {
		r.FalsePositiveRate = f.ChannelFalsePositiveRate
		r.FalseNegativeRate = f.ChannelFalseNegativeRate
	}
	if r.FalsePositiveRate <= 0 && r.FalseNegativeRate <= 0 {
		return
	}
	now := h.dc.platform.sched.Now()
	if now.Before(h.misfireCheckAt[res]) {
		return
	}
	h.misfireCheckAt[res] = now.Add(ChannelMisfireWindow)
	h.misfireBias[res] = 0
	if r.FalsePositiveRate > 0 && h.dc.channelFaultRNG.Bool(r.FalsePositiveRate) {
		h.misfireBias[res] = 1
	} else if r.FalseNegativeRate > 0 && h.dc.channelFaultRNG.Bool(r.FalseNegativeRate) {
		h.misfireBias[res] = -1
	}
	if h.misfireBias[res] != 0 {
		h.dc.faultCounters.ChannelMisfires++
	}
}

// BootTime returns the host's true boot instant (ground truth). Boot times
// are sampled eagerly for the whole fleet (they come from one shared stream),
// so reading one does not materialize the host.
func (h *Host) BootTime() simtime.Time { return h.dc.bootTimes[h.id] }

// ResidentCount returns how many non-terminated instances live on the host.
func (h *Host) ResidentCount() int { return len(h.instances) }

// servingResidents counts residents that are actively serving request demand:
// connected instances of an autoscaled service with demand > 0 (background
// tenants). Footprint instances pinned through Launch never set demand, so
// the count is zero on every host of a world without demand-driven
// neighbors. Called at most once per host per contention round (the cached
// roundBG/roundDrop draw), so the linear scan stays off the hot path.
func (h *Host) servingResidents() int {
	n := 0
	for _, inst := range h.instances {
		if inst.state == StateActive && inst.service.demand > 0 {
			n++
		}
	}
	return n
}

// residentOf counts non-terminated instances of one service on the host.
func (h *Host) residentOf(svc *Service) int {
	n := 0
	for _, inst := range h.instances {
		if inst.service == svc {
			n++
		}
	}
	return n
}

// attach registers an instance on the host, materializing it on first use.
func (h *Host) attach(inst *Instance) {
	h.materialize()
	inst.hostSlot = len(h.instances)
	h.instances = append(h.instances, inst)
}

// detach removes an instance from the host: swap the last resident into its
// slot. No consumer of h.instances is order-sensitive.
func (h *Host) detach(inst *Instance) {
	n := len(h.instances) - 1
	if inst.hostSlot > n || h.instances[inst.hostSlot] != inst {
		return
	}
	last := h.instances[n]
	h.instances[inst.hostSlot] = last
	last.hostSlot = inst.hostSlot
	h.instances[n] = nil
	h.instances = h.instances[:n]
}

// hostBitset is a HostID-indexed bit vector. Per-service host tracking
// (image locality) holds one of these per service; at fleet scale the
// byte-per-host representation it replaces was a measurable share of world
// construction, both bytes and zeroing time.
type hostBitset []uint64

func newHostBitset(n int) hostBitset { return make(hostBitset, (n+63)/64) }

func (b hostBitset) get(id HostID) bool { return b[uint(id)>>6]&(1<<(uint(id)&63)) != 0 }

func (b hostBitset) set(id HostID) { b[uint(id)>>6] |= 1 << (uint(id) & 63) }
