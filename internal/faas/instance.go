package faas

import (
	"fmt"
	"time"

	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// InstanceState is the lifecycle state of a container instance.
type InstanceState int

const (
	// StateActive means the instance is serving a connection and billing.
	StateActive InstanceState = iota
	// StateIdle means the instance has no connection; it is preserved for a
	// while (and may be reused warm) before the orchestrator terminates it.
	StateIdle
	// StateTerminated means the instance received SIGTERM and is gone.
	StateTerminated
)

// String returns "active", "idle", or "terminated".
func (s InstanceState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateIdle:
		return "idle"
	case StateTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// Instance is one container instance of a service.
//
// Instances live in per-data-center slab chunks (DataCenter.allocInstance):
// creation is the simulator's hottest path, so the struct is laid out to be
// born with zero per-instance heap allocations — the sandbox guest is
// embedded by value (guestStore), the instance ID string materializes only
// when someone asks for it, and both timers the instance ever needs are
// intrusive simtime events dispatched through the Instance's own
// simtime.Handler implementation.
type Instance struct {
	// id caches the formatted instance identity; empty until ID() first
	// builds it from (service, seq). Internal code must go through ID().
	id      string
	service *Service
	host    *Host
	guest   *sandbox.Guest
	state   InstanceState
	// slot is this instance's index in service.insts, maintained on append
	// and compaction so removal never scans or shifts the list. hostSlot is
	// the same idea for host.instances (swap-removal there).
	slot     int
	hostSlot int
	// seq is the instance's creation ordinal within its data center (also
	// the numeric tail of its ID); together with lifeDraws it addresses the
	// instance's stateless lifecycle-event stream (kernel.go) without
	// per-instance generator state. lifeBase pre-mixes the first two words
	// of that stream's hash — randx.MixStep(dc.lifeMix1, seq) — so each
	// lifecycle draw costs one mixer round instead of three. lifeEvent is
	// the intrusive churn/preemption timer, leased from the data center's
	// event pool on first arm and returned at termination.
	seq       uint32
	lifeDraws uint32
	lifeBase  uint64
	lifeEvent *simtime.Event

	// guestStore is the storage ID()'s guest points at; it rides in the
	// instance slab instead of being a separate allocation per creation.
	guestStore sandbox.Guest

	// termEvent is the intrusive idle-reaper timer: Disconnect and scale-in
	// cancel-and-arm it at termAt. A warm reactivation deliberately leaves a
	// pending reaper armed — the handler checks the instance is still idle
	// and still due, so a stale firing is a no-op, and the launch-abort
	// rollback path relies on the original timer surviving the
	// activate/goIdle round trip untouched.
	termEvent simtime.Event

	createdAt simtime.Time
	// readyAt is when the container finished starting and can serve its
	// first request: creation plus sandbox startup (fast for Gen 1 Linux
	// containers, slower for Gen 2 VMs, §2.3) plus an image pull when the
	// host had never run the service.
	readyAt   simtime.Time
	idleSince simtime.Time
	// termAt is the scheduled termination instant while idle; the idle
	// reaper checks that the instance is still idle and still due.
	termAt simtime.Time
	// activeSince tracks the start of the current billing span.
	activeSince simtime.Time

	// sigterm, if set, is invoked when the orchestrator terminates the
	// instance (the paper's Fig. 6 setup traps SIGTERM and reports the
	// time to an external collector).
	sigterm func(*Instance, simtime.Time)

	// pressuring marks the instance as currently loading the host RNG
	// during a covert-channel round.
	pressuring bool

	// workload, when set, reports whether the instance's program is
	// actively executing (pressuring shared resources) at a given instant;
	// used by the extraction demonstrator.
	workload func(simtime.Time) bool
	// cacheFootprint lists the LLC set groups the program touches while
	// executing.
	cacheFootprint []int
}

// ID returns the platform-assigned instance identity (visible to the tenant,
// like a Cloud Run instance ID; it reveals nothing about the host). The
// string is formatted on first use: most instances in a fleet-scale world
// are never asked for their ID, and skipping the eager build keeps creation
// allocation-free.
func (i *Instance) ID() string {
	if i.id == "" {
		i.id = formatInstanceID(i.service, i.seq)
	}
	return i.id
}

// Service returns the service this instance belongs to.
func (i *Instance) Service() *Service { return i.service }

// State returns the lifecycle state.
func (i *Instance) State() InstanceState { return i.state }

// CreatedAt returns when the instance was created.
func (i *Instance) CreatedAt() simtime.Time { return i.createdAt }

// ReadyAt returns when the instance finished its cold start and could serve
// its first request.
func (i *Instance) ReadyAt() simtime.Time { return i.readyAt }

// StartupLatency returns the instance's cold-start duration.
func (i *Instance) StartupLatency() time.Duration { return i.readyAt.Sub(i.createdAt) }

// Guest returns the sandboxed execution environment inside the instance.
// Attack code runs against this handle only. It returns an error if the
// instance has been terminated.
func (i *Instance) Guest() (*sandbox.Guest, error) {
	if i.state == StateTerminated {
		return nil, fmt.Errorf("faas: instance %s is terminated", i.ID())
	}
	return i.guest, nil
}

// MustGuest is Guest for call sites that have just launched the instance and
// hold the platform single-threaded; it panics on a terminated instance.
func (i *Instance) MustGuest() *sandbox.Guest {
	g, err := i.Guest()
	if err != nil {
		panic(err)
	}
	return g
}

// OnSIGTERM registers a callback invoked with the termination time when the
// orchestrator kills the instance. Registering replaces any prior callback.
func (i *Instance) OnSIGTERM(fn func(*Instance, simtime.Time)) { i.sigterm = fn }

// SetWorkload installs the victim-side activity model of an instance: fn
// reports whether the program is executing (and therefore pressuring the
// shared hardware resource) at a given instant. A nil fn clears it. This is
// the secret-dependent execution the threat model's extraction step spies
// on: the attacker never calls this — it can only observe contention.
func (i *Instance) SetWorkload(fn func(simtime.Time) bool) { i.workload = fn }

// HostID exposes the ground-truth host for experiment scoring. Real attackers
// have no such API; experiment code uses it only to validate fingerprints, in
// the role the covert-channel ground truth plays in the paper.
func (i *Instance) HostID() (HostID, bool) {
	if i.host == nil {
		return 0, false
	}
	return i.host.id, true
}

// terminate transitions the instance to StateTerminated, detaches it from
// its host, accrues final billing, and fires the SIGTERM callback.
func (i *Instance) terminate(now simtime.Time) {
	if i.state == StateTerminated {
		return
	}
	if i.state == StateActive {
		i.service.account.accrue(i, i.activeSince, now)
		i.service.activeCount--
	}
	i.service.account.dc.cancelLifecycle(i)
	i.service.account.dc.platform.sched.Cancel(&i.termEvent)
	i.service.account.dc.liveInstances--
	wasIdle := i.state == StateIdle
	i.state = StateTerminated
	i.host.detach(i)
	i.service.removeInstance(i)
	if wasIdle {
		// The platform reclaimed an idle instance (the reaper, or a bulk
		// teardown): let the policy update any external load bookkeeping.
		dc := i.service.account.dc
		dc.policy.OnIdleTermination(i, now)
		dc.trace(PlacementEvent{
			Account: i.service.account.id, Service: i.service.name,
			Kind: TraceIdleTerm, Count: 1,
		})
	}
	if i.sigterm != nil {
		i.sigterm(i, now)
	}
}

// goIdle transitions an active instance to idle and accrues billing for the
// active span.
func (i *Instance) goIdle(now simtime.Time) {
	if i.state != StateActive {
		return
	}
	i.service.account.accrue(i, i.activeSince, now)
	i.service.activeCount--
	i.state = StateIdle
	i.idleSince = now
}

// activate transitions an idle instance back to active (warm reuse).
func (i *Instance) activate(now simtime.Time) {
	if i.state != StateIdle {
		return
	}
	i.state = StateActive
	i.service.activeCount++
	i.activeSince = now
	i.service.account.dc.resumeLifecycle(i, now)
}
