package faas

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// fleetProfiles returns two small distinct regions for fleet tests.
func fleetProfiles() []RegionProfile {
	a := testProfile()
	a.Name = "fleet-a"
	b := testProfile()
	b.Name = "fleet-b"
	b.NumHosts = 80
	b.PlacementGroups = 2
	b.AccountHelperPool = 40
	b.ServiceHelperSize = 30
	return []RegionProfile{a, b}
}

// TestFleetShardMatchesSingleRegionPlatform pins the claim the fleet design
// rests on: a region world inside a fleet is byte-identical to the same
// region built as its own single-region platform, because every per-region
// stream derives from (seed, region name) alone.
func TestFleetShardMatchesSingleRegionPlatform(t *testing.T) {
	profs := fleetProfiles()
	fleet, err := NewFleet(42, profs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range profs {
		shard := fleet.MustRegion(prof.Name)
		solo := MustPlatform(42, prof).MustRegion(prof.Name)
		launch := func(dc *DataCenter) map[HostID]int {
			t.Helper()
			insts, err := dc.Account("acct").DeployService("svc", ServiceConfig{}).Launch(60)
			if err != nil {
				t.Fatal(err)
			}
			return hostSet(insts)
		}
		got, want := launch(shard), launch(solo)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fleet shard placement diverges from solo platform: %v vs %v",
				prof.Name, got, want)
		}
	}
}

// TestFleetShardMatchesSoloLoadedWorlds extends the shard-vs-solo identity
// to worlds with background traffic: the traffic engine derives everything
// from the region's own streams, so a loaded shard inside a fleet stays
// byte-identical to the same loaded region built solo — bystander churn,
// congestion rejections, and attacker placement alike.
func TestFleetShardMatchesSoloLoadedWorlds(t *testing.T) {
	profs := fleetProfiles()
	for i := range profs {
		profs[i].Traffic = DefaultTrafficModel(40, 0.6)
	}
	fleet, err := NewFleet(42, profs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range profs {
		drive := func(dc *DataCenter) []string {
			t.Helper()
			dc.Platform().Scheduler().Advance(2 * time.Hour)
			insts, err := dc.Account("acct").DeployService("svc", ServiceConfig{}).Launch(40)
			if err != nil {
				t.Fatal(err)
			}
			dc.Platform().Scheduler().Advance(30 * time.Minute)
			return []string{trafficDigest(dc), fmt.Sprint(hostSet(insts))}
		}
		want := drive(MustPlatform(42, prof).MustRegion(prof.Name))
		diffLogs(t, string(prof.Name), want, drive(fleet.MustRegion(prof.Name)))
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(1); err == nil {
		t.Error("empty fleet built")
	}
	p := testProfile()
	if _, err := NewFleet(1, p, p); err == nil {
		t.Error("duplicate regions built")
	}
	if _, err := FleetOf(); err == nil {
		t.Error("empty FleetOf built")
	}

	// Two shards on one platform share a clock — rejected.
	profs := fleetProfiles()
	pl := MustPlatform(7, profs...)
	if _, err := FleetOf(pl.MustRegion("fleet-a"), pl.MustRegion("fleet-b")); err == nil {
		t.Error("two shards sharing a platform built")
	}
	dc := pl.MustRegion("fleet-a")
	if _, err := FleetOf(dc, dc); err == nil {
		t.Error("duplicate shard built")
	}

	// A one-shard fleet may wrap any platform's region: that is the
	// compatibility path single-region experiments ride on.
	f, err := FleetOf(dc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 || f.MustRegion("fleet-a") != dc || f.Seed() != 7 {
		t.Errorf("one-shard fleet mangled: size %d seed %d", f.Size(), f.Seed())
	}

	// Distinct platforms per shard are accepted.
	f2, err := FleetOf(MustPlatform(7, profs[0]).MustRegion("fleet-a"),
		MustPlatform(7, profs[1]).MustRegion("fleet-b"))
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Regions(); len(got) != 2 || got[0] != "fleet-a" || got[1] != "fleet-b" {
		t.Errorf("fleet regions = %v", got)
	}
	if _, err := f2.Region("nope"); err == nil {
		t.Error("unknown region resolved")
	}
}
