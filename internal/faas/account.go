package faas

import (
	"eaao/internal/randx"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// Placement-preference selection noise. Pools are "noisy top-K" selections
// by host desirability: every scheduler decision ranks hosts by desirability
// plus Gaussian noise and takes the best K. Base pools rank sharply (small
// noise); helper pools rank more loosely. The shared preference axis is what
// makes an attacker's helper footprint cover a victim's base hosts far
// better than uniform coverage would suggest — the paper's attacker occupied
// 59% of us-east1 hosts yet covered ~98-100% of victim instances.
const (
	sigmaBase   = 0.05
	sigmaHelper = 0.10
	// sigmaFresh is nearly rank-blind: the few fleet-wide "fresh" helper
	// hosts each service gets are how exploration reaches the colder part
	// of the fleet (Fig. 12's estimates approach the true size).
	sigmaFresh = 0.60
)

// Account is one tenant identity within a data center. The orchestrator
// assigns each account a stable base-host pool (Obs. 3/4) derived
// deterministically from the account identity.
type Account struct {
	dc  *DataCenter
	id  string
	rng *randx.Source

	group    int
	basePool []*Host // preference-ordered
	helpers  []*Host // account-level helper pool, preference-ordered

	services map[string]*Service
	svcSeq   []*Service // creation order, for deterministic iteration

	// quota caps instances per service for this account (new-account
	// limit); 0 means the region-wide maximum applies.
	quota int

	bill Bill
}

func newAccount(dc *DataCenter, id string) *Account {
	rng := dc.rng.Derive("account", id)
	a := &Account{
		dc:       dc,
		id:       id,
		rng:      rng,
		group:    int(rng.DeriveInto(&dc.deriveScratch, "group").Uint64() % uint64(dc.profile.PlacementGroups)),
		services: make(map[string]*Service),
	}
	a.basePool = a.sampleBasePool(rng.DeriveInto(&dc.deriveScratch, "base"))
	a.helpers = a.noisyTopSample(rng.DeriveInto(&dc.deriveScratch, "helpers"), dc.hosts, dc.profile.AccountHelperPool, sigmaHelper, noExclusion)
	a.quota = dc.profile.NewAccountQuota
	return a
}

// Quota returns the account's per-service instance cap (the region maximum
// when the account is mature).
func (a *Account) Quota() int {
	if a.quota > 0 && a.quota < a.dc.profile.MaxInstancesPerService {
		return a.quota
	}
	return a.dc.profile.MaxInstancesPerService
}

// Mature lifts the new-account quota to the region maximum, modeling an
// account that has sustained consistent usage for months (§5.2: attackers
// wanting many accounts must pay this time cost per account).
func (a *Account) Mature() { a.quota = 0 }

// sampleBasePool draws the account's base pool from its placement group,
// ranked by host desirability.
func (a *Account) sampleBasePool(rng *randx.Source) []*Host {
	group := a.dc.hostBuf[:0]
	for _, h := range a.dc.hosts {
		if h.group == a.group {
			group = append(group, h)
		}
	}
	a.dc.hostBuf = group[:0]
	n := a.dc.profile.BasePoolSize
	if n > len(group) {
		n = len(group)
	}
	return a.noisyTopSample(rng, group, n, sigmaBase, noExclusion)
}

// noExclusion asks noisyTopSample to consider every candidate. Any other
// value must be a live epoch tag from Platform.nextMark; hosts carrying it
// are skipped before any noise is drawn (exactly as the old map-based
// exclusion skipped them), so the RNG draw sequence is unchanged.
const noExclusion uint64 = 0

// noisyTopSample selects the k best candidates by desirability plus Gaussian
// selection noise. The result is ordered best-first, i.e. stronger
// preference first. Scoring scratch is reused across calls; selection is a
// deterministic quickselect over the strict (score, host-id) total order, so
// the output matches the historical full sort element for element.
func (a *Account) noisyTopSample(rng *randx.Source, candidates []*Host, k int, sigma float64, excludeMark uint64) []*Host {
	pool := a.dc.scoreBuf[:0]
	if excludeMark == noExclusion {
		for _, h := range candidates {
			pool = append(pool, hostScore{h: h, score: h.desirability + rng.Normal(0, sigma)})
		}
	} else {
		for _, h := range candidates {
			if h.mark == excludeMark {
				continue
			}
			pool = append(pool, hostScore{h: h, score: h.desirability + rng.Normal(0, sigma)})
		}
	}
	a.dc.scoreBuf = pool[:0]
	if k > len(pool) {
		k = len(pool)
	}
	topK(pool, k, byScoreThenID{})
	out := make([]*Host, k)
	for i := range out {
		out[i] = pool[i].h
	}
	return out
}

// resampleBasePool replaces frac of the base pool with fresh draws; used by
// dynamic regions (us-central1) on cold launches. Unlike the static
// group-confined assignment, dynamic replacements come from the whole fleet
// with loose rank preference — the paper observed that in us-central1 "many
// instances are placed onto different hosts across launches, even if we
// launch from a cold service", which is what keeps any fixed attacker
// footprint from ever fully covering a victim there.
func (a *Account) resampleBasePool(frac float64) {
	n := int(frac * float64(len(a.basePool)))
	if n <= 0 {
		return
	}
	mark := a.dc.platform.nextMark()
	for _, h := range a.basePool {
		h.mark = mark
	}
	// Loose preference: spread well beyond the fleet's most desirable tier.
	const sigmaDynamic = 1.0
	fresh := a.noisyTopSample(a.rng.DeriveInto(&a.dc.deriveScratch, "resample"), a.dc.hosts, n, sigmaDynamic, mark)
	// Replace entries at random positions — including the high-preference
	// head. This is what makes us-central1 placement "more dynamic": a
	// tenant's instances keep landing on partially new hosts, which in turn
	// caps how well any attacker footprint can cover them (the paper's
	// 61-90% coverage band there, vs ~100% elsewhere).
	perm := a.rng.DeriveInto(&a.dc.deriveScratch, "resample-pos").Perm(len(a.basePool))
	for i, h := range fresh {
		a.basePool[perm[i]] = h
	}
}

// ID returns the account identity.
func (a *Account) ID() string { return a.id }

// DataCenter returns the account's region.
func (a *Account) DataCenter() *DataCenter { return a.dc }

// ServiceConfig configures a deployed service.
type ServiceConfig struct {
	// Size is the container resource specification; zero value means
	// SizeSmall (the Cloud Run default).
	Size InstanceSize
	// Gen selects the execution environment; zero value means Gen 1 (the
	// Cloud Run default).
	Gen sandbox.Gen
	// MaxConcurrency is the per-instance request concurrency used by the
	// request-driven autoscaler; zero means the Cloud Run default (80).
	// The paper's measurement services effectively use 1 (one pinned
	// connection per instance), which the Launch API models directly.
	MaxConcurrency int
}

// DeployService creates (or returns the existing) service with the given
// name. Deploying an existing name with a different configuration replaces
// the configuration for future instances, like pushing a new revision.
func (a *Account) DeployService(name string, cfg ServiceConfig) *Service {
	if cfg.Size == (InstanceSize{}) {
		cfg.Size = SizeSmall
	}
	if cfg.Gen == 0 {
		cfg.Gen = sandbox.Gen1
	}
	if svc, ok := a.services[name]; ok {
		svc.size = cfg.Size
		svc.gen = cfg.Gen
		svc.maxConcurrency = cfg.MaxConcurrency
		return svc
	}
	svc := newService(a, name, cfg)
	a.services[name] = svc
	a.svcSeq = append(a.svcSeq, svc)
	return svc
}

// Bill is the account's accumulated resource usage. Cloud Run bills active
// (connected) time only; idle instances accrue nothing.
type Bill struct {
	VCPUSeconds float64
	GBSeconds   float64
	Launches    int
	Instances   int
}

// accrue charges one instance's active span to the account.
func (a *Account) accrue(inst *Instance, from, to simtime.Time) {
	secs := to.Sub(from).Seconds()
	if secs <= 0 {
		return
	}
	a.bill.VCPUSeconds += secs * inst.service.size.VCPU
	a.bill.GBSeconds += secs * inst.service.size.MemoryGB
}

// Bill returns a copy of the account's usage counters.
func (a *Account) Bill() Bill { return a.bill }

// ResetBill zeroes the usage counters (used between experiment phases).
func (a *Account) ResetBill() { a.bill = Bill{} }
