package faas

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/randx"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// Service is one deployed function. Launching connections scales instances
// out through the orchestrator; disconnecting idles them; idle instances are
// reaped gradually.
type Service struct {
	account *Account
	name    string
	size    InstanceSize
	gen     sandbox.Gen
	rng     *randx.Source

	// insts holds non-terminated instances in creation order. Removal
	// tombstones the slot (nil) instead of shifting the tail — instance
	// churn made the O(n) shift the simulator's hottest memmove — so every
	// iteration over insts skips nil entries; the live order is unchanged,
	// keeping order-sensitive RNG draws (churn, scale-in) identical.
	// deadInsts counts tombstones; compaction runs when they reach half the
	// list.
	insts     []*Instance
	deadInsts int

	// policyState is the placement policy's opaque per-service state (e.g.
	// CloudRunPolicy keeps the preference-ordered helper set here).
	policyState any

	hasLaunched bool
	lastLaunch  simtime.Time
	hotStreak   int
	// decayEvent is the intrusive demand-decay timer (pending while a cold
	// transition is scheduled at lastLaunch + window); every launch cancels
	// and re-arms it. Both it and tickEvent fire through the Service's
	// simtime.Handler implementation, which tells them apart by address.
	decayEvent simtime.Event

	// Request-driven autoscaling (§2.2). activeCount mirrors the number of
	// StateActive instances incrementally (created/activated minus
	// idled/terminated) so the 15-second autoscale tick is O(1) instead of an
	// O(instances) scan. tickEvent is the intrusive self-rescheduling tick
	// timer.
	maxConcurrency int
	demand         int
	autoscaling    bool
	activeCount    int
	tickEvent      simtime.Event

	// Image-locality accounting: hosts that have ever run this service
	// (indexed by HostID — host ids are dense indexes into dc.hosts), plus
	// per-launch counts of image-cold hosts (hosts used by a launch that
	// had never run the service — each costs an image pull and a slow
	// start).
	seenHosts       hostBitset
	coldLaunchHosts int
	usedLaunchHosts int
}

func newService(a *Account, name string, cfg ServiceConfig) *Service {
	rng := a.rng.Derive("service", name)
	s := &Service{
		account:        a,
		name:           name,
		size:           cfg.Size,
		gen:            cfg.Gen,
		rng:            rng,
		maxConcurrency: cfg.MaxConcurrency,
	}
	s.seenHosts = newHostBitset(len(a.dc.hosts))
	s.policyState = a.dc.policy.NewService(s, rng.DeriveInto(&a.dc.deriveScratch, "helperset"))
	return s
}

// ColdHostFraction reports, across all launches so far, the fraction of
// per-launch host slots that were image-cold (the host had never run this
// service before that launch). Affinity placement drives this toward zero
// after the first launch; co-location-resistant random placement keeps it
// high — the defense's operational cost.
func (s *Service) ColdHostFraction() float64 {
	if s.usedLaunchHosts == 0 {
		return 0
	}
	return float64(s.coldLaunchHosts) / float64(s.usedLaunchHosts)
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Account returns the owning account.
func (s *Service) Account() *Account { return s.account }

// Size returns the container resource specification.
func (s *Service) Size() InstanceSize { return s.size }

// Gen returns the execution environment generation.
func (s *Service) Gen() sandbox.Gen { return s.gen }

// Instances returns the service's live (active or idle) instances in
// creation order.
func (s *Service) Instances() []*Instance {
	out := make([]*Instance, 0, len(s.insts)-s.deadInsts)
	for _, inst := range s.insts {
		if inst != nil {
			out = append(out, inst)
		}
	}
	return out
}

// ActiveInstances returns only the connected instances.
func (s *Service) ActiveInstances() []*Instance {
	var out []*Instance
	for _, inst := range s.insts {
		if inst != nil && inst.state == StateActive {
			out = append(out, inst)
		}
	}
	return out
}

// ActiveCount returns the number of connected instances. It is maintained
// incrementally, so it is O(1) where len(ActiveInstances()) is O(instances).
func (s *Service) ActiveCount() int { return s.activeCount }

// IdleCount returns the number of idle instances.
func (s *Service) IdleCount() int {
	n := 0
	for _, inst := range s.insts {
		if inst != nil && inst.state == StateIdle {
			n++
		}
	}
	return n
}

// Launch scales the service out to n concurrently connected instances
// (modeling n held connections, e.g. WebSockets, with one connection per
// instance as in the paper's setup). n is the total connection target, not a
// batch of additions: already-active instances count toward it as-is, idle
// instances are reused warm next, and only the remaining shortfall is created
// through the demand-dependent placement policy. It returns the n connected
// instances.
//
// Quota: because n is a total, bounding n by the per-service quota bounds the
// service's entire live footprint — idle instances only exist as leftovers of
// an earlier in-quota target, and new instances are only created after every
// idle one has been consumed, so no sequence of launches can push the live
// (active + idle) count past the quota. TestLaunchTotalsNeverExceedQuota pins
// this invariant.
func (s *Service) Launch(n int) ([]*Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faas: launch of %d instances", n)
	}
	p := s.account.dc.profile
	if q := s.account.Quota(); n > q {
		return nil, fmt.Errorf("faas: scaling %s/%s to %d instances exceeds its per-service quota of %d",
			s.account.id, s.name, n, q)
	}
	dc := s.account.dc
	now := dc.platform.sched.Now()

	// Congestion plane: past the traffic model's utilization knee the
	// orchestrator sheds launches probabilistically (ErrLaunchFault, so the
	// attack side's retry machinery engages). Background tenants pass
	// through the same check — their demand self-regulates under load.
	// Draws come from a dedicated stream, and only while traffic is
	// configured, so a quiet world draws nothing here.
	if ts := dc.traffic; ts != nil {
		if err := ts.launchCongested(s); err != nil {
			return nil, err
		}
	}

	// Fault plane: a transient platform failure either rejects the launch
	// up front (quota-throttle style, nothing happened) or aborts it
	// mid-batch after placement — the mid-batch path then rolls every
	// partially created instance back, so a failed launch never leaves
	// partial state or partial billing behind.
	abort := false
	if r := dc.faults.LaunchFailureRate; r > 0 && dc.launchFaultRNG.Bool(r) {
		if dc.launchFaultRNG.Bool(0.5) {
			abort = true
		} else {
			dc.faultCounters.LaunchRejections++
			return nil, fmt.Errorf("faas: %s/%s launch rejected: %w",
				s.account.id, s.name, ErrLaunchFault)
		}
	}

	// Demand bookkeeping: a launch arriving within the demand window of the
	// previous one marks the service as increasingly hot; otherwise the
	// service is cold and the policy reacts (dynamic regions resample part of
	// the base pool here). Under the event kernel, going cold is detected by
	// the decay timer each launch arms (demandDecay fires at window expiry,
	// whether or not another launch ever arrives); a launch therefore only
	// decays directly when it is the service's first, or when the legacy
	// profile keeps the historical launch-time detection, or in the corner
	// case where the timer is due at this very instant but ordered after the
	// event that issued this launch. A mid-batch abort still counts as
	// observed demand — the load balancer processed the request before the
	// failure.
	if s.hasLaunched && now.Sub(s.lastLaunch) <= p.DemandWindow {
		s.hotStreak++
	} else if !s.hasLaunched || p.LegacySweeps || s.decayEvent.Pending() {
		s.demandDecay(now)
	}
	s.hasLaunched = true
	s.lastLaunch = now
	if !p.LegacySweeps {
		s.scheduleDemandDecay(now)
	}

	// Reuse whatever is already running: active instances count as-is, idle
	// ones are reconnected warm. Warm reuses are tracked only on the abort
	// path, where they must be returned to idle.
	connected := make([]*Instance, 0, n)
	var rewarmed []*Instance
	for _, inst := range s.insts {
		if len(connected) == n {
			break
		}
		if inst == nil {
			continue
		}
		switch inst.state {
		case StateActive:
			connected = append(connected, inst)
		case StateIdle:
			inst.activate(now)
			if abort {
				rewarmed = append(rewarmed, inst)
			}
			connected = append(connected, inst)
		}
	}

	// Create the remainder through the placement policy.
	need := n - len(connected)
	var created []*Instance
	if need > 0 {
		created = s.placeNew(need, now)
		connected = append(connected, created...)
	}

	if abort {
		// Roll back: terminate everything this launch created (they accrued
		// no billable time and fire no SIGTERM — no callback is registered
		// yet) and return warm reuses to idle with their original reaper
		// timers intact. Billing shows no trace of the rolled-back
		// instances; the success-only counters below are never reached.
		for _, inst := range created {
			inst.terminate(now)
			s.account.bill.Instances--
		}
		for _, inst := range rewarmed {
			inst.goIdle(now)
		}
		dc.faultCounters.LaunchAborts++
		dc.faultCounters.InstancesRolledBack += len(created)
		return nil, fmt.Errorf("faas: %s/%s launch aborted mid-batch: %w",
			s.account.id, s.name, ErrLaunchFault)
	}
	s.account.bill.Launches++

	// Image-locality accounting for this launch: which hosts serve it, and
	// how many of them are running the service for the first time. An epoch
	// mark dedupes hosts within this launch without a per-launch map.
	mark := s.account.dc.platform.nextMark()
	for _, inst := range connected {
		h := inst.host
		if h.mark == mark {
			continue
		}
		h.mark = mark
		s.usedLaunchHosts++
		if !s.seenHosts.get(h.id) {
			s.seenHosts.set(h.id)
			s.coldLaunchHosts++
		}
	}
	return connected, nil
}

// demandDecay marks the service cold: the hot streak resets and the policy
// reacts (dynamic regions resample part of the account's base pool). Any
// pending decay timer is disarmed — decay happens exactly once per cold
// transition.
func (s *Service) demandDecay(now simtime.Time) {
	s.account.dc.platform.sched.Cancel(&s.decayEvent)
	s.hotStreak = 0
	s.account.dc.policy.OnDemandDecay(s, now)
	s.account.dc.trace(PlacementEvent{
		Account: s.account.id, Service: s.name, Kind: TraceDemandDecay,
	})
}

// scheduleDemandDecay arms the service's cold-transition timer: unless a
// further launch arrives within the demand window (cancelling and re-arming
// the timer), the service decays the instant the window closes. The +1ns
// keeps the boundary semantics of the legacy launch-time check, where a
// launch exactly DemandWindow after the previous one still counted as hot.
func (s *Service) scheduleDemandDecay(now simtime.Time) {
	sched := s.account.dc.platform.sched
	sched.Cancel(&s.decayEvent)
	sched.ArmHandler(&s.decayEvent, now.Add(s.account.dc.profile.DemandWindow+1), s)
}

// HandleEvent dispatches the service's intrusive timers (the Service is the
// simtime.Handler for both its demand-decay and autoscale-tick events).
func (s *Service) HandleEvent(e *simtime.Event, now simtime.Time) {
	switch e {
	case &s.decayEvent:
		s.demandDecay(now)
	case &s.tickEvent:
		s.autoscaleTick(now)
	}
}

// placeNew creates count new instances through the region's placement
// policy, handing it the demand-window state and the service's placement
// stream, and traces the resulting batch.
func (s *Service) placeNew(count int, now simtime.Time) []*Instance {
	b := &PlacementBatch{svc: s, now: now, out: make([]*Instance, 0, count)}
	s.account.dc.policy.Place(PlacementRequest{
		Service:   s,
		Count:     count,
		Now:       now,
		HotStreak: s.hotStreak,
		RNG:       s.rng,
	}, b)
	if s.account.dc.tracer != nil {
		hosts := make(map[*Host]bool, len(b.out))
		for _, inst := range b.out {
			hosts[inst.host] = true
		}
		s.account.dc.trace(PlacementEvent{
			Account: s.account.id, Service: s.name, Kind: TracePlace,
			Count: len(b.out), Hosts: len(hosts), HotStreak: s.hotStreak,
		})
	}
	return b.out
}

// Container startup latencies (§2.3): Gen 1 Linux containers have "a small
// resource footprint and fast start-up time"; Gen 2 VMs have "a large
// resource footprint [and] longer start-up times". A host that has never run
// the service additionally pulls the container image.
const (
	gen1StartupMedian = 180 * time.Millisecond
	gen2StartupMedian = 1800 * time.Millisecond
	imagePullMedian   = 4 * time.Second
	startupSigma      = 0.35 // lognormal shape for all three
)

// startupLatency draws the cold-start duration of a new instance.
func (s *Service) startupLatency(h *Host) time.Duration {
	median := gen1StartupMedian
	if s.gen == sandbox.Gen2 {
		median = gen2StartupMedian
	}
	d := s.rng.LogNormal(logDur(median), startupSigma)
	if !s.seenHosts.get(h.id) {
		d += s.rng.LogNormal(logDur(imagePullMedian), startupSigma)
	}
	return time.Duration(d)
}

// logDur returns ln(d in nanoseconds) for lognormal medians.
func logDur(d time.Duration) float64 { return math.Log(float64(d)) }

// createInstance materializes a new active instance on the given host. The
// struct comes from the data center's slab, the guest is initialized in
// place, and the ID string is deferred to the first ID() call — steady-state
// creation performs no per-instance heap allocation of its own. Draw order
// is frozen: the startup-latency draw (service stream) precedes the guest's
// noise draws (host stream), as it always has.
func (s *Service) createInstance(h *Host, now simtime.Time) *Instance {
	dc := s.account.dc
	dc.nextInst++
	inst := dc.allocInstance()
	inst.service = s
	inst.host = h
	inst.state = StateActive
	inst.createdAt = now
	inst.readyAt = now.Add(s.startupLatency(h))
	inst.activeSince = now
	inst.seq = uint32(dc.nextInst)
	inst.lifeBase = randx.MixStep(dc.lifeMix1, uint64(inst.seq))
	sandbox.InitGuest(&inst.guestStore, h, s.gen)
	inst.guest = &inst.guestStore
	h.attach(inst)
	inst.slot = len(s.insts)
	s.insts = append(s.insts, inst)
	s.activeCount++
	s.account.bill.Instances++
	dc.liveInstances++
	dc.scheduleLifecycle(inst, now)
	return inst
}

// Disconnect closes all connections, idling every active instance. Idle
// instances are preserved through the grace period and then terminated
// gradually (Fig. 6), unless a later Launch reuses them warm.
func (s *Service) Disconnect() {
	now := s.account.dc.platform.sched.Now()
	sched := s.account.dc.platform.sched
	p := s.account.dc.profile
	for _, inst := range s.insts {
		if inst == nil || inst.state != StateActive {
			continue
		}
		inst.goIdle(now)
		// Uniform spread over (grace, grace+span]: matches the near-linear
		// decay the paper measured. The reaper is the instance's intrusive
		// termEvent — cancel-and-arm, no closure, no allocation; the handler
		// re-checks idleness and dueness, so a warm reactivation before
		// termAt safely leaves the event pending.
		delay := p.IdleGrace + time.Duration(s.rng.Range(0, float64(p.IdleTerminationSpan)))
		at := now.Add(delay)
		inst.termAt = at
		sched.Cancel(&inst.termEvent)
		sched.ArmHandler(&inst.termEvent, at, inst)
	}
}

// TerminateAll immediately terminates every live instance of the service.
func (s *Service) TerminateAll() {
	now := s.account.dc.platform.sched.Now()
	for _, inst := range s.Instances() {
		inst.terminate(now)
	}
}

// recycle terminates one connected instance and immediately creates a
// replacement wherever the policy directs, keeping the connection count;
// models the platform occasionally migrating long-running instances.
func (s *Service) recycle(inst *Instance, now simtime.Time) {
	inst.terminate(now)
	h := s.account.dc.policy.Recycle(s, inst.ID(), now)
	s.createInstance(h, now)
	s.account.dc.trace(PlacementEvent{
		Account: s.account.id, Service: s.name, Kind: TraceRecycle,
		Count: 1, Hosts: 1, HotStreak: s.hotStreak,
	})
}

// removeInstance drops a terminated instance from the service's list:
// tombstone the slot, compact (order-preserving) once tombstones reach half
// the list.
func (s *Service) removeInstance(inst *Instance) {
	if inst.slot >= len(s.insts) || s.insts[inst.slot] != inst {
		return
	}
	s.insts[inst.slot] = nil
	s.deadInsts++
	if s.deadInsts*2 <= len(s.insts) {
		return
	}
	live := s.insts[:0]
	for _, cur := range s.insts {
		if cur != nil {
			cur.slot = len(live)
			live = append(live, cur)
		}
	}
	// Clear the vacated tail so the backing array drops its references.
	tail := s.insts[len(live):]
	for i := range tail {
		tail[i] = nil
	}
	s.insts = live
	s.deadInsts = 0
}
