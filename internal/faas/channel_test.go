package faas

import (
	"fmt"
	"testing"
)

func TestChannelRegistry(t *testing.T) {
	models := Channels()
	if len(models) != NumResources {
		t.Fatalf("Channels() returned %d models, want %d", len(models), NumResources)
	}
	wantNames := []string{"rng", "membus", "llc"}
	for i, m := range models {
		if m.Resource != Resource(i) {
			t.Errorf("model %d registered under Resource %d", i, int(m.Resource))
		}
		if m.Name != wantNames[i] {
			t.Errorf("model %d named %q, want %q", i, m.Name, wantNames[i])
		}
		if m.TestTime <= 0 || m.BitsPerSecond <= 0 {
			t.Errorf("model %s has non-positive cost parameters: %+v", m.Name, m)
		}
		got, err := ChannelModelOf(Resource(i))
		if err != nil || got != m {
			t.Errorf("ChannelModelOf(%d) = %+v, %v", i, got, err)
		}
		byName, err := ChannelByName(m.Name)
		if err != nil || byName != m {
			t.Errorf("ChannelByName(%q) = %+v, %v", m.Name, byName, err)
		}
	}
	if _, err := ChannelModelOf(Resource(9)); err == nil {
		t.Error("ChannelModelOf accepted an unregistered resource")
	}
	if _, err := ChannelByName("hyperlane"); err == nil {
		t.Error("ChannelByName accepted an unknown name")
	}
	if Resource(9).Valid() || Resource(-1).Valid() {
		t.Error("out-of-range resources report Valid")
	}
	// The LLC is the fast, load-sensitive family; the quiet channels must
	// stay load-insensitive or historical draw sequences change.
	llc := channelModels[ResourceLLC]
	if llc.LoadNoise <= 0 || llc.LoadDrop <= 0 {
		t.Error("LLC model is not load-sensitive")
	}
	for _, res := range []Resource{ResourceRNG, ResourceMemBus} {
		m := channelModels[res]
		if m.LoadNoise != 0 || m.LoadDrop != 0 {
			t.Errorf("%s model is load-sensitive; that changes frozen draw sequences", m.Name)
		}
	}
	if llc.TestTime >= channelModels[ResourceRNG].TestTime {
		t.Error("LLC tests should be shorter than RNG tests")
	}
	if llc.BitsPerSecond <= channelModels[ResourceRNG].BitsPerSecond {
		t.Error("LLC bandwidth should exceed the RNG's")
	}
}

// The LLC channel degrades with bystander load: a lone participant on a busy
// host sees far more false positives — and some dead rounds — than one on a
// quiet host, while the RNG channel reads the same everywhere.
func TestLLCChannelLoadSensitivity(t *testing.T) {
	dc := newTestDC(t, 23)
	// A heavily loaded tenant: bystander co-residents are pure host load —
	// residents that never participate in a round count as bystanders even
	// when they belong to the prober's own service.
	loadedInsts, err := dc.Account("prober").DeployService("p", ServiceConfig{}).Launch(240)
	if err != nil {
		t.Fatal(err)
	}
	var loaded *Instance
	for _, inst := range loadedInsts {
		if inst.host.ResidentCount() >= 4 {
			loaded = inst
			break
		}
	}
	// A quiet probe needs a host it has all to itself; single-instance
	// launches from fresh accounts land on lightly used base hosts.
	var quiet *Instance
	for i := 0; i < 10 && quiet == nil; i++ {
		insts, err := dc.Account(fmt.Sprintf("loner%d", i)).DeployService("q", ServiceConfig{}).Launch(1)
		if err != nil {
			t.Fatal(err)
		}
		if insts[0].host.ResidentCount() == 1 {
			quiet = insts[0]
		}
	}
	if quiet == nil || loaded == nil {
		t.Skip("world did not produce both a quiet and a loaded probe host")
	}

	rates := func(inst *Instance, res Resource) (fp, drop float64) {
		const rounds = 3000
		fps, drops := 0, 0
		var obs []int
		parts := []*Instance{inst}
		for i := 0; i < rounds; i++ {
			obs, err = ContentionRoundOnInto(res, parts, obs)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case obs[0] >= 2:
				fps++
			case obs[0] == 0:
				drops++
			}
		}
		return float64(fps) / rounds, float64(drops) / rounds
	}

	quietFP, quietDrop := rates(quiet, ResourceLLC)
	loadedFP, loadedDrop := rates(loaded, ResourceLLC)
	if quietDrop != 0 {
		t.Errorf("LLC dropped %.3f of rounds on a quiet host, want 0", quietDrop)
	}
	if quietFP > 0.08 {
		t.Errorf("LLC quiet-host FP rate %.3f, want ≈0.04", quietFP)
	}
	if loadedFP < quietFP+0.05 {
		t.Errorf("LLC loaded-host FP rate %.3f not above quiet %.3f", loadedFP, quietFP)
	}
	if loadedDrop == 0 {
		t.Error("LLC loaded host never dropped a round")
	}

	// The RNG channel must not care about load.
	rngQuietFP, rngQuietDrop := rates(quiet, ResourceRNG)
	rngLoadedFP, rngLoadedDrop := rates(loaded, ResourceRNG)
	if rngQuietDrop != 0 || rngLoadedDrop != 0 {
		t.Error("RNG channel dropped rounds")
	}
	if rngQuietFP > 0.02 || rngLoadedFP > 0.02 {
		t.Errorf("RNG FP rates %.3f / %.3f, want < 0.02 regardless of load", rngQuietFP, rngLoadedFP)
	}
}

// The legacy ContentionRound shim still works but warns once per region via
// the placement trace, like the RandomPlacement retirement did.
func TestContentionRoundShimWarnsOnce(t *testing.T) {
	dc := newTestDC(t, 24)
	ring := NewTraceRing(16)
	dc.SetPlacementTracer(ring)
	countDeprecated := func() int {
		n := 0
		for _, ev := range ring.Events() {
			if ev.Kind == TraceDeprecated {
				n++
			}
		}
		return n
	}

	insts, err := dc.Account("a1").DeployService("s", ServiceConfig{}).Launch(3)
	if err != nil {
		t.Fatal(err)
	}
	// The channel-aware API never warns.
	if _, err := ContentionRoundOn(ResourceRNG, insts); err != nil {
		t.Fatal(err)
	}
	if countDeprecated() != 0 {
		t.Fatal("ContentionRoundOn emitted a deprecation event")
	}
	deprecated, err := ContentionRound(insts)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := ContentionRoundOn(ResourceRNG, insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(deprecated) != len(modern) {
		t.Fatalf("shim returned %d observations, want %d", len(deprecated), len(modern))
	}
	if _, err := ContentionRound(insts); err != nil {
		t.Fatal(err)
	}
	if got := countDeprecated(); got != 1 {
		t.Errorf("shim emitted %d deprecation events across two calls, want 1", got)
	}
}
