package faas

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func faultDC(t *testing.T, seed uint64, plan FaultPlan) *DataCenter {
	t.Helper()
	p := testProfile()
	p.Faults = plan
	pl, err := NewPlatform(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl.MustRegion(p.Name)
}

func TestFaultPlanValidate(t *testing.T) {
	var zero FaultPlan
	if zero.Enabled() {
		t.Error("zero plan reports Enabled")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero plan invalid: %v", err)
	}
	ok := FaultPlan{
		LaunchFailureRate:        0.5,
		PreemptionRatePerHour:    1,
		ChannelFalsePositiveRate: 0.01,
		ChannelFalseNegativeRate: 0.99,
		ProbeFailureRate:         0.3,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("in-range plan invalid: %v", err)
	}
	if !ok.Enabled() {
		t.Error("in-range plan reports disabled")
	}
	for _, bad := range []FaultPlan{
		{LaunchFailureRate: -0.1},
		{LaunchFailureRate: 1.1},
		{PreemptionRatePerHour: -1},
		{PreemptionRatePerHour: 2},
		{ChannelFalsePositiveRate: 1.0001},
		{ChannelFalseNegativeRate: -0.0001},
		{ProbeFailureRate: 7},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("out-of-range plan %+v validated", bad)
		}
	}
}

func TestUniformFaultPlan(t *testing.T) {
	if got := UniformFaultPlan(0); got != (FaultPlan{}) {
		t.Errorf("UniformFaultPlan(0) = %+v, want zero plan", got)
	}
	p := UniformFaultPlan(0.05)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-12 && d > -1e-12
	}
	if !approx(p.LaunchFailureRate, 0.05) {
		t.Errorf("LaunchFailureRate = %v", p.LaunchFailureRate)
	}
	if !approx(p.PreemptionRatePerHour, 0.0125) {
		t.Errorf("PreemptionRatePerHour = %v", p.PreemptionRatePerHour)
	}
	if !approx(p.ChannelFalsePositiveRate, 0.01) || !approx(p.ChannelFalseNegativeRate, 0.01) {
		t.Errorf("channel rates = %v / %v", p.ChannelFalsePositiveRate, p.ChannelFalseNegativeRate)
	}
	if !approx(p.ProbeFailureRate, 0.025) {
		t.Errorf("ProbeFailureRate = %v", p.ProbeFailureRate)
	}
}

// faultWorkload exercises every faultable code path — launches, churn/
// preemption sweeps, contention rounds, contention probes, disconnects —
// against one plan, returning the final bill and fault tally. It fails the
// test on any error that is not an injected fault.
func faultWorkload(t *testing.T, seed uint64, plan FaultPlan) (Bill, FaultCounters) {
	t.Helper()
	dc := faultDC(t, seed, plan)
	sched := dc.Scheduler()
	acct := dc.Account("tenant")
	acct.Mature()
	svc := acct.DeployService("svc", ServiceConfig{})
	lastVCPU := 0.0
	for round := 0; round < 25; round++ {
		insts, err := svc.Launch(20)
		switch {
		case err == nil:
			if len(insts) != 20 {
				t.Fatalf("round %d: successful launch returned %d of 20", round, len(insts))
			}
		case errors.Is(err, ErrLaunchFault):
			// Injected; the launch must have been a clean no-op (checked in
			// detail by TestLaunchFaultLeavesNoPartialState).
		default:
			t.Fatalf("round %d: unexpected launch error: %v", round, err)
		}
		sched.Advance(10 * time.Minute)
		live := svc.ActiveInstances()
		if len(live) > 1 {
			if _, err := ContentionRoundOnInto(ResourceRNG, live[:2], nil); err != nil {
				t.Fatalf("round %d: contention round: %v", round, err)
			}
			if _, err := ProbeContention(live[0]); err != nil && !errors.Is(err, ErrProbeFault) {
				t.Fatalf("round %d: probe: %v", round, err)
			}
		}
		if round%7 == 6 {
			svc.Disconnect()
		}
		bill := acct.Bill()
		if bill.Instances < 0 {
			t.Fatalf("round %d: bill.Instances went negative: %d", round, bill.Instances)
		}
		if bill.VCPUSeconds < lastVCPU {
			t.Fatalf("round %d: VCPUSeconds decreased: %v -> %v", round, lastVCPU, bill.VCPUSeconds)
		}
		lastVCPU = bill.VCPUSeconds
	}
	return acct.Bill(), dc.FaultCounters()
}

// TestFaultPlanNeverPanics is the fault plane's safety property: any plan
// with rates in [0,1] — including every rate pinned at 1 — runs the full
// workload without panicking, keeps the bill consistent, and a disabled plan
// injects nothing.
func TestFaultPlanNeverPanics(t *testing.T) {
	plans := []FaultPlan{
		{},
		UniformFaultPlan(0.01),
		UniformFaultPlan(0.25),
		UniformFaultPlan(1),
		{LaunchFailureRate: 1},
		{PreemptionRatePerHour: 1},
		{ChannelFalsePositiveRate: 1},
		{ChannelFalseNegativeRate: 1},
		{ProbeFailureRate: 1},
		{LaunchFailureRate: 0.3, ChannelFalsePositiveRate: 0.7, ProbeFailureRate: 0.9},
	}
	for i, plan := range plans {
		_, fc := faultWorkload(t, uint64(100+i), plan)
		total := fc.LaunchRejections + fc.LaunchAborts + fc.Preemptions +
			fc.ChannelMisfires + fc.ProbeFaults
		if !plan.Enabled() && total != 0 {
			t.Errorf("plan %d: disabled plan injected %d faults: %+v", i, total, fc)
		}
		if plan.LaunchFailureRate == 1 && fc.LaunchRejections+fc.LaunchAborts == 0 {
			t.Errorf("plan %d: certain launch failure never fired", i)
		}
	}
}

// TestFaultWorldDeterministic: the same seed and plan reproduce the exact
// same fault history — counters and bill alike.
func TestFaultWorldDeterministic(t *testing.T) {
	plan := UniformFaultPlan(0.2)
	b1, f1 := faultWorkload(t, 77, plan)
	b2, f2 := faultWorkload(t, 77, plan)
	if f1 != f2 {
		t.Errorf("fault counters diverged:\n  %+v\n  %+v", f1, f2)
	}
	if b1 != b2 {
		t.Errorf("bills diverged:\n  %+v\n  %+v", b1, b2)
	}
	if f1 == (FaultCounters{}) {
		t.Error("level-0.2 workload injected no faults at all")
	}
}

func TestPerChannelFaultRates(t *testing.T) {
	// A zero PerChannel entry falls back to the scalar pair.
	scalar := FaultPlan{ChannelFalsePositiveRate: 0.1, ChannelFalseNegativeRate: 0.2}
	for res := Resource(0); res.Valid(); res++ {
		got := scalar.ChannelRates(res)
		if got.FalsePositiveRate != 0.1 || got.FalseNegativeRate != 0.2 {
			t.Errorf("%s rates = %+v, want scalar fallback", res, got)
		}
	}
	// A set entry overrides for its family only.
	targeted := scalar
	targeted.PerChannel[ResourceLLC] = ChannelFaultRates{FalsePositiveRate: 0.5}
	if got := targeted.ChannelRates(ResourceLLC); got.FalsePositiveRate != 0.5 || got.FalseNegativeRate != 0 {
		t.Errorf("LLC override = %+v", got)
	}
	if got := targeted.ChannelRates(ResourceRNG); got.FalsePositiveRate != 0.1 {
		t.Errorf("RNG rates = %+v, want scalar fallback", got)
	}
	// An unknown resource degrades to the scalar pair instead of panicking.
	if got := targeted.ChannelRates(Resource(9)); got.FalsePositiveRate != 0.1 {
		t.Errorf("unknown-resource rates = %+v", got)
	}

	// A plan whose only fault is a per-channel entry is enabled and valid.
	var perOnly FaultPlan
	perOnly.PerChannel[ResourceRNG] = ChannelFaultRates{FalseNegativeRate: 0.3}
	if !perOnly.Enabled() {
		t.Error("per-channel-only plan reports disabled")
	}
	if err := perOnly.Validate(); err != nil {
		t.Errorf("per-channel-only plan invalid: %v", err)
	}
	var bad FaultPlan
	bad.PerChannel[ResourceMemBus] = ChannelFaultRates{FalsePositiveRate: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range per-channel rate validated")
	}
}

// A channel-targeted misfire plan corrupts only its resource family: with a
// certain RNG false-positive episode, every RNG round on a quiet host reads
// phantom contention while LLC rounds on the same host stay clean.
func TestChannelTargetedMisfire(t *testing.T) {
	var plan FaultPlan
	plan.PerChannel[ResourceRNG] = ChannelFaultRates{FalsePositiveRate: 1}
	dc := faultDC(t, 29, plan)
	var probe *Instance
	for i := 0; i < 10 && probe == nil; i++ {
		insts, err := dc.Account(fmt.Sprintf("t%d", i)).DeployService("s", ServiceConfig{}).Launch(1)
		if err != nil {
			t.Fatal(err)
		}
		if insts[0].host.ResidentCount() == 1 {
			probe = insts[0]
		}
	}
	if probe == nil {
		t.Skip("no single-resident host")
	}
	parts := []*Instance{probe}
	var obs []int
	var err error
	for r := 0; r < 50; r++ {
		obs, err = ContentionRoundOnInto(ResourceRNG, parts, obs)
		if err != nil {
			t.Fatal(err)
		}
		if obs[0] < 2 {
			t.Fatalf("round %d: RNG observation %d under a certain FP episode, want >= 2", r, obs[0])
		}
	}
	llcPhantoms := 0
	const llcRounds = 400
	for r := 0; r < llcRounds; r++ {
		obs, err = ContentionRoundOnInto(ResourceLLC, parts, obs)
		if err != nil {
			t.Fatal(err)
		}
		if obs[0] >= 2 {
			llcPhantoms++
		}
	}
	// The LLC sees only its own base noise (~4%), not the RNG's misfires.
	if rate := float64(llcPhantoms) / llcRounds; rate > 0.12 {
		t.Errorf("LLC phantom rate %.3f under an RNG-targeted plan, want ~0.04", rate)
	}
	if dc.FaultCounters().ChannelMisfires == 0 {
		t.Error("no misfire episodes were counted")
	}
}
