package faas

import (
	"errors"
	"fmt"
	"time"

	"eaao/internal/sandbox"
)

// This file is the platform's fault plane: a seeded, deterministic layer of
// injected failures modeling the flakiness the paper measured against on the
// real cloud — launches that are rejected or die mid-flight, instances
// preempted under the attacker, covert-channel rounds that misfire, and
// fingerprint probes that fail outright. Every fault is drawn from dedicated
// randx sub-streams (derived once per data center, disjoint from every
// placement and noise stream), so a faulty world is exactly as reproducible
// as a healthy one — and a zero-valued FaultPlan draws nothing at all,
// leaving the simulation byte-identical to a build without the fault plane.

// ErrLaunchFault marks a launch that failed for a transient platform reason
// (injected rejection or mid-batch abort) rather than a quota or usage error.
// Attack tooling keys retry-with-backoff on it via errors.Is.
var ErrLaunchFault = errors.New("faas: transient launch failure")

// ErrProbeFault re-exports the sandbox probe-failure sentinel so attack code
// probing through faas primitives can match it without importing sandbox.
var ErrProbeFault = sandbox.ErrProbeFault

// ChannelMisfireWindow is how long one covert-channel misfire episode lasts
// on a host. It equals the paper's per-CTest duration (100 ms), so a misfire
// corrupts a whole single test — exactly the failure mode majority-vote
// repetition (covert.Config.VoteBudget) exists to absorb: repeated tests are
// spaced one TestDuration apart and re-draw the misfire state independently.
// The window is deliberately channel-agnostic: on the faster LLC channel it
// spans several 20 ms tests, so vote repetition alone absorbs less there and
// cross-channel majority (covert.MultiTester) is the stronger recovery.
const ChannelMisfireWindow = 100 * time.Millisecond

// FaultPlan parameterizes the injected failures of one region. The zero
// value disables every fault and is guaranteed to not perturb the
// simulation: no fault stream is ever drawn from while a rate is zero.
type FaultPlan struct {
	// LaunchFailureRate is the probability that a Service.Launch call fails
	// with ErrLaunchFault. Half of the failures are up-front rejections
	// (quota-throttle style, nothing happens); the other half abort
	// mid-batch after placement, and the orchestrator rolls every partially
	// created instance back — a failed launch never leaves partial state or
	// partial billing.
	LaunchFailureRate float64

	// PreemptionRatePerHour is the per-hour probability that a connected
	// instance is terminated outright during the churn sweep (no
	// replacement), modeling host drains and capacity reclaims. Unlike
	// churn, the connection is simply lost; the tenant must relaunch.
	PreemptionRatePerHour float64

	// ChannelFalsePositiveRate and ChannelFalseNegativeRate are the per-host
	// probabilities, evaluated once per ChannelMisfireWindow, that the host
	// enters a misfire episode in which every contention-round observation
	// is corrupted: a false-positive episode adds one phantom contention
	// unit (merging groups), a false-negative episode zeroes the
	// observation (splitting them).
	ChannelFalsePositiveRate float64
	ChannelFalseNegativeRate float64

	// ProbeFailureRate is the probability that a fingerprint probe
	// (CollectGen1/CollectGen2, a frequency-measurement repetition, or
	// ProbeContention) fails with ErrProbeFault.
	ProbeFailureRate float64

	// PerChannel overrides the scalar channel misfire rates for individual
	// resource families, indexed by Resource. A zero-valued entry falls back
	// to the scalar ChannelFalsePositiveRate/ChannelFalseNegativeRate pair,
	// so the scalar plan remains a uniform fallback covering every channel —
	// and a channel-targeted plan (say, an RNG misfire storm) leaves the
	// other families untouched.
	PerChannel [NumResources]ChannelFaultRates
}

// ChannelFaultRates is the misfire configuration of one covert-channel
// resource family.
type ChannelFaultRates struct {
	FalsePositiveRate float64
	FalseNegativeRate float64
}

// zero reports whether the entry defers to the plan's scalar rates.
func (r ChannelFaultRates) zero() bool {
	return r.FalsePositiveRate == 0 && r.FalseNegativeRate == 0
}

// ChannelRates resolves the misfire rates governing one resource family: the
// per-channel override when set, the scalar pair otherwise.
func (f FaultPlan) ChannelRates(res Resource) ChannelFaultRates {
	if res.Valid() && !f.PerChannel[res].zero() {
		return f.PerChannel[res]
	}
	return ChannelFaultRates{
		FalsePositiveRate: f.ChannelFalsePositiveRate,
		FalseNegativeRate: f.ChannelFalseNegativeRate,
	}
}

// Enabled reports whether any fault is configured.
func (f FaultPlan) Enabled() bool {
	for _, r := range f.PerChannel {
		if !r.zero() {
			return true
		}
	}
	return f.LaunchFailureRate > 0 || f.PreemptionRatePerHour > 0 ||
		f.ChannelFalsePositiveRate > 0 || f.ChannelFalseNegativeRate > 0 ||
		f.ProbeFailureRate > 0
}

// Validate checks every rate is a probability.
func (f FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"LaunchFailureRate", f.LaunchFailureRate},
		{"PreemptionRatePerHour", f.PreemptionRatePerHour},
		{"ChannelFalsePositiveRate", f.ChannelFalsePositiveRate},
		{"ChannelFalseNegativeRate", f.ChannelFalseNegativeRate},
		{"ProbeFailureRate", f.ProbeFailureRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faas: FaultPlan.%s %v out of [0,1]", r.name, r.v)
		}
	}
	for res, r := range f.PerChannel {
		if r.FalsePositiveRate < 0 || r.FalsePositiveRate > 1 {
			return fmt.Errorf("faas: FaultPlan.PerChannel[%s].FalsePositiveRate %v out of [0,1]", Resource(res), r.FalsePositiveRate)
		}
		if r.FalseNegativeRate < 0 || r.FalseNegativeRate > 1 {
			return fmt.Errorf("faas: FaultPlan.PerChannel[%s].FalseNegativeRate %v out of [0,1]", Resource(res), r.FalseNegativeRate)
		}
	}
	return nil
}

// UniformFaultPlan maps one scalar fault level λ onto the plan's rates in
// the proportions the fault-sweep experiment (and the -faults CLI flag)
// uses: launch failures at λ, channel false positives and negatives at 0.2λ
// each (2% total corruption at the λ=5% acceptance point), probe failures at
// 0.5λ, and preemption at 0.25λ per hour.
func UniformFaultPlan(level float64) FaultPlan {
	return FaultPlan{
		LaunchFailureRate:        level,
		PreemptionRatePerHour:    0.25 * level,
		ChannelFalsePositiveRate: 0.2 * level,
		ChannelFalseNegativeRate: 0.2 * level,
		ProbeFailureRate:         0.5 * level,
	}
}

// FaultCounters tallies the faults a data center actually injected — ground
// truth for experiments to report next to the attack side's recovery ledger.
type FaultCounters struct {
	// LaunchRejections counts launches rejected up front.
	LaunchRejections int
	// LaunchAborts counts launches aborted mid-batch (after placement).
	LaunchAborts int
	// InstancesRolledBack counts instances created and then rolled back by
	// mid-batch aborts.
	InstancesRolledBack int
	// Preemptions counts connected instances terminated by the fault sweep.
	Preemptions int
	// ChannelMisfires counts misfire episodes entered (one per window, per
	// host).
	ChannelMisfires int
	// ProbeFaults counts failed fingerprint/contention probes.
	ProbeFaults int
}

// FaultCounters returns a snapshot of the faults injected so far.
func (dc *DataCenter) FaultCounters() FaultCounters { return dc.faultCounters }

// Faults returns the region's fault plan.
func (dc *DataCenter) Faults() FaultPlan { return dc.faults }
