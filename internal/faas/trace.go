package faas

import "eaao/internal/simtime"

// PlacementEventKind labels what kind of placement decision an event records.
type PlacementEventKind int

const (
	// TracePlace is a batch placement (one Launch's new instances).
	TracePlace PlacementEventKind = iota
	// TraceRecycle is the hourly churn sweep migrating one instance.
	TraceRecycle
	// TraceDemandDecay is a launch arriving outside the demand window.
	TraceDemandDecay
	// TraceIdleTerm is the reaper terminating an idle instance.
	TraceIdleTerm
	// TraceDeprecated is a one-shot warning that the region was configured
	// through a deprecated knob (RandomPlacement) that normalize() folded
	// into its modern equivalent. Emitted once per region, the first time a
	// tracer is attached.
	TraceDeprecated
)

// String names the event kind.
func (k PlacementEventKind) String() string {
	switch k {
	case TracePlace:
		return "place"
	case TraceRecycle:
		return "recycle"
	case TraceDemandDecay:
		return "demand-decay"
	case TraceIdleTerm:
		return "idle-term"
	case TraceDeprecated:
		return "deprecated"
	default:
		return "event?"
	}
}

// PlacementEvent is one audited placement decision. Events carry aggregate
// counts only — no host identities — so a tracer can audit policy behavior
// without becoming a ground-truth side channel (attack code cannot reach the
// tracer either way: it only ever sees sandbox.Guest).
type PlacementEvent struct {
	// Seq is the region-wide event sequence number, starting at 1.
	Seq uint64
	// Time is the virtual time of the decision.
	Time simtime.Time
	// Region and Policy identify where and under which engine it happened.
	Region Region
	Policy string
	// Account and Service identify the tenant context.
	Account string
	Service string
	// Kind says what happened.
	Kind PlacementEventKind
	// Count is the number of instances involved (placed, recycled, or
	// terminated); zero for demand-decay events.
	Count int
	// Hosts is the number of distinct hosts the batch used (place only).
	Hosts int
	// HotStreak is the service's demand streak at decision time.
	HotStreak int
}

// PlacementTracer receives placement decisions as they happen. Tracing is
// off by default; install one with DataCenter.SetPlacementTracer. Tracers
// run on the simulator thread and must not call back into the platform.
type PlacementTracer interface {
	Record(PlacementEvent)
}

// TraceRing is a bounded PlacementTracer: it keeps the most recent capacity
// events and counts how many older ones were dropped, so tracing a
// long-running world has fixed memory cost.
type TraceRing struct {
	buf     []PlacementEvent
	next    int
	full    bool
	dropped uint64
}

// NewTraceRing returns a ring tracer holding at most capacity events;
// capacity must be positive.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		panic("faas: TraceRing capacity must be positive")
	}
	return &TraceRing{buf: make([]PlacementEvent, 0, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (r *TraceRing) Record(ev PlacementEvent) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.full = true
	r.dropped++
}

// Events returns the retained events, oldest first.
func (r *TraceRing) Events() []PlacementEvent {
	if !r.full {
		return append([]PlacementEvent(nil), r.buf...)
	}
	out := make([]PlacementEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events are retained.
func (r *TraceRing) Len() int { return len(r.buf) }

// Dropped returns how many events were evicted to stay within capacity.
func (r *TraceRing) Dropped() uint64 { return r.dropped }

// SetPlacementTracer installs (or, with nil, removes) the region's placement
// tracer. The zero state is no tracer: recording costs nothing unless one is
// installed. Regions configured through the deprecated RandomPlacement bool
// warn once, as a TraceDeprecated event, the first time a tracer attaches.
func (dc *DataCenter) SetPlacementTracer(t PlacementTracer) {
	dc.tracer = t
	if t != nil && dc.profile.legacyRandomPlacement && !dc.deprecationWarned {
		dc.deprecationWarned = true
		dc.trace(PlacementEvent{Kind: TraceDeprecated})
	}
}

// trace stamps and records one event if a tracer is installed.
func (dc *DataCenter) trace(ev PlacementEvent) {
	if dc.tracer == nil {
		return
	}
	dc.traceSeq++
	ev.Seq = dc.traceSeq
	ev.Time = dc.platform.sched.Now()
	ev.Region = dc.profile.Name
	ev.Policy = dc.policy.Name()
	dc.tracer.Record(ev)
}
