package faas

import "fmt"

// Fleet is a multi-region world built for sharded campaigns: R independent
// region worlds, one Platform (virtual clock + event kernel + RNG streams)
// per region, all derived from one root seed. Because every per-region
// stream derives from (seed, region name) without consuming parent
// randomness, each shard is byte-identical to the same region inside a
// combined multi-region Platform — and a one-region fleet is byte-identical
// to today's single-region platform. What the split buys is independence:
// each shard owns its clock, so R campaigns can advance time concurrently
// (one goroutine per shard, the simulator stays single-threaded per world)
// and merge deterministically, exactly like the experiments' trial engine.
type Fleet struct {
	seed   uint64
	shards []*DataCenter
	byName map[Region]*DataCenter
}

// NewFleet builds one independent region world per profile, all seeded from
// the same root seed. The same seed and profiles always produce an identical
// fleet; region order follows the profile order.
func NewFleet(seed uint64, profiles ...RegionProfile) (*Fleet, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("faas: fleet needs at least one region profile")
	}
	f := &Fleet{seed: seed, byName: make(map[Region]*DataCenter, len(profiles))}
	for _, prof := range profiles {
		if _, dup := f.byName[prof.Name]; dup {
			return nil, fmt.Errorf("faas: duplicate region %s in fleet", prof.Name)
		}
		p, err := NewPlatform(seed, prof)
		if err != nil {
			return nil, err
		}
		dc := p.MustRegion(prof.Name)
		f.shards = append(f.shards, dc)
		f.byName[prof.Name] = dc
	}
	return f, nil
}

// MustFleet is NewFleet, panicking on error; for tests and examples with
// static, known-good configurations.
func MustFleet(seed uint64, profiles ...RegionProfile) *Fleet {
	f, err := NewFleet(seed, profiles...)
	if err != nil {
		panic(err)
	}
	return f
}

// FleetOf adapts pre-built region worlds into a fleet, for callers that
// already hold a DataCenter (the experiments' trial jobs build their own).
// Regions must be distinct, and with two or more shards each must live on
// its own Platform: shards sharing a scheduler cannot advance independently,
// which would break both shard isolation and deterministic merging. A
// single-shard fleet may wrap a region of any platform — that is the
// compatibility path existing single-region experiments ride on.
func FleetOf(dcs ...*DataCenter) (*Fleet, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("faas: fleet needs at least one region")
	}
	f := &Fleet{
		seed:   dcs[0].Platform().Seed(),
		byName: make(map[Region]*DataCenter, len(dcs)),
	}
	for i, dc := range dcs {
		if _, dup := f.byName[dc.Region()]; dup {
			return nil, fmt.Errorf("faas: duplicate region %s in fleet", dc.Region())
		}
		for _, prev := range dcs[:i] {
			if len(dcs) > 1 && prev.Platform() == dc.Platform() {
				return nil, fmt.Errorf("faas: fleet shards %s and %s share a platform (each shard needs its own clock)",
					prev.Region(), dc.Region())
			}
		}
		f.shards = append(f.shards, dc)
		f.byName[dc.Region()] = dc
	}
	return f, nil
}

// Seed returns the root seed the fleet's shards were built from.
func (f *Fleet) Seed() uint64 { return f.seed }

// Size returns the number of region shards.
func (f *Fleet) Size() int { return len(f.shards) }

// Regions lists the shard regions in construction order.
func (f *Fleet) Regions() []Region {
	out := make([]Region, len(f.shards))
	for i, dc := range f.shards {
		out[i] = dc.Region()
	}
	return out
}

// Shards returns the region worlds in construction order.
func (f *Fleet) Shards() []*DataCenter { return append([]*DataCenter(nil), f.shards...) }

// Region returns the shard with the given name.
func (f *Fleet) Region(r Region) (*DataCenter, error) {
	dc, ok := f.byName[r]
	if !ok {
		return nil, fmt.Errorf("faas: region %s not in fleet", r)
	}
	return dc, nil
}

// MustRegion is Region, panicking on an unknown name.
func (f *Fleet) MustRegion(r Region) *DataCenter {
	dc, err := f.Region(r)
	if err != nil {
		panic(err)
	}
	return dc
}
