package faas

import "eaao/internal/simtime"

// LeastLoadedPolicy is a classic bin-packing orchestrator: every batch goes
// to the currently emptiest hosts, packed at the usual base density, with no
// per-tenant affinity state at all. It exists to prove the policy layer is
// genuinely pluggable and as a middle point for the policy-ablation study:
// placement is fully deterministic given fleet load, so an attacker who can
// raise load pressure steers their own placement — but in a quiet fleet
// everyone's instances funnel onto the same few hosts.
type LeastLoadedPolicy struct {
	policyDefaults
}

// Name returns "least-loaded".
func (LeastLoadedPolicy) Name() string { return "least-loaded" }

// Place packs the batch onto the emptiest hosts at base density. It draws no
// randomness: ties break by host id, so placement is a pure function of
// fleet load.
func (LeastLoadedPolicy) Place(req PlacementRequest, b *PlacementBatch) {
	s := req.Service
	p := s.account.dc.profile
	hostCount := (req.Count + p.BasePerHostCap - 1) / p.BasePerHostCap
	if hostCount > len(s.account.dc.hosts) {
		hostCount = len(s.account.dc.hosts)
	}
	b.Spread(hostsByLoad(s.account.dc.hosts)[:hostCount], req.Count)
}

// Recycle moves the migrated instance to the emptiest host.
func (LeastLoadedPolicy) Recycle(svc *Service, oldID string, now simtime.Time) *Host {
	return hostsByLoad(svc.account.dc.hosts)[0]
}
