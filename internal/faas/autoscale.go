package faas

import (
	"fmt"
	"time"

	"eaao/internal/simtime"
)

// Autoscaling (§2.2): beyond the connection-pinning Launch API (the paper's
// measurement setup: one WebSocket per instance), services can be driven by
// a request load. The autoscaler sizes the instance pool to
// ceil(concurrent demand / per-instance concurrency), scaling out through
// the same placement policy as Launch — so demand surges trigger the same
// base-host/helper-host behavior the attack exploits — and scaling in by
// idling excess instances, which the idle reaper then terminates gradually.

// DefaultMaxConcurrency is Cloud Run's default per-instance request
// concurrency. The paper's experiments configure 1 (each instance handles a
// single connection); ordinary services keep the default.
const DefaultMaxConcurrency = 80

// autoscaleInterval is the autoscaler's evaluation period.
const autoscaleInterval = 15 * time.Second

// SetDemand sets the service's sustained concurrent-request demand and
// starts (or re-targets) its autoscaler. A demand of zero releases all
// instances to idle. The first evaluation happens immediately; subsequent
// ones every 15 seconds, so instance counts converge within one tick and
// then track demand changes.
func (s *Service) SetDemand(concurrent int) error {
	if concurrent < 0 {
		return fmt.Errorf("faas: negative demand")
	}
	s.demand = concurrent
	if !s.autoscaling {
		s.autoscaling = true
		s.autoscaleTick(s.account.dc.platform.sched.Now())
	}
	return nil
}

// Demand returns the current configured concurrent-request demand.
func (s *Service) Demand() int { return s.demand }

// desiredInstances converts demand to an instance target.
func (s *Service) desiredInstances() int {
	mc := s.maxConcurrency
	if mc <= 0 {
		mc = DefaultMaxConcurrency
	}
	return (s.demand + mc - 1) / mc
}

// autoscaleTick evaluates the target once and reschedules itself while
// autoscaling is enabled.
func (s *Service) autoscaleTick(now simtime.Time) {
	if !s.autoscaling {
		return
	}
	target := s.desiredInstances()
	active := s.activeCount
	switch {
	case target > active:
		// Scale out through the regular launch path so demand bookkeeping
		// (hot streaks, helper unlocking) behaves identically to Launch.
		// Launch(target) is scale-to-target, not create-target: the `active`
		// connected instances are reused as-is and only the shortfall
		// target-active is created (TestAutoscaleLaunchesShortfallOnly pins
		// this), so a converged service creates nothing here.
		if _, err := s.Launch(target); err != nil {
			// Quota exhaustion: serve what we can at the cap. Scaling to the
			// quota q creates at most the capped shortfall q-active; when the
			// failure was not the quota (a fault-plane rejection), target ≤ q
			// and this tick simply skips — the next one retries.
			if q := s.account.Quota(); target > q && q > active {
				_, _ = s.Launch(q)
			}
		}
	case target < active:
		s.scaleIn(active - target)
	}
	if s.demand == 0 && s.activeCount == 0 {
		// Nothing to manage until demand returns.
		s.autoscaling = false
		return
	}
	s.account.dc.platform.sched.ArmHandlerAfter(&s.tickEvent, autoscaleInterval, s)
}

// scaleIn idles the n most recently created active instances (LIFO: the
// oldest instances are the warmest and are kept serving).
func (s *Service) scaleIn(n int) {
	now := s.account.dc.platform.sched.Now()
	sched := s.account.dc.platform.sched
	p := s.account.dc.profile
	idled := 0
	for i := len(s.insts) - 1; i >= 0 && idled < n; i-- {
		inst := s.insts[i]
		if inst == nil || inst.state != StateActive {
			continue
		}
		inst.goIdle(now)
		delay := p.IdleGrace + time.Duration(s.rng.Range(0, float64(p.IdleTerminationSpan)))
		at := now.Add(delay)
		inst.termAt = at
		sched.Cancel(&inst.termEvent)
		sched.ArmHandler(&inst.termEvent, at, inst)
		idled++
	}
}
