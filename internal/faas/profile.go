// Package faas simulates a Cloud-Run-like Function-as-a-Service platform:
// physical hosts with TSC physics, accounts, services, container instances,
// and an orchestrator whose placement policy reproduces the behaviours the
// paper reverse-engineered on Google Cloud Run (§5.1, Observations 1–6):
//
//  1. Instances of one service share hosts, spread close to uniformly.
//  2. Idle instances are terminated gradually over ~12 minutes.
//  3. Each account has a preferred set of "base hosts", stable across
//     launches and shared by all of the account's services and sizes.
//  4. Different accounts get different base hosts.
//  5. A service with high demand inside a ~30-minute window spills new
//     instances onto extra "helper hosts" (load balancing), saturating after
//     a few launches.
//  6. Helper-host sets are per-service, different but overlapping.
//
// The attacker-facing surface is identical to the real platform's: deploy
// services, open connections to scale instances out, run guest code inside
// each instance's sandbox, and observe lifecycle signals (SIGTERM). All
// placement internals are private to the simulator; attack code must infer
// them exactly as the paper does.
package faas

import (
	"fmt"
	"time"

	"eaao/internal/sandbox"
)

// Region names a simulated data center.
type Region string

// The three Cloud Run data centers studied in the paper.
const (
	USEast1    Region = "us-east1"
	USCentral1 Region = "us-central1"
	USWest1    Region = "us-west1"
)

// RegionProfile parameterizes one data center's fleet and orchestrator
// personality. The defaults below are calibrated so that the paper's
// experiments reproduce their published shapes (see DESIGN.md §3 and
// EXPERIMENTS.md).
type RegionProfile struct {
	// Name is the region identifier.
	Name Region

	// NumHosts is the true number of physical hosts. The paper only ever
	// observes a lower bound (e.g. "at least 1702 hosts" in us-central1);
	// the simulator knows the truth so experiments can report both.
	NumHosts int

	// PlacementGroups partitions the fleet for base-host assignment: an
	// account's base hosts are drawn from the group its identity hashes to.
	// Small regions have few groups, so two accounts sometimes collide —
	// which is exactly the "base hosts happen to be highly overlapped"
	// situation that made the naive strategy accidentally succeed in
	// us-west1 (§5.2).
	PlacementGroups int

	// BasePoolSize is the number of hosts in one account's base pool.
	BasePoolSize int

	// BasePerHostCap is the target number of instances of one service
	// packed per base host (the paper observed 10–11 per host for 800
	// instances on 75 hosts).
	BasePerHostCap int

	// HelperPerHostCap is the thinner packing used on helper hosts: the
	// load balancer's goal is relieving pressure, so it spreads wide.
	HelperPerHostCap int

	// AccountHelperPool is the size of the account-level helper pool from
	// which each service's helper set is mostly drawn. Same-account
	// services therefore share most helper hosts (the paper's six-service
	// attacker covered only modestly more hosts than one service).
	AccountHelperPool int

	// ServiceHelperSize is how many helper hosts a single service can
	// saturate (its helper set size). Must not exceed AccountHelperPool.
	ServiceHelperSize int

	// ServiceHelperFresh is how many helper hosts a service draws from the
	// whole fleet rather than the account pool; this produces the gradual
	// cumulative-footprint growth across episodes in Fig. 10.
	ServiceHelperFresh int

	// HelperSaturationLaunches is the number of consecutive hot launches
	// after which the helper set stops expanding (Obs. 5: "after a certain
	// number of repeated launches, this behavior saturates").
	HelperSaturationLaunches int

	// DemandWindow is the look-back window of the load balancer; launches
	// spaced further apart than this never trigger helper placement.
	DemandWindow time.Duration

	// IdleGrace is how long idle instances are always preserved.
	IdleGrace time.Duration

	// IdleTerminationSpan is the span after IdleGrace over which idle
	// instances are gradually terminated (all gone by grace+span).
	IdleTerminationSpan time.Duration

	// DynamicPlacement marks regions (us-central1) where the orchestrator
	// reshuffles part of an account's base pool on every cold launch.
	DynamicPlacement bool

	// DynamicResampleFrac is the fraction of the base pool resampled per
	// cold launch when DynamicPlacement is set.
	DynamicResampleFrac float64

	// ProblematicHostFrac is the fraction of hosts whose timekeeping is
	// disturbed enough to break measured-frequency estimation (§4.2
	// method 2; the paper saw 58/586 ≈ 10%).
	ProblematicHostFrac float64

	// MaintenanceBatchFrac is the fraction of hosts that were rebooted in
	// clustered maintenance windows, giving several hosts near-identical
	// boot times (the source of false positives at coarse p_boot, Fig. 4).
	MaintenanceBatchFrac float64

	// MaxBootAge bounds how long ago hosts booted; uptimes are spread over
	// (0, MaxBootAge].
	MaxBootAge time.Duration

	// InstanceChurnPerHour is the probability per hour that a connected
	// instance is recycled onto a (possibly) different host; this breaks
	// long fingerprint histories as observed in the week-long Fig. 5 run.
	InstanceChurnPerHour float64

	// MaxInstancesPerService is the platform quota (Cloud Run: 1000).
	MaxInstancesPerService int

	// NewAccountQuota caps instances per service for newly created accounts
	// until they mature (cloud providers limit fresh accounts; the paper
	// notes this as the main obstacle to multi-account attacks, §5.2).
	NewAccountQuota int

	// Mitigations enables the §6 TSC-masking defenses fleet-wide.
	Mitigations sandbox.Mitigations

	// RandomPlacement enables the co-location-resistant scheduling defense
	// §6 also cites [6, 37]: the orchestrator ignores base-host affinity
	// and helper preferences and scatters instances uniformly across the
	// fleet. It removes the placement structure the attack exploits — at
	// the price of image locality (every launch lands mostly on hosts that
	// have never run the service, i.e. cold starts).
	//
	// Deprecated: this is the historical knob, kept working; it maps to
	// RandomUniformPolicy. Set Policy instead, which always wins.
	RandomPlacement bool

	// Policy selects the region's placement engine. nil means the default:
	// CloudRunPolicy (or RandomUniformPolicy when the deprecated
	// RandomPlacement bool is set).
	Policy PlacementPolicy

	// Faults configures the region's injected-failure plane (launch
	// rejections, preemption, covert-channel misfires, probe failures). The
	// zero value disables every fault and leaves the simulation
	// byte-identical to a fault-free build; see FaultPlan.
	Faults FaultPlan

	// Traffic configures the region's background-tenant workload: a
	// population of bystander accounts whose autoscaled demand keeps the
	// fleet realistically occupied while experiments run (see TrafficModel).
	// The zero value disables the layer and leaves the simulation
	// byte-identical to a build without it. Requires the event kernel
	// (incompatible with LegacySweeps).
	Traffic TrafficModel

	// LegacySweeps restores the pre-event-kernel lifecycle implementation:
	// the hourly churn/preemption sweep that scans every instance of the
	// region (scheduleChurnSweep) and lazy demand-decay detection at the next
	// launch. The legacy path is frozen — it exists so the golden-digest test
	// can prove it still reproduces the historical behavior byte for byte —
	// and costs O(instances) per simulated hour; leave it false everywhere
	// else. The default (false) runs the per-instance event kernel, which
	// additionally guarantees a freshly created instance one full
	// lifecycleInterval of immunity before its first churn/preemption draw
	// (the sweep could preempt a replacement in the same sweep it was born).
	LegacySweeps bool

	// legacyRandomPlacement remembers that normalize folded the deprecated
	// RandomPlacement bool into Policy, so the trace hook can emit a one-shot
	// deprecation event (TraceDeprecated) when a tracer attaches.
	legacyRandomPlacement bool
}

// normalize folds deprecated knobs into their modern equivalents before the
// profile is frozen into a data center. It is the only place the deprecated
// RandomPlacement bool is read: after normalization, Policy is authoritative
// everywhere else.
func (p *RegionProfile) normalize() {
	if p.Policy == nil && p.RandomPlacement {
		p.Policy = RandomUniformPolicy{}
		p.legacyRandomPlacement = true
	}
}

// Validate checks the profile for internal consistency.
func (p RegionProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("faas: profile has no region name")
	case p.NumHosts <= 0:
		return fmt.Errorf("faas: %s: NumHosts must be positive", p.Name)
	case p.PlacementGroups <= 0 || p.PlacementGroups > p.NumHosts:
		return fmt.Errorf("faas: %s: PlacementGroups out of range", p.Name)
	case p.BasePoolSize <= 0 || p.BasePoolSize > p.NumHosts/p.PlacementGroups:
		return fmt.Errorf("faas: %s: BasePoolSize %d exceeds group size %d",
			p.Name, p.BasePoolSize, p.NumHosts/p.PlacementGroups)
	case p.BasePerHostCap <= 0 || p.HelperPerHostCap <= 0:
		return fmt.Errorf("faas: %s: per-host caps must be positive", p.Name)
	case p.AccountHelperPool <= 0 || p.AccountHelperPool > p.NumHosts:
		return fmt.Errorf("faas: %s: AccountHelperPool out of range", p.Name)
	case p.ServiceHelperSize <= 0 || p.ServiceHelperSize > p.AccountHelperPool:
		return fmt.Errorf("faas: %s: ServiceHelperSize exceeds account pool", p.Name)
	case p.ServiceHelperFresh < 0:
		return fmt.Errorf("faas: %s: ServiceHelperFresh negative", p.Name)
	case p.HelperSaturationLaunches <= 0:
		return fmt.Errorf("faas: %s: HelperSaturationLaunches must be positive", p.Name)
	case p.DemandWindow <= 0 || p.IdleGrace < 0 || p.IdleTerminationSpan <= 0:
		return fmt.Errorf("faas: %s: invalid timing parameters", p.Name)
	case p.DynamicResampleFrac < 0 || p.DynamicResampleFrac > 1:
		return fmt.Errorf("faas: %s: DynamicResampleFrac out of [0,1]", p.Name)
	case p.ProblematicHostFrac < 0 || p.ProblematicHostFrac > 1:
		return fmt.Errorf("faas: %s: ProblematicHostFrac out of [0,1]", p.Name)
	case p.MaintenanceBatchFrac < 0 || p.MaintenanceBatchFrac > 1:
		return fmt.Errorf("faas: %s: MaintenanceBatchFrac out of [0,1]", p.Name)
	case p.MaxBootAge <= 0:
		return fmt.Errorf("faas: %s: MaxBootAge must be positive", p.Name)
	case p.InstanceChurnPerHour < 0 || p.InstanceChurnPerHour > 1:
		return fmt.Errorf("faas: %s: InstanceChurnPerHour out of [0,1]", p.Name)
	case p.MaxInstancesPerService <= 0:
		return fmt.Errorf("faas: %s: MaxInstancesPerService must be positive", p.Name)
	}
	if err := p.Faults.Validate(); err != nil {
		return err
	}
	if p.Traffic.Enabled() && p.LegacySweeps {
		return fmt.Errorf("faas: %s: background traffic requires the event kernel (LegacySweeps must be false)", p.Name)
	}
	if err := p.Traffic.Validate(); err != nil {
		return fmt.Errorf("faas: %s: %w", p.Name, err)
	}
	return nil
}

// baseProfile holds the parameters shared by all three default regions.
func baseProfile() RegionProfile {
	return RegionProfile{
		BasePerHostCap:           11,
		HelperPerHostCap:         3,
		HelperSaturationLaunches: 3,
		DemandWindow:             30 * time.Minute,
		IdleGrace:                115 * time.Second,
		IdleTerminationSpan:      10 * time.Minute,
		ProblematicHostFrac:      0.10,
		MaintenanceBatchFrac:     0.30,
		MaxBootAge:               45 * 24 * time.Hour,
		InstanceChurnPerHour:     0.02,
		MaxInstancesPerService:   1000,
	}
}

// USEast1Profile returns the default us-east1 personality: a mid-sized fleet
// (the paper found 474 apparent hosts) with stable placement.
func USEast1Profile() RegionProfile {
	p := baseProfile()
	p.Name = USEast1
	p.NumHosts = 500
	p.PlacementGroups = 5
	p.BasePoolSize = 96
	p.AccountHelperPool = 260
	p.ServiceHelperSize = 190
	p.ServiceHelperFresh = 15
	return p
}

// USCentral1Profile returns the default us-central1 personality: the largest
// fleet (paper: at least 1702 hosts) with dynamic placement.
func USCentral1Profile() RegionProfile {
	p := baseProfile()
	p.Name = USCentral1
	p.NumHosts = 1800
	p.PlacementGroups = 15
	p.BasePoolSize = 110
	p.AccountHelperPool = 750
	p.ServiceHelperSize = 420
	p.ServiceHelperFresh = 70
	p.DynamicPlacement = true
	p.DynamicResampleFrac = 0.5
	return p
}

// USWest1Profile returns the default us-west1 personality: a small fleet
// (paper: 199 apparent hosts) where base pools of different accounts often
// collide.
func USWest1Profile() RegionProfile {
	p := baseProfile()
	p.Name = USWest1
	p.NumHosts = 205
	p.PlacementGroups = 2
	p.BasePoolSize = 92
	p.AccountHelperPool = 130
	p.ServiceHelperSize = 105
	p.ServiceHelperFresh = 10
	return p
}

// DefaultProfiles returns the three studied data centers.
func DefaultProfiles() []RegionProfile {
	return []RegionProfile{USEast1Profile(), USCentral1Profile(), USWest1Profile()}
}
