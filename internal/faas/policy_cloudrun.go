package faas

import (
	"sort"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// CloudRunPolicy is the calibrated reproduction of the placement behavior the
// paper reverse-engineered on Google Cloud Run (§5.1, Obs. 1–6): stable
// per-account base pools packed near-uniformly, per-service helper sets
// unlocked proportionally to the demand streak, and base-pool recycling for
// migrated instances. It is the default policy of every region profile.
type CloudRunPolicy struct {
	policyDefaults
}

// cloudRunState is CloudRunPolicy's per-service state: the
// preference-ordered helper hosts the service can expand onto. How many are
// unlocked is a pure function of the demand streak, recomputed per placement.
type cloudRunState struct {
	helpers []*Host
}

// Name returns "cloudrun".
func (CloudRunPolicy) Name() string { return "cloudrun" }

// NewService builds the service's helper set from the deployment-time
// preference stream.
func (CloudRunPolicy) NewService(svc *Service, rng *randx.Source) any {
	return &cloudRunState{helpers: buildHelperSet(svc, rng)}
}

// Place splits the batch between helper hosts (when demand has unlocked any)
// and the account's base hosts.
func (CloudRunPolicy) Place(req PlacementRequest, b *PlacementBatch) {
	s := req.Service
	p := s.account.dc.profile
	st := s.policyState.(*cloudRunState)

	// Helper hosts unlock proportionally to the streak, saturating after
	// HelperSaturationLaunches hot launches (Obs. 5). The unlocked count is
	// monotone within a streak and resets on cold, so recomputing it here is
	// equivalent to tracking a running maximum across launches.
	helperFrac := 0.0
	helperActive := 0
	if req.HotStreak > 0 {
		steps := req.HotStreak
		if steps > p.HelperSaturationLaunches {
			steps = p.HelperSaturationLaunches
		}
		helperFrac = 0.3 * float64(steps)
		if helperFrac > 0.85 {
			helperFrac = 0.85
		}
		helperActive = len(st.helpers) * steps / p.HelperSaturationLaunches
	}
	helperN := int(helperFrac * float64(req.Count))

	// Helper placement: thin spread across the entire unlocked helper
	// window — the load balancer's goal is relieving the base hosts, so it
	// spreads as wide as the window allows (at most HelperPerHostCap per
	// host). Anything the unlocked helpers cannot absorb spills to base.
	if helperN > 0 && helperActive > 0 {
		active := st.helpers[:helperActive]
		placed := helperN
		if capacity := len(active) * p.HelperPerHostCap; placed > capacity {
			placed = capacity
		}
		b.Spread(active, placed)
	}

	// Base placement: near-uniform packing (10–11 per host, Obs. 1) over a
	// preference-weighted selection from the account's base pool.
	baseN := req.Count - b.Placed()
	if baseN > 0 {
		hostCount := (baseN + p.BasePerHostCap - 1) / p.BasePerHostCap
		if hostCount > len(s.account.basePool) {
			hostCount = len(s.account.basePool)
		}
		hosts := rankedBaseSelection(req.RNG, s.account.basePool, hostCount)
		b.Spread(hosts, baseN)
	}
}

// Recycle re-places a migrated instance onto a noisy base-pool selection,
// keeping the tenant's footprint anchored to its base hosts.
func (CloudRunPolicy) Recycle(svc *Service, oldID string, now simtime.Time) *Host {
	return recycleBaseDraw(svc, oldID)
}

// OnDemandDecay resamples part of the base pool in dynamic regions
// (us-central1) whenever the service goes cold.
func (CloudRunPolicy) OnDemandDecay(svc *Service, now simtime.Time) {
	dynamicDecay(svc)
}

// buildHelperSet composes a service's helper hosts: mostly a draw from the
// account-level helper pool (so same-account services overlap heavily),
// plus a few fresh fleet-wide hosts interleaved throughout the expansion
// order (so each new service's footprint grows the cumulative one, Fig. 10).
func buildHelperSet(s *Service, rng *randx.Source) []*Host {
	p := s.account.dc.profile
	fromAccount := noisyTopSample(rng, s.account.helpers, p.ServiceHelperSize, sigmaHelper, nil)
	excl := make(map[*Host]bool, len(fromAccount))
	for _, h := range fromAccount {
		excl[h] = true
	}
	for _, h := range s.account.basePool {
		excl[h] = true // base hosts are not helpers
	}
	fresh := noisyTopSample(rng, s.account.dc.hosts, p.ServiceHelperFresh, sigmaFresh, excl)

	// Interleave fresh entries uniformly into the account-pool order.
	out := make([]*Host, 0, len(fromAccount)+len(fresh))
	out = append(out, fromAccount...)
	for _, h := range fresh {
		pos := rng.Intn(len(out) + 1)
		out = append(out, nil)
		copy(out[pos+1:], out[pos:])
		out[pos] = h
	}
	return out
}

// rankedBaseSelection picks hostCount hosts from the preference-ordered base
// pool by noisy rank: the front of the pool is used on virtually every
// launch (so a tenant's repeated launches reuse the same hosts — the
// stability the re-attack optimization banks on), while rank noise lets
// repeated cold launches slowly explore the pool tail (Fig. 7's slight
// cumulative growth).
func rankedBaseSelection(rng *randx.Source, pool []*Host, hostCount int) []*Host {
	if hostCount >= len(pool) {
		return append([]*Host(nil), pool...)
	}
	const rankNoise = 3.0
	type scored struct {
		h     *Host
		score float64
	}
	cand := make([]scored, len(pool))
	for i, h := range pool {
		cand[i] = scored{h: h, score: float64(i) + rng.Normal(0, rankNoise)}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].score < cand[j].score })
	out := make([]*Host, hostCount)
	for i := range out {
		out[i] = cand[i].h
	}
	return out
}

// recycleBaseDraw is the platform's historical replacement-host draw: a
// noisy base-pool selection seeded by the recycled instance's identity.
func recycleBaseDraw(svc *Service, oldID string) *Host {
	hostCount := 1 + len(svc.account.basePool)/8
	hosts := rankedBaseSelection(svc.rng.Derive("recycle", oldID), svc.account.basePool, hostCount)
	return hosts[svc.rng.Intn(len(hosts))]
}
