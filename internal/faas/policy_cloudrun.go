package faas

import (
	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// CloudRunPolicy is the calibrated reproduction of the placement behavior the
// paper reverse-engineered on Google Cloud Run (§5.1, Obs. 1–6): stable
// per-account base pools packed near-uniformly, per-service helper sets
// unlocked proportionally to the demand streak, and base-pool recycling for
// migrated instances. It is the default policy of every region profile.
type CloudRunPolicy struct {
	policyDefaults
}

// cloudRunState is CloudRunPolicy's per-service state: the
// preference-ordered helper hosts the service can expand onto. How many are
// unlocked is a pure function of the demand streak, recomputed per placement.
type cloudRunState struct {
	helpers []*Host
}

// Name returns "cloudrun".
func (CloudRunPolicy) Name() string { return "cloudrun" }

// NewService builds the service's helper set from the deployment-time
// preference stream.
func (CloudRunPolicy) NewService(svc *Service, rng *randx.Source) any {
	return &cloudRunState{helpers: buildHelperSet(svc, rng)}
}

// Place splits the batch between helper hosts (when demand has unlocked any)
// and the account's base hosts.
func (CloudRunPolicy) Place(req PlacementRequest, b *PlacementBatch) {
	s := req.Service
	p := s.account.dc.profile
	st := s.policyState.(*cloudRunState)

	// Helper hosts unlock proportionally to the streak, saturating after
	// HelperSaturationLaunches hot launches (Obs. 5). The unlocked count is
	// monotone within a streak and resets on cold, so recomputing it here is
	// equivalent to tracking a running maximum across launches.
	helperFrac := 0.0
	helperActive := 0
	if req.HotStreak > 0 {
		steps := req.HotStreak
		if steps > p.HelperSaturationLaunches {
			steps = p.HelperSaturationLaunches
		}
		helperFrac = 0.3 * float64(steps)
		if helperFrac > 0.85 {
			helperFrac = 0.85
		}
		helperActive = len(st.helpers) * steps / p.HelperSaturationLaunches
	}
	helperN := int(helperFrac * float64(req.Count))

	// Helper placement: thin spread across the entire unlocked helper
	// window — the load balancer's goal is relieving the base hosts, so it
	// spreads as wide as the window allows (at most HelperPerHostCap per
	// host). Anything the unlocked helpers cannot absorb spills to base.
	if helperN > 0 && helperActive > 0 {
		active := st.helpers[:helperActive]
		placed := helperN
		if capacity := len(active) * p.HelperPerHostCap; placed > capacity {
			placed = capacity
		}
		b.Spread(active, placed)
	}

	// Base placement: near-uniform packing (10–11 per host, Obs. 1) over a
	// preference-weighted selection from the account's base pool.
	baseN := req.Count - b.Placed()
	if baseN > 0 {
		hostCount := (baseN + p.BasePerHostCap - 1) / p.BasePerHostCap
		if hostCount > len(s.account.basePool) {
			hostCount = len(s.account.basePool)
		}
		hosts := rankedBaseSelection(req.RNG, s.account, s.account.basePool, hostCount)
		b.Spread(hosts, baseN)
	}
}

// Recycle re-places a migrated instance onto a noisy base-pool selection,
// keeping the tenant's footprint anchored to its base hosts.
func (CloudRunPolicy) Recycle(svc *Service, oldID string, now simtime.Time) *Host {
	return recycleBaseDraw(svc, oldID)
}

// OnDemandDecay resamples part of the base pool in dynamic regions
// (us-central1) whenever the service goes cold.
func (CloudRunPolicy) OnDemandDecay(svc *Service, now simtime.Time) {
	dynamicDecay(svc)
}

// buildHelperSet composes a service's helper hosts: mostly a draw from the
// account-level helper pool (so same-account services overlap heavily),
// plus a few fresh fleet-wide hosts interleaved throughout the expansion
// order (so each new service's footprint grows the cumulative one, Fig. 10).
func buildHelperSet(s *Service, rng *randx.Source) []*Host {
	a := s.account
	p := a.dc.profile
	fromAccount := a.noisyTopSample(rng, a.helpers, p.ServiceHelperSize, sigmaHelper, noExclusion)
	mark := a.dc.platform.nextMark()
	for _, h := range fromAccount {
		h.mark = mark
	}
	for _, h := range a.basePool {
		h.mark = mark // base hosts are not helpers
	}
	fresh := a.noisyTopSample(rng, a.dc.hosts, p.ServiceHelperFresh, sigmaFresh, mark)

	// Interleave fresh entries uniformly into the account-pool order. The
	// historical implementation inserted each fresh host with an O(n) slice
	// shift; this computes the same final layout in one merge pass by
	// resolving the insertion positions first. Drawing pos_i against the
	// growing length len(fromAccount)+i+1 reproduces the old rng.Intn
	// sequence exactly; an insertion at or before an earlier fresh host's
	// slot shifts that slot up by one, and the account-pool hosts keep
	// their relative order in whatever slots remain.
	pos := make([]int, len(fresh))
	for i := range fresh {
		pi := rng.Intn(len(fromAccount) + i + 1)
		for j := 0; j < i; j++ {
			if pi <= pos[j] {
				pos[j]++
			}
		}
		pos[i] = pi
	}
	out := make([]*Host, len(fromAccount)+len(fresh))
	for i, h := range fresh {
		out[pos[i]] = h
	}
	next := 0
	for i := range out {
		if out[i] == nil {
			out[i] = fromAccount[next]
			next++
		}
	}
	return out
}

// rankNoise is the sigma of the per-launch rank perturbation in
// rankedBaseSelection; its continuous distribution makes exact score ties
// have probability zero, so ordering by score alone is a total order in
// practice and quickselect reproduces the historical full sort exactly.
const rankNoise = 3.0

// rankedBaseSelection picks hostCount hosts from the preference-ordered base
// pool by noisy rank: the front of the pool is used on virtually every
// launch (so a tenant's repeated launches reuse the same hosts — the
// stability the re-attack optimization banks on), while rank noise lets
// repeated cold launches slowly explore the pool tail (Fig. 7's slight
// cumulative growth).
//
// The returned slice is backed by region-level scratch: valid until the
// region's next selection, which is fine for its one consumer (an immediate
// PlacementBatch.Spread).
func rankedBaseSelection(rng *randx.Source, a *Account, pool []*Host, hostCount int) []*Host {
	out := a.dc.hostBuf[:0]
	if hostCount >= len(pool) {
		out = append(out, pool...)
		a.dc.hostBuf = out[:0]
		return out
	}
	cand := a.dc.scoreBuf[:0]
	for i, h := range pool {
		cand = append(cand, hostScore{h: h, score: float64(i) + rng.Normal(0, rankNoise)})
	}
	a.dc.scoreBuf = cand[:0]
	topK(cand, hostCount, byScore{})
	for i := 0; i < hostCount; i++ {
		out = append(out, cand[i].h)
	}
	a.dc.hostBuf = out[:0]
	return out
}

// recycleBaseDraw is the platform's historical replacement-host draw: a
// noisy base-pool selection seeded by the recycled instance's identity. Only
// one host of the ranked selection is ever used, so instead of materializing
// the whole top-hostCount prefix it draws the rank first and quickselects
// exactly that element — same derived-RNG scoring draws, same service-stream
// Intn draw, same host, O(P) instead of O(P log P).
func recycleBaseDraw(svc *Service, oldID string) *Host {
	a := svc.account
	pool := a.basePool
	hostCount := 1 + len(pool)/8
	if hostCount >= len(pool) {
		// Historical behavior: the ranked selection degenerates to a copy
		// of the whole pool (no scoring draws), then a uniform pick.
		return pool[svc.rng.Intn(len(pool))]
	}
	rng := svc.rng.DeriveInto(&a.dc.deriveScratch, "recycle", oldID)
	cand := a.dc.scoreBuf[:0]
	for i, h := range pool {
		cand = append(cand, hostScore{h: h, score: float64(i) + rng.Normal(0, rankNoise)})
	}
	a.dc.scoreBuf = cand[:0]
	k := svc.rng.Intn(hostCount)
	return selectRank(cand, k, byScore{})
}
