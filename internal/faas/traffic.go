package faas

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// Background-tenant traffic: the "living cloud" the paper measured against.
// A TrafficModel on the RegionProfile keeps a population of bystander
// accounts churning while experiments run — heavy-tailed (Zipf) service
// sizes, bursty Poisson demand re-draws, and a diurnal envelope — so that
// load-sensitive covert channels (the LLC) and placement contention see
// realistic occupancy instead of an empty fleet.
//
// The whole layer is data plus intrusive kernel events: tenants are plain
// structs whose demand re-draw timer is a simtime.Event dispatched through
// trafficTenant's Handler implementation, and every random decision is a
// stateless randx.Mix draw addressed by (tenant rank, draw counter). No
// closures, no maps, no wall-clock state — a loaded world snapshots and
// forks exactly like a quiet one, and a zero TrafficModel leaves the
// simulation byte-identical to a build without this file.

// TrafficModel parameterizes one region's background-tenant workload. The
// zero value disables the layer entirely. It is plain data (no functions,
// maps, or pointers) by design: experiment world keys print it with %#v and
// snapshots copy it by value.
type TrafficModel struct {
	// Tenants is the number of bystander accounts (one autoscaled service
	// each). 0 disables background traffic.
	Tenants int

	// TargetUtilization is the aggregate demand target as a fraction of the
	// region's base capacity (NumHosts × BasePerHostCap). Individual tenants
	// burst above and below it; the fleet hovers around it. 0 disables
	// background traffic.
	TargetUtilization float64

	// ZipfExponent shapes the heavy-tailed split of the aggregate demand
	// across tenants (tenant i's share ∝ 1/(i+1)^s): a few whales, many
	// small services. 0 means the default 1.1.
	ZipfExponent float64

	// BurstsPerHour is the Poisson rate at which each tenant re-draws its
	// demand (bursty arrivals: re-draw instants are exponentially spaced).
	// 0 means the default 4.
	BurstsPerHour float64

	// BurstSigma is the lognormal shape of the per-redraw demand multiplier
	// (unit mean). 0 means the default 0.45.
	BurstSigma float64

	// DiurnalAmplitude is the relative swing of the day/night demand
	// envelope, in [0, 1). 0 keeps demand flat.
	DiurnalAmplitude float64

	// DiurnalPeriod is the envelope's period. 0 means the default 24 h.
	DiurnalPeriod time.Duration

	// CongestionKnee is the utilization above which the orchestrator starts
	// shedding launches; CongestionRejectRate is the rejection probability
	// reached at (or beyond) full utilization, ramping linearly from the
	// knee. A zero rate disables congestion rejections (the load then only
	// affects channel noise and placement, never launch admission). Knee 0
	// means the default 0.85.
	CongestionKnee       float64
	CongestionRejectRate float64
}

// DefaultTrafficModel returns a fully-shaped model at the given population
// and utilization target: Zipf 1.1, 4 bursty re-draws per hour at lognormal
// σ 0.45, a 25% diurnal swing, and congestion rejections ramping to 35%
// past 85% utilization.
func DefaultTrafficModel(tenants int, utilization float64) TrafficModel {
	return TrafficModel{
		Tenants:              tenants,
		TargetUtilization:    utilization,
		ZipfExponent:         1.1,
		BurstsPerHour:        4,
		BurstSigma:           0.45,
		DiurnalAmplitude:     0.25,
		DiurnalPeriod:        24 * time.Hour,
		CongestionKnee:       0.85,
		CongestionRejectRate: 0.35,
	}
}

// Enabled reports whether the model generates any traffic.
func (m TrafficModel) Enabled() bool { return m.Tenants > 0 && m.TargetUtilization > 0 }

// Validate checks the model's parameters.
func (m TrafficModel) Validate() error {
	switch {
	case m.Tenants < 0:
		return fmt.Errorf("faas: TrafficModel.Tenants negative")
	case m.TargetUtilization < 0 || m.TargetUtilization > 1.5:
		return fmt.Errorf("faas: TrafficModel.TargetUtilization %v out of [0,1.5]", m.TargetUtilization)
	case m.ZipfExponent < 0 || m.ZipfExponent > 4:
		return fmt.Errorf("faas: TrafficModel.ZipfExponent %v out of [0,4]", m.ZipfExponent)
	case m.BurstsPerHour < 0:
		return fmt.Errorf("faas: TrafficModel.BurstsPerHour negative")
	case m.BurstSigma < 0 || m.BurstSigma > 2:
		return fmt.Errorf("faas: TrafficModel.BurstSigma %v out of [0,2]", m.BurstSigma)
	case m.DiurnalAmplitude < 0 || m.DiurnalAmplitude >= 1:
		return fmt.Errorf("faas: TrafficModel.DiurnalAmplitude %v out of [0,1)", m.DiurnalAmplitude)
	case m.DiurnalPeriod < 0:
		return fmt.Errorf("faas: TrafficModel.DiurnalPeriod negative")
	case m.CongestionKnee < 0 || m.CongestionKnee >= 1:
		return fmt.Errorf("faas: TrafficModel.CongestionKnee %v out of [0,1)", m.CongestionKnee)
	case m.CongestionRejectRate < 0 || m.CongestionRejectRate > 1:
		return fmt.Errorf("faas: TrafficModel.CongestionRejectRate %v out of [0,1]", m.CongestionRejectRate)
	}
	return nil
}

// resolved fills the shape defaults a sparse model left zero, so callers can
// set just Tenants and TargetUtilization. The resolved copy lives only in
// the engine; the profile keeps what the caller wrote (world keys stay
// faithful to the input).
func (m TrafficModel) resolved() TrafficModel {
	if m.ZipfExponent == 0 {
		m.ZipfExponent = 1.1
	}
	if m.BurstsPerHour == 0 {
		m.BurstsPerHour = 4
	}
	if m.BurstSigma == 0 {
		m.BurstSigma = 0.45
	}
	if m.DiurnalPeriod == 0 {
		m.DiurnalPeriod = 24 * time.Hour
	}
	if m.CongestionKnee == 0 {
		m.CongestionKnee = 0.85
	}
	return m
}

// trafficState is the per-region traffic engine: the resolved model, the
// tenant population (a fixed slice — pending events point into it), and the
// congestion-rejection stream. All of it deep-copies in snapshots.
type trafficState struct {
	dc    *DataCenter
	model TrafficModel // resolved

	// mix1 is the precomputed first mixer round of the traffic layer's
	// stateless draw hash; tenant draws address it by (rank, draw counter),
	// exactly like the lifecycle kernel's per-instance streams.
	mix1    uint64
	tenants []trafficTenant

	// rejectRNG draws congestion rejections; a dedicated stream so launch
	// admission under load never perturbs fault or placement draws.
	rejectRNG *randx.Source

	// capacity is the region's base capacity (NumHosts × BasePerHostCap),
	// the denominator of the utilization observable.
	capacity int

	// redraws counts demand re-draw events fired; rejects counts launches
	// shed by the congestion plane.
	redraws int
	rejects int
}

// trafficTenant is one bystander account's demand process. Its re-draw timer
// is the intrusive ev event; HandleEvent re-draws demand and re-arms.
type trafficTenant struct {
	state *trafficState
	rank  int
	// mixBase is randx.MixStep(state.mix1, rank): the tenant's stateless
	// draw stream, advanced by the draws counter.
	mixBase uint64
	svc     *Service
	// base is the tenant's Zipf share of the aggregate demand target; phase
	// jitters its diurnal envelope so tenants don't swing in lockstep.
	base  float64
	phase float64
	draws uint32
	ev    simtime.Event
}

// initTraffic builds the bystander population and arms the first demand
// re-draws, staggered across one mean burst interval. It runs once at data
// center construction (after the lifecycle kernel), only when the profile's
// model is enabled — a quiet world never reaches this code.
//
// Account and stream derivation consume no parent randomness, so creating
// the bystander accounts shifts no other stream: a loaded world's attacker
// draws diverge from the quiet world's only through genuine load effects
// (host occupancy, placement contention, congestion rejections).
func (dc *DataCenter) initTraffic() {
	m := dc.profile.Traffic.resolved()
	ts := &trafficState{
		dc:        dc,
		model:     m,
		mix1:      randx.MixInit(dc.rng.DeriveSeed("traffic")),
		rejectRNG: dc.rng.Derive("traffic", "congestion"),
		capacity:  dc.profile.NumHosts * dc.profile.BasePerHostCap,
		tenants:   make([]trafficTenant, m.Tenants),
	}
	dc.traffic = ts

	weights := make([]float64, m.Tenants)
	var sum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -m.ZipfExponent)
		sum += weights[i]
	}
	total := m.TargetUtilization * float64(ts.capacity)
	interval := time.Duration(float64(time.Hour) / m.BurstsPerHour)
	for i := range ts.tenants {
		t := &ts.tenants[i]
		t.state = ts
		t.rank = i
		t.mixBase = randx.MixStep(ts.mix1, uint64(i))
		acct := dc.Account(fmt.Sprintf("bg-%05d", i))
		// Bystanders are established tenants; the new-account quota models
		// the attacker's multi-account obstacle, not the installed base.
		acct.Mature()
		t.svc = acct.DeployService("load", ServiceConfig{MaxConcurrency: 1})
		t.base = total * weights[i] / sum
		t.phase = (t.u() - 0.5) * 0.15
		dc.platform.sched.ArmHandlerAfter(&t.ev, time.Duration(t.u()*float64(interval)), t)
	}
}

// u returns the tenant's next stateless uniform draw in [0, 1).
func (t *trafficTenant) u() float64 {
	v := randx.Unit(randx.MixStep(t.mixBase, uint64(t.draws)))
	t.draws++
	return v
}

// normal returns a standard normal draw (Box–Muller over two stateless
// uniforms; always exactly two draws, so the stream stays addressable).
func (t *trafficTenant) normal() float64 {
	u1, u2 := t.u(), t.u()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// HandleEvent is the tenant's demand re-draw: set a fresh demand level on
// the autoscaled service and re-arm at the next Poisson arrival.
func (t *trafficTenant) HandleEvent(_ *simtime.Event, now simtime.Time) {
	ts := t.state
	// SetDemand only errors on negative demand; demandAt clamps at 0.
	_ = t.svc.SetDemand(t.demandAt(now))
	ts.redraws++
	mean := float64(time.Hour) / ts.model.BurstsPerHour
	delay := time.Duration(-math.Log(1-t.u()) * mean)
	if delay < time.Second {
		delay = time.Second
	}
	ts.dc.platform.sched.ArmHandlerAfter(&t.ev, delay, t)
}

// demandAt computes the tenant's demand level at an instant: the Zipf base
// share, scaled by the diurnal envelope and a unit-mean lognormal burst
// multiplier, clamped to the per-service quota. The draw count per call is
// fixed by the model's shape (not by outcomes), keeping the stream
// addressable across forks.
func (t *trafficTenant) demandAt(now simtime.Time) int {
	m := &t.state.model
	f := 1.0
	if m.DiurnalAmplitude > 0 {
		cycle := now.Seconds()/m.DiurnalPeriod.Seconds() + t.phase
		f += m.DiurnalAmplitude * math.Sin(2*math.Pi*cycle)
	}
	if s := m.BurstSigma; s > 0 {
		f *= math.Exp(s*t.normal() - s*s/2)
	}
	d := int(math.Round(t.base * f))
	if d < 0 {
		d = 0
	}
	if max := t.state.dc.profile.MaxInstancesPerService; d > max {
		d = max
	}
	return d
}

// launchCongested is the congestion plane's admission check, applied to
// every Service.Launch (bystanders included — background demand is
// self-regulating under its own pressure). Past the knee, launches are shed
// with probability ramping linearly to CongestionRejectRate at full
// utilization; shed launches fail with ErrLaunchFault so the attack side's
// retry machinery engages on them like on any transient rejection.
func (ts *trafficState) launchCongested(s *Service) error {
	m := &ts.model
	if m.CongestionRejectRate <= 0 {
		return nil
	}
	util := float64(ts.dc.liveInstances) / float64(ts.capacity)
	if util <= m.CongestionKnee {
		return nil
	}
	p := m.CongestionRejectRate * (util - m.CongestionKnee) / (1 - m.CongestionKnee)
	if p > m.CongestionRejectRate {
		p = m.CongestionRejectRate
	}
	if !ts.rejectRNG.Bool(p) {
		return nil
	}
	ts.rejects++
	return fmt.Errorf("faas: %s/%s launch rejected under load: %w",
		s.account.id, s.name, ErrLaunchFault)
}

// LiveInstances returns the region's current live (active + idle resident)
// instance count, across all accounts.
func (dc *DataCenter) LiveInstances() int { return dc.liveInstances }

// Capacity returns the region's base capacity: NumHosts × BasePerHostCap,
// the denominator of Utilization.
func (dc *DataCenter) Capacity() int {
	return dc.profile.NumHosts * dc.profile.BasePerHostCap
}

// Utilization returns live instances over base capacity — the platform-side
// load observable experiments sweep against.
func (dc *DataCenter) Utilization() float64 {
	c := dc.Capacity()
	if c <= 0 {
		return 0
	}
	return float64(dc.liveInstances) / float64(c)
}

// TrafficStats is a snapshot of the background-traffic engine's counters.
type TrafficStats struct {
	// Tenants is the bystander population size (0 when traffic is off).
	Tenants int
	// DemandRedraws counts tenant demand re-draw events fired so far.
	DemandRedraws int
	// CongestionRejects counts launches shed by the congestion plane.
	CongestionRejects int
	// LiveInstances and Utilization mirror the region observables at the
	// moment of the snapshot.
	LiveInstances int
	Utilization   float64
}

// TrafficStats returns the region's traffic counters (zero-valued apart from
// the live observables when no TrafficModel is configured).
func (dc *DataCenter) TrafficStats() TrafficStats {
	st := TrafficStats{
		LiveInstances: dc.liveInstances,
		Utilization:   dc.Utilization(),
	}
	if ts := dc.traffic; ts != nil {
		st.Tenants = len(ts.tenants)
		st.DemandRedraws = ts.redraws
		st.CongestionRejects = ts.rejects
	}
	return st
}
