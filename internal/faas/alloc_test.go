package faas

import (
	"testing"

	"eaao/internal/randx"
)

// The placement hot paths run once per launch across millions of simulated
// launches; these tests pin their steady-state allocation budgets so a
// regression back to per-call scratch shows up in `go test`, not in a
// profile weeks later.

func TestRankedBaseSelectionAllocs(t *testing.T) {
	dc := newTestDC(t, 3)
	a := dc.Account("a")
	rng := randx.New(99)
	k := len(a.basePool) / 3
	if k < 2 {
		t.Fatalf("base pool too small for a meaningful selection: %d", len(a.basePool))
	}
	// Warm the per-account scratch buffers.
	rankedBaseSelection(rng, a, a.basePool, k)

	// Steady state: candidates and output live in per-account scratch and
	// the selection sort is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		rankedBaseSelection(rng, a, a.basePool, k)
	})
	if allocs > 0 {
		t.Errorf("rankedBaseSelection allocates %.1f per run, budget 0", allocs)
	}

	// The degenerate whole-pool copy must be allocation-free.
	allocs = testing.AllocsPerRun(100, func() {
		rankedBaseSelection(rng, a, a.basePool, len(a.basePool))
	})
	if allocs > 0 {
		t.Errorf("whole-pool rankedBaseSelection allocates %.1f per run, budget 0", allocs)
	}
}

func TestBuildHelperSetAllocs(t *testing.T) {
	dc := newTestDC(t, 3)
	svc := dc.Account("a").DeployService("s", ServiceConfig{})
	rng := randx.New(7)
	buildHelperSet(svc, rng)

	// buildHelperSet returns a fresh slice (retained for the service's
	// lifetime) and draws two noisy samples whose outputs are likewise
	// returned; the budget is those three result slices plus the
	// insertion-position scratch — not the O(n) per-host churn the merge
	// pass replaced.
	allocs := testing.AllocsPerRun(50, func() {
		buildHelperSet(svc, rng)
	})
	if allocs > 4 {
		t.Errorf("buildHelperSet allocates %.1f per run, budget 4", allocs)
	}
}
