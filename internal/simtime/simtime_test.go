package simtime

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := FromSeconds(100)
	t1 := t0.Add(2500 * time.Millisecond)
	if got := t1.Seconds(); got != 102.5 {
		t.Errorf("Add: got %v s, want 102.5", got)
	}
	if d := t1.Sub(t0); d != 2500*time.Millisecond {
		t.Errorf("Sub: got %v", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Error("Before/After inconsistent")
	}
}

func TestRealAnchoredAtEpoch(t *testing.T) {
	if got := Time(0).Real(); !got.Equal(Epoch) {
		t.Errorf("Time(0).Real() = %v, want %v", got, Epoch)
	}
	if got := FromSeconds(3600).Real(); !got.Equal(Epoch.Add(time.Hour)) {
		t.Errorf("1h conversion wrong: %v", got)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(0)
	var order []int
	s.At(FromSeconds(3), func(Time) { order = append(order, 3) })
	s.At(FromSeconds(1), func(Time) { order = append(order, 1) })
	s.At(FromSeconds(2), func(Time) { order = append(order, 2) })
	s.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestSchedulerTieBreakInsertionOrder(t *testing.T) {
	s := NewScheduler(0)
	var order []int
	at := FromSeconds(5)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func(Time) { order = append(order, i) })
	}
	s.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of insertion order: %v", order)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(0)
	fired := false
	s.At(FromSeconds(10), func(Time) { fired = true })
	s.RunUntil(FromSeconds(5))
	if fired {
		t.Error("future event fired early")
	}
	if s.Now() != FromSeconds(5) {
		t.Errorf("clock = %v, want 5s", s.Now())
	}
	s.RunUntil(FromSeconds(10))
	if !fired {
		t.Error("due event did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler(0)
	var order []string
	s.At(FromSeconds(1), func(now Time) {
		order = append(order, "a")
		s.At(now.Add(time.Second), func(Time) { order = append(order, "b") })
		s.At(now.Add(10*time.Second), func(Time) { order = append(order, "late") })
	})
	s.RunUntil(FromSeconds(5))
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("cascaded events wrong: %v", order)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (the late event)", s.Pending())
	}
}

func TestEventSeesItsDeadlineAsNow(t *testing.T) {
	s := NewScheduler(0)
	var at Time
	s.At(FromSeconds(7), func(now Time) { at = now })
	s.Drain(0)
	if at != FromSeconds(7) {
		t.Errorf("event saw now=%v, want 7s", at)
	}
	if s.Now() != FromSeconds(7) {
		t.Errorf("clock after drain = %v, want 7s", s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := NewScheduler(FromSeconds(100))
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(FromSeconds(50), func(Time) {})
}

func TestRunUntilPastPanics(t *testing.T) {
	s := NewScheduler(FromSeconds(100))
	defer func() {
		if recover() == nil {
			t.Error("RunUntil in the past did not panic")
		}
	}()
	s.RunUntil(FromSeconds(50))
}

func TestAdvance(t *testing.T) {
	s := NewScheduler(0)
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(FromSeconds(float64(i)), func(Time) { count++ })
	}
	s.Advance(3 * time.Second)
	if count != 3 {
		t.Errorf("after 3s advance, %d events ran, want 3", count)
	}
	s.Advance(10 * time.Second)
	if count != 5 {
		t.Errorf("after further advance, %d events ran, want 5", count)
	}
}

func TestDrainLimit(t *testing.T) {
	s := NewScheduler(0)
	for i := 0; i < 10; i++ {
		s.At(FromSeconds(float64(i)), func(Time) {})
	}
	if ran := s.Drain(4); ran != 4 {
		t.Errorf("Drain(4) ran %d events", ran)
	}
	if s.Pending() != 6 {
		t.Errorf("pending = %d, want 6", s.Pending())
	}
}

// Property: however events are inserted, they execute in nondecreasing time
// order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler(0)
		var fired []Time
		for _, off := range offsets {
			at := FromSeconds(float64(off))
			s.At(at, func(now Time) { fired = append(fired, now) })
		}
		s.Drain(0)
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutedCountsEveryEvent(t *testing.T) {
	s := NewScheduler(0)
	for i := 0; i < 7; i++ {
		s.At(FromSeconds(float64(i)), func(Time) {})
	}
	if got := s.Executed(); got != 0 {
		t.Fatalf("Executed = %d before any Step", got)
	}
	s.Drain(3)
	if got := s.Executed(); got != 3 {
		t.Fatalf("Executed = %d after Drain(3)", got)
	}
	s.RunUntil(FromSeconds(100))
	if got := s.Executed(); got != 7 {
		t.Fatalf("Executed = %d after draining all, want 7", got)
	}
}

func TestCancelRemovesPendingEvent(t *testing.T) {
	s := NewScheduler(0)
	var fired []string
	s.At(FromSeconds(1), func(Time) { fired = append(fired, "a") })
	b := s.Schedule(FromSeconds(2), func(Time) { fired = append(fired, "b") })
	s.At(FromSeconds(3), func(Time) { fired = append(fired, "c") })

	if !s.Cancel(b) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if s.Cancel(b) {
		t.Fatal("second Cancel of the same event returned true")
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d after cancel, want 2", got)
	}
	s.RunUntil(FromSeconds(10))
	if got := fmt.Sprint(fired); got != "[a c]" {
		t.Fatalf("fired %v; cancelled event must not run, order must hold", fired)
	}
	if got := s.Executed(); got != 2 {
		t.Fatalf("Executed = %d, want 2 (cancelled events are not counted)", got)
	}
	// Cancelling an event that has already fired is a no-op.
	e := s.Schedule(FromSeconds(11), func(Time) {})
	s.RunUntil(FromSeconds(12))
	if s.Cancel(e) {
		t.Fatal("Cancel of a fired event returned true")
	}
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}
