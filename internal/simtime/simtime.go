// Package simtime provides the virtual clock and discrete-event scheduler
// that the FaaS platform simulator runs on. The paper's measurements span
// hours (idle termination), days (fingerprint drift), and a full week
// (expiration CDFs); virtual time lets the whole study run in milliseconds
// while preserving every time-dependent behaviour.
//
// Time is an absolute instant on the virtual timeline, expressed in
// nanoseconds since the simulation epoch. Durations use the standard
// time.Duration so call sites read naturally (simtime moves the clock, the
// stdlib describes spans).
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute virtual instant, in nanoseconds since Epoch.
type Time int64

// Epoch is the real-world anchor of virtual time zero. Its value only
// matters for human-readable rendering of fingerprints and logs.
var Epoch = time.Date(2023, time.June, 1, 0, 0, 0, 0, time.UTC)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as fractional seconds since Epoch.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Real converts t to a real-world time.Time anchored at Epoch.
func (t Time) Real() time.Time { return Epoch.Add(time.Duration(t)) }

// FromSeconds builds a Time from fractional seconds since Epoch.
func FromSeconds(s float64) Time { return Time(s * 1e9) }

// String renders t as the anchored wall-clock instant.
func (t Time) String() string { return t.Real().Format(time.RFC3339Nano) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  func(Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled for
// the same instant fire in the order they were scheduled. Scheduler is not
// safe for concurrent use; the simulator is single-threaded by design so runs
// are reproducible.
type Scheduler struct {
	now    Time
	nextID uint64
	queue  eventHeap
}

// NewScheduler returns a scheduler positioned at the given start time.
func NewScheduler(start Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it always indicates a simulator bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(at Time, fn func(Time)) {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, s.now))
	}
	s.nextID++
	heap.Push(&s.queue, &event{at: at, seq: s.nextID, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func(Time)) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the next event, advancing the clock to its deadline. It reports
// whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn(s.now)
	return true
}

// RunUntil executes every event with deadline <= t (including events those
// events schedule, as long as they also fall within t), then advances the
// clock to exactly t.
func (s *Scheduler) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	s.now = t
}

// Advance moves the clock forward by d, running due events along the way.
func (s *Scheduler) Advance(d time.Duration) {
	if d < 0 {
		panic("simtime: negative advance")
	}
	s.RunUntil(s.now.Add(d))
}

// Drain runs events until the queue is empty or limit events have run,
// returning the number of events executed. A limit of 0 means no limit.
func (s *Scheduler) Drain(limit int) int {
	ran := 0
	for (limit == 0 || ran < limit) && s.Step() {
		ran++
	}
	return ran
}
