// Package simtime provides the virtual clock and discrete-event scheduler
// that the FaaS platform simulator runs on. The paper's measurements span
// hours (idle termination), days (fingerprint drift), and a full week
// (expiration CDFs); virtual time lets the whole study run in milliseconds
// while preserving every time-dependent behaviour.
//
// Time is an absolute instant on the virtual timeline, expressed in
// nanoseconds since the simulation epoch. Durations use the standard
// time.Duration so call sites read naturally (simtime moves the clock, the
// stdlib describes spans).
package simtime

import (
	"fmt"
	"time"
)

// Time is an absolute virtual instant, in nanoseconds since Epoch.
type Time int64

// Epoch is the real-world anchor of virtual time zero. Its value only
// matters for human-readable rendering of fingerprints and logs.
var Epoch = time.Date(2023, time.June, 1, 0, 0, 0, 0, time.UTC)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as fractional seconds since Epoch.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Real converts t to a real-world time.Time anchored at Epoch.
func (t Time) Real() time.Time { return Epoch.Add(time.Duration(t)) }

// FromSeconds builds a Time from fractional seconds since Epoch.
func FromSeconds(s float64) Time { return Time(s * 1e9) }

// String renders t as the anchored wall-clock instant.
func (t Time) String() string { return t.Real().Format(time.RFC3339Nano) }

// Event is a scheduled callback, and the handle used to cancel it. Events
// come in two flavours: Schedule allocates one per call (fire-and-forget),
// while Arm inserts a caller-owned Event — typically embedded by value in the
// owning object — so a timer that is re-armed over and over (the lifecycle
// kernel's per-instance churn timers, the autoscaler's tick) costs zero
// allocations per arm. A cancelled event is removed from the queue
// immediately (O(log n)), so abandoned timers do not leak dead entries into
// every subsequent heap operation.
//
// The zero Event is ready to Arm. An Event must not be armed again while it
// is still pending (Cancel it first); it may be re-armed freely from inside
// its own callback or after it fired.
type Event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  func(Time)
	h   Handler
	pos int // heap index + 1; 0 = not queued (so the zero Event is idle)
}

// Handler receives intrusive-event callbacks without any closure: storing a
// pointer in an interface is allocation-free, where even a method value
// costs one allocation. The fired Event is passed back so an owner with
// several embedded events can tell them apart by address.
type Handler interface {
	HandleEvent(e *Event, now Time)
}

// Pending reports whether the event is currently queued.
func (e *Event) Pending() bool { return e.pos != 0 }

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It is not
// a container/heap.Interface on purpose: arming an event is the simulator's
// hottest operation (once per created instance, once per autoscale tick) and
// the stdlib's interface dispatch per sift comparison costs more than the
// sift itself. Concrete methods inline.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i + 1
	h[j].pos = j + 1
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// push inserts e and records its position.
func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	e.pos = len(*h)
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	e := old[0]
	n := len(old) - 1
	old.swap(0, n)
	old[n] = nil
	e.pos = 0
	*h = old[:n]
	(*h).down(0)
	return e
}

// remove deletes the event at heap index i (pos-1).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	e := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	e.pos = 0
	*h = old[:n]
	if i != n {
		(*h).down(i)
		(*h).up(i)
	}
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled for
// the same instant fire in the order they were scheduled. Scheduler is not
// safe for concurrent use; the simulator is single-threaded by design so runs
// are reproducible.
type Scheduler struct {
	now      Time
	nextID   uint64
	queue    eventHeap
	executed uint64
}

// NewScheduler returns a scheduler positioned at the given start time.
func NewScheduler(start Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it always indicates a simulator bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(at Time, fn func(Time)) { s.Schedule(at, fn) }

// Schedule is At returning the event as a cancellation handle.
func (s *Scheduler) Schedule(at Time, fn func(Time)) *Event {
	e := &Event{}
	s.Arm(e, at, fn)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func(Time)) { s.ScheduleAfter(d, fn) }

// ScheduleAfter is After returning the event as a cancellation handle.
func (s *Scheduler) ScheduleAfter(d time.Duration, fn func(Time)) *Event {
	if d < 0 {
		panic("simtime: negative delay")
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Arm inserts a caller-owned event — zero allocations per arm. Arming an
// event that is still pending panics: a caller juggling overlapping deadlines
// for one event has a state bug, and silently dropping either deadline would
// destroy determinism. Cancel it first to re-target.
func (s *Scheduler) Arm(e *Event, at Time, fn func(Time)) {
	s.arm(e, at)
	e.fn = fn
}

// ArmAfter is Arm with a relative deadline.
func (s *Scheduler) ArmAfter(e *Event, d time.Duration, fn func(Time)) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	s.Arm(e, s.now.Add(d), fn)
}

// ArmHandler is Arm with an interface callback instead of a func — fully
// allocation-free per arm (see Handler).
func (s *Scheduler) ArmHandler(e *Event, at Time, h Handler) {
	s.arm(e, at)
	e.h = h
}

// ArmHandlerAfter is ArmHandler with a relative deadline.
func (s *Scheduler) ArmHandlerAfter(e *Event, d time.Duration, h Handler) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	s.ArmHandler(e, s.now.Add(d), h)
}

func (s *Scheduler) arm(e *Event, at Time) {
	if e.pos != 0 {
		panic("simtime: arming an event that is still pending")
	}
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, s.now))
	}
	s.nextID++
	e.at, e.seq = at, s.nextID
	s.queue.push(e)
}

// Cancel removes a pending event from the queue without running it. It
// reports whether the event was still pending; cancelling an event that has
// already fired (or was already cancelled) is a harmless no-op. Cancelled
// events never run and do not count toward Executed. Cancellation cannot
// affect the firing order of the remaining events — the queue is a total
// order by (time, insertion seq) — so it is determinism-safe.
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.pos == 0 {
		return false
	}
	s.queue.remove(e.pos - 1)
	e.fn, e.h = nil, nil
	return true
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Executed reports the total number of events run since construction. It is
// the denominator of the event kernel's throughput metrics (events/sec,
// allocs/event) and is monotonic. Cancelled events never run and are not
// counted.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Step runs the next event, advancing the clock to its deadline. It reports
// whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.popMin()
	s.now = e.at
	s.executed++
	// Detach the callback before running it: the callback may re-arm e (the
	// self-rescheduling pattern), and a fired one-shot must not pin its
	// closure for the garbage collector.
	fn, h := e.fn, e.h
	e.fn, e.h = nil, nil
	if fn != nil {
		fn(s.now)
	} else {
		h.HandleEvent(e, s.now)
	}
	return true
}

// Clone returns a deep copy of the scheduler for world snapshotting: the
// clock, insertion counter, executed count, and the entire pending queue
// carry over, so the copy replays the exact event sequence the original
// would. Pending events are caller-owned objects the scheduler cannot
// duplicate itself; remap is called once per pending event and must return
// the cloned world's counterpart Event (typically the same field embedded in
// the cloned owner) together with the handler it should fire into. The
// queue is copied slot for slot, so each cloned event keeps the original's
// deadline, tie-break sequence, and heap position — firing order is
// byte-identical by construction.
//
// Closure events (Schedule/At, the legacy-sweep style) cannot be remapped —
// a closure captures the old world — so a queue containing one is a Clone
// error. The event kernel and every intrusive timer use Handler events.
func (s *Scheduler) Clone(remap func(old *Event, h Handler) (*Event, Handler)) (*Scheduler, error) {
	c := &Scheduler{now: s.now, nextID: s.nextID, executed: s.executed}
	if len(s.queue) == 0 {
		return c, nil
	}
	c.queue = make(eventHeap, len(s.queue))
	for i, e := range s.queue {
		if e.fn != nil {
			return nil, fmt.Errorf("simtime: cannot clone pending closure event (deadline %v); only Handler events are remappable", e.at)
		}
		ne, h := remap(e, e.h)
		if ne == nil {
			return nil, fmt.Errorf("simtime: remap returned no counterpart for pending event (deadline %v)", e.at)
		}
		if ne.pos != 0 {
			return nil, fmt.Errorf("simtime: remap returned an event that is already pending (deadline %v)", e.at)
		}
		ne.at, ne.seq, ne.h, ne.pos = e.at, e.seq, h, e.pos
		c.queue[i] = ne
	}
	return c, nil
}

// RunUntil executes every event with deadline <= t (including events those
// events schedule, as long as they also fall within t), then advances the
// clock to exactly t.
func (s *Scheduler) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	s.now = t
}

// Advance moves the clock forward by d, running due events along the way.
func (s *Scheduler) Advance(d time.Duration) {
	if d < 0 {
		panic("simtime: negative advance")
	}
	s.RunUntil(s.now.Add(d))
}

// Drain runs events until the queue is empty or limit events have run,
// returning the number of events executed. A limit of 0 means no limit.
func (s *Scheduler) Drain(limit int) int {
	ran := 0
	for (limit == 0 || ran < limit) && s.Step() {
		ran++
	}
	return ran
}
