package simtime

import (
	"fmt"
	"testing"
	"time"
)

// ---- pooled-event invariants ----------------------------------------------
//
// The faas lifecycle kernel leases Event slots from a slab pool and recycles
// them through terminate. Two properties of the scheduler make that safe, and
// these tests pin them:
//
//   - Cancel of an event that already fired (or was already cancelled) is a
//     strict no-op: it reports false and cannot disturb whatever the slot is
//     doing now. A stale canceller holding a recycled slot's address can
//     therefore only be dangerous if the slot was re-armed — which is why the
//     kernel nil's the owning pointer when a slot is freed.
//   - Arm of a still-pending event panics. A pool that ever freed a pending
//     slot would blow up deterministically on the next lease instead of
//     corrupting the queue.

func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := NewScheduler(0)
	owner := &countHandler{}
	var e Event
	s.ArmHandler(&e, 10, owner)
	if !s.Step() {
		t.Fatal("no event ran")
	}
	if owner.fired != 1 {
		t.Fatalf("fired %d times, want 1", owner.fired)
	}
	if s.Cancel(&e) {
		t.Fatal("Cancel of a fired event reported true")
	}
	// The fired slot must be immediately re-armable (pool reuse), and the
	// stale-cancel result must not have perturbed the scheduler.
	s.ArmHandler(&e, 20, owner)
	if got := s.Pending(); got != 1 {
		t.Fatalf("pending = %d after re-arm, want 1", got)
	}
	if !s.Step() || owner.fired != 2 {
		t.Fatalf("re-armed slot did not fire (fired=%d)", owner.fired)
	}
}

func TestCancelledSlotReArms(t *testing.T) {
	s := NewScheduler(0)
	owner := &countHandler{}
	var e Event
	s.ArmHandler(&e, 10, owner)
	if !s.Cancel(&e) {
		t.Fatal("Cancel of a pending event reported false")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	s.ArmHandler(&e, 5, owner)
	s.Drain(0)
	if owner.fired != 1 {
		t.Fatalf("fired %d, want 1 (the re-arm only)", owner.fired)
	}
	if s.Executed() != 1 {
		t.Fatalf("executed %d, want 1 — cancelled events must not count", s.Executed())
	}
}

func TestArmPendingPanics(t *testing.T) {
	s := NewScheduler(0)
	owner := &countHandler{}
	var e Event
	s.ArmHandler(&e, 10, owner)
	defer func() {
		if recover() == nil {
			t.Fatal("arming a pending event did not panic")
		}
	}()
	s.ArmHandler(&e, 20, owner)
}

// countHandler counts its firings.
type countHandler struct{ fired int }

func (c *countHandler) HandleEvent(*Event, Time) { c.fired++ }

// ---- allocation budgets ----------------------------------------------------

// TestArmCancelAllocFree pins the kernel's hot-path budgets: arming,
// cancelling, and firing intrusive handler events allocate nothing once the
// queue's backing array has grown.
func TestArmCancelAllocFree(t *testing.T) {
	s := NewScheduler(0)
	owner := &countHandler{}
	events := make([]Event, 64)
	// Warm the heap's backing array so growth is out of the measurement.
	for i := range events {
		s.ArmHandler(&events[i], Time(i+1), owner)
	}
	for i := range events {
		s.Cancel(&events[i])
	}

	if n := testing.AllocsPerRun(100, func() {
		for i := range events {
			s.ArmHandler(&events[i], s.Now().Add(time.Duration(i+1)), owner)
		}
		for i := range events {
			s.Cancel(&events[i])
		}
	}); n != 0 {
		t.Fatalf("arm+cancel of %d events allocated %v times", len(events), n)
	}

	if n := testing.AllocsPerRun(100, func() {
		for i := range events {
			s.ArmHandler(&events[i], s.Now().Add(time.Duration(i+1)), owner)
		}
		for s.Step() {
		}
	}); n != 0 {
		t.Fatalf("arm+fire of %d events allocated %v times", len(events), n)
	}
}

// ---- Clone -----------------------------------------------------------------

// replayHandler logs its firings and re-arms itself a fixed number of times —
// a miniature of the kernel's self-rescheduling timers.
type replayHandler struct {
	id    int
	left  int
	ev    Event
	sched *Scheduler
	log   *[]string
}

func (r *replayHandler) HandleEvent(_ *Event, now Time) {
	*r.log = append(*r.log, fmt.Sprintf("%d@%d", r.id, now))
	if r.left > 0 {
		r.left--
		r.sched.ArmHandler(&r.ev, now.Add(time.Duration(r.id+1)*7), r)
	}
}

func buildReplayWorld(s *Scheduler, log *[]string, n int) []*replayHandler {
	hs := make([]*replayHandler, n)
	for i := range hs {
		hs[i] = &replayHandler{id: i, left: 3 + i%3, sched: s, log: log}
		s.ArmHandler(&hs[i].ev, s.Now().Add(time.Duration(13*i+5)), hs[i])
	}
	return hs
}

// TestCloneReplaysIdentically forks a scheduler mid-run and checks the fork
// replays exactly the tail the original produces — and that running the fork
// leaves the original untouched.
func TestCloneReplaysIdentically(t *testing.T) {
	var origLog []string
	s := NewScheduler(100)
	buildReplayWorld(s, &origLog, 8)
	for i := 0; i < 5; i++ { // advance partway so the queue is mid-flight
		s.Step()
	}

	var cloneLog []string
	cs, err := s.Clone(func(old *Event, h Handler) (*Event, Handler) {
		rh, ok := h.(*replayHandler)
		if !ok {
			t.Fatalf("unknown pending event at %v", old.at)
		}
		nh := &replayHandler{id: rh.id, left: rh.left, log: &cloneLog}
		return &nh.ev, nh
	})
	if err != nil {
		t.Fatal(err)
	}
	// The clone's handlers must re-arm into the clone's scheduler.
	for i := range cs.queue {
		cs.queue[i].h.(*replayHandler).sched = cs
	}
	if cs.Now() != s.Now() || cs.Executed() != s.Executed() || cs.Pending() != s.Pending() {
		t.Fatalf("clone counters diverge: now %v/%v executed %d/%d pending %d/%d",
			cs.Now(), s.Now(), cs.Executed(), s.Executed(), cs.Pending(), s.Pending())
	}

	cs.Drain(0) // run the fork first: must not disturb the original
	origBefore := len(origLog)
	s.Drain(0)
	tail := origLog[origBefore:]
	if len(tail) != len(cloneLog) {
		t.Fatalf("fork ran %d events, original tail %d", len(cloneLog), len(tail))
	}
	for i := range tail {
		if tail[i] != cloneLog[i] {
			t.Fatalf("event %d: original %q, fork %q", i, tail[i], cloneLog[i])
		}
	}
	if cs.Executed() != s.Executed() {
		t.Fatalf("executed diverged after drain: %d vs %d", cs.Executed(), s.Executed())
	}
	_ = origLog
}

func TestCloneRejectsClosureEvents(t *testing.T) {
	s := NewScheduler(0)
	s.At(10, func(Time) {})
	if _, err := s.Clone(func(*Event, Handler) (*Event, Handler) { return nil, nil }); err == nil {
		t.Fatal("Clone accepted a pending closure event")
	}
}

func TestCloneRejectsBadRemap(t *testing.T) {
	s := NewScheduler(0)
	owner := &countHandler{}
	var e Event
	s.ArmHandler(&e, 10, owner)

	if _, err := s.Clone(func(*Event, Handler) (*Event, Handler) { return nil, nil }); err == nil {
		t.Fatal("Clone accepted a nil counterpart")
	}
	// Returning an already-pending event (here: the original itself) must be
	// rejected — it would alias the two schedulers' queues.
	if _, err := s.Clone(func(old *Event, _ Handler) (*Event, Handler) { return old, owner }); err == nil {
		t.Fatal("Clone accepted a pending counterpart")
	}
}

func TestCloneEmptyQueue(t *testing.T) {
	s := NewScheduler(42)
	var e Event
	s.ArmHandler(&e, 50, &countHandler{})
	s.Drain(0)
	c, err := s.Clone(func(*Event, Handler) (*Event, Handler) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != s.Now() || c.Executed() != 1 || c.Pending() != 0 {
		t.Fatalf("empty-queue clone diverges: now %v executed %d pending %d", c.Now(), c.Executed(), c.Pending())
	}
	// Tie-break sequencing continues from the same counter.
	var a, b Event
	s.ArmHandler(&a, 60, &countHandler{})
	c.ArmHandler(&b, 60, &countHandler{})
	if a.seq != b.seq {
		t.Fatalf("seq diverged: %d vs %d", a.seq, b.seq)
	}
}
