//go:build amd64

package hwtsc

const supported = true

//go:noescape
func rdtsc() uint64

func readTSC() uint64 { return rdtsc() }
