//go:build amd64

#include "textflag.h"

// func rdtsc() uint64
// Serializing with LFENCE is unnecessary for fingerprinting use; raw RDTSC
// matches what the paper's unprivileged measurement executes.
TEXT ·rdtsc(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ	$32, DX
	ORQ	DX, AX
	MOVQ	AX, ret+0(FP)
	RET
