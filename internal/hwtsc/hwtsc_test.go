package hwtsc

import (
	"testing"
	"time"
)

func TestReadMonotone(t *testing.T) {
	a := Read()
	// Burn a little time so even a coarse fallback counter advances.
	time.Sleep(time.Millisecond)
	b := Read()
	if b <= a {
		t.Errorf("counter did not advance: %d then %d", a, b)
	}
}

func TestReadPairedOrdering(t *testing.T) {
	tsc1, w1 := ReadPaired()
	time.Sleep(time.Millisecond)
	tsc2, w2 := ReadPaired()
	if tsc2 <= tsc1 {
		t.Error("tsc not monotone across paired reads")
	}
	if !w2.After(w1) {
		t.Error("wall clock not monotone")
	}
}

func TestMeasureFrequencyPlausible(t *testing.T) {
	m, err := MeasureFrequency(20*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Any real TSC ticks between 0.5 and 6 GHz; the fallback counter is
	// exactly 1 GHz.
	if m.Hz < 0.4e9 || m.Hz > 6.5e9 {
		t.Errorf("measured frequency %v Hz implausible", m.Hz)
	}
	if len(m.Samples) == 0 {
		t.Error("no samples")
	}
}

func TestMeasureFrequencyBadArgs(t *testing.T) {
	if _, err := MeasureFrequency(0, 3); err == nil {
		t.Error("zero interval accepted")
	}
	// Non-positive reps are clamped, not an error.
	if _, err := MeasureFrequency(time.Millisecond, 0); err != nil {
		t.Errorf("clamped reps errored: %v", err)
	}
}

func TestBootTimeInThePast(t *testing.T) {
	m, err := MeasureFrequency(20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	tsc, wall := ReadPaired()
	boot := BootTime(tsc, wall, m.Hz)
	if !boot.Before(wall) {
		t.Errorf("derived boot time %v not before now %v", boot, wall)
	}
	// Uptime below 10 years is a sanity bound.
	if wall.Sub(boot) > 10*365*24*time.Hour {
		t.Errorf("derived uptime %v implausible", wall.Sub(boot))
	}
}

func TestBootTimeStableAcrossReads(t *testing.T) {
	// Two paired reads moments apart must derive (nearly) the same boot
	// time: the invariant-TSC property the Gen 1 fingerprint rests on.
	m, err := MeasureFrequency(50*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	tsc1, w1 := ReadPaired()
	time.Sleep(30 * time.Millisecond)
	tsc2, w2 := ReadPaired()
	b1 := BootTime(tsc1, w1, m.Hz)
	b2 := BootTime(tsc2, w2, m.Hz)
	diff := b2.Sub(b1)
	if diff < 0 {
		diff = -diff
	}
	// Allow generous slack: frequency error of 1e-4 over days of uptime.
	if diff > time.Minute {
		t.Errorf("derived boot times differ by %v", diff)
	}
}
