//go:build !amd64

package hwtsc

import "time"

const supported = false

// start anchors the synthetic counter; a process-relative counter is the
// best a platform without an architectural TSC can do.
var start = time.Now()

// readTSC synthesizes a 1 GHz counter from the monotonic clock.
func readTSC() uint64 { return uint64(time.Since(start)) }
