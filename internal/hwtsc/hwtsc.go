// Package hwtsc reads the real timestamp counter of the machine this code
// runs on, demonstrating that the paper's measurement primitive is exactly
// what an unprivileged program gets: on amd64 it executes RDTSC directly
// (assembly, no kernel involvement); elsewhere it falls back to a
// monotonic-clock synthetic counter so the same tooling still functions.
//
// cmd/hostinfo uses this package to produce a Gen 1-style fingerprint of the
// local host: (CPU model if readable, boot time derived via Eq. 4.1 from
// counter value + wall clock + measured frequency).
package hwtsc

import (
	"errors"
	"math"
	"time"
)

// Supported reports whether a true hardware timestamp counter is available
// on this platform (amd64).
func Supported() bool { return supported }

// Read returns the current hardware timestamp counter value (RDTSC on
// amd64). On unsupported platforms it returns a monotonic-clock-derived
// counter at a synthetic 1 GHz so downstream math still works.
func Read() uint64 { return readTSC() }

// ReadPaired returns a counter value together with the wall-clock instant it
// was taken at — the (tsc, T_w) pair of Eq. 4.1. The counter is read first,
// exactly as the paper's measurement does.
func ReadPaired() (tsc uint64, wall time.Time) {
	return readTSC(), time.Now()
}

// Measurement is an estimate of the local TSC frequency.
type Measurement struct {
	// Hz is the mean estimated frequency.
	Hz float64
	// StdHz is the standard deviation across repetitions.
	StdHz float64
	// Samples are the per-repetition estimates.
	Samples []float64
}

// ErrBadInterval is returned for non-positive measurement intervals.
var ErrBadInterval = errors.New("hwtsc: measurement interval must be positive")

// MeasureFrequency estimates the local TSC frequency by the paper's
// method 2: read the counter twice, interval apart (by the wall clock),
// repeated reps times. It really sleeps, so reps×interval of real time
// passes.
func MeasureFrequency(interval time.Duration, reps int) (Measurement, error) {
	if interval <= 0 {
		return Measurement{}, ErrBadInterval
	}
	if reps <= 0 {
		reps = 1
	}
	samples := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		t1, w1 := ReadPaired()
		time.Sleep(interval)
		t2, w2 := ReadPaired()
		dw := w2.Sub(w1).Seconds()
		if dw <= 0 {
			continue
		}
		samples = append(samples, float64(t2-t1)/dw)
	}
	if len(samples) == 0 {
		return Measurement{}, errors.New("hwtsc: all samples degenerate")
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	std := 0.0
	if len(samples) > 1 {
		std = math.Sqrt(ss / float64(len(samples)))
	}
	return Measurement{Hz: mean, StdHz: std, Samples: samples}, nil
}

// BootTime derives the host (or VM) boot time via Eq. 4.1 from a counter
// reading and a frequency estimate. With TSC offsetting (inside a VM) this
// yields the VM's boot time instead of the host's — exactly the Gen 2
// limitation the paper describes.
func BootTime(tsc uint64, wall time.Time, hz float64) time.Time {
	uptime := time.Duration(float64(tsc) / hz * float64(time.Second))
	return wall.Add(-uptime)
}
