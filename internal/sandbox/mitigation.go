package sandbox

import "time"

// Mitigations models the defenses of §6: masking the TSC value and frequency
// from untrusted guests. A platform operator enables them per region; the
// guest API is unchanged, so the same attack code runs against a hardened
// platform and the experiments can quantify exactly what breaks and what it
// costs.
type Mitigations struct {
	// TrapAndEmulateTSC (Gen 1) disables rdtsc/rdtscp in Ring 3 via CR4.TSD
	// so the kernel traps and emulates both instructions. The emulated
	// counter is container-relative and ticks at exactly the nominal
	// (reported) frequency, hiding both the host boot time and the per-host
	// frequency error — at the price of turning every timer read into a
	// kernel round trip.
	TrapAndEmulateTSC bool

	// TSCScaling (Gen 2) uses hardware-assisted TSC offsetting AND scaling:
	// the guest counter starts at zero on VM boot and is rescaled to the
	// nominal frequency, so the kernel-refined frequency exported to the
	// guest carries no per-host information. Being hardware-assisted, it
	// adds no timer-access overhead.
	TSCScaling bool
}

// Active reports whether any mitigation is enabled.
func (m Mitigations) Active() bool { return m.TrapAndEmulateTSC || m.TSCScaling }

// Timer access costs used for the §6 overhead analysis. A native rdtsc is a
// few nanoseconds; a trapped-and-emulated read costs a privilege transition
// plus emulation — three orders of magnitude more (the paper cites
// Cassandra's write latency improving 43% when moving off a trapping clock
// source).
const (
	NativeTimerReadCost   = 8 * time.Nanosecond
	EmulatedTimerReadCost = 900 * time.Nanosecond
)

// TimerReadCost returns the per-read cost of the guest's TSC access under
// the given mitigations and sandbox generation.
func (m Mitigations) TimerReadCost(gen Gen) time.Duration {
	if gen == Gen1 && m.TrapAndEmulateTSC {
		return EmulatedTimerReadCost
	}
	// Gen 2 scaling is hardware-assisted: native cost.
	return NativeTimerReadCost
}
