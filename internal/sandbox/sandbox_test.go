package sandbox

import (
	"math"
	"testing"
	"time"

	"eaao/internal/cpu"
	"eaao/internal/randx"
	"eaao/internal/simtime"
	"eaao/internal/tsc"
)

// fakeEnv is a minimal HostEnv for testing the guest views.
type fakeEnv struct {
	now        simtime.Time
	counter    tsc.Counter
	noise      tsc.NoiseProfile
	model      cpu.Model
	refined    float64
	rng        *randx.Source
	mits       Mitigations
	probeFault bool
}

func (f *fakeEnv) Now() simtime.Time        { return f.now }
func (f *fakeEnv) Counter() tsc.Counter     { return f.counter }
func (f *fakeEnv) Noise() tsc.NoiseProfile  { return f.noise }
func (f *fakeEnv) Model() cpu.Model         { return f.model }
func (f *fakeEnv) RefinedTSCHz() float64    { return f.refined }
func (f *fakeEnv) NoiseRNG() *randx.Source  { return f.rng }
func (f *fakeEnv) Mitigations() Mitigations { return f.mits }
func (f *fakeEnv) ProbeFault() bool         { return f.probeFault }

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		now: simtime.FromSeconds(10000),
		counter: tsc.Counter{
			Boot:       simtime.FromSeconds(1000),
			ActualHz:   2_000_005_000,
			ReportedHz: 2e9,
		},
		noise:   tsc.NoiseProfile{}, // zero noise by default
		model:   cpu.Catalog[0],
		refined: 2_000_005_000,
		rng:     randx.New(9),
	}
}

func TestGen1SeesRawHostTSC(t *testing.T) {
	env := newFakeEnv()
	g := NewGuest(env, Gen1)
	want := env.counter.ReadAt(env.now)
	if got := g.ReadTSC(); got != want {
		t.Errorf("Gen1 TSC = %d, want raw host value %d", got, want)
	}
}

func TestGen2TSCOffsetting(t *testing.T) {
	env := newFakeEnv()
	g := NewGuest(env, Gen2)
	if got := g.ReadTSC(); got != 0 {
		t.Errorf("Gen2 TSC at VM boot = %d, want 0", got)
	}
	env.now = env.now.Add(time.Second)
	got := g.ReadTSC()
	if got != 2_000_005_000 {
		t.Errorf("Gen2 TSC after 1s = %d, want 2000005000 (host rate preserved)", got)
	}
}

func TestGen2RateMatchesHost(t *testing.T) {
	// TSC offsetting hides the value but not the rate: the guest can still
	// observe the host's actual frequency (§4.5).
	env := newFakeEnv()
	g1 := NewGuest(env, Gen1)
	g2 := NewGuest(env, Gen2)
	a1, a2 := g1.ReadTSC(), g2.ReadTSC()
	env.now = env.now.Add(5 * time.Second)
	b1, b2 := g1.ReadTSC(), g2.ReadTSC()
	if b1-a1 != b2-a2 {
		t.Errorf("tick deltas differ: gen1 %d, gen2 %d", b1-a1, b2-a2)
	}
}

func TestGuestKernelTSCHzOnlyGen2(t *testing.T) {
	env := newFakeEnv()
	if _, err := NewGuest(env, Gen1).GuestKernelTSCHz(); err == nil {
		t.Error("Gen1 guest read the kernel TSC frequency")
	}
	hz, err := NewGuest(env, Gen2).GuestKernelTSCHz()
	if err != nil {
		t.Fatal(err)
	}
	if hz != env.refined {
		t.Errorf("Gen2 kernel freq = %v, want %v", hz, env.refined)
	}
}

func TestReadWallNoiseBounded(t *testing.T) {
	env := newFakeEnv()
	env.noise = tsc.DefaultNoise()
	g := NewGuest(env, Gen1)
	// Per-guest offset is constant: consecutive reads must stay within the
	// tiny per-read jitter of each other.
	first := g.ReadWall()
	for i := 0; i < 5000; i++ {
		w := g.ReadWall()
		if d := w.Sub(first); d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("wall reads unstable: drifted %v between reads", d)
		}
	}
	// And the offset itself is bounded by a few ms.
	if d := first.Sub(env.now); d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("guest clock offset %v implausibly large", d)
	}
}

func TestGuestOffsetsVaryAcrossGuests(t *testing.T) {
	env := newFakeEnv()
	env.noise = tsc.DefaultNoise()
	distinct := make(map[simtime.Time]bool)
	for i := 0; i < 50; i++ {
		g := NewGuest(env, Gen1)
		distinct[g.ReadWall()] = true
	}
	if len(distinct) < 2 {
		t.Error("all guests read identical wall clocks; offsets not applied")
	}
}

func TestReadWallZeroNoiseExact(t *testing.T) {
	env := newFakeEnv()
	g := NewGuest(env, Gen1)
	if w := g.ReadWall(); w != env.now {
		t.Errorf("noise-free wall read = %v, want %v", w, env.now)
	}
}

func TestReportedTSCHz(t *testing.T) {
	env := newFakeEnv()
	g := NewGuest(env, Gen1)
	hz, err := g.ReportedTSCHz()
	if err != nil {
		t.Fatal(err)
	}
	if hz != env.model.BaseHz {
		t.Errorf("reported = %v, want %v", hz, env.model.BaseHz)
	}
}

func TestDerivedBootTimeGen1(t *testing.T) {
	// End-to-end Eq. 4.1 with a noise-free environment: T_boot = T_w - tsc/f.
	// Using the *reported* frequency on a host with ε≠0 after 9000 s of
	// uptime gives a small known error: drift = uptime · (-ε')/f_r where the
	// counter runs fast by 5 kHz.
	env := newFakeEnv()
	g := NewGuest(env, Gen1)
	tscVal, wall := g.ReadTSCAndWall()
	hz, _ := g.ReportedTSCHz()
	derived := wall.Seconds() - float64(tscVal)/hz
	trueBoot := env.counter.Boot.Seconds()
	uptime := env.now.Sub(env.counter.Boot).Seconds()
	wantErr := uptime * env.counter.DriftRate()
	if math.Abs((derived-trueBoot)-wantErr) > 1e-6 {
		t.Errorf("derived boot error = %v, want %v", derived-trueBoot, wantErr)
	}
}

func TestGenString(t *testing.T) {
	if Gen1.String() != "gen1" || Gen2.String() != "gen2" || Gen(3).String() != "gen?" {
		t.Error("Gen.String wrong")
	}
}

func TestTrapAndEmulateHidesHostTSC(t *testing.T) {
	env := newFakeEnv()
	env.mits = Mitigations{TrapAndEmulateTSC: true}
	g := NewGuest(env, Gen1)
	first := g.ReadTSC()
	// The emulated counter is container-relative: far smaller than the
	// host's (9000 s of uptime), bounded by the ~10 s startup lag window.
	if first > uint64(11*env.model.BaseHz) {
		t.Errorf("emulated counter %d exposes host-scale uptime", first)
	}
	env.now = env.now.Add(time.Second)
	got := g.ReadTSC()
	// Nominal frequency (2.0 GHz for the catalog head), NOT the host's
	// actual frequency: the frequency error must not leak either.
	want := uint64(env.model.BaseHz)
	if got-first != want {
		t.Errorf("emulated tick rate = %d, want %d (nominal)", got-first, want)
	}
	if g.TimerReads() != 2 {
		t.Errorf("timer reads = %d", g.TimerReads())
	}
	if g.TimerReadCost() != EmulatedTimerReadCost {
		t.Errorf("timer cost = %v, want emulated", g.TimerReadCost())
	}
}

func TestEmulatedEpochsDifferAcrossGuests(t *testing.T) {
	// Two sandboxes on the same host must derive different emulated
	// counters (staggered startup), so boot-time fingerprinting on the
	// emulated counter identifies sandboxes, not hosts.
	env := newFakeEnv()
	env.mits = Mitigations{TrapAndEmulateTSC: true}
	distinct := make(map[uint64]bool)
	for i := 0; i < 20; i++ {
		distinct[NewGuest(env, Gen1).ReadTSC()] = true
	}
	if len(distinct) < 15 {
		t.Errorf("only %d distinct emulated counters across 20 sandboxes", len(distinct))
	}
}

func TestTrapAndEmulateDoesNotAffectGen2(t *testing.T) {
	env := newFakeEnv()
	env.mits = Mitigations{TrapAndEmulateTSC: true}
	g := NewGuest(env, Gen2)
	env.now = env.now.Add(time.Second)
	if got := g.ReadTSC(); got != 2_000_005_000 {
		t.Errorf("Gen2 counter under a Gen1-only mitigation = %d, want host rate", got)
	}
	if g.TimerReadCost() != NativeTimerReadCost {
		t.Error("Gen2 should keep native timer cost")
	}
}

func TestTSCScalingHidesRefinedFrequency(t *testing.T) {
	env := newFakeEnv()
	env.mits = Mitigations{TSCScaling: true}
	g := NewGuest(env, Gen2)
	hz, err := g.GuestKernelTSCHz()
	if err != nil {
		t.Fatal(err)
	}
	if hz != env.model.BaseHz {
		t.Errorf("scaled kernel freq = %v, want nominal %v", hz, env.model.BaseHz)
	}
	// Scaled counter ticks at nominal.
	a := g.ReadTSC()
	env.now = env.now.Add(time.Second)
	b := g.ReadTSC()
	if b-a != uint64(env.model.BaseHz) {
		t.Errorf("scaled tick rate = %d, want nominal", b-a)
	}
	// Hardware-assisted: no overhead.
	if g.TimerReadCost() != NativeTimerReadCost {
		t.Error("scaling should be free")
	}
}

func TestMitigationsActive(t *testing.T) {
	if (Mitigations{}).Active() {
		t.Error("zero mitigations active")
	}
	if !(Mitigations{TrapAndEmulateTSC: true}).Active() {
		t.Error("trap mitigation not active")
	}
	if !(Mitigations{TSCScaling: true}).Active() {
		t.Error("scaling mitigation not active")
	}
}

func TestCPUIDExposesHostTopology(t *testing.T) {
	env := newFakeEnv()
	for _, gen := range []Gen{Gen1, Gen2} {
		info := NewGuest(env, gen).CPUID()
		if info.Brand != env.model.Name {
			t.Errorf("%v: brand %q", gen, info.Brand)
		}
		if info.Vendor != "GenuineIntel" {
			t.Errorf("%v: vendor %q", gen, info.Vendor)
		}
		if info.L3Bytes != env.model.L3Bytes || info.CacheLineBytes != 64 {
			t.Errorf("%v: cache info wrong: %+v", gen, info)
		}
		if info.Cores != env.model.Cores || info.Sockets != env.model.Sockets {
			t.Errorf("%v: topology wrong: %+v", gen, info)
		}
	}
}

func TestSysinfoHidesHostUptime(t *testing.T) {
	// The host in the fake env booted 9000 s ago; a fresh sandbox's
	// emulated sysinfo must NOT reveal that.
	env := newFakeEnv()
	for _, gen := range []Gen{Gen1, Gen2} {
		g := NewGuest(env, gen)
		start := env.now
		env.now = env.now.Add(3 * time.Second)
		info := g.ReadSysinfo()
		if info.Uptime != 3*time.Second {
			t.Errorf("%v: sysinfo uptime = %v, want the sandbox's own 3s", gen, info.Uptime)
		}
		if info.Hostname != "localhost" {
			t.Errorf("%v: hostname %q leaks", gen, info.Hostname)
		}
		// Meanwhile the raw TSC DOES reveal host uptime in Gen 1 — the
		// paper's whole point.
		if gen == Gen1 {
			hostUptimeTicks := env.counter.ReadAt(env.now)
			if g.ReadTSC() != hostUptimeTicks {
				t.Error("Gen1 rdtsc should expose the raw host counter")
			}
		}
		env.now = start
	}
}
