// Package sandbox models what an unprivileged program can observe from inside
// a FaaS container, in the two Cloud Run execution environments (§2.3):
//
//   - Gen 1 (gVisor): a non-virtualized Linux container. gVisor emulates
//     system calls and hides /proc, the host IP, and uptime — but rdtsc,
//     rdtscp, and cpuid execute directly on host hardware, so the guest sees
//     the raw host TSC and the host CPU brand string.
//   - Gen 2 (lightweight VM): hardware virtualization applies TSC offsetting,
//     so the guest TSC reads as zero at *VM* boot and the host boot time is
//     hidden. However, the guest kernel is a full Linux with root access, and
//     KVM exports the host's boot-time-refined TSC frequency (1 kHz
//     precision) to the guest for timekeeping — which leaks a per-host value.
//
// A Guest is the only handle attack code gets: it can read the TSC, make a
// (noisy) wall-clock system call, read the CPU model name, and — in Gen 2 —
// read the guest kernel's TSC frequency. Everything the core library does is
// built from these primitives, mirroring the real attacker's position.
package sandbox

import (
	"errors"
	"time"

	"eaao/internal/cpu"
	"eaao/internal/randx"
	"eaao/internal/simtime"
	"eaao/internal/tsc"
)

// Gen identifies the execution environment generation.
type Gen int

const (
	// Gen1 is the gVisor Linux-container environment (Cloud Run default).
	Gen1 Gen = 1
	// Gen2 is the lightweight-VM environment with TSC offsetting.
	Gen2 Gen = 2
)

// String returns "gen1" or "gen2".
func (g Gen) String() string {
	switch g {
	case Gen1:
		return "gen1"
	case Gen2:
		return "gen2"
	default:
		return "gen?"
	}
}

// ErrNotVirtualized is returned when a Gen 2-only facility is used in Gen 1.
var ErrNotVirtualized = errors.New("sandbox: guest kernel TSC frequency is only readable in the Gen 2 (VM) environment")

// ErrProbeFault is returned when a measurement probe fails for a transient
// host-side reason (the platform's fault plane). Probing again later may
// succeed; robust attack tooling matches it with errors.Is and retries.
var ErrProbeFault = errors.New("sandbox: measurement probe failed")

// HostEnv is the host-side state a sandbox mediates access to. The faas
// simulator's Host implements it.
type HostEnv interface {
	// Now returns the current virtual time (the host's true clock).
	Now() simtime.Time
	// Counter returns the host's timestamp counter.
	Counter() tsc.Counter
	// Noise returns the wall-clock measurement noise profile of this host.
	Noise() tsc.NoiseProfile
	// Model returns the host CPU model.
	Model() cpu.Model
	// RefinedTSCHz returns the host kernel's boot-time-refined TSC
	// frequency in Hz, already rounded to the kernel's 1 kHz precision.
	RefinedTSCHz() float64
	// NoiseRNG returns the random stream used for guest measurement noise.
	NoiseRNG() *randx.Source
	// Mitigations returns the TSC-masking defenses active on this host.
	Mitigations() Mitigations
	// ProbeFault reports whether a measurement probe taken at this instant
	// fails transiently (the platform's fault plane). Implementations must
	// return false — and consume no randomness — when fault injection is
	// off.
	ProbeFault() bool
}

// Guest is a sandboxed program's view of its host.
type Guest struct {
	env HostEnv
	gen Gen
	// tscOffset is subtracted from host TSC reads in Gen 2 (TSC offsetting
	// makes the counter appear to start at zero when the VM booted).
	tscOffset uint64
	// clockOffset is this sandbox's constant wall-clock offset from the
	// host's NTP-disciplined time (time-virtualization artifact; zero for
	// most guests). Constant per guest: it cancels in frequency deltas but
	// shifts derived boot times.
	clockOffset time.Duration
	// start is the instant the sandbox was created; mitigated counters are
	// relative to it.
	start simtime.Time
	// emuEpoch is the base instant of the kernel's *emulated* counter under
	// the trap-and-emulate mitigation: the moment the container's emulation
	// context initialized. Container startup is staggered by scheduling and
	// image-pull latency, so epochs differ across co-located instances —
	// which is exactly why the emulated counter carries no host signal.
	emuEpoch simtime.Time
	// timerReads counts TSC accesses, for the §6 overhead analysis.
	timerReads uint64
}

// NewGuest creates the guest view for a container started now on the given
// host. For Gen 2, the hypervisor records the host TSC at VM boot and offsets
// all guest reads by it.
func NewGuest(env HostEnv, gen Gen) *Guest {
	g := &Guest{}
	InitGuest(g, env, gen)
	return g
}

// InitGuest is NewGuest initializing g in place, for callers that embed the
// Guest inside a larger allocation (faas embeds one per instance — instance
// creation is the simulator's hottest allocation site). Draw order matches
// NewGuest exactly.
func InitGuest(g *Guest, env HostEnv, gen Gen) {
	*g = Guest{
		env:         env,
		gen:         gen,
		clockOffset: env.Noise().SampleGuestOffset(env.NoiseRNG()),
		start:       env.Now(),
	}
	startupLag := time.Duration(env.NoiseRNG().Range(0, float64(10*time.Second)))
	g.emuEpoch = g.start.Add(-startupLag)
	if gen == Gen2 {
		g.tscOffset = env.Counter().ReadAt(env.Now())
	}
}

// CloneInto copies g's observable state into dst, swapping the host
// environment handle for env — the world-snapshot path, where dst belongs to
// a cloned instance resident on the cloned counterpart of g's host. Offsets,
// epochs, and the timer-read count carry over, so the clone's future reads
// are byte-identical to the original's.
func (g *Guest) CloneInto(dst *Guest, env HostEnv) {
	*dst = *g
	dst.env = env
}

// Gen returns the execution environment generation.
func (g *Guest) Gen() Gen { return g.gen }

// ProbeFault reports whether a measurement probe attempted right now fails
// transiently. Fingerprint collectors consult it once per probe; callers
// that see ErrProbeFault may retry — failures are transient, not a property
// of the host.
func (g *Guest) ProbeFault() bool { return g.env.ProbeFault() }

// CPUModelName returns the brand string as read through cpuid. Both
// environments expose it: gVisor does not intercept cpuid, and the Gen 2
// hypervisor passes the (anonymized) host model through.
func (g *Guest) CPUModelName() string { return g.env.Model().Name }

// CPUIDInfo is the processor information an unprivileged cpuid sequence
// yields (§4.1): the brand string and the cache hierarchy — "essential for
// many cache-based side-channel attacks". The PSN that once uniquely
// identified processors is discontinued, which is why the paper's
// fingerprints rely on the TSC instead.
type CPUIDInfo struct {
	Vendor         string
	Brand          string
	Cores          int
	Sockets        int
	L1DBytes       int64
	L2Bytes        int64
	L3Bytes        int64
	CacheLineBytes int
}

// CPUID returns the processor information visible in this sandbox. Neither
// environment intercepts the instruction, so the values are the host's.
func (g *Guest) CPUID() CPUIDInfo {
	m := g.env.Model()
	return CPUIDInfo{
		Vendor:         m.Vendor(),
		Brand:          m.Name,
		Cores:          m.Cores,
		Sockets:        m.Sockets,
		L1DBytes:       m.L1DBytes,
		L2Bytes:        m.L2Bytes,
		L3Bytes:        m.L3Bytes,
		CacheLineBytes: m.CacheLineBytes,
	}
}

// ReadTSC executes rdtsc. In Gen 1 this is the raw host counter; in Gen 2
// the hardware subtracts the VM-boot offset. Under the §6 mitigations the
// returned counter is sandbox-relative and ticks at exactly the nominal
// frequency, leaking neither the host boot time nor the frequency error.
func (g *Guest) ReadTSC() uint64 {
	g.timerReads++
	m := g.env.Mitigations()
	if (g.gen == Gen1 && m.TrapAndEmulateTSC) || (g.gen == Gen2 && m.TSCScaling) {
		elapsed := g.env.Now().Sub(g.emuEpoch)
		return virtualTicks(uint64(elapsed), uint64(g.env.Model().BaseHz+0.5))
	}
	v := g.env.Counter().ReadAt(g.env.Now())
	return v - g.tscOffset
}

// virtualTicks converts elapsed nanoseconds to ticks at hz without overflow.
func virtualTicks(ns, hz uint64) uint64 {
	secs := ns / 1e9
	rem := ns % 1e9
	return secs*hz + rem*hz/1e9
}

// TimerReads reports how many TSC accesses this guest has performed.
func (g *Guest) TimerReads() uint64 { return g.timerReads }

// TimerReadCost returns the per-read latency of TSC access in this sandbox
// under the host's mitigations.
func (g *Guest) TimerReadCost() time.Duration {
	return g.env.Mitigations().TimerReadCost(g.gen)
}

// ReadWall performs a wall-clock system call (e.g. clock_gettime with
// CLOCK_REALTIME). The result is the host's NTP-disciplined true time, plus
// this sandbox's constant clock offset, plus a non-negative per-read jitter
// drawn from the host's noise profile.
func (g *Guest) ReadWall() simtime.Time {
	j := g.env.Noise().WallJitter(g.env.NoiseRNG())
	return g.env.Now().Add(g.clockOffset + j)
}

// ReadTSCAndWall models the back-to-back rdtsc; clock_gettime() sequence used
// to pair a counter value with a real-world timestamp (§4.2). The TSC is read
// first; the wall-clock value lands later by the syscall delay.
func (g *Guest) ReadTSCAndWall() (tscValue uint64, wall simtime.Time) {
	return g.ReadTSC(), g.ReadWall()
}

// GuestKernelTSCHz returns the TSC frequency the guest kernel uses for
// timekeeping. In Gen 2 the attacker has root in the VM and simply reads the
// value KVM exported — the host's refined frequency at 1 kHz precision. In
// Gen 1 the sandboxed container can only talk to gVisor, which does not
// expose it. With hardware TSC scaling enabled the guest counter is rescaled
// to nominal, so the exported frequency is the nominal one and carries no
// per-host signal.
func (g *Guest) GuestKernelTSCHz() (float64, error) {
	if g.gen != Gen2 {
		return 0, ErrNotVirtualized
	}
	if g.env.Mitigations().TSCScaling {
		nominal := g.env.Model().BaseHz
		return float64(int64(nominal/1000)) * 1000, nil
	}
	return g.env.RefinedTSCHz(), nil
}

// ReportedTSCHz returns the TSC frequency inferred from the CPU model name's
// labeled base frequency (method 1 of §4.2). It fails if the brand string
// carries no frequency label.
func (g *Guest) ReportedTSCHz() (float64, error) {
	return cpu.ParseBaseFrequency(g.CPUModelName())
}

// Sysinfo is what the sysinfo(2)/uptime interfaces report inside the
// sandbox. Both environments *virtualize* these values: gVisor emulates the
// system call and reports the sandbox's own lifetime, and a Gen 2 guest
// kernel booted with the VM. This is precisely why the paper needs the TSC:
// the sanctioned interfaces hide the host's uptime; the unprivileged
// hardware counter does not.
type Sysinfo struct {
	// Uptime is the (virtualized) system uptime.
	Uptime time.Duration
	// Hostname is the (virtualized) host name — the instance identity
	// scrambled, never the physical machine's name.
	Hostname string
}

// ReadSysinfo performs the emulated sysinfo system call.
func (g *Guest) ReadSysinfo() Sysinfo {
	return Sysinfo{
		Uptime:   g.env.Now().Sub(g.start),
		Hostname: "localhost",
	}
}
