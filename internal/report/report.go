// Package report renders experiment results as aligned text tables, CSV,
// and compact ASCII sparkline charts — the textual equivalents of the
// paper's figures, printed by the eaao CLI and the benchmark harness.
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v. The row is padded or
// truncated to the header width.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(values) {
			row[i] = formatCell(values[i])
		}
	}
	t.rows = append(t.rows, row)
}

func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		switch {
		case x == math.Trunc(x) && math.Abs(x) < 1e9:
			return fmt.Sprintf("%.0f", x)
		case math.Abs(x) >= 0.01 || x == 0:
			return fmt.Sprintf("%.4g", x)
		default:
			return fmt.Sprintf("%.3e", x)
		}
	default:
		return fmt.Sprint(v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// MarshalJSON serializes the table with its rows (which are unexported).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.rows})
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// sparkLevels are the eight block characters used for sparklines.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ys as a compact unicode chart, scaled to [min, max] of
// the data. An empty series renders as an empty string.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Series is a named (x, y) sequence: one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series plus axis labels — the data behind one paper
// figure.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a series to the figure.
func (f *Figure) AddSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// String renders the figure as a title, one sparkline per series, and a
// data table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-28s %s\n", s.Name, Sparkline(s.Y))
	}
	tbl := NewTable("", append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	for i := range maxLen(f.Series) {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, xAt(f.Series, i))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	b.WriteString(tbl.String())
	return b.String()
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func maxLen(ss []Series) int {
	m := 0
	for _, s := range ss {
		if len(s.Y) > m {
			m = len(s.Y)
		}
	}
	return m
}

func xAt(ss []Series, i int) any {
	for _, s := range ss {
		if i < len(s.X) {
			return s.X[i]
		}
	}
	return ""
}
