package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta", 42)
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only-one")
	out := tbl.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row dropped")
	}
}

func TestFormatCell(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "42"},
		{float64(42), "42"},
		{0.12345, "0.1235"},   // %.4g rounds
		{1.0e-5, "1.000e-05"}, // tiny values use scientific
		{"str", "str"},
	}
	for _, c := range cases {
		if got := formatCell(c.in); got != c.want {
			t.Errorf("formatCell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("x", "h1", "h2")
	tbl.AddRow("a,b", `say "hi"`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "h1,h2\n") {
		t.Errorf("missing header: %s", csv)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render lowest level: %q", flat)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{ID: "figX", Title: "demo", XLabel: "x", YLabel: "y"}
	f.AddSeries("s1", []float64{1, 2, 3}, []float64{10, 20, 30})
	f.AddSeries("s2", []float64{1, 2}, []float64{5, 6})
	out := f.String()
	for _, want := range []string{"figX", "demo", "s1", "s2", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}
