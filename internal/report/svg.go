package report

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the figure as a standalone SVG line chart (log-x optional),
// suitable for regenerating the paper's figures as image files. The output
// is self-contained: no scripts, no external fonts.
func (f *Figure) SVG(width, height int, logX bool) string {
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 55
	)
	if width <= marginL+marginR+20 {
		width = 640
	}
	if height <= marginT+marginB+20 {
		height = 360
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	// Data extents across all series.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.Y {
			x := xVal(s, i, logX)
			if !math.IsNaN(x) {
				xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			}
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little vertical headroom.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<style>text{font-family:sans-serif;font-size:12px;fill:#222}.t{font-size:14px;font-weight:bold}.ax{stroke:#444;stroke-width:1}.grid{stroke:#ddd;stroke-width:0.5}</style>`)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&b, `<text class="t" x="%d" y="20">%s: %s</text>`, marginL, escape(f.ID), escape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line class="ax" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line class="ax" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		marginL, marginT, marginL, height-marginB)

	// Ticks: 5 per axis, with light grid lines.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		gx := px(fx)
		fmt.Fprintf(&b, `<line class="grid" x1="%.1f" y1="%d" x2="%.1f" y2="%d"/>`,
			gx, marginT, gx, height-marginB)
		label := formatTick(fx)
		if logX {
			label = formatTick(math.Pow(10, fx))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			gx, height-marginB+18, label)

		fy := ymin + (ymax-ymin)*float64(i)/4
		gy := py(fy)
		fmt.Fprintf(&b, `<line class="grid" x1="%d" y1="%.1f" x2="%d" y2="%.1f"/>`,
			marginL, gy, width-marginR, gy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`,
			marginL-6, gy+4, formatTick(fy))
	}
	// Axis labels.
	xl := f.XLabel
	if logX {
		xl += " (log)"
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`,
		marginL+int(plotW/2), height-12, escape(xl))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		marginT+int(plotH/2), marginT+int(plotH/2), escape(f.YLabel))

	// Series.
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.Y {
			x := xVal(s, i, logX)
			if math.IsNaN(x) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Y[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`,
				color, strings.Join(pts, " "))
		}
		// Legend entry.
		ly := marginT + 4 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`,
			width-marginR-150, ly, width-marginR-130, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`,
			width-marginR-124, ly+4, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// xVal returns the i-th x value of a series, in plot space (log10 when logX
// is set; non-positive x values are dropped there).
func xVal(s Series, i int, logX bool) float64 {
	var x float64
	if i < len(s.X) {
		x = s.X[i]
	} else {
		x = float64(i)
	}
	if logX {
		if x <= 0 {
			return math.NaN()
		}
		return math.Log10(x)
	}
	return x
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e5 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.0e", v)
	case av >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
