package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func demoFigure() *Figure {
	f := &Figure{ID: "figX", Title: "demo <chart>", XLabel: "x", YLabel: "y"}
	f.AddSeries("alpha", []float64{1, 10, 100}, []float64{0.2, 0.8, 0.5})
	f.AddSeries("beta", []float64{1, 10, 100}, []float64{0.9, 0.1, 0.4})
	return f
}

func TestSVGWellFormed(t *testing.T) {
	for _, logX := range []bool{false, true} {
		svg := demoFigure().SVG(640, 360, logX)
		if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
			t.Fatalf("logX=%v: SVG is not well-formed XML: %v", logX, err)
		}
		for _, want := range []string{"<svg", "polyline", "alpha", "beta", "figX"} {
			if !strings.Contains(svg, want) {
				t.Errorf("logX=%v: SVG missing %q", logX, want)
			}
		}
		// The title's angle brackets must be escaped.
		if strings.Contains(svg, "<chart>") {
			t.Error("unescaped text content")
		}
	}
}

func TestSVGOneSeriesPerPolyline(t *testing.T) {
	svg := demoFigure().SVG(640, 360, false)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	f := &Figure{ID: "empty", Title: "no data", XLabel: "x", YLabel: "y"}
	svg := f.SVG(640, 360, false)
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Fatalf("empty-figure SVG invalid: %v", err)
	}
}

func TestSVGLogXDropsNonPositive(t *testing.T) {
	f := &Figure{ID: "f", Title: "t", XLabel: "x", YLabel: "y"}
	f.AddSeries("s", []float64{0, 1, 10}, []float64{1, 2, 3})
	svg := f.SVG(640, 360, true)
	// The x=0 point cannot appear on a log axis; polyline must still render
	// with the remaining two points.
	if !strings.Contains(svg, "<polyline") {
		t.Error("no polyline despite valid points")
	}
}

func TestSVGDefaultsOnTinyDimensions(t *testing.T) {
	svg := demoFigure().SVG(10, 5, false)
	if !strings.Contains(svg, `width="640"`) || !strings.Contains(svg, `height="360"`) {
		t.Error("tiny dimensions not clamped to defaults")
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{0.25, "0.25"},
		{1234, "1234"},
		{1e6, "1e+06"},
		{0.0001, "1e-04"},
	}
	for _, c := range cases {
		if got := formatTick(c.in); got != c.want {
			t.Errorf("formatTick(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
