// Package benchfmt defines the checked-in benchmark-record format shared by
// the benchjson and benchdiff tools: a JSON snapshot of `go test -bench`
// output (ns/op, B/op, allocs/op, and custom ReportMetric figures) labeled
// with its point in the repository's performance trajectory.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// File is one benchmark record (BENCH_<label>.json).
type File struct {
	// Label identifies the point in the trajectory (git short SHA,
	// "baseline", "pr3", ...).
	Label string `json:"label"`
	// GoOS/GoArch/Pkg echo the `go test` header lines when present, so a
	// diff across machines is visibly apples-to-oranges.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed result lines.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkPlacement/cloudrun").
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard -benchmem figures;
	// Bytes/Allocs are zero when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other value/unit pair (custom b.ReportMetric
	// figures), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` text output. Unrecognized lines are skipped;
// goos/goarch/pkg header lines fill the file metadata.
func Parse(r io.Reader, label string) (*File, error) {
	out := &File{Label: label}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one "BenchmarkX-8  1234  567 ns/op  ..." line. ok is
// false for non-benchmark lines (including FAIL markers).
func parseLine(line string) (b Benchmark, ok bool, err error) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so records taken at different widths
	// diff by name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b = Benchmark{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchfmt: bad value %q in line %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true, nil
}

// Write marshals the record with stable formatting and a trailing newline.
func Write(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a record written by Write.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &f, nil
}

// ByName indexes the record's benchmarks.
func (f *File) ByName() map[string]Benchmark {
	out := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
	}
	return out
}
