package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSampleOutput(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "sample_bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := Parse(f, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label != "sample" || rec.GoOS != "linux" || rec.GoArch != "amd64" || rec.Pkg != "eaao" {
		t.Errorf("header mismatch: %+v", rec)
	}
	if len(rec.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rec.Benchmarks))
	}

	by := rec.ByName()
	cr, ok := by["BenchmarkPlacement/cloudrun"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: have %v", keys(by))
	}
	if cr.Iterations != 4096 || cr.NsPerOp != 289519 || cr.BytesPerOp != 86408 || cr.AllocsPerOp != 1262 {
		t.Errorf("cloudrun line misparsed: %+v", cr)
	}

	// Custom ReportMetric units land in Metrics, standard units do not.
	fig4 := by["BenchmarkFig4Coverage"]
	if got := fig4.Metrics["coverage_frac"]; got != 0.4321 {
		t.Errorf("coverage_frac = %v, want 0.4321", got)
	}
	ver := by["BenchmarkAblationVerification/scalable"]
	if got := ver.Metrics["tests"]; got != 41 {
		t.Errorf("tests metric = %v, want 41", got)
	}
	if len(cr.Metrics) != 0 {
		t.Errorf("standard units leaked into Metrics: %v", cr.Metrics)
	}

	// The kernel-throughput budgets bench-gate guards (events/sec up,
	// allocs/event down) must round-trip through the JSON Metrics map next
	// to the standard -benchmem fields.
	sk := by["BenchmarkScaleKernel"]
	if got := sk.Metrics["events/sec"]; got != 541759 {
		t.Errorf("events/sec = %v, want 541759", got)
	}
	if got := sk.Metrics["allocs/event"]; got != 1.805 {
		t.Errorf("allocs/event = %v, want 1.805", got)
	}
	if sk.BytesPerOp != 9478124 || sk.AllocsPerOp != 19367 {
		t.Errorf("scale kernel -benchmem fields misparsed: %+v", sk)
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	eaao	12.3s",
		"--- BENCH: BenchmarkFoo-8",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkTooShort-8 100",
	} {
		b, ok, err := parseLine(line)
		if err != nil {
			t.Errorf("%q: unexpected error %v", line, err)
		}
		if ok {
			t.Errorf("%q: parsed as benchmark %+v", line, b)
		}
	}
	// A malformed value in an otherwise-valid line is a hard error.
	if _, _, err := parseLine("BenchmarkX-8 100 abc ns/op"); err == nil {
		t.Error("bad value accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	in := &File{
		Label: "x",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", Iterations: 10, NsPerOp: 1.5, AllocsPerOp: 3,
				Metrics: map[string]float64{"tests": 41}},
		},
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].Name != "BenchmarkA" ||
		out.Benchmarks[0].Metrics["tests"] != 41 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func keys(m map[string]Benchmark) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
