// Command seedprobe (development tool) reports, per seed, how much the three
// study accounts' base-host pools overlap in each region — used to pick a
// default seed whose account geometry resembles the paper's (attacker and
// victims separated in the large regions, accidental overlap possible in the
// small one).
package main

import (
	"fmt"

	"eaao/internal/faas"
)

func main() {
	for seed := uint64(1); seed <= 30; seed++ {
		pl := faas.MustPlatform(seed, faas.DefaultProfiles()...)
		line := fmt.Sprintf("seed %2d:", seed)
		for _, r := range pl.Regions() {
			dc := pl.MustRegion(r)
			base := func(a string) map[faas.HostID]bool {
				out := map[faas.HostID]bool{}
				insts, err := dc.Account(a).DeployService("p", faas.ServiceConfig{}).Launch(800)
				if err != nil {
					panic(err)
				}
				for _, in := range insts {
					id, _ := in.HostID()
					out[id] = true
				}
				return out
			}
			b1 := base("account-1")
			overlap := func(b map[faas.HostID]bool) float64 {
				n, tot := 0, 0
				for id := range b {
					tot++
					if b1[id] {
						n++
					}
				}
				return float64(n) / float64(tot)
			}
			o2 := overlap(base("account-2"))
			o3 := overlap(base("account-3"))
			line += fmt.Sprintf("  %s: %.2f/%.2f", r, o2, o3)
		}
		fmt.Println(line)
	}
}
