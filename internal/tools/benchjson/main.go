// Command benchjson converts `go test -bench` text output into a stable,
// check-in-able JSON record — one point of the repository's benchmark
// trajectory (BENCH_<label>.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./internal/tools/benchjson -label pr3 -out BENCH_pr3.json
//	go run ./internal/tools/benchjson -in bench.txt -label baseline -out BENCH_baseline.json
//
// Every benchmark line is captured: ns/op, B/op, allocs/op, and any custom
// ReportMetric figures (e.g. coverage_frac, tests) land in the metrics map.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"eaao/internal/tools/benchfmt"
)

func main() {
	label := flag.String("label", "", "trajectory label for this record (required)")
	in := flag.String("in", "", "read bench output from this file instead of stdin")
	out := flag.String("out", "", "write the JSON record here (default stdout)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rec, err := benchfmt.Parse(src, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	sort.SliceStable(rec.Benchmarks, func(i, j int) bool {
		return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name
	})
	if *out == "" {
		data, _ := json.MarshalIndent(rec, "", "  ")
		fmt.Println(string(data))
		return
	}
	if err := benchfmt.Write(*out, rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}
