package main

import (
	"strings"
	"testing"

	"eaao/internal/tools/benchfmt"
)

func rec(label string, benches ...benchfmt.Benchmark) *benchfmt.File {
	return &benchfmt.File{Label: label, Benchmarks: benches}
}

func TestDiffSpeedupAndRegression(t *testing.T) {
	base := rec("baseline",
		benchfmt.Benchmark{Name: "BenchmarkFast", NsPerOp: 300, AllocsPerOp: 100},
		benchfmt.Benchmark{Name: "BenchmarkSlow", NsPerOp: 100, AllocsPerOp: 10},
		benchfmt.Benchmark{Name: "BenchmarkGone", NsPerOp: 50},
	)
	head := rec("pr",
		benchfmt.Benchmark{Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 40},
		benchfmt.Benchmark{Name: "BenchmarkSlow", NsPerOp: 200, AllocsPerOp: 10},
		benchfmt.Benchmark{Name: "BenchmarkNew", NsPerOp: 70},
	)
	var out strings.Builder
	regressions := diff(&out, base, head, 0.25, false)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (only BenchmarkSlow doubled)", regressions)
	}
	text := out.String()
	for _, want := range []string{
		"3.00x",      // BenchmarkFast speedup 300/100
		"100 -> 40",  // BenchmarkFast alloc movement
		"REGRESSION", // BenchmarkSlow flagged
		"(new)",      // BenchmarkNew never fails the run
		"(removed)",  // BenchmarkGone listed
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	base := rec("a", benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: 100})
	head := rec("b", benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: 120})
	var out strings.Builder
	if n := diff(&out, base, head, 0.25, false); n != 0 {
		t.Errorf("20%% growth under a 25%% threshold flagged: %d", n)
	}
	// Tighten the threshold and the same pair fails.
	if n := diff(&out, base, head, 0.10, false); n != 1 {
		t.Errorf("20%% growth over a 10%% threshold not flagged: %d", n)
	}
}

// TestGateGuardsBudgets pins the -gate mode's extra, direction-aware checks:
// allocation budgets and the kernel's allocs/event must not grow, events/sec
// must not drop, and result-shaped custom metrics are never gated.
func TestGateGuardsBudgets(t *testing.T) {
	base := rec("pr7",
		benchfmt.Benchmark{Name: "BenchmarkScaleKernel", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 100,
			Metrics: map[string]float64{"events/sec": 500000, "allocs/event": 1.8, "coverage": 0.9}},
	)
	pass := rec("pr8",
		benchfmt.Benchmark{Name: "BenchmarkScaleKernel", NsPerOp: 900, BytesPerOp: 480, AllocsPerOp: 90,
			Metrics: map[string]float64{"events/sec": 900000, "allocs/event": 0.19, "coverage": 0.9}},
	)
	var out strings.Builder
	if n := diff(&out, base, pass, 0.25, true); n != 0 {
		t.Errorf("all-improved record flagged %d regressions:\n%s", n, out.String())
	}

	fail := rec("bad",
		benchfmt.Benchmark{Name: "BenchmarkScaleKernel", NsPerOp: 1100, BytesPerOp: 700, AllocsPerOp: 140,
			Metrics: map[string]float64{"events/sec": 300000, "allocs/event": 2.5, "coverage": 0.1}},
	)
	out.Reset()
	// ns/op grew 10% (inside the gate); B/op +40%, allocs/op +40%,
	// allocs/event +39%, events/sec -40% all regress. coverage moving is
	// not a gated budget.
	if n := diff(&out, base, fail, 0.25, true); n != 4 {
		t.Errorf("regressions = %d, want 4 (B/op, allocs/op, allocs/event, events/sec):\n%s", n, out.String())
	}
	for _, want := range []string{"B/op", "allocs/event", "events/sec"} {
		if !strings.Contains(out.String(), want+" ") && !strings.Contains(out.String(), "  "+want) {
			t.Errorf("gate output missing %q:\n%s", want, out.String())
		}
	}

	// Without gate mode the same pair passes: only ns/op is guarded.
	out.Reset()
	if n := diff(&out, base, fail, 0.25, false); n != 0 {
		t.Errorf("threshold mode flagged gated-only regressions: %d", n)
	}
}

// TestGateSkipsMicrobenchmarkNsOp pins the ns/op noise floor: gate mode does
// not fail on timing swings of sub-100µs benchmarks (timer noise dominates
// there), but their deterministic allocation budgets stay gated — and
// threshold mode keeps its historical behavior of guarding every ns/op.
func TestGateSkipsMicrobenchmarkNsOp(t *testing.T) {
	base := rec("pr7", benchfmt.Benchmark{Name: "BenchmarkTiny", NsPerOp: 4000, AllocsPerOp: 54})
	head := rec("pr8", benchfmt.Benchmark{Name: "BenchmarkTiny", NsPerOp: 8000, AllocsPerOp: 54})
	var out strings.Builder
	if n := diff(&out, base, head, 0.25, true); n != 0 {
		t.Errorf("gate flagged a sub-floor ns/op swing: %d\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "noise") {
		t.Errorf("skipped swing not annotated:\n%s", out.String())
	}
	if n := diff(&out, base, head, 0.25, false); n != 1 {
		t.Errorf("threshold mode lost its ns/op guard: %d", n)
	}

	// Allocation budgets have no floor: a tiny benchmark that doubles its
	// allocs still regresses.
	leaky := rec("bad", benchfmt.Benchmark{Name: "BenchmarkTiny", NsPerOp: 4100, AllocsPerOp: 108})
	out.Reset()
	if n := diff(&out, base, leaky, 0.25, true); n != 1 {
		t.Errorf("alloc growth on a tiny benchmark not gated: %d\n%s", n, out.String())
	}
}
