package main

import (
	"strings"
	"testing"

	"eaao/internal/tools/benchfmt"
)

func rec(label string, benches ...benchfmt.Benchmark) *benchfmt.File {
	return &benchfmt.File{Label: label, Benchmarks: benches}
}

func TestDiffSpeedupAndRegression(t *testing.T) {
	base := rec("baseline",
		benchfmt.Benchmark{Name: "BenchmarkFast", NsPerOp: 300, AllocsPerOp: 100},
		benchfmt.Benchmark{Name: "BenchmarkSlow", NsPerOp: 100, AllocsPerOp: 10},
		benchfmt.Benchmark{Name: "BenchmarkGone", NsPerOp: 50},
	)
	head := rec("pr",
		benchfmt.Benchmark{Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 40},
		benchfmt.Benchmark{Name: "BenchmarkSlow", NsPerOp: 200, AllocsPerOp: 10},
		benchfmt.Benchmark{Name: "BenchmarkNew", NsPerOp: 70},
	)
	var out strings.Builder
	regressions := diff(&out, base, head, 0.25)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (only BenchmarkSlow doubled)", regressions)
	}
	text := out.String()
	for _, want := range []string{
		"3.00x",      // BenchmarkFast speedup 300/100
		"100 -> 40",  // BenchmarkFast alloc movement
		"REGRESSION", // BenchmarkSlow flagged
		"(new)",      // BenchmarkNew never fails the run
		"(removed)",  // BenchmarkGone listed
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	base := rec("a", benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: 100})
	head := rec("b", benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: 120})
	var out strings.Builder
	if n := diff(&out, base, head, 0.25); n != 0 {
		t.Errorf("20%% growth under a 25%% threshold flagged: %d", n)
	}
	// Tighten the threshold and the same pair fails.
	if n := diff(&out, base, head, 0.10); n != 1 {
		t.Errorf("20%% growth over a 10%% threshold not flagged: %d", n)
	}
}
