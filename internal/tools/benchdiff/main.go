// Command benchdiff compares two BENCH_*.json records (written by benchjson)
// and fails when a benchmark regressed beyond a threshold.
//
// Usage:
//
//	go run ./internal/tools/benchdiff BENCH_baseline.json BENCH_pr3.json
//	go run ./internal/tools/benchdiff -threshold 0.10 old.json new.json
//
// For every benchmark present in both records it prints base/head ns/op, the
// speedup factor (base/head, >1 is faster), and the allocs/op movement.
// Benchmarks only in one record are listed but never fail the run. Exit
// status is 1 if any shared benchmark's ns/op grew by more than -threshold
// (fractional; default 0.25 to absorb timer noise at Quick scale).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eaao/internal/tools/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional ns/op growth before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] BASE.json HEAD.json")
		os.Exit(2)
	}
	base, err := benchfmt.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	head, err := benchfmt.Read(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	regressions := diff(os.Stdout, base, head, *threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}

// diff prints the comparison table and returns the number of shared
// benchmarks whose ns/op grew beyond the fractional threshold.
func diff(w io.Writer, base, head *benchfmt.File, threshold float64) int {
	baseBy := base.ByName()
	fmt.Fprintf(w, "benchdiff: %s -> %s (threshold %.0f%%)\n", base.Label, head.Label, threshold*100)
	fmt.Fprintf(w, "%-45s %14s %14s %8s %18s\n", "benchmark", "base ns/op", "head ns/op", "speedup", "allocs/op")
	regressions := 0
	matched := make(map[string]bool, len(head.Benchmarks))
	for _, hb := range head.Benchmarks {
		bb, ok := baseBy[hb.Name]
		if !ok {
			fmt.Fprintf(w, "%-45s %14s %14.0f %8s %18s\n", hb.Name, "(new)", hb.NsPerOp, "", "")
			continue
		}
		matched[hb.Name] = true
		speedup := 0.0
		if hb.NsPerOp > 0 {
			speedup = bb.NsPerOp / hb.NsPerOp
		}
		status := ""
		if bb.NsPerOp > 0 && hb.NsPerOp > bb.NsPerOp*(1+threshold) {
			status = "  REGRESSION"
			regressions++
		}
		allocs := fmt.Sprintf("%.0f -> %.0f", bb.AllocsPerOp, hb.AllocsPerOp)
		fmt.Fprintf(w, "%-45s %14.0f %14.0f %7.2fx %18s%s\n",
			hb.Name, bb.NsPerOp, hb.NsPerOp, speedup, allocs, status)
	}
	for _, bb := range base.Benchmarks {
		if !matched[bb.Name] {
			fmt.Fprintf(w, "%-45s %14.0f %14s\n", bb.Name, bb.NsPerOp, "(removed)")
		}
	}
	return regressions
}
