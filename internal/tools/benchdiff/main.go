// Command benchdiff compares two BENCH_*.json records (written by benchjson)
// and fails when a benchmark regressed beyond a threshold.
//
// Usage:
//
//	go run ./internal/tools/benchdiff BENCH_baseline.json BENCH_pr3.json
//	go run ./internal/tools/benchdiff -threshold 0.10 old.json new.json
//	go run ./internal/tools/benchdiff -gate 25 BENCH_pr7.json BENCH_pr8.json
//
// For every benchmark present in both records it prints base/head ns/op, the
// speedup factor (base/head, >1 is faster), and the allocs/op movement.
// Benchmarks only in one record are listed but never fail the run.
//
// The default mode guards ns/op only: exit status is 1 if any shared
// benchmark's ns/op grew by more than -threshold (fractional; default 0.25
// to absorb timer noise at Quick scale). Gate mode (-gate P, in percent)
// additionally guards the allocation and kernel-throughput budgets,
// direction-aware: B/op, allocs/op, and the allocs/event custom metric must
// not grow by more than P%, and the events/sec custom metric must not drop
// by more than P%. Result-shaped custom metrics (coverage, fmi, tests, ...)
// are never gated — those are pinned exactly by the golden digest suite, not
// bounded by a noise band. In gate mode the ns/op check also skips
// microbenchmarks whose base is under 100µs: at that duration timer noise
// alone swings past any reasonable band, while the benchmarks' allocation
// budgets — which are deterministic — remain fully gated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eaao/internal/tools/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional ns/op growth before failing")
	gate := flag.Float64("gate", 0, "percent regression gate over ns/op, B/op, allocs/op, events/sec, allocs/event (0 = ns/op-only threshold mode)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F | -gate P] BASE.json HEAD.json")
		os.Exit(2)
	}
	base, err := benchfmt.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	head, err := benchfmt.Read(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	frac := *threshold
	if *gate > 0 {
		frac = *gate / 100
	}
	regressions := diff(os.Stdout, base, head, frac, *gate > 0)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", regressions, frac*100)
		os.Exit(1)
	}
}

// gatedMetric is one budget the -gate mode guards beyond ns/op.
type gatedMetric struct {
	unit         string
	higherBetter bool
	value        func(benchfmt.Benchmark) (float64, bool)
}

var gatedMetrics = []gatedMetric{
	{unit: "B/op", value: func(b benchfmt.Benchmark) (float64, bool) {
		return b.BytesPerOp, b.BytesPerOp > 0
	}},
	{unit: "allocs/op", value: func(b benchfmt.Benchmark) (float64, bool) {
		return b.AllocsPerOp, b.AllocsPerOp > 0
	}},
	{unit: "allocs/event", value: func(b benchfmt.Benchmark) (float64, bool) {
		v, ok := b.Metrics["allocs/event"]
		return v, ok
	}},
	{unit: "events/sec", higherBetter: true, value: func(b benchfmt.Benchmark) (float64, bool) {
		v, ok := b.Metrics["events/sec"]
		return v, ok && v > 0
	}},
}

// nsGateFloor is the base ns/op below which gate mode stops guarding ns/op:
// sub-100µs benchmarks are timer-noise-dominated (observed swings >60% on an
// idle machine), so gating them would fail spuriously. Their B/op and
// allocs/op budgets are deterministic and stay gated.
const nsGateFloor = 100_000

// regressed reports whether head moved in the bad direction by more than the
// fractional threshold relative to base.
func regressed(base, head float64, higherBetter bool, threshold float64) bool {
	if higherBetter {
		return head < base*(1-threshold)
	}
	return head > base*(1+threshold)
}

// diff prints the comparison table and returns the number of regressions
// beyond the fractional threshold: ns/op growth always, plus the
// direction-aware gated metrics when gate mode is on.
func diff(w io.Writer, base, head *benchfmt.File, threshold float64, gate bool) int {
	baseBy := base.ByName()
	mode := "threshold"
	if gate {
		mode = "gate"
	}
	fmt.Fprintf(w, "benchdiff: %s -> %s (%s %.0f%%)\n", base.Label, head.Label, mode, threshold*100)
	fmt.Fprintf(w, "%-45s %14s %14s %8s %18s\n", "benchmark", "base ns/op", "head ns/op", "speedup", "allocs/op")
	regressions := 0
	matched := make(map[string]bool, len(head.Benchmarks))
	for _, hb := range head.Benchmarks {
		bb, ok := baseBy[hb.Name]
		if !ok {
			fmt.Fprintf(w, "%-45s %14s %14.0f %8s %18s\n", hb.Name, "(new)", hb.NsPerOp, "", "")
			continue
		}
		matched[hb.Name] = true
		speedup := 0.0
		if hb.NsPerOp > 0 {
			speedup = bb.NsPerOp / hb.NsPerOp
		}
		status := ""
		if bb.NsPerOp > 0 && regressed(bb.NsPerOp, hb.NsPerOp, false, threshold) {
			if gate && bb.NsPerOp < nsGateFloor {
				status = "  (noise: under ns/op gate floor)"
			} else {
				status = "  REGRESSION"
				regressions++
			}
		}
		allocs := fmt.Sprintf("%.0f -> %.0f", bb.AllocsPerOp, hb.AllocsPerOp)
		fmt.Fprintf(w, "%-45s %14.0f %14.0f %7.2fx %18s%s\n",
			hb.Name, bb.NsPerOp, hb.NsPerOp, speedup, allocs, status)
		if !gate {
			continue
		}
		for _, m := range gatedMetrics {
			bv, bok := m.value(bb)
			hv, hok := m.value(hb)
			// A budget only binds when both records carry it: records
			// taken without -benchmem, or benchmarks without the kernel
			// metrics, have nothing to compare.
			if !bok || !hok {
				continue
			}
			if regressed(bv, hv, m.higherBetter, threshold) {
				fmt.Fprintf(w, "%-45s %14.4g %14.4g %8s %18s  REGRESSION\n",
					"  "+m.unit, bv, hv, "", "")
				regressions++
			}
		}
	}
	for _, bb := range base.Benchmarks {
		if !matched[bb.Name] {
			fmt.Fprintf(w, "%-45s %14.0f %14s\n", bb.Name, bb.NsPerOp, "(removed)")
		}
	}
	return regressions
}
