// Package randx provides deterministic random-number utilities used across
// the simulator. Every stochastic component of the simulation draws from a
// Source that is either seeded directly or derived from a parent seed plus a
// string label, so that an entire experiment is reproducible from a single
// root seed while sub-systems (hosts, services, accounts) remain statistically
// independent of each other.
package randx

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps the simulator's
// stdlib-identical generator state (rngState) with the distribution helpers
// the simulator needs (normal, laplace, exponential, bounded ints, shuffles)
// and with stable sub-stream derivation. The stdlib distributions run
// through *rand.Rand over that state, so every draw is bit-identical to a
// rand.New(rand.NewSource(seed)) stream — while the state itself stays
// cloneable for world snapshots.
type Source struct {
	// rng and st are stored by value so a Source is one allocation; rng's
	// internal source pointer refers to &st, restored by wire() whenever a
	// Source is created or copied.
	rng  rand.Rand
	st   rngState
	seed uint64
}

// wire points s.rng at s.st. rand.New inlines, so the temporary Rand it
// builds stays on the stack and only its value is kept.
func (s *Source) wire() { s.rng = *rand.New(&s.st) }

// New returns a Source seeded with the given seed.
func New(seed uint64) *Source {
	s := &Source{seed: seed}
	s.st.Seed(int64(seed))
	s.wire()
	return s
}

// Reseed reinitializes s in place to exactly the state New(seed) would
// return: the same stream from the top, with no allocation. It exists for
// scratch Sources that are derived, drained, and discarded in one scope
// (per-host materialization, recycle draws, pool sampling) — the dominant
// randx allocation sites once streams themselves got cheap.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	s.st.Seed(int64(seed))
	s.wire()
}

// DeriveInto is Derive(labels...) into an existing Source: dst is reseeded
// in place to the identical derived stream and returned. dst must not be in
// use by any live caller (the simulator's scratch sources are single-purpose
// and the simulator is single-threaded, which is what makes this safe).
func (s *Source) DeriveInto(dst *Source, labels ...string) *Source {
	dst.Reseed(s.DeriveSeed(labels...))
	return dst
}

// DeriveIndexedInto is DeriveIndexed(label, idx) into an existing Source,
// under the same aliasing contract as DeriveInto.
func (s *Source) DeriveIndexedInto(dst *Source, label string, idx int) *Source {
	dst.Reseed(s.deriveIndexedSeed(label, idx))
	return dst
}

// Clone returns an independent copy of the source at its exact current
// stream position: both copies produce the identical remaining sequence, and
// drawing from one never affects the other. (The wrapped rand.Rand carries
// no draw state of its own beyond Read buffering, which Source never uses.)
func (s *Source) Clone() *Source {
	c := &Source{st: s.st, seed: s.seed}
	c.wire()
	return c
}

// fnv64a constants (hash/fnv, hand-rolled so Derive allocates nothing
// beyond the new Source itself).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Derive returns a new Source whose seed is a stable hash of the parent seed
// and the given labels. Deriving with the same labels always yields the same
// stream; different labels yield independent streams. Derive does not consume
// randomness from the parent.
func (s *Source) Derive(labels ...string) *Source {
	return New(s.DeriveSeed(labels...))
}

// DeriveSeed returns the seed Derive would build a stream from — the FNV-64a
// hash of the parent seed (little-endian) and the NUL-separated labels —
// without constructing the stream.
func (s *Source) DeriveSeed(labels ...string) uint64 {
	h := uint64(fnvOffset64)
	for v, i := s.seed, 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	for _, l := range labels {
		h = (h ^ 0) * fnvPrime64 // separator so ("ab","c") != ("a","bc")
		for i := 0; i < len(l); i++ {
			h = (h ^ uint64(l[i])) * fnvPrime64
		}
	}
	return h
}

// DeriveIndexed is Derive(label, strconv.Itoa(idx)) without building the
// index string: the decimal digits are hashed directly. It exists for
// per-entity stream derivation over dense integer identities (one stream per
// host), where the throwaway label string was a measurable allocation.
func (s *Source) DeriveIndexed(label string, idx int) *Source {
	return New(s.deriveIndexedSeed(label, idx))
}

// deriveIndexedSeed is DeriveSeed(label, strconv.Itoa(idx)) with the digits
// hashed from a stack buffer.
func (s *Source) deriveIndexedSeed(label string, idx int) uint64 {
	h := uint64(fnvOffset64)
	for v, i := s.seed, 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	h = (h ^ 0) * fnvPrime64
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * fnvPrime64
	}
	h = (h ^ 0) * fnvPrime64
	var buf [20]byte
	n := len(buf)
	u := uint64(idx)
	if idx < 0 {
		u = uint64(-idx)
	}
	for {
		n--
		buf[n] = '0' + byte(u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if idx < 0 {
		n--
		buf[n] = '-'
	}
	for ; n < len(buf); n++ {
		h = (h ^ uint64(buf[n])) * fnvPrime64
	}
	return h
}

// Seed reports the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 { return s.rng.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("randx: IntRange with hi < lo")
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Normal returns a draw from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Laplace returns a draw from the Laplace distribution with the given mean
// and scale b (variance 2b²). Laplace has heavier tails than the normal
// distribution and models per-host TSC frequency error well: most hosts are
// close to nominal, a few deviate a lot.
func (s *Source) Laplace(mean, b float64) float64 {
	u := s.rng.Float64() - 0.5
	if u >= 0 {
		return mean - b*math.Log(1-2*u)
	}
	return mean + b*math.Log(1+2*u)
}

// Exponential returns a draw from Exp(rate); mean is 1/rate.
func (s *Source) Exponential(rate float64) float64 {
	return s.rng.ExpFloat64() / rate
}

// LogNormal returns exp(N(mu, sigma²)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("randx: Sample with k out of range")
	}
	// Partial Fisher-Yates: only the first k slots are needed.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// splitmixGamma is the golden-ratio increment of the SplitMix64 generator.
const splitmixGamma = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a fast, high-quality bijective mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixInit starts a mixer chain: the first round of Mix3. Callers that hash
// many values sharing a prefix (every lifecycle draw of one data center
// shares the seed word; every draw of one instance also shares the identity
// word) precompute the shared rounds once and finish with MixStep per draw.
func MixInit(a uint64) uint64 { return mix64(a + splitmixGamma) }

// MixStep folds one more word into a mixer chain started by MixInit.
// MixStep(MixStep(MixInit(a), b), c) == Mix3(a, b, c), bit for bit.
func MixStep(x, b uint64) uint64 { return mix64(x + b + splitmixGamma) }

// Mix3 hashes three words into one well-distributed 64-bit value by chaining
// the SplitMix64 finalizer with golden-ratio increments. It is stateless and
// allocation-free: where Derive pays ~5 KB of generator state per stream,
// Mix3 lets millions of fine-grained consumers (per-instance lifecycle
// events) each own a logical stream addressed by (seed, identity, draw#).
func Mix3(a, b, c uint64) uint64 {
	return MixStep(MixStep(MixInit(a), b), c)
}

// Unit maps a 64-bit value to a uniform float64 in [0, 1) using its top 53
// bits, the standard conversion with full double precision.
func Unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// WeightedIndex returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero-weight entries are never chosen. It panics
// if weights is empty, contains a negative value, or sums to zero.
func (s *Source) WeightedIndex(weights []float64) int {
	if len(weights) == 0 {
		panic("randx: WeightedIndex with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("randx: WeightedIndex with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("randx: WeightedIndex with zero total weight")
	}
	target := s.rng.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point accumulation can leave target marginally above acc;
	// return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}
