package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDeriveStable(t *testing.T) {
	root := New(7)
	a := root.Derive("host", "3")
	b := root.Derive("host", "3")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams with identical labels diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependent(t *testing.T) {
	root := New(7)
	a := root.Derive("host", "3")
	b := root.Derive("host", "4")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams with different labels collided %d/100 times", same)
	}
}

func TestDeriveSeparator(t *testing.T) {
	root := New(7)
	a := root.Derive("ab", "c")
	b := root.Derive("a", "bc")
	if a.Seed() == b.Seed() {
		t.Fatal("label concatenation ambiguity: (ab,c) and (a,bc) derived the same seed")
	}
}

func TestDeriveDoesNotConsumeParent(t *testing.T) {
	a := New(42)
	b := New(42)
	a.Derive("x")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Derive consumed randomness from the parent stream")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(1)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %.4f, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Errorf("normal stddev = %.4f, want ~3", std)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(2)
	const n = 200000
	const b = 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Laplace(5, b)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("laplace mean = %.4f, want ~5", mean)
	}
	want := 2 * b * b // Var(Laplace) = 2b²
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("laplace variance = %.4f, want ~%.1f", variance, want)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(0.5)
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("exponential mean = %.4f, want ~2", mean)
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(4)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	s := New(5)
	out := s.Sample(10, 10)
	seen := make(map[int]bool)
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Sample(10,10) returned %d distinct values, want 10", len(seen))
	}
}

func TestIntRange(t *testing.T) {
	s := New(6)
	f := func(loRaw, span uint8) bool {
		lo := int(loRaw) - 128
		hi := lo + int(span)
		v := s.IntRange(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(8)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight indices chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight ratio = %.3f, want ~3", ratio)
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	s := New(9)
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedIndex(%s) did not panic", name)
				}
			}()
			s.WeightedIndex(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("Perm repeated value %d", v)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.24 || p > 0.26 {
		t.Errorf("Bool(0.25) frequency = %.4f", p)
	}
}

func TestMix3Deterministic(t *testing.T) {
	a := Mix3(1, 2, 3)
	if a != Mix3(1, 2, 3) {
		t.Fatal("Mix3 is not a pure function")
	}
	// Any single-word change must change the output.
	for _, other := range []uint64{Mix3(2, 2, 3), Mix3(1, 3, 3), Mix3(1, 2, 4)} {
		if other == a {
			t.Fatalf("Mix3 collision on adjacent inputs: %x", a)
		}
	}
}

func TestMix3UnitUniform(t *testing.T) {
	// The (seed, id, draw#) addressing scheme the event kernel uses must give
	// roughly uniform units per id: check mean and range over many draws.
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		u := Unit(Mix3(0xfeed, uint64(i), 0))
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of [0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("Unit(Mix3) mean = %.4f, want ~0.5", mean)
	}
}
