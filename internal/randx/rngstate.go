package randx

import "math/rand"

// rngState is an in-repo replica of math/rand's additive lagged-Fibonacci
// generator (rngSource): x_n = x_{n-273} + x_{n-607} over 64-bit words. The
// simulator cannot use *rand.Rand's own source for two reasons, both rooted
// in the same fact — rngSource's state is unexported:
//
//   - Snapshots. Copy-on-write world forking (Platform.Snapshot) must clone
//     every stream mid-run, preserving its exact position. rngState is a
//     plain value: Source.Clone copies it.
//   - Seeding cost. Creating a derived stream was the simulator's single
//     hottest operation (~40% of kernel CPU): rngSource.Seed runs ~1900
//     sequential Lehmer-LCG steps through a division-based Schrage reduction.
//     seedLCG below computes the identical x → 48271·x mod (2³¹−1) with a
//     widening multiply and two shift-adds — several times faster, exactly
//     equal.
//
// Byte-for-byte equality with math/rand is load-bearing: every golden digest
// in the repo pins output produced through rand.NewSource streams.
// TestRNGStateMatchesStdlib locks the equivalence against the running
// stdlib for every draw type the simulator uses.
const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// rngCooked is rngSource's additive constant table. It is recovered from the
// stdlib at init instead of being vendored: the recurrence is invertible, so
// the initial register of any seeded rngSource — and from it the table — can
// be solved out of the source's first 607 outputs. This keeps the replica
// self-verifying against whatever stdlib the binary was built with.
var rngCooked = recoverCooked()

func recoverCooked() [rngLen]int64 {
	const seed = 1
	src := rand.NewSource(seed).(rand.Source64)
	var out [rngLen]uint64
	for i := range out {
		out[i] = src.Uint64()
	}
	// With tap=0, feed=334 at start, step n reads positions 333-n (feed) and
	// 606-n (tap), both mod 607, writing the sum back to the feed position.
	// Unwinding which positions were still initial at each step gives the
	// seeded register vec[:] in three ranges.
	var vec [rngLen]uint64
	for n := 273; n <= 333; n++ { // feed still initial, tap already written
		vec[333-n] = out[n] - out[n-273]
	}
	for n := 334; n <= 606; n++ { // feed wrapped to 940-n, still initial
		vec[940-n] = out[n] - out[n-273]
	}
	for n := 0; n <= 272; n++ { // both initial; 606-n solved above
		vec[333-n] = out[n] - vec[606-n]
	}
	// vec[i] = seedWord_i(seed) ^ rngCooked[i]; replay the seed chain to
	// peel the seed words off.
	var cooked [rngLen]int64
	x := uint64(seed)
	for i := 0; i < 20; i++ {
		x = seedLCG(x)
	}
	for i := 0; i < rngLen; i++ {
		x = seedLCG(x)
		u := int64(x) << 40
		x = seedLCG(x)
		u ^= int64(x) << 20
		x = seedLCG(x)
		u ^= int64(x)
		cooked[i] = int64(vec[i]) ^ u
	}
	return cooked
}

// seedLCG is rngSource's seeding generator, x → 48271·x mod (2³¹−1),
// computed with a widening multiply and shift-add folds instead of the
// stdlib's division-based Schrage reduction. Exact for x in [1, 2³¹−2]; the
// Lehmer recurrence with a prime modulus never leaves that range.
func seedLCG(x uint64) uint64 {
	p := 48271 * x // ≤ 48271·(2³¹−1) < 2⁴⁷
	p = (p & int32max) + (p >> 31)
	p = (p & int32max) + (p >> 31)
	if p >= int32max {
		p -= int32max
	}
	return p
}

// seedJump6 is 48271⁶ mod (2³¹−1): the multiplier that advances the seeding
// LCG six steps at once, so Seed's register fill can run six independent
// dependency chains instead of one 1800-multiply serial chain. Six lanes
// produce exactly two register words per iteration (three values each), so
// the fill needs no intermediate buffer.
var seedJump6 = func() uint64 {
	x := uint64(1)
	for i := 0; i < 6; i++ {
		x = seedLCG(x)
	}
	return x
}()

// mulMod31 returns m·x mod (2³¹−1) for m, x in [1, 2³¹−2] (product < 2⁶²,
// so the same two-fold reduction as seedLCG applies).
func mulMod31(m, x uint64) uint64 {
	p := m * x
	p = (p & int32max) + (p >> 31)
	p = (p & int32max) + (p >> 31)
	if p >= int32max {
		p -= int32max
	}
	return p
}

// rngState is the generator state: a plain value, cloneable by assignment.
// It implements rand.Source64, so rand.New(&st) drives every stdlib
// distribution (Float64, NormFloat64, ExpFloat64, Perm, ...) through it with
// bit-identical results.
type rngState struct {
	vec       [rngLen]int64
	tap, feed int32
}

// Seed positions the register exactly as rngSource.Seed does.
func (r *rngState) Seed(seed int64) {
	r.tap = 0
	r.feed = rngLen - rngTap

	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := uint64(seed)
	for i := 0; i < 20; i++ {
		x = seedLCG(x)
	}
	// The register consumes 3·607 sequential LCG values. Generate them as
	// six interleaved lanes advanced by the 6-step jump multiplier: the
	// per-lane chains are independent, so the CPU overlaps multiplies that
	// would otherwise serialize on a ~4-cycle latency each, and six lanes
	// are exactly two register words per iteration — lanes a..c are word i,
	// lanes d..f word i+1, written directly with no intermediate buffer.
	a := seedLCG(x)
	b := seedLCG(a)
	c := seedLCG(b)
	d := seedLCG(c)
	e := seedLCG(d)
	f := seedLCG(e)
	j6 := seedJump6
	i := 0
	for ; i+2 <= rngLen; i += 2 {
		r.vec[i] = (int64(a)<<40 ^ int64(b)<<20 ^ int64(c)) ^ rngCooked[i]
		r.vec[i+1] = (int64(d)<<40 ^ int64(e)<<20 ^ int64(f)) ^ rngCooked[i+1]
		a = mulMod31(j6, a)
		b = mulMod31(j6, b)
		c = mulMod31(j6, c)
		d = mulMod31(j6, d)
		e = mulMod31(j6, e)
		f = mulMod31(j6, f)
	}
	// rngLen is odd: the last word takes the first three lane values.
	r.vec[i] = (int64(a)<<40 ^ int64(b)<<20 ^ int64(c)) ^ rngCooked[i]
}

// Uint64 steps the lagged-Fibonacci recurrence (rngSource.Uint64 verbatim).
func (r *rngState) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return uint64(x)
}

// Int63 masks the top bit off, as rngSource.Int63 does.
func (r *rngState) Int63() int64 { return int64(r.Uint64() & rngMask) }
