package randx

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// rngSeeds covers the seed shapes the simulator produces: zero, small CLI
// seeds, derived FNV hashes (arbitrary 64-bit values), and values whose
// int64 view is negative.
var rngSeeds = []uint64{0, 1, 2, 9, 42, 1<<31 - 1, 1 << 31, 0x9e3779b97f4a7c15, ^uint64(0), 0xdeadbeefcafef00d}

// TestRNGStateMatchesStdlib locks rngState to math/rand's rngSource: every
// draw type the simulator uses must be bit-identical, interleaved, across
// representative seeds. Golden digests depend on this equivalence.
func TestRNGStateMatchesStdlib(t *testing.T) {
	for _, seed := range rngSeeds {
		st := &rngState{}
		st.Seed(int64(seed))
		got := rand.New(st)
		want := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 2000; i++ {
			switch i % 8 {
			case 0:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			case 1:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 2:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 3:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 4:
				if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
					t.Fatalf("seed %d draw %d: ExpFloat64 %v != %v", seed, i, g, w)
				}
			case 5:
				if g, w := got.Intn(1+i), want.Intn(1+i); g != w {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			case 6:
				g, w := got.Perm(7), want.Perm(7)
				for j := range g {
					if g[j] != w[j] {
						t.Fatalf("seed %d draw %d: Perm %v != %v", seed, i, g, w)
					}
				}
			case 7:
				gs, ws := []int{0, 1, 2, 3, 4, 5}, []int{0, 1, 2, 3, 4, 5}
				got.Shuffle(len(gs), func(a, b int) { gs[a], gs[b] = gs[b], gs[a] })
				want.Shuffle(len(ws), func(a, b int) { ws[a], ws[b] = ws[b], ws[a] })
				for j := range gs {
					if gs[j] != ws[j] {
						t.Fatalf("seed %d draw %d: Shuffle %v != %v", seed, i, gs, ws)
					}
				}
			}
		}
	}
}

// TestSeedLCGMatchesSchrage checks the fold-based Lehmer step against the
// stdlib's division form across the full cycle edges and a long chain.
func TestSeedLCGMatchesSchrage(t *testing.T) {
	schrage := func(x int32) int32 {
		const a, q, r = 48271, 44488, 3399
		hi := x / q
		lo := x % q
		x = a*lo - r*hi
		if x < 0 {
			x += int32max
		}
		return x
	}
	for _, start := range []uint64{1, 2, 48270, 48271, 44488, int32max - 1, 89482311} {
		x, y := start, int32(start)
		for i := 0; i < 5000; i++ {
			x = seedLCG(x)
			y = schrage(y)
			if x != uint64(y) {
				t.Fatalf("start %d step %d: seedLCG %d != schrage %d", start, i, x, y)
			}
		}
	}
}

// TestSourceCloneIndependence pins Clone semantics: the clone continues the
// parent's exact stream, and the two never influence each other.
func TestSourceCloneIndependence(t *testing.T) {
	s := New(9)
	for i := 0; i < 500; i++ {
		s.Float64()
		s.Normal(0, 1)
	}
	c := s.Clone()
	// Identical continuation.
	var sv, cv [200]float64
	for i := range sv {
		sv[i] = s.Normal(0, 1)
	}
	for i := range cv {
		cv[i] = c.Normal(0, 1)
	}
	if sv != cv {
		t.Fatal("clone diverged from parent's continuation")
	}
	// Independence: burning the parent must not move the clone.
	for i := 0; i < 1000; i++ {
		s.Uint64()
	}
	d := c.Clone()
	if g, w := c.Uint64(), d.Uint64(); g != w {
		t.Fatalf("clone affected by parent draws: %d != %d", g, w)
	}
	if c.Seed() != 9 {
		t.Fatalf("clone seed = %d, want 9", c.Seed())
	}
}

// TestDeriveSeedMatchesFNV locks the hand-rolled Derive hash to hash/fnv,
// which it replaced; derived streams feed every golden digest.
func TestDeriveSeedMatchesFNV(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"host", "42"},
		{"lifecycle"},
		{"ab", "c"},
		{"a", "bc"},
		{"faults", "launch"},
	}
	for _, seed := range rngSeeds {
		s := &Source{seed: seed}
		for _, labels := range cases {
			h := fnv.New64a()
			var buf [8]byte
			for i := 0; i < 8; i++ {
				buf[i] = byte(seed >> (8 * i))
			}
			h.Write(buf[:])
			for _, l := range labels {
				h.Write([]byte{0})
				h.Write([]byte(l))
			}
			if g, w := s.DeriveSeed(labels...), h.Sum64(); g != w {
				t.Fatalf("seed %d labels %q: DeriveSeed %#x != fnv %#x", seed, labels, g, w)
			}
		}
	}
}

// TestDeriveSeedAllocFree budgets the hot Derive hash at zero allocations.
func TestDeriveSeedAllocFree(t *testing.T) {
	s := New(9)
	labels := []string{"host", "123456"}
	if n := testing.AllocsPerRun(100, func() { s.DeriveSeed(labels...) }); n != 0 {
		t.Fatalf("DeriveSeed allocates %v per run, want 0", n)
	}
}

func BenchmarkNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(uint64(i))
	}
}

func BenchmarkStdlibNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rand.New(rand.NewSource(int64(i)))
	}
}
