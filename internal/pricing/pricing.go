// Package pricing implements the Cloud Run billing model the paper uses to
// cost attacks and verification campaigns (§4.3, §5.2):
//
//	cost = N × t × (R_cpu × vCPU + R_mem × memoryGB)
//
// where N×t is accumulated active instance time. At the time of the paper's
// writing, R_cpu = ¢0.0024 per vCPU-second and R_mem = ¢0.00025 per
// GB-second in us-east1, us-central1, and us-west1. Idle instances bill
// nothing (which is why the optimized launching strategy is so cheap: the
// attacker disconnects between launches).
package pricing

import "fmt"

// Rates are the per-resource prices in USD.
type Rates struct {
	// CPUPerVCPUSecond is the price of one vCPU-second.
	CPUPerVCPUSecond float64
	// MemPerGBSecond is the price of one GB-second.
	MemPerGBSecond float64
}

// CloudRunRates returns the published rates for the three studied regions
// (identical in all three): ¢0.0024/vCPU-s and ¢0.00025/GB-s.
func CloudRunRates() Rates {
	return Rates{
		CPUPerVCPUSecond: 0.0024 / 100,
		MemPerGBSecond:   0.00025 / 100,
	}
}

// Cost returns the price in USD of the given accumulated usage.
func (r Rates) Cost(vcpuSeconds, gbSeconds float64) float64 {
	return vcpuSeconds*r.CPUPerVCPUSecond + gbSeconds*r.MemPerGBSecond
}

// InstanceSecondCost returns the price of keeping one instance with the
// given shape active for one second.
func (r Rates) InstanceSecondCost(vcpu, memoryGB float64) float64 {
	return r.Cost(vcpu, memoryGB)
}

// CampaignCost prices a campaign of n instances of the given shape active
// for t seconds each (the paper's N × t × (R_cpu + 0.5 R_mem) for Small).
func (r Rates) CampaignCost(n int, activeSeconds, vcpu, memoryGB float64) float64 {
	return float64(n) * activeSeconds * r.InstanceSecondCost(vcpu, memoryGB)
}

// USD formats an amount as dollars with cents.
func USD(amount float64) string { return fmt.Sprintf("$%.2f", amount) }
