package pricing

import (
	"math"
	"testing"
)

func TestCloudRunRates(t *testing.T) {
	r := CloudRunRates()
	if r.CPUPerVCPUSecond != 0.000024 {
		t.Errorf("CPU rate = %v, want $0.000024/vCPU-s", r.CPUPerVCPUSecond)
	}
	if r.MemPerGBSecond != 0.0000025 {
		t.Errorf("memory rate = %v, want $0.0000025/GB-s", r.MemPerGBSecond)
	}
}

func TestPaperPairwiseCostEstimate(t *testing.T) {
	// §4.3: 319,600 pairwise tests at 100 ms each, 2 instances per test,
	// Small shape (1 vCPU, 0.5 GB) — the paper estimates ~$645... The $645
	// figure includes the full fleet of 800 instances being kept alive for
	// the serialized 8.9 h duration:
	// 800 instances × 31,960 s × (R_cpu + 0.5 R_mem).
	r := CloudRunRates()
	serializedSeconds := 319_600.0 * 0.1
	cost := r.CampaignCost(800, serializedSeconds, 1, 0.5)
	if cost < 550 || cost > 750 {
		t.Errorf("pairwise verification cost = %v, paper says ~$645", cost)
	}
}

func TestPaperScalableCostEstimate(t *testing.T) {
	// "our approach only takes about 1 to 2 minutes to validate all 800
	// instances" and costs $1–3.
	r := CloudRunRates()
	for _, secs := range []float64{60, 120} {
		cost := r.CampaignCost(800, secs, 1, 0.5)
		if cost < 0.5 || cost > 3.5 {
			t.Errorf("scalable verification cost at %vs = %v, paper says $1–3", secs, cost)
		}
	}
}

func TestCostLinear(t *testing.T) {
	r := CloudRunRates()
	a := r.CampaignCost(10, 100, 1, 0.5)
	b := r.CampaignCost(20, 100, 1, 0.5)
	if math.Abs(b-2*a) > 1e-12 {
		t.Error("cost not linear in instance count")
	}
	c := r.CampaignCost(10, 200, 1, 0.5)
	if math.Abs(c-2*a) > 1e-12 {
		t.Error("cost not linear in time")
	}
}

func TestUSDFormat(t *testing.T) {
	if USD(23.456) != "$23.46" {
		t.Errorf("USD = %q", USD(23.456))
	}
	if USD(0) != "$0.00" {
		t.Errorf("USD zero = %q", USD(0))
	}
}

func TestZeroRates(t *testing.T) {
	var r Rates
	if r.Cost(100, 100) != 0 {
		t.Error("zero rates should cost nothing")
	}
}
