package cache

import "fmt"

// Eviction-set construction (Vila et al. [61]).
//
// An eviction set for a victim address is a set of `ways` congruent
// addresses (mapping to the same cache set): accessing all of them evicts
// the victim's line. Attackers test candidacy purely behaviorally — load the
// victim, traverse the candidate set, reload the victim and time it — which
// Evicts models with Access/Probe.

// Evicts reports whether traversing set S evicts victim from the cache:
// the prime(victim) → traverse(S) → probe(victim) experiment. The cache is
// flushed first so each experiment is clean — stale congruent lines from a
// previous trial would otherwise absorb evictions meant for the victim (a
// real attacker gets the same effect by repeating measurements until they
// stabilize).
func Evicts(c *Cache, victim uint64, s []uint64) bool {
	c.Flush()
	c.Access(victim)
	for _, a := range s {
		c.Access(a)
	}
	return !c.Probe(victim)
}

// FindEvictionSet reduces candidates to a minimal eviction set for victim
// using group-testing: repeatedly split the working set into ways+1 groups
// and discard any group whose removal preserves eviction. The result has
// exactly `ways` addresses, all congruent with the victim. It fails when the
// candidate pool does not contain `ways` congruent addresses.
func FindEvictionSet(c *Cache, victim uint64, candidates []uint64) ([]uint64, error) {
	_, ways, _ := c.Geometry()
	work := append([]uint64(nil), candidates...)
	if !Evicts(c, victim, work) {
		return nil, fmt.Errorf("cache: candidate pool of %d does not evict the victim", len(candidates))
	}
	for len(work) > ways {
		groups := ways + 1
		if groups > len(work) {
			groups = len(work)
		}
		// Try removing one group at a time; keep the first removal that
		// still evicts. The theory guarantees one such group exists while
		// |work| > ways — provided the partition really has groups parts
		// (pigeonhole over a minimal ways-subset), so split by index
		// boundaries rather than a fixed ceil size.
		removed := false
		for g := 0; g < groups; g++ {
			lo := g * len(work) / groups
			hi := (g + 1) * len(work) / groups
			if lo == hi {
				continue
			}
			trial := make([]uint64, 0, len(work)-(hi-lo))
			trial = append(trial, work[:lo]...)
			trial = append(trial, work[hi:]...)
			if Evicts(c, victim, trial) {
				work = trial
				removed = true
				break
			}
		}
		if !removed {
			// Cannot shrink further: the pool lacks enough congruent
			// addresses beyond what remains.
			return nil, fmt.Errorf("cache: stuck at %d candidates (> %d ways); pool too sparse", len(work), ways)
		}
	}
	if !Evicts(c, victim, work) {
		return nil, fmt.Errorf("cache: reduced set of %d no longer evicts", len(work))
	}
	return work, nil
}

// CongruentAddresses generates n addresses mapping to the same cache set as
// base, spaced one "page" apart (sets × lineSize) — how an attacker derives
// candidates once cpuid told it the geometry.
func CongruentAddresses(c *Cache, base uint64, n int) []uint64 {
	sets, _, lineSize := c.Geometry()
	stride := uint64(sets * lineSize)
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i+1)*stride
	}
	return out
}
