package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, sets, ways, line int) *Cache {
	t.Helper()
	c, err := New(sets, ways, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	bad := [][3]int{{0, 8, 64}, {64, 0, 64}, {64, 8, 0}, {63, 8, 64}, {64, 7, 64}, {64, 8, 65}}
	for _, g := range bad {
		if _, err := New(g[0], g[1], g[2]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
	if _, err := New(1024, 16, 64); err != nil {
		t.Error(err)
	}
}

func TestHitMissBasics(t *testing.T) {
	c := mustNew(t, 64, 4, 64)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	// Same line, different byte: still a hit.
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if c.Access(0x1040) {
		t.Error("next-line access hit")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Errorf("stats = %d/%d", acc, miss)
	}
}

func TestSetIndexing(t *testing.T) {
	c := mustNew(t, 64, 4, 64)
	// Addresses a full way-stride apart map to the same set.
	stride := uint64(64 * 64)
	base := uint64(0x12345 &^ 0x3F)
	s0 := c.SetIndex(base)
	if c.SetIndex(base+stride) != s0 || c.SetIndex(base+7*stride) != s0 {
		t.Error("congruent addresses map to different sets")
	}
	if c.SetIndex(base+64) == s0 {
		t.Error("adjacent line mapped to same set")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustNew(t, 4, 2, 64) // tiny: 2 ways
	a := uint64(0x000)        // set 0
	b := a + 4*64             // set 0
	d := a + 8*64             // set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(d) {
		t.Error("new line not present")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mustNew(t, 4, 2, 64)
	a, b, d := uint64(0), uint64(4*64), uint64(8*64)
	c.Access(a)
	c.Access(b)
	// Probing a must NOT refresh its LRU position.
	c.Probe(a)
	c.Access(d) // evicts the true LRU, which is a
	if c.Probe(a) {
		t.Error("probe refreshed LRU state")
	}
	if !c.Probe(b) {
		t.Error("wrong line evicted")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, 16, 2, 64)
	c.Access(0x40)
	c.Flush()
	if c.Probe(0x40) {
		t.Error("line survived flush")
	}
}

func TestEvictsExactlyAtAssociativity(t *testing.T) {
	c := mustNew(t, 64, 8, 64)
	victim := uint64(0x5 * 64)
	cong := CongruentAddresses(c, victim, 8)
	if !Evicts(c, victim, cong) {
		t.Error("ways congruent lines did not evict")
	}
	c.Flush()
	if Evicts(c, victim, cong[:7]) {
		t.Error("ways-1 congruent lines evicted")
	}
}

func TestFindEvictionSet(t *testing.T) {
	c := mustNew(t, 128, 8, 64)
	victim := uint64(0x7C0)
	// Candidate pool: plenty of congruent addresses buried in noise.
	pool := CongruentAddresses(c, victim, 24)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		pool = append(pool, uint64(rng.Intn(1<<26))&^0x3F)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	set, err := FindEvictionSet(c, victim, pool)
	if err != nil {
		t.Fatal(err)
	}
	_, ways, _ := c.Geometry()
	if len(set) != ways {
		t.Fatalf("eviction set size %d, want %d (minimal)", len(set), ways)
	}
	vs := c.SetIndex(victim)
	for _, a := range set {
		if c.SetIndex(a) != vs {
			t.Errorf("non-congruent address %#x in eviction set", a)
		}
	}
	c.Flush()
	if !Evicts(c, victim, set) {
		t.Error("final set does not evict")
	}
}

func TestFindEvictionSetInsufficientPool(t *testing.T) {
	c := mustNew(t, 128, 8, 64)
	victim := uint64(0x7C0)
	// Only 5 congruent addresses: cannot build an 8-way set.
	pool := CongruentAddresses(c, victim, 5)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		pool = append(pool, uint64(rng.Intn(1<<26))&^0x3F)
	}
	if _, err := FindEvictionSet(c, victim, pool); err == nil {
		t.Error("sparse pool produced an eviction set")
	}
}

// Property: for random geometries and victims, the reduction always returns
// a minimal, congruent, evicting set when the pool is sufficient.
func TestFindEvictionSetProperty(t *testing.T) {
	f := func(seed int64, victimRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 1 << (4 + rng.Intn(4)) // 16..128
		ways := 1 << (1 + rng.Intn(3)) // 2..8
		c, err := New(sets, ways, 64)
		if err != nil {
			return false
		}
		victim := uint64(victimRaw) &^ 0x3F
		pool := CongruentAddresses(c, victim, ways*3)
		for i := 0; i < 50; i++ {
			pool = append(pool, uint64(rng.Intn(1<<24))&^0x3F)
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		set, err := FindEvictionSet(c, victim, pool)
		if err != nil {
			return false
		}
		if len(set) != ways {
			return false
		}
		for _, a := range set {
			if c.SetIndex(a) != c.SetIndex(victim) {
				return false
			}
		}
		c.Flush()
		return Evicts(c, victim, set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCongruentAddresses(t *testing.T) {
	c := mustNew(t, 64, 8, 64)
	base := uint64(0x1240)
	for _, a := range CongruentAddresses(c, base, 10) {
		if c.SetIndex(a) != c.SetIndex(base) {
			t.Fatalf("address %#x not congruent with base %#x", a, base)
		}
		if a == base {
			t.Fatal("base itself returned")
		}
	}
}

func BenchmarkAccess(b *testing.B) {
	c, _ := New(4096, 16, 64)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkFindEvictionSet(b *testing.B) {
	c, _ := New(4096, 16, 64)
	victim := uint64(0x7f312a40)
	pool := CongruentAddresses(c, victim, 48)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		pool = append(pool, uint64(rng.Intn(1<<30))&^0x3F)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindEvictionSet(c, victim, pool); err != nil {
			b.Fatal(err)
		}
	}
}
