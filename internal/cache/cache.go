// Package cache models a set-associative CPU cache with LRU replacement and
// implements eviction-set construction — the microarchitectural machinery
// the paper's fingerprints are a prelude to. §4.1 notes that the CPU model
// and cache-hierarchy structure exposed through cpuid are "essential for
// many cache-based side-channel attacks" [45, 50, 51, 61]: an attacker sizes
// its eviction sets from exactly the geometry this package consumes.
//
// The reduction algorithm in FindEvictionSet is the group-testing method of
// Vila, Köpf, and Morales ("Theory and Practice of Finding Eviction Sets",
// S&P 2019, the paper's [61]): it shrinks a candidate pool to a minimal
// eviction set in O(w²·n) accesses instead of the naive O(n²).
package cache

import (
	"fmt"
)

// Cache is a physically-indexed set-associative cache with true-LRU
// replacement. Addresses are byte addresses; the line and set are derived
// from the address bits as real hardware does.
type Cache struct {
	sets     int
	ways     int
	lineSize int

	setShift uint // log2(lineSize)
	setMask  uint64

	// lines[set][way]; lru[set][way] holds a per-set use clock.
	lines [][]uint64
	valid [][]bool
	lru   [][]uint64
	tick  uint64

	accesses uint64
	misses   uint64
}

// New builds a cache with the given geometry. All three parameters must be
// powers of two (as on real hardware) and positive.
func New(sets, ways, lineSize int) (*Cache, error) {
	for _, v := range []int{sets, ways, lineSize} {
		if v <= 0 || v&(v-1) != 0 {
			return nil, fmt.Errorf("cache: geometry %d/%d/%d must be positive powers of two",
				sets, ways, lineSize)
		}
	}
	c := &Cache{
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
		setShift: uint(log2(lineSize)),
		setMask:  uint64(sets - 1),
	}
	c.lines = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for s := 0; s < sets; s++ {
		c.lines[s] = make([]uint64, ways)
		c.valid[s] = make([]bool, ways)
		c.lru[s] = make([]uint64, ways)
	}
	return c, nil
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Geometry returns (sets, ways, lineSize).
func (c *Cache) Geometry() (sets, ways, lineSize int) { return c.sets, c.ways, c.lineSize }

// SetIndex returns the cache set an address maps to.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// tag returns the line tag of an address.
func (c *Cache) tag(addr uint64) uint64 { return addr >> c.setShift }

// Access touches addr, returning whether it hit. Misses fill the line,
// evicting the set's LRU way.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.tick++
	set := c.SetIndex(addr)
	t := c.tag(addr)
	// Hit?
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == t {
			c.lru[set][w] = c.tick
			return true
		}
	}
	// Miss: fill the LRU (or an invalid) way.
	c.misses++
	victim := 0
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < oldest {
			oldest = c.lru[set][w]
			victim = w
		}
	}
	c.lines[set][victim] = t
	c.valid[set][victim] = true
	c.lru[set][victim] = c.tick
	return false
}

// Probe reports whether addr is currently cached, without touching state —
// the idealized timing measurement of a probe step.
func (c *Cache) Probe(addr uint64) bool {
	set := c.SetIndex(addr)
	t := c.tag(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == t {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			c.valid[s][w] = false
		}
	}
}

// Stats returns (accesses, misses) since creation.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }
