// Package tsc models the x86 invariant timestamp counter of a simulated
// physical host, together with the measurement-noise profile a sandboxed
// guest experiences when pairing TSC reads with wall-clock system calls.
//
// The model captures the three physical facts the paper's fingerprints rest
// on (§2.4, §4.2):
//
//  1. The TSC resets to zero at host boot and increments at a fixed rate
//     regardless of frequency scaling — so its value encodes host uptime.
//  2. The *actual* TSC frequency deviates from the *reported* (labeled base)
//     frequency by a small constant per-host error ε, so a boot time derived
//     with the reported frequency drifts linearly in real time (Eq. 4.2) and
//     the fingerprint eventually "expires".
//  3. Wall-clock reads from inside a container are system calls subject to
//     scheduling noise; on a minority of "problematic" hosts the noise is
//     large enough to make measured-frequency estimates useless (§4.2,
//     method 2: 58 of 586 hosts).
package tsc

import (
	"fmt"
	"math"
	"time"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

// Counter is the invariant TSC of one physical host.
type Counter struct {
	// Boot is the virtual instant the host booted (TSC value zero).
	Boot simtime.Time
	// ActualHz is the true increment rate. It is an integer so counter
	// values are exact: at 2 GHz over 60 days the counter exceeds 1e16,
	// beyond float64's contiguous-integer range.
	ActualHz uint64
	// ReportedHz is the frequency a guest infers from the CPU model name
	// (the labeled base frequency). The per-host error ε = ActualHz −
	// ReportedHz is what makes reported-frequency fingerprints drift.
	ReportedHz float64
}

// ReadAt returns the counter value at virtual time now, exactly. It panics if
// now precedes the host's boot: the simulator never observes a host before it
// exists.
func (c Counter) ReadAt(now simtime.Time) uint64 {
	if now.Before(c.Boot) {
		panic(fmt.Sprintf("tsc: read at %v before boot %v", now, c.Boot))
	}
	ns := uint64(now.Sub(c.Boot))
	// Split to avoid overflow: ns can reach ~6e15 (70 days) and ActualHz
	// ~2.5e9; their product would overflow uint64.
	secs := ns / 1e9
	rem := ns % 1e9
	return secs*c.ActualHz + rem*c.ActualHz/1e9
}

// FreqError returns the paper's ε = f_r − f* (reported minus actual), in Hz.
func (c Counter) FreqError() float64 { return c.ReportedHz - float64(c.ActualHz) }

// DriftRate returns the rate at which a boot time derived with the reported
// frequency drifts, in seconds of derived-T_boot per second of real time
// (Eq. 4.2: ΔT_boot/ΔT_w = ε/f_r). A host whose actual frequency exceeds the
// label drifts its derived boot time into the past (negative rate).
func (c Counter) DriftRate() float64 { return c.FreqError() / c.ReportedHz }

// NoiseProfile describes the wall-clock measurement noise guests on a host
// experience. The model has two components, matching what the paper's data
// implies about real Cloud Run hosts:
//
//   - A per-read jitter (syscall/vDSO latency variation). On healthy hosts
//     it is tiny — small enough that Δtsc/ΔT_w frequency estimation over
//     100 ms windows achieves sub-100 Hz standard deviation. On
//     "problematic" hosts (~10% of the fleet) timekeeping is disturbed
//     (heavy steal time) and the jitter is microseconds, which blows the
//     frequency estimate up to 10 kHz–MHz standard deviations (§4.2).
//   - A per-guest constant offset (gVisor's time virtualization layer can
//     pin a sandbox's clock slightly off the host's NTP-disciplined time).
//     A constant offset cancels out of frequency *differences*, so it never
//     affects method 2 — but it shifts each instance's derived T_boot, which
//     is what makes co-located instances disagree at fine rounding
//     precisions and gives Fig. 4 its recall falloff below p_boot = 100 ms.
type NoiseProfile struct {
	// JitterStd is the standard deviation of the per-read jitter.
	JitterStd time.Duration
	// GuestOffsetProb is the probability that a newly created guest gets a
	// nonzero constant clock offset.
	GuestOffsetProb float64
	// GuestOffsetScale is the Laplace scale of that offset (signed).
	GuestOffsetScale time.Duration
	// Problematic marks hosts whose measured-frequency estimates are
	// unusable for fingerprinting.
	Problematic bool
}

// DefaultNoise returns the noise profile of a healthy host.
func DefaultNoise() NoiseProfile {
	return NoiseProfile{
		JitterStd:        3 * time.Nanosecond,
		GuestOffsetProb:  0.45,
		GuestOffsetScale: 150 * time.Microsecond,
	}
}

// ProblematicNoise returns the profile of a timekeeping-disturbed host. The
// per-read jitter is drawn per host between ~0.5 µs and ~50 µs so that
// measured-frequency standard deviations span the 10 kHz–MHz range the paper
// observed.
func ProblematicNoise(rng *randx.Source) NoiseProfile {
	p := DefaultNoise()
	p.Problematic = true
	// Log-uniform between 0.5 and 50 µs.
	exp := rng.Range(0, 2) // 10^0 .. 10^2
	p.JitterStd = time.Duration(500 * math.Pow(10, exp) * float64(time.Nanosecond))
	return p
}

// WallJitter draws the non-negative per-read delay of one wall-clock read.
func (p NoiseProfile) WallJitter(rng *randx.Source) time.Duration {
	d := rng.Normal(0, float64(p.JitterStd))
	if d < 0 {
		d = -d
	}
	return time.Duration(d)
}

// SampleGuestOffset draws the constant clock offset of a newly created
// guest. The offset is signed and zero for most guests.
func (p NoiseProfile) SampleGuestOffset(rng *randx.Source) time.Duration {
	if !rng.Bool(p.GuestOffsetProb) {
		return 0
	}
	return time.Duration(rng.Laplace(0, float64(p.GuestOffsetScale)))
}

// SampleFreqError draws the per-host constant frequency error ε (Hz) for a
// host with the given reported frequency. The distribution is bimodal, which
// is what the paper's data jointly implies: a concentrated core (most hosts
// within a couple of kHz of nominal, so their 1 s-rounded fingerprints
// survive many days and several hosts share the same 1 kHz-refined
// frequency, §4.5's ~2 hosts per Gen 2 fingerprint) plus a ~10% tail of
// fast-drifting parts (the fingerprints that expire within ~2 days in
// Fig. 5).
func SampleFreqError(rng *randx.Source, reportedHz float64) float64 {
	// Scale with frequency so faster parts are not proportionally more
	// stable; values below are calibrated at 2 GHz.
	scale := reportedHz / 2e9
	var eps float64
	if rng.Bool(0.10) {
		// Fast-drift tail: 5–20 kHz either way.
		eps = rng.Range(5e3, 20e3) * scale
		if rng.Bool(0.5) {
			eps = -eps
		}
	} else {
		eps = rng.Laplace(0, 1.2e3*scale)
	}
	const clip = 5e4
	if eps > clip {
		eps = clip
	}
	if eps < -clip {
		eps = -clip
	}
	// A true ε of zero would make a fingerprint immortal; real oscillators
	// always deviate at least slightly.
	if eps > -1 && eps < 1 {
		if eps >= 0 {
			eps = 1
		} else {
			eps = -1
		}
	}
	return eps
}

// NewCounter builds a Counter for a host that booted at boot with the given
// reported frequency, drawing its actual frequency from SampleFreqError.
func NewCounter(rng *randx.Source, boot simtime.Time, reportedHz float64) Counter {
	actual := reportedHz + SampleFreqError(rng, reportedHz)
	return Counter{
		Boot:       boot,
		ActualHz:   uint64(actual + 0.5),
		ReportedHz: reportedHz,
	}
}
