package tsc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eaao/internal/randx"
	"eaao/internal/simtime"
)

func TestReadAtExact(t *testing.T) {
	c := Counter{Boot: simtime.FromSeconds(100), ActualHz: 2_000_000_000, ReportedHz: 2e9}
	cases := []struct {
		at   simtime.Time
		want uint64
	}{
		{simtime.FromSeconds(100), 0},
		{simtime.FromSeconds(101), 2_000_000_000},
		{simtime.FromSeconds(100).Add(time.Millisecond), 2_000_000},
		{simtime.FromSeconds(100).Add(time.Nanosecond), 2},
	}
	for _, tc := range cases {
		if got := c.ReadAt(tc.at); got != tc.want {
			t.Errorf("ReadAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestReadAtLongUptimeNoPrecisionLoss(t *testing.T) {
	// 60 days of uptime at 2.45 GHz: ~1.27e16 ticks, beyond float64's exact
	// integer range. Integer math must stay exact.
	c := Counter{Boot: 0, ActualHz: 2_450_000_000, ReportedHz: 2.45e9}
	at := simtime.Time(60 * 24 * time.Hour.Nanoseconds())
	want := uint64(60*24*3600) * 2_450_000_000
	if got := c.ReadAt(at); got != want {
		t.Errorf("60-day read = %d, want %d (diff %d)", got, want, int64(got)-int64(want))
	}
}

func TestReadBeforeBootPanics(t *testing.T) {
	c := Counter{Boot: simtime.FromSeconds(100), ActualHz: 2e9, ReportedHz: 2e9}
	defer func() {
		if recover() == nil {
			t.Error("read before boot did not panic")
		}
	}()
	c.ReadAt(simtime.FromSeconds(99))
}

// Property: the counter is monotone and advances proportionally to elapsed
// time.
func TestReadAtMonotoneProperty(t *testing.T) {
	c := Counter{Boot: 0, ActualHz: 2_000_000_000, ReportedHz: 2e9}
	f := func(aRaw, bRaw uint32) bool {
		a := simtime.Time(aRaw) * 1000
		b := simtime.Time(bRaw) * 1000
		if a > b {
			a, b = b, a
		}
		va, vb := c.ReadAt(a), c.ReadAt(b)
		if va > vb {
			return false
		}
		// Tick delta must match elapsed ns within rounding.
		elapsed := uint64(b - a)
		wantTicks := elapsed * 2 // 2 GHz = 2 ticks/ns
		diff := int64(vb-va) - int64(wantTicks)
		return diff >= -2 && diff <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDriftRate(t *testing.T) {
	c := Counter{Boot: 0, ActualHz: 2_000_004_000, ReportedHz: 2e9}
	if eps := c.FreqError(); eps != -4000 {
		t.Errorf("FreqError = %v, want -4000 (reported minus actual)", eps)
	}
	want := -4000.0 / 2e9
	if dr := c.DriftRate(); math.Abs(dr-want) > 1e-15 {
		t.Errorf("DriftRate = %v, want %v", dr, want)
	}
}

// The derived boot time using the reported frequency must drift linearly at
// DriftRate, per Eq. 4.2.
func TestDerivedBootTimeDriftMatchesEq42(t *testing.T) {
	c := Counter{Boot: simtime.FromSeconds(1000), ActualHz: 2_000_010_000, ReportedHz: 2e9}
	derive := func(at simtime.Time) float64 {
		tsc := c.ReadAt(at)
		return at.Seconds() - float64(tsc)/c.ReportedHz
	}
	t1 := simtime.FromSeconds(2000)
	t2 := t1.Add(48 * time.Hour)
	drift := derive(t2) - derive(t1)
	want := c.DriftRate() * (48 * 3600)
	// ε=10kHz at 2GHz over 2 days → ~0.86 s of drift.
	if math.Abs(drift-want) > 1e-3 {
		t.Errorf("observed drift %v s, Eq 4.2 predicts %v s", drift, want)
	}
}

func TestWallJitterNonNegative(t *testing.T) {
	rng := randx.New(1)
	for _, p := range []NoiseProfile{DefaultNoise(), ProblematicNoise(randx.New(2))} {
		for i := 0; i < 10000; i++ {
			if d := p.WallJitter(rng); d < 0 {
				t.Fatalf("negative wall jitter %v", d)
			}
		}
	}
}

func TestHealthyJitterTiny(t *testing.T) {
	// Healthy-host jitter must stay in the nanosecond range so that
	// measured-frequency estimation over 100 ms windows lands under 100 Hz
	// standard deviation.
	rng := randx.New(2)
	p := DefaultNoise()
	const n = 20000
	var max time.Duration
	for i := 0; i < n; i++ {
		if d := p.WallJitter(rng); d > max {
			max = d
		}
	}
	if max > 50*time.Nanosecond {
		t.Errorf("healthy jitter reached %v, want nanosecond scale", max)
	}
}

func TestProblematicNoiseLarger(t *testing.T) {
	rngA := randx.New(3)
	rngB := randx.New(3)
	normal := DefaultNoise()
	problem := ProblematicNoise(randx.New(4))
	var sumN, sumP float64
	const n = 20000
	for i := 0; i < n; i++ {
		sumN += float64(normal.WallJitter(rngA))
		sumP += float64(problem.WallJitter(rngB))
	}
	if sumP <= sumN*10 {
		t.Errorf("problematic jitter (%v) not much larger than normal (%v)",
			time.Duration(sumP/n), time.Duration(sumN/n))
	}
}

func TestProblematicJitterRange(t *testing.T) {
	// Per-host jitter must span roughly 0.5–50 µs (log-uniform), producing
	// the 10 kHz–MHz frequency stddevs of §4.2.
	for seed := uint64(0); seed < 200; seed++ {
		p := ProblematicNoise(randx.New(seed))
		if p.JitterStd < 400*time.Nanosecond || p.JitterStd > 60*time.Microsecond {
			t.Fatalf("seed %d: problematic jitter %v out of range", seed, p.JitterStd)
		}
		if !p.Problematic {
			t.Fatal("profile not marked problematic")
		}
	}
}

func TestGuestOffsetDistribution(t *testing.T) {
	rng := randx.New(5)
	p := DefaultNoise()
	const n = 50000
	zero, pos, neg := 0, 0, 0
	for i := 0; i < n; i++ {
		switch off := p.SampleGuestOffset(rng); {
		case off == 0:
			zero++
		case off > 0:
			pos++
		default:
			neg++
		}
	}
	zf := float64(zero) / n
	if zf < 0.5 || zf > 0.6 {
		t.Errorf("zero-offset fraction = %.3f, want ~0.55", zf)
	}
	// Signed offsets should be roughly symmetric.
	ratio := float64(pos) / float64(neg)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("offset sign ratio = %.3f", ratio)
	}
}

func TestSampleFreqErrorCalibration(t *testing.T) {
	rng := randx.New(4)
	const n = 50000
	var small, big int
	for i := 0; i < n; i++ {
		eps := math.Abs(SampleFreqError(rng, 2e9))
		if eps < 1 {
			t.Fatalf("|ε| < 1 Hz: %v", eps)
		}
		if eps > 5e4 {
			t.Fatalf("|ε| above clip: %v", eps)
		}
		if eps < 3e3 {
			small++
		}
		if eps > 5.8e3 {
			big++
		}
	}
	// The concentrated core: ~90% of hosts draw |ε| from Laplace(0, 1.2k),
	// of which P(|ε| < 3k) = 1 − e^{-2.5} ≈ 0.92 → ~0.83 overall. The
	// fast-drift tail (>5.8 kHz) is essentially the 10% outlier mode.
	if f := float64(small) / n; f < 0.76 || f > 0.90 {
		t.Errorf("fraction below 3 kHz = %.3f, want ~0.83", f)
	}
	if f := float64(big) / n; f < 0.07 || f > 0.14 {
		t.Errorf("fast-drift tail fraction = %.3f, want ~0.10", f)
	}
}

func TestNewCounterRoundsActual(t *testing.T) {
	rng := randx.New(5)
	for i := 0; i < 100; i++ {
		c := NewCounter(rng, simtime.FromSeconds(float64(i)), 2e9)
		if c.ActualHz == 0 {
			t.Fatal("zero actual frequency")
		}
		if math.Abs(c.FreqError()) > 5.1e4 {
			t.Errorf("|ε| = %v beyond clip", c.FreqError())
		}
		if c.ReportedHz != 2e9 {
			t.Errorf("reported = %v", c.ReportedHz)
		}
	}
}
